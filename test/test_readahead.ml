(* Clustered multi-block reads and sequential read-ahead.

   The optimizations must be invisible to correctness: every read returns
   byte-for-byte what a per-block implementation returns, across holes,
   cache hits and unsynced dirty overlays.  The visible effects are on the
   request stream (fewer, larger disk reads for sequential scans) and the
   io.readahead.* accounting. *)

module W = Lfs_workload
module Driver = W.Driver
module Io = Lfs_disk.Io
module Cpu_model = Lfs_disk.Cpu_model
module Metrics = Lfs_obs.Metrics
module Rng = Lfs_util.Rng

let disk_mb = 16
let cpu = Cpu_model.free

(* A cache big enough that nothing is evicted mid-test: block population
   differences between the two configurations (a clustered run caches
   whole runs) must not turn into behavioural differences. *)
let lfs ~fast () =
  let config =
    {
      Lfs_core.Config.small with
      Lfs_core.Config.cache_blocks = 1024;
      read_clustering = fast;
      readahead_blocks = (if fast then 8 else 0);
    }
  in
  W.Setup.lfs ~disk_mb ~cpu ~config ()

let ffs ~fast () =
  let config =
    {
      Lfs_ffs.Config.small with
      Lfs_ffs.Config.cache_blocks = 1024;
      read_clustering = fast;
      readahead_blocks = (if fast then 8 else 0);
    }
  in
  W.Setup.ffs ~disk_mb ~cpu ~config ()

let cval inst name = Metrics.value (Metrics.counter (Driver.metrics inst) name)

let check_invariant inst =
  let issued = cval inst "io.readahead.issued" in
  let hit = cval inst "io.readahead.hit" in
  let wasted = cval inst "io.readahead.wasted" in
  Alcotest.(check bool)
    (Printf.sprintf "hit (%d) + wasted (%d) <= issued (%d)" hit wasted issued)
    true
    (hit + wasted <= issued)

(* ------------------------------------------------------------------ *)
(* Byte-for-byte equivalence                                           *)
(* ------------------------------------------------------------------ *)

let file_size = 96 * 1024

(* One deterministic gauntlet: a file with a hole in the middle, synced,
   caches dropped, then overwritten in place (dirty, unsynced overlays),
   then read sequentially and at random offsets/lengths.  Every read is
   checked against an in-memory model of the file. *)
let exercise inst =
  let path = "/f" in
  let model = Bytes.make file_size '\000' in
  let put ~seed ~off len =
    let data = Driver.content ~seed len in
    Driver.write inst path ~off data;
    Bytes.blit data 0 model off len
  in
  Driver.create inst path;
  put ~seed:1 ~off:0 (40 * 1024);
  put ~seed:2 ~off:(64 * 1024) (32 * 1024) (* hole from 40 KB to 64 KB *);
  Driver.sync inst;
  Driver.flush_caches inst;
  (* Dirty overlays straddling block boundaries; never synced, so a
     clustered fetch that clobbered cached blocks would lose them. *)
  put ~seed:3 ~off:((10 * 1024) + 100) 5000;
  put ~seed:4 ~off:((65 * 1024) + 17) 3000;
  let check what ~off ~len =
    let expect_len = max 0 (min len (file_size - off)) in
    let got = Driver.read inst path ~off ~len in
    if Bytes.length got <> expect_len then
      Alcotest.failf "%s: read %d bytes, expected %d (off=%d len=%d)" what
        (Bytes.length got) expect_len off len;
    if not (Bytes.equal got (Bytes.sub model off expect_len)) then
      Alcotest.failf "%s: data mismatch (off=%d len=%d)" what off len
  in
  (* Sequential scan in 8 KB requests: trains the read-ahead stream. *)
  let step = 8 * 1024 in
  let i = ref 0 in
  while !i < file_size do
    check "seq" ~off:!i ~len:(min step (file_size - !i));
    i := !i + step
  done;
  (* Random offsets and lengths over holes, cached and cold ranges. *)
  let rng = Rng.create 42 in
  for k = 0 to 79 do
    let off = Rng.int rng file_size in
    let len = 1 + Rng.int rng (24 * 1024) in
    check (Printf.sprintf "rand%d" k) ~off ~len
  done;
  (* Re-reads served from cache. *)
  check "reread head" ~off:0 ~len:(16 * 1024);
  check "reread past hole" ~off:(64 * 1024) ~len:(8 * 1024)

let test_equivalence_lfs () =
  exercise (lfs ~fast:false ());
  let inst = lfs ~fast:true () in
  exercise inst;
  check_invariant inst

let test_equivalence_ffs () =
  exercise (ffs ~fast:false ());
  let inst = ffs ~fast:true () in
  exercise inst;
  check_invariant inst

(* ------------------------------------------------------------------ *)
(* Read-ahead accounting                                               *)
(* ------------------------------------------------------------------ *)

let test_counters () =
  let inst = lfs ~fast:true () in
  let path = "/seq" in
  let bs = 1024 in
  Driver.create inst path;
  Driver.write inst path ~off:0 (Driver.content ~seed:9 (64 * bs));
  Driver.sync inst;
  Driver.flush_caches inst;
  for i = 0 to 63 do
    ignore (Driver.read inst path ~off:(i * bs) ~len:bs)
  done;
  let issued = cval inst "io.readahead.issued" in
  Alcotest.(check bool) "prefetch happened" true (issued > 0);
  (* A full sequential scan consumes everything it prefetched: the window
     is clamped at end of file, so nothing is written off. *)
  Alcotest.(check int) "all prefetches consumed" issued
    (cval inst "io.readahead.hit");
  Alcotest.(check int) "no waste on a full scan" 0
    (cval inst "io.readahead.wasted");
  (* Abandoning a stream mid-flight writes off its in-flight blocks. *)
  Driver.flush_caches inst;
  let wasted_before = cval inst "io.readahead.wasted" in
  for i = 0 to 7 do
    ignore (Driver.read inst path ~off:(i * bs) ~len:bs)
  done;
  ignore (Driver.read inst path ~off:(48 * bs) ~len:bs);
  Alcotest.(check bool) "abandon wastes pending prefetches" true
    (cval inst "io.readahead.wasted" > wasted_before);
  check_invariant inst

let test_disabled_issues_nothing () =
  let inst = lfs ~fast:false () in
  let path = "/seq" in
  Driver.create inst path;
  Driver.write inst path ~off:0 (Driver.content ~seed:9 (64 * 1024));
  Driver.sync inst;
  Driver.flush_caches inst;
  for i = 0 to 63 do
    ignore (Driver.read inst path ~off:(i * 1024) ~len:1024)
  done;
  Alcotest.(check int) "no prefetch when disabled" 0
    (cval inst "io.readahead.issued")

(* ------------------------------------------------------------------ *)
(* The request stream of a sequential scan                             *)
(* ------------------------------------------------------------------ *)

let audited_scan make =
  let inst = make () in
  let path = "/big" in
  let size = 128 * 1024 in
  Driver.create inst path;
  Driver.write inst path ~off:0 (Driver.content ~seed:5 size);
  Driver.sync inst;
  Driver.flush_caches inst;
  let io = Driver.io inst in
  Io.set_recording io true;
  let step = 4 * 1024 in
  for i = 0 to (size / step) - 1 do
    ignore (Driver.read inst path ~off:(i * step) ~len:step)
  done;
  let reads =
    List.filter (fun r -> r.Io.kind = `Read) (Io.requests io)
  in
  Io.set_recording io false;
  ( List.length reads,
    List.fold_left (fun acc r -> acc + r.Io.sectors) 0 reads )

let check_scan_pair base fast =
  let base_n, base_sectors = audited_scan base in
  let fast_n, fast_sectors = audited_scan fast in
  Alcotest.(check bool)
    (Printf.sprintf "at least 2x fewer read requests (%d vs %d)" base_n fast_n)
    true
    (fast_n * 2 <= base_n);
  Alcotest.(check int) "total sectors transferred unchanged" base_sectors
    fast_sectors

let test_seq_scan_lfs () = check_scan_pair (lfs ~fast:false) (lfs ~fast:true)
let test_seq_scan_ffs () = check_scan_pair (ffs ~fast:false) (ffs ~fast:true)

let suite =
  [
    Alcotest.test_case "LFS equivalence with clustering+read-ahead" `Quick
      test_equivalence_lfs;
    Alcotest.test_case "FFS equivalence with clustering+read-ahead" `Quick
      test_equivalence_ffs;
    Alcotest.test_case "read-ahead counter accounting" `Quick test_counters;
    Alcotest.test_case "read-ahead disabled issues nothing" `Quick
      test_disabled_issues_nothing;
    Alcotest.test_case "LFS sequential scan: fewer, larger reads" `Quick
      test_seq_scan_lfs;
    Alcotest.test_case "FFS sequential scan: fewer, larger reads" `Quick
      test_seq_scan_ffs;
  ]
