(* The disk substrate: geometry timing model, crash injection, the I/O
   scheduler's sync/async accounting, and the CPU model. *)

module Clock = Lfs_disk.Clock
module Cpu_model = Lfs_disk.Cpu_model
module Disk = Lfs_disk.Disk
module Geometry = Lfs_disk.Geometry
module Io = Lfs_disk.Io

let geo () = Geometry.wren_iv ~size_bytes:(8 * 1024 * 1024)

let test_geometry_derivations () =
  let g = geo () in
  (* WREN-IV calibration: ~1.2-1.3 MB/s, ~17.5 ms average seek, 3600 RPM. *)
  let bw = Geometry.bandwidth_bytes_per_sec g /. 1_048_576.0 in
  if bw < 1.1 || bw > 1.4 then Alcotest.failf "bandwidth %.2f MB/s off" bw;
  let seek = float_of_int (Geometry.avg_seek_us g) /. 1000.0 in
  if seek < 14.0 || seek > 21.0 then Alcotest.failf "avg seek %.1f ms off" seek;
  Alcotest.(check int) "rotation" 16_666 (Geometry.rotation_us g);
  Alcotest.(check int) "zero seek" 0 (Geometry.seek_us g ~from_cyl:5 ~to_cyl:5);
  Alcotest.(check bool) "monotone seek" true
    (Geometry.seek_us g ~from_cyl:0 ~to_cyl:10
    < Geometry.seek_us g ~from_cyl:0 ~to_cyl:100)

let test_sequential_vs_random () =
  let d = Disk.create (geo ()) in
  let buf = Bytes.make 4096 'x' in
  (* The head parks at sector 0, so go elsewhere first to pay a seek;
     the continuation then streams with no positioning cost. *)
  let first = Disk.write d ~sector:4000 buf in
  let second = Disk.write d ~sector:4008 buf in
  Alcotest.(check bool) "sequential cheaper" true (second < first);
  let far = Disk.write d ~sector:15_000 buf in
  Alcotest.(check bool) "random costs positioning" true (far > 2 * second)

let test_streamed_classification () =
  let d = Disk.create (geo ()) in
  let buf = Bytes.make 4096 'x' in
  ignore (Disk.write d ~sector:4000 buf);
  Alcotest.(check bool) "first request not streamed" false
    (Disk.last_was_streamed d);
  ignore (Disk.write d ~sector:4008 buf);
  Alcotest.(check bool) "exact continuation streamed" true
    (Disk.last_was_streamed d);
  (* Same cylinder but not contiguous: no seek, yet not sequential. *)
  ignore (Disk.write d ~sector:4020 buf);
  Alcotest.(check bool) "gap on same cylinder not streamed" false
    (Disk.last_was_streamed d)

let test_missed_rotation () =
  let g = geo () in
  let d = Disk.create g in
  let buf = Bytes.make 4096 'x' in
  let t0 = Disk.write ~start_us:0 d ~sector:4000 buf in
  (* Back to back, the continuation streams with transfer-only cost. *)
  let streamed = Disk.write ~start_us:t0 d ~sector:4008 buf in
  Alcotest.(check int) "back-to-back pays transfer only"
    (Geometry.transfer_us g ~sectors:8)
    streamed;
  ignore (Disk.write ~start_us:(t0 + streamed) d ~sector:4016 buf);
  (* Arriving after the device idled: the platter kept spinning, so the
     head waits out the rest of the rotation before the transfer. *)
  let idle_us = 1000 in
  let at = t0 + streamed + Geometry.transfer_us g ~sectors:8 + idle_us in
  let late = Disk.write ~start_us:at d ~sector:4024 buf in
  let rot = Geometry.rotation_us g in
  Alcotest.(check int) "late continuation pays the missed rotation"
    (rot - (idle_us mod rot) + Geometry.transfer_us g ~sectors:8)
    late

let test_disk_data_roundtrip () =
  let d = Disk.create (geo ()) in
  let data = Bytes.init 1536 (fun i -> Char.chr (i mod 256)) in
  ignore (Disk.write d ~sector:42 data);
  let got, _ = Disk.read d ~sector:42 ~count:3 in
  Alcotest.(check bytes) "roundtrip" data got;
  (* Unwritten sectors read as zeros. *)
  let zeros, _ = Disk.read d ~sector:45 ~count:1 in
  Alcotest.(check bytes) "zeros" (Bytes.make 512 '\000') zeros

let test_disk_bounds () =
  let d = Disk.create (geo ()) in
  Alcotest.(check bool) "read oob" true
    (try
       ignore (Disk.read d ~sector:(-1) ~count:1);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "write misaligned" true
    (try
       ignore (Disk.write d ~sector:0 (Bytes.make 100 'x'));
       false
     with Invalid_argument _ -> true)

let test_crash_injection () =
  let d = Disk.create (geo ()) in
  Disk.set_crash_after d ~sectors:2;
  let data = Bytes.make 2048 'A' in
  (* 4 sectors requested, 2 permitted: the write tears. *)
  Alcotest.(check bool) "raises" true
    (try
       ignore (Disk.write d ~sector:0 data);
       false
     with Disk.Crash -> true);
  Alcotest.(check bool) "crashed" true (Disk.crashed d);
  Disk.clear_crash d;
  let got, _ = Disk.read d ~sector:0 ~count:4 in
  Alcotest.(check bytes) "torn prefix" (Bytes.make 1024 'A') (Bytes.sub got 0 1024);
  Alcotest.(check bytes) "torn tail" (Bytes.make 1024 '\000') (Bytes.sub got 1024 1024);
  (* Writes work again after clear. *)
  ignore (Disk.write d ~sector:0 data)

let test_crash_while_down () =
  let d = Disk.create (geo ()) in
  Disk.set_crash_after d ~sectors:0;
  (try ignore (Disk.write d ~sector:0 (Bytes.make 512 'x')) with Disk.Crash -> ());
  Alcotest.(check bool) "still down" true
    (try
       ignore (Disk.write d ~sector:8 (Bytes.make 512 'x'));
       false
     with Disk.Crash -> true)

let test_snapshot_restore () =
  let d = Disk.create (geo ()) in
  ignore (Disk.write d ~sector:0 (Bytes.make 512 'A'));
  let snap = Disk.snapshot d in
  ignore (Disk.write d ~sector:0 (Bytes.make 512 'B'));
  Disk.restore d snap;
  let got, _ = Disk.read d ~sector:0 ~count:1 in
  Alcotest.(check char) "restored" 'A' (Bytes.get got 0)

let make_io () =
  let d = Disk.create (geo ()) in
  let clock = Clock.create () in
  (Io.create ~max_backlog_us:100_000 d clock Cpu_model.free, d, clock)

let test_io_sync_advances_clock () =
  let io, _, clock = make_io () in
  Io.sync_write io ~sector:0 (Bytes.make 4096 'x');
  let t1 = Clock.now_us clock in
  Alcotest.(check bool) "sync waits" true (t1 > 0);
  ignore (Io.sync_read io ~sector:0 ~count:8);
  Alcotest.(check bool) "read waits" true (Clock.now_us clock > t1)

let test_io_async_overlaps () =
  let io, _, clock = make_io () in
  Io.async_write io ~sector:0 (Bytes.make 4096 'x');
  Alcotest.(check int) "no wait" 0 (Clock.now_us clock);
  Alcotest.(check bool) "queued" true (Io.backlog_us io > 0);
  Io.drain io;
  Alcotest.(check int) "drained" 0 (Io.backlog_us io);
  Alcotest.(check bool) "time passed" true (Clock.now_us clock > 0)

let test_io_throttling () =
  let io, _, clock = make_io () in
  (* Queue far more than the 100 ms backlog allowance: the caller must
     eventually be throttled. *)
  for i = 0 to 63 do
    Io.async_write io ~sector:(i * 8) (Bytes.make 4096 'x')
  done;
  Alcotest.(check bool) "throttled" true (Clock.now_us clock > 0);
  Alcotest.(check bool) "backlog capped" true (Io.backlog_us io <= 100_000)

let test_io_request_log () =
  let io, _, _ = make_io () in
  Io.set_recording io true;
  Io.sync_write io ~sector:0 (Bytes.make 512 'x');
  Io.async_write io ~sector:8 (Bytes.make 512 'x');
  ignore (Io.sync_read io ~sector:0 ~count:1);
  let reqs = Io.requests io in
  Alcotest.(check int) "three requests" 3 (List.length reqs);
  (match reqs with
  | [ w1; w2; r ] ->
      Alcotest.(check bool) "w1 sync" true w1.Io.sync;
      Alcotest.(check bool) "w2 async" false w2.Io.sync;
      Alcotest.(check bool) "r is read" true (r.Io.kind = `Read)
  | _ -> Alcotest.fail "unexpected log shape");
  Io.set_recording io false;
  Io.sync_write io ~sector:0 (Bytes.make 512 'x');
  Alcotest.(check int) "log cleared and off" 0 (List.length (Io.requests io))

let test_cpu_model () =
  let m = Cpu_model.sun4_260 in
  Alcotest.(check int) "copy 1KB" m.Cpu_model.per_kb_us
    (Cpu_model.copy_us m ~bytes:1024);
  Alcotest.(check bool) "copy rounds up" true
    (Cpu_model.copy_us m ~bytes:1 > 0);
  let fast = Cpu_model.scale m 0.1 in
  Alcotest.(check bool) "scaled" true
    (fast.Cpu_model.syscall_us * 9 < m.Cpu_model.syscall_us)

let test_clock () =
  let c = Clock.create () in
  Clock.advance_us c 500;
  Clock.advance_to_us c 300 (* no-op backwards *);
  Alcotest.(check int) "monotone" 500 (Clock.now_us c);
  Clock.advance_to_us c 800;
  Alcotest.(check int) "forward" 800 (Clock.now_us c);
  Alcotest.(check bool) "negative rejected" true
    (try
       Clock.advance_us c (-1);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "geometry derivations" `Quick test_geometry_derivations;
    Alcotest.test_case "sequential vs random" `Quick test_sequential_vs_random;
    Alcotest.test_case "streamed classification" `Quick
      test_streamed_classification;
    Alcotest.test_case "missed rotation on idle continuation" `Quick
      test_missed_rotation;
    Alcotest.test_case "data roundtrip" `Quick test_disk_data_roundtrip;
    Alcotest.test_case "bounds checks" `Quick test_disk_bounds;
    Alcotest.test_case "crash injection (torn write)" `Quick test_crash_injection;
    Alcotest.test_case "crash keeps device down" `Quick test_crash_while_down;
    Alcotest.test_case "snapshot/restore" `Quick test_snapshot_restore;
    Alcotest.test_case "sync advances clock" `Quick test_io_sync_advances_clock;
    Alcotest.test_case "async overlaps" `Quick test_io_async_overlaps;
    Alcotest.test_case "writer throttling" `Quick test_io_throttling;
    Alcotest.test_case "request log" `Quick test_io_request_log;
    Alcotest.test_case "cpu model" `Quick test_cpu_model;
    Alcotest.test_case "clock" `Quick test_clock;
  ]
