(* The trace substrate: generation properties, serialization, replay. *)

module W = Lfs_workload
module Trace = Lfs_workload.Trace
module Model_fs = Lfs_scenario.Model_fs

let qcheck = QCheck_alcotest.to_alcotest

let test_generation_well_formed () =
  let events = Trace.generate ~seed:1 ~config:{ Trace.default_gen with Trace.events = 2_000; target_live = 300 } () in
  (* Replay against the pure model: a well-formed trace never produces a
     failing operation. *)
  let model = Model_fs.create () in
  let split p = List.tl (String.split_on_char '/' p) in
  List.iteri
    (fun i ev ->
      let outcome =
        match ev with
        | Trace.Mkdir { path } -> Model_fs.mkdir model (split path)
        | Trace.Create { path; size } ->
            (match Model_fs.create_file model (split path) with
            | Model_fs.Done -> Model_fs.write model (split path) ~off:0 (Bytes.create size)
            | other -> other)
        | Trace.Overwrite { path; size } ->
            Model_fs.write model (split path) ~off:0 (Bytes.create size)
        | Trace.Read { path } -> (
            match Model_fs.read model (split path) ~off:0 ~len:1 with
            | Model_fs.Data _ -> Model_fs.Done
            | other -> other)
        | Trace.Delete { path } -> Model_fs.delete model (split path)
      in
      if outcome = Model_fs.Failed then
        Alcotest.failf "event %d (%s) fails on the model" i
          (Format.asprintf "%a" Trace.pp_event ev))
    events

let test_generation_mix () =
  let events =
    Trace.generate ~seed:7
      ~config:{ Trace.default_gen with Trace.events = 5_000; target_live = 500 }
      ()
  in
  let creates = ref 0 and reads = ref 0 and small = ref 0 in
  List.iter
    (fun ev ->
      match ev with
      | Trace.Create { size; _ } ->
          incr creates;
          if size <= 8192 then incr small
      | Trace.Read _ -> incr reads
      | Trace.Overwrite _ | Trace.Delete _ | Trace.Mkdir _ -> ())
    events;
  (* The office/engineering profile: mostly small files, plenty of
     reads. *)
  Alcotest.(check bool) "mostly small files" true
    (float_of_int !small > 0.7 *. float_of_int !creates);
  Alcotest.(check bool) "reads happen" true (!reads > 1000)

let prop_serialization_roundtrip =
  QCheck.Test.make ~name:"trace line roundtrip" ~count:100
    QCheck.(pair (int_bound 1000) (int_bound 100))
    (fun (seed, extra) ->
      let events =
        Trace.generate ~seed
          ~config:{ Trace.default_gen with Trace.events = 50 + extra; target_live = 20; dirs = 3 }
          ()
      in
      Trace.of_lines (Trace.to_lines events) = events)

let test_replay_both_systems () =
  let events =
    Trace.generate ~seed:3
      ~config:{ Trace.default_gen with Trace.events = 800; target_live = 150; dirs = 5 }
      ()
  in
  let results =
    List.map (fun inst -> Trace.replay inst events) (W.Setup.both ~disk_mb:32 ())
  in
  match results with
  | [ lfs; ffs ] ->
      Alcotest.(check int) "same events" lfs.Trace.events ffs.Trace.events;
      Alcotest.(check int) "same bytes written" lfs.Trace.bytes_written
        ffs.Trace.bytes_written;
      Alcotest.(check int) "same bytes read" lfs.Trace.bytes_read
        ffs.Trace.bytes_read;
      (* The headline: LFS is faster end to end on the mixed workload. *)
      Alcotest.(check bool) "LFS faster overall" true
        (lfs.Trace.ops_per_sec > ffs.Trace.ops_per_sec)
  | _ -> Alcotest.fail "expected two systems"

(* The Figure 1/2 audit must be identical whether read through the
   legacy request log ([Io.set_recording]/[Io.requests]) or a sink
   attached directly to the trace bus — the former is documented as a
   thin view over the latter. *)
let test_fig12_audit_paths_agree () =
  List.iter
    (fun inst ->
      let io = W.Driver.io inst in
      let bus = W.Driver.bus inst in
      let label = W.Driver.label inst in
      (* Same preamble as the creation-trace experiment. *)
      W.Driver.mkdir inst "/dir1";
      W.Driver.mkdir inst "/dir2";
      W.Driver.sync inst;
      (* Attach both consumers at the same instant, then replay the
         two-file creation of §3.1. *)
      let sink =
        Lfs_obs.Bus.attach
          ~filter:(function
            | Lfs_obs.Event.Disk_request _ -> true | _ -> false)
          bus
      in
      Lfs_disk.Io.set_recording io true;
      W.Driver.create inst "/dir1/file1";
      W.Driver.write inst "/dir1/file1" ~off:0 (W.Driver.content ~seed:1 4096);
      W.Driver.create inst "/dir2/file2";
      W.Driver.write inst "/dir2/file2" ~off:0 (W.Driver.content ~seed:2 4096);
      W.Driver.sync inst;
      let legacy = Lfs_disk.Io.requests io in
      Lfs_disk.Io.set_recording io false;
      let via_bus =
        List.filter_map
          (fun (r : Lfs_obs.Event.record) ->
            match r.Lfs_obs.Event.event with
            | Lfs_obs.Event.Disk_request
                { kind; sync; sector; sectors; service_us; sequential } ->
                Some
                  {
                    Lfs_disk.Io.issued_at_us = r.Lfs_obs.Event.at_us;
                    kind =
                      (match kind with
                      | Lfs_obs.Event.Read -> `Read
                      | Lfs_obs.Event.Write -> `Write);
                    sync;
                    sector;
                    sectors;
                    service_us;
                    sequential;
                  }
            | _ -> None)
          (Lfs_obs.Bus.records sink)
      in
      Lfs_obs.Bus.detach bus sink;
      Alcotest.(check bool)
        (label ^ ": the audit saw disk requests")
        true
        (List.length legacy > 0);
      Alcotest.(check int)
        (label ^ ": same request count")
        (List.length via_bus) (List.length legacy);
      List.iteri
        (fun i ((a : Lfs_disk.Io.request), b) ->
          if a <> b then
            Alcotest.failf "%s: audit paths disagree at request %d" label i)
        (List.combine legacy via_bus))
    (W.Setup.both ~disk_mb:16 ())

let suite =
  [
    Alcotest.test_case "generated traces are well-formed" `Quick
      test_generation_well_formed;
    Alcotest.test_case "workload mix" `Quick test_generation_mix;
    qcheck prop_serialization_roundtrip;
    Alcotest.test_case "replay on both systems" `Slow test_replay_both_systems;
    Alcotest.test_case "fig 1/2 audit agrees across log paths" `Quick
      test_fig12_audit_paths_agree;
  ]
