(* The fault-injection layer and the crash-point recovery harness.

   The sweeps here are the CI-pinned version of `lfstool crashtest`:
   every write boundary of a small smallfile workload, on both systems,
   must remount to a state the durable model accepts.  The remaining
   cases cover the other fault kinds one by one: torn writes at the log
   tail, transient read errors absorbed by retry/backoff, retry-budget
   exhaustion surfacing as a typed error, and a sticky bad sector over a
   checkpoint region. *)

module Crashpoint = Lfs_workload.Crashpoint
module Faulty = Lfs_disk.Faulty
module Io = Lfs_disk.Io
module Bus = Lfs_obs.Bus
module Event = Lfs_obs.Event
module Metrics = Lfs_obs.Metrics

let ops = Crashpoint.smallfile ~files:4 ~size:1500 ()

let fail_violations label = function
  | [] -> ()
  | vs -> Alcotest.failf "%s:\n  %s" label (String.concat "\n  " vs)

let check_sweep ?torn sys =
  let o = Crashpoint.sweep ?torn ~max_boundaries:256 sys ops in
  fail_violations o.Crashpoint.label o.Crashpoint.violations;
  if o.Crashpoint.total_writes = 0 then Alcotest.fail "workload never wrote";
  (* Under the cap, so the sweep was exhaustive: every boundary tested. *)
  Alcotest.(check int) "exhaustive" o.Crashpoint.total_writes
    o.Crashpoint.boundaries_tested;
  (* Each tested boundary must actually have cut the power. *)
  List.iter
    (fun (p : Crashpoint.point) ->
      if not p.Crashpoint.crashed then
        Alcotest.failf "boundary %d never crashed" p.Crashpoint.boundary)
    o.Crashpoint.points;
  if o.Crashpoint.faults < o.Crashpoint.boundaries_tested then
    Alcotest.failf "only %d faults over %d replays" o.Crashpoint.faults
      o.Crashpoint.boundaries_tested

let test_sweep_lfs () = check_sweep `Lfs
let test_sweep_ffs () = check_sweep `Ffs

(* Torn variant: the crashing write persists a seeded sector prefix.
   LFS-only — its log never overwrites live data, so durability must
   hold; FFS update-in-place can legitimately tear a directory block
   over durable entries (fsck's lost+found case). *)
let test_torn_sweep_lfs () = check_sweep ~torn:true `Lfs

let test_read_faults () =
  List.iter
    (fun sys ->
      let o = Crashpoint.read_fault_run ~rate:0.15 ~burst:2 sys ops in
      fail_violations
        (Crashpoint.system_name sys ^ " read faults")
        o.Crashpoint.rf_violations;
      if o.Crashpoint.read_errors = 0 then Alcotest.fail "no faults injected";
      (* Every injected fault costs one retry, and every retry backs
         off. *)
      if o.Crashpoint.retries < o.Crashpoint.read_errors then
        Alcotest.failf "%d retries for %d injected faults"
          o.Crashpoint.retries o.Crashpoint.read_errors;
      if o.Crashpoint.backoff_us <= 0 then Alcotest.fail "no backoff recorded")
    [ `Lfs; `Ffs ]

let test_retry_exhaustion () =
  let io = Common.make_io () in
  let f = Faulty.attach io { Faulty.quiet with seed = 5; bad_sectors = [ 7 ] } in
  (* A neighbouring read is unaffected by the sticky sector. *)
  ignore (Io.sync_read io ~sector:8 ~count:1);
  (match Io.sync_read io ~sector:7 ~count:1 with
  | _ -> Alcotest.fail "read of a bad sector succeeded"
  | exception Io.Read_failed { sector; attempts } ->
      Alcotest.(check int) "failed sector" 7 sector;
      Alcotest.(check int) "budget spent" 4 attempts);
  let snap = Metrics.snapshot (Io.metrics io) in
  let v name = Option.value ~default:0 (Metrics.counter_value snap name) in
  (* 3 retries after the first attempt, exponential backoff 1+2+4 ms. *)
  Alcotest.(check int) "io.retries" 3 (v "io.retries");
  Alcotest.(check int) "io.backoff_us" 7000 (v "io.backoff_us");
  Alcotest.(check int) "sticky faults" 4 (v "disk.faults.bad_sector_reads");
  Faulty.detach f

let test_transient_within_budget () =
  let io = Common.make_io () in
  let f =
    Faulty.attach io
      { Faulty.quiet with seed = 6; read_error_rate = 1.0; read_error_burst = 2 }
  in
  (* Every fresh request fails twice, then the third attempt goes
     through — inside the default budget of 4. *)
  ignore (Io.sync_read io ~sector:0 ~count:2);
  let snap = Metrics.snapshot (Io.metrics io) in
  let v name = Option.value ~default:0 (Metrics.counter_value snap name) in
  Alcotest.(check int) "io.retries" 2 (v "io.retries");
  Alcotest.(check int) "io.backoff_us" 3000 (v "io.backoff_us");
  Alcotest.(check int) "transient faults" 2 (v "disk.faults.read_errors");
  Faulty.detach f

let test_bad_sector_checkpoint () =
  let o = Crashpoint.bad_sector_run () in
  fail_violations "bad sector over checkpoint A" o.Crashpoint.bs_violations;
  if o.Crashpoint.bad_sector_reads = 0 then
    Alcotest.fail "checkpoint region A was never read"

(* Regression for torn-tail tolerance in Recovery: tear the segment
   write at the log tail, then also make its summary region sticky-bad,
   so roll-forward hits both a corrupt and an unreadable summary.  The
   mount must succeed (truncating the log there) with all checkpointed
   data intact, instead of letting Io.Read_failed escape. *)
let test_torn_tail_summary () =
  let fs = Common.make_lfs () in
  let io = Lfs_core.Fs.io fs in
  Common.write_file fs "/a" (Common.pattern ~seed:1 4000);
  Lfs_core.Fs.sync fs;
  Common.write_file fs "/b" (Common.pattern ~seed:2 4000);
  let sink =
    Bus.attach
      ~filter:(function Event.Fault_injected _ -> true | _ -> false)
      (Io.bus io)
  in
  let f =
    Faulty.attach io
      { Faulty.quiet with seed = 3; crash_after_writes = Some 0; torn_write = true }
  in
  (try
     Lfs_core.Fs.sync fs;
     Alcotest.fail "sync survived the armed crash"
   with Faulty.Crash -> ());
  let torn_sector =
    match
      List.filter_map
        (fun (r : Event.record) ->
          match r.Event.event with
          | Event.Fault_injected { sector; _ } -> Some sector
          | _ -> None)
        (Bus.records sink)
    with
    | s :: _ -> s
    | [] -> Alcotest.fail "no fault event on the bus"
  in
  Faulty.clear_crash f;
  Faulty.detach f;
  (* The torn request began with the segment summary; leaving its first
     sector unreadable forces the Read_failed path through recovery. *)
  let f2 =
    Faulty.attach io { Faulty.quiet with seed = 4; bad_sectors = [ torn_sector ] }
  in
  (match Lfs_core.Fs.mount ~config:Common.small_config io with
  | Error e -> Alcotest.failf "remount after torn tail failed: %s" e
  | Ok fs2 ->
      Common.check_bytes "checkpointed file survives"
        (Common.pattern ~seed:1 4000)
        (Common.check_ok "read /a" (Lfs_core.Fs.read fs2 "/a" ~off:0 ~len:4000));
      Alcotest.(check bool) "unsynced file legitimately at risk" true
        (match Lfs_core.Fs.read fs2 "/b" ~off:0 ~len:4000 with
        | Ok _ | Error _ -> true));
  Faulty.detach f2

let suite =
  [
    Alcotest.test_case "lfs: exhaustive crash-point sweep" `Quick test_sweep_lfs;
    Alcotest.test_case "ffs: exhaustive crash-point sweep" `Quick test_sweep_ffs;
    Alcotest.test_case "lfs: torn-write sweep" `Quick test_torn_sweep_lfs;
    Alcotest.test_case "transient read errors are retried" `Quick
      test_read_faults;
    Alcotest.test_case "retry-budget exhaustion is typed" `Quick
      test_retry_exhaustion;
    Alcotest.test_case "transient burst within budget" `Quick
      test_transient_within_budget;
    Alcotest.test_case "bad sector over checkpoint region A" `Quick
      test_bad_sector_checkpoint;
    Alcotest.test_case "torn+unreadable log-tail summary" `Quick
      test_torn_tail_summary;
  ]
