(* The fault-injection layer and the crash-point recovery harness,
   driven through the scenario DSL.

   The sweeps here are the CI-pinned version of `lfstool scenario
   --sweep`: every write boundary of a small create/sync/delete
   workload, on both systems, must remount to a state the durable model
   accepts.  The remaining cases cover the other fault kinds one by one:
   torn writes at the log tail, transient read errors absorbed by
   retry/backoff, retry-budget exhaustion surfacing as a typed error,
   and a sticky bad sector over a checkpoint region.  Scoped injection
   goes through Scenario.with_faults — the scenario-entry lint rule
   keeps the raw Crashpoint/Faulty entry points out of test code. *)

module Crashpoint = Lfs_workload.Crashpoint
module Scenario = Lfs_scenario.Scenario
module Faulty = Lfs_disk.Faulty
module Io = Lfs_disk.Io
module Bus = Lfs_obs.Bus
module Event = Lfs_obs.Event
module Metrics = Lfs_obs.Metrics

(* A smallfile-shaped spec: a handful of created-and-written files
   across interleaved syncs, one delete. *)
let smallfile_spec sys =
  Scenario.(
    make |> system sys
    |> ops [ Create 4; Sync 1; Delete 1 ]
    |> count 6 |> payload 1500 |> boundaries 256)

let fail_failure = function
  | None -> ()
  | Some f ->
      Alcotest.failf "%s\nreplay: %s" f.Scenario.message f.Scenario.replay

let check_sweep ?(torn = false) sys =
  let spec = Scenario.crash_sweep (smallfile_spec sys) in
  let spec = if torn then Scenario.faults [ Scenario.Torn ] spec else spec in
  let r = Scenario.run spec in
  fail_failure r.Scenario.failure;
  let o =
    match r.Scenario.sweep with
    | Some o -> o
    | None -> Alcotest.fail "sweep scenario produced no sweep outcome"
  in
  if o.Crashpoint.total_writes = 0 then Alcotest.fail "workload never wrote";
  (* Under the cap, so the sweep was exhaustive: every boundary tested. *)
  Alcotest.(check int) "exhaustive" o.Crashpoint.total_writes
    o.Crashpoint.boundaries_tested;
  (* Each tested boundary must actually have cut the power. *)
  List.iter
    (fun (p : Crashpoint.point) ->
      if not p.Crashpoint.crashed then
        Alcotest.failf "boundary %d never crashed" p.Crashpoint.boundary)
    o.Crashpoint.points;
  if o.Crashpoint.faults < o.Crashpoint.boundaries_tested then
    Alcotest.failf "only %d faults over %d replays" o.Crashpoint.faults
      o.Crashpoint.boundaries_tested

let test_sweep_lfs () = check_sweep `Lfs
let test_sweep_ffs () = check_sweep `Ffs

(* Torn variant: the crashing write persists a seeded sector prefix.
   LFS-only — its log never overwrites live data, so durability must
   hold; FFS update-in-place can legitimately tear a directory block
   over durable entries (fsck's lost+found case). *)
let test_torn_sweep_lfs () = check_sweep ~torn:true `Lfs

let test_read_faults () =
  List.iter
    (fun sys ->
      let r =
        Scenario.(
          smallfile_spec sys |> count 12
          |> faults [ Transient { rate = 0.15; burst = 2 } ]
          |> read_back |> seed 11 |> run)
      in
      fail_failure r.Scenario.failure;
      let s = r.Scenario.stats in
      if s.Scenario.read_errors = 0 then Alcotest.fail "no faults injected";
      (* Every injected fault costs one retry, and every retry backs
         off. *)
      if s.Scenario.retries < s.Scenario.read_errors then
        Alcotest.failf "%d retries for %d injected faults" s.Scenario.retries
          s.Scenario.read_errors;
      if s.Scenario.backoff_us <= 0 then Alcotest.fail "no backoff recorded")
    [ `Lfs; `Ffs ]

let test_retry_exhaustion () =
  let io = Common.make_io () in
  let (), inj =
    Scenario.with_faults ~seed:5 io
      [ Scenario.Bad_sectors [ 7 ] ]
      (fun () ->
        (* A neighbouring read is unaffected by the sticky sector. *)
        ignore (Io.sync_read io ~sector:8 ~count:1);
        match Io.sync_read io ~sector:7 ~count:1 with
        | _ -> Alcotest.fail "read of a bad sector succeeded"
        | exception Io.Read_failed { sector; attempts } ->
            Alcotest.(check int) "failed sector" 7 sector;
            Alcotest.(check int) "budget spent" 4 attempts)
  in
  Alcotest.(check int) "faults while attached" 4 inj.Scenario.inj_faults;
  let snap = Metrics.snapshot (Io.metrics io) in
  let v name = Option.value ~default:0 (Metrics.counter_value snap name) in
  (* 3 retries after the first attempt, exponential backoff 1+2+4 ms. *)
  Alcotest.(check int) "io.retries" 3 (v "io.retries");
  Alcotest.(check int) "io.backoff_us" 7000 (v "io.backoff_us");
  Alcotest.(check int) "sticky faults" 4 (v "disk.faults.bad_sector_reads")

let test_transient_within_budget () =
  let io = Common.make_io () in
  let (), inj =
    Scenario.with_faults ~seed:6 io
      [ Scenario.Transient { rate = 1.0; burst = 2 } ]
      (fun () ->
        (* Every fresh request fails twice, then the third attempt goes
           through — inside the default budget of 4. *)
        ignore (Io.sync_read io ~sector:0 ~count:2))
  in
  Alcotest.(check int) "faults while attached" 2 inj.Scenario.inj_faults;
  let snap = Metrics.snapshot (Io.metrics io) in
  let v name = Option.value ~default:0 (Metrics.counter_value snap name) in
  Alcotest.(check int) "io.retries" 2 (v "io.retries");
  Alcotest.(check int) "io.backoff_us" 3000 (v "io.backoff_us");
  Alcotest.(check int) "transient faults" 2 (v "disk.faults.read_errors")

let test_bad_sector_checkpoint () =
  let r = Scenario.(make |> faults [ Checkpoint_bad_sector ] |> run) in
  fail_failure r.Scenario.failure;
  if r.Scenario.stats.Scenario.bad_sector_reads = 0 then
    Alcotest.fail "checkpoint region A was never read"

(* Regression for torn-tail tolerance in Recovery: tear the segment
   write at the log tail, then also make its summary region sticky-bad,
   so roll-forward hits both a corrupt and an unreadable summary.  The
   mount must succeed (truncating the log there) with all checkpointed
   data intact, instead of letting Io.Read_failed escape. *)
let test_torn_tail_summary () =
  let fs = Common.make_lfs () in
  let io = Lfs_core.Fs.io fs in
  Common.write_file fs "/a" (Common.pattern ~seed:1 4000);
  Lfs_core.Fs.sync fs;
  Common.write_file fs "/b" (Common.pattern ~seed:2 4000);
  let sink =
    Bus.attach
      ~filter:(function Event.Fault_injected _ -> true | _ -> false)
      (Io.bus io)
  in
  let (), crash_inj =
    Scenario.with_faults ~seed:3 io
      [ Scenario.Crash_after 0; Scenario.Torn ]
      (fun () ->
        try
          Lfs_core.Fs.sync fs;
          Alcotest.fail "sync survived the armed crash"
        with Faulty.Crash -> ())
  in
  Alcotest.(check bool) "machine went down" true crash_inj.Scenario.inj_crashed;
  let torn_sector =
    match
      List.filter_map
        (fun (r : Event.record) ->
          match r.Event.event with
          | Event.Fault_injected { sector; _ } -> Some sector
          | _ -> None)
        (Bus.records sink)
    with
    | s :: _ -> s
    | [] -> Alcotest.fail "no fault event on the bus"
  in
  (* The torn request began with the segment summary; leaving its first
     sector unreadable forces the Read_failed path through recovery. *)
  let (), _ =
    Scenario.with_faults ~seed:4 io
      [ Scenario.Bad_sectors [ torn_sector ] ]
      (fun () ->
        match Lfs_core.Fs.mount ~config:Common.small_config io with
        | Error e -> Alcotest.failf "remount after torn tail failed: %s" e
        | Ok fs2 ->
            Common.check_bytes "checkpointed file survives"
              (Common.pattern ~seed:1 4000)
              (Common.check_ok "read /a"
                 (Lfs_core.Fs.read fs2 "/a" ~off:0 ~len:4000));
            Alcotest.(check bool) "unsynced file legitimately at risk" true
              (match Lfs_core.Fs.read fs2 "/b" ~off:0 ~len:4000 with
              | Ok _ | Error _ -> true))
  in
  ()

let suite =
  [
    Alcotest.test_case "lfs: exhaustive crash-point sweep" `Quick test_sweep_lfs;
    Alcotest.test_case "ffs: exhaustive crash-point sweep" `Quick test_sweep_ffs;
    Alcotest.test_case "lfs: torn-write sweep" `Quick test_torn_sweep_lfs;
    Alcotest.test_case "transient read errors are retried" `Quick
      test_read_faults;
    Alcotest.test_case "retry-budget exhaustion is typed" `Quick
      test_retry_exhaustion;
    Alcotest.test_case "transient burst within budget" `Quick
      test_transient_within_budget;
    Alcotest.test_case "bad sector over checkpoint region A" `Quick
      test_bad_sector_checkpoint;
    Alcotest.test_case "torn+unreadable log-tail summary" `Quick
      test_torn_tail_summary;
  ]
