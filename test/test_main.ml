let () =
  Alcotest.run "lfs-repro"
    [
      ("util", Test_util.suite);
      ("cache", Test_cache.suite);
      ("vfs", Test_vfs.suite);
      ("codecs", Test_codecs.suite);
      ("disk", Test_disk.suite);
      ("sched", Test_sched.suite);
      ("volume", Test_volume.suite);
      ("obs", Test_obs.suite);
      ("profile", Test_profile.suite);
      ("lfs-basic", Test_lfs_basic.suite);
      ("lfs-internals", Test_lfs_internals.suite);
      ("lfs-recovery", Test_lfs_recovery.suite);
      ("lfs-cleaner", Test_lfs_cleaner.suite);
      ("fs-conformance", Generic_suite.suite);
      ("model", Test_model.suite);
      ("check", Test_check.suite);
      ("ffs", Test_ffs.suite);
      ("ffs-alloc", Test_ffs_alloc.suite);
      ("readahead", Test_readahead.suite);
      ("workload", Test_workload.suite);
      ("engine", Test_engine.suite);
      ("crashpoint", Test_crashpoint.suite);
      ("scenario", Test_scenario.suite);
      ("trace", Test_trace.suite);
      ("misc", Test_misc.suite);
    ]
