(* The file cache: dirty tracking, eviction discipline, write-back
   triggers. *)

module Cache = Lfs_cache.Block_cache
module Clock = Lfs_disk.Clock

let key owner blkno = { Cache.owner; blkno }

let make ?(capacity_blocks = 4) () =
  let clock = Clock.create () in
  (Cache.create ~capacity_blocks clock, clock)

let block c = Bytes.make 16 c

let test_insert_find () =
  let t, _ = make () in
  Cache.insert t (key 1 0) ~dirty:false (block 'a');
  Alcotest.(check bool) "mem" true (Cache.mem t (key 1 0));
  (match Cache.find t (key 1 0) with
  | Some b -> Alcotest.(check char) "content" 'a' (Bytes.get b 0)
  | None -> Alcotest.fail "lost");
  Alcotest.(check int) "hits" 1 (Cache.stats_hits t);
  ignore (Cache.find t (key 9 9));
  Alcotest.(check int) "misses" 1 (Cache.stats_misses t)

let test_dirty_lifecycle () =
  let t, _ = make () in
  Cache.insert t (key 1 0) ~dirty:false (block 'a');
  Alcotest.(check int) "clean" 0 (Cache.dirty_count t);
  Cache.mark_dirty t (key 1 0);
  Cache.mark_dirty t (key 1 0);
  Alcotest.(check int) "one dirty" 1 (Cache.dirty_count t);
  Cache.mark_clean t (key 1 0);
  Alcotest.(check int) "cleaned" 0 (Cache.dirty_count t);
  Alcotest.(check bool) "mark_dirty missing raises" true
    (try
       Cache.mark_dirty t (key 5 5);
       false
     with Not_found -> true)

let test_clean_eviction_only () =
  let t, _ = make ~capacity_blocks:2 () in
  Cache.insert t (key 1 0) ~dirty:true (block 'a');
  Cache.insert t (key 1 1) ~dirty:true (block 'b');
  Cache.insert t (key 1 2) ~dirty:true (block 'c');
  (* Nothing evictable: the cache must hold all three and admit it is
     over capacity. *)
  Alcotest.(check int) "holds dirty" 3 (Cache.length t);
  Alcotest.(check bool) "over capacity" true (Cache.over_capacity t);
  Cache.mark_clean t (key 1 0);
  Cache.mark_clean t (key 1 1);
  (* Next insert reclaims clean LRU entries down to capacity. *)
  Cache.insert t (key 1 3) ~dirty:false (block 'd');
  Alcotest.(check bool) "within capacity" true (Cache.length t <= 2 + 1);
  Alcotest.(check bool) "dirty survived" true (Cache.mem t (key 1 2))

let test_fold_dirty_order () =
  let t, _ = make ~capacity_blocks:10 () in
  Cache.insert t (key 1 0) ~dirty:true (block 'a');
  Cache.insert t (key 2 0) ~dirty:true (block 'b');
  Cache.insert t (key 1 1) ~dirty:false (block 'c');
  Cache.insert t (key 3 0) ~dirty:true (block 'd');
  let keys = Cache.dirty_keys t in
  Alcotest.(check int) "three dirty" 3 (List.length keys);
  (* Oldest first. *)
  Alcotest.(check int) "oldest owner" 1 (List.hd keys).Cache.owner

let test_age_tracking () =
  let t, clock = make () in
  Alcotest.(check (option int)) "no dirty" None (Cache.oldest_dirty_age_us t);
  Cache.insert t (key 1 0) ~dirty:true (block 'a');
  Clock.advance_us clock 1_000;
  Cache.insert t (key 1 1) ~dirty:true (block 'b');
  Clock.advance_us clock 500;
  (match Cache.oldest_dirty_age_us t with
  | Some age -> Alcotest.(check int) "oldest age" 1_500 age
  | None -> Alcotest.fail "no age");
  Cache.mark_clean t (key 1 0);
  match Cache.oldest_dirty_age_us t with
  | Some age -> Alcotest.(check int) "second age" 500 age
  | None -> Alcotest.fail "no age after clean"

let test_remove_and_drop_clean () =
  let t, _ = make ~capacity_blocks:10 () in
  Cache.insert t (key 1 0) ~dirty:true (block 'a');
  Cache.insert t (key 1 1) ~dirty:false (block 'b');
  Cache.remove t (key 1 0);
  Alcotest.(check int) "dirty count updated" 0 (Cache.dirty_count t);
  Cache.insert t (key 2 0) ~dirty:true (block 'c');
  Cache.drop_clean t;
  Alcotest.(check bool) "clean dropped" false (Cache.mem t (key 1 1));
  Alcotest.(check bool) "dirty kept" true (Cache.mem t (key 2 0))

let test_insert_never_evicts_self () =
  let t, _ = make ~capacity_blocks:2 () in
  Cache.insert t (key 1 0) ~dirty:true (block 'a');
  Cache.insert t (key 1 1) ~dirty:true (block 'b');
  Cache.insert t (key 1 2) ~dirty:true (block 'c');
  (* Over capacity with nothing but dirty blocks: the only clean entry
     eviction could pick is the one being inserted.  It must survive —
     evicting the block just fetched would make every subsequent miss on
     it refetch from disk forever. *)
  Cache.insert t (key 2 0) ~dirty:false (block 'd');
  Alcotest.(check bool) "just-inserted clean block survives" true
    (Cache.mem t (key 2 0));
  (* The protection covers only the insert itself: the next clean insert
     picks the older clean block as its victim. *)
  Cache.insert t (key 2 1) ~dirty:false (block 'e');
  Alcotest.(check bool) "newest insert survives" true (Cache.mem t (key 2 1));
  Alcotest.(check bool) "older clean block evicted" false
    (Cache.mem t (key 2 0))

let test_insert_replaces_dirty () =
  let t, _ = make () in
  Cache.insert t (key 1 0) ~dirty:true (block 'a');
  Cache.insert t (key 1 0) ~dirty:false (block 'b');
  Alcotest.(check int) "dirty count drops on replace" 0 (Cache.dirty_count t);
  Cache.insert t (key 1 0) ~dirty:true (block 'c');
  Alcotest.(check int) "dirty again" 1 (Cache.dirty_count t);
  Alcotest.(check int) "no duplicates" 1 (Cache.length t)

let suite =
  [
    Alcotest.test_case "insert/find" `Quick test_insert_find;
    Alcotest.test_case "dirty lifecycle" `Quick test_dirty_lifecycle;
    Alcotest.test_case "only clean entries evicted" `Quick
      test_clean_eviction_only;
    Alcotest.test_case "fold_dirty order" `Quick test_fold_dirty_order;
    Alcotest.test_case "age tracking" `Quick test_age_tracking;
    Alcotest.test_case "remove and drop_clean" `Quick test_remove_and_drop_clean;
    Alcotest.test_case "insert replaces dirty state" `Quick
      test_insert_replaces_dirty;
    Alcotest.test_case "insert never evicts its own key" `Quick
      test_insert_never_evicts_self;
  ]
