(* The disk request scheduler: discipline selection policy (pure Sched),
   the queued-Io integration (reordering really changes serviced order,
   seeks and the sequential classification), write/read ordering safety,
   the backlog throttle boundary, and the queue's bus events. *)

module Clock = Lfs_disk.Clock
module Cpu_model = Lfs_disk.Cpu_model
module Disk = Lfs_disk.Disk
module Geometry = Lfs_disk.Geometry
module Io = Lfs_disk.Io
module Sched = Lfs_disk.Sched
module Bus = Lfs_obs.Bus
module Event = Lfs_obs.Event

let geo () = Geometry.wren_iv ~size_bytes:(8 * 1024 * 1024)

let enq q ~sector =
  ignore
    (Sched.enqueue q ~kind:`Write ~sync:false ~sector ~count:8 ~data:None
       ~arrival_us:0)

let sectors_selected q ~heads =
  List.map
    (fun head ->
      match Sched.select q ~head with
      | Some e -> e.Sched.sector
      | None -> Alcotest.fail "queue ran dry early")
    heads

(* --- pure policy ---------------------------------------------------- *)

let test_discipline_names () =
  List.iter
    (fun d ->
      Alcotest.(check bool)
        (Sched.discipline_name d) true
        (Sched.discipline_of_string (Sched.discipline_name d) = Some d))
    [ Sched.Fcfs; Sched.Scan; Sched.Cscan ];
  Alcotest.(check bool) "elevator alias" true
    (Sched.discipline_of_string "elevator" = Some Sched.Scan);
  Alcotest.(check bool) "c-scan alias" true
    (Sched.discipline_of_string "c-scan" = Some Sched.Cscan);
  Alcotest.(check bool) "unknown" true (Sched.discipline_of_string "lifo" = None)

let test_fcfs_order () =
  let q = Sched.create Sched.Fcfs in
  List.iter (fun sector -> enq q ~sector) [ 500; 100; 300 ];
  (* Head position is irrelevant: FCFS is issue order. *)
  Alcotest.(check (list int))
    "issue order" [ 500; 100; 300 ]
    (sectors_selected q ~heads:[ 200; 200; 200 ]);
  Alcotest.(check bool) "empty" true (Sched.is_empty q)

let test_scan_sweep_and_flip () =
  let q = Sched.create Sched.Scan in
  List.iter (fun sector -> enq q ~sector) [ 300; 100; 500 ];
  (* Starts sweeping upward from 200: 300, then 500; nothing above 508
     is left, so the elevator reverses and picks up 100 on the way
     down. *)
  Alcotest.(check (list int))
    "up then flip" [ 300; 500; 100 ]
    (sectors_selected q ~heads:[ 200; 308; 508 ])

let test_cscan_wrap () =
  let q = Sched.create Sched.Cscan in
  List.iter (fun sector -> enq q ~sector) [ 300; 100; 500 ];
  (* One-directional: 500 is the only request at or above 400; the sweep
     then wraps to the lowest pending sector and continues upward. *)
  Alcotest.(check (list int))
    "wrap to lowest" [ 500; 100; 300 ]
    (sectors_selected q ~heads:[ 400; 508; 108 ])

let test_overlap_preserves_order () =
  let q = Sched.create Sched.Cscan in
  enq q ~sector:100;
  (* A read inside the pending write's range: even though it is nearer
     the head, it must wait for the older write. *)
  ignore
    (Sched.enqueue q ~kind:`Read ~sync:true ~sector:104 ~count:2 ~data:None
       ~arrival_us:0);
  (match Sched.select q ~head:104 with
  | Some e ->
      Alcotest.(check int) "older write first" 100 e.Sched.sector;
      Alcotest.(check bool) "is the write" true (e.Sched.kind = `Write)
  | None -> Alcotest.fail "empty");
  match Sched.select q ~head:108 with
  | Some e -> Alcotest.(check int) "then the read" 104 e.Sched.sector
  | None -> Alcotest.fail "read vanished"

let test_enqueue_validation () =
  let q = Sched.create Sched.Fcfs in
  Alcotest.(check bool) "count <= 0 rejected" true
    (try
       ignore
         (Sched.enqueue q ~kind:`Read ~sync:true ~sector:0 ~count:0 ~data:None
            ~arrival_us:0);
       false
     with Invalid_argument _ -> true)

(* --- queued Io: reordering, accounting, safety ----------------------- *)

let make_io () =
  let d = Disk.create (geo ()) in
  let clock = Clock.create () in
  (Io.create ~max_backlog_us:10_000_000 d clock Cpu_model.free, d, clock)

let payload c = Bytes.make 4096 c

(* Satellite regression: under reordering, [sequential] and the seek
   count must describe the *serviced* order, not the issue order.  The
   same four writes — 8000, 4000, 4008, 8008 — stream once under FCFS
   (only 4008 continues 4000) but twice under C-SCAN, which services
   4000, 4008, 8000, 8008 and saves a seek. *)
let issue_four io =
  List.iter
    (fun (sector, c) -> Io.async_write io ~sector (payload c))
    [ (8000, 'a'); (4000, 'b'); (4008, 'c'); (8008, 'd') ];
  Io.drain io

let run_four discipline =
  let io, d, _ = make_io () in
  Io.set_recording io true;
  Io.set_scheduler io discipline;
  issue_four io;
  let reqs = Io.requests io in
  let order = List.map (fun r -> r.Io.sector) reqs in
  let seq = List.map (fun r -> r.Io.sequential) reqs in
  (order, seq, (Disk.stats d).Disk.seeks, io)

let test_reordering_sequential_flags () =
  let order_f, seq_f, seeks_f, _ = run_four (Some Sched.Fcfs) in
  Alcotest.(check (list int)) "fcfs services issue order"
    [ 8000; 4000; 4008; 8008 ] order_f;
  Alcotest.(check (list bool)) "fcfs streams only 4008"
    [ false; false; true; false ] seq_f;
  Alcotest.(check int) "fcfs pays three seeks" 3 seeks_f;
  let order_c, seq_c, seeks_c, io = run_four (Some Sched.Cscan) in
  Alcotest.(check (list int)) "cscan sweeps ascending"
    [ 4000; 4008; 8000; 8008 ] order_c;
  Alcotest.(check (list bool)) "cscan streams both continuations"
    [ false; true; false; true ] seq_c;
  Alcotest.(check int) "cscan saves a seek" 2 seeks_c;
  (* Reordering never changes what lands on the platter. *)
  List.iter
    (fun (sector, c) ->
      Alcotest.(check bytes)
        (Printf.sprintf "sector %d" sector)
        (payload c)
        (Io.sync_read io ~sector ~count:8))
    [ (8000, 'a'); (4000, 'b'); (4008, 'c'); (8008, 'd') ]

let test_read_your_writes_through_queue () =
  let io, _, _ = make_io () in
  Io.set_scheduler io (Some Sched.Cscan);
  Io.async_write io ~sector:16 (payload 'R');
  Alcotest.(check int) "write pending" 1 (Io.queue_depth io);
  let got = Io.sync_read io ~sector:16 ~count:8 in
  Alcotest.(check bytes) "read sees queued write" (payload 'R') got;
  Alcotest.(check int) "queue drained to the read" 0 (Io.queue_depth io)

let test_policy_change_dispatches_pending () =
  let io, _, _ = make_io () in
  Io.set_scheduler io (Some Sched.Fcfs);
  Io.async_write io ~sector:0 (payload 'x');
  Io.async_write io ~sector:64 (payload 'y');
  Io.set_scheduler io (Some Sched.Cscan);
  Alcotest.(check int) "pending work dispatched on policy change" 0
    (Io.queue_depth io);
  Alcotest.(check bool) "cscan installed" true
    (Io.scheduler io = Some Sched.Cscan);
  Io.set_scheduler io None;
  Alcotest.(check bool) "reverted to immediate" true (Io.scheduler io = None)

(* --- backlog throttle boundary --------------------------------------- *)

(* Replay the same three writes against a bare disk to learn their exact
   service times (the Io path starts request N at the device's busy
   horizon, i.e. back to back). *)
let service_times sectors =
  let d = Disk.create (geo ()) in
  let _, times =
    List.fold_left
      (fun (start, acc) sector ->
        let s = Disk.write ~start_us:start d ~sector (payload 'x') in
        (start + s, s :: acc))
      (0, []) sectors
  in
  List.rev times

let test_backlog_boundary () =
  let sectors = [ 1000; 5000; 9000 ] in
  match service_times sectors with
  | [ s1; s2; s3 ] ->
      let d = Disk.create (geo ()) in
      let clock = Clock.create () in
      let io = Io.create ~max_backlog_us:(s1 + s2) d clock Cpu_model.free in
      (* Exactly at the limit: the throttle is strict >, the caller does
         not wait. *)
      Io.async_write io ~sector:1000 (payload 'x');
      Io.async_write io ~sector:5000 (payload 'x');
      Alcotest.(check int) "at limit, no throttle" 0 (Clock.now_us clock);
      Alcotest.(check int) "backlog is s1+s2" (s1 + s2) (Io.backlog_us io);
      (* One over: the caller pays until the backlog fits again — the
         clock advances by exactly the overshoot, s3. *)
      Io.async_write io ~sector:9000 (payload 'x');
      Alcotest.(check int) "one over, caller pays s3" s3 (Clock.now_us clock);
      Alcotest.(check int) "backlog back at the cap" (s1 + s2)
        (Io.backlog_us io);
      (* Drain, then refill: the allowance is fully restored. *)
      Io.drain io;
      Alcotest.(check int) "drained to busy" (s1 + s2 + s3)
        (Clock.now_us clock);
      Alcotest.(check int) "no backlog" 0 (Io.backlog_us io);
      let t = Clock.now_us clock in
      Io.async_write io ~sector:1000 (payload 'x');
      Alcotest.(check int) "refill is free again" t (Clock.now_us clock)
  | _ -> Alcotest.fail "service time probe shape"

(* --- queue events on the bus ----------------------------------------- *)

let test_queue_bus_events () =
  let io, _, _ = make_io () in
  let sink =
    Bus.attach
      ~filter:(function Event.Disk_queue _ -> true | _ -> false)
      (Io.bus io)
  in
  Io.set_scheduler io (Some Sched.Fcfs);
  Io.async_write io ~sector:0 (payload 'x');
  Io.async_write io ~sector:64 (payload 'y');
  Io.drain io;
  let actions =
    List.filter_map
      (fun r ->
        match r.Event.event with
        | Event.Disk_queue { action; depth; wait_us; _ } ->
            Some (action, depth, wait_us)
        | _ -> None)
      (Bus.records sink)
  in
  (match actions with
  | [
   (`Enqueue, d1, _); (`Enqueue, d2, _); (`Dispatch, d3, w3); (`Dispatch, d4, w4);
  ] ->
      Alcotest.(check int) "first enqueue depth" 1 d1;
      Alcotest.(check int) "second enqueue depth" 2 d2;
      Alcotest.(check int) "first dispatch leaves one" 1 d3;
      Alcotest.(check int) "second dispatch empties" 0 d4;
      Alcotest.(check bool) "waits non-negative" true (w3 >= 0 && w4 >= 0)
  | l -> Alcotest.failf "unexpected queue event shape (%d events)" (List.length l));
  Bus.detach (Io.bus io) sink

let suite =
  [
    Alcotest.test_case "discipline names round-trip" `Quick test_discipline_names;
    Alcotest.test_case "fcfs is issue order" `Quick test_fcfs_order;
    Alcotest.test_case "scan sweeps and reverses" `Quick test_scan_sweep_and_flip;
    Alcotest.test_case "cscan wraps to lowest" `Quick test_cscan_wrap;
    Alcotest.test_case "overlap preserves issue order" `Quick
      test_overlap_preserves_order;
    Alcotest.test_case "enqueue validation" `Quick test_enqueue_validation;
    Alcotest.test_case "reordering fixes sequential flags and seeks" `Quick
      test_reordering_sequential_flags;
    Alcotest.test_case "read-your-writes through the queue" `Quick
      test_read_your_writes_through_queue;
    Alcotest.test_case "policy change dispatches pending" `Quick
      test_policy_change_dispatches_pending;
    Alcotest.test_case "backlog throttle boundary" `Quick test_backlog_boundary;
    Alcotest.test_case "queue events on the bus" `Quick test_queue_bus_events;
  ]
