(* Model-based testing: random operation sequences run simultaneously
   against a file system and the pure reference model; every result and
   the final tree must agree.  Run on both LFS and FFS.

   A second property crashes LFS at random points and checks recovery
   invariants. *)

module E = Lfs_vfs.Errors
module Fs_intf = Lfs_vfs.Fs_intf
module Model_fs = Lfs_scenario.Model_fs

let qcheck = QCheck_alcotest.to_alcotest

(* Deep-fuzz sessions can crank the case counts without recompiling:
   MODEL_COUNT=500 dune exec test/test_main.exe -- test model *)
let count default =
  match Sys.getenv_opt "MODEL_COUNT" with
  | Some s -> (try int_of_string s with _ -> default)
  | None -> default

(* Operations over a tiny namespace so that collisions, nesting and
   errors all get exercised. *)

type op =
  | Create of string list
  | Mkdir of string list
  | Delete of string list
  | Write of string list * int * int  (* path, offset, length *)
  | Read of string list * int * int
  | Truncate of string list * int
  | Rename of string list * string list
  | Link of string list * string list
  | Readdir of string list
  | Sync
  | Flush_caches

let path_to_string components = "/" ^ String.concat "/" components

let op_gen =
  let open QCheck.Gen in
  let name = oneofl [ "a"; "b"; "c"; "d"; "e" ] in
  let path = list_size (int_range 1 3) name in
  frequency
    [
      (4, map (fun p -> Create p) path);
      (2, map (fun p -> Mkdir p) path);
      (3, map (fun p -> Delete p) path);
      (6, map3 (fun p off len -> Write (p, off, len)) path (int_bound 6000) (int_bound 4000));
      (4, map3 (fun p off len -> Read (p, off, len)) path (int_bound 8000) (int_bound 4000));
      (2, map2 (fun p s -> Truncate (p, s)) path (int_bound 6000));
      (2, map2 (fun a b -> Rename (a, b)) path path);
      (2, map2 (fun a b -> Link (a, b)) path path);
      (2, map (fun p -> Readdir p) path);
      (1, pure Sync);
      (1, pure Flush_caches);
    ]

let pp_op op =
  match op with
  | Create p -> "create " ^ path_to_string p
  | Mkdir p -> "mkdir " ^ path_to_string p
  | Delete p -> "delete " ^ path_to_string p
  | Write (p, off, len) -> Printf.sprintf "write %s %d+%d" (path_to_string p) off len
  | Read (p, off, len) -> Printf.sprintf "read %s %d+%d" (path_to_string p) off len
  | Truncate (p, s) -> Printf.sprintf "truncate %s %d" (path_to_string p) s
  | Rename (a, b) -> Printf.sprintf "rename %s %s" (path_to_string a) (path_to_string b)
  | Link (a, b) -> Printf.sprintf "link %s %s" (path_to_string a) (path_to_string b)
  | Readdir p -> "readdir " ^ path_to_string p
  | Sync -> "sync"
  | Flush_caches -> "flush"

(* Deterministic payload so content mismatches are meaningful. *)
let payload seed len =
  let rng = Lfs_util.Rng.create seed in
  Bytes.init len (fun _ -> Char.chr (Lfs_util.Rng.int rng 256))

module Run (F : Fs_intf.S) = struct
  let outcome_of_result = function
    | Ok () -> Model_fs.Done
    | Error _ -> Model_fs.Failed

  let apply fs model step op =
    let expect = ref Model_fs.Failed in
    let got = ref Model_fs.Failed in
    (match op with
    | Create p ->
        expect := Model_fs.create_file model p;
        got := outcome_of_result (F.create fs (path_to_string p))
    | Mkdir p ->
        expect := Model_fs.mkdir model p;
        got := outcome_of_result (F.mkdir fs (path_to_string p))
    | Delete p ->
        expect := Model_fs.delete model p;
        got := outcome_of_result (F.delete fs (path_to_string p))
    | Write (p, off, len) ->
        let data = payload step len in
        expect := Model_fs.write model p ~off data;
        got := outcome_of_result (F.write fs (path_to_string p) ~off data)
    | Read (p, off, len) ->
        expect := Model_fs.read model p ~off ~len;
        got :=
          (match F.read fs (path_to_string p) ~off ~len with
          | Ok b -> Model_fs.Data b
          | Error _ -> Model_fs.Failed)
    | Truncate (p, s) ->
        expect := Model_fs.truncate model p ~size:s;
        got := outcome_of_result (F.truncate fs (path_to_string p) ~size:s)
    | Rename (a, b) ->
        expect := Model_fs.rename model a b;
        got := outcome_of_result (F.rename fs (path_to_string a) (path_to_string b))
    | Link (a, b) ->
        expect := Model_fs.link model a b;
        got := outcome_of_result (F.link fs (path_to_string a) (path_to_string b))
    | Readdir p ->
        expect := Model_fs.readdir model p;
        got :=
          (match F.readdir fs (path_to_string p) with
          | Ok names -> Model_fs.Names names
          | Error _ -> Model_fs.Failed)
    | Sync ->
        F.sync fs;
        expect := Model_fs.Done;
        got := Model_fs.Done
    | Flush_caches ->
        F.flush_caches fs;
        expect := Model_fs.Done;
        got := Model_fs.Done);
    (* After a mutating op, immediately compare the touched file's full
       content — divergences then point at the guilty operation. *)
    (match op with
    | Write (p, _, _) | Truncate (p, _) | Create p -> (
        match Model_fs.read model p ~off:0 ~len:max_int with
        | Model_fs.Data expected -> (
            match F.read fs (path_to_string p) ~off:0 ~len:(Bytes.length expected + 16) with
            | Ok b when Bytes.equal b expected -> ()
            | Ok b ->
                QCheck.Test.fail_reportf
                  "step %d (%s): content diverged (%d vs %d bytes)" step
                  (pp_op op) (Bytes.length b) (Bytes.length expected)
            | Error e ->
                QCheck.Test.fail_reportf "step %d (%s): readback failed: %s"
                  step (pp_op op) (E.to_string e))
        | Model_fs.Failed | Model_fs.Done | Model_fs.Names _ -> ())
    | Link (_, b) -> (
        (* Both names must now read identically, and nlink must match. *)
        match Model_fs.read model b ~off:0 ~len:max_int with
        | Model_fs.Data expected -> (
            (match F.read fs (path_to_string b) ~off:0 ~len:(Bytes.length expected + 16) with
            | Ok got when Bytes.equal got expected -> ()
            | Ok _ ->
                QCheck.Test.fail_reportf "step %d (%s): link content diverged"
                  step (pp_op op)
            | Error e ->
                QCheck.Test.fail_reportf "step %d (%s): link readback: %s" step
                  (pp_op op) (E.to_string e));
            match F.stat fs (path_to_string b) with
            | Ok st ->
                let expected_nlink = Model_fs.nlink_of_path model b in
                if st.Fs_intf.nlink <> expected_nlink then
                  QCheck.Test.fail_reportf "step %d (%s): nlink %d, expected %d"
                    step (pp_op op) st.Fs_intf.nlink expected_nlink
            | Error _ -> ())
        | Model_fs.Failed | Model_fs.Done | Model_fs.Names _ -> ())
    | Mkdir _ | Delete _ | Rename _ | Read _ | Readdir _ | Sync
    | Flush_caches ->
        ());
    if !expect <> !got then
      QCheck.Test.fail_reportf "step %d (%s): model %s, fs %s" step (pp_op op)
        (match !expect with
        | Model_fs.Done -> "succeeded"
        | Model_fs.Failed -> "failed"
        | Model_fs.Data b -> Printf.sprintf "read %d bytes" (Bytes.length b)
        | Model_fs.Names n -> Printf.sprintf "listed %d" (List.length n))
        (match !got with
        | Model_fs.Done -> "succeeded"
        | Model_fs.Failed -> "failed"
        | Model_fs.Data b -> Printf.sprintf "read %d bytes" (Bytes.length b)
        | Model_fs.Names n -> Printf.sprintf "listed %d" (List.length n))

  let final_check fs model =
    List.iter
      (fun (p, content) ->
        match F.read fs (path_to_string p) ~off:0 ~len:(Bytes.length content + 16) with
        | Ok b ->
            if not (Bytes.equal b content) then
              QCheck.Test.fail_reportf "final content mismatch at %s"
                (path_to_string p)
        | Error e ->
            QCheck.Test.fail_reportf "final read %s: %s" (path_to_string p)
              (E.to_string e))
      (Model_fs.all_files model);
    List.iter
      (fun p ->
        match (F.readdir fs (path_to_string p), Model_fs.readdir model p) with
        | Ok names, Model_fs.Names expected ->
            if names <> expected then
              QCheck.Test.fail_reportf "final readdir mismatch at %s"
                (path_to_string p)
        | Error e, _ ->
            QCheck.Test.fail_reportf "final readdir %s: %s" (path_to_string p)
              (E.to_string e)
        | Ok _, _ -> QCheck.Test.fail_reportf "model lost a directory")
      (Model_fs.all_dirs model)

  let run ?(extra_check = fun _ -> ()) make ops =
    let fs = make () in
    let model = Model_fs.create () in
    List.iteri (fun step op -> apply fs model step op) ops;
    final_check fs model;
    (* Once more after pushing everything to disk and dropping caches. *)
    F.flush_caches fs;
    final_check fs model;
    extra_check fs;
    true
end

module Lfs_run = Run (Lfs_core.Fs)
module Ffs_run = Run (Lfs_ffs.Fs)

let prop_lfs_model =
  QCheck.Test.make ~name:"LFS matches reference model" ~count:(count 60)
    (QCheck.make ~print:(fun ops -> String.concat "; " (List.map pp_op ops))
       QCheck.Gen.(list_size (int_range 20 120) op_gen))
    (fun ops ->
      let structurally_sound fs =
        (match Lfs_core.Check.fsck fs with
        | [] -> ()
        | issues ->
            QCheck.Test.fail_reportf "structural issues: %s"
              (String.concat "; "
                 (List.map
                    (Format.asprintf "%a" Lfs_core.Check.pp_issue)
                    issues)));
        (* Live-byte accounting must track ground truth (± the usage
           array's self-reference slack). *)
        let tolerance =
          2 * (Lfs_core.Fs.layout fs).Lfs_core.Layout.block_size
        in
        List.iter
          (fun (seg, recorded, truth) ->
            if abs (recorded - truth) > tolerance then
              QCheck.Test.fail_reportf
                "segment %d usage drift: recorded %d, truth %d" seg recorded
                truth)
          (Lfs_core.Check.usage_drift fs)
      in
      Lfs_run.run ~extra_check:structurally_sound
        (fun () -> Common.make_lfs ())
        ops)

let prop_ffs_model =
  QCheck.Test.make ~name:"FFS matches reference model" ~count:(count 60)
    (QCheck.make ~print:(fun ops -> String.concat "; " (List.map pp_op ops))
       QCheck.Gen.(list_size (int_range 20 120) op_gen))
    (fun ops -> Ffs_run.run (fun () -> Generic_suite.Ffs_env.make ()) ops)

(* Crash-recovery property: run operations with periodic checkpoints,
   arm a crash at a random write countdown, keep operating until the
   crash fires, then remount and check
   (1) the recovered tree is fully readable (no corruption), and
   (2) every file unchanged since the last checkpoint survives with its
       checkpointed content. *)

let prop_lfs_crash_recovery =
  QCheck.Test.make ~name:"LFS crash recovery invariants" ~count:(count 40)
    (QCheck.make
       ~print:(fun (ops, crash_after) ->
         Printf.sprintf "crash_after=%d; %s" crash_after
           (String.concat "; " (List.map pp_op ops)))
       QCheck.Gen.(
         pair (list_size (int_range 30 100) op_gen) (int_range 1 2000)))
    (fun (ops, crash_after) ->
      let fs = Common.make_lfs () in
      let io = Lfs_core.Fs.io fs in
      let disk = Lfs_disk.Io.disk io in
      let model = Model_fs.create () in
      (* Stable state: everything up to a checkpoint.  Touched paths are
         tracked as *prefixes*: renaming a directory moves its whole
         subtree, so everything under either endpoint counts as touched. *)
      let stable = ref [] in
      let dirty_prefixes = ref [] in
      (* With hard links a path can alias a file modified through another
         name; track content identity as well as paths. *)
      let touched_ids = Hashtbl.create 16 in
      let touch_id p =
        match Model_fs.file_id model p with
        | Some id -> Hashtbl.replace touched_ids id ()
        | None -> ()
      in
      let touch p =
        dirty_prefixes := p :: !dirty_prefixes;
        touch_id p
      in
      let rec is_prefix a b =
        match (a, b) with
        | [], _ -> true
        | x :: a', y :: b' -> x = y && is_prefix a' b'
        | _ :: _, [] -> false
      in
      let touched p = List.exists (fun pre -> is_prefix pre p) !dirty_prefixes in
      let module R = Run (Lfs_core.Fs) in
      let step_count = ref 0 in
      let crashed = ref false in
      (try
         List.iteri
           (fun step op ->
             if not !crashed then begin
               incr step_count;
               (match op with
               | Create p | Mkdir p | Delete p | Truncate (p, _) | Write (p, _, _)
                 ->
                   touch p
               | Rename (a, b) | Link (a, b) ->
                   touch a;
                   touch b
               | Read _ | Readdir _ | Sync | Flush_caches -> ());
               R.apply fs model step op;
               if step = List.length ops / 2 then begin
                 (* Checkpoint mid-run and arm the crash after it. *)
                 Lfs_core.Fs.checkpoint_now fs;
                 stable :=
                   List.filter_map
                     (fun (p, content) ->
                       Option.map
                         (fun id -> (p, id, content))
                         (Model_fs.file_id model p))
                     (Model_fs.all_files model);
                 dirty_prefixes := [];
                 Hashtbl.reset touched_ids;
                 Lfs_disk.Disk.set_crash_after disk ~sectors:crash_after
               end
             end)
           ops
       with Lfs_disk.Disk.Crash -> crashed := true);
      Lfs_disk.Disk.clear_crash disk;
      let fs2 =
        match Lfs_core.Fs.mount ~config:Common.small_config io with
        | Ok fs -> fs
        | Error e -> QCheck.Test.fail_reportf "remount failed: %s" e
      in
      (* (1) Whole tree readable. *)
      let rec walk path =
        match Lfs_core.Fs.readdir fs2 path with
        | Error e -> QCheck.Test.fail_reportf "walk %s: %s" path (E.to_string e)
        | Ok names ->
            List.iter
              (fun n ->
                let full = if path = "/" then "/" ^ n else path ^ "/" ^ n in
                match Lfs_core.Fs.stat fs2 full with
                | Error e ->
                    QCheck.Test.fail_reportf "stat %s: %s" full (E.to_string e)
                | Ok st ->
                    if st.Fs_intf.kind = Fs_intf.Directory then walk full
                    else begin
                      match
                        Lfs_core.Fs.read fs2 full ~off:0 ~len:st.Fs_intf.size
                      with
                      | Ok _ -> ()
                      | Error e ->
                          QCheck.Test.fail_reportf "read %s: %s" full
                            (E.to_string e)
                    end)
              names
      in
      walk "/";
      (* Structural soundness; roll-forward may resurrect orphan inodes
         for post-checkpoint deletes (documented 1990 limitation). *)
      (match
         List.filter
           (function Lfs_core.Check.Orphan_inode _ -> false | _ -> true)
           (Lfs_core.Check.fsck fs2)
       with
      | [] -> ()
      | issues ->
          QCheck.Test.fail_reportf "post-crash structural issues: %s"
            (String.concat "; "
               (List.map (Format.asprintf "%a" Lfs_core.Check.pp_issue) issues)));
      (* (2) Checkpointed-and-untouched files intact. *)
      List.iter
        (fun (p, id, content) ->
          if not (touched p || Hashtbl.mem touched_ids id) then begin
            match
              Lfs_core.Fs.read fs2 (path_to_string p) ~off:0
                ~len:(Bytes.length content + 16)
            with
            | Ok b ->
                if not (Bytes.equal b content) then
                  QCheck.Test.fail_reportf
                    "checkpointed file %s corrupted after crash"
                    (path_to_string p)
            | Error e ->
                QCheck.Test.fail_reportf "checkpointed file %s lost: %s"
                  (path_to_string p) (E.to_string e)
          end)
        !stable;
      true)

let suite =
  [
    qcheck prop_lfs_model;
    qcheck prop_ffs_model;
    qcheck prop_lfs_crash_recovery;
  ]
