(* The scenario DSL itself: deterministic stream compilation, the
   delta-debugging shrinker (pure and end-to-end with a planted
   invariant violation), replay-line stability, spec validation, and
   the engine-mode compilation path. *)

module Scenario = Lfs_scenario.Scenario
module Driver = Lfs_workload.Driver

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let fail_failure = function
  | None -> ()
  | Some f ->
      Alcotest.failf "%s\nreplay: %s" f.Scenario.message f.Scenario.replay

(* ---------- shrinker, pure oracle ---------- *)

let test_shrink_pure () =
  let items = List.init 20 (fun i -> i) in
  let fails l = if List.mem 3 l && List.mem 7 l then Some "pair" else None in
  Alcotest.(check (list int)) "minimal pair" [ 3; 7 ]
    (Scenario.shrink ~fails items);
  Alcotest.(check (list int)) "non-failing input unchanged" items
    (Scenario.shrink ~fails:(fun _ -> None) items);
  let single l = if List.mem 13 l then Some "one" else None in
  Alcotest.(check (list int)) "single cause" [ 13 ]
    (Scenario.shrink ~fails:single items)

(* ---------- stream compilation ---------- *)

let test_steps_deterministic () =
  let render spec = List.map Scenario.pp_step (Scenario.steps_of spec) in
  let spec = Scenario.(make |> seed 99) in
  Alcotest.(check (list string)) "same spec, same steps" (render spec)
    (render spec);
  if render spec = render Scenario.(make |> seed 100) then
    Alcotest.fail "different seeds produced identical streams";
  Alcotest.(check int) "count honoured" 24
    (List.length (Scenario.steps_of Scenario.(make |> count 24 |> seed 3)))

(* ---------- clean runs ---------- *)

let test_clean_stream () =
  let r =
    Scenario.(make |> seed 7 |> invariant ~name:"fsck" fsck |> run)
  in
  fail_failure r.Scenario.failure;
  Alcotest.(check string) "mode" "stream" r.Scenario.mode;
  Alcotest.(check int) "all ops ran" 48 r.Scenario.stats.Scenario.ops_run

let test_engine_mode () =
  let r =
    Scenario.(
      make |> system `Lfs
      |> ops [ Read 4; Overwrite 3; Create 2; Delete 1 ]
      |> clients 3 |> count 90
      |> think (Uniform (1_000, 10_000))
      |> invariant ~name:"fsck" fsck
      |> seed 11 |> run)
  in
  fail_failure r.Scenario.failure;
  Alcotest.(check string) "mode" "engine" r.Scenario.mode;
  match r.Scenario.engine with
  | None -> Alcotest.fail "engine scenario produced no engine result"
  | Some e ->
      Alcotest.(check int) "clients" 3 e.Lfs_workload.Engine.clients;
      Alcotest.(check int) "total ops" 90 e.Lfs_workload.Engine.total_ops

(* ---------- planted failure: shrink + replay determinism ---------- *)

(* The planted invariant rejects any surviving root entry, so any
   scenario that creates anything fails it — and the minimal
   counterexample is a single root-level create/mkdir. *)
let planted_spec s =
  Scenario.(
    make |> count 24 |> seed s
    |> invariant ~name:"planted-empty-root" (fun inst ->
           match Driver.readdir inst "/" with
           | [] -> []
           | l -> [ Printf.sprintf "root holds %d entries" (List.length l) ]))

let test_shrinker_deterministic () =
  let r1 = Scenario.run (planted_spec 4242) in
  let r2 = Scenario.run (planted_spec 4242) in
  match (r1.Scenario.failure, r2.Scenario.failure) with
  | Some f1, Some f2 ->
      Alcotest.(check (list string)) "same minimal counterexample"
        f1.Scenario.steps f2.Scenario.steps;
      Alcotest.(check int) "shrunk to a single op" 1 f1.Scenario.shrunk_steps;
      Alcotest.(check int) "from the full stream" 24 f1.Scenario.original_steps;
      Alcotest.(check string) "same message" f1.Scenario.message
        f2.Scenario.message;
      Alcotest.(check string) "same replay line" f1.Scenario.replay
        f2.Scenario.replay;
      Alcotest.(check string) "byte-identical reports" (Scenario.render r1)
        (Scenario.render r2);
      if not (contains f1.Scenario.replay "--replay 4242") then
        Alcotest.failf "replay line lacks the seed: %s" f1.Scenario.replay
  | _ -> Alcotest.fail "planted invariant did not fail the scenario"

(* ---------- replay line + validation ---------- *)

let test_replay_line () =
  Alcotest.(check string) "non-default flags rendered"
    "lfstool scenario --system ffs --count 10 --clients 2 --replay 9"
    (Scenario.replay_command
       Scenario.(make |> system `Ffs |> count 10 |> clients 2 |> seed 9));
  Alcotest.(check string) "mix round-trips"
    (Scenario.mix_to_string Scenario.default_mix)
    (Scenario.mix_to_string
       (Scenario.mix_of_string (Scenario.mix_to_string Scenario.default_mix)))

let test_invalid_spec () =
  let rejects what spec =
    match Scenario.run spec with
    | exception Driver.Benchmark_failure _ -> ()
    | _ -> Alcotest.failf "%s accepted" what
  in
  rejects "sweep+clients" Scenario.(make |> crash_sweep |> clients 2);
  rejects "read_back without Transient" Scenario.(make |> read_back);
  rejects "whole-run Bad_sectors"
    Scenario.(make |> faults [ Bad_sectors [ 1 ] ]);
  rejects "zero-weight mix" Scenario.(make |> ops [ Create 0 ]);
  rejects "ffs bad-sector mode"
    Scenario.(make |> system `Ffs |> faults [ Checkpoint_bad_sector ])

let suite =
  [
    Alcotest.test_case "shrink: pure oracle" `Quick test_shrink_pure;
    Alcotest.test_case "steps_of is deterministic" `Quick
      test_steps_deterministic;
    Alcotest.test_case "clean stream run" `Quick test_clean_stream;
    Alcotest.test_case "engine-mode compilation" `Quick test_engine_mode;
    Alcotest.test_case "planted failure shrinks deterministically" `Quick
      test_shrinker_deterministic;
    Alcotest.test_case "replay line + mix round-trip" `Quick test_replay_line;
    Alcotest.test_case "invalid specs are rejected" `Quick test_invalid_spec;
  ]
