(* Corruption injection: fabricate each class of damage the checkers
   exist to catch, directly in the mounted state, and assert that fsck
   reports exactly that class (and pretty-prints it usefully).  A checker
   only proven against healthy file systems proves nothing. *)

module Check = Lfs_core.Check
module Fs = Lfs_core.Fs
module Imap = Lfs_core.Imap
module Inode = Lfs_core.Inode
module Inode_store = Lfs_core.Inode_store
module Layout = Lfs_core.Layout
module Namespace = Lfs_core.Namespace
module Seg_usage = Lfs_core.Seg_usage
module State = Lfs_core.State

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec scan i = i + m <= n && (String.sub s i m = sub || scan (i + 1)) in
  m = 0 || scan 0

let assert_rendered what sub rendered =
  if not (List.exists (fun s -> contains s sub) rendered) then
    Alcotest.failf "%s: no issue mentions %S in: %s" what sub
      (String.concat " | " rendered)

(* A small mounted LFS with two files, synced so every block has a disk
   address, verified structurally sound before the test corrupts it. *)
let make_sound () =
  let fs = Common.make_lfs () in
  Common.write_file fs "/f1" (Common.pattern ~seed:1 9000);
  Common.write_file fs "/f2" (Common.pattern ~seed:2 9000);
  Fs.sync fs;
  Alcotest.(check (list string)) "sound before corruption" [] (Fs.integrity fs);
  fs

let inum_of fs path =
  Namespace.resolve fs
    (List.filter (fun c -> c <> "") (String.split_on_char '/' path))

let rendered issues =
  List.map (fun i -> Format.asprintf "%a" Check.pp_issue i) issues

let test_double_reference () =
  let fs = make_sound () in
  let e1 = Inode_store.find fs (inum_of fs "/f1") in
  let e2 = Inode_store.find fs (inum_of fs "/f2") in
  let stolen = e2.State.ino.Inode.direct.(0) in
  e1.State.ino.Inode.direct.(0) <- stolen;
  let issues = Check.fsck fs in
  let found =
    List.exists
      (function
        | Check.Double_reference { addr; owners } ->
            addr = stolen && List.length owners = 2
        | _ -> false)
      issues
  in
  Alcotest.(check bool) "double reference detected" true found;
  assert_rendered "double reference" "referenced by" (rendered issues);
  Alcotest.(check bool) "integrity reports it" false (Fs.integrity fs = [])

let test_address_out_of_range () =
  let fs = make_sound () in
  let e = Inode_store.find fs (inum_of fs "/f1") in
  let wild = (Fs.layout fs).Layout.total_blocks + 10 in
  e.State.ino.Inode.direct.(0) <- wild;
  let issues = Check.fsck fs in
  let found =
    List.exists
      (function
        | Check.Address_out_of_range { addr; _ } -> addr = wild | _ -> false)
      issues
  in
  Alcotest.(check bool) "wild address detected" true found;
  assert_rendered "wild address" "out-of-range" (rendered issues)

let test_bad_nlink () =
  let fs = make_sound () in
  let inum = inum_of fs "/f1" in
  let e = Inode_store.find fs inum in
  e.State.ino.Inode.nlink <- 5;
  let issues = Check.fsck fs in
  let found =
    List.exists
      (function
        | Check.Bad_nlink { inum = i; nlink; entries } ->
            i = inum && nlink = 5 && entries = 1
        | _ -> false)
      issues
  in
  Alcotest.(check bool) "bad nlink detected" true found;
  assert_rendered "bad nlink" "nlink 5" (rendered issues)

let test_bad_dir_entry () =
  let fs = make_sound () in
  let inum = inum_of fs "/f1" in
  Imap.free fs.State.imap inum;
  let issues = Check.fsck fs in
  let found =
    List.exists
      (function
        | Check.Bad_dir_entry { name; inum = i; _ } -> name = "f1" && i = inum
        | _ -> false)
      issues
  in
  Alcotest.(check bool) "bad dir entry detected" true found;
  assert_rendered "bad dir entry" "unallocated" (rendered issues)

let test_orphan_inode () =
  let fs = make_sound () in
  let inum = inum_of fs "/f1" in
  Namespace.remove fs ~dir:State.root_inum "f1";
  let issues = Check.fsck fs in
  let found =
    List.exists
      (function Check.Orphan_inode { inum = i } -> i = inum | _ -> false)
      issues
  in
  Alcotest.(check bool) "orphan detected" true found;
  assert_rendered "orphan" "unreachable" (rendered issues)

let test_usage_drift () =
  let fs = make_sound () in
  (* make_sound already proved the baseline within tolerance; a couple of
     blocks of self-reference slack on the tail segment is normal.  The
     injected error must surface as exactly that much *additional*
     drift. *)
  let drift_at seg =
    match List.find_opt (fun (s, _, _) -> s = seg) (Check.usage_drift fs) with
    | Some (_, recorded, recomputed) -> recorded - recomputed
    | None -> 0
  in
  let before = drift_at 0 in
  let bs = (Fs.layout fs).Layout.block_size in
  Seg_usage.add_live fs.State.usage 0 ~bytes:(64 * bs) ~now_us:0;
  Alcotest.(check int) "injected drift surfaces at its segment"
    (before + (64 * bs))
    (drift_at 0);
  (* Past the sanitizer's tolerance, so the always-on audit fails too. *)
  assert_rendered "usage drift" "usage drift" (Fs.integrity fs)

(* FFS: the same philosophy against the cylinder-group structures. *)

module F = Lfs_ffs.Fs
module Fcheck = Lfs_ffs.Check
module Falloc = Lfs_ffs.Alloc
module Finode = Lfs_ffs.Inode

let make_sound_ffs () =
  let io = Common.make_io () in
  (match F.format io Lfs_ffs.Config.small with
  | Ok () -> ()
  | Error e -> failwith e);
  let fs =
    match F.mount ~config:Lfs_ffs.Config.small io with
    | Ok fs -> fs
    | Error e -> failwith e
  in
  Common.check_ok "create" (F.create fs "/f1");
  Common.check_ok "write" (F.write fs "/f1" ~off:0 (Common.pattern ~seed:3 9000));
  F.sync fs;
  Alcotest.(check (list string)) "sound before corruption" [] (F.integrity fs);
  fs

let ffs_rendered issues =
  List.map (fun i -> Format.asprintf "%a" Fcheck.pp_issue i) issues

let test_ffs_bad_nlink () =
  let fs = make_sound_ffs () in
  (F.inode_of fs F.root_inum).Finode.nlink <- 7;
  let issues = Fcheck.fsck fs in
  let found =
    List.exists
      (function
        | Fcheck.Bad_nlink { inum; nlink = 7; _ } -> inum = F.root_inum
        | _ -> false)
      issues
  in
  Alcotest.(check bool) "bad nlink detected" true found;
  assert_rendered "ffs bad nlink" "nlink 7" (ffs_rendered issues)

let test_ffs_lost_block () =
  let fs = make_sound_ffs () in
  (* Free a block the root directory still points at: referenced but
     marked free in its cylinder-group bitmap. *)
  let addr = (F.inode_of fs F.root_inum).Finode.direct.(0) in
  Falloc.free_block (F.alloc fs) addr;
  let issues = Fcheck.fsck fs in
  let found =
    List.exists
      (function
        | Fcheck.Lost_block { addr = a; _ } -> a = addr | _ -> false)
      issues
  in
  Alcotest.(check bool) "lost block detected" true found;
  assert_rendered "ffs lost block" "says is free" (ffs_rendered issues)

let test_ffs_leaked_block () =
  let fs = make_sound_ffs () in
  (* Mark a block used that nothing references. *)
  let addr =
    match Falloc.alloc_block (F.alloc fs) ~near:0 with
    | Some a -> a
    | None -> Alcotest.fail "no free block to leak"
  in
  let issues = Fcheck.fsck fs in
  let found =
    List.exists
      (function Fcheck.Leaked_block { addr = a } -> a = addr | _ -> false)
      issues
  in
  Alcotest.(check bool) "leaked block detected" true found;
  assert_rendered "ffs leaked block" "referenced by nothing" (ffs_rendered issues)

let suite =
  [
    ("lfs: double reference", `Quick, test_double_reference);
    ("lfs: address out of range", `Quick, test_address_out_of_range);
    ("lfs: bad nlink", `Quick, test_bad_nlink);
    ("lfs: bad dir entry", `Quick, test_bad_dir_entry);
    ("lfs: orphan inode", `Quick, test_orphan_inode);
    ("lfs: usage drift", `Quick, test_usage_drift);
    ("ffs: bad nlink", `Quick, test_ffs_bad_nlink);
    ("ffs: lost block", `Quick, test_ffs_lost_block);
    ("ffs: leaked block", `Quick, test_ffs_leaked_block);
  ]
