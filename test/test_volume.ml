(* The multi-disk volume layer: the logical->member address map
   (round-trip and boundary-crossing splits, property-tested), the
   1-member-volume = bare-disk equivalence that pins the refactored
   [Io] timing path, deterministic snapshot/restore on multi-member
   stacks, and the mirror degraded-read failover. *)

module Clock = Lfs_disk.Clock
module Cpu_model = Lfs_disk.Cpu_model
module Disk = Lfs_disk.Disk
module Geometry = Lfs_disk.Geometry
module Io = Lfs_disk.Io
module Metrics = Lfs_obs.Metrics
module Volume = Lfs_disk.Volume
module Driver = Lfs_workload.Driver
module Scenario = Lfs_scenario.Scenario
module Setup = Lfs_workload.Setup

let qcheck = QCheck_alcotest.to_alcotest
let geo () = Geometry.wren_iv ~size_bytes:(16 * 1024 * 1024)

let cval io name = Metrics.value (Metrics.counter (Io.metrics io) name)

(* ------------------------------------------------------------------ *)
(* Address-map properties                                              *)
(* ------------------------------------------------------------------ *)

(* A policy/member-count pair plus a logical range inside the volume's
   capacity; chunk sizes deliberately include awkward primes. *)
let map_case_gen =
  QCheck.Gen.(
    let* members = int_range 1 8 in
    let* policy =
      oneof
        [
          (let* chunk = oneofl [ 1; 3; 7; 16; 42; 128 ] in
           return (Volume.Stripe { chunk_sectors = chunk }));
          (let* per_member = oneofl [ 1; 4; 32; 256 ] in
           return
             (Volume.Log_stripe { stripe_sectors = per_member * members }));
        ]
    in
    let v = Volume.create policy ~members (geo ()) in
    let cap = (Volume.geometry v).Geometry.sectors in
    let* sector = int_bound (cap - 1) in
    let* count = int_range 1 (min 4096 (cap - sector)) in
    return (policy, members, sector, count))

let map_case_print (policy, members, sector, count) =
  Printf.sprintf "%s members=%d sector=%d count=%d"
    (Volume.policy_name policy)
    members sector count

let locate_roundtrip =
  QCheck.Test.make ~name:"locate/logical_of round-trip" ~count:300
    (QCheck.make ~print:map_case_print map_case_gen)
    (fun (policy, members, sector, _) ->
      let v = Volume.create policy ~members (geo ()) in
      let member, msec = Volume.locate v ~sector in
      if member < 0 || member >= members then
        QCheck.Test.fail_reportf "member %d out of range" member;
      if msec < 0 || msec >= (Volume.member_geometry v).Geometry.sectors then
        QCheck.Test.fail_reportf "member sector %d out of range" msec;
      Volume.logical_of v ~member ~msec = sector)

(* Boundary-crossing requests split correctly: per-member runs are
   contiguous member ranges, their scatter/gather pieces tile the
   logical range exactly once, and every piece agrees with [locate]. *)
let split_covers =
  QCheck.Test.make ~name:"map_write splits tile the request" ~count:300
    (QCheck.make ~print:map_case_print map_case_gen)
    (fun (policy, members, sector, count) ->
      let v = Volume.create policy ~members (geo ()) in
      let runs = Volume.map_write v ~sector ~count in
      let covered = Array.make count false in
      List.iter
        (fun (r : Volume.run) ->
          if r.Volume.member < 0 || r.Volume.member >= members then
            QCheck.Test.fail_reportf "run on member %d" r.Volume.member;
          let piece_total =
            List.fold_left (fun a (_, l) -> a + l) 0 r.Volume.pieces
          in
          if piece_total <> r.Volume.count then
            QCheck.Test.fail_reportf "pieces sum %d <> run count %d"
              piece_total r.Volume.count;
          (* Pieces appear in member-sector order: piece [k] starts at
             [r.sector + sum of earlier piece lengths] on the member. *)
          let consumed = ref 0 in
          List.iter
            (fun (off, len) ->
              for j = 0 to len - 1 do
                if covered.(off + j) then
                  QCheck.Test.fail_reportf "logical offset %d covered twice"
                    (off + j);
                covered.(off + j) <- true;
                let m, msec = Volume.locate v ~sector:(sector + off + j) in
                if
                  m <> r.Volume.member
                  || msec <> r.Volume.sector + !consumed + j
                then
                  QCheck.Test.fail_reportf
                    "piece (%d,%d)+%d maps to (%d,%d), locate says (%d,%d)"
                    off len j r.Volume.member
                    (r.Volume.sector + !consumed + j)
                    m msec
              done;
              consumed := !consumed + len)
            r.Volume.pieces)
        runs;
      Array.for_all Fun.id covered)

(* Mirrors: writes fan out whole-range to every member, reads pick one. *)
let test_mirror_map () =
  let v = Volume.create Volume.Mirror ~members:3 (geo ()) in
  let runs = Volume.map_write v ~sector:100 ~count:10 in
  Alcotest.(check int) "one run per member" 3 (List.length runs);
  List.iter
    (fun (r : Volume.run) ->
      Alcotest.(check int) "full range" 10 r.Volume.count;
      Alcotest.(check int) "at the logical sector" 100 r.Volume.sector)
    runs;
  match Volume.map_read ~prefer:2 v ~sector:100 ~count:10 with
  | [ r ] -> Alcotest.(check int) "read on preferred member" 2 r.Volume.member
  | l -> Alcotest.failf "mirror read split into %d runs" (List.length l)

(* ------------------------------------------------------------------ *)
(* 1-member volume = bare disk                                         *)
(* ------------------------------------------------------------------ *)

(* The same LFS workload on a bare disk and on a 1-member striped
   volume (awkward chunk) must end with byte-identical media and an
   identical clock: the volume path is the single-disk path. *)
let test_single_member_lockstep () =
  let workload io =
    let inst = Setup.lfs_on io ~config:Lfs_core.Config.small () in
    for i = 0 to 39 do
      let path = Printf.sprintf "/f%02d" i in
      Driver.create inst path;
      Driver.write inst path ~off:0 (Driver.content ~seed:i 3000);
      if i mod 8 = 7 then Driver.sync inst
    done;
    Driver.delete inst "/f03";
    Driver.sync inst;
    Driver.sanitize inst;
    (Io.snapshot_media io, Io.now_us io)
  in
  let bare =
    workload (Io.of_geometry (geo ()) (Clock.create ()) Cpu_model.free)
  in
  let volume =
    workload
      (Io.of_volume
         (Volume.create (Volume.Stripe { chunk_sectors = 42 }) ~members:1
            (geo ()))
         (Clock.create ()) Cpu_model.free)
  in
  Alcotest.(check bool) "media byte-identical" true (fst bare = fst volume);
  Alcotest.(check int) "clock identical" (snd bare) (snd volume)

(* ------------------------------------------------------------------ *)
(* Snapshot / restore on multi-member stacks                           *)
(* ------------------------------------------------------------------ *)

let test_snapshot_restore_deterministic () =
  let io =
    Setup.make_volume_io ~disk_mb:16 ~cpu:Cpu_model.free
      ~policy:(Volume.Stripe { chunk_sectors = 64 })
      ~members:3 ()
  in
  let inst = Setup.lfs_on io ~config:Lfs_core.Config.small () in
  Driver.create inst "/a";
  Driver.write inst "/a" ~off:0 (Driver.content ~seed:1 5000);
  Driver.sync inst;
  let snap = Io.snapshot_media io in
  Alcotest.(check int) "snapshot is the member concatenation"
    (3 * (Volume.member_geometry (Option.get (Io.volume io))).Geometry.sectors
   * (geo ()).Geometry.sector_size)
    (Bytes.length snap);
  (* Diverge, restore, and the media must match the snapshot exactly;
     a fresh mount of the restored media sees the old state. *)
  Driver.create inst "/b";
  Driver.write inst "/b" ~off:0 (Driver.content ~seed:2 9000);
  Driver.sync inst;
  Alcotest.(check bool) "media diverged" false (Io.snapshot_media io = snap);
  Io.restore_media io snap;
  Alcotest.(check bool) "restore is exact" true (Io.snapshot_media io = snap);
  match Lfs_core.Fs.mount ~config:Lfs_core.Config.small io with
  | Error e -> Alcotest.failf "remount after restore: %s" e
  | Ok fs ->
      let inst = Lfs_vfs.Fs_intf.Instance ((module Lfs_core.Fs), fs) in
      Alcotest.(check bytes) "old file survives"
        (Driver.content ~seed:1 5000)
        (Driver.read inst "/a" ~off:0 ~len:5000);
      Alcotest.(check bool) "new file gone" true
        (match Driver.read inst "/b" ~off:0 ~len:1 with
        | exception _ -> true
        | _ -> false)

(* ------------------------------------------------------------------ *)
(* Mirror degraded reads                                               *)
(* ------------------------------------------------------------------ *)

(* A sticky bad sector on one mirror member: the load-balanced read
   picks the faulted replica (its head is closest), exhausts its retry
   budget, fails over to the healthy member, and the caller sees good
   data.  The detour is visible in [io.degraded_reads] and the fault in
   [disk.faults.bad_sector_reads]. *)
let test_mirror_degraded_read () =
  let io =
    Io.of_volume
      (Volume.create Volume.Mirror ~members:2 (geo ()))
      (Clock.create ()) Cpu_model.free
  in
  let payload = Bytes.init 512 (fun i -> Char.chr (i mod 256)) in
  Io.sync_write io ~sector:5000 payload;
  (* Park member 0's head far away: the balanced read of sector 20000
     breaks its tie toward member 0, so the later read of 5000 prefers
     member 1 — the replica about to go bad. *)
  ignore (Io.sync_read io ~sector:20_000 ~count:1);
  let data, _inj =
    Scenario.with_faults ~member:1 io
      [ Scenario.Bad_sectors [ 5000 ] ]
      (fun () -> Io.sync_read io ~sector:5000 ~count:1)
  in
  Alcotest.(check bytes) "served from the healthy replica" payload data;
  Alcotest.(check bool) "failover counted" true (cval io "io.degraded_reads" > 0);
  Alcotest.(check bool) "fault counted under disk.faults.*" true
    (cval io "disk.faults.bad_sector_reads" > 0)

let suite =
  [
    qcheck locate_roundtrip;
    qcheck split_covers;
    Alcotest.test_case "mirror address map" `Quick test_mirror_map;
    Alcotest.test_case "1-member volume = bare disk" `Quick
      test_single_member_lockstep;
    Alcotest.test_case "snapshot/restore deterministic on volumes" `Quick
      test_snapshot_restore_deterministic;
    Alcotest.test_case "mirror degraded read" `Quick
      test_mirror_degraded_read;
  ]
