(* Crash recovery: checkpoints, roll-forward, torn writes (§4.4). *)

open Common
module Fs = Lfs_core.Fs
module Disk = Lfs_disk.Disk
module Io = Lfs_disk.Io

let remount ?(config = small_config) fs =
  match Fs.mount ~config (Fs.io fs) with
  | Ok f -> f
  | Error e -> Alcotest.failf "remount: %s" e

(* Mount again without unmounting: everything not on disk is lost, as in
   a crash. *)
let crash_and_remount ?config fs =
  Disk.clear_crash (Io.disk (Fs.io fs));
  remount ?config fs

let test_checkpoint_then_crash () =
  let fs = make_lfs () in
  write_file fs "/safe" (pattern ~seed:1 2000);
  Fs.checkpoint_now fs;
  (* Dirty data in the cache only: lost at crash. *)
  write_file fs "/lost" (pattern ~seed:2 2000);
  let fs2 = crash_and_remount fs in
  check_bytes "checkpointed file survives" (pattern ~seed:1 2000)
    (read_all fs2 "/safe");
  Alcotest.(check bool) "unflushed file lost" false (Fs.exists fs2 "/lost")

let test_rollforward_recovers_synced () =
  let fs = make_lfs () in
  write_file fs "/safe" (pattern ~seed:1 2000);
  Fs.checkpoint_now fs;
  write_file fs "/synced" (pattern ~seed:3 3000);
  Fs.sync fs;
  (* Sync wrote segments but no checkpoint region. *)
  let fs2 = crash_and_remount fs in
  check_bytes "pre-checkpoint file" (pattern ~seed:1 2000) (read_all fs2 "/safe");
  check_bytes "roll-forward recovers synced data" (pattern ~seed:3 3000)
    (read_all fs2 "/synced")

let test_no_rollforward_loses_synced () =
  let config = { small_config with Lfs_core.Config.roll_forward = false } in
  let fs = make_lfs ~config () in
  write_file fs "/safe" (pattern ~seed:1 2000);
  Fs.checkpoint_now fs;
  write_file fs "/synced" (pattern ~seed:3 3000);
  Fs.sync fs;
  let fs2 = crash_and_remount ~config fs in
  check_bytes "pre-checkpoint file" (pattern ~seed:1 2000) (read_all fs2 "/safe");
  Alcotest.(check bool) "synced-but-not-checkpointed lost without roll-forward"
    false (Fs.exists fs2 "/synced")

let test_crash_mid_segment_write () =
  let fs = make_lfs () in
  write_file fs "/safe" (pattern ~seed:4 4000);
  Fs.checkpoint_now fs;
  write_file fs "/torn" (pattern ~seed:5 8000);
  (* Allow only a few more sectors: the segment write will tear. *)
  Disk.set_crash_after (Io.disk (Fs.io fs)) ~sectors:5;
  (try Fs.sync fs with Disk.Crash -> ());
  let fs2 = crash_and_remount fs in
  check_bytes "checkpointed data intact" (pattern ~seed:4 4000)
    (read_all fs2 "/safe");
  (* The torn file may or may not exist, but the FS must be consistent:
     every visible file must be fully readable. *)
  List.iter
    (fun name -> ignore (read_all fs2 ("/" ^ name)))
    (check_ok "readdir" (Fs.readdir fs2 "/"))

let test_torn_checkpoint_region () =
  let fs = make_lfs () in
  write_file fs "/a" (pattern ~seed:6 1000);
  Fs.checkpoint_now fs;
  write_file fs "/b" (pattern ~seed:7 1000);
  (* Let the flush complete but tear the checkpoint region write: the
     flush for this config is well under 120 sectors; the region write
     comes last.  Find the tear point empirically by sweeping. *)
  Fs.sync fs;
  let snapshot = Disk.snapshot (Io.disk (Fs.io fs)) in
  let try_tear sectors =
    (* Start from the snapshot with a *freshly mounted* instance — the
       old [fs] value's in-memory state no longer matches the media. *)
    Disk.restore (Io.disk (Fs.io fs)) snapshot;
    Disk.clear_crash (Io.disk (Fs.io fs));
    let fs1 = remount fs in
    write_file fs1 (Printf.sprintf "/extra%d" sectors) (pattern ~seed:sectors 500);
    Disk.set_crash_after (Io.disk (Fs.io fs)) ~sectors;
    (try Fs.checkpoint_now fs1 with Disk.Crash -> ());
    let fs2 = crash_and_remount fs1 in
    check_bytes "pre-tear file" (pattern ~seed:6 1000) (read_all fs2 "/a");
    List.iter
      (fun name -> ignore (read_all fs2 ("/" ^ name)))
      (check_ok "readdir" (Fs.readdir fs2 "/"))
  in
  (* A range of tear points covering segment write and region write. *)
  List.iter try_tear [ 1; 3; 8; 16; 24; 32; 40; 48 ]

let test_double_remount_idempotent () =
  let fs = make_lfs () in
  write_file fs "/f" (pattern ~seed:8 5000);
  Fs.sync fs;
  let fs2 = crash_and_remount fs in
  let c1 = read_all fs2 "/f" in
  let fs3 = crash_and_remount fs2 in
  let c2 = read_all fs3 "/f" in
  check_bytes "idempotent recovery" c1 c2

let test_delete_durable_after_rollforward () =
  (* A post-checkpoint delete whose directory update reached the log is
     durable: roll-forward replays the directory, and the recovery-time
     namespace sweep frees the now-nameless inode (the 1990 paper lacked
     this; see DESIGN.md). *)
  let fs = make_lfs () in
  write_file fs "/doomed" (pattern ~seed:9 2000);
  write_file fs "/keeper" (pattern ~seed:10 2000);
  Fs.checkpoint_now fs;
  check_ok "delete" (Fs.delete fs "/doomed");
  Fs.sync fs;
  let fs2 = crash_and_remount fs in
  Alcotest.(check bool) "delete survives the crash" false
    (Fs.exists fs2 "/doomed");
  check_bytes "keeper intact" (pattern ~seed:10 2000) (read_all fs2 "/keeper");
  (* No orphan left behind. *)
  match Lfs_core.Check.fsck fs2 with
  | [] -> ()
  | issues ->
      Alcotest.failf "issues after recovery: %s"
        (String.concat "; "
           (List.map (Format.asprintf "%a" Lfs_core.Check.pp_issue) issues))

let test_links_survive_recovery () =
  let fs = make_lfs () in
  write_file fs "/file" (pattern ~seed:11 1500);
  check_ok "link" (Fs.link fs "/file" "/alias");
  Fs.checkpoint_now fs;
  (* Unlink one name after the checkpoint, then crash. *)
  check_ok "delete" (Fs.delete fs "/file");
  Fs.sync fs;
  let fs2 = crash_and_remount fs in
  Alcotest.(check bool) "unlinked name gone" false (Fs.exists fs2 "/file");
  check_bytes "alias still reads" (pattern ~seed:11 1500) (read_all fs2 "/alias");
  let st = check_ok "stat" (Fs.stat fs2 "/alias") in
  Alcotest.(check int) "nlink repaired" 1 st.Lfs_vfs.Fs_intf.nlink;
  Alcotest.(check int) "fsck clean" 0 (List.length (Lfs_core.Check.fsck fs2))

let test_fsync_is_durable_and_narrow () =
  (* fsync pushes exactly the named file (and its directory entry): after
     a crash the fsynced file survives; a dirty sibling that was never
     synced does not. *)
  let fs = make_lfs () in
  Fs.checkpoint_now fs;
  check_ok "mkdir" (Fs.mkdir fs "/d");
  write_file fs "/d/precious" (pattern ~seed:31 2500);
  write_file fs "/d/unsynced" (pattern ~seed:32 2500);
  check_ok "fsync" (Fs.fsync fs "/d/precious");
  let fs2 = crash_and_remount fs in
  check_bytes "fsynced file survives" (pattern ~seed:31 2500)
    (read_all fs2 "/d/precious");
  Alcotest.(check bool) "dirty sibling lost" false (Fs.exists fs2 "/d/unsynced");
  Alcotest.(check int) "fsck clean" 0 (List.length (Lfs_core.Check.fsck fs2))

let test_recovery_after_cleaning () =
  let fs = make_lfs () in
  for i = 0 to 49 do
    write_file fs (Printf.sprintf "/f%02d" i) (pattern ~seed:i 1500)
  done;
  Fs.sync fs;
  for i = 0 to 49 do
    if i mod 2 = 0 then check_ok "delete" (Fs.delete fs (Printf.sprintf "/f%02d" i))
  done;
  let freed = Fs.clean_now fs in
  Alcotest.(check bool) "cleaned something" true (freed >= 0);
  let fs2 = crash_and_remount fs in
  for i = 0 to 49 do
    if i mod 2 = 1 then
      check_bytes
        (Printf.sprintf "f%02d after clean+crash" i)
        (pattern ~seed:i 1500)
        (read_all fs2 (Printf.sprintf "/f%02d" i))
  done

let test_crash_during_cleaning_sweep () =
  (* Power-cut at assorted points while the cleaner is relocating live
     data: recovery must always produce a structurally sound tree with
     every surviving file intact (the victims' originals are still in
     place until the moves are durable). *)
  let run_one sectors =
    let fs = make_lfs ~config:{ small_config with Lfs_core.Config.auto_clean = false } () in
    for i = 0 to 79 do
      write_file fs (Printf.sprintf "/f%02d" i) (pattern ~seed:i 1500)
    done;
    Fs.sync fs;
    Fs.checkpoint_now fs;
    for i = 0 to 79 do
      if i mod 2 = 0 then check_ok "delete" (Fs.delete fs (Printf.sprintf "/f%02d" i))
    done;
    Fs.sync fs;
    Disk.set_crash_after (Io.disk (Fs.io fs)) ~sectors;
    (try ignore (Fs.clean_now ~target:max_int fs) with Disk.Crash -> ());
    let fs2 = crash_and_remount fs in
    (* Every file the recovered namespace shows must read correctly; all
       odd-numbered survivors whose deletes were durable... the invariant
       we can assert unconditionally: odd files must exist with exact
       content (they were checkpointed and never touched). *)
    for i = 0 to 79 do
      if i mod 2 = 1 then
        check_bytes
          (Printf.sprintf "crash@%d f%02d" sectors i)
          (pattern ~seed:i 1500)
          (read_all fs2 (Printf.sprintf "/f%02d" i))
    done;
    match
      List.filter
        (function Lfs_core.Check.Orphan_inode _ -> false | _ -> true)
        (Lfs_core.Check.fsck fs2)
    with
    | [] -> ()
    | issues ->
        Alcotest.failf "crash@%d: %s" sectors
          (String.concat "; "
             (List.map (Format.asprintf "%a" Lfs_core.Check.pp_issue) issues))
  in
  List.iter run_one [ 2; 9; 17; 33; 65; 120; 250 ]

let no_divergence what ~expected ~recovered =
  match Lfs_core.Check.recovery_divergence ~expected ~recovered with
  | [] -> ()
  | ds -> Alcotest.failf "%s: recovery diverged: %s" what (String.concat "; " ds)

let integrity_clean what fs =
  match Fs.integrity fs with
  | [] -> ()
  | issues ->
      Alcotest.failf "%s: integrity issues: %s" what (String.concat "; " issues)

let test_recovery_cross_validation () =
  (* Checkpoint/recovery cross-validation: the recovered tree must match
     the pre-crash durable tree exactly — names, kinds, nlinks, sizes
     and bytes — not merely fsck clean. *)
  let fs = make_lfs () in
  check_ok "mkdir" (Fs.mkdir fs "/d");
  write_file fs "/d/a" (pattern ~seed:21 3000);
  write_file fs "/b" (pattern ~seed:22 12000);
  check_ok "link" (Fs.link fs "/d/a" "/alias");
  Fs.checkpoint_now fs;
  (* Everything is durable: recovery must reproduce the live state. *)
  let fs2 = crash_and_remount fs in
  no_divergence "after checkpoint" ~expected:fs ~recovered:fs2;
  integrity_clean "after checkpoint recovery" fs2;
  (* Post-checkpoint mutations, synced but not checkpointed: roll-forward
     must reconstruct them all. *)
  write_file fs2 "/d/c" (pattern ~seed:23 5000);
  check_ok "delete" (Fs.delete fs2 "/b");
  check_ok "rename" (Fs.rename fs2 "/alias" "/d/alias2");
  Fs.sync fs2;
  let fs3 = crash_and_remount fs2 in
  no_divergence "after roll-forward" ~expected:fs2 ~recovered:fs3;
  integrity_clean "after roll-forward recovery" fs3;
  (* Recovery is idempotent at whole-tree granularity. *)
  let fs4 = crash_and_remount fs3 in
  no_divergence "second recovery" ~expected:fs3 ~recovered:fs4;
  integrity_clean "second recovery" fs4

let test_mount_unformatted () =
  let io = make_io () in
  match Fs.mount ~config:small_config io with
  | Ok _ -> Alcotest.fail "mounted an unformatted disk"
  | Error _ -> ()

let suite =
  [
    Alcotest.test_case "checkpoint then crash" `Quick test_checkpoint_then_crash;
    Alcotest.test_case "roll-forward recovers synced data" `Quick
      test_rollforward_recovers_synced;
    Alcotest.test_case "no roll-forward loses synced data" `Quick
      test_no_rollforward_loses_synced;
    Alcotest.test_case "crash mid segment write" `Quick
      test_crash_mid_segment_write;
    Alcotest.test_case "torn checkpoint region (sweep)" `Quick
      test_torn_checkpoint_region;
    Alcotest.test_case "double remount idempotent" `Quick
      test_double_remount_idempotent;
    Alcotest.test_case "post-checkpoint delete is durable" `Quick
      test_delete_durable_after_rollforward;
    Alcotest.test_case "hard links survive recovery" `Quick
      test_links_survive_recovery;
    Alcotest.test_case "fsync durable and narrow" `Quick
      test_fsync_is_durable_and_narrow;
    Alcotest.test_case "recovery after cleaning" `Quick
      test_recovery_after_cleaning;
    Alcotest.test_case "crash during cleaning (sweep)" `Quick
      test_crash_during_cleaning_sweep;
    Alcotest.test_case "recovery cross-validation" `Quick
      test_recovery_cross_validation;
    Alcotest.test_case "mount unformatted disk" `Quick test_mount_unformatted;
  ]
