(* Unit and property tests for lfs_util: bitset, LRU, CRC, RNG, Zipf,
   codec, tables. *)

module Bitset = Lfs_util.Bitset
module Codec = Lfs_util.Codec
module Crc32 = Lfs_util.Crc32
module Lru = Lfs_util.Lru
module Rng = Lfs_util.Rng
module Table = Lfs_util.Table
module Zipf = Lfs_util.Zipf

let qcheck = QCheck_alcotest.to_alcotest

(* Bitset *)

let test_bitset_basic () =
  let b = Bitset.create 100 in
  Alcotest.(check int) "empty" 0 (Bitset.cardinal b);
  Bitset.set b 0;
  Bitset.set b 99;
  Bitset.set b 42;
  Alcotest.(check int) "three" 3 (Bitset.cardinal b);
  Alcotest.(check bool) "mem" true (Bitset.mem b 42);
  Bitset.set b 42;
  Alcotest.(check int) "idempotent" 3 (Bitset.cardinal b);
  Bitset.clear b 42;
  Alcotest.(check bool) "cleared" false (Bitset.mem b 42);
  Alcotest.(check int) "two" 2 (Bitset.cardinal b);
  (match Bitset.find_first_clear b with
  | Some 1 -> ()
  | other ->
      Alcotest.failf "find_first_clear: %s"
        (match other with Some n -> string_of_int n | None -> "none"));
  Alcotest.(check bool) "oob" true
    (try
       Bitset.set b 100;
       false
     with Invalid_argument _ -> true)

let test_bitset_wrap_search () =
  let b = Bitset.create 10 in
  for i = 0 to 9 do
    Bitset.set b i
  done;
  Bitset.clear b 2;
  Alcotest.(check (option int)) "wraps" (Some 2) (Bitset.find_first_clear ~start:5 b);
  Bitset.set b 2;
  Alcotest.(check (option int)) "full" None (Bitset.find_first_clear b)

let test_bitset_fill_all () =
  let b = Bitset.create 13 in
  Bitset.fill_all b;
  Alcotest.(check int) "all set" 13 (Bitset.cardinal b);
  Bitset.clear_all b;
  Alcotest.(check int) "all clear" 0 (Bitset.cardinal b)

let prop_bitset_roundtrip =
  QCheck.Test.make ~name:"bitset serialize roundtrip" ~count:100
    QCheck.(pair (int_bound 200) (list (int_bound 199)))
    (fun (len, sets) ->
      let len = len + 1 in
      let b = Bitset.create len in
      List.iter (fun i -> if i < len then Bitset.set b i) sets;
      let b' = Bitset.of_bytes ~length:len (Bitset.to_bytes b) in
      Bitset.cardinal b = Bitset.cardinal b'
      && List.for_all (fun i -> i >= len || Bitset.mem b' i) sets)

(* LRU *)

let test_lru_eviction () =
  let l = Lru.create ~capacity:3 () in
  Alcotest.(check (option (pair int string))) "evict none" None (Lru.add l 1 "a");
  ignore (Lru.add l 2 "b");
  ignore (Lru.add l 3 "c");
  (* Touch 1 so that 2 is LRU. *)
  Alcotest.(check (option string)) "find" (Some "a") (Lru.find l 1);
  Alcotest.(check (option (pair int string))) "evicts 2" (Some (2, "b"))
    (Lru.add l 4 "d");
  Alcotest.(check int) "len" 3 (Lru.length l);
  Alcotest.(check bool) "2 gone" false (Lru.mem l 2)

let test_lru_replace () =
  let l = Lru.create ~capacity:2 () in
  ignore (Lru.add l 1 "a");
  ignore (Lru.add l 1 "a2");
  Alcotest.(check int) "no dup" 1 (Lru.length l);
  Alcotest.(check (option string)) "replaced" (Some "a2") (Lru.peek l 1)

let test_lru_order () =
  let l = Lru.create () in
  ignore (Lru.add l 1 "a");
  ignore (Lru.add l 2 "b");
  ignore (Lru.add l 3 "c");
  ignore (Lru.find l 1);
  Alcotest.(check (list int)) "mru order" [ 1; 3; 2 ]
    (List.map fst (Lru.to_list l));
  Alcotest.(check (option (pair int string))) "pop lru" (Some (2, "b"))
    (Lru.pop_lru l);
  ignore (Lru.remove l 3);
  Alcotest.(check (list int)) "after removal" [ 1 ] (List.map fst (Lru.to_list l))

let test_lru_cold_iteration () =
  let l = Lru.create () in
  ignore (Lru.add l 1 "a");
  ignore (Lru.add l 2 "b");
  ignore (Lru.add l 3 "c");
  ignore (Lru.find l 1);
  (* Cold-to-hot is the reverse of to_list, without the allocation. *)
  Alcotest.(check (list int)) "lru order" [ 2; 3; 1 ]
    (List.rev (Lru.fold_lru (fun k _ acc -> k :: acc) l []));
  let seen = ref [] in
  Lru.iter_lru (fun k _ -> seen := k :: !seen) l;
  Alcotest.(check (list int)) "iter_lru agrees" [ 2; 3; 1 ] (List.rev !seen)

let test_lru_sweep () =
  let l = Lru.create () in
  for i = 1 to 5 do
    ignore (Lru.add l i (string_of_int i))
  done;
  (* Cold-to-hot order is 1..5.  Remove evens, stop at 4: so 1 kept,
     2 removed, 3 kept, 4 untouched by Stop, 5 never visited. *)
  Lru.sweep_lru
    (fun k _ ->
      if k = 4 then Lru.Stop else if k mod 2 = 0 then Lru.Remove else Lru.Keep)
    l;
  Alcotest.(check int) "one removed" 4 (Lru.length l);
  Alcotest.(check bool) "2 removed" false (Lru.mem l 2);
  Alcotest.(check bool) "4 kept at Stop" true (Lru.mem l 4);
  Alcotest.(check bool) "5 untouched" true (Lru.mem l 5);
  (* Removing every visited entry leaves a consistent structure. *)
  Lru.sweep_lru (fun _ _ -> Lru.Remove) l;
  Alcotest.(check int) "swept clean" 0 (Lru.length l);
  ignore (Lru.add l 9 "z");
  Alcotest.(check (option string)) "usable after sweep" (Some "z")
    (Lru.peek l 9)

let prop_lru_model =
  (* Compare against a naive list model. *)
  QCheck.Test.make ~name:"lru matches model" ~count:200
    QCheck.(list (pair (int_bound 10) (int_bound 100)))
    (fun ops ->
      let capacity = 4 in
      let l = Lru.create ~capacity () in
      let model = ref [] in
      List.iter
        (fun (k, v) ->
          ignore (Lru.add l k v);
          model := (k, v) :: List.remove_assoc k !model;
          if List.length !model > capacity then
            model := List.filteri (fun i _ -> i < capacity) !model)
        ops;
      List.sort compare (Lru.to_list l) = List.sort compare !model)

(* CRC32 *)

let test_crc32_vectors () =
  (* Standard test vector: "123456789" -> 0xCBF43926. *)
  Alcotest.(check int32) "check value" 0xCBF43926l
    (Crc32.digest_string "123456789");
  Alcotest.(check int32) "empty" 0l (Crc32.digest_string "");
  Alcotest.(check bool) "sensitive" true
    (Crc32.digest_string "a" <> Crc32.digest_string "b")

let test_crc32_slice () =
  let b = Bytes.of_string "xx123456789yy" in
  Alcotest.(check int32) "slice" 0xCBF43926l (Crc32.digest_bytes ~off:2 ~len:9 b)

(* RNG *)

let test_rng_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_bounds () =
  let r = Rng.create 11 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of bounds: %d" v;
    let f = Rng.float r 2.5 in
    if f < 0.0 || f >= 2.5 then Alcotest.failf "float out of bounds: %f" f
  done

let test_rng_shuffle_permutes () =
  let r = Rng.create 3 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check bool) "is permutation" true (sorted = Array.init 50 Fun.id)

(* Zipf *)

let test_zipf_skew () =
  let z = Zipf.create ~n:100 ~theta:1.0 in
  let r = Rng.create 5 in
  let counts = Array.make 100 0 in
  for _ = 1 to 10_000 do
    let v = Zipf.sample z r in
    counts.(v) <- counts.(v) + 1
  done;
  (* Rank 0 must be sampled much more than rank 99, and everything must
     be in range (guaranteed by the array). *)
  Alcotest.(check bool) "skewed" true (counts.(0) > 10 * max 1 counts.(99))

let test_zipf_uniform () =
  let z = Zipf.create ~n:10 ~theta:0.0 in
  let r = Rng.create 6 in
  let counts = Array.make 10 0 in
  for _ = 1 to 10_000 do
    counts.(Zipf.sample z r) <- counts.(Zipf.sample z r) + 1
  done;
  Array.iter
    (fun c -> if c < 500 then Alcotest.failf "uniform too skewed: %d" c)
    counts

(* Codec *)

let test_codec_basic () =
  let e = Codec.encoder () in
  Codec.u8 e 255;
  Codec.u16 e 65535;
  Codec.u32 e 0xDEADBEEF;
  Codec.i64 e (-1L);
  Codec.bool e true;
  Codec.string_u16 e "hello";
  let d = Codec.decoder (Codec.to_bytes e) in
  Alcotest.(check int) "u8" 255 (Codec.read_u8 d);
  Alcotest.(check int) "u16" 65535 (Codec.read_u16 d);
  Alcotest.(check int) "u32" 0xDEADBEEF (Codec.read_u32 d);
  Alcotest.(check int64) "i64" (-1L) (Codec.read_i64 d);
  Alcotest.(check bool) "bool" true (Codec.read_bool d);
  Alcotest.(check string) "string" "hello" (Codec.read_string_u16 d);
  Alcotest.(check int) "drained" 0 (Codec.remaining d)

let test_codec_errors () =
  let e = Codec.encoder () in
  Alcotest.(check bool) "u8 range" true
    (try
       Codec.u8 e 256;
       false
     with Codec.Error _ -> true);
  let d = Codec.decoder (Bytes.create 1) in
  Alcotest.(check bool) "truncated" true
    (try
       ignore (Codec.read_u32 d);
       false
     with Codec.Error _ -> true)

let test_codec_pad () =
  let e = Codec.encoder () in
  Codec.u8 e 7;
  Codec.pad_to e 16;
  let b = Codec.to_bytes e in
  Alcotest.(check int) "padded" 16 (Bytes.length b);
  Alcotest.(check int) "zero fill" 0 (Char.code (Bytes.get b 10))

let prop_codec_ints =
  QCheck.Test.make ~name:"codec int roundtrips" ~count:500
    QCheck.(triple (int_bound 0xFFFF) (int_bound 0x3FFFFFFF) int64)
    (fun (a, b, c) ->
      let e = Codec.encoder () in
      Codec.u16 e a;
      Codec.u32 e b;
      Codec.i64 e c;
      Codec.int_as_i64 e (a + b);
      let d = Codec.decoder (Codec.to_bytes e) in
      Codec.read_u16 d = a
      && Codec.read_u32 d = b
      && Codec.read_i64 d = c
      && Codec.read_int_as_i64 d = a + b)

let prop_codec_strings =
  QCheck.Test.make ~name:"codec string roundtrips" ~count:200
    QCheck.(small_list (string_of_size (Gen.int_bound 50)))
    (fun strings ->
      let e = Codec.encoder () in
      List.iter (Codec.string_u16 e) strings;
      let d = Codec.decoder (Codec.to_bytes e) in
      List.for_all (fun s -> Codec.read_string_u16 d = s) strings)

(* Table *)

let test_table_render () =
  let out =
    Table.render ~headers:[ "name"; "n" ] [ [ "a"; "1" ]; [ "long"; "22" ] ]
  in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check int) "line count" 5 (List.length lines);
  (* All non-empty lines same width. *)
  let widths =
    List.filter_map
      (fun l -> if l = "" then None else Some (String.length l))
      lines
  in
  List.iter (fun w -> Alcotest.(check int) "aligned" (List.hd widths) w) widths

let test_table_formats () =
  Alcotest.(check string) "bytes" "1.0 MB" (Table.fmt_bytes (1024 * 1024));
  Alcotest.(check string) "kb" "1.5 KB" (Table.fmt_bytes 1536);
  Alcotest.(check string) "ratio" "2.5x" (Table.fmt_ratio 2.5)

let suite =
  [
    Alcotest.test_case "bitset basic" `Quick test_bitset_basic;
    Alcotest.test_case "bitset wrap search" `Quick test_bitset_wrap_search;
    Alcotest.test_case "bitset fill/clear all" `Quick test_bitset_fill_all;
    qcheck prop_bitset_roundtrip;
    Alcotest.test_case "lru eviction" `Quick test_lru_eviction;
    Alcotest.test_case "lru replace" `Quick test_lru_replace;
    Alcotest.test_case "lru order" `Quick test_lru_order;
    Alcotest.test_case "lru cold-end iteration" `Quick test_lru_cold_iteration;
    Alcotest.test_case "lru sweep" `Quick test_lru_sweep;
    qcheck prop_lru_model;
    Alcotest.test_case "crc32 vectors" `Quick test_crc32_vectors;
    Alcotest.test_case "crc32 slice" `Quick test_crc32_slice;
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng shuffle" `Quick test_rng_shuffle_permutes;
    Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
    Alcotest.test_case "zipf uniform" `Quick test_zipf_uniform;
    Alcotest.test_case "codec basic" `Quick test_codec_basic;
    Alcotest.test_case "codec errors" `Quick test_codec_errors;
    Alcotest.test_case "codec pad" `Quick test_codec_pad;
    qcheck prop_codec_ints;
    qcheck prop_codec_strings;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table formats" `Quick test_table_formats;
  ]
