(* The latency-attribution profiler and the benchdiff gate.

   Profile invariants are structural: exclusive times partition inclusive
   time, so the four attribution columns must sum exactly to each
   operation's total, histogram-backed percentiles must be ordered, and
   the aggregate span tree must be self-consistent (children's inclusive
   time accounts for exactly the parent's inclusive minus exclusive
   time).  Benchdiff must pass an identical pair and gate a synthetic
   regression. *)

module P = Lfs_obs.Profile
module B = Lfs_obs.Benchdiff
module Json = Lfs_obs.Json
module W = Lfs_workload

(* ---------------- profile ---------------- *)

let rec check_tree (t : P.tree) =
  Alcotest.(check bool)
    (Printf.sprintf "%s: exclusive time non-negative" t.P.t_name)
    true (t.P.t_excl_us >= 0);
  let child_incl =
    List.fold_left (fun acc c -> acc + c.P.t_incl_us) 0 t.P.t_children
  in
  Alcotest.(check int)
    (Printf.sprintf "%s: children partition inclusive time" t.P.t_name)
    (t.P.t_incl_us - t.P.t_excl_us)
    child_incl;
  List.iter check_tree t.P.t_children

let check_instance inst =
  let profile = P.attach (W.Driver.bus inst) in
  let (_ : W.Smallfile.result) =
    W.Smallfile.run ~nfiles:80 ~file_size:1024 inst
  in
  W.Driver.sanitize inst;
  let rep = P.report profile in
  P.detach profile;
  let label = W.Driver.label inst in
  Alcotest.(check bool)
    (label ^ ": ops recorded")
    true (rep.P.ops <> []);
  List.iter
    (fun (s : P.op_stat) ->
      let name = label ^ " " ^ s.P.op in
      Alcotest.(check bool) (name ^ ": counted") true (s.P.count > 0);
      (* The acceptance bar is 1%; the partition is in fact exact. *)
      Alcotest.(check int)
        (name ^ ": attribution sums to total")
        s.P.total_us
        (s.P.cache_us + s.P.disk_us + s.P.cleaner_us + s.P.checkpoint_us);
      Alcotest.(check bool)
        (name ^ ": percentiles ordered")
        true
        (s.P.p50_us <= s.P.p95_us && s.P.p95_us <= s.P.p99_us);
      Alcotest.(check bool)
        (name ^ ": p99 bounded by total")
        true
        (s.P.p99_us <= s.P.total_us);
      (* The op's histogram saw every completion: the tree root for this
         op carries the same count. *)
      match
        List.find_opt (fun t -> t.P.t_name = "op_" ^ s.P.op) rep.P.spans
      with
      | Some t ->
          Alcotest.(check int)
            (name ^ ": histogram count = op count")
            s.P.count t.P.t_count
      | None -> Alcotest.failf "%s: no span-tree root" name)
    rep.P.ops;
  List.iter check_tree rep.P.spans

let test_profile_invariants () =
  List.iter check_instance (W.Setup.both ~disk_mb:16 ())

(* Attaching mid-run must not corrupt the aggregate: span ends whose
   begins predate the attach are ignored. *)
let test_profile_mid_span_attach () =
  let bus = Lfs_obs.Bus.create ~now:(fun () -> 0) () in
  Lfs_obs.Bus.span_begin bus "orphan";
  let profile = P.attach bus in
  Lfs_obs.Bus.span_end bus "orphan";
  P.with_op bus `Stat (fun () -> ());
  let rep = P.report profile in
  P.detach profile;
  (match rep.P.ops with
  | [ s ] ->
      Alcotest.(check string) "only the post-attach op" "stat" s.P.op;
      Alcotest.(check int) "one completion" 1 s.P.count
  | ops -> Alcotest.failf "expected one op, got %d" (List.length ops));
  Alcotest.(check bool) "orphan span ignored" true
    (not (List.exists (fun t -> t.P.t_name = "orphan") rep.P.spans))

(* ---------------- benchdiff ---------------- *)

let bench_doc ~create_per_sec ~write_cost =
  Json.Obj
    [
      ("schema", Json.String "lfs-bench/1");
      ("quick", Json.Bool true);
      ( "figures",
        Json.Obj
          [
            ( "fig3",
              Json.List
                [
                  Json.Obj
                    [
                      ("label", Json.String "LFS");
                      ("create_per_sec", Json.Float create_per_sec);
                      ("write_cost", Json.Float write_cost);
                    ];
                ] );
          ] );
    ]

let test_benchdiff_identical () =
  let doc = bench_doc ~create_per_sec:400.0 ~write_cost:1.2 in
  let rep = B.compare ~base:doc ~cur:doc () in
  Alcotest.(check bool) "no gate" false (B.gates rep);
  Alcotest.(check int) "no regressions" 0 (List.length (B.regressions rep));
  Alcotest.(check int) "nothing missing" 0 (List.length rep.B.missing)

let test_benchdiff_gates_regression () =
  let base = bench_doc ~create_per_sec:400.0 ~write_cost:1.2 in
  (* Throughput halves: out of tolerance in the bad direction. *)
  let cur = bench_doc ~create_per_sec:200.0 ~write_cost:1.2 in
  let rep = B.compare ~base ~cur () in
  Alcotest.(check bool) "gates" true (B.gates rep);
  (match B.regressions rep with
  | [ d ] ->
      Alcotest.(check string) "metric" "create_per_sec" d.B.metric;
      Alcotest.(check bool) "regressed" true (d.B.status = B.Regressed)
  | ds -> Alcotest.failf "expected one regression, got %d" (List.length ds));
  (* A cost that falls is an improvement, not a regression. *)
  let better = bench_doc ~create_per_sec:400.0 ~write_cost:0.9 in
  let rep = B.compare ~base ~cur:better () in
  Alcotest.(check bool) "improvement passes" false (B.gates rep)

let test_benchdiff_tolerance () =
  let base = bench_doc ~create_per_sec:400.0 ~write_cost:1.2 in
  let cur = bench_doc ~create_per_sec:388.0 ~write_cost:1.2 in
  (* A 3% dip is inside the default 5% band... *)
  Alcotest.(check bool) "within default tolerance" false
    (B.gates (B.compare ~base ~cur ()));
  (* ...and outside a 1% band. *)
  Alcotest.(check bool) "outside tight tolerance" true
    (B.gates (B.compare ~tolerance_pct:1.0 ~base ~cur ()))

let test_benchdiff_missing_gates () =
  let base = bench_doc ~create_per_sec:400.0 ~write_cost:1.2 in
  let cur =
    Json.Obj
      [
        ("schema", Json.String "lfs-bench/1");
        ("quick", Json.Bool true);
        ("figures", Json.Obj []);
      ]
  in
  let rep = B.compare ~base ~cur () in
  Alcotest.(check bool) "missing figure gates" true (B.gates rep);
  Alcotest.(check bool) "reported as missing" true (rep.B.missing <> [])

let test_benchdiff_bad_schema () =
  let doc = bench_doc ~create_per_sec:1.0 ~write_cost:1.0 in
  let bad = Json.Obj [ ("schema", Json.String "something-else") ] in
  try
    ignore (B.compare ~base:bad ~cur:doc ());
    Alcotest.fail "bad schema did not raise"
  with Invalid_argument _ -> ()

let suite =
  [
    Alcotest.test_case "profile invariants (both systems)" `Quick
      test_profile_invariants;
    Alcotest.test_case "mid-span attach" `Quick test_profile_mid_span_attach;
    Alcotest.test_case "benchdiff identical pair" `Quick
      test_benchdiff_identical;
    Alcotest.test_case "benchdiff gates regression" `Quick
      test_benchdiff_gates_regression;
    Alcotest.test_case "benchdiff tolerance band" `Quick
      test_benchdiff_tolerance;
    Alcotest.test_case "benchdiff missing gates" `Quick
      test_benchdiff_missing_gates;
    Alcotest.test_case "benchdiff bad schema" `Quick test_benchdiff_bad_schema;
  ]
