(* The concurrent multi-client engine: determinism (same seed and
   client count reproduce the event sequence, the metrics and the final
   image, on both systems), accounting invariants, and the interaction
   with the disk request scheduler. *)

module Engine = Lfs_workload.Engine
module Setup = Lfs_workload.Setup
module Driver = Lfs_workload.Driver
module Io = Lfs_disk.Io
module Sched = Lfs_disk.Sched
module Bus = Lfs_obs.Bus
module Event = Lfs_obs.Event
module Fs_intf = Lfs_vfs.Fs_intf

let small =
  {
    Engine.default with
    Engine.clients = 4;
    ops_per_client = 40;
    working_set = 60;
    dirs = 4;
  }

(* Run the engine on a fresh instance, capturing the Client_op event
   stream and the final media image alongside the result. *)
let run_traced ?(config = small) make =
  let inst = make () in
  let io = Fs_intf.instance_io inst in
  let events = ref [] in
  let sub =
    Bus.subscribe (Io.bus io) (fun r ->
        match r.Event.event with
        | Event.Client_op { client; op; latency_us } ->
            events := (r.Event.at_us, client, op, latency_us) :: !events
        | _ -> ())
  in
  let result = Engine.run ~config inst in
  Bus.unsubscribe (Io.bus io) sub;
  (result, List.rev !events, Io.snapshot_media io)

let check_determinism name make =
  let r1, ev1, media1 = run_traced make in
  let r2, ev2, media2 = run_traced make in
  Alcotest.(check bool) (name ^ ": same result") true (r1 = r2);
  Alcotest.(check int)
    (name ^ ": same event count")
    (List.length ev1) (List.length ev2);
  Alcotest.(check bool) (name ^ ": same event sequence") true (ev1 = ev2);
  Alcotest.(check bytes) (name ^ ": same final image") media1 media2;
  Alcotest.(check bool)
    (name ^ ": events observed")
    true
    (List.length ev1 = small.Engine.clients * small.Engine.ops_per_client)

let test_determinism_lfs () =
  check_determinism "lfs" (fun () -> Setup.lfs ~disk_mb:24 ())

let test_determinism_ffs () =
  check_determinism "ffs" (fun () -> Setup.ffs ~disk_mb:24 ())

let test_seed_matters () =
  let r1, _, _ = run_traced (fun () -> Setup.lfs ~disk_mb:24 ()) in
  let r2, _, _ =
    run_traced
      ~config:{ small with Engine.seed = small.Engine.seed + 1 }
      (fun () -> Setup.lfs ~disk_mb:24 ())
  in
  Alcotest.(check bool) "different seed, different run" true (r1 <> r2)

let test_accounting () =
  let inst = Setup.ffs ~disk_mb:24 () in
  let r = Engine.run ~config:small inst in
  Alcotest.(check int) "total ops" (4 * 40) r.Engine.total_ops;
  Alcotest.(check int) "per-client ops sum to total" r.Engine.total_ops
    (List.fold_left (fun a c -> a + c.Engine.ops) 0 r.Engine.per_client);
  Alcotest.(check int) "one stat per client" 4
    (List.length r.Engine.per_client);
  Alcotest.(check bool) "p50 <= p99" true (r.Engine.p50_us <= r.Engine.p99_us);
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "client %d percentiles ordered" c.Engine.client)
        true
        (c.Engine.p50_us <= c.Engine.p99_us && c.Engine.p99_us <= c.Engine.max_us))
    r.Engine.per_client;
  Alcotest.(check bool) "time passed" true (r.Engine.elapsed_us > 0);
  Alcotest.(check bool) "throughput positive" true (r.Engine.ops_per_sec > 0.0);
  Alcotest.(check bool) "queue observed under load" true
    (r.Engine.mean_queue_depth > 0.0);
  Alcotest.(check bool) "fcfs label" true (r.Engine.discipline = "fcfs");
  (* The engine must leave the instance fsck-clean and with the
     scheduler uninstalled. *)
  Driver.sanitize inst;
  Alcotest.(check bool) "scheduler removed" true
    (Io.scheduler (Fs_intf.instance_io inst) = None)

let test_immediate_mode () =
  let inst = Setup.lfs ~disk_mb:24 () in
  let r =
    Engine.run
      ~config:{ small with Engine.discipline = None; ops_per_client = 20 }
      inst
  in
  Alcotest.(check bool) "immediate label" true (r.Engine.discipline = "immediate");
  Alcotest.(check bool) "no queue in immediate mode" true
    (r.Engine.mean_queue_depth = 0.0)

let test_config_validation () =
  let inst = Setup.lfs ~disk_mb:24 () in
  List.iter
    (fun config ->
      Alcotest.(check bool) "rejected" true
        (try
           ignore (Engine.run ~config inst);
           false
         with Driver.Benchmark_failure _ -> true))
    [
      { small with Engine.clients = 0 };
      { small with Engine.ops_per_client = 0 };
      { small with Engine.read_fraction = 0.9; overwrite_fraction = 0.3 };
      { small with Engine.think = Engine.Uniform (2_000, 1_000) };
      { small with Engine.max_queue = 0 };
    ]

let suite =
  [
    Alcotest.test_case "deterministic on lfs" `Quick test_determinism_lfs;
    Alcotest.test_case "deterministic on ffs" `Quick test_determinism_ffs;
    Alcotest.test_case "seed changes the run" `Quick test_seed_matters;
    Alcotest.test_case "accounting invariants" `Quick test_accounting;
    Alcotest.test_case "immediate mode" `Quick test_immediate_mode;
    Alcotest.test_case "config validation" `Quick test_config_validation;
  ]
