(* The benchmark workloads at miniature scale: every figure's qualitative
   shape must already hold in the small (these are the claims the paper's
   evaluation rests on). *)

module W = Lfs_workload

let test_creation_trace_shapes () =
  match List.map W.Creation_trace.run (W.Setup.both ~disk_mb:16 ()) with
  | [ lfs; ffs ] ->
      (* Figure 2: one large sequential asynchronous transfer. *)
      Alcotest.(check int) "LFS single write" 1 lfs.W.Creation_trace.writes;
      Alcotest.(check int) "LFS no sync writes" 0 lfs.W.Creation_trace.sync_writes;
      (* Figure 1: many small writes, several synchronous, scattered. *)
      Alcotest.(check bool) "FFS many writes" true (ffs.W.Creation_trace.writes >= 8);
      Alcotest.(check int) "FFS four sync writes" 4 ffs.W.Creation_trace.sync_writes;
      Alcotest.(check bool) "FFS seeks" true
        (ffs.W.Creation_trace.writes - ffs.W.Creation_trace.sequential_writes >= 4)
  | _ -> Alcotest.fail "expected two systems"

let test_smallfile_shapes () =
  match
    List.map
      (fun inst -> W.Smallfile.run ~nfiles:300 ~file_size:1024 inst)
      (W.Setup.both ~disk_mb:32 ())
  with
  | [ lfs; ffs ] ->
      (* Order-of-magnitude create/delete advantage; reads not worse. *)
      Alcotest.(check bool) "create speedup" true
        (lfs.W.Smallfile.create_per_sec > 5.0 *. ffs.W.Smallfile.create_per_sec);
      Alcotest.(check bool) "delete speedup" true
        (lfs.W.Smallfile.delete_per_sec > 5.0 *. ffs.W.Smallfile.delete_per_sec);
      Alcotest.(check bool) "read not worse" true
        (lfs.W.Smallfile.read_per_sec >= 0.8 *. ffs.W.Smallfile.read_per_sec)
  | _ -> Alcotest.fail "expected two systems"

let test_largefile_shapes () =
  match
    List.map (fun i -> W.Largefile.run ~file_mb:6 i) (W.Setup.both ~disk_mb:48 ())
  with
  | [ lfs; ffs ] ->
      (* LFS: random writes at least as fast as sequential (the log makes
         them sequential). *)
      Alcotest.(check bool) "LFS rand write ~ seq write" true
        (lfs.W.Largefile.rand_write_kbs >= 0.8 *. lfs.W.Largefile.seq_write_kbs);
      (* FFS: random writes pay for placement. *)
      Alcotest.(check bool) "FFS rand write slower" true
        (ffs.W.Largefile.rand_write_kbs < 0.8 *. ffs.W.Largefile.seq_write_kbs);
      (* The paper's counter-example: sequential re-read after random
         updates favours update-in-place. *)
      Alcotest.(check bool) "FFS wins seq reread" true
        (ffs.W.Largefile.seq_reread_kbs > lfs.W.Largefile.seq_reread_kbs);
      (* Sequential read comparable on both. *)
      Alcotest.(check bool) "seq read comparable" true
        (lfs.W.Largefile.seq_read_kbs > 0.7 *. ffs.W.Largefile.seq_read_kbs)
  | _ -> Alcotest.fail "expected two systems"

let make_small_lfs () =
  let io = W.Setup.make_io ~disk_mb:24 () in
  let config = { Lfs_core.Config.default with Lfs_core.Config.max_files = 8192 } in
  (match Lfs_core.Fs.format io config with
  | Ok () -> ()
  | Error e -> failwith e);
  match Lfs_core.Fs.mount ~config io with
  | Ok fs -> fs
  | Error e -> failwith e

let test_cleaning_shape () =
  let points =
    W.Cleaning.sweep ~utilizations:[ 0.1; 0.5; 0.8 ] make_small_lfs
  in
  (match points with
  | [ low; mid; high ] ->
      Alcotest.(check bool) "gross rate decreases" true
        (low.W.Cleaning.clean_kb_per_sec > mid.W.Cleaning.clean_kb_per_sec
        && mid.W.Cleaning.clean_kb_per_sec > high.W.Cleaning.clean_kb_per_sec);
      Alcotest.(check bool) "net rate collapses at high utilization" true
        (high.W.Cleaning.net_kb_per_sec < 0.4 *. low.W.Cleaning.net_kb_per_sec);
      (* Small disks add metadata noise; require only that the sweep's
         extremes order correctly. *)
      Alcotest.(check bool) "measured utilizations ordered" true
        (low.W.Cleaning.utilization < high.W.Cleaning.utilization)
  | _ -> Alcotest.fail "expected three points");
  ()

let test_hotcold_policies () =
  (* Under heavily skewed overwrites, cost-benefit should not be worse
     than 1.5x greedy (it usually wins); both must complete. *)
  let run policy =
    W.Hotcold.run ~theta:0.99 ~ops:2_000 ~disk_utilization:0.6 ~policy
      (make_small_lfs ())
  in
  let greedy = run Lfs_core.Config.Greedy in
  let cb = run Lfs_core.Config.Cost_benefit in
  Alcotest.(check bool) "both produce costs >= 1" true
    (greedy.W.Hotcold.write_cost >= 1.0 && cb.W.Hotcold.write_cost >= 1.0)

let suite =
  [
    Alcotest.test_case "fig1/2 shapes" `Quick test_creation_trace_shapes;
    Alcotest.test_case "fig3 shapes" `Quick test_smallfile_shapes;
    Alcotest.test_case "fig4 shapes" `Slow test_largefile_shapes;
    Alcotest.test_case "fig5 shape" `Slow test_cleaning_shape;
    Alcotest.test_case "hot/cold policies run" `Slow test_hotcold_policies;
  ]
