(* A conformance suite over the shared Fs_intf.S signature, instantiated
   for both LFS and the FFS baseline so the two systems are held to the
   same semantics. *)

module Fs_intf = Lfs_vfs.Fs_intf
module E = Lfs_vfs.Errors

module Make
    (F : Fs_intf.S) (Env : sig
      val label : string
      val make : unit -> F.t
    end) =
struct
  let check_ok what = function
    | Ok v -> v
    | Error e -> Alcotest.failf "%s: %s" what (E.to_string e)

  let pattern = Common.pattern

  let read_all fs path =
    let st = check_ok "stat" (F.stat fs path) in
    check_ok "read" (F.read fs path ~off:0 ~len:st.Fs_intf.size)

  let write_file fs path data =
    check_ok "create" (F.create fs path);
    check_ok "write" (F.write fs path ~off:0 data)

  let check_bytes what expected actual =
    if not (Bytes.equal expected actual) then
      Alcotest.failf "%s: content mismatch (%d vs %d bytes)" what
        (Bytes.length expected) (Bytes.length actual)

  let test_crud fs =
    write_file fs "/a" (pattern ~seed:1 3000);
    check_bytes "read back" (pattern ~seed:1 3000) (read_all fs "/a");
    F.sync fs;
    F.flush_caches fs;
    check_bytes "after flush" (pattern ~seed:1 3000) (read_all fs "/a");
    check_ok "delete" (F.delete fs "/a");
    Alcotest.(check bool) "gone" false (F.exists fs "/a")

  let test_tree fs =
    check_ok "mkdir" (F.mkdir fs "/d1");
    check_ok "mkdir" (F.mkdir fs "/d1/d2");
    write_file fs "/d1/d2/f" (pattern ~seed:2 500);
    Alcotest.(check (list string)) "ls" [ "d2" ] (check_ok "readdir" (F.readdir fs "/d1"));
    check_bytes "deep read" (pattern ~seed:2 500) (read_all fs "/d1/d2/f");
    (match F.delete fs "/d1" with
    | Error (E.Enotempty _) -> ()
    | _ -> Alcotest.fail "nonempty delete accepted")

  let test_many_files fs =
    for i = 0 to 99 do
      write_file fs (Printf.sprintf "/f%02d" i) (pattern ~seed:i 700)
    done;
    F.flush_caches fs;
    for i = 0 to 99 do
      check_bytes
        (Printf.sprintf "f%02d" i)
        (pattern ~seed:i 700)
        (read_all fs (Printf.sprintf "/f%02d" i))
    done;
    for i = 0 to 99 do
      if i mod 2 = 0 then
        check_ok "delete" (F.delete fs (Printf.sprintf "/f%02d" i))
    done;
    Alcotest.(check int) "count" 50
      (List.length (check_ok "readdir" (F.readdir fs "/")))

  let test_overwrite_and_extend fs =
    write_file fs "/f" (pattern ~seed:3 2000);
    check_ok "patch" (F.write fs "/f" ~off:500 (Bytes.of_string "XYZ"));
    check_ok "extend" (F.write fs "/f" ~off:3000 (Bytes.of_string "tail"));
    let data = read_all fs "/f" in
    Alcotest.(check int) "size" 3004 (Bytes.length data);
    Alcotest.(check string) "patch" "XYZ" (Bytes.to_string (Bytes.sub data 500 3));
    Alcotest.(check string) "tail" "tail" (Bytes.to_string (Bytes.sub data 3000 4));
    for i = 2000 to 2999 do
      if Bytes.get data i <> '\000' then Alcotest.failf "hole not zero at %d" i
    done

  let test_truncate fs =
    write_file fs "/t" (pattern ~seed:4 5000);
    check_ok "shrink" (F.truncate fs "/t" ~size:1234);
    check_bytes "prefix" (Bytes.sub (pattern ~seed:4 5000) 0 1234) (read_all fs "/t");
    F.flush_caches fs;
    check_bytes "prefix after flush"
      (Bytes.sub (pattern ~seed:4 5000) 0 1234)
      (read_all fs "/t")

  let test_rename fs =
    write_file fs "/old" (pattern ~seed:5 800);
    check_ok "mkdir" (F.mkdir fs "/d");
    check_ok "rename" (F.rename fs "/old" "/d/new");
    Alcotest.(check bool) "old gone" false (F.exists fs "/old");
    check_bytes "content moved" (pattern ~seed:5 800) (read_all fs "/d/new")

  let test_hard_links fs =
    write_file fs "/orig" (pattern ~seed:8 2048);
    check_ok "mkdir" (F.mkdir fs "/d");
    check_ok "link" (F.link fs "/orig" "/d/alias");
    check_bytes "alias reads same" (pattern ~seed:8 2048) (read_all fs "/d/alias");
    let st = check_ok "stat" (F.stat fs "/orig") in
    Alcotest.(check int) "nlink 2" 2 st.Fs_intf.nlink;
    (* Writes through one name are visible through the other. *)
    check_ok "write via alias" (F.write fs "/d/alias" ~off:0 (Bytes.of_string "XY"));
    let via_orig = check_ok "read" (F.read fs "/orig" ~off:0 ~len:2) in
    Alcotest.(check string) "shared data" "XY" (Bytes.to_string via_orig);
    (* Deleting one name keeps the data. *)
    check_ok "delete orig" (F.delete fs "/orig");
    Alcotest.(check bool) "orig gone" false (F.exists fs "/orig");
    let st = check_ok "stat alias" (F.stat fs "/d/alias") in
    Alcotest.(check int) "nlink back to 1" 1 st.Fs_intf.nlink;
    F.flush_caches fs;
    Alcotest.(check int) "content survives" 2048
      (Bytes.length (read_all fs "/d/alias"));
    (* Deleting the last name frees it. *)
    check_ok "delete alias" (F.delete fs "/d/alias");
    Alcotest.(check bool) "alias gone" false (F.exists fs "/d/alias");
    (* Errors: linking directories or onto existing names. *)
    (match F.link fs "/d" "/d2" with
    | Error (E.Eisdir _) -> ()
    | _ -> Alcotest.fail "linked a directory");
    write_file fs "/a" (pattern ~seed:9 10);
    write_file fs "/b" (pattern ~seed:10 10);
    match F.link fs "/a" "/b" with
    | Error (E.Eexist _) -> ()
    | _ -> Alcotest.fail "link onto existing name"

  let test_fsync fs =
    write_file fs "/f" (pattern ~seed:6 1500);
    check_ok "fsync" (F.fsync fs "/f");
    check_bytes "after fsync" (pattern ~seed:6 1500) (read_all fs "/f")

  let test_stat_fields fs =
    check_ok "mkdir" (F.mkdir fs "/d");
    write_file fs "/d/f" (pattern ~seed:7 1000);
    let st = check_ok "stat file" (F.stat fs "/d/f") in
    Alcotest.(check int) "size" 1000 st.Fs_intf.size;
    Alcotest.(check bool) "file kind" true (st.Fs_intf.kind = Fs_intf.Regular);
    let st = check_ok "stat dir" (F.stat fs "/d") in
    Alcotest.(check bool) "dir kind" true (st.Fs_intf.kind = Fs_intf.Directory)

  (* Every conformance test runs under the always-on sanitizer: after
     the test body, sync and require the system's structural self-check
     to come back clean, so a test that corrupts an invariant fails
     even when its own assertions pass. *)
  let sanitized f () =
    let fs = Env.make () in
    f fs;
    F.sync fs;
    match F.integrity fs with
    | [] -> ()
    | issues ->
        Alcotest.failf "%s: integrity issues after test:\n  %s" Env.label
          (String.concat "\n  " issues)

  let suite =
    List.map
      (fun (name, f) ->
        Alcotest.test_case
          (Printf.sprintf "%s: %s" Env.label name)
          `Quick (sanitized f))
      [
        ("crud", test_crud);
        ("tree", test_tree);
        ("many files", test_many_files);
        ("overwrite+extend", test_overwrite_and_extend);
        ("truncate", test_truncate);
        ("rename", test_rename);
        ("hard links", test_hard_links);
        ("fsync", test_fsync);
        ("stat", test_stat_fields);
      ]
end

module Lfs_env = struct
  let label = "lfs"
  let make () = Common.make_lfs ()
end

module Ffs_env = struct
  let label = "ffs"

  let make () =
    let io = Common.make_io () in
    (match Lfs_ffs.Fs.format io Lfs_ffs.Config.small with
    | Ok () -> ()
    | Error e -> failwith ("ffs format: " ^ e));
    match Lfs_ffs.Fs.mount ~config:Lfs_ffs.Config.small io with
    | Ok fs -> fs
    | Error e -> failwith ("ffs mount: " ^ e)
end

module Lfs_suite = Make (Lfs_core.Fs) (Lfs_env)
module Ffs_suite = Make (Lfs_ffs.Fs) (Ffs_env)

(* Property-based runs through the scenario DSL: a whole operation
   interleaving is derived from a single integer seed, generated and
   checked (lockstep model comparison, final tree check, post-flush
   re-read, integrity) by Lfs_scenario.  A failing seed is minimized by
   the builder's delta-debugging shrinker, and the report carries a
   one-line `lfstool scenario … --replay SEED` invocation instead of a
   bespoke seed-printing path. *)

module Scenario = Lfs_scenario.Scenario

let seed_arb = QCheck.(make ~print:string_of_int Gen.(int_bound 1_000_000))

let scenario_prop name sys =
  QCheck.Test.make ~name ~count:35 seed_arb (fun s ->
      let r = Scenario.(make |> system sys |> seed s |> run) in
      match r.Scenario.failure with
      | None -> true
      | Some f ->
          QCheck.Test.fail_reportf
            "%s\nminimal counterexample (%d of %d ops):\n  %s\nreplay: %s"
            f.Scenario.message f.Scenario.shrunk_steps f.Scenario.original_steps
            (String.concat "\n  " f.Scenario.steps)
            f.Scenario.replay)

let props =
  [
    scenario_prop "lfs: seeded random ops match model" `Lfs;
    scenario_prop "ffs: seeded random ops match model" `Ffs;
  ]

let suite =
  Lfs_suite.suite @ Ffs_suite.suite
  @ List.map (fun p -> QCheck_alcotest.to_alcotest p) props
