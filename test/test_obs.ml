(* The observability layer: metrics registry, trace bus, JSON codec. *)

module Bus = Lfs_obs.Bus
module Event = Lfs_obs.Event
module Json = Lfs_obs.Json
module Metrics = Lfs_obs.Metrics

let qcheck = QCheck_alcotest.to_alcotest

(* ---------------- metrics ---------------- *)

let test_counter_basics () =
  let m = Metrics.create () in
  let c = Metrics.counter m "t.ops" in
  Metrics.incr c;
  Metrics.add c 41;
  Alcotest.(check int) "value" 42 (Metrics.value c);
  (* Get-or-create: the same name is the same cell. *)
  let c' = Metrics.counter m "t.ops" in
  Metrics.incr c';
  Alcotest.(check int) "shared cell" 43 (Metrics.value c);
  Metrics.reset_counter c;
  Alcotest.(check int) "reset" 0 (Metrics.value c)

let test_kind_conflict () =
  let m = Metrics.create () in
  ignore (Metrics.counter m "t.x");
  try
    ignore (Metrics.histogram m "t.x");
    Alcotest.fail "registering t.x as a histogram did not raise"
  with Invalid_argument _ -> ()

let test_reset_prefix () =
  let m = Metrics.create () in
  let a = Metrics.counter m "lfs.a" in
  let b = Metrics.counter m "disk.b" in
  Metrics.add a 5;
  Metrics.add b 7;
  Metrics.reset_prefix m "lfs.";
  Alcotest.(check int) "prefixed reset" 0 (Metrics.value a);
  Alcotest.(check int) "others kept" 7 (Metrics.value b)

(* Histogram bucketing: bucket k holds [2^(k-1), 2^k); zero and negative
   values land in the zero bucket. *)
let test_histogram_buckets () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "t.h" in
  List.iter (Metrics.observe h) [ 0; -5; 1; 2; 3; 4; 1024; 1025; max_int ];
  let snap =
    match Metrics.find (Metrics.snapshot m) "t.h" with
    | Some (Metrics.Histogram hs) -> hs
    | _ -> Alcotest.fail "histogram snapshot missing"
  in
  Alcotest.(check int) "count" 9 snap.Metrics.count;
  Alcotest.(check int) "min" (-5) snap.Metrics.min_v;
  Alcotest.(check int) "max" max_int snap.Metrics.max_v;
  let bucket_count ub =
    match List.assoc_opt ub snap.Metrics.buckets with Some n -> n | None -> 0
  in
  Alcotest.(check int) "zero bucket" 2 (bucket_count 0);
  Alcotest.(check int) "bucket [1,1]" 1 (bucket_count 1);
  Alcotest.(check int) "bucket [2,3]" 2 (bucket_count 3);
  Alcotest.(check int) "bucket [4,7]" 1 (bucket_count 7);
  (* 1024 and 1025 both fall in [1024, 2047]. *)
  Alcotest.(check int) "bucket [1024,2047]" 2 (bucket_count 2047);
  (* Quantiles walk the cumulative counts. *)
  (match Metrics.quantile snap 0.5 with
  | Some q -> Alcotest.(check bool) "median plausible" true (q <= 7)
  | None -> Alcotest.fail "no median");
  match Metrics.quantile snap 1.0 with
  | Some q -> Alcotest.(check bool) "p100 in top bucket" true (q >= 1024)
  | None -> Alcotest.fail "no p100"

let prop_histogram_bucket_bounds =
  QCheck.Test.make ~name:"histogram buckets bound their samples" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (int_bound 1_000_000))
    (fun samples ->
      let m = Metrics.create () in
      let h = Metrics.histogram m "t.h" in
      List.iter (Metrics.observe h) samples;
      match Metrics.find (Metrics.snapshot m) "t.h" with
      | Some (Metrics.Histogram hs) ->
          hs.Metrics.count = List.length samples
          && hs.Metrics.sum = List.fold_left ( + ) 0 samples
          && List.for_all
               (fun (ub, n) ->
                 n > 0 && List.exists (fun s -> s <= ub) samples)
               hs.Metrics.buckets
      | _ -> false)

(* Interpolation inside the crossing bucket keeps quantization error
   small even though buckets are powers of two.  For uniform 1..1000 the
   exact p50 is 500; the bucket walk alone would answer 511 (the bucket
   upper bound), an off-by-2% artifact that interpolation removes. *)
let test_quantile_interpolation () =
  let h = Metrics.standalone_histogram () in
  for v = 1 to 1000 do
    Metrics.observe h v
  done;
  let snap = Metrics.snapshot_histogram h in
  let q p =
    match Metrics.quantile snap p with
    | Some v -> v
    | None -> Alcotest.failf "no quantile for %g" p
  in
  let p50 = q 0.5 in
  Alcotest.(check bool)
    (Printf.sprintf "p50 %d within 2%% of 500" p50)
    true
    (abs (p50 - 500) <= 10);
  let p99 = q 0.99 in
  (* The top bucket estimate clamps to the observed max. *)
  Alcotest.(check bool)
    (Printf.sprintf "p99 %d within 5%% of 990" p99)
    true
    (abs (p99 - 990) <= 50);
  Alcotest.(check bool) "quantiles monotone" true (p50 <= p99)

let test_diff_and_gauge () =
  let m = Metrics.create () in
  let c = Metrics.counter m "t.c" in
  let g = ref 1.0 in
  Metrics.gauge m "t.g" (fun () -> !g);
  Metrics.add c 10;
  let before = Metrics.snapshot m in
  Metrics.add c 32;
  g := 9.0;
  let after = Metrics.snapshot m in
  let d = Metrics.diff ~before ~after in
  Alcotest.(check (option int)) "counter delta" (Some 32)
    (Metrics.counter_value d "t.c");
  match Metrics.find d "t.g" with
  | Some (Metrics.Gauge v) -> Alcotest.(check (float 0.0)) "gauge is after" 9.0 v
  | _ -> Alcotest.fail "gauge missing from diff"

(* ---------------- bus ---------------- *)

let make_bus () =
  let now = ref 0 in
  (Bus.create ~now:(fun () -> !now) (), now)

let note name = Event.Note { name; fields = [] }

let test_bus_quiet_and_sink () =
  let bus, now = make_bus () in
  Alcotest.(check bool) "quiet" false (Bus.enabled bus);
  Bus.emit bus (note "lost");
  let sink = Bus.attach bus in
  Alcotest.(check bool) "enabled" true (Bus.enabled bus);
  now := 5;
  Bus.emit bus (note "kept");
  (match Bus.records sink with
  | [ { Event.at_us = 5; event = Event.Note { name = "kept"; _ } } ] -> ()
  | rs -> Alcotest.failf "unexpected records (%d)" (List.length rs));
  Bus.detach bus sink;
  Alcotest.(check bool) "quiet again" false (Bus.enabled bus)

let test_ring_sink () =
  let bus, _ = make_bus () in
  let sink = Bus.attach ~capacity:3 bus in
  for i = 1 to 10 do
    Bus.emit bus (note (string_of_int i))
  done;
  let names =
    List.map
      (function
        | { Event.event = Event.Note { name; _ }; _ } -> name | _ -> "?")
      (Bus.records sink)
  in
  Alcotest.(check (list string)) "newest three" [ "8"; "9"; "10" ] names;
  Alcotest.(check int) "dropped" 7 (Bus.dropped sink)

let test_sink_filter () =
  let bus, _ = make_bus () in
  let sink =
    Bus.attach ~filter:(function Event.Checkpoint _ -> true | _ -> false) bus
  in
  Bus.emit bus (note "no");
  Bus.emit bus (Event.Checkpoint { seq = 3; region = 0 });
  Alcotest.(check int) "only the checkpoint" 1 (List.length (Bus.records sink))

let test_subscriber () =
  let bus, _ = make_bus () in
  let seen = ref 0 in
  let sub = Bus.subscribe bus (fun _ -> incr seen) in
  Bus.emit bus (note "x");
  Bus.emit bus (note "y");
  Bus.unsubscribe bus sub;
  Bus.emit bus (note "z");
  Alcotest.(check int) "callback ran while subscribed" 2 !seen

let test_span_nesting () =
  let bus, now = make_bus () in
  let sink = Bus.attach bus in
  Bus.span_begin bus "outer";
  Alcotest.(check int) "depth 1" 1 (Bus.span_depth bus);
  now := 10;
  Bus.with_span bus "inner" (fun () ->
      Alcotest.(check int) "depth 2" 2 (Bus.span_depth bus);
      now := 25);
  Bus.span_end bus "outer";
  Alcotest.(check int) "depth 0" 0 (Bus.span_depth bus);
  let spans =
    List.filter_map
      (function
        | { Event.event = Event.Span_end { name; depth; elapsed_us }; _ } ->
            Some (name, depth, elapsed_us)
        | _ -> None)
      (Bus.records sink)
  in
  Alcotest.(check (list (triple string int int)))
    "span ends"
    [ ("inner", 1, 15); ("outer", 0, 25) ]
    spans

let test_span_mismatch () =
  let bus, _ = make_bus () in
  Bus.span_begin bus "a";
  (try
     Bus.span_end bus "b";
     Alcotest.fail "mismatched span_end did not raise"
   with Invalid_argument _ -> ());
  (* The stack is intact: closing the real innermost still works. *)
  Bus.span_end bus "a";
  Alcotest.(check int) "depth 0" 0 (Bus.span_depth bus)

(* An exception inside [with_span] unwinds every span opened since the
   wrapper's own begin — including bare [span_begin]s the body leaked —
   emitting their [Span_end]s innermost-first, then re-raises the
   original exception with the stack back at its pre-call depth. *)
let test_span_unwind () =
  let bus, now = make_bus () in
  let sink = Bus.attach bus in
  (match
     Bus.with_span bus "outer" (fun () ->
         Bus.span_begin bus "leak_a";
         Bus.span_begin bus "leak_b";
         now := 7;
         raise Exit)
   with
  | () -> Alcotest.fail "exception swallowed"
  | exception Exit -> ()
  | exception e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e));
  Alcotest.(check int) "depth restored" 0 (Bus.span_depth bus);
  let ends =
    List.filter_map
      (function
        | { Event.event = Event.Span_end { name; _ }; _ } -> Some name
        | _ -> None)
      (Bus.records sink)
  in
  Alcotest.(check (list string))
    "unwound innermost-first"
    [ "leak_b"; "leak_a"; "outer" ]
    ends

(* Span bookkeeping survives quiet periods: attach mid-run and depths are
   still right. *)
let test_span_quiet_bookkeeping () =
  let bus, _ = make_bus () in
  Bus.span_begin bus "quiet";
  let sink = Bus.attach bus in
  Bus.with_span bus "seen" (fun () -> ());
  (match
     List.filter_map
       (function
         | { Event.event = Event.Span_begin { name; depth }; _ } ->
             Some (name, depth)
         | _ -> None)
       (Bus.records sink)
   with
  | [ ("seen", 1) ] -> ()
  | _ -> Alcotest.fail "expected span 'seen' at depth 1");
  Bus.span_end bus "quiet"

(* ---------------- JSON / JSONL ---------------- *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("s", Json.String "a \"quoted\" \\ line\nwith control \x01 bytes");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.List []; Json.Obj [] ]);
      ]
  in
  let reparsed = Json.of_string (Json.to_string doc) in
  Alcotest.(check bool) "compact roundtrip" true (reparsed = doc);
  let reparsed = Json.of_string (Json.to_string_pretty doc) in
  Alcotest.(check bool) "pretty roundtrip" true (reparsed = doc)

let sample_events =
  [
    Event.Disk_request
      {
        kind = Event.Write;
        sync = false;
        sector = 2048;
        sectors = 56;
        service_us = 44_797;
        sequential = true;
      };
    Event.Cache_miss { owner = -3; blkno = 17 };
    Event.Segment_write { seg = 5; seq = 22; blocks = 6; partial = true };
    Event.Cleaner_pass
      { victims = 2; freed = 2; bytes_read = 36_864; bytes_moved = 20_992 };
    Event.Checkpoint { seq = 24; region = 1 };
    Event.Rollforward { seg = 3; seq = 9; entries = 12 };
    Event.Ffs_sync_write { what = "inode"; sector = 96; sectors = 8 };
    Event.Note { name = "note"; fields = [ ("k", Json.String "v") ] };
  ]

(* Every event serializes to one parseable JSONL line carrying its tag
   and timestamp. *)
let test_jsonl_roundtrip () =
  let records =
    List.mapi (fun i event -> { Event.at_us = i * 100; event }) sample_events
  in
  let lines =
    String.split_on_char '\n' (String.trim (Event.to_jsonl records))
  in
  Alcotest.(check int) "one line per record" (List.length records)
    (List.length lines);
  List.iter2
    (fun line record ->
      let j = Json.of_string line in
      (match Json.member "at_us" j with
      | Some (Json.Int t) ->
          Alcotest.(check int) "timestamp" record.Event.at_us t
      | _ -> Alcotest.fail "missing at_us");
      match Json.member "event" j with
      | Some (Json.String tag) ->
          Alcotest.(check string) "tag" (Event.name record.Event.event) tag
      | _ -> Alcotest.fail "missing event tag")
    lines records

(* A ring sink that dropped events announces the truncation as a final
   machine-readable trailer line; a complete trace stays trailer-free. *)
let test_jsonl_dropped_trailer () =
  let records =
    List.mapi (fun i event -> { Event.at_us = i; event }) sample_events
  in
  let lines =
    String.split_on_char '\n' (String.trim (Event.to_jsonl ~dropped:3 records))
  in
  Alcotest.(check int) "records + trailer"
    (List.length records + 1)
    (List.length lines);
  let j = Json.of_string (List.nth lines (List.length lines - 1)) in
  (match Json.member "event" j with
  | Some (Json.String "trace_truncated") -> ()
  | _ -> Alcotest.fail "trailer tag");
  (match Json.member "dropped" j with
  | Some (Json.Int 3) -> ()
  | _ -> Alcotest.fail "dropped count");
  (match Json.member "kept" j with
  | Some (Json.Int n) when n = List.length records -> ()
  | _ -> Alcotest.fail "kept count");
  let plain =
    String.split_on_char '\n' (String.trim (Event.to_jsonl records))
  in
  Alcotest.(check int) "no trailer when complete" (List.length records)
    (List.length plain)

let test_csv_shape () =
  let records =
    List.mapi (fun i event -> { Event.at_us = i; event }) sample_events
  in
  let csv = Event.to_csv records in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + one row each"
    (1 + List.length records)
    (List.length lines);
  Alcotest.(check string) "header" Event.csv_header (List.hd lines)

let test_metrics_json () =
  let m = Metrics.create () in
  Metrics.add (Metrics.counter m "t.c") 3;
  Metrics.observe (Metrics.histogram m "t.h") 100;
  let j = Metrics.to_json (Metrics.snapshot m) in
  (match Json.member "t.c" j with
  | Some (Json.Int 3) -> ()
  | _ -> Alcotest.fail "counter in JSON");
  match Json.path [ "t.h"; "count" ] j with
  | Some (Json.Int 1) -> ()
  | _ -> Alcotest.fail "histogram in JSON"

let suite =
  [
    Alcotest.test_case "counter basics" `Quick test_counter_basics;
    Alcotest.test_case "kind conflict" `Quick test_kind_conflict;
    Alcotest.test_case "reset by prefix" `Quick test_reset_prefix;
    Alcotest.test_case "histogram bucketing" `Quick test_histogram_buckets;
    Alcotest.test_case "quantile interpolation" `Quick
      test_quantile_interpolation;
    qcheck prop_histogram_bucket_bounds;
    Alcotest.test_case "diff and gauges" `Quick test_diff_and_gauge;
    Alcotest.test_case "quiet bus and sink" `Quick test_bus_quiet_and_sink;
    Alcotest.test_case "ring sink" `Quick test_ring_sink;
    Alcotest.test_case "sink filter" `Quick test_sink_filter;
    Alcotest.test_case "subscriber" `Quick test_subscriber;
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "span mismatch" `Quick test_span_mismatch;
    Alcotest.test_case "span exception unwinding" `Quick test_span_unwind;
    Alcotest.test_case "span quiet bookkeeping" `Quick
      test_span_quiet_bookkeeping;
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "jsonl roundtrip" `Quick test_jsonl_roundtrip;
    Alcotest.test_case "jsonl dropped trailer" `Quick
      test_jsonl_dropped_trailer;
    Alcotest.test_case "csv shape" `Quick test_csv_shape;
    Alcotest.test_case "metrics to_json" `Quick test_metrics_json;
  ]
