(* The large-file benchmark of §5.2: sequential and random I/O on one big
   file, on both systems.  Shows LFS turning random writes into
   sequential log writes — and the one pattern where update-in-place
   wins (sequential re-read after random updates).

   Run with:  dune exec examples/large_file.exe [megabytes] *)

module W = Lfs_workload

let () =
  let file_mb =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 32
  in
  Printf.printf
    "Writing and reading a %d MB file with 8 KB requests on both file\n\
     systems (rates in KB/s of simulated time).\n\n" file_mb;
  let results =
    List.map (fun i -> W.Largefile.run ~file_mb i) (W.Setup.both ~disk_mb:(file_mb * 3) ())
  in
  print_string (W.Report.fig4 results);
  print_newline ();
  print_endline
    "Note the paper's two signature effects:";
  print_endline
    "- LFS random writes run at (or above) its sequential write rate:";
  print_endline
    "  they become sequential segment writes in the log.";
  print_endline
    "- After random updates, sequential re-read favours FFS: its blocks";
  print_endline
    "  are still laid out in file order, while LFS's follow write order."
