(** Sequential read-ahead stream detection.

    One instance sits beside each file system's block cache and watches
    the per-file read pattern.  When a file is read sequentially for
    [min_run] consecutive blocks, {!observe} starts returning prefetch
    plans: windows that double on every further sequential request, from
    [initial_window] up to [max_window] blocks, mirroring the behaviour
    of the BSD/Sprite file caches the paper measures against.

    The module only plans and accounts; the file system performs the
    actual disk reads (so it can skip holes and already-cached blocks and
    cluster the rest into contiguous multi-block requests) and reports
    back with {!mark_issued} and {!served}.

    Accounting lives in the shared {!Lfs_obs.Metrics} registry:
    - [io.readahead.issued] — blocks prefetched into the cache;
    - [io.readahead.hit] — prefetched blocks later served to a reader;
    - [io.readahead.wasted] — prefetched blocks never used (stream
      abandoned, file forgotten, or evicted before the reader arrived).

    Every issued block is eventually hit, wasted, or still pending, so
    [hit + wasted <= issued] always holds. *)

type t

val create :
  ?min_run:int -> ?initial_window:int -> max_window:int -> Lfs_obs.Metrics.t -> t
(** [create ~max_window metrics] — [max_window] is the prefetch ceiling
    in blocks; [0] disables read-ahead entirely (every call becomes a
    no-op).  [min_run] (default 4) is how many consecutive sequential
    blocks arm prefetching; [initial_window] (default 4) is the first
    window size. *)

val enabled : t -> bool
val max_window : t -> int

val observe : t -> owner:int -> first:int -> last:int -> (int * int) option
(** [observe t ~owner ~first ~last] records that blocks
    [first..last] of file [owner] were just read.  Returns
    [Some (start, count)] when the stream is sequential enough to
    prefetch blocks [start, start + count); [None] otherwise.  A
    non-sequential read abandons the stream: its pending blocks are
    counted wasted and the window resets. *)

val mark_issued : t -> owner:int -> blkno:int -> unit
(** The file system actually fetched [blkno] as read-ahead: counts it
    issued and tracks it as pending.  Blocks the planner proposed but the
    file system skipped (holes, already cached) are simply never
    marked. *)

val served : t -> owner:int -> blkno:int -> hit:bool -> unit
(** A reader asked for [blkno].  If it was pending, it is accounted:
    [hit:true] (served from cache) bumps [io.readahead.hit];
    [hit:false] (the prefetch was evicted before use) bumps
    [io.readahead.wasted]. *)

val is_pending : t -> owner:int -> blkno:int -> bool
val pending_count : t -> owner:int -> int

val forget : t -> owner:int -> unit
(** Drop the stream for [owner] (file deletion/truncation); its pending
    blocks count as wasted. *)

val reset : t -> unit
(** Abandon every stream (benchmark phase boundaries). *)

val issued : t -> int
val hit : t -> int
val wasted : t -> int
