module Lru = Lfs_util.Lru
module Clock = Lfs_disk.Clock
module Bus = Lfs_obs.Bus
module Event = Lfs_obs.Event
module Metrics = Lfs_obs.Metrics

type key = { owner : int; blkno : int }

type entry = {
  data : bytes;
  mutable is_dirty : bool;
  mutable dirty_since_us : int;
}

type t = {
  clock : Clock.t;
  bus : Bus.t option;
  entries : (key, entry) Lru.t;
  capacity : int;
  mutable ndirty : int;
  c_hits : Metrics.counter;
  c_misses : Metrics.counter;
  c_evictions : Metrics.counter;
  c_writebacks : Metrics.counter;
}

let create ?(capacity_blocks = 4096) ?metrics ?bus clock =
  if capacity_blocks <= 0 then invalid_arg "Block_cache.create: capacity";
  let metrics =
    match metrics with Some m -> m | None -> Metrics.create ()
  in
  let t =
    {
      clock;
      bus;
      entries = Lru.create ();
      capacity = capacity_blocks;
      ndirty = 0;
      c_hits = Metrics.counter metrics "cache.hits";
      c_misses = Metrics.counter metrics "cache.misses";
      c_evictions = Metrics.counter metrics "cache.evictions";
      c_writebacks = Metrics.counter metrics "cache.writebacks";
    }
  in
  Metrics.gauge metrics "cache.blocks" (fun () ->
      float_of_int (Lru.length t.entries));
  Metrics.gauge metrics "cache.dirty_blocks" (fun () -> float_of_int t.ndirty);
  t

(* Allocate the event only when someone is listening. *)
let emit t mk =
  match t.bus with
  | Some bus when Bus.enabled bus -> Bus.emit bus (mk ())
  | Some _ | None -> ()

let capacity_blocks t = t.capacity
let length t = Lru.length t.entries
let dirty_count t = t.ndirty

let find t key =
  match Lru.find t.entries key with
  | Some e ->
      Metrics.incr t.c_hits;
      emit t (fun () ->
          Event.Cache_hit { owner = key.owner; blkno = key.blkno });
      Some e.data
  | None ->
      Metrics.incr t.c_misses;
      emit t (fun () ->
          Event.Cache_miss { owner = key.owner; blkno = key.blkno });
      None

let mem t key = Lru.mem t.entries key

let dirty t key =
  match Lru.peek t.entries key with Some e -> e.is_dirty | None -> false

(* Reclaim clean entries from the LRU side while over capacity.  Dirty
   entries are skipped: they are the write buffer and only write-back may
   release them.  [keep] protects the entry {!insert} just added — without
   it, a cache whose other entries are all dirty would evict the newcomer
   itself.  Sweeping from the cold end stops as soon as the excess is
   reclaimed, so the common insert pays O(1) instead of materializing the
   whole LRU list. *)
let evict_clean_keeping keep t =
  if Lru.length t.entries > t.capacity then begin
    let excess = ref (Lru.length t.entries - t.capacity) in
    Lru.sweep_lru
      (fun k e ->
        if !excess <= 0 then Lru.Stop
        else if e.is_dirty || keep = Some k then Lru.Keep
        else begin
          decr excess;
          Metrics.incr t.c_evictions;
          emit t (fun () ->
              Event.Cache_evict { owner = k.owner; blkno = k.blkno });
          Lru.Remove
        end)
      t.entries
  end

let evict_clean t = evict_clean_keeping None t

let insert t key ~dirty data =
  (match Lru.peek t.entries key with
  | Some old -> if old.is_dirty then t.ndirty <- t.ndirty - 1
  | None -> ());
  let e = { data; is_dirty = dirty; dirty_since_us = Clock.now_us t.clock } in
  if dirty then t.ndirty <- t.ndirty + 1;
  ignore (Lru.add t.entries key e);
  evict_clean_keeping (Some key) t

let mark_dirty t key =
  match Lru.peek t.entries key with
  | None -> raise Not_found
  | Some e ->
      if not e.is_dirty then begin
        e.is_dirty <- true;
        e.dirty_since_us <- Clock.now_us t.clock;
        t.ndirty <- t.ndirty + 1
      end

let mark_clean t key =
  match Lru.peek t.entries key with
  | None -> ()
  | Some e ->
      if e.is_dirty then begin
        e.is_dirty <- false;
        t.ndirty <- t.ndirty - 1;
        Metrics.incr t.c_writebacks;
        emit t (fun () ->
            Event.Cache_writeback { owner = key.owner; blkno = key.blkno })
      end

let remove t key =
  match Lru.remove t.entries key with
  | None -> ()
  | Some e -> if e.is_dirty then t.ndirty <- t.ndirty - 1

let fold_dirty f t init =
  Lru.fold_lru
    (fun k e acc -> if e.is_dirty then f k e.data acc else acc)
    t.entries init

let dirty_keys t = List.rev (fold_dirty (fun k _ acc -> k :: acc) t [])

let oldest_dirty_age_us t =
  let now = Clock.now_us t.clock in
  Lru.fold
    (fun _ e acc ->
      if e.is_dirty then
        let age = now - e.dirty_since_us in
        match acc with Some a when a >= age -> acc | _ -> Some age
      else acc)
    t.entries None

let over_capacity t = t.ndirty > t.capacity

let drop_clean t =
  Lru.sweep_lru
    (fun _ e -> if e.is_dirty then Lru.Keep else Lru.Remove)
    t.entries

let clear t =
  Lru.clear t.entries;
  t.ndirty <- 0

let stats_hits t = Metrics.value t.c_hits
let stats_misses t = Metrics.value t.c_misses
let stats_evictions t = Metrics.value t.c_evictions
let stats_writebacks t = Metrics.value t.c_writebacks

let reset_stats t =
  Metrics.reset_counter t.c_hits;
  Metrics.reset_counter t.c_misses;
  Metrics.reset_counter t.c_evictions;
  Metrics.reset_counter t.c_writebacks
