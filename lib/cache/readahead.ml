module Metrics = Lfs_obs.Metrics

type stream = {
  mutable next_blkno : int;
  mutable run : int;
  mutable window : int;
  mutable ra_next : int;  (* first block not yet covered by a planned window *)
  pending : (int, unit) Hashtbl.t;
}

type t = {
  min_run : int;
  initial_window : int;
  max_window : int;
  streams : (int, stream) Hashtbl.t;
  c_issued : Metrics.counter;
  c_hit : Metrics.counter;
  c_wasted : Metrics.counter;
}

let create ?(min_run = 4) ?(initial_window = 4) ~max_window metrics =
  if max_window < 0 then invalid_arg "Readahead.create: negative max_window";
  if min_run <= 0 || initial_window <= 0 then
    invalid_arg "Readahead.create: min_run and initial_window must be positive";
  {
    min_run;
    initial_window;
    max_window;
    streams = Hashtbl.create 16;
    c_issued = Metrics.counter metrics "io.readahead.issued";
    c_hit = Metrics.counter metrics "io.readahead.hit";
    c_wasted = Metrics.counter metrics "io.readahead.wasted";
  }

let enabled t = t.max_window > 0
let max_window t = t.max_window

(* Prefetched blocks the consumer never asked for count as wasted the
   moment the stream is abandoned; this keeps
   issued = hit + wasted + pending an invariant. *)
let abandon t stream =
  Metrics.add t.c_wasted (Hashtbl.length stream.pending);
  Hashtbl.reset stream.pending;
  stream.run <- 0;
  stream.window <- t.initial_window;
  stream.ra_next <- 0

let observe t ~owner ~first ~last =
  if not (enabled t) then None
  else begin
    let nblocks = last - first + 1 in
    let stream =
      match Hashtbl.find_opt t.streams owner with
      | Some s -> s
      | None ->
          let s =
            {
              next_blkno = -1;
              run = 0;
              window = t.initial_window;
              ra_next = 0;
              pending = Hashtbl.create 8;
            }
          in
          Hashtbl.replace t.streams owner s;
          s
    in
    if first = stream.next_blkno then stream.run <- stream.run + nblocks
    else begin
      abandon t stream;
      stream.run <- nblocks
    end;
    stream.next_blkno <- last + 1;
    if stream.run >= t.min_run then begin
      (* Plan the next window ahead of what previous windows already
         cover, and only once the reader has consumed into the second
         half of the frontier — so steady state issues one full window
         per half-window consumed, not a dribble of tiny top-ups. *)
      let next_needed = last + 1 in
      let frontier = max stream.ra_next next_needed in
      if frontier - next_needed <= stream.window / 2 then begin
        let count = min stream.window t.max_window in
        stream.ra_next <- frontier + count;
        stream.window <- min (stream.window * 2) t.max_window;
        Some (frontier, count)
      end
      else None
    end
    else None
  end

let mark_issued t ~owner ~blkno =
  match Hashtbl.find_opt t.streams owner with
  | None -> ()
  | Some stream ->
      if not (Hashtbl.mem stream.pending blkno) then begin
        Hashtbl.replace stream.pending blkno ();
        Metrics.incr t.c_issued
      end

let served t ~owner ~blkno ~hit =
  if enabled t then
    match Hashtbl.find_opt t.streams owner with
    | None -> ()
    | Some stream ->
        if Hashtbl.mem stream.pending blkno then begin
          Hashtbl.remove stream.pending blkno;
          (* A miss on a pending block means the prefetch was evicted
             before the reader arrived: the transfer was wasted. *)
          Metrics.incr (if hit then t.c_hit else t.c_wasted)
        end

let is_pending t ~owner ~blkno =
  match Hashtbl.find_opt t.streams owner with
  | None -> false
  | Some stream -> Hashtbl.mem stream.pending blkno

let pending_count t ~owner =
  match Hashtbl.find_opt t.streams owner with
  | None -> 0
  | Some stream -> Hashtbl.length stream.pending

let forget t ~owner =
  match Hashtbl.find_opt t.streams owner with
  | None -> ()
  | Some stream ->
      abandon t stream;
      Hashtbl.remove t.streams owner

let reset t =
  Hashtbl.iter (fun _ stream -> abandon t stream) t.streams;
  Hashtbl.reset t.streams

let issued t = Metrics.value t.c_issued
let hit t = Metrics.value t.c_hit
let wasted t = Metrics.value t.c_wasted
