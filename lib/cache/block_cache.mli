(** The file cache.

    Both file systems keep their blocks here.  For LFS the cache is the
    heart of the design: it is the write buffer that absorbs bursts of
    small writes and turns them into segment-sized transfers (§4.1), and
    its dirty-block population drives the three segment-write triggers of
    §4.3.5 (cache full, age threshold, sync).

    Blocks are keyed by [(owner, blkno)] where [owner] is a file's inode
    number or a file-system-reserved pseudo-file (LFS uses negative owners
    for the inode map and segment usage array).  Entries hold the block
    bytes directly; callers mutate them in place and then call
    {!mark_dirty}.

    Dirty entries are never evicted — the file system must write them back
    (and {!mark_clean} them) first.  [insert] therefore only reclaims clean
    entries; when the cache overflows with dirty data, {!over_capacity}
    turns true and the file system is expected to flush. *)

type t

type key = { owner : int; blkno : int }

val create :
  ?capacity_blocks:int ->
  ?metrics:Lfs_obs.Metrics.t ->
  ?bus:Lfs_obs.Bus.t ->
  Lfs_disk.Clock.t ->
  t
(** [create ~capacity_blocks clock] — default capacity: 4096 blocks
    (16 MB of 4 KB blocks, matching the ~15 MB cache in the paper's
    tests).

    [metrics] registers the [cache.*] counters and gauges there (a
    private registry otherwise); [bus] publishes
    [Cache_{hit,miss,evict,writeback}] trace events (silent
    otherwise). *)

val capacity_blocks : t -> int
val length : t -> int
val dirty_count : t -> int

val find : t -> key -> bytes option
(** Lookup, promoting the entry to most recently used.  The returned bytes
    are the cache's own buffer: mutate then {!mark_dirty}, and do not hold
    the reference across an eviction point. *)

val mem : t -> key -> bool
val dirty : t -> key -> bool

val insert : t -> key -> dirty:bool -> bytes -> unit
(** Insert or replace a block, then reclaim clean LRU entries while over
    capacity.  The just-inserted block is never chosen as a victim, even
    when every other entry is dirty. *)

val mark_dirty : t -> key -> unit
(** @raise Not_found if the key is absent. *)

val mark_clean : t -> key -> unit
(** Called by write-back once the block is on disk (or queued to a
    segment).  No-op if absent. *)

val remove : t -> key -> unit
(** Drop an entry regardless of dirtiness (file deletion/truncation). *)

val fold_dirty : (key -> bytes -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over dirty entries in least-recently-used-first order, so
    write-back naturally drains the oldest data. *)

val dirty_keys : t -> key list
(** Dirty keys, least recently used first. *)

val oldest_dirty_age_us : t -> int option
(** Age of the longest-dirty entry, for the 30-second write-back
    trigger. *)

val over_capacity : t -> bool
(** True when dirty blocks alone keep the cache above capacity. *)

val evict_clean : t -> unit
(** Reclaim clean LRU entries while over capacity (also runs inside
    {!insert}). *)

val drop_clean : t -> unit
(** Drop every clean entry — the paper's "file cache was flushed" between
    benchmark phases, without touching unwritten data. *)

val clear : t -> unit

val stats_hits : t -> int
val stats_misses : t -> int
(** [find] hit/miss counters (a miss is a [find] returning [None]). *)

val stats_evictions : t -> int
(** Clean entries reclaimed by capacity pressure ({!evict_clean}) —
    deliberate flushes ({!drop_clean}, {!remove}, {!clear}) don't
    count. *)

val stats_writebacks : t -> int
(** Dirty entries released by {!mark_clean} (the block reached disk or a
    segment buffer). *)

val reset_stats : t -> unit
(** Zero hit/miss/eviction/write-back counters, mirroring
    [Disk.reset_stats]. *)
