module Metrics = Lfs_obs.Metrics

exception Crash
exception Read_fault of { sector : int; transient : bool }

type fault_hook = {
  on_read : sector:int -> count:int -> unit;
  on_write : sector:int -> count:int -> int option;
}

type stats = {
  mutable reads : int;
  mutable writes : int;
  mutable sectors_read : int;
  mutable sectors_written : int;
  mutable seeks : int;
  mutable busy_us : int;
}

(* A member disk of a shared registry updates two counters per fact: the
   aggregate [disk.*] cell (shared by every member, so name-based
   consumers — crash harnesses, bench reports — keep working on volumes)
   and its own [disk.<i>.*] cell (the per-spindle view the scale-out
   figure asserts on).  A standalone disk has a private registry, where
   the aggregate cell IS the per-disk view and [own] stays [None]. *)
type cell = { agg : Metrics.counter; own : Metrics.counter option }

let cell_incr c =
  Metrics.incr c.agg;
  Option.iter Metrics.incr c.own

let cell_add c n =
  Metrics.add c.agg n;
  Option.iter (fun o -> Metrics.add o n) c.own

let cell_value c =
  match c.own with Some o -> Metrics.value o | None -> Metrics.value c.agg

type t = {
  geometry : Geometry.t;
  store : Bytes.t;
  metrics : Metrics.t;
  c_reads : cell;
  c_writes : cell;
  c_sectors_read : cell;
  c_sectors_written : cell;
  c_seeks : cell;
  c_busy_us : cell;
  c_positioning_us : cell;
  mutable head_cyl : int;
  mutable next_sector : int;  (* sector following the last transfer *)
  mutable last_end_us : int;  (* simulated time the last transfer finished *)
  mutable last_streamed : bool;  (* last request continued the previous one *)
  mutable crash_countdown : int option;
  mutable crashed : bool;
  mutable fault_hook : fault_hook option;
}

let create ?metrics ?member geometry =
  let metrics =
    match metrics with Some m -> m | None -> Metrics.create ()
  in
  let ( own_reads,
        own_writes,
        own_sectors_read,
        own_sectors_written,
        own_seeks,
        own_busy_us,
        own_positioning_us ) =
    match member with
    | None -> (None, None, None, None, None, None, None)
    | Some i ->
        if i < 0 then invalid_arg "Disk.create: negative member index";
        ( Some (Metrics.member_counter metrics ~member:i "reads"),
          Some (Metrics.member_counter metrics ~member:i "writes"),
          Some (Metrics.member_counter metrics ~member:i "sectors_read"),
          Some (Metrics.member_counter metrics ~member:i "sectors_written"),
          Some (Metrics.member_counter metrics ~member:i "seeks"),
          Some (Metrics.member_counter metrics ~member:i "busy_us"),
          Some (Metrics.member_counter metrics ~member:i "positioning_us") )
  in
  {
    geometry;
    store = Bytes.make (Geometry.size_bytes geometry) '\000';
    metrics;
    c_reads = { agg = Metrics.counter metrics "disk.reads"; own = own_reads };
    c_writes = { agg = Metrics.counter metrics "disk.writes"; own = own_writes };
    c_sectors_read =
      {
        agg = Metrics.counter metrics "disk.sectors_read";
        own = own_sectors_read;
      };
    c_sectors_written =
      {
        agg = Metrics.counter metrics "disk.sectors_written";
        own = own_sectors_written;
      };
    c_seeks = { agg = Metrics.counter metrics "disk.seeks"; own = own_seeks };
    c_busy_us =
      { agg = Metrics.counter metrics "disk.busy_us"; own = own_busy_us };
    c_positioning_us =
      {
        agg = Metrics.counter metrics "disk.positioning_us";
        own = own_positioning_us;
      };
    head_cyl = 0;
    next_sector = 0;
    last_end_us = 0;
    last_streamed = false;
    crash_countdown = None;
    crashed = false;
    fault_hook = None;
  }

let set_fault_hook t hook = t.fault_hook <- hook

let geometry t = t.geometry
let metrics t = t.metrics

(* Compatibility view: the record is rebuilt from the registry counters
   on every call.  Readers see the same numbers as before the registry
   existed; writes to the returned record go nowhere. *)
let stats t =
  {
    reads = cell_value t.c_reads;
    writes = cell_value t.c_writes;
    sectors_read = cell_value t.c_sectors_read;
    sectors_written = cell_value t.c_sectors_written;
    seeks = cell_value t.c_seeks;
    busy_us = cell_value t.c_busy_us;
  }

let seek_count t = cell_value t.c_seeks
let busy_us t = cell_value t.c_busy_us
let positioning_us t = cell_value t.c_positioning_us
let last_was_streamed t = t.last_streamed
let head_sector t = t.next_sector

let reset_stats t = Metrics.reset_prefix t.metrics "disk."

let check_range t sector count =
  if sector < 0 || count <= 0 || sector + count > t.geometry.Geometry.sectors then
    invalid_arg
      (Printf.sprintf "Disk: request [%d, +%d) out of range (%d sectors)"
         sector count t.geometry.Geometry.sectors)

(* Service time for a request starting at [sector] spanning [count]
   sectors, updating head state.  A request that continues exactly where
   the previous transfer ended streams with no positioning delay — but
   only if it is issued back to back.  When [start_us] shows the device
   sat idle after the previous transfer, the platter has kept spinning:
   the head must wait out the rest of the current rotation to see that
   sector again.  This missed-rotation cost is what clustering and
   read-ahead amortize: per-block sequential reads with think time
   between them pay it on every request, a multi-block transfer once.
   Callers that do not supply [start_us] get the old back-to-back
   behaviour. *)
let service ?start_us t ~sector ~count =
  let g = t.geometry in
  let cyl = Geometry.cylinder_of_sector g sector in
  t.last_streamed <- sector = t.next_sector;
  let positioning =
    if t.last_streamed then
      match start_us with
      | None -> 0
      | Some start ->
          let idle_us = max 0 (start - t.last_end_us) in
          if idle_us = 0 then 0
          else
            let rot = Geometry.rotation_us g in
            let lag = idle_us mod rot in
            if lag = 0 then 0 else rot - lag
    else begin
      let seek = Geometry.seek_us g ~from_cyl:t.head_cyl ~to_cyl:cyl in
      if seek > 0 then cell_incr t.c_seeks;
      seek + Geometry.avg_rotational_latency_us g
    end
  in
  cell_add t.c_positioning_us positioning;
  let total = positioning + Geometry.transfer_us g ~sectors:count in
  t.head_cyl <- Geometry.cylinder_of_sector g (sector + count - 1);
  t.next_sector <- sector + count;
  t.last_end_us <-
    (match start_us with Some s -> s | None -> t.last_end_us) + total;
  total

let read ?start_us t ~sector ~count =
  check_range t sector count;
  (match t.fault_hook with
  | Some h -> h.on_read ~sector ~count
  | None -> ());
  let us = service ?start_us t ~sector ~count in
  cell_incr t.c_reads;
  cell_add t.c_sectors_read count;
  cell_add t.c_busy_us us;
  let ss = t.geometry.Geometry.sector_size in
  (Bytes.sub t.store (sector * ss) (count * ss), us)

let write ?start_us t ~sector data =
  if t.crashed then raise Crash;
  let ss = t.geometry.Geometry.sector_size in
  if Bytes.length data = 0 || Bytes.length data mod ss <> 0 then
    invalid_arg "Disk.write: data must be a positive multiple of sector size";
  let count = Bytes.length data / ss in
  check_range t sector count;
  (match t.fault_hook with
  | Some h -> (
      match h.on_write ~sector ~count with
      | Some persisted ->
          (* Scenario-driven torn write: a prefix of the request reaches
             the platter, then power is cut. *)
          let p = max 0 (min persisted count) in
          Bytes.blit data 0 t.store (sector * ss) (p * ss);
          t.crashed <- true;
          raise Crash
      | None -> ())
  | None -> ());
  let persisted =
    match t.crash_countdown with
    | None -> count
    | Some remaining ->
        let p = min remaining count in
        t.crash_countdown <- Some (remaining - p);
        if remaining <= count then t.crashed <- true;
        p
  in
  Bytes.blit data 0 t.store (sector * ss) (persisted * ss);
  if t.crashed then raise Crash;
  let us = service ?start_us t ~sector ~count in
  cell_incr t.c_writes;
  cell_add t.c_sectors_written count;
  cell_add t.c_busy_us us;
  us

let set_crash_after t ~sectors =
  if sectors < 0 then invalid_arg "Disk.set_crash_after";
  t.crash_countdown <- Some sectors

let clear_crash t =
  t.crash_countdown <- None;
  t.crashed <- false

let crashed t = t.crashed

let snapshot t = Bytes.copy t.store

let restore t media =
  if Bytes.length media <> Bytes.length t.store then
    invalid_arg "Disk.restore: snapshot size mismatch";
  Bytes.blit media 0 t.store 0 (Bytes.length media);
  t.head_cyl <- 0;
  t.next_sector <- 0;
  t.last_end_us <- 0;
  t.last_streamed <- false
