(** The I/O scheduler: joins a {!Disk}, a {!Clock} and a {!Cpu_model} and
    decides who pays for each request.

    - [sync_read]/[sync_write] make the caller wait: the clock advances
      past any queued device work, then by the request's service time.
      These model the synchronous metadata writes that cripple FFS.
    - [async_write] queues work on the device: the device busy horizon
      advances but the caller does not wait — unless the backlog exceeds
      [max_backlog_us], in which case the caller is throttled (the file
      cache is full and the application must wait for the disk).  This is
      how LFS's segment writes overlap with computation, and why its
      sustained bandwidth is still bounded by the disk.
    - [drain] waits for the device to go idle ([sync]/[fsync], and phase
      boundaries in benchmarks).

    By default requests are serviced immediately in issue order (the
    single-caller model).  {!set_scheduler} installs a real per-device
    request queue with a {!Sched.discipline}: asynchronous writes pool
    in the queue and are dispatched in discipline order — head position
    and queue depth then determine positioning cost, so reordering
    (SCAN/C-SCAN) is a measurable optimisation.  Synchronous requests
    join the same queue and wait for their turn, which models the convoy
    a synchronous caller suffers behind a deep queue.  Overlapping
    requests never reorder (see {!Sched}), so data semantics are
    unchanged.

    Every request is published on the instance's {!Lfs_obs.Bus} as a
    [Disk_request] event and observed in the [io.*] registry histograms;
    the legacy request log ({!set_recording}/{!requests}) is a thin view
    over a bus sink.  The Figure 1/2 experiment audits it to show FFS's
    eight small random writes versus LFS's single large sequential
    one.

    {b Multi-disk volumes.}  The device behind the scheduler may be a
    {!Volume} ({!of_volume}): N member disks, each with its own busy
    horizon and — when a scheduler is installed — its own request queue,
    all sharing the clock.  Requests are split by the volume's address
    map into at most one contiguous run per member, the runs issued
    together, and a synchronous caller resumes when the slowest member
    finishes: an N-member striped segment write completes in roughly
    [1/N] of the single-disk media time.  Mirror reads pick the replica
    with the shallowest queue / earliest horizon / closest head and fail
    over transparently (counted in [io.degraded_reads]).  A single disk
    is the one-lane case of the same code, so single-disk timing is
    unchanged.  Logical requests on volumes are additionally published
    as [Volume_op] events; the per-member requests appear as the usual
    [Disk_request]s (with member-local sectors). *)

type t

type request = {
  issued_at_us : int;
  kind : [ `Read | `Write ];
  sync : bool;
  sector : int;
  sectors : int;
  service_us : int;
  sequential : bool;
      (** continued the previous transfer exactly, paying no positioning
          delay (neither seek nor rotational latency) *)
}

exception Read_failed of { sector : int; attempts : int }
(** A read kept failing ({!Disk.Read_fault}) until the retry budget ran
    out: the typed surface of an unrecoverable media error.  [attempts]
    counts every try, including the first. *)

val create :
  ?max_backlog_us:int ->
  ?read_attempts:int ->
  ?retry_backoff_us:int ->
  Disk.t ->
  Clock.t ->
  Cpu_model.t ->
  t
(** Default backlog: 2 s of queued device time (roughly two segment
    writes ahead on the paper's disk).

    [read_attempts] (default 4) bounds how often {!sync_read} tries a
    request that fails with {!Disk.Read_fault}; each retry first waits
    [retry_backoff_us] (default 1 ms) doubled per attempt on the
    simulated clock, accounted in [io.retries]/[io.backoff_us]. *)

val of_geometry :
  ?max_backlog_us:int ->
  ?read_attempts:int ->
  ?retry_backoff_us:int ->
  Geometry.t ->
  Clock.t ->
  Cpu_model.t ->
  t
(** [create] over a fresh {!Disk.create} — lets workload/bench code build
    a whole stack without touching [Disk] directly. *)

val of_volume :
  ?max_backlog_us:int ->
  ?read_attempts:int ->
  ?retry_backoff_us:int ->
  Volume.t ->
  Clock.t ->
  Cpu_model.t ->
  t
(** Mount a multi-member {!Volume} behind the scheduler.  Every member
    gets its own busy horizon and (with {!set_scheduler}) its own queue;
    options apply to all members. *)

val disk : t -> Disk.t
(** The device as a single disk — member 0 on a volume.  Prefer
    {!geometry}/{!member_disk} in volume-aware code; this accessor keeps
    single-disk tooling working. *)

val volume : t -> Volume.t option
(** The volume behind this stack, or [None] for a single disk. *)

val members : t -> int
(** Number of member devices (1 for a single disk). *)

val member_disk : t -> int -> Disk.t
(** Member [i]'s device.
    @raise Invalid_argument if out of range (only 0 on a single disk). *)

val geometry : t -> Geometry.t
(** The logical geometry the file system should format: the disk's own on
    a single-disk stack, {!Volume.geometry} on a volume. *)

val clock : t -> Clock.t
val cpu : t -> Cpu_model.t
val now_us : t -> int

val bus : t -> Lfs_obs.Bus.t
(** The trace bus for this I/O stack.  Quiet (and nearly free) until a
    sink or subscriber is attached. *)

val metrics : t -> Lfs_obs.Metrics.t
(** The registry shared by the whole stack: [Disk.metrics (disk t)] on a
    single disk, {!Volume.metrics} (shared by every member) on a
    volume. *)

(** {1 CPU accounting} *)

val charge_cpu : t -> int -> unit
val charge_syscall : t -> unit
val charge_copy : t -> bytes:int -> unit
val charge_lookup : t -> unit

(** {1 Disk requests} *)

val sync_read : t -> sector:int -> count:int -> bytes
(** @raise Read_failed when the request still fails after the configured
    number of attempts (see {!create}). *)

val sync_write : t -> sector:int -> bytes -> unit
val async_write : t -> sector:int -> bytes -> unit
val drain : t -> unit
(** Dispatch any queued requests and advance the clock until the device
    is idle. *)

(** {1 Request scheduling} *)

val set_scheduler : ?max_queue:int -> t -> Sched.discipline option -> unit
(** Install a request-scheduling discipline (or revert to immediate
    issue-order service with [None]).  Any requests pending under the
    previous policy are dispatched first, so a policy change can never
    reorder requests issued before it.

    With a scheduler installed, [async_write] enqueues and returns; the
    queue is bounded at [max_queue] requests (default 32) — beyond that
    the caller dispatches until the queue fits, then the
    [max_backlog_us] throttle applies as before.  [sync_read] /
    [sync_write] enqueue themselves and dispatch in discipline order
    until serviced.  Queue activity is published as [Disk_queue] bus
    events and observed in [io.queue.depth] / [io.queue.wait_us]. *)

val scheduler : t -> Sched.discipline option
(** The installed discipline, if any. *)

val queue_depth : t -> int
(** Number of requests currently pending across all member queues (0 when
    no scheduler is installed). *)

val disk_stats : t -> Disk.stats
(** The sanctioned way for workloads and bench code to read device
    counters without naming [Disk].  On a volume this is the aggregate
    over all members (matching the shared [disk.*] registry counters). *)

val member_stats : t -> int -> Disk.stats
(** {!disk_stats} for one member — the per-spindle view ([disk.<i>.*])
    without naming [Disk]. *)

val snapshot_media : t -> bytes
(** Copy of the underlying media — member media concatenated in member
    order on a volume, so crash sweeps and replays are deterministic and
    byte-comparable.  Queued writes on every member are dispatched first
    (without advancing the clock) so the snapshot reflects everything
    issued. *)

val restore_media : t -> bytes -> unit
(** Overwrite the media from a {!snapshot_media} image; every member's
    head state is reset and any queued requests are discarded. *)

val note_clustered_read : t -> blocks:int -> unit
(** Account one multi-block read request that replaced [blocks]
    single-block requests: bumps [io.clustered_reads] and adds [blocks]
    to [io.clustered_read_blocks].  Called by the file systems when they
    coalesce contiguous blocks into one {!sync_read}. *)

val note_clustered_write : t -> blocks:int -> unit
(** Same accounting for coalesced write-back requests
    ([io.clustered_writes] / [io.clustered_write_blocks]). *)

val backlog_us : t -> int
(** Queued device time not yet reached by the clock. *)

(** {1 Request log}

    A compatibility view over the trace bus: recording attaches an
    internal unbounded sink filtered to [Disk_request] events. *)

val recording : t -> bool

val set_recording : t -> bool -> unit
(** Enable/disable the request log (disabled by default).  Enabling when
    already enabled is a no-op — the log prefix is {e kept}, so turning
    tracing on mid-run can never silently drop an audit prefix (it used
    to clear the log).  Disabling discards the log. *)

val requests : t -> request list
(** Recorded requests, oldest first.  Empty when recording is off. *)
