(* Disk request queue with pluggable service disciplines.

   The queue is pure policy: it holds pending requests and decides which
   one the device services next, given the head position.  All timing
   (when a request starts, what positioning costs) stays in [Io]/[Disk].

   Correctness under reordering: a request is *eligible* only when no
   older queued request overlaps its sector range.  Overlapping requests
   therefore service in issue order, which preserves write-after-write
   and read-after-write semantics no matter how aggressively the
   discipline reorders disjoint requests. *)

type discipline = Fcfs | Scan | Cscan

let discipline_name = function
  | Fcfs -> "fcfs"
  | Scan -> "scan"
  | Cscan -> "cscan"

let discipline_of_string = function
  | "fcfs" -> Some Fcfs
  | "scan" | "elevator" -> Some Scan
  | "cscan" | "c-scan" -> Some Cscan
  | _ -> None

type entry = {
  id : int;
  kind : [ `Read | `Write ];
  sync : bool;
  sector : int;
  count : int;
  data : Bytes.t option;
  arrival_us : int;
}

type t = {
  discipline : discipline;
  mutable entries : entry list;  (* issue order, oldest first *)
  mutable next_id : int;
  mutable upward : bool;  (* SCAN sweep direction *)
}

let create discipline =
  { discipline; entries = []; next_id = 0; upward = true }

let discipline t = t.discipline
let length t = List.length t.entries
let is_empty t = t.entries = []
let clear t = t.entries <- []

let enqueue t ~kind ~sync ~sector ~count ~data ~arrival_us =
  if count <= 0 then invalid_arg "Sched.enqueue: count <= 0";
  let e =
    { id = t.next_id; kind; sync; sector; count; data; arrival_us }
  in
  t.next_id <- t.next_id + 1;
  t.entries <- t.entries @ [ e ];
  e

let overlaps a b =
  a.sector < b.sector + b.count && b.sector < a.sector + a.count

(* Entries with no older overlapping entry still queued.  Preserves
   issue order (the entries list is oldest-first). *)
let eligible t =
  List.filter
    (fun e ->
      List.for_all (fun f -> f.id >= e.id || not (overlaps e f)) t.entries)
    t.entries

let min_by cmp = function
  | [] -> None
  | x :: rest ->
      Some (List.fold_left (fun best e -> if cmp e best < 0 then e else best) x rest)

let by_sector_asc a b =
  match compare a.sector b.sector with 0 -> compare a.id b.id | c -> c

let by_sector_desc a b =
  match compare b.sector a.sector with 0 -> compare a.id b.id | c -> c

let select t ~head =
  match eligible t with
  | [] -> None
  | elig ->
      let above = List.filter (fun e -> e.sector >= head) elig in
      let below = List.filter (fun e -> e.sector < head) elig in
      let chosen =
        match t.discipline with
        | Fcfs -> List.hd elig
        | Scan -> (
            (* Elevator: keep sweeping in the current direction, serving
               the nearest request ahead of the head; reverse only when
               nothing is left on that side. *)
            match (t.upward, above, below) with
            | true, _ :: _, _ -> Option.get (min_by by_sector_asc above)
            | true, [], _ ->
                t.upward <- false;
                Option.get (min_by by_sector_desc below)
            | false, _, _ :: _ -> Option.get (min_by by_sector_desc below)
            | false, _, [] ->
                t.upward <- true;
                Option.get (min_by by_sector_asc above))
        | Cscan -> (
            (* One-directional sweep: nearest request at or above the
               head, wrapping to the lowest sector when the sweep runs
               off the end.  Bounded starvation: every request waits at
               most one full sweep. *)
            match above with
            | _ :: _ -> Option.get (min_by by_sector_asc above)
            | [] -> Option.get (min_by by_sector_asc elig))
      in
      t.entries <- List.filter (fun e -> e.id <> chosen.id) t.entries;
      Some chosen
