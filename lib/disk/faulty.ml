module Metrics = Lfs_obs.Metrics
module Bus = Lfs_obs.Bus
module Event = Lfs_obs.Event
module Rng = Lfs_util.Rng

exception Crash = Disk.Crash

type scenario = {
  seed : int;
  crash_after_writes : int option;
  torn_write : bool;
  read_error_rate : float;
  read_error_burst : int;
  bad_sectors : int list;
  member : int option;
}

let quiet =
  {
    seed = 0;
    crash_after_writes = None;
    torn_write = false;
    read_error_rate = 0.;
    read_error_burst = 1;
    bad_sectors = [];
    member = None;
  }

type t = {
  io : Io.t;
  scenario : scenario;
  rng : Rng.t;
  c_crashes : Metrics.counter;
  c_torn_writes : Metrics.counter;
  c_read_errors : Metrics.counter;
  c_bad_sector_reads : Metrics.counter;
  mutable writes : int;
  mutable crashed_at : int option;
  mutable faults : int;
  (* Transient-error state: a retry of the last faulted request is
     recognised by address, so a burst fails a bounded number of times
     and then lets the retry through. *)
  mutable last_read : (int * int) option;
  mutable pending_failures : int;
}

let emit t kind ~sector ~sectors =
  t.faults <- t.faults + 1;
  let bus = Io.bus t.io in
  if Bus.enabled bus then
    Bus.emit bus (Event.Fault_injected { kind; sector; sectors })

let on_write t ~sector ~count =
  let idx = t.writes in
  t.writes <- idx + 1;
  match t.scenario.crash_after_writes with
  | Some k when idx >= k ->
      let persisted =
        if t.scenario.torn_write && count > 1 then 1 + Rng.int t.rng (count - 1)
        else 0
      in
      t.crashed_at <- Some idx;
      Metrics.incr t.c_crashes;
      if persisted > 0 then Metrics.incr t.c_torn_writes;
      emit t (if persisted > 0 then "torn_write" else "crash") ~sector
        ~sectors:count;
      Some persisted
  | Some _ | None -> None

let covers_bad_sector t ~sector ~count =
  List.exists
    (fun s -> s >= sector && s < sector + count)
    t.scenario.bad_sectors

let on_read t ~sector ~count =
  if covers_bad_sector t ~sector ~count then begin
    Metrics.incr t.c_bad_sector_reads;
    emit t "bad_sector" ~sector ~sectors:count;
    raise (Disk.Read_fault { sector; transient = false })
  end
  else if t.last_read = Some (sector, count) then begin
    (* Retry (or repeat) of the previous request: fail the remainder of
       the burst, then succeed deterministically. *)
    if t.pending_failures > 0 then begin
      t.pending_failures <- t.pending_failures - 1;
      Metrics.incr t.c_read_errors;
      emit t "read_error" ~sector ~sectors:count;
      raise (Disk.Read_fault { sector; transient = true })
    end
  end
  else begin
    t.last_read <- Some (sector, count);
    t.pending_failures <- 0;
    if
      t.scenario.read_error_rate > 0.
      && Rng.float t.rng 1.0 < t.scenario.read_error_rate
    then begin
      t.pending_failures <- max 0 (t.scenario.read_error_burst - 1);
      Metrics.incr t.c_read_errors;
      emit t "read_error" ~sector ~sectors:count;
      raise (Disk.Read_fault { sector; transient = true })
    end
  end

(* The member disks the scenario targets: all of them by default, one
   spindle when [scenario.member] is set (how a mirror-degraded test
   fails exactly one replica).  On a single-disk stack the only valid
   member is 0. *)
let target_disks io scenario =
  match scenario.member with
  | None -> List.init (Io.members io) (Io.member_disk io)
  | Some m ->
      if m < 0 || m >= Io.members io then
        invalid_arg
          (Printf.sprintf "Faulty.attach: member %d of %d" m (Io.members io));
      [ Io.member_disk io m ]

let attach io scenario =
  if scenario.read_error_rate < 0. || scenario.read_error_rate > 1. then
    invalid_arg "Faulty.attach: read_error_rate outside [0, 1]";
  if scenario.read_error_burst < 1 then
    invalid_arg "Faulty.attach: read_error_burst < 1";
  let targets = target_disks io scenario in
  let metrics = Io.metrics io in
  let t =
    {
      io;
      scenario;
      rng = Rng.create scenario.seed;
      c_crashes = Metrics.counter metrics "disk.faults.crashes";
      c_torn_writes = Metrics.counter metrics "disk.faults.torn_writes";
      c_read_errors = Metrics.counter metrics "disk.faults.read_errors";
      c_bad_sector_reads =
        Metrics.counter metrics "disk.faults.bad_sector_reads";
      writes = 0;
      crashed_at = None;
      faults = 0;
      last_read = None;
      pending_failures = 0;
    }
  in
  List.iter
    (fun d ->
      Disk.set_fault_hook d
        (Some
           {
             Disk.on_read = (fun ~sector ~count -> on_read t ~sector ~count);
             on_write = (fun ~sector ~count -> on_write t ~sector ~count);
           }))
    targets;
  t

let detach t =
  List.iter (fun d -> Disk.set_fault_hook d None) (target_disks t.io t.scenario)

let writes_seen t = t.writes
let crashed_at t = t.crashed_at
let faults_injected t = t.faults

let crashed t =
  List.exists Disk.crashed (List.init (Io.members t.io) (Io.member_disk t.io))

let clear_crash t =
  List.iter Disk.clear_crash (List.init (Io.members t.io) (Io.member_disk t.io))
