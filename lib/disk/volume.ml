module Metrics = Lfs_obs.Metrics

type policy =
  | Stripe of { chunk_sectors : int }
  | Mirror
  | Log_stripe of { stripe_sectors : int }

let policy_name = function
  | Stripe _ -> "stripe"
  | Mirror -> "mirror"
  | Log_stripe _ -> "log_stripe"

type run = {
  member : int;
  sector : int;
  count : int;
  pieces : (int * int) list;
}

type t = {
  policy : policy;
  nmembers : int;
  chunk : int;  (* striping chunk in sectors; 0 for mirrors *)
  disks : Disk.t array;
  member_geometry : Geometry.t;
  geometry : Geometry.t;  (* logical: sectors field replaced *)
  metrics : Metrics.t;
}

let create policy ~members geometry =
  if members < 1 then invalid_arg "Volume.create: members < 1";
  let chunk =
    match policy with
    | Mirror -> 0
    | Stripe { chunk_sectors } ->
        if chunk_sectors < 1 then
          invalid_arg "Volume.create: chunk_sectors < 1";
        chunk_sectors
    | Log_stripe { stripe_sectors } ->
        if stripe_sectors < 1 then
          invalid_arg "Volume.create: stripe_sectors < 1";
        if stripe_sectors mod members <> 0 then
          invalid_arg
            (Printf.sprintf
               "Volume.create: stripe of %d sectors not divisible by %d \
                members"
               stripe_sectors members);
        stripe_sectors / members
  in
  let msectors = geometry.Geometry.sectors in
  let logical_sectors =
    match policy with
    | Mirror -> msectors
    | Stripe _ | Log_stripe _ ->
        let chunks_per_member = msectors / chunk in
        if chunks_per_member < 1 then
          invalid_arg "Volume.create: member smaller than one chunk";
        members * chunks_per_member * chunk
  in
  let metrics = Metrics.create () in
  {
    policy;
    nmembers = members;
    chunk;
    disks =
      Array.init members (fun i -> Disk.create ~metrics ~member:i geometry);
    member_geometry = geometry;
    geometry = { geometry with Geometry.sectors = logical_sectors };
    metrics;
  }

let policy t = t.policy
let members t = t.nmembers
let geometry t = t.geometry
let member_geometry t = t.member_geometry
let metrics t = t.metrics

let member_disk t i =
  if i < 0 || i >= t.nmembers then
    invalid_arg (Printf.sprintf "Volume.member_disk: member %d of %d" i t.nmembers);
  t.disks.(i)

let chunk_sectors t = match t.policy with Mirror -> None | _ -> Some t.chunk

let check_range t ~sector ~count =
  if sector < 0 || count <= 0 || sector + count > t.geometry.Geometry.sectors
  then
    invalid_arg
      (Printf.sprintf "Volume: request [%d, +%d) out of range (%d sectors)"
         sector count t.geometry.Geometry.sectors)

(* Walk the request chunk by chunk, accumulating one contiguous run per
   member.  Chunk [k] lives on member [k mod n] at member sector
   [(k / n) * chunk]; a request covers consecutive chunks, so each
   member's fragments land back to back on the media (asserted below) and
   merge into a single run.  Runs come out ordered by the first logical
   sector they cover — the order a sequential device would have serviced
   the data in. *)
let chunked_runs t ~sector ~count =
  let c = t.chunk and n = t.nmembers in
  let acc = Array.make n None in
  let order = ref [] in
  let ls = ref sector and remaining = ref count in
  while !remaining > 0 do
    let k = !ls / c in
    let off_in_chunk = !ls mod c in
    let m = k mod n in
    let msec = ((k / n) * c) + off_in_chunk in
    let take = min (c - off_in_chunk) !remaining in
    (match acc.(m) with
    | None ->
        acc.(m) <- Some (msec, take, [ (!ls - sector, take) ]);
        order := m :: !order
    | Some (first, total, pieces) ->
        assert (msec = first + total);
        acc.(m) <- Some (first, total + take, (!ls - sector, take) :: pieces));
    ls := !ls + take;
    remaining := !remaining - take
  done;
  List.rev_map
    (fun m ->
      match acc.(m) with
      | Some (first, total, pieces) ->
          { member = m; sector = first; count = total; pieces = List.rev pieces }
      | None -> assert false)
    !order

let full_run ~member ~sector ~count = { member; sector; count; pieces = [ (0, count) ] }

let map_write t ~sector ~count =
  check_range t ~sector ~count;
  match t.policy with
  | Mirror -> List.init t.nmembers (fun m -> full_run ~member:m ~sector ~count)
  | Stripe _ | Log_stripe _ -> chunked_runs t ~sector ~count

let map_read ?(prefer = 0) t ~sector ~count =
  check_range t ~sector ~count;
  match t.policy with
  | Mirror ->
      if prefer < 0 || prefer >= t.nmembers then
        invalid_arg "Volume.map_read: prefer out of range";
      [ full_run ~member:prefer ~sector ~count ]
  | Stripe _ | Log_stripe _ -> chunked_runs t ~sector ~count

let locate t ~sector =
  check_range t ~sector ~count:1;
  match t.policy with
  | Mirror -> (0, sector)
  | Stripe _ | Log_stripe _ ->
      let c = t.chunk and n = t.nmembers in
      let k = sector / c in
      (k mod n, ((k / n) * c) + (sector mod c))

let logical_of t ~member ~msec =
  if member < 0 || member >= t.nmembers || msec < 0 then
    invalid_arg "Volume.logical_of";
  match t.policy with
  | Mirror -> msec
  | Stripe _ | Log_stripe _ ->
      let c = t.chunk and n = t.nmembers in
      let j = msec / c in
      (((j * n) + member) * c) + (msec mod c)

let read ?start_us t ~member ~sector ~count =
  Disk.read ?start_us (member_disk t member) ~sector ~count

let write ?start_us t ~member ~sector data =
  Disk.write ?start_us (member_disk t member) ~sector data

let snapshot t =
  let msize = Geometry.size_bytes t.member_geometry in
  let out = Bytes.create (t.nmembers * msize) in
  Array.iteri
    (fun i d -> Bytes.blit (Disk.snapshot d) 0 out (i * msize) msize)
    t.disks;
  out

let restore t media =
  let msize = Geometry.size_bytes t.member_geometry in
  if Bytes.length media <> t.nmembers * msize then
    invalid_arg "Volume.restore: snapshot size mismatch";
  Array.iteri
    (fun i d -> Disk.restore d (Bytes.sub media (i * msize) msize))
    t.disks

let crashed t = Array.exists Disk.crashed t.disks
let clear_crash t = Array.iter Disk.clear_crash t.disks
