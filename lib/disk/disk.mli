(** A simulated sector-addressable disk.

    Stores data in memory and computes a service time for every request
    from the {!Geometry} model.  The disk itself never advances the clock;
    the {!Io} scheduler decides whether the caller waits (synchronous I/O)
    or the time is absorbed by the device queue (asynchronous I/O).

    Crash injection: [set_crash_after] arms a countdown of sectors that may
    still be persisted.  A write that exhausts the countdown is applied
    only partially (a torn write) and raises {!Crash}, simulating a power
    cut mid-transfer.  Subsequent writes also raise {!Crash} until the
    countdown is cleared, modelling a machine that is down. *)

exception Crash
(** Raised by a write when the armed crash point is reached. *)

exception Read_fault of { sector : int; transient : bool }
(** Raised by a read when an installed fault hook fails the request:
    [transient] faults may succeed on retry (media hiccup), sticky ones
    never do (bad sector).  The {!Io} scheduler owns the retry/backoff
    policy and converts budget exhaustion into its own typed error. *)

type fault_hook = {
  on_read : sector:int -> count:int -> unit;
      (** Called before a read is serviced; raise {!Read_fault} to fail
          the request. *)
  on_write : sector:int -> count:int -> int option;
      (** Called before a write is serviced.  [Some persisted] tears the
          request — only the first [persisted] sectors reach the media —
          marks the disk crashed and raises {!Crash}; [None] lets the
          write proceed. *)
}
(** Scenario-driven fault injection, installed by {!Faulty}.  The hook
    sees every request after range validation and before any service-time
    accounting, so failed attempts cost nothing at the device level. *)

type t

type stats = {
  mutable reads : int;
  mutable writes : int;
  mutable sectors_read : int;
  mutable sectors_written : int;
  mutable seeks : int;  (** requests that required head movement *)
  mutable busy_us : int;  (** total service time of all requests *)
}

val create : ?metrics:Lfs_obs.Metrics.t -> ?member:int -> Geometry.t -> t
(** [create geometry] makes a standalone disk with a private metrics
    registry.  A {!Volume} passes [~metrics] (the registry shared by the
    whole multi-member stack) and [~member:i]: the disk then updates both
    the shared aggregate [disk.*] counters (get-or-create on the common
    registry, so they sum over members) and its own [disk.<i>.*] family —
    the per-spindle view.  Per-disk accessors below ({!stats},
    {!seek_count}, …) always report this disk alone. *)

val geometry : t -> Geometry.t

val set_fault_hook : t -> fault_hook option -> unit
(** Install (or clear) the fault hook.  At most one hook is active. *)

val metrics : t -> Lfs_obs.Metrics.t
(** The metrics registry owned by this disk's I/O stack.  The disk
    registers its own instruments under [disk.*]; higher layers sharing
    the stack (the {!Io} scheduler, caches, file systems) add theirs
    here, so one registry describes the whole instance. *)

val stats : t -> stats
(** Compatibility view over the [disk.*] registry counters: a fresh
    record per call.  Mutating the returned record has no effect. *)

val seek_count : t -> int
(** Cheap accessor for [disk.seeks]. *)

val busy_us : t -> int

val positioning_us : t -> int
(** Cheap accessor for [disk.positioning_us]: total time spent seeking
    and waiting for rotation across all requests (service time minus
    pure transfer).  The quantity a reordering scheduler minimizes. *)

val head_sector : t -> int
(** Current head position as a sector number — the sector following the
    last transfer.  A request starting exactly here streams with no
    positioning delay; a request scheduler uses this as the sweep
    position for SCAN/C-SCAN. *)

val last_was_streamed : t -> bool
(** Whether the most recent request started exactly where the previous
    transfer ended (an exact continuation of the access pattern).  This
    is the correct "sequential" classification for the request audit: a
    request that merely lands on the same cylinder skips the seek (so
    [seek_count] is unchanged) but still pays rotational latency and is
    not sequential. *)

val reset_stats : t -> unit
(** Zero the [disk.*] counters (other registry entries are untouched). *)

val read : ?start_us:int -> t -> sector:int -> count:int -> bytes * int
(** [read t ~sector ~count] returns the data of [count] sectors and the
    service time in microseconds.

    [start_us] is the simulated time the request reaches the device.
    With it, a request that continues the previous transfer but arrives
    after the device went idle pays the missed-rotation cost: the platter
    kept spinning, so the head waits out the remainder of the current
    rotation.  Without it the request is treated as issued back to back
    (zero positioning on exact continuation — the historical model).
    @raise Invalid_argument if out of range. *)

val write : ?start_us:int -> t -> sector:int -> bytes -> int
(** [write t ~sector data] writes [data] (whose length must be a multiple
    of the sector size) and returns the service time.  [start_us] as in
    {!read}.
    @raise Crash if a crash point is reached (the write may be torn).
    @raise Invalid_argument if out of range or misaligned. *)

val set_crash_after : t -> sectors:int -> unit
(** Arm a crash after [sectors] more sectors have been persisted. *)

val clear_crash : t -> unit
(** Disarm the crash and bring the "machine" back up (after this, reads
    and writes succeed again; the torn state remains on disk). *)

val crashed : t -> bool

val snapshot : t -> bytes
(** Copy of the entire media, for test assertions. *)

val restore : t -> bytes -> unit
(** Overwrite the media from a snapshot.  Head position is reset. *)
