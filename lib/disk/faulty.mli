(** Deterministic, seeded fault injection over a {!Disk}.

    [attach] installs a scenario-driven {!Disk.fault_hook} on an existing
    I/O stack: the device keeps its geometry, media and metrics — it just
    starts failing the way worn hardware does.  Four fault kinds:

    - {b crash-after-N-writes}: the N-th write request (counting from the
      moment of attachment) persists nothing and cuts power
      ({!Disk.Crash}); every later write fails until {!clear_crash}.
    - {b torn write}: the crashing request instead persists a seeded
      proper prefix of its sectors — the multi-sector segment or block
      write is torn mid-transfer.
    - {b transient read errors}: each read request independently fails
      with probability [read_error_rate], for [read_error_burst]
      consecutive attempts, then succeeds — exercising the {!Io} retry
      and backoff path.
    - {b sticky bad sectors}: reads covering a listed sector always fail,
      so the retry budget runs out and {!Io.Read_failed} surfaces.

    All randomness flows from [scenario.seed] through {!Lfs_util.Rng}, so
    a replay with the same scenario on the same workload injects the same
    faults at the same requests.  Every injected fault is emitted on the
    stack's trace bus as a [Fault_injected] event and counted under
    [disk.faults.*]. *)

exception Crash
(** The power-cut exception ({!Disk.Crash}), re-exported so harnesses
    built over {!Io} can catch it without naming the device layer. *)

type scenario = {
  seed : int;
  crash_after_writes : int option;
      (** Crash at the k-th write request after [attach] (0-based): the
          first [k] writes complete untouched, request [k] is lost or
          torn. *)
  torn_write : bool;
      (** When crashing, persist a seeded non-empty proper prefix of the
          request instead of nothing (single-sector requests still
          persist nothing — there is no proper prefix to tear to). *)
  read_error_rate : float;  (** Per-request transient failure probability. *)
  read_error_burst : int;
      (** Consecutive failures per faulted request (≥ 1); keep it below
          the {!Io} retry budget if the request must eventually
          succeed. *)
  bad_sectors : int list;  (** Sticky unreadable sectors. *)
  member : int option;
      (** Restrict the scenario to one volume member ([None] = the whole
          device: every member of a volume, or the single disk).  Sector
          addresses in [bad_sectors] are member-local.  Failing one
          mirror replica this way exercises the {!Io} degraded-read
          fail-over. *)
}

val quiet : scenario
(** No faults: useful for probe runs that only count write boundaries. *)

type t

val attach : Io.t -> scenario -> t
(** Install the scenario on [io]'s device — every member disk, or just
    [scenario.member] — replacing any previous hook.  Fault counting
    (and the write-boundary counter) starts here and is shared across
    members.
    @raise Invalid_argument on a malformed scenario. *)

val detach : t -> unit
(** Remove the hook(s); the device behaves perfectly again. *)

val writes_seen : t -> int
(** Write requests observed since [attach] — the boundary count a
    crash-point sweep enumerates. *)

val crashed_at : t -> int option
(** Index of the write request the scenario crashed on, if it fired. *)

val faults_injected : t -> int
(** Total faults of all kinds injected so far. *)

val crashed : t -> bool
(** Whether the simulated machine is down ({!Disk.crashed}). *)

val clear_crash : t -> unit
(** Bring the machine back up, keeping the (possibly torn) media state —
    the first step of every recovery, without naming [Disk]. *)
