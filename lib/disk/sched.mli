(** Disk request queue with pluggable service disciplines.

    Pure policy over a set of pending requests: {!enqueue} records a
    request in issue order, {!select} removes and returns the one the
    device should service next given the current head position.  Timing
    stays in {!Io}/{!Disk} — this module never looks at a clock.

    Reordering is safe by construction: a request is only eligible for
    selection once no {e older} queued request overlaps its sector
    range, so overlapping requests always service in issue order
    (write-after-write and read-after-write are preserved), while
    disjoint requests may be freely resequenced to cut positioning
    cost. *)

type discipline =
  | Fcfs  (** first come, first served — issue order, no reordering *)
  | Scan
      (** elevator: service the nearest eligible request in the current
          sweep direction, reversing at the last request on that side *)
  | Cscan
      (** circular SCAN: one-directional sweep toward higher sectors,
          wrapping to the lowest pending sector; bounds starvation at
          one full sweep and keeps service time uniform across the
          platter *)

val discipline_name : discipline -> string
(** ["fcfs"] / ["scan"] / ["cscan"] — stable labels for bench JSON and
    CLI flags. *)

val discipline_of_string : string -> discipline option
(** Inverse of {!discipline_name}; also accepts ["elevator"] and
    ["c-scan"]. *)

type entry = {
  id : int;  (** issue order, dense from 0 per queue *)
  kind : [ `Read | `Write ];
  sync : bool;
  sector : int;
  count : int;
  data : Bytes.t option;  (** writes carry their payload until dispatch *)
  arrival_us : int;  (** simulated time the request entered the queue *)
}

type t

val create : discipline -> t
val discipline : t -> discipline
val length : t -> int
val is_empty : t -> bool

val clear : t -> unit
(** Drop all pending entries (media restore discards queued writes). *)

val enqueue :
  t ->
  kind:[ `Read | `Write ] ->
  sync:bool ->
  sector:int ->
  count:int ->
  data:Bytes.t option ->
  arrival_us:int ->
  entry

val select : t -> head:int -> entry option
(** Remove and return the next request to service, or [None] when the
    queue is empty.  [head] is the device's current sector position (the
    sector following the last transfer).  Ties on sector break toward
    the older request, so selection is deterministic. *)
