module Bus = Lfs_obs.Bus
module Event = Lfs_obs.Event
module Metrics = Lfs_obs.Metrics

type request = {
  issued_at_us : int;
  kind : [ `Read | `Write ];
  sync : bool;
  sector : int;
  sectors : int;
  service_us : int;
  sequential : bool;
}

exception Read_failed of { sector : int; attempts : int }

type t = {
  disk : Disk.t;
  clock : Clock.t;
  cpu : Cpu_model.t;
  bus : Bus.t;
  h_read_us : Metrics.histogram;
  h_write_us : Metrics.histogram;
  h_request_sectors : Metrics.histogram;
  h_queue_depth : Metrics.histogram;
  h_queue_wait : Metrics.histogram;
  c_clustered_reads : Metrics.counter;
  c_clustered_read_blocks : Metrics.counter;
  c_clustered_writes : Metrics.counter;
  c_clustered_write_blocks : Metrics.counter;
  c_retries : Metrics.counter;
  c_backoff_us : Metrics.counter;
  max_backlog_us : int;
  read_attempts : int;
  retry_backoff_us : int;
  mutable busy_until_us : int;
  mutable sched : Sched.t option;  (* None = immediate issue-order service *)
  mutable max_queue : int;
  mutable audit : Bus.sink option;  (* the legacy request log, as a sink *)
}

let is_disk_request = function Event.Disk_request _ -> true | _ -> false

let create ?(max_backlog_us = 2_000_000) ?(read_attempts = 4)
    ?(retry_backoff_us = 1_000) disk clock cpu =
  if max_backlog_us < 0 then invalid_arg "Io.create: negative backlog";
  if read_attempts < 1 then invalid_arg "Io.create: read_attempts < 1";
  if retry_backoff_us < 0 then invalid_arg "Io.create: negative backoff";
  let metrics = Disk.metrics disk in
  {
    disk;
    clock;
    cpu;
    bus = Bus.create ~now:(fun () -> Clock.now_us clock) ();
    h_read_us = Metrics.histogram metrics "io.read_us";
    h_write_us = Metrics.histogram metrics "io.write_us";
    h_request_sectors = Metrics.histogram metrics "io.request_sectors";
    h_queue_depth = Metrics.histogram metrics "io.queue.depth";
    h_queue_wait = Metrics.histogram metrics "io.queue.wait_us";
    c_clustered_reads = Metrics.counter metrics "io.clustered_reads";
    c_clustered_read_blocks = Metrics.counter metrics "io.clustered_read_blocks";
    c_clustered_writes = Metrics.counter metrics "io.clustered_writes";
    c_clustered_write_blocks =
      Metrics.counter metrics "io.clustered_write_blocks";
    c_retries = Metrics.counter metrics "io.retries";
    c_backoff_us = Metrics.counter metrics "io.backoff_us";
    max_backlog_us;
    read_attempts;
    retry_backoff_us;
    busy_until_us = 0;
    sched = None;
    max_queue = 32;
    audit = None;
  }

let of_geometry ?max_backlog_us ?read_attempts ?retry_backoff_us geometry clock
    cpu =
  create ?max_backlog_us ?read_attempts ?retry_backoff_us
    (Disk.create geometry) clock cpu

let disk t = t.disk
let clock t = t.clock
let cpu t = t.cpu
let bus t = t.bus
let metrics t = Disk.metrics t.disk
let now_us t = Clock.now_us t.clock

let charge_cpu t us = Clock.advance_us t.clock us
let charge_syscall t = charge_cpu t t.cpu.Cpu_model.syscall_us
let charge_copy t ~bytes = charge_cpu t (Cpu_model.copy_us t.cpu ~bytes)
let charge_lookup t = charge_cpu t t.cpu.Cpu_model.lookup_us

let record t ~kind ~sync ~sector ~sectors ~service_us ~sequential =
  Metrics.observe
    (match kind with `Read -> t.h_read_us | `Write -> t.h_write_us)
    service_us;
  Metrics.observe t.h_request_sectors sectors;
  if Bus.enabled t.bus then
    Bus.emit t.bus
      (Event.Disk_request
         {
           kind = (match kind with `Read -> Event.Read | `Write -> Event.Write);
           sync;
           sector;
           sectors;
           service_us;
           sequential;
         })

let sector_size t = (Disk.geometry t.disk).Geometry.sector_size

(* Without a scheduler the device serves requests in issue order; a
   request begins when both the caller and the device are ready. *)
let start_time t = max (now_us t) t.busy_until_us

let emit_queue t ~action ~kind ~sector ~sectors ~depth ~wait_us =
  if Bus.enabled t.bus then
    Bus.emit t.bus
      (Event.Disk_queue
         {
           action;
           kind = (match kind with `Read -> Event.Read | `Write -> Event.Write);
           sector;
           sectors;
           depth;
           wait_us;
         })

(* Retry loop shared by the immediate and queued read paths.  A failed
   attempt costs only the retry backoff: the fault hook rejects the
   request before the device computes a service time, so the head never
   moves and the clock advances by the (exponentially growing) wait
   between attempts. *)
let read_with_retries t ~start ~sector ~count ~sync =
  let rec attempt n =
    match Disk.read ~start_us:(start ()) t.disk ~sector ~count with
    | data, service_us ->
        let sequential = Disk.last_was_streamed t.disk in
        record t ~kind:`Read ~sync ~sector ~sectors:count ~service_us
          ~sequential;
        t.busy_until_us <- start () + service_us;
        data
    | exception Disk.Read_fault _ ->
        if n >= t.read_attempts then raise (Read_failed { sector; attempts = n })
        else begin
          Metrics.incr t.c_retries;
          let backoff = t.retry_backoff_us * (1 lsl (n - 1)) in
          Metrics.add t.c_backoff_us backoff;
          Clock.advance_us t.clock backoff;
          attempt (n + 1)
        end
  in
  attempt 1

(* Service one queued request.  The device worked through the queue in
   the background: the request starts when the device is free and the
   request has arrived — time that may already lie in the past by the
   moment the dispatch order is decided (lazy dispatch still charges the
   device as if it ran continuously).  Returns the payload for reads. *)
let dispatch_entry t q (e : Sched.entry) =
  let start () = max t.busy_until_us e.Sched.arrival_us in
  let wait_us = start () - e.Sched.arrival_us in
  let depth = Sched.length q in
  let payload =
    match e.Sched.kind with
    | `Write ->
        let data = Option.get e.Sched.data in
        let service_us =
          Disk.write ~start_us:(start ()) t.disk ~sector:e.Sched.sector data
        in
        record t ~kind:`Write ~sync:e.Sched.sync ~sector:e.Sched.sector
          ~sectors:e.Sched.count ~service_us
          ~sequential:(Disk.last_was_streamed t.disk);
        t.busy_until_us <- start () + service_us;
        None
    | `Read ->
        Some
          (read_with_retries t ~start ~sector:e.Sched.sector
             ~count:e.Sched.count ~sync:e.Sched.sync)
  in
  Metrics.observe t.h_queue_wait wait_us;
  emit_queue t ~action:`Dispatch ~kind:e.Sched.kind ~sector:e.Sched.sector
    ~sectors:e.Sched.count ~depth ~wait_us;
  payload

(* The oldest entry is always eligible, so a non-empty queue always
   dispatches: no livelock. *)
let dispatch_next t q =
  match Sched.select q ~head:(Disk.head_sector t.disk) with
  | None -> None
  | Some e -> Some (e, dispatch_entry t q e)

let dispatch_all t =
  match t.sched with
  | None -> ()
  | Some q ->
      let rec go () = if dispatch_next t q <> None then go () in
      go ()

(* Dispatch in discipline order until the entry [id] has been serviced;
   returns its read payload.  Requests the discipline ranks ahead of the
   target are serviced first — this is the convoy a synchronous caller
   pays behind a deep queue. *)
let dispatch_until t q ~id =
  let rec go () =
    match dispatch_next t q with
    | None -> None
    | Some (e, payload) -> if e.Sched.id = id then payload else go ()
  in
  go ()

let enqueue t q ~kind ~sync ~sector ~count ~data =
  let e =
    Sched.enqueue q ~kind ~sync ~sector ~count ~data ~arrival_us:(now_us t)
  in
  Metrics.observe t.h_queue_depth (Sched.length q);
  emit_queue t ~action:`Enqueue ~kind ~sector ~sectors:count
    ~depth:(Sched.length q) ~wait_us:0;
  e

let sync_read t ~sector ~count =
  let go () =
    match t.sched with
    | None ->
        let data =
          read_with_retries t
            ~start:(fun () -> start_time t)
            ~sector ~count ~sync:true
        in
        Clock.advance_to_us t.clock t.busy_until_us;
        data
    | Some q ->
        let e = enqueue t q ~kind:`Read ~sync:true ~sector ~count ~data:None in
        let data =
          match dispatch_until t q ~id:e.Sched.id with
          | Some d -> d
          | None -> assert false
        in
        Clock.advance_to_us t.clock t.busy_until_us;
        data
  in
  (* The span covers the retry loop too: backoff waits are disk time. *)
  if Bus.enabled t.bus then Bus.with_span t.bus "io_read" go else go ()

let sync_write t ~sector data =
  let go () =
    match t.sched with
    | None ->
        let start = start_time t in
        let service_us = Disk.write ~start_us:start t.disk ~sector data in
        let sectors = Bytes.length data / sector_size t in
        let sequential = Disk.last_was_streamed t.disk in
        record t ~kind:`Write ~sync:true ~sector ~sectors ~service_us
          ~sequential;
        Clock.advance_to_us t.clock (start + service_us);
        t.busy_until_us <- Clock.now_us t.clock
    | Some q ->
        let count = Bytes.length data / sector_size t in
        let e =
          enqueue t q ~kind:`Write ~sync:true ~sector ~count ~data:(Some data)
        in
        ignore (dispatch_until t q ~id:e.Sched.id : bytes option);
        Clock.advance_to_us t.clock t.busy_until_us
  in
  if Bus.enabled t.bus then Bus.with_span t.bus "io_write" go else go ()

let async_write t ~sector data =
  let go () =
    (match t.sched with
    | None ->
        let start = start_time t in
        let service_us = Disk.write ~start_us:start t.disk ~sector data in
        let sectors = Bytes.length data / sector_size t in
        let sequential = Disk.last_was_streamed t.disk in
        record t ~kind:`Write ~sync:false ~sector ~sectors ~service_us
          ~sequential;
        t.busy_until_us <- start + service_us
    | Some q ->
        let count = Bytes.length data / sector_size t in
        (* The queue owns the payload from here: copy so a caller reusing
           its buffer cannot retroactively change a pending write. *)
        let (_ : Sched.entry) =
          enqueue t q ~kind:`Write ~sync:false ~sector ~count
            ~data:(Some (Bytes.copy data))
        in
        (* Bounded queue: past [max_queue] pending requests the device
           must make room before the caller may continue. *)
        while Sched.length q > t.max_queue do
          ignore (dispatch_next t q : (Sched.entry * bytes option) option)
        done);
    (* Writer throttling: the application may run ahead of the disk only by
       the write-buffer depth. *)
    if t.busy_until_us - Clock.now_us t.clock > t.max_backlog_us then
      Clock.advance_to_us t.clock (t.busy_until_us - t.max_backlog_us)
  in
  (* The async span's elapsed time is only the throttle wait (if any):
     the op does not block on the device itself. *)
  if Bus.enabled t.bus then Bus.with_span t.bus "io_write_async" go else go ()

let note_clustered_read t ~blocks =
  Metrics.incr t.c_clustered_reads;
  Metrics.add t.c_clustered_read_blocks blocks

let note_clustered_write t ~blocks =
  Metrics.incr t.c_clustered_writes;
  Metrics.add t.c_clustered_write_blocks blocks

let queue_depth t = match t.sched with None -> 0 | Some q -> Sched.length q

let drain t =
  let pending =
    queue_depth t > 0 || t.busy_until_us > Clock.now_us t.clock
  in
  let go () =
    dispatch_all t;
    Clock.advance_to_us t.clock t.busy_until_us
  in
  (* Only span an actual wait — a no-op drain would add zero-length spans
     to every sync. *)
  if Bus.enabled t.bus && pending then Bus.with_span t.bus "io_drain" go
  else go ()

let scheduler t = Option.map Sched.discipline t.sched

let set_scheduler ?(max_queue = 32) t d =
  if max_queue < 1 then invalid_arg "Io.set_scheduler: max_queue < 1";
  (* Flush any pending queue under the old policy before switching, so a
     policy change can never reorder requests issued before it. *)
  dispatch_all t;
  t.max_queue <- max_queue;
  t.sched <- Option.map Sched.create d

let disk_stats t = Disk.stats t.disk

let snapshot_media t =
  (* Pending queued writes belong on the snapshot: flush them to the
     device (extending its busy horizon) without advancing the clock. *)
  dispatch_all t;
  Disk.snapshot t.disk

let restore_media t media =
  (match t.sched with Some q -> Sched.clear q | None -> ());
  Disk.restore t.disk media

let backlog_us t = max 0 (t.busy_until_us - Clock.now_us t.clock)

let recording t = t.audit <> None

let set_recording t on =
  match (t.audit, on) with
  | None, true ->
      t.audit <- Some (Bus.attach ~filter:is_disk_request t.bus)
  | Some _, true ->
      (* Already recording: keep the prefix.  (Historically this cleared
         the log — a footgun that silently dropped the Figure 1/2 audit
         when tracing was enabled mid-run.) *)
      ()
  | Some sink, false ->
      Bus.detach t.bus sink;
      t.audit <- None
  | None, false -> ()

let request_of_record (r : Event.record) =
  match r.Event.event with
  | Event.Disk_request { kind; sync; sector; sectors; service_us; sequential }
    ->
      Some
        {
          issued_at_us = r.Event.at_us;
          kind = (match kind with Event.Read -> `Read | Event.Write -> `Write);
          sync;
          sector;
          sectors;
          service_us;
          sequential;
        }
  | _ -> None

let requests t =
  match t.audit with
  | None -> []
  | Some sink -> List.filter_map request_of_record (Bus.records sink)
