module Bus = Lfs_obs.Bus
module Event = Lfs_obs.Event
module Metrics = Lfs_obs.Metrics

type request = {
  issued_at_us : int;
  kind : [ `Read | `Write ];
  sync : bool;
  sector : int;
  sectors : int;
  service_us : int;
  sequential : bool;
}

exception Read_failed of { sector : int; attempts : int }

type t = {
  disk : Disk.t;
  clock : Clock.t;
  cpu : Cpu_model.t;
  bus : Bus.t;
  h_read_us : Metrics.histogram;
  h_write_us : Metrics.histogram;
  h_request_sectors : Metrics.histogram;
  c_clustered_reads : Metrics.counter;
  c_clustered_read_blocks : Metrics.counter;
  c_clustered_writes : Metrics.counter;
  c_clustered_write_blocks : Metrics.counter;
  c_retries : Metrics.counter;
  c_backoff_us : Metrics.counter;
  max_backlog_us : int;
  read_attempts : int;
  retry_backoff_us : int;
  mutable busy_until_us : int;
  mutable audit : Bus.sink option;  (* the legacy request log, as a sink *)
}

let is_disk_request = function Event.Disk_request _ -> true | _ -> false

let create ?(max_backlog_us = 2_000_000) ?(read_attempts = 4)
    ?(retry_backoff_us = 1_000) disk clock cpu =
  if max_backlog_us < 0 then invalid_arg "Io.create: negative backlog";
  if read_attempts < 1 then invalid_arg "Io.create: read_attempts < 1";
  if retry_backoff_us < 0 then invalid_arg "Io.create: negative backoff";
  let metrics = Disk.metrics disk in
  {
    disk;
    clock;
    cpu;
    bus = Bus.create ~now:(fun () -> Clock.now_us clock) ();
    h_read_us = Metrics.histogram metrics "io.read_us";
    h_write_us = Metrics.histogram metrics "io.write_us";
    h_request_sectors = Metrics.histogram metrics "io.request_sectors";
    c_clustered_reads = Metrics.counter metrics "io.clustered_reads";
    c_clustered_read_blocks = Metrics.counter metrics "io.clustered_read_blocks";
    c_clustered_writes = Metrics.counter metrics "io.clustered_writes";
    c_clustered_write_blocks =
      Metrics.counter metrics "io.clustered_write_blocks";
    c_retries = Metrics.counter metrics "io.retries";
    c_backoff_us = Metrics.counter metrics "io.backoff_us";
    max_backlog_us;
    read_attempts;
    retry_backoff_us;
    busy_until_us = 0;
    audit = None;
  }

let of_geometry ?max_backlog_us ?read_attempts ?retry_backoff_us geometry clock
    cpu =
  create ?max_backlog_us ?read_attempts ?retry_backoff_us
    (Disk.create geometry) clock cpu

let disk t = t.disk
let clock t = t.clock
let cpu t = t.cpu
let bus t = t.bus
let metrics t = Disk.metrics t.disk
let now_us t = Clock.now_us t.clock

let charge_cpu t us = Clock.advance_us t.clock us
let charge_syscall t = charge_cpu t t.cpu.Cpu_model.syscall_us
let charge_copy t ~bytes = charge_cpu t (Cpu_model.copy_us t.cpu ~bytes)
let charge_lookup t = charge_cpu t t.cpu.Cpu_model.lookup_us

let record t ~kind ~sync ~sector ~sectors ~service_us ~sequential =
  Metrics.observe
    (match kind with `Read -> t.h_read_us | `Write -> t.h_write_us)
    service_us;
  Metrics.observe t.h_request_sectors sectors;
  if Bus.enabled t.bus then
    Bus.emit t.bus
      (Event.Disk_request
         {
           kind = (match kind with `Read -> Event.Read | `Write -> Event.Write);
           sync;
           sector;
           sectors;
           service_us;
           sequential;
         })

let sector_size t = (Disk.geometry t.disk).Geometry.sector_size

(* The device serves requests in issue order; a request begins when both
   the caller and the device are ready. *)
let start_time t = max (now_us t) t.busy_until_us

(* A failed read attempt costs only the retry backoff: the fault hook
   rejects the request before the device computes a service time, so the
   head never moves and the clock advances by the (exponentially
   growing) wait between attempts. *)
let sync_read t ~sector ~count =
  let go () =
    let rec attempt n =
      match Disk.read ~start_us:(start_time t) t.disk ~sector ~count with
      | data, service_us ->
          let sequential = Disk.last_was_streamed t.disk in
          record t ~kind:`Read ~sync:true ~sector ~sectors:count ~service_us
            ~sequential;
          Clock.advance_to_us t.clock (start_time t + service_us);
          t.busy_until_us <- Clock.now_us t.clock;
          data
      | exception Disk.Read_fault _ ->
          if n >= t.read_attempts then
            raise (Read_failed { sector; attempts = n })
          else begin
            Metrics.incr t.c_retries;
            let backoff = t.retry_backoff_us * (1 lsl (n - 1)) in
            Metrics.add t.c_backoff_us backoff;
            Clock.advance_us t.clock backoff;
            attempt (n + 1)
          end
    in
    attempt 1
  in
  (* The span covers the retry loop too: backoff waits are disk time. *)
  if Bus.enabled t.bus then Bus.with_span t.bus "io_read" go else go ()

let sync_write t ~sector data =
  let go () =
    let start = start_time t in
    let service_us = Disk.write ~start_us:start t.disk ~sector data in
    let sectors = Bytes.length data / sector_size t in
    let sequential = Disk.last_was_streamed t.disk in
    record t ~kind:`Write ~sync:true ~sector ~sectors ~service_us ~sequential;
    Clock.advance_to_us t.clock (start + service_us);
    t.busy_until_us <- Clock.now_us t.clock
  in
  if Bus.enabled t.bus then Bus.with_span t.bus "io_write" go else go ()

let async_write t ~sector data =
  let go () =
    let start = start_time t in
    let service_us = Disk.write ~start_us:start t.disk ~sector data in
    let sectors = Bytes.length data / sector_size t in
    let sequential = Disk.last_was_streamed t.disk in
    record t ~kind:`Write ~sync:false ~sector ~sectors ~service_us ~sequential;
    t.busy_until_us <- start + service_us;
    (* Writer throttling: the application may run ahead of the disk only by
       the write-buffer depth. *)
    if t.busy_until_us - Clock.now_us t.clock > t.max_backlog_us then
      Clock.advance_to_us t.clock (t.busy_until_us - t.max_backlog_us)
  in
  (* The async span's elapsed time is only the throttle wait (if any):
     the op does not block on the device itself. *)
  if Bus.enabled t.bus then Bus.with_span t.bus "io_write_async" go else go ()

let note_clustered_read t ~blocks =
  Metrics.incr t.c_clustered_reads;
  Metrics.add t.c_clustered_read_blocks blocks

let note_clustered_write t ~blocks =
  Metrics.incr t.c_clustered_writes;
  Metrics.add t.c_clustered_write_blocks blocks

let drain t =
  (* Only span an actual wait — a no-op drain would add zero-length spans
     to every sync. *)
  if Bus.enabled t.bus && t.busy_until_us > Clock.now_us t.clock then
    Bus.with_span t.bus "io_drain" (fun () ->
        Clock.advance_to_us t.clock t.busy_until_us)
  else Clock.advance_to_us t.clock t.busy_until_us
let disk_stats t = Disk.stats t.disk
let snapshot_media t = Disk.snapshot t.disk
let restore_media t media = Disk.restore t.disk media

let backlog_us t = max 0 (t.busy_until_us - Clock.now_us t.clock)

let recording t = t.audit <> None

let set_recording t on =
  match (t.audit, on) with
  | None, true ->
      t.audit <- Some (Bus.attach ~filter:is_disk_request t.bus)
  | Some _, true ->
      (* Already recording: keep the prefix.  (Historically this cleared
         the log — a footgun that silently dropped the Figure 1/2 audit
         when tracing was enabled mid-run.) *)
      ()
  | Some sink, false ->
      Bus.detach t.bus sink;
      t.audit <- None
  | None, false -> ()

let request_of_record (r : Event.record) =
  match r.Event.event with
  | Event.Disk_request { kind; sync; sector; sectors; service_us; sequential }
    ->
      Some
        {
          issued_at_us = r.Event.at_us;
          kind = (match kind with Event.Read -> `Read | Event.Write -> `Write);
          sync;
          sector;
          sectors;
          service_us;
          sequential;
        }
  | _ -> None

let requests t =
  match t.audit with
  | None -> []
  | Some sink -> List.filter_map request_of_record (Bus.records sink)
