module Bus = Lfs_obs.Bus
module Event = Lfs_obs.Event
module Metrics = Lfs_obs.Metrics

type request = {
  issued_at_us : int;
  kind : [ `Read | `Write ];
  sync : bool;
  sector : int;
  sectors : int;
  service_us : int;
  sequential : bool;
}

exception Read_failed of { sector : int; attempts : int }

(* The device behind the scheduler: one disk, or a multi-member volume.
   Either way, every member ("lane") has its own busy horizon and request
   queue — a single disk is simply the one-lane case, running the exact
   same code paths. *)
type device = Single of Disk.t | Vol of Volume.t

type lane = {
  l_member : int;
  mutable l_busy_until_us : int;
  mutable l_sched : Sched.t option;
      (* None = immediate issue-order service *)
}

type t = {
  device : device;
  lanes : lane array;
  clock : Clock.t;
  cpu : Cpu_model.t;
  bus : Bus.t;
  metrics : Metrics.t;
  h_read_us : Metrics.histogram;
  h_write_us : Metrics.histogram;
  h_request_sectors : Metrics.histogram;
  h_queue_depth : Metrics.histogram;
  h_queue_wait : Metrics.histogram;
  c_clustered_reads : Metrics.counter;
  c_clustered_read_blocks : Metrics.counter;
  c_clustered_writes : Metrics.counter;
  c_clustered_write_blocks : Metrics.counter;
  c_retries : Metrics.counter;
  c_backoff_us : Metrics.counter;
  c_degraded_reads : Metrics.counter;
  max_backlog_us : int;
  read_attempts : int;
  retry_backoff_us : int;
  mutable max_queue : int;
  mutable audit : Bus.sink option;  (* the legacy request log, as a sink *)
}

let is_disk_request = function Event.Disk_request _ -> true | _ -> false

let make ?(max_backlog_us = 2_000_000) ?(read_attempts = 4)
    ?(retry_backoff_us = 1_000) device metrics nlanes clock cpu =
  if max_backlog_us < 0 then invalid_arg "Io.create: negative backlog";
  if read_attempts < 1 then invalid_arg "Io.create: read_attempts < 1";
  if retry_backoff_us < 0 then invalid_arg "Io.create: negative backoff";
  {
    device;
    lanes =
      Array.init nlanes (fun i ->
          { l_member = i; l_busy_until_us = 0; l_sched = None });
    clock;
    cpu;
    bus = Bus.create ~now:(fun () -> Clock.now_us clock) ();
    metrics;
    h_read_us = Metrics.histogram metrics "io.read_us";
    h_write_us = Metrics.histogram metrics "io.write_us";
    h_request_sectors = Metrics.histogram metrics "io.request_sectors";
    h_queue_depth = Metrics.histogram metrics "io.queue.depth";
    h_queue_wait = Metrics.histogram metrics "io.queue.wait_us";
    c_clustered_reads = Metrics.counter metrics "io.clustered_reads";
    c_clustered_read_blocks = Metrics.counter metrics "io.clustered_read_blocks";
    c_clustered_writes = Metrics.counter metrics "io.clustered_writes";
    c_clustered_write_blocks =
      Metrics.counter metrics "io.clustered_write_blocks";
    c_retries = Metrics.counter metrics "io.retries";
    c_backoff_us = Metrics.counter metrics "io.backoff_us";
    c_degraded_reads = Metrics.counter metrics "io.degraded_reads";
    max_backlog_us;
    read_attempts;
    retry_backoff_us;
    max_queue = 32;
    audit = None;
  }

let create ?max_backlog_us ?read_attempts ?retry_backoff_us disk clock cpu =
  make ?max_backlog_us ?read_attempts ?retry_backoff_us (Single disk)
    (Disk.metrics disk) 1 clock cpu

let of_geometry ?max_backlog_us ?read_attempts ?retry_backoff_us geometry clock
    cpu =
  create ?max_backlog_us ?read_attempts ?retry_backoff_us
    (Disk.create geometry) clock cpu

let of_volume ?max_backlog_us ?read_attempts ?retry_backoff_us volume clock cpu
    =
  make ?max_backlog_us ?read_attempts ?retry_backoff_us (Vol volume)
    (Volume.metrics volume)
    (Volume.members volume)
    clock cpu

let disk t =
  match t.device with Single d -> d | Vol v -> Volume.member_disk v 0

let volume t = match t.device with Single _ -> None | Vol v -> Some v
let members t = Array.length t.lanes

let member_disk t i =
  match t.device with
  | Single d ->
      if i <> 0 then invalid_arg "Io.member_disk: single-disk stack";
      d
  | Vol v -> Volume.member_disk v i

let geometry t =
  match t.device with Single d -> Disk.geometry d | Vol v -> Volume.geometry v

let clock t = t.clock
let cpu t = t.cpu
let bus t = t.bus
let metrics t = t.metrics
let now_us t = Clock.now_us t.clock

let charge_cpu t us = Clock.advance_us t.clock us
let charge_syscall t = charge_cpu t t.cpu.Cpu_model.syscall_us
let charge_copy t ~bytes = charge_cpu t (Cpu_model.copy_us t.cpu ~bytes)
let charge_lookup t = charge_cpu t t.cpu.Cpu_model.lookup_us

let record t ~kind ~sync ~sector ~sectors ~service_us ~sequential =
  Metrics.observe
    (match kind with `Read -> t.h_read_us | `Write -> t.h_write_us)
    service_us;
  Metrics.observe t.h_request_sectors sectors;
  if Bus.enabled t.bus then
    Bus.emit t.bus
      (Event.Disk_request
         {
           kind = (match kind with `Read -> Event.Read | `Write -> Event.Write);
           sync;
           sector;
           sectors;
           service_us;
           sequential;
         })

let sector_size t = (geometry t).Geometry.sector_size

let lane_disk t lane =
  match t.device with
  | Single d -> d
  | Vol v -> Volume.member_disk v lane.l_member

(* The member data path: a single disk is addressed directly, volume
   members only through [Volume] (whose wrappers are the one sanctioned
   raw-device surface besides this module). *)
let dev_read t lane ~start_us ~sector ~count =
  match t.device with
  | Single d -> Disk.read ~start_us d ~sector ~count
  | Vol v -> Volume.read ~start_us v ~member:lane.l_member ~sector ~count

let dev_write t lane ~start_us ~sector data =
  match t.device with
  | Single d -> Disk.write ~start_us d ~sector data
  | Vol v -> Volume.write ~start_us v ~member:lane.l_member ~sector data

(* Without a scheduler the lane serves requests in issue order; a request
   begins when both the caller and the member device are ready. *)
let start_time t lane = max (now_us t) lane.l_busy_until_us

let max_busy t =
  Array.fold_left (fun acc l -> max acc l.l_busy_until_us) 0 t.lanes

let emit_queue t ~action ~kind ~sector ~sectors ~depth ~wait_us =
  if Bus.enabled t.bus then
    Bus.emit t.bus
      (Event.Disk_queue
         {
           action;
           kind = (match kind with `Read -> Event.Read | `Write -> Event.Write);
           sector;
           sectors;
           depth;
           wait_us;
         })

let emit_volume_op t ~op ~sector ~sectors ~runs =
  if Bus.enabled t.bus then
    Bus.emit t.bus (Event.Volume_op { op; sector; sectors; runs })

(* Retry loop shared by the immediate and queued read paths.  A failed
   attempt costs only the retry backoff: the fault hook rejects the
   request before the device computes a service time, so the head never
   moves and the clock advances by the (exponentially growing) wait
   between attempts. *)
let read_with_retries t lane ~start ~sector ~count ~sync =
  let rec attempt n =
    match dev_read t lane ~start_us:(start ()) ~sector ~count with
    | data, service_us ->
        let sequential = Disk.last_was_streamed (lane_disk t lane) in
        record t ~kind:`Read ~sync ~sector ~sectors:count ~service_us
          ~sequential;
        lane.l_busy_until_us <- start () + service_us;
        data
    | exception Disk.Read_fault _ ->
        if n >= t.read_attempts then raise (Read_failed { sector; attempts = n })
        else begin
          Metrics.incr t.c_retries;
          let backoff = t.retry_backoff_us * (1 lsl (n - 1)) in
          Metrics.add t.c_backoff_us backoff;
          Clock.advance_us t.clock backoff;
          attempt (n + 1)
        end
  in
  attempt 1

(* Service one queued request.  The member worked through its queue in
   the background: the request starts when the member is free and the
   request has arrived — time that may already lie in the past by the
   moment the dispatch order is decided (lazy dispatch still charges the
   device as if it ran continuously).  Returns the payload for reads. *)
let dispatch_entry t lane q (e : Sched.entry) =
  let start () = max lane.l_busy_until_us e.Sched.arrival_us in
  let wait_us = start () - e.Sched.arrival_us in
  let depth = Sched.length q in
  let payload =
    match e.Sched.kind with
    | `Write ->
        let data = Option.get e.Sched.data in
        let service_us =
          dev_write t lane ~start_us:(start ()) ~sector:e.Sched.sector data
        in
        record t ~kind:`Write ~sync:e.Sched.sync ~sector:e.Sched.sector
          ~sectors:e.Sched.count ~service_us
          ~sequential:(Disk.last_was_streamed (lane_disk t lane));
        lane.l_busy_until_us <- start () + service_us;
        None
    | `Read ->
        Some
          (read_with_retries t lane ~start ~sector:e.Sched.sector
             ~count:e.Sched.count ~sync:e.Sched.sync)
  in
  Metrics.observe t.h_queue_wait wait_us;
  emit_queue t ~action:`Dispatch ~kind:e.Sched.kind ~sector:e.Sched.sector
    ~sectors:e.Sched.count ~depth ~wait_us;
  payload

(* The oldest entry is always eligible, so a non-empty queue always
   dispatches: no livelock. *)
let dispatch_next t lane q =
  match Sched.select q ~head:(Disk.head_sector (lane_disk t lane)) with
  | None -> None
  | Some e -> Some (e, dispatch_entry t lane q e)

let dispatch_lane t lane =
  match lane.l_sched with
  | None -> ()
  | Some q ->
      let rec go () = if dispatch_next t lane q <> None then go () in
      go ()

let dispatch_all t = Array.iter (dispatch_lane t) t.lanes

(* Dispatch in discipline order until the entry [id] has been serviced;
   returns its read payload.  Requests the discipline ranks ahead of the
   target are serviced first — this is the convoy a synchronous caller
   pays behind a deep queue. *)
let dispatch_until t lane q ~id =
  let rec go () =
    match dispatch_next t lane q with
    | None -> None
    | Some (e, payload) -> if e.Sched.id = id then payload else go ()
  in
  go ()

let enqueue t lane q ~kind ~sync ~sector ~count ~data =
  let e =
    Sched.enqueue q ~kind ~sync ~sector ~count ~data ~arrival_us:(now_us t)
  in
  ignore lane;
  Metrics.observe t.h_queue_depth (Sched.length q);
  emit_queue t ~action:`Enqueue ~kind ~sector ~sectors:count
    ~depth:(Sched.length q) ~wait_us:0;
  e

(* ---- scatter/gather over a volume run's piece map ---- *)

(* Assemble the member-contiguous payload of one write run from the
   logical request buffer.  When the run covers the whole request in
   order (single disk, mirror replica) the original buffer is returned
   as-is — callers that enqueue must copy it then. *)
let gather ~ss data run =
  match run.Volume.pieces with
  | [ (0, len) ] when len * ss = Bytes.length data -> data
  | pieces ->
      let out = Bytes.create (run.Volume.count * ss) in
      let pos = ref 0 in
      List.iter
        (fun (off, len) ->
          Bytes.blit data (off * ss) out (!pos * ss) (len * ss);
          pos := !pos + len)
        pieces;
      out

(* Spread one read run's member-contiguous data back into the logical
   result buffer. *)
let scatter ~ss data run out =
  let pos = ref 0 in
  List.iter
    (fun (off, len) ->
      Bytes.blit data (!pos * ss) out (off * ss) (len * ss);
      pos := !pos + len)
    run.Volume.pieces

(* ---- per-run service, shared by every request path ---- *)

(* One read run on one lane, honouring that lane's queue if present. *)
let lane_read_run t lane ~sector ~count ~sync =
  match lane.l_sched with
  | None ->
      read_with_retries t lane ~start:(fun () -> start_time t lane) ~sector
        ~count ~sync
  | Some q ->
      let e = enqueue t lane q ~kind:`Read ~sync ~sector ~count ~data:None in
      (match dispatch_until t lane q ~id:e.Sched.id with
      | Some d -> d
      | None -> assert false)

(* One synchronous write run on one lane (payload already gathered and
   owned by the caller). *)
let lane_sync_write_run t lane ~sector data =
  match lane.l_sched with
  | None ->
      let start = start_time t lane in
      let service_us = dev_write t lane ~start_us:start ~sector data in
      let sectors = Bytes.length data / sector_size t in
      let sequential = Disk.last_was_streamed (lane_disk t lane) in
      record t ~kind:`Write ~sync:true ~sector ~sectors ~service_us ~sequential;
      lane.l_busy_until_us <- start + service_us
  | Some q ->
      let count = Bytes.length data / sector_size t in
      let e =
        enqueue t lane q ~kind:`Write ~sync:true ~sector ~count
          ~data:(Some data)
      in
      ignore (dispatch_until t lane q ~id:e.Sched.id : bytes option)

(* One asynchronous write run on one lane.  [owned] says whether [data]
   may be handed to the queue without copying. *)
let lane_async_write_run t lane ~sector ~owned data =
  match lane.l_sched with
  | None ->
      let start = start_time t lane in
      let service_us = dev_write t lane ~start_us:start ~sector data in
      let sectors = Bytes.length data / sector_size t in
      let sequential = Disk.last_was_streamed (lane_disk t lane) in
      record t ~kind:`Write ~sync:false ~sector ~sectors ~service_us
        ~sequential;
      lane.l_busy_until_us <- start + service_us
  | Some q ->
      let count = Bytes.length data / sector_size t in
      (* The queue owns the payload from here: copy so a caller reusing
         its buffer cannot retroactively change a pending write. *)
      let payload = if owned then data else Bytes.copy data in
      let (_ : Sched.entry) =
        enqueue t lane q ~kind:`Write ~sync:false ~sector ~count
          ~data:(Some payload)
      in
      (* Bounded queue: past [max_queue] pending requests the member must
         make room before the caller may continue. *)
      while Sched.length q > t.max_queue do
        ignore (dispatch_next t lane q : (Sched.entry * bytes option) option)
      done

(* ---- mirror read load balancing ---- *)

(* Replicas ranked by how soon they could serve the request: shallowest
   queue first, then earliest busy horizon, then closest head, then
   member index (deterministic tie-break). *)
let mirror_order t ~sector =
  let score lane =
    let qlen = match lane.l_sched with None -> 0 | Some q -> Sched.length q in
    let head = Disk.head_sector (lane_disk t lane) in
    (qlen, max 0 (lane.l_busy_until_us - now_us t), abs (head - sector),
     lane.l_member)
  in
  List.sort
    (fun a b -> compare (score a) (score b))
    (Array.to_list t.lanes)

(* A failed replica is transparently retried on the next-best member;
   only when every replica exhausts its retry budget does the failure
   surface.  Each fail-over is counted in [io.degraded_reads]. *)
let mirror_read t ~sector ~count ~sync =
  let rec go last = function
    | [] -> (
        match last with Some e -> raise e | None -> assert false)
    | lane :: rest -> (
        match lane_read_run t lane ~sector ~count ~sync with
        | data -> (data, lane)
        | exception (Read_failed _ as e) ->
            if rest <> [] then Metrics.incr t.c_degraded_reads;
            go (Some e) rest)
  in
  go None (mirror_order t ~sector)

(* ---- public request paths ---- *)

let sync_read t ~sector ~count =
  let go () =
    match t.device with
    | Single _ ->
        let lane = t.lanes.(0) in
        let data = lane_read_run t lane ~sector ~count ~sync:true in
        Clock.advance_to_us t.clock lane.l_busy_until_us;
        data
    | Vol v -> (
        match Volume.policy v with
        | Volume.Mirror ->
            emit_volume_op t ~op:"read" ~sector ~sectors:count ~runs:1;
            let data, lane = mirror_read t ~sector ~count ~sync:true in
            Clock.advance_to_us t.clock lane.l_busy_until_us;
            data
        | Volume.Stripe _ | Volume.Log_stripe _ ->
            let runs = Volume.map_read v ~sector ~count in
            emit_volume_op t ~op:"read" ~sector ~sectors:count
              ~runs:(List.length runs);
            let ss = sector_size t in
            let out = Bytes.create (count * ss) in
            let finish = ref 0 in
            List.iter
              (fun (r : Volume.run) ->
                let lane = t.lanes.(r.Volume.member) in
                let data =
                  lane_read_run t lane ~sector:r.Volume.sector
                    ~count:r.Volume.count ~sync:true
                in
                scatter ~ss data r out;
                finish := max !finish lane.l_busy_until_us)
              runs;
            (* The runs were issued together and serviced in parallel:
               the caller resumes when the slowest member finishes. *)
            Clock.advance_to_us t.clock !finish;
            out)
  in
  (* The span covers the retry loop too: backoff waits are disk time. *)
  if Bus.enabled t.bus then Bus.with_span t.bus "io_read" go else go ()

let sync_write t ~sector data =
  let go () =
    match t.device with
    | Single _ ->
        let lane = t.lanes.(0) in
        lane_sync_write_run t lane ~sector data;
        Clock.advance_to_us t.clock lane.l_busy_until_us
    | Vol v ->
        let count = Bytes.length data / sector_size t in
        let runs = Volume.map_write v ~sector ~count in
        emit_volume_op t ~op:"write" ~sector ~sectors:count
          ~runs:(List.length runs);
        let ss = sector_size t in
        let finish = ref 0 in
        List.iter
          (fun (r : Volume.run) ->
            let lane = t.lanes.(r.Volume.member) in
            lane_sync_write_run t lane ~sector:r.Volume.sector
              (gather ~ss data r);
            finish := max !finish lane.l_busy_until_us)
          runs;
        Clock.advance_to_us t.clock !finish
  in
  if Bus.enabled t.bus then Bus.with_span t.bus "io_write" go else go ()

let async_write t ~sector data =
  let go () =
    (match t.device with
    | Single _ ->
        lane_async_write_run t t.lanes.(0) ~sector ~owned:false data
    | Vol v ->
        let count = Bytes.length data / sector_size t in
        let runs = Volume.map_write v ~sector ~count in
        emit_volume_op t ~op:"write_async" ~sector ~sectors:count
          ~runs:(List.length runs);
        let ss = sector_size t in
        List.iter
          (fun (r : Volume.run) ->
            let payload = gather ~ss data r in
            lane_async_write_run t
              t.lanes.(r.Volume.member)
              ~sector:r.Volume.sector ~owned:(payload != data) payload)
          runs);
    (* Writer throttling: the application may run ahead of the disk only
       by the write-buffer depth — measured against the slowest member. *)
    if max_busy t - Clock.now_us t.clock > t.max_backlog_us then
      Clock.advance_to_us t.clock (max_busy t - t.max_backlog_us)
  in
  (* The async span's elapsed time is only the throttle wait (if any):
     the op does not block on the device itself. *)
  if Bus.enabled t.bus then Bus.with_span t.bus "io_write_async" go else go ()

let note_clustered_read t ~blocks =
  Metrics.incr t.c_clustered_reads;
  Metrics.add t.c_clustered_read_blocks blocks

let note_clustered_write t ~blocks =
  Metrics.incr t.c_clustered_writes;
  Metrics.add t.c_clustered_write_blocks blocks

let queue_depth t =
  Array.fold_left
    (fun acc lane ->
      acc + match lane.l_sched with None -> 0 | Some q -> Sched.length q)
    0 t.lanes

let drain t =
  let pending = queue_depth t > 0 || max_busy t > Clock.now_us t.clock in
  let go () =
    dispatch_all t;
    Clock.advance_to_us t.clock (max_busy t)
  in
  (* Only span an actual wait — a no-op drain would add zero-length spans
     to every sync. *)
  if Bus.enabled t.bus && pending then Bus.with_span t.bus "io_drain" go
  else go ()

let scheduler t = Option.map Sched.discipline t.lanes.(0).l_sched

let set_scheduler ?(max_queue = 32) t d =
  if max_queue < 1 then invalid_arg "Io.set_scheduler: max_queue < 1";
  (* Flush any pending queues under the old policy before switching, so a
     policy change can never reorder requests issued before it. *)
  dispatch_all t;
  t.max_queue <- max_queue;
  Array.iter
    (fun lane ->
      lane.l_sched <-
        (match d with None -> None | Some disc -> Some (Sched.create disc)))
    t.lanes

let disk_stats t =
  match t.device with
  | Single d -> Disk.stats d
  | Vol v ->
      (* Aggregate member view, matching the shared disk.* counters. *)
      let acc =
        {
          Disk.reads = 0;
          writes = 0;
          sectors_read = 0;
          sectors_written = 0;
          seeks = 0;
          busy_us = 0;
        }
      in
      for i = 0 to Volume.members v - 1 do
        let s = Disk.stats (Volume.member_disk v i) in
        acc.Disk.reads <- acc.Disk.reads + s.Disk.reads;
        acc.Disk.writes <- acc.Disk.writes + s.Disk.writes;
        acc.Disk.sectors_read <- acc.Disk.sectors_read + s.Disk.sectors_read;
        acc.Disk.sectors_written <-
          acc.Disk.sectors_written + s.Disk.sectors_written;
        acc.Disk.seeks <- acc.Disk.seeks + s.Disk.seeks;
        acc.Disk.busy_us <- acc.Disk.busy_us + s.Disk.busy_us
      done;
      acc

let member_stats t i = Disk.stats (member_disk t i)

let snapshot_media t =
  (* Pending queued writes belong on the snapshot: flush them to every
     member (extending its busy horizon) without advancing the clock. *)
  dispatch_all t;
  match t.device with
  | Single d -> Disk.snapshot d
  | Vol v -> Volume.snapshot v

let restore_media t media =
  Array.iter
    (fun lane -> match lane.l_sched with Some q -> Sched.clear q | None -> ())
    t.lanes;
  match t.device with
  | Single d -> Disk.restore d media
  | Vol v -> Volume.restore v media

let backlog_us t = max 0 (max_busy t - Clock.now_us t.clock)

let recording t = t.audit <> None

let set_recording t on =
  match (t.audit, on) with
  | None, true ->
      t.audit <- Some (Bus.attach ~filter:is_disk_request t.bus)
  | Some _, true ->
      (* Already recording: keep the prefix.  (Historically this cleared
         the log — a footgun that silently dropped the Figure 1/2 audit
         when tracing was enabled mid-run.) *)
      ()
  | Some sink, false ->
      Bus.detach t.bus sink;
      t.audit <- None
  | None, false -> ()

let request_of_record (r : Event.record) =
  match r.Event.event with
  | Event.Disk_request { kind; sync; sector; sectors; service_us; sequential }
    ->
      Some
        {
          issued_at_us = r.Event.at_us;
          kind = (match kind with Event.Read -> `Read | Event.Write -> `Write);
          sync;
          sector;
          sectors;
          service_us;
          sequential;
        }
  | _ -> None

let requests t =
  match t.audit with
  | None -> []
  | Some sink -> List.filter_map request_of_record (Bus.records sink)
