(** A multi-disk volume: N member {!Disk}s composed behind the same
    sector-addressed interface as a single device.

    The volume owns the address map from the logical sector space the
    file systems see to [(member, member-sector)] pairs, and the member
    disks themselves; {!Io} owns all timing (per-member busy horizons and
    request queues).  Three policies:

    - {b Stripe} (RAID-0): the logical space is cut into [chunk_sectors]
      chunks dealt round-robin across members — chunk [k] lives on member
      [k mod n] at member-chunk [k / n].  Capacity is the sum of the
      members; a request crossing chunk boundaries splits into one
      contiguous run per member, serviced in parallel.
    - {b Mirror} (RAID-1): every member holds a full replica.  Writes fan
      out to all members; reads are served by one member of the caller's
      choice (load-balancing lives in {!Io}, which sees queue depths and
      head positions).  Capacity is one member.
    - {b Log_stripe}: the LFS-specific layout.  Identical chunked address
      map with chunk [stripe_sectors / n], but sized so one whole
      [stripe_sectors] write (a segment, when the file system aligns its
      log to [stripe_sectors]) splits into exactly one run of
      [stripe_sectors / n] contiguous sectors per member.  Consecutive
      segment writes advance every member by one chunk, so each member's
      address stream stays strictly sequential — segment bandwidth scales
      with spindle count while per-member seek counts stay at the
      single-disk level.

    All members share one metrics registry: each registers its own
    [disk.<i>.*] family and contributes to the aggregate [disk.*]
    counters (see {!Disk.create}), so existing name-based consumers keep
    working unchanged on volumes. *)

type policy =
  | Stripe of { chunk_sectors : int }
  | Mirror
  | Log_stripe of { stripe_sectors : int }

val policy_name : policy -> string
(** ["stripe"] / ["mirror"] / ["log_stripe"] — stable labels for bench
    JSON and CLI flags (chunk sizes are separate knobs). *)

type run = {
  member : int;
  sector : int;  (** member-local start sector *)
  count : int;
  pieces : (int * int) list;
      (** scatter/gather map: [(logical offset within the request,
          sectors)] fragments in member-sector order, summing to
          [count].  A boundary-crossing request is contiguous on each
          member but interleaved in logical space, so the payload must be
          gathered (writes) or scattered (reads) piecewise. *)
}

type t

val create : policy -> members:int -> Geometry.t -> t
(** [create policy ~members g] builds [members] member disks, each with
    geometry [g], on one shared metrics registry.

    @raise Invalid_argument if [members < 1], a chunk size is
    non-positive, [Log_stripe] stripe size is not divisible by
    [members], or a member is too small to hold one chunk. *)

val policy : t -> policy
val members : t -> int

val geometry : t -> Geometry.t
(** The logical geometry the file system mounts: the member geometry with
    [sectors] replaced by the volume's logical capacity (striped: sum of
    whole chunks across members; mirrored: one member).  Per-request
    timing never uses this — it is computed member-locally by each
    {!Disk}. *)

val member_geometry : t -> Geometry.t
val member_disk : t -> int -> Disk.t
val metrics : t -> Lfs_obs.Metrics.t

val chunk_sectors : t -> int option
(** The striping chunk in sectors ([None] for mirrors). *)

(** {1 Address mapping} *)

val map_write : t -> sector:int -> count:int -> run list
(** Split a logical write into per-member runs, ordered by first logical
    offset.  Mirrors return one full-range run per member.
    @raise Invalid_argument if the logical range is out of bounds. *)

val map_read : ?prefer:int -> t -> sector:int -> count:int -> run list
(** Same split for reads.  Mirrors return a single run on member
    [prefer] (default 0) — the caller picks the replica. *)

val locate : t -> sector:int -> int * int
(** [(member, member_sector)] of one logical sector (mirrors: member 0's
    replica). *)

val logical_of : t -> member:int -> msec:int -> int
(** Inverse of {!locate} for striped policies; identity on mirrors.  Not
    bounds-checked against the member's last partial chunk. *)

(** {1 Member I/O}

    The sanctioned data path to the member devices — {!Io} drives these
    with run-level timing; nothing above {!Io} touches them. *)

val read :
  ?start_us:int -> t -> member:int -> sector:int -> count:int -> bytes * int

val write : ?start_us:int -> t -> member:int -> sector:int -> bytes -> int

(** {1 Whole-volume state} *)

val snapshot : t -> bytes
(** Member media concatenated in member order — deterministic, so crash
    sweeps and scenario replays stay byte-identical on volumes. *)

val restore : t -> bytes -> unit
(** Split a {!snapshot} back onto the members (head state reset).
    @raise Invalid_argument on size mismatch. *)

val crashed : t -> bool
(** Whether any member is down ({!Disk.crashed}). *)

val clear_crash : t -> unit
(** Bring every member back up. *)
