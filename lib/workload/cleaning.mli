(** The segment-cleaning benchmark of §5.3 (Figure 5).

    Fill an LFS disk with small files, delete a fraction so every segment
    is left at a target utilization, then clean that whole dirty
    population once and measure the rate at which clean segments are
    generated.  This is the paper's deliberate worst case: all segments
    equally fragmented. *)

type point = {
  utilization : float;  (** mean utilization of the cleaned segments *)
  clean_kb_per_sec : float;
      (** gross rate at which segments become clean (the figure's axis) *)
  net_kb_per_sec : float;
      (** new writable space per second: gross minus the live bytes the
          cleaner had to rewrite — "full segments yield almost no free
          space" *)
  segments_cleaned : int;
  write_cost : float;
      (** cumulative write cost (§3) after the pass *)
}

val run :
  ?file_size:int ->
  ?fill_fraction:float ->
  ?seed:int ->
  target_utilization:float ->
  Lfs_core.Fs.t ->
  point
(** One measurement on a fresh file system.
    @raise Invalid_argument if [target_utilization] is outside [0, 1]. *)

val sweep :
  ?file_size:int ->
  ?fill_fraction:float ->
  ?seed:int ->
  utilizations:float list ->
  (unit -> Lfs_core.Fs.t) ->
  point list
(** Figure 5's x-axis sweep; each point gets a fresh file system from the
    factory. *)
