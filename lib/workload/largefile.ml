(** The large-file benchmark of §5.2 (Figure 4).

    Five phases over one large file with 8 KB requests: sequential write,
    sequential read, random write, random read, and a final sequential
    re-read (which is where update-in-place beats a log after random
    updates).  Random offsets sample with replacement, as in the paper
    (its random-write rate beat sequential because of cache overwrites).
    Rates are KB per second of simulated time; write phases include the
    trailing sync. *)

type result = {
  label : string;
  file_mb : int;
  seq_write_kbs : float;
  seq_read_kbs : float;
  rand_write_kbs : float;
  rand_read_kbs : float;
  seq_reread_kbs : float;
  phases : (string * Lfs_obs.Metrics.snapshot) list;
      (** registry delta per measured phase, in phase order *)
}

let request = 8192

let kbs bytes us =
  if us <= 0 then infinity
  else float_of_int bytes /. 1024.0 /. (float_of_int us /. 1e6)

let run ?(file_mb = 100) ?(seed = 17) inst =
  let path = "/bigfile" in
  let size = file_mb * 1024 * 1024 in
  let nreq = size / request in
  Driver.create inst path;
  let seq_write_us, seq_write_m =
    Driver.observed inst (fun () ->
        for i = 0 to nreq - 1 do
          Driver.write inst path ~off:(i * request)
            (Driver.content ~seed:i request)
        done;
        Driver.sync inst)
  in
  Driver.flush_caches inst;
  let seq_read_us, seq_read_m =
    Driver.observed inst (fun () ->
        for i = 0 to nreq - 1 do
          ignore (Driver.read inst path ~off:(i * request) ~len:request)
        done)
  in
  Driver.flush_caches inst;
  let rng = Lfs_util.Rng.create seed in
  let rand_write_us, rand_write_m =
    Driver.observed inst (fun () ->
        for i = 0 to nreq - 1 do
          let off = Lfs_util.Rng.int rng nreq * request in
          Driver.write inst path ~off (Driver.content ~seed:(1000 + i) request)
        done;
        Driver.sync inst)
  in
  Driver.flush_caches inst;
  let rand_read_us, rand_read_m =
    Driver.observed inst (fun () ->
        for _ = 0 to nreq - 1 do
          let off = Lfs_util.Rng.int rng nreq * request in
          ignore (Driver.read inst path ~off ~len:request)
        done)
  in
  Driver.flush_caches inst;
  let seq_reread_us, seq_reread_m =
    Driver.observed inst (fun () ->
        for i = 0 to nreq - 1 do
          ignore (Driver.read inst path ~off:(i * request) ~len:request)
        done)
  in
  let result =
    {
      label = Driver.label inst;
      file_mb;
      seq_write_kbs = kbs size seq_write_us;
      seq_read_kbs = kbs size seq_read_us;
      rand_write_kbs = kbs size rand_write_us;
      rand_read_kbs = kbs size rand_read_us;
      seq_reread_kbs = kbs size seq_reread_us;
      phases =
        [
          ("seq_write", seq_write_m);
          ("seq_read", seq_read_m);
          ("rand_write", rand_write_m);
          ("rand_read", rand_read_m);
          ("seq_reread", seq_reread_m);
        ];
    }
  in
  Driver.sanitize inst;
  result
