(** Exhaustive crash-point recovery sweeps.

    The harness runs a workload once on a fault-free stack to count its
    write-request boundaries, then for each boundary [k] replays it on a
    fresh stack whose disk loses power at exactly the [k]-th write
    (optionally tearing that write to a seeded sector prefix), remounts
    — LFS through checkpoint + roll-forward, FFS through its fsck-style
    {!Lfs_ffs.Fs.repair} full-disk scan — and asserts the recovered
    state against a durable model derived from the op stream: data made
    durable by the last completed [sync] must survive bit-for-bit,
    deletes synced before the crash must stay deleted, and anything in
    between may be lost but never corrupt (§4.4 of the paper: crash
    recovery loses only the tail of the log).

    Two further scenarios exercise the remaining fault kinds:
    {!read_fault_run} (transient read errors absorbed by the {!Lfs_disk.Io}
    retry/backoff path) and {!bad_sector_run} (a sticky bad sector over
    LFS checkpoint region A, forcing recovery onto region B). *)

type op =
  | Mkdir of string
  | Create of string
  | Write of { path : string; seed : int; len : int }
      (** Contents are [Driver.content ~seed len]; each path is written
          at most once so synced content is unambiguous. *)
  | Delete of string
  | Sync

type system = [ `Lfs | `Ffs ]

val system_name : system -> string

val smallfile : ?files:int -> ?size:int -> unit -> op list
(** A small smallfile-style workload: two directories, [files] files
    created and written across interleaved syncs, one synced delete. *)

(** {1 Crash-point sweep} *)

type point = {
  boundary : int;  (** the write request the disk died on *)
  crashed : bool;  (** whether the workload actually reached it *)
  recovery_us : int;  (** simulated time spent remounting *)
  recovery_reads : int;  (** disk read requests spent remounting *)
}

type outcome = {
  label : string;
  torn : bool;
  total_writes : int;  (** write boundaries in the fault-free run *)
  boundaries_tested : int;
  faults : int;  (** faults injected across all replays *)
  violations : string list;  (** empty means recovery held everywhere *)
  points : point list;
}

val sweep :
  ?volume:Lfs_disk.Volume.policy * int ->
  ?torn:bool ->
  ?max_boundaries:int ->
  ?seed:int ->
  system ->
  op list ->
  outcome
(** Exhaustive when the workload issues at most [max_boundaries]
    (default 48) writes; above that, a seeded sample of boundaries.
    [torn] tears the crashing write instead of dropping it — meaningful
    for LFS, whose log never overwrites live data; FFS update-in-place
    can legitimately lose durable directory entries to a torn overwrite
    (that being fsck's classic lost+found case), so torn sweeps assert
    only on LFS.

    [volume] runs every stack on a volume of [(policy, members)] 16 MB
    member disks instead of a single disk ({!Io.snapshot_media} keeps
    replays deterministic on volumes).
    @raise Invalid_argument for mirror volumes: a mid-fan-out crash
    leaves replicas divergent, making later load-balanced reads
    semantically unspecified — only striped policies can be swept. *)

(** {1 Read-fault scenarios} *)

type read_fault_outcome = {
  retries : int;  (** [io.retries] after the run *)
  backoff_us : int;  (** [io.backoff_us] after the run *)
  read_errors : int;  (** transient faults injected *)
  rf_violations : string list;
}

val read_fault_run :
  ?volume:Lfs_disk.Volume.policy * int ->
  ?rate:float ->
  ?burst:int ->
  ?seed:int ->
  system ->
  op list ->
  read_fault_outcome
(** Run the workload, drop caches, read every file back and verify
    integrity while every read may transiently fail: all faults must be
    absorbed by retry/backoff ([burst] must stay below the retry
    budget). *)

type bad_sector_outcome = {
  bad_sector_reads : int;
  bs_violations : string list;
}

val bad_sector_run : ?seed:int -> unit -> bad_sector_outcome
(** Sync a workload, mark the first sector of LFS checkpoint region A
    sticky-bad, remount: recovery must fall back to region B and the
    full durable state must survive. *)
