(** Benchmark environments: a simulated WREN IV disk, a Sun-4/260 CPU
    model, and a freshly formatted file system — the §5 test setup. *)

val default_disk_mb : int

val make_io :
  ?disk_mb:int -> ?cpu:Lfs_disk.Cpu_model.t -> unit -> Lfs_disk.Io.t

val make_volume_io :
  ?disk_mb:int ->
  ?cpu:Lfs_disk.Cpu_model.t ->
  policy:Lfs_disk.Volume.policy ->
  members:int ->
  unit ->
  Lfs_disk.Io.t
(** Like {!make_io}, but over a {!Lfs_disk.Volume} of [members] WREN IV
    disks of [disk_mb] each (so striped logical capacity scales with the
    member count — the §5 setup per spindle). *)

val lfs_on :
  Lfs_disk.Io.t ->
  ?config:Lfs_core.Config.t ->
  unit ->
  Lfs_vfs.Fs_intf.instance
(** Format and mount LFS on an existing I/O stack — how volume-backed
    instances are built ({!make_volume_io}).  The file system sees only
    [Io.geometry], so it runs unmodified on a volume. *)

val ffs_on :
  Lfs_disk.Io.t ->
  ?config:Lfs_ffs.Config.t ->
  unit ->
  Lfs_vfs.Fs_intf.instance

val lfs :
  ?disk_mb:int ->
  ?cpu:Lfs_disk.Cpu_model.t ->
  ?config:Lfs_core.Config.t ->
  unit ->
  Lfs_vfs.Fs_intf.instance
(** A formatted, mounted LFS on fresh simulated hardware. *)

val ffs :
  ?disk_mb:int ->
  ?cpu:Lfs_disk.Cpu_model.t ->
  ?config:Lfs_ffs.Config.t ->
  unit ->
  Lfs_vfs.Fs_intf.instance

val both :
  ?disk_mb:int ->
  ?cpu:Lfs_disk.Cpu_model.t ->
  unit ->
  Lfs_vfs.Fs_intf.instance list
(** Both systems on identical hardware, LFS first — the comparison pair
    of every figure in §5. *)
