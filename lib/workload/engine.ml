(* Concurrent multi-client engine over simulated time.

   A discrete-event loop: each client is a closed-loop job source with
   its own deterministic RNG, op mix and think-time model, all
   multiplexed over one FS instance.  The loop repeatedly picks the
   client whose next operation is due earliest, advances the simulated
   clock to that instant, and runs the operation to completion — this is
   the ONLY place in lib/workload that moves the clock (the
   workload-clock lint rule enforces it).

   Latency is measured from the instant the client became ready to the
   instant its operation completed, so it includes time spent blocked
   behind other clients' operations and behind the device queue: the
   convoy a synchronous write path inflicts on everyone is visible in
   the per-client p99, which is the paper's §4 claim made measurable. *)

module Io = Lfs_disk.Io
module Clock = Lfs_disk.Clock
module Sched = Lfs_disk.Sched
module Metrics = Lfs_obs.Metrics
module Bus = Lfs_obs.Bus
module Event = Lfs_obs.Event
module Json = Lfs_obs.Json
module Rng = Lfs_util.Rng
module Zipf = Lfs_util.Zipf

type think = Constant of int | Uniform of int * int

type config = {
  clients : int;
  ops_per_client : int;
  think : think;
  seed : int;
  dirs : int;
  working_set : int;  (* target live-file population *)
  zipf_theta : float;
  read_fraction : float;
  overwrite_fraction : float;
  delete_fraction : float;  (* the remainder creates files *)
  discipline : Sched.discipline option;
  max_queue : int;
}

let default =
  {
    clients = 4;
    ops_per_client = 200;
    think = Uniform (1_000, 20_000);
    seed = 11;
    dirs = 8;
    working_set = 150;
    zipf_theta = 0.9;
    read_fraction = 0.40;
    overwrite_fraction = 0.30;
    delete_fraction = 0.10;
    discipline = Some Sched.Fcfs;
    max_queue = 32;
  }

type client_stat = {
  client : int;
  ops : int;
  mean_us : float;
  p50_us : int;
  p99_us : int;
  max_us : int;
}

type result = {
  label : string;
  discipline : string;
  clients : int;
  total_ops : int;
  elapsed_us : int;
  ops_per_sec : float;
  mean_us : float;
  p50_us : int;
  p99_us : int;
  per_client : client_stat list;
  mean_queue_depth : float;
  mean_queue_wait_us : float;
  mean_positioning_us : float;
}

let validate (c : config) =
  if c.clients < 1 then Driver.fail "Engine: clients < 1";
  if c.ops_per_client < 1 then Driver.fail "Engine: ops_per_client < 1";
  if c.dirs < 1 then Driver.fail "Engine: dirs < 1";
  if c.working_set < 1 then Driver.fail "Engine: working_set < 1";
  if c.read_fraction < 0.0 || c.overwrite_fraction < 0.0
     || c.delete_fraction < 0.0
     || c.read_fraction +. c.overwrite_fraction +. c.delete_fraction > 1.0
  then Driver.fail "Engine: op-mix fractions out of range";
  (match c.think with
  | Constant us -> if us < 0 then Driver.fail "Engine: negative think time"
  | Uniform (lo, hi) ->
      if lo < 0 || hi < lo then Driver.fail "Engine: bad think-time range");
  if c.max_queue < 1 then Driver.fail "Engine: max_queue < 1"

let sample_think think rng =
  match think with
  | Constant us -> us
  | Uniform (lo, hi) -> if hi = lo then lo else lo + Rng.int rng (hi - lo)

(* Small-file sizes, skewed toward the office/engineering profile. *)
let sample_size rng =
  let r = Rng.float rng 1.0 in
  if r < 0.5 then 512 + Rng.int rng 3_584
  else if r < 0.85 then 4_096 + Rng.int rng 8_192
  else 12_288 + Rng.int rng 53_248

type client = {
  id : int;
  rng : Rng.t;
  hist : Metrics.histogram;  (* standalone: per-client latencies *)
  mutable ready_us : int;
  mutable remaining : int;
}

(* Shared file population, newest first (Zipf rank 0 = youngest = hot,
   as in the Berkeley trace study). *)
type population = {
  zipf : Zipf.t;
  mutable live : string array;
  mutable next_id : int;
  dirs : int;
}

let fresh_path pop =
  let id = pop.next_id in
  pop.next_id <- id + 1;
  Printf.sprintf "/eng%03d/f%06d" (id mod pop.dirs) id

let pick_live pop rng =
  let n = Array.length pop.live in
  if n = 0 then None
  else Some pop.live.(min (n - 1) (Zipf.sample pop.zipf rng))

let remove_at pop idx =
  let n = Array.length pop.live in
  pop.live <-
    Array.append (Array.sub pop.live 0 idx)
      (Array.sub pop.live (idx + 1) (n - idx - 1))

let do_create inst pop rng =
  let path = fresh_path pop in
  let size = sample_size rng in
  Driver.create inst path;
  Driver.write inst path ~off:0 (Driver.content ~seed:(Rng.int rng 1_000_000) size);
  pop.live <- Array.append [| path |] pop.live

let do_delete_cold inst pop rng =
  let n = Array.length pop.live in
  let idx = n - 1 - min (n - 1) (Rng.int rng (max 1 (n / 2))) in
  Driver.delete inst pop.live.(idx);
  remove_at pop idx

(* One operation of client [c]: name + effect.  The mix degrades to
   [create] while the population is empty, and caps the population at
   twice the working set so the image reaches a steady state. *)
let run_op cfg inst pop (c : client) =
  let r = Rng.float c.rng 1.0 in
  let live_n = Array.length pop.live in
  if r < cfg.read_fraction && live_n > 0 then begin
    match pick_live pop c.rng with
    | Some path ->
        let stat = Driver.stat inst path in
        ignore
          (Driver.read inst path ~off:0 ~len:stat.Lfs_vfs.Fs_intf.size : bytes);
        "read"
    | None -> assert false
  end
  else if r < cfg.read_fraction +. cfg.overwrite_fraction && live_n > 0 then begin
    match pick_live pop c.rng with
    | Some path ->
        let size = sample_size c.rng in
        Driver.write inst path ~off:0
          (Driver.content ~seed:(Rng.int c.rng 1_000_000) size);
        "overwrite"
    | None -> assert false
  end
  else if
    r < cfg.read_fraction +. cfg.overwrite_fraction +. cfg.delete_fraction
    && live_n > 0
  then begin
    do_delete_cold inst pop c.rng;
    "delete"
  end
  else if live_n >= 2 * cfg.working_set then begin
    do_delete_cold inst pop c.rng;
    "delete"
  end
  else begin
    do_create inst pop c.rng;
    "create"
  end

(* The next event: the client with the earliest ready time (ties break
   toward the lower client id) that still has operations left. *)
let next_client clients =
  Array.fold_left
    (fun best c ->
      if c.remaining = 0 then best
      else
        match best with
        | None -> Some c
        | Some b ->
            if c.ready_us < b.ready_us then Some c
            else best (* equal ready: earlier id wins, array order *))
    None clients

let hist_of snap name =
  match Metrics.find snap name with
  | Some (Metrics.Histogram h) -> Some h
  | _ -> None

let counter_of snap name =
  Option.value ~default:0 (Metrics.counter_value snap name)

let run ?(config = default) inst =
  validate config;
  let io = Driver.io inst in
  let metrics = Driver.metrics inst in
  let bus = Driver.bus inst in
  let root_rng = Rng.create config.seed in

  (* Unmeasured setup: directory fan-out and half the working set, so
     reads have targets from the first event on. *)
  let pop =
    {
      zipf = Zipf.create ~n:(max 1 config.working_set) ~theta:config.zipf_theta;
      live = [||];
      next_id = 0;
      dirs = config.dirs;
    }
  in
  for d = 0 to config.dirs - 1 do
    Driver.mkdir inst (Printf.sprintf "/eng%03d" d)
  done;
  let setup_rng = Rng.split root_rng in
  for _ = 1 to config.working_set / 2 do
    do_create inst pop setup_rng
  done;
  Driver.sync inst;

  (* Clients start after setup, staggered by one think time each. *)
  let t_setup_done = Driver.now_us inst in
  let clients =
    Array.init config.clients (fun i ->
        let rng = Rng.split root_rng in
        {
          id = i;
          rng;
          hist = Metrics.standalone_histogram ();
          ready_us = t_setup_done + sample_think config.think rng;
          remaining = config.ops_per_client;
        })
  in

  Io.set_scheduler io ~max_queue:config.max_queue config.discipline;
  Metrics.reset_prefix metrics "engine.";
  let h_agg = Metrics.histogram metrics "engine.op_us" in
  let before = Metrics.snapshot metrics in
  let t0 = Driver.now_us inst in

  let rec loop () =
    match next_client clients with
    | None -> ()
    | Some c ->
        (* Time moves only here: jump to the next event. *)
        Clock.advance_to_us (Io.clock io) c.ready_us;
        let op = run_op config inst pop c in
        let now = Driver.now_us inst in
        let latency_us = now - c.ready_us in
        Metrics.observe c.hist latency_us;
        Metrics.observe h_agg latency_us;
        if Bus.enabled bus then
          Bus.emit bus (Event.Client_op { client = c.id; op; latency_us });
        c.remaining <- c.remaining - 1;
        c.ready_us <- now + sample_think config.think c.rng;
        loop ()
  in
  loop ();
  Driver.sync inst;

  let elapsed_us = Driver.now_us inst - t0 in
  let window = Metrics.diff ~before ~after:(Metrics.snapshot metrics) in
  Io.set_scheduler io None;
  Driver.sanitize inst;

  let total_ops = config.clients * config.ops_per_client in
  let q = Option.value ~default:0 in
  let per_client =
    Array.to_list
      (Array.map
         (fun c ->
           let h = Metrics.snapshot_histogram c.hist in
           {
             client = c.id;
             ops = h.Metrics.count;
             mean_us = Metrics.mean h;
             p50_us = q (Metrics.quantile h 0.5);
             p99_us = q (Metrics.quantile h 0.99);
             max_us = (if h.Metrics.count = 0 then 0 else h.Metrics.max_v);
           })
         clients)
  in
  let agg = Metrics.snapshot_histogram h_agg in
  let requests =
    counter_of window "disk.reads" + counter_of window "disk.writes"
  in
  {
    label = Driver.label inst;
    discipline =
      (match config.discipline with
      | Some d -> Sched.discipline_name d
      | None -> "immediate");
    clients = config.clients;
    total_ops;
    elapsed_us;
    ops_per_sec =
      (if elapsed_us <= 0 then infinity
       else float_of_int total_ops /. (float_of_int elapsed_us /. 1e6));
    mean_us = Metrics.mean agg;
    p50_us = q (Metrics.quantile agg 0.5);
    p99_us = q (Metrics.quantile agg 0.99);
    per_client;
    mean_queue_depth =
      (match hist_of window "io.queue.depth" with
      | Some h when h.Metrics.count > 0 -> Metrics.mean h
      | _ -> 0.0);
    mean_queue_wait_us =
      (match hist_of window "io.queue.wait_us" with
      | Some h when h.Metrics.count > 0 -> Metrics.mean h
      | _ -> 0.0);
    mean_positioning_us =
      (if requests = 0 then 0.0
       else
         float_of_int (counter_of window "disk.positioning_us")
         /. float_of_int requests);
  }

let json_of_client_stat s =
  Json.Obj
    [
      ("client", Json.Int s.client);
      ("ops", Json.Int s.ops);
      ("mean_us", Json.Float s.mean_us);
      ("p50_us", Json.Int s.p50_us);
      ("p99_us", Json.Int s.p99_us);
      ("max_us", Json.Int s.max_us);
    ]

let to_json r =
  Json.Obj
    [
      ("label", Json.String r.label);
      ("discipline", Json.String r.discipline);
      ("clients", Json.Int r.clients);
      ("total_ops", Json.Int r.total_ops);
      ("elapsed_us", Json.Int r.elapsed_us);
      ("ops_per_sec", Json.Float r.ops_per_sec);
      ("mean_us", Json.Float r.mean_us);
      ("p50_us", Json.Int r.p50_us);
      ("p99_us", Json.Int r.p99_us);
      ("mean_queue_depth", Json.Float r.mean_queue_depth);
      ("mean_queue_wait_us", Json.Float r.mean_queue_wait_us);
      ("mean_positioning_us", Json.Float r.mean_positioning_us);
      ("per_client", Json.List (List.map json_of_client_stat r.per_client));
    ]
