(** Synthetic office/engineering traces.

    The paper characterizes its target workload via the Berkeley
    trace-driven analysis (reference [5]): many small files (mostly under
    8 KB), read sequentially and in their entirety, with lifetimes often
    under a day and highly skewed access.  [generate] produces an event
    stream with those properties; [replay] runs it against any file
    system, so a single "realistic mix" number can be compared across
    systems (the figures isolate one behaviour each; a trace mixes them).

    Traces serialize to plain text, one event per line, so they can be
    stored, inspected and replayed later. *)

type event =
  | Create of { path : string; size : int }  (** create + whole-file write *)
  | Read of { path : string }  (** whole-file sequential read *)
  | Overwrite of { path : string; size : int }  (** rewrite in full *)
  | Delete of { path : string }
  | Mkdir of { path : string }

let pp_event ppf = function
  | Create { path; size } -> Format.fprintf ppf "create %s %d" path size
  | Read { path } -> Format.fprintf ppf "read %s" path
  | Overwrite { path; size } -> Format.fprintf ppf "overwrite %s %d" path size
  | Delete { path } -> Format.fprintf ppf "delete %s" path
  | Mkdir { path } -> Format.fprintf ppf "mkdir %s" path

(* Serialization *)

let to_line = function
  | Create { path; size } -> Printf.sprintf "C %s %d" path size
  | Read { path } -> Printf.sprintf "R %s" path
  | Overwrite { path; size } -> Printf.sprintf "W %s %d" path size
  | Delete { path } -> Printf.sprintf "D %s" path
  | Mkdir { path } -> Printf.sprintf "M %s" path

let of_line line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "C"; path; size ] -> Some (Create { path; size = int_of_string size })
  | [ "R"; path ] -> Some (Read { path })
  | [ "W"; path; size ] -> Some (Overwrite { path; size = int_of_string size })
  | [ "D"; path ] -> Some (Delete { path })
  | [ "M"; path ] -> Some (Mkdir { path })
  | [ "" ] -> None
  | _ -> invalid_arg (Printf.sprintf "Trace.of_line: %S" line)

let to_lines events = String.concat "\n" (List.map to_line events) ^ "\n"

let of_lines text =
  List.filter_map of_line (String.split_on_char '\n' text)

(* Generation *)

(* File sizes: the office/engineering distribution — most files small,
   a long tail.  Buckets approximate the trace study: 80% <= 8 KB. *)
let sample_size rng =
  let r = Lfs_util.Rng.float rng 1.0 in
  if r < 0.35 then 512 + Lfs_util.Rng.int rng 1024
  else if r < 0.65 then 1024 + Lfs_util.Rng.int rng 4096
  else if r < 0.85 then 4096 + Lfs_util.Rng.int rng 8192
  else if r < 0.97 then 8192 + Lfs_util.Rng.int rng 65536
  else 65536 + Lfs_util.Rng.int rng 262144

type gen_config = {
  events : int;
  dirs : int;  (** directory fan-out *)
  target_live : int;  (** steady-state live-file population *)
  read_fraction : float;
  overwrite_fraction : float;
  zipf_theta : float;  (** skew of read/overwrite targets *)
}

let default_gen =
  {
    events = 20_000;
    dirs = 20;
    target_live = 2_000;
    read_fraction = 0.45;
    overwrite_fraction = 0.15;
    zipf_theta = 0.9;
  }

let generate ?(seed = 42) ?(config = default_gen) () =
  let rng = Lfs_util.Rng.create seed in
  let zipf = Lfs_util.Zipf.create ~n:(max 1 config.target_live) ~theta:config.zipf_theta in
  (* Live population as a growable array of paths; Zipf rank 0 = most
     recently created (young files are the hot ones, as in the study). *)
  let live = ref [||] in
  let next_id = ref 0 in
  let events = ref [] in
  let emit e = events := e :: !events in
  for d = 0 to config.dirs - 1 do
    emit (Mkdir { path = Printf.sprintf "/dir%03d" d })
  done;
  let fresh_path () =
    let id = !next_id in
    incr next_id;
    Printf.sprintf "/dir%03d/f%06d" (id mod config.dirs) id
  in
  let pick_live () =
    let n = Array.length !live in
    if n = 0 then None
    else begin
      let rank = Lfs_util.Zipf.sample zipf rng in
      (* Rank 0 = youngest. *)
      Some (min (n - 1) rank)
    end
  in
  let create () =
    let path = fresh_path () in
    emit (Create { path; size = sample_size rng });
    live := Array.append [| path |] !live
  in
  let delete_oldest_biased () =
    let n = Array.length !live in
    if n > 0 then begin
      (* Deletions hit old files: sample from the cold end. *)
      let idx = n - 1 - min (n - 1) (Lfs_util.Rng.int rng (max 1 (n / 2))) in
      emit (Delete { path = !live.(idx) });
      live := Array.append (Array.sub !live 0 idx)
                (Array.sub !live (idx + 1) (n - idx - 1))
    end
  in
  for _ = 1 to config.events do
    let r = Lfs_util.Rng.float rng 1.0 in
    if r < config.read_fraction then begin
      match pick_live () with
      | Some i -> emit (Read { path = !live.(i) })
      | None -> create ()
    end
    else if r < config.read_fraction +. config.overwrite_fraction then begin
      match pick_live () with
      | Some i -> emit (Overwrite { path = !live.(i); size = sample_size rng })
      | None -> create ()
    end
    else if Array.length !live >= config.target_live then begin
      (* At steady state, births and deaths alternate. *)
      if Lfs_util.Rng.bool rng then delete_oldest_biased () else create ()
    end
    else create ()
  done;
  List.rev !events

(* Replay *)

type result = {
  label : string;
  events : int;
  elapsed_us : int;
  ops_per_sec : float;
  bytes_written : int;
  bytes_read : int;
}

let replay inst events =
  let io = Driver.io inst in
  let bytes_written = ref 0 in
  let bytes_read = ref 0 in
  let t0 = Lfs_disk.Io.now_us io in
  List.iteri
    (fun i event ->
      match event with
      | Mkdir { path } -> Driver.mkdir inst path
      | Create { path; size } ->
          Driver.create inst path;
          Driver.write inst path ~off:0 (Driver.content ~seed:i size);
          bytes_written := !bytes_written + size
      | Overwrite { path; size } ->
          Driver.write inst path ~off:0 (Driver.content ~seed:i size);
          bytes_written := !bytes_written + size
      | Read { path } ->
          let stat = Driver.stat inst path in
          let data =
            Driver.read inst path ~off:0 ~len:stat.Lfs_vfs.Fs_intf.size
          in
          bytes_read := !bytes_read + Bytes.length data
      | Delete { path } -> Driver.delete inst path)
    events;
  Driver.sync inst;
  let elapsed_us = Lfs_disk.Io.now_us io - t0 in
  let n = List.length events in
  let result =
    {
      label = Driver.label inst;
      events = n;
      elapsed_us;
      ops_per_sec =
        (if elapsed_us <= 0 then infinity
         else float_of_int n /. (float_of_int elapsed_us /. 1e6));
      bytes_written = !bytes_written;
      bytes_read = !bytes_read;
    }
  in
  Driver.sanitize inst;
  result
