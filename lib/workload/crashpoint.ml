(** Exhaustive crash-point recovery sweeps (see crashpoint.mli). *)

module Clock = Lfs_disk.Clock
module Cpu_model = Lfs_disk.Cpu_model
module Faulty = Lfs_disk.Faulty
module Geometry = Lfs_disk.Geometry
module Io = Lfs_disk.Io
module Fs_intf = Lfs_vfs.Fs_intf
module Metrics = Lfs_obs.Metrics
module Rng = Lfs_util.Rng

(* Workloads are restricted to an op vocabulary with two properties the
   durable model depends on: every file is written at most once (so
   "what content did the last completed sync make durable" has a single
   answer) and paths are never reused after a delete. *)
type op =
  | Mkdir of string
  | Create of string
  | Write of { path : string; seed : int; len : int }
  | Delete of string
  | Sync

type system = [ `Lfs | `Ffs ]

let system_name = function `Lfs -> "LFS" | `Ffs -> "FFS"

let smallfile ?(files = 6) ?(size = 2048) () =
  let path i = Printf.sprintf "/d%d/f%d" (i mod 2) i in
  let ops = ref [ Mkdir "/d1"; Mkdir "/d0" ] in
  let push o = ops := o :: !ops in
  for i = 0 to files - 1 do
    push (Create (path i));
    push (Write { path = path i; seed = 1000 + i; len = size + (173 * i) });
    if i mod 2 = 1 then push Sync
  done;
  push (Delete (path 0));
  push Sync;
  List.rev !ops

(* Fresh stacks.  Small disk, small config, free CPU: the sweep replays
   the whole workload once per boundary, so each run must be cheap. *)

type sys_state = L of Lfs_core.Fs.t | F of Lfs_ffs.Fs.t

let make_io ?volume () =
  let geometry = Geometry.wren_iv ~size_bytes:(16 * 1024 * 1024) in
  match volume with
  | None -> Io.of_geometry geometry (Clock.create ()) Cpu_model.free
  | Some (policy, members) ->
      Io.of_volume
        (Lfs_disk.Volume.create policy ~members geometry)
        (Clock.create ()) Cpu_model.free

let start ?volume (sys : system) =
  let io = make_io ?volume () in
  match sys with
  | `Lfs -> (
      let config = Lfs_core.Config.small in
      (match Lfs_core.Fs.format io config with
      | Ok () -> ()
      | Error e -> Driver.fail "LFS format: %s" e);
      match Lfs_core.Fs.mount ~config io with
      | Ok fs -> (io, L fs)
      | Error e -> Driver.fail "LFS mount: %s" e)
  | `Ffs -> (
      let config = Lfs_ffs.Config.small in
      (match Lfs_ffs.Fs.format io config with
      | Ok () -> ()
      | Error e -> Driver.fail "FFS format: %s" e);
      match Lfs_ffs.Fs.mount ~config io with
      | Ok fs -> (io, F fs)
      | Error e -> Driver.fail "FFS mount: %s" e)

let instance_of = function
  | L fs -> Fs_intf.Instance ((module Lfs_core.Fs), fs)
  | F fs -> Fs_intf.Instance ((module Lfs_ffs.Fs), fs)

(* Remount the (crashed) media under a fresh in-memory state.  LFS goes
   through [Recovery.recover] and reports how the recovered tree diverges
   from the crashed in-memory one; FFS needs its fsck-style [repair]
   pass first — the full-disk scan the paper contrasts with bounded
   roll-forward. *)
let remount io = function
  | L crashed -> (
      match Lfs_core.Fs.mount ~config:Lfs_core.Config.small io with
      | Ok fs ->
          let divergence =
            (* The crashed state can be mid-operation, so walking it is
               best-effort; the durable-model assertions are the real
               check. *)
            try
              Lfs_core.Check.recovery_divergence ~expected:crashed
                ~recovered:fs
            with _ -> []
          in
          Ok (L fs, divergence)
      | Error e -> Error e)
  | F _ -> (
      match Lfs_ffs.Fs.mount ~config:Lfs_ffs.Config.small io with
      | Ok fs ->
          ignore (Lfs_ffs.Fs.repair fs);
          Ok (F fs, [])
      | Error e -> Error e)

let apply inst op =
  match op with
  | Mkdir p -> Driver.mkdir inst p
  | Create p -> Driver.create inst p
  | Write { path; seed; len } ->
      Driver.write inst path ~off:0 (Driver.content ~seed len)
  | Delete p -> Driver.delete inst p
  | Sync -> Driver.sync inst

let counter io name =
  Option.value ~default:0
    (Metrics.counter_value (Metrics.snapshot (Io.metrics io)) name)

(* Probe run: same workload on a fault-free stack, recording the
   cumulative write-request count after each op.  Replays crash at write
   boundary [k]; the probe tells us which ops completed before it. *)
let probe ?volume sys ops =
  let io, st = start ?volume sys in
  let f = Faulty.attach io Faulty.quiet in
  let cum = Array.make (List.length ops) 0 in
  List.iteri
    (fun i op ->
      apply (instance_of st) op;
      cum.(i) <- Faulty.writes_seen f)
    ops;
  Faulty.detach f;
  Driver.sanitize (instance_of st);
  ignore io;
  (Faulty.writes_seen f, cum)

(* What the crash at boundary [k] is allowed to lose.

   Write request [k] is the one lost (or torn); requests [0..k-1]
   completed.  [cum] is non-decreasing, so the ops that fully completed
   are exactly those before the first op whose cumulative count exceeds
   [k]; that op itself is in flight and everything about it is
   ambiguous.  Guarantees are anchored at the last *completed* [Sync]:

   - a file live at that sync and not touched by any later issued op
     must survive with exactly its synced content;
   - a file deleted strictly before that sync must stay gone;
   - a directory made before that sync must survive.

   Everything else — created, written or deleted after the last
   completed sync — is legitimately ambiguous: it may have made it (LFS
   roll-forward often recovers past the checkpoint; FFS persists
   namespace ops synchronously) or not, but whatever is present must be
   readable and structurally sound. *)

type spec = { seed : int; len : int }

type durable = {
  files_durable : (string * spec option) list;
      (** must exist; [Some spec] pins content, [None] (rewritten after
          the sync) only existence *)
  gone_durable : string list;  (** must not exist *)
  dirs_durable : string list;  (** must exist *)
}

let durable_model ops ~cum ~k =
  let arr = Array.of_list ops in
  let n = Array.length arr in
  let crash_op =
    let rec go i = if i >= n then n else if cum.(i) > k then i else go (i + 1) in
    go 0
  in
  let last_sync =
    let rec go i best =
      if i >= crash_op then best
      else go (i + 1) (match arr.(i) with Sync -> Some i | _ -> best)
    in
    go 0 None
  in
  match last_sync with
  | None -> { files_durable = []; gone_durable = []; dirs_durable = [] }
  | Some s ->
      let files = Hashtbl.create 16 in
      let dirs = ref [] in
      for i = 0 to s do
        match arr.(i) with
        | Mkdir p -> dirs := p :: !dirs
        | Create p -> Hashtbl.replace files p { seed = 0; len = 0 }
        | Write { path; seed; len } -> Hashtbl.replace files path { seed; len }
        | Delete p -> Hashtbl.remove files p
        | Sync -> ()
      done;
      (* Ops issued after the sync (including the in-flight one) make
         their targets ambiguous. *)
      let touched_after = ref [] and deleted_after = ref [] in
      for i = s + 1 to min crash_op (n - 1) do
        match arr.(i) with
        | Write { path; _ } -> touched_after := path :: !touched_after
        | Delete p -> deleted_after := p :: !deleted_after
        | Mkdir _ | Create _ | Sync -> ()
      done;
      let gone_durable = ref [] in
      for i = 0 to s - 1 do
        match arr.(i) with
        | Delete p -> gone_durable := p :: !gone_durable
        | _ -> ()
      done;
      let files_durable =
        Hashtbl.fold
          (fun p spec acc ->
            if List.mem p !deleted_after then acc
            else
              (p, if List.mem p !touched_after then None else Some spec)
              :: acc)
          files []
      in
      { files_durable; gone_durable = !gone_durable; dirs_durable = !dirs }

(* Recovered-state verdict. *)

let walk inst =
  let files = ref [] and dirs = ref [] in
  let rec go path =
    let st = Driver.stat inst path in
    match st.Fs_intf.kind with
    | Fs_intf.Regular -> files := (path, st.Fs_intf.size) :: !files
    | Fs_intf.Directory ->
        dirs := path :: !dirs;
        List.iter
          (fun name -> go (if path = "/" then "/" ^ name else path ^ "/" ^ name))
          (Driver.readdir inst path)
  in
  go "/";
  (!files, !dirs)

let check_recovered inst ~durable ~ever_files ~ever_dirs ~divergence =
  let v = ref [] in
  let add fmt = Printf.ksprintf (fun s -> v := s :: !v) fmt in
  List.iter (fun i -> add "integrity: %s" i) (Driver.integrity inst);
  (match walk inst with
  | exception e -> add "tree walk failed: %s" (Printexc.to_string e)
  | files, dirs ->
      (* Recovery must not invent names the workload never created. *)
      List.iter
        (fun (p, _) ->
          if not (List.mem p ever_files) then add "phantom file %s" p)
        files;
      List.iter
        (fun p ->
          if p <> "/" && not (List.mem p ever_dirs) then add "phantom dir %s" p)
        dirs;
      (* Whatever survived must be readable end to end. *)
      List.iter
        (fun (p, size) ->
          match Driver.read inst p ~off:0 ~len:size with
          | data ->
              if Bytes.length data <> size then
                add "%s: short read (%d of %d)" p (Bytes.length data) size
          | exception e -> add "%s: unreadable: %s" p (Printexc.to_string e))
        files;
      List.iter
        (fun (p, spec) ->
          match (List.assoc_opt p files, spec) with
          | None, _ -> add "%s: lost despite completed sync" p
          | Some _, None -> ()
          | Some size, Some { seed; len } ->
              if size <> len then add "%s: size %d, synced %d" p size len
              else if
                not
                  (Bytes.equal
                     (Driver.read inst p ~off:0 ~len)
                     (Driver.content ~seed len))
              then add "%s: content differs from synced data" p)
        durable.files_durable;
      List.iter
        (fun p ->
          if List.mem_assoc p files then
            add "%s: present despite delete before sync" p)
        durable.gone_durable;
      List.iter
        (fun p ->
          if not (List.mem p dirs) then
            add "%s: directory lost despite completed sync" p)
        durable.dirs_durable);
  (* Cross-check: the recovery-divergence report may only name data the
     model says was legitimately at risk. *)
  List.iter
    (fun line ->
      List.iter
        (fun (p, spec) ->
          if spec <> None && String.starts_with ~prefix:(p ^ ":") line then
            add "divergence on synced file: %s" line)
        durable.files_durable)
    divergence;
  List.rev !v

(* One crash replay. *)

type point = {
  boundary : int;
  crashed : bool;
  recovery_us : int;
  recovery_reads : int;
}

type outcome = {
  label : string;
  torn : bool;
  total_writes : int;
  boundaries_tested : int;
  faults : int;
  violations : string list;
  points : point list;
}

let replay ?volume sys ops ~k ~torn ~seed =
  let io, st0 = start ?volume sys in
  let scenario =
    { Faulty.quiet with seed; crash_after_writes = Some k; torn_write = torn }
  in
  let f = Faulty.attach io scenario in
  let inst0 = instance_of st0 in
  let crashed =
    try
      List.iter (apply inst0) ops;
      false
    with Faulty.Crash -> true
  in
  Faulty.clear_crash f;
  let faults = Faulty.faults_injected f in
  Faulty.detach f;
  let reads0 = counter io "disk.reads" in
  let t0 = Io.now_us io in
  match remount io st0 with
  | Error e -> Error (Printf.sprintf "remount failed: %s" e)
  | Ok (st, divergence) ->
      Ok
        ( st,
          divergence,
          {
            boundary = k;
            crashed;
            recovery_us = Io.now_us io - t0;
            recovery_reads = counter io "disk.reads" - reads0;
          },
          faults )

let choose_boundaries ~total ~cap ~seed =
  if total <= cap then List.init total Fun.id
  else begin
    let all = Array.init total Fun.id in
    Rng.shuffle (Rng.create seed) all;
    List.sort compare (Array.to_list (Array.sub all 0 cap))
  end

let sweep ?volume ?(torn = false) ?(max_boundaries = 48) ?(seed = 7) sys ops =
  (match volume with
  | Some (Lfs_disk.Volume.Mirror, _) ->
      (* A mid-fan-out crash leaves the replicas divergent — which copy a
         later mirror read load-balances onto is then semantically
         unspecified, so the durable model cannot assert anything.
         Striped policies have exactly one copy and stay sound. *)
      invalid_arg "Crashpoint.sweep: crash sweeps on mirrors are unsound"
  | Some _ | None -> ());
  let total, cum = probe ?volume sys ops in
  let boundaries = choose_boundaries ~total ~cap:max_boundaries ~seed in
  let ever_files =
    List.filter_map (function Create p -> Some p | _ -> None) ops
  in
  let ever_dirs =
    List.filter_map (function Mkdir p -> Some p | _ -> None) ops
  in
  let violations = ref [] and points = ref [] and faults = ref 0 in
  List.iter
    (fun k ->
      let tag fmt =
        Printf.ksprintf
          (fun s ->
            violations :=
              Printf.sprintf "%s%s k=%d: %s" (system_name sys)
                (if torn then " torn" else "")
                k s
              :: !violations)
          fmt
      in
      match replay ?volume sys ops ~k ~torn ~seed:(seed + (1000 * (k + 1))) with
      | Error e -> tag "%s" e
      | Ok (st, divergence, point, injected) ->
          faults := !faults + injected;
          points := point :: !points;
          let durable = durable_model ops ~cum ~k in
          List.iter
            (fun v -> tag "%s" v)
            (check_recovered (instance_of st) ~durable ~ever_files ~ever_dirs
               ~divergence))
    boundaries;
  {
    label = system_name sys;
    torn;
    total_writes = total;
    boundaries_tested = List.length boundaries;
    faults = !faults;
    violations = List.rev !violations;
    points = List.rev !points;
  }

(* Transient read errors: the whole workload plus a full read-back and
   integrity pass must succeed through the retry/backoff path, with no
   fault ever surfacing to the file system. *)

type read_fault_outcome = {
  retries : int;
  backoff_us : int;
  read_errors : int;
  rf_violations : string list;
}

let read_fault_run ?volume ?(rate = 0.08) ?(burst = 1) ?(seed = 11) sys ops =
  let io, st = start ?volume sys in
  let f =
    Faulty.attach io
      { Faulty.quiet with seed; read_error_rate = rate; read_error_burst = burst }
  in
  let inst = instance_of st in
  let v = ref [] in
  (try
     List.iter (apply inst) ops;
     Driver.flush_caches inst;
     let files, _ = walk inst in
     List.iter
       (fun (p, size) -> ignore (Driver.read inst p ~off:0 ~len:size))
       files;
     List.iter
       (fun i -> v := Printf.sprintf "integrity: %s" i :: !v)
       (Driver.integrity inst)
   with e -> v := Printf.sprintf "run failed: %s" (Printexc.to_string e) :: !v);
  let read_errors = counter io "disk.faults.read_errors" in
  if Faulty.faults_injected f = 0 then
    v := "no transient read faults were injected" :: !v;
  Faulty.detach f;
  {
    retries = counter io "io.retries";
    backoff_us = counter io "io.backoff_us";
    read_errors;
    rf_violations = List.rev !v;
  }

(* Sticky bad sector over checkpoint region A: recovery must fall back
   to region B and mount a sound file system. *)

type bad_sector_outcome = { bad_sector_reads : int; bs_violations : string list }

let bad_sector_run ?(seed = 13) () =
  let ops = smallfile () in
  let io, st = start `Lfs in
  let inst = instance_of st in
  List.iter (apply inst) ops;
  let fs = match st with L fs -> fs | F _ -> assert false in
  let layout = Lfs_core.Fs.layout fs in
  let bad =
    Lfs_core.Layout.sector_of_block layout
      (fst layout.Lfs_core.Layout.cp_region)
  in
  let f = Faulty.attach io { Faulty.quiet with seed; bad_sectors = [ bad ] } in
  let v = ref [] in
  (match Lfs_core.Fs.mount ~config:Lfs_core.Config.small io with
  | Ok fs2 ->
      (* The workload completed (every op before a final sync), so with
         a zero cum array and k = 0 the durable model covers all of it:
         the mount via region B must recover everything. *)
      let durable = durable_model ops ~cum:(Array.make (List.length ops) 0) ~k:0 in
      let ever_files =
        List.filter_map (function Create p -> Some p | _ -> None) ops
      in
      let ever_dirs =
        List.filter_map (function Mkdir p -> Some p | _ -> None) ops
      in
      List.iter
        (fun s -> v := s :: !v)
        (check_recovered
           (Fs_intf.Instance ((module Lfs_core.Fs), fs2))
           ~durable ~ever_files ~ever_dirs ~divergence:[])
  | Error e -> v := Printf.sprintf "mount with bad sector failed: %s" e :: !v);
  let injected = Faulty.faults_injected f in
  if injected = 0 then
    v := "bad-sector fault never exercised (checkpoint region not read)" :: !v;
  Faulty.detach f;
  {
    bad_sector_reads = counter io "disk.faults.bad_sector_reads";
    bs_violations = List.rev !v;
  }
