(** Rendering benchmark results as the paper's figures (text form). *)

module Table = Lfs_util.Table

let bar value ~max ~width =
  if max <= 0.0 || value <= 0.0 then ""
  else begin
    let n = int_of_float (value /. max *. float_of_int width) in
    String.make (min width (Stdlib.max 1 n)) '#'
  end


let f0 = Table.fmt_float ~decimals:0

(* Per-phase metric tables: one row per selected instrument, one column
   per phase.  Gauges and empty histograms are elided — the interesting
   quantities across a benchmark phase are the deltas. *)
let phase_metrics ~label ?(prefixes = [ "disk."; "cache."; "lfs." ])
    (phases : (string * Lfs_obs.Metrics.snapshot) list) =
  let interesting name =
    List.exists (fun p -> String.starts_with ~prefix:p name) prefixes
  in
  let names =
    List.sort_uniq compare
      (List.concat_map
         (fun (_, snap) ->
           List.filter_map
             (fun (name, v) ->
               match v with
               | Lfs_obs.Metrics.Counter n when n <> 0 && interesting name ->
                   Some name
               | _ -> None)
             snap)
         phases)
  in
  if names = [] then ""
  else begin
    let cell snap name =
      match Lfs_obs.Metrics.find snap name with
      | Some (Lfs_obs.Metrics.Counter n) -> string_of_int n
      | _ -> "0"
    in
    let rows =
      List.map
        (fun name -> name :: List.map (fun (_, snap) -> cell snap name) phases)
        names
    in
    Printf.sprintf "%s metrics per phase:\n%s" label
      (Table.render
         ~headers:("metric" :: List.map fst phases)
         rows)
  end

let fig12 (results : Creation_trace.summary list) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "Figures 1 & 2 - disk writes caused by creating two one-block files\n";
  Buffer.add_string buf
    "(paper: FFS makes ~8 small random writes, half synchronous;\n\
    \ LFS makes one large sequential asynchronous transfer)\n\n";
  let rows =
    List.map
      (fun (r : Creation_trace.summary) ->
        [
          r.Creation_trace.label;
          string_of_int r.Creation_trace.writes;
          string_of_int r.Creation_trace.sync_writes;
          string_of_int (r.Creation_trace.writes - r.Creation_trace.sequential_writes);
          string_of_int r.Creation_trace.sectors_written;
        ])
      results
  in
  Buffer.add_string buf
    (Table.render
       ~headers:[ "system"; "writes"; "sync"; "seeks"; "sectors" ]
       rows);
  List.iter
    (fun (r : Creation_trace.summary) ->
      Buffer.add_string buf (Printf.sprintf "\n%s write trace:\n" r.Creation_trace.label);
      List.iter
        (fun (req : Lfs_disk.Io.request) ->
          Buffer.add_string buf
            (Printf.sprintf "  sector %7d  %4d sectors  %s %s\n"
               req.Lfs_disk.Io.sector req.Lfs_disk.Io.sectors
               (if req.Lfs_disk.Io.sync then "sync " else "async")
               (if req.Lfs_disk.Io.sequential then "sequential" else "seek")))
        r.Creation_trace.requests)
    results;
  Buffer.contents buf

let fig3 (results : Smallfile.result list) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "Figure 3 - small-file I/O (files per second, higher is better)\n\n";
  let groups =
    List.sort_uniq compare
      (List.map (fun (r : Smallfile.result) -> (r.Smallfile.file_size, r.Smallfile.nfiles)) results)
  in
  List.iter
    (fun (file_size, nfiles) ->
      Buffer.add_string buf
        (Printf.sprintf "%d files of %d bytes:\n" nfiles file_size);
      let rows =
        List.filter_map
          (fun (r : Smallfile.result) ->
            if r.Smallfile.file_size = file_size && r.Smallfile.nfiles = nfiles
            then
              Some
                [
                  r.Smallfile.label;
                  f0 r.Smallfile.create_per_sec;
                  f0 r.Smallfile.read_per_sec;
                  f0 r.Smallfile.delete_per_sec;
                ]
            else None)
          results
      in
      Buffer.add_string buf
        (Table.render ~headers:[ "system"; "create/s"; "read/s"; "delete/s" ] rows);
      Buffer.add_char buf '\n')
    groups;
  List.iter
    (fun (r : Smallfile.result) ->
      match phase_metrics ~label:r.Smallfile.label r.Smallfile.phases with
      | "" -> ()
      | tbl ->
          Buffer.add_string buf tbl;
          Buffer.add_char buf '\n')
    results;
  Buffer.contents buf

let fig4 (results : Largefile.result list) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "Figure 4 - large-file I/O (KB/s, 8 KB requests)\n\n";
  let rows =
    List.map
      (fun (r : Largefile.result) ->
        [
          r.Largefile.label;
          f0 r.Largefile.seq_write_kbs;
          f0 r.Largefile.seq_read_kbs;
          f0 r.Largefile.rand_write_kbs;
          f0 r.Largefile.rand_read_kbs;
          f0 r.Largefile.seq_reread_kbs;
        ])
      results
  in
  Buffer.add_string buf
    (Table.render
       ~headers:
         [ "system"; "seq write"; "seq read"; "rand write"; "rand read"; "seq reread" ]
       rows);
  List.iter
    (fun (r : Largefile.result) ->
      match phase_metrics ~label:r.Largefile.label r.Largefile.phases with
      | "" -> ()
      | tbl ->
          Buffer.add_char buf '\n';
          Buffer.add_string buf tbl)
    results;
  Buffer.contents buf

let fig5 (points : Cleaning.point list) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "Figure 5 - segment cleaning rate vs segment utilization\n\n";
  let maxrate =
    List.fold_left
      (fun m (p : Cleaning.point) ->
        if p.Cleaning.clean_kb_per_sec = infinity then m
        else Stdlib.max m p.Cleaning.clean_kb_per_sec)
      1.0 points
  in
  let rows =
    List.map
      (fun (p : Cleaning.point) ->
        [
          Table.fmt_float ~decimals:2 p.Cleaning.utilization;
          f0 p.Cleaning.clean_kb_per_sec;
          f0 p.Cleaning.net_kb_per_sec;
          string_of_int p.Cleaning.segments_cleaned;
          Table.fmt_float ~decimals:2 p.Cleaning.write_cost;
          bar p.Cleaning.clean_kb_per_sec ~max:maxrate ~width:40;
        ])
      points
  in
  Buffer.add_string buf
    (Table.render
       ~align:
         [
           Table.Right; Table.Right; Table.Right; Table.Right; Table.Right;
           Table.Left;
         ]
       ~headers:[ "utilization"; "KB/s"; "net KB/s"; "segments"; "cost"; "" ]
       rows);
  Buffer.contents buf

let policy_ablation (results : Hotcold.result list) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "Ablation - cleaning policy vs overwrite locality (write cost: lower is better)\n\n";
  let rows =
    List.map
      (fun (r : Hotcold.result) ->
        [
          Lfs_core.Config.policy_name r.Hotcold.policy;
          Table.fmt_float ~decimals:2 r.Hotcold.theta;
          Table.fmt_float ~decimals:2 r.Hotcold.disk_utilization;
          Table.fmt_float ~decimals:2 r.Hotcold.write_cost;
          f0 r.Hotcold.write_kbs;
          string_of_int r.Hotcold.segments_cleaned;
        ])
      results
  in
  Buffer.add_string buf
    (Table.render
       ~headers:[ "policy"; "theta"; "disk util"; "write cost"; "KB/s"; "cleaned" ]
       rows);
  Buffer.contents buf


