(** Driving any file system through {!Lfs_vfs.Fs_intf.instance}.

    The benchmark workloads are written once against these helpers and
    run unchanged on LFS and FFS.  All helpers fail loudly — a benchmark
    that cannot perform its operations is a bug, not a result. *)

exception Benchmark_failure of string

val fail : ('a, unit, string, 'b) format4 -> 'a
val ok : string -> ('a, Lfs_vfs.Errors.t) result -> 'a

val io : Lfs_vfs.Fs_intf.instance -> Lfs_disk.Io.t
val label : Lfs_vfs.Fs_intf.instance -> string

val create : Lfs_vfs.Fs_intf.instance -> string -> unit
val mkdir : Lfs_vfs.Fs_intf.instance -> string -> unit
val delete : Lfs_vfs.Fs_intf.instance -> string -> unit
val write : Lfs_vfs.Fs_intf.instance -> string -> off:int -> bytes -> unit
val read : Lfs_vfs.Fs_intf.instance -> string -> off:int -> len:int -> bytes
val stat : Lfs_vfs.Fs_intf.instance -> string -> Lfs_vfs.Fs_intf.stat
val readdir : Lfs_vfs.Fs_intf.instance -> string -> string list
val exists : Lfs_vfs.Fs_intf.instance -> string -> bool
val sync : Lfs_vfs.Fs_intf.instance -> unit
val flush_caches : Lfs_vfs.Fs_intf.instance -> unit

val integrity : Lfs_vfs.Fs_intf.instance -> string list
(** The system's structural self-check (see {!Lfs_vfs.Fs_intf.S}). *)

val sanitize : Lfs_vfs.Fs_intf.instance -> unit
(** The always-on sanitizer: sync, then run {!integrity}, raising
    {!Benchmark_failure} on any issue.  Every workload runner calls
    this after taking its measurements, so a run that corrupted the
    file system cannot report a result. *)

val now_us : Lfs_vfs.Fs_intf.instance -> int

val metrics : Lfs_vfs.Fs_intf.instance -> Lfs_obs.Metrics.t
(** The instance's I/O-stack registry. *)

val bus : Lfs_vfs.Fs_intf.instance -> Lfs_obs.Bus.t
(** The instance's trace bus. *)

val timed : Lfs_vfs.Fs_intf.instance -> (unit -> unit) -> int
(** Simulated microseconds consumed by the thunk. *)

val observed :
  Lfs_vfs.Fs_intf.instance ->
  (unit -> unit) ->
  int * Lfs_obs.Metrics.snapshot
(** [timed], plus the registry delta the thunk caused. *)

val content : seed:int -> int -> bytes
(** Deterministic pseudo-random file contents. *)
