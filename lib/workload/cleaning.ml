(** The segment-cleaning benchmark of §5.3 (Figure 5).

    Fill an LFS disk with small files, delete a fraction so every segment
    is left at a target utilization, then measure the rate (KB/s of
    simulated time) at which the cleaner generates clean segments.  This
    is the paper's deliberate worst case: all segments equally
    fragmented. *)

type point = {
  utilization : float;  (** mean utilization of the cleaned segments *)
  clean_kb_per_sec : float;
      (** gross rate at which segments become clean (the figure's axis) *)
  net_kb_per_sec : float;
      (** new writable space per second: gross minus the live bytes the
          cleaner had to rewrite — "full segments yield almost no free
          space" *)
  segments_cleaned : int;
  write_cost : float;
      (** the file system's cumulative write cost (§3, Figure 5's y-axis
          companion) after the pass *)
}

(* Fill the log with [file_size]-byte files until roughly [fill_fraction]
   of the segments hold data, then delete each file with probability
   [1 - target_utilization]. *)
let run ?(file_size = 1024) ?(fill_fraction = 0.7) ?(seed = 23)
    ~target_utilization (fs : Lfs_core.Fs.t) =
  if target_utilization < 0.0 || target_utilization > 1.0 then
    invalid_arg "Cleaning.run: utilization must be in [0,1]";
  let inst = Lfs_vfs.Fs_intf.Instance ((module Lfs_core.Fs), fs) in
  Lfs_core.Fs.set_auto_clean fs false;
  let layout = Lfs_core.Fs.layout fs in
  let seg_payload =
    layout.Lfs_core.Layout.payload_blocks * layout.Lfs_core.Layout.block_size
  in
  let target_bytes =
    int_of_float
      (fill_fraction
      *. float_of_int (layout.Lfs_core.Layout.nsegments * seg_payload))
  in
  (* Each file's on-disk footprint: block-rounded data plus its inode
     slice (directory blocks add a little more; fill_fraction leaves
     headroom for them). *)
  let block_size = layout.Lfs_core.Layout.block_size in
  let footprint =
    ((file_size + block_size - 1) / block_size * block_size)
    + Lfs_core.Layout.inode_bytes
  in
  let nfiles = target_bytes / footprint in
  let files_per_dir = 1000 in
  for d = 0 to ((nfiles - 1) / files_per_dir) do
    Driver.mkdir inst (Printf.sprintf "/d%03d" d)
  done;
  for i = 0 to nfiles - 1 do
    let path = Printf.sprintf "/d%03d/f%06d" (i / files_per_dir) i in
    Driver.create inst path;
    Driver.write inst path ~off:0 (Driver.content ~seed:i file_size)
  done;
  Driver.sync inst;
  let rng = Lfs_util.Rng.create seed in
  for i = 0 to nfiles - 1 do
    if Lfs_util.Rng.float rng 1.0 >= target_utilization then
      Driver.delete inst (Printf.sprintf "/d%03d/f%06d" (i / files_per_dir) i)
  done;
  Driver.sync inst;
  (* The population to clean: every segment dirty right now.  Mean
     utilization of that population is the figure's x coordinate. *)
  let report = Lfs_core.Fs.segment_report fs in
  let victims, utils =
    List.fold_left
      (fun (vs, us) (seg, state, u) ->
        if state = Lfs_core.Seg_usage.Dirty then (seg :: vs, u :: us)
        else (vs, us))
      ([], []) report
  in
  let mean_util =
    if utils = [] then 0.0
    else List.fold_left ( +. ) 0.0 utils /. float_of_int (List.length utils)
  in
  let moved0 = (Lfs_core.Fs.stats fs).Lfs_core.State.cleaner_bytes_moved in
  let t0 = Driver.now_us inst in
  let freed = Lfs_core.Cleaner.clean_exact fs ~victims:(List.rev victims) in
  let elapsed_us = Driver.now_us inst - t0 in
  let moved =
    (Lfs_core.Fs.stats fs).Lfs_core.State.cleaner_bytes_moved - moved0
  in
  let clean_bytes = freed * seg_payload in
  let rate bytes =
    if elapsed_us <= 0 then infinity
    else float_of_int bytes /. 1024.0 /. (float_of_int elapsed_us /. 1e6)
  in
  let result =
    {
      utilization = mean_util;
      clean_kb_per_sec = rate clean_bytes;
      net_kb_per_sec = rate (max 0 (clean_bytes - moved));
      segments_cleaned = freed;
      write_cost = Lfs_core.Cleaner.write_cost fs;
    }
  in
  Driver.sanitize inst;
  result

(** Sweep Figure 5's x-axis.  Each point gets a fresh file system. *)
let sweep ?file_size ?fill_fraction ?seed ~utilizations make_fs =
  List.map
    (fun u ->
      let fs = make_fs () in
      run ?file_size ?fill_fraction ?seed ~target_utilization:u fs)
    utilizations
