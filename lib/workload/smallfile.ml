(** The small-file benchmark of §5.1 (Figure 3).

    Create [nfiles] files of [file_size] bytes (spread over directories of
    100 files, as an office/engineering tree would be), flush the file
    cache, read them all back in creation order, then delete them all.
    Results are files per second of simulated time per phase. *)

type result = {
  label : string;
  nfiles : int;
  file_size : int;
  create_per_sec : float;
  read_per_sec : float;
  delete_per_sec : float;
  phases : (string * Lfs_obs.Metrics.snapshot) list;
      (** registry delta per measured phase, in phase order *)
}

let files_per_dir = 100

let path_of i = Printf.sprintf "/dir%03d/f%05d" (i / files_per_dir) i

let per_sec nfiles us =
  if us <= 0 then infinity else float_of_int nfiles /. (float_of_int us /. 1e6)

let run ?(nfiles = 10_000) ?(file_size = 1024) inst =
  let ndirs = (nfiles + files_per_dir - 1) / files_per_dir in
  for d = 0 to ndirs - 1 do
    Driver.mkdir inst (Printf.sprintf "/dir%03d" d)
  done;
  (* Directory creation is setup, not part of the measured phases. *)
  Driver.sync inst;
  let create_us, create_m =
    Driver.observed inst (fun () ->
        for i = 0 to nfiles - 1 do
          let path = path_of i in
          Driver.create inst path;
          Driver.write inst path ~off:0 (Driver.content ~seed:i file_size)
        done)
  in
  Driver.flush_caches inst;
  let read_us, read_m =
    Driver.observed inst (fun () ->
        for i = 0 to nfiles - 1 do
          ignore (Driver.read inst (path_of i) ~off:0 ~len:file_size)
        done)
  in
  let delete_us, delete_m =
    Driver.observed inst (fun () ->
        for i = 0 to nfiles - 1 do
          Driver.delete inst (path_of i)
        done)
  in
  let result =
    {
      label = Driver.label inst;
      nfiles;
      file_size;
      create_per_sec = per_sec nfiles create_us;
      read_per_sec = per_sec nfiles read_us;
      delete_per_sec = per_sec nfiles delete_us;
      phases = [ ("create", create_m); ("read", read_m); ("delete", delete_m) ];
    }
  in
  Driver.sanitize inst;
  result
