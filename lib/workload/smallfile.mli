(** The small-file benchmark of §5.1 (Figure 3).

    Create [nfiles] files of [file_size] bytes (spread over directories
    of 100 files), flush the file cache, read them all back in creation
    order, then delete them all.  Results are files per second of
    simulated time per phase. *)

type result = {
  label : string;
  nfiles : int;
  file_size : int;
  create_per_sec : float;
  read_per_sec : float;
  delete_per_sec : float;
  phases : (string * Lfs_obs.Metrics.snapshot) list;
      (** registry delta per measured phase ([create]/[read]/[delete]) *)
}

val files_per_dir : int

val run :
  ?nfiles:int -> ?file_size:int -> Lfs_vfs.Fs_intf.instance -> result
(** Defaults: the paper's 10000 files of 1 KB. *)
