(** Concurrent multi-client engine over simulated time.

    A discrete-event loop multiplexing N closed-loop clients — each with
    its own deterministic RNG, Zipf-skewed op mix and think-time model —
    over one FS instance.  The loop always runs the client whose next
    operation is due earliest, advancing the simulated clock to that
    instant; this is the only sanctioned clock advancement in
    [lib/workload] (the [workload-clock] lint rule).

    Latency is end-to-end from the instant a client became ready to the
    instant its operation completed, so it includes queueing behind
    other clients and behind the device: synchronous write convoys show
    up in p99 exactly as the paper's §4 argues.  Pair with
    {!Lfs_disk.Io.set_scheduler} (via [config.discipline]) to measure
    what a reordering disk scheduler buys each system under load. *)

type think =
  | Constant of int  (** fixed think time, µs *)
  | Uniform of int * int  (** uniform in [\[lo, hi)], µs *)

type config = {
  clients : int;
  ops_per_client : int;
  think : think;
  seed : int;
  dirs : int;  (** directory fan-out for the shared population *)
  working_set : int;  (** target live-file population *)
  zipf_theta : float;  (** skew of read/overwrite targets *)
  read_fraction : float;
  overwrite_fraction : float;
  delete_fraction : float;  (** remainder of the mix creates files *)
  discipline : Lfs_disk.Sched.discipline option;
      (** installed on the instance's [Io] for the measured window;
          [None] runs the legacy immediate-service model *)
  max_queue : int;  (** device queue bound (see {!Lfs_disk.Io.set_scheduler}) *)
}

val default : config
(** 4 clients x 200 ops, 1-20 ms think, Zipf 0.9 over a 150-file working
    set, 40/30/10/20 read/overwrite/delete/create mix, FCFS. *)

type client_stat = {
  client : int;
  ops : int;
  mean_us : float;
  p50_us : int;
  p99_us : int;
  max_us : int;
}

type result = {
  label : string;
  discipline : string;  (** ["fcfs"], ["scan"], ["cscan"] or ["immediate"] *)
  clients : int;
  total_ops : int;
  elapsed_us : int;  (** measured window, setup excluded *)
  ops_per_sec : float;  (** aggregate throughput in simulated time *)
  mean_us : float;
  p50_us : int;
  p99_us : int;  (** aggregate latency percentiles *)
  per_client : client_stat list;
  mean_queue_depth : float;  (** mean [io.queue.depth] over the window *)
  mean_queue_wait_us : float;
  mean_positioning_us : float;
      (** mean seek + rotation time per disk request — what a reordering
          discipline minimizes *)
}

val run : ?config:config -> Lfs_vfs.Fs_intf.instance -> result
(** Run the engine: unmeasured setup (directories + half the working
    set, synced), then the measured multi-client window, then a final
    [sync] — included in [elapsed_us], the log must reach the platter —
    and {!Driver.sanitize}.  Deterministic: same config + instance kind
    ⇒ identical event sequence, metrics and final image.  Per-op
    latencies feed the registry histogram [engine.op_us], per-client
    standalone histograms, and [Client_op] bus events.
    @raise Driver.Benchmark_failure on invalid config or failed ops. *)

val to_json : result -> Lfs_obs.Json.t
(** Bench-entry encoding, shared by the [concurrency] figure and
    [lfstool concurrency --json]. *)
