(** Benchmark environments: a simulated WREN IV disk, a Sun-4/260 CPU
    model, and a freshly formatted file system — the §5 test setup. *)

module Clock = Lfs_disk.Clock
module Cpu_model = Lfs_disk.Cpu_model
module Fs_intf = Lfs_vfs.Fs_intf
module Geometry = Lfs_disk.Geometry
module Io = Lfs_disk.Io

let default_disk_mb = 300

let make_io ?(disk_mb = default_disk_mb) ?(cpu = Cpu_model.sun4_260) () =
  let geometry = Geometry.wren_iv ~size_bytes:(disk_mb * 1024 * 1024) in
  Io.of_geometry geometry (Clock.create ()) cpu

let make_volume_io ?(disk_mb = default_disk_mb) ?(cpu = Cpu_model.sun4_260)
    ~policy ~members () =
  let geometry = Geometry.wren_iv ~size_bytes:(disk_mb * 1024 * 1024) in
  let volume = Lfs_disk.Volume.create policy ~members geometry in
  Io.of_volume volume (Clock.create ()) cpu

let lfs_on io ?(config = Lfs_core.Config.default) () =
  (match Lfs_core.Fs.format io config with
  | Ok () -> ()
  | Error e -> Driver.fail "LFS format: %s" e);
  match Lfs_core.Fs.mount ~config io with
  | Ok fs -> Fs_intf.Instance ((module Lfs_core.Fs), fs)
  | Error e -> Driver.fail "LFS mount: %s" e

let ffs_on io ?(config = Lfs_ffs.Config.default) () =
  (match Lfs_ffs.Fs.format io config with
  | Ok () -> ()
  | Error e -> Driver.fail "FFS format: %s" e);
  match Lfs_ffs.Fs.mount ~config io with
  | Ok fs -> Fs_intf.Instance ((module Lfs_ffs.Fs), fs)
  | Error e -> Driver.fail "FFS mount: %s" e

let lfs ?disk_mb ?cpu ?config () =
  lfs_on (make_io ?disk_mb ?cpu ()) ?config ()

let ffs ?disk_mb ?cpu ?config () =
  ffs_on (make_io ?disk_mb ?cpu ()) ?config ()

(** Both systems on identical hardware, LFS first — the comparison pair
    of every figure in §5. *)
let both ?disk_mb ?cpu () = [ lfs ?disk_mb ?cpu (); ffs ?disk_mb ?cpu () ]
