(** The §3.1 two-file creation example (Figures 1 and 2).

    Runs
    {v
    creat("dir1/file1"); write(1 block); close
    creat("dir2/file2"); write(1 block); close
    v}
    against a file system with request recording enabled, flushes the
    delayed writes, and reports every disk write that resulted — enough to
    show FFS's small random writes (half synchronous) versus LFS's single
    large sequential transfer. *)

type summary = {
  label : string;
  writes : int;
  sync_writes : int;
  sequential_writes : int;
  sectors_written : int;
  requests : Lfs_disk.Io.request list;  (** write requests, in order *)
}

let run inst =
  let io = Driver.io inst in
  let block =
    match Driver.label inst with
    | "LFS" -> 4096
    | _ -> 8192
  in
  (* Directories exist beforehand, as in the paper's example. *)
  Driver.mkdir inst "/dir1";
  Driver.mkdir inst "/dir2";
  Driver.sync inst;
  Lfs_disk.Io.set_recording io true;
  Driver.create inst "/dir1/file1";
  Driver.write inst "/dir1/file1" ~off:0 (Driver.content ~seed:1 block);
  Driver.create inst "/dir2/file2";
  Driver.write inst "/dir2/file2" ~off:0 (Driver.content ~seed:2 block);
  (* The delayed write-back of Figure 1. *)
  Driver.sync inst;
  let requests =
    List.filter
      (fun r -> r.Lfs_disk.Io.kind = `Write)
      (Lfs_disk.Io.requests io)
  in
  Lfs_disk.Io.set_recording io false;
  let result =
    {
      label = Driver.label inst;
      writes = List.length requests;
      sync_writes =
        List.length (List.filter (fun r -> r.Lfs_disk.Io.sync) requests);
      sequential_writes =
        List.length (List.filter (fun r -> r.Lfs_disk.Io.sequential) requests);
      sectors_written =
        List.fold_left (fun acc r -> acc + r.Lfs_disk.Io.sectors) 0 requests;
      requests;
    }
  in
  Driver.sanitize inst;
  result
