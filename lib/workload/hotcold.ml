(** Hot/cold overwrite traffic for the cleaning-policy ablations.

    Fills the disk to a target utilization with fixed-size files, then
    overwrites files drawn from a Zipf distribution ([theta = 0] gives the
    uniform traffic of Figure 5's worst case; [theta ~ 1] gives the
    office/engineering locality the paper expects in practice).  Reports
    the cleaner's write-cost multiplier and sustained write bandwidth. *)

type result = {
  policy : Lfs_core.Config.policy;
  theta : float;
  disk_utilization : float;
  write_cost : float;
  write_kbs : float;
  segments_cleaned : int;
}

let run ?(file_size = 4096) ?(theta = 0.0) ?(ops = 20_000) ?(seed = 31)
    ~disk_utilization ~policy (fs : Lfs_core.Fs.t) =
  let inst = Lfs_vfs.Fs_intf.Instance ((module Lfs_core.Fs), fs) in
  Lfs_core.Fs.set_policy fs policy;
  Lfs_core.Fs.set_auto_clean fs true;
  let layout = Lfs_core.Fs.layout fs in
  let seg_payload =
    layout.Lfs_core.Layout.payload_blocks * layout.Lfs_core.Layout.block_size
  in
  let layout_meta_bytes =
    (layout.Lfs_core.Layout.n_imap_blocks + layout.Lfs_core.Layout.n_usage_blocks + 8)
    * layout.Lfs_core.Layout.block_size
  in
  (* Honest capacity: fixed metadata, the in-flight write buffer between
     periodic syncs, and ~5% partial-segment slack all occupy log space
     on top of the files themselves. *)
  let backlog_allowance = 256 * file_size in
  let capacity =
    int_of_float
      (0.95
      *. float_of_int
           ((layout.Lfs_core.Layout.nsegments * seg_payload)
           - layout_meta_bytes - backlog_allowance))
  in
  let block_size = layout.Lfs_core.Layout.block_size in
  let footprint =
    ((file_size + block_size - 1) / block_size * block_size)
    + Lfs_core.Layout.inode_bytes
  in
  let nfiles =
    int_of_float (disk_utilization *. float_of_int capacity) / footprint
  in
  let files_per_dir = 1000 in
  let path i = Printf.sprintf "/d%03d/f%06d" (i / files_per_dir) i in
  for d = 0 to (nfiles - 1) / files_per_dir do
    Driver.mkdir inst (Printf.sprintf "/d%03d" d)
  done;
  for i = 0 to nfiles - 1 do
    Driver.create inst (path i);
    Driver.write inst (path i) ~off:0 (Driver.content ~seed:i file_size);
    (* Keep the write-buffer backlog bounded so the log fills gradually
       and cleaning interleaves as it would in steady state. *)
    if i mod 500 = 499 then Driver.sync inst
  done;
  Driver.sync inst;
  (* Steady-state overwrite traffic. *)
  let rng = Lfs_util.Rng.create seed in
  let zipf = Lfs_util.Zipf.create ~n:nfiles ~theta in
  let base_cleaned = (Lfs_core.Fs.stats fs).Lfs_core.State.segments_cleaned in
  let elapsed =
    Driver.timed inst (fun () ->
        for op = 0 to ops - 1 do
          let i = Lfs_util.Zipf.sample zipf rng in
          Driver.write inst (path i) ~off:0
            (Driver.content ~seed:(op lxor i) file_size);
          if op mod 250 = 249 then Driver.sync inst
        done;
        Driver.sync inst)
  in
  let result =
    {
      policy;
      theta;
      disk_utilization;
      write_cost = Lfs_core.Fs.write_cost fs;
      write_kbs =
        (if elapsed <= 0 then infinity
         else
           float_of_int (ops * file_size) /. 1024.0
           /. (float_of_int elapsed /. 1e6));
      segments_cleaned =
        (Lfs_core.Fs.stats fs).Lfs_core.State.segments_cleaned - base_cleaned;
    }
  in
  Driver.sanitize inst;
  result
