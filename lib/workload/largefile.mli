(** The large-file benchmark of §5.2 (Figure 4).

    Five phases over one large file with 8 KB requests: sequential write,
    sequential read, random write, random read, and a final sequential
    re-read (where update-in-place beats a log after random updates).
    Random offsets sample with replacement, as in the paper.  Rates are
    KB per second of simulated time; write phases include the trailing
    sync. *)

type result = {
  label : string;
  file_mb : int;
  seq_write_kbs : float;
  seq_read_kbs : float;
  rand_write_kbs : float;
  rand_read_kbs : float;
  seq_reread_kbs : float;
  phases : (string * Lfs_obs.Metrics.snapshot) list;
      (** registry delta per measured phase, in phase order *)
}

val request : int
(** Request size (8 KB). *)

val run : ?file_mb:int -> ?seed:int -> Lfs_vfs.Fs_intf.instance -> result
(** Default: the paper's 100 MB file. *)
