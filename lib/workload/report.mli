(** Rendering benchmark results as the paper's figures (text form). *)

val bar : float -> max:float -> width:int -> string
(** ASCII bar for inline charts. *)

val phase_metrics :
  label:string ->
  ?prefixes:string list ->
  (string * Lfs_obs.Metrics.snapshot) list ->
  string
(** Render per-phase registry deltas as a metric-by-phase table (only
    non-zero counters under [prefixes]; "" when nothing qualifies). *)

val fig12 : Creation_trace.summary list -> string
val fig3 : Smallfile.result list -> string
val fig4 : Largefile.result list -> string
val fig5 : Cleaning.point list -> string
val policy_ablation : Hotcold.result list -> string
