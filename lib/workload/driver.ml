(** Driving any file system through {!Lfs_vfs.Fs_intf.instance}.

    The benchmark workloads are written once against these helpers and
    run unchanged on LFS and FFS.  All helpers fail loudly — a benchmark
    that cannot perform its operations is a bug, not a result. *)

module Fs_intf = Lfs_vfs.Fs_intf
module Errors = Lfs_vfs.Errors

exception Benchmark_failure of string

let fail fmt = Printf.ksprintf (fun s -> raise (Benchmark_failure s)) fmt

let ok what = function
  | Ok v -> v
  | Error e -> fail "%s: %s" what (Errors.to_string e)

let io (Fs_intf.Instance ((module F), fs)) = F.io fs
let label (Fs_intf.Instance ((module F), _)) = F.name

let create (Fs_intf.Instance ((module F), fs)) path =
  ok ("create " ^ path) (F.create fs path)

let mkdir (Fs_intf.Instance ((module F), fs)) path =
  ok ("mkdir " ^ path) (F.mkdir fs path)

let delete (Fs_intf.Instance ((module F), fs)) path =
  ok ("delete " ^ path) (F.delete fs path)

let write (Fs_intf.Instance ((module F), fs)) path ~off data =
  ok ("write " ^ path) (F.write fs path ~off data)

let read (Fs_intf.Instance ((module F), fs)) path ~off ~len =
  ok ("read " ^ path) (F.read fs path ~off ~len)

let stat (Fs_intf.Instance ((module F), fs)) path =
  ok ("stat " ^ path) (F.stat fs path)

let readdir (Fs_intf.Instance ((module F), fs)) path =
  ok ("readdir " ^ path) (F.readdir fs path)

let exists (Fs_intf.Instance ((module F), fs)) path = F.exists fs path

let sync (Fs_intf.Instance ((module F), fs)) = F.sync fs
let flush_caches (Fs_intf.Instance ((module F), fs)) = F.flush_caches fs

let integrity (Fs_intf.Instance ((module F), fs)) = F.integrity fs

let sanitize inst =
  let (Fs_intf.Instance ((module F), fs)) = inst in
  F.sync fs;
  match F.integrity fs with
  | [] -> ()
  | issues ->
      fail "%s: post-run integrity check failed:\n  %s" (label inst)
        (String.concat "\n  " issues)

let now_us inst = Lfs_disk.Io.now_us (io inst)
let metrics inst = Lfs_disk.Io.metrics (io inst)
let bus inst = Lfs_disk.Io.bus (io inst)

(** Simulated time consumed by [f], in microseconds. *)
let timed inst f =
  let t0 = now_us inst in
  f ();
  now_us inst - t0

(** Run [f] and return its simulated duration together with the registry
    delta it caused — the per-phase metric table of a report. *)
let observed inst f =
  let m = metrics inst in
  let before = Lfs_obs.Metrics.snapshot m in
  let t0 = now_us inst in
  f ();
  let elapsed = now_us inst - t0 in
  (elapsed, Lfs_obs.Metrics.diff ~before ~after:(Lfs_obs.Metrics.snapshot m))

(** Deterministic file contents. *)
let content ~seed len =
  let rng = Lfs_util.Rng.create seed in
  Bytes.init len (fun _ -> Char.chr (Lfs_util.Rng.int rng 256))
