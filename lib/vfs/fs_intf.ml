(** The file-system interface shared by LFS and the FFS baseline.

    Workload generators, benchmarks and the model-based property tests are
    all written against this signature, so every experiment runs unchanged
    on both systems. *)

type file_kind = Regular | Directory

type stat = {
  inum : int;
  kind : file_kind;
  size : int;  (** bytes *)
  nlink : int;
  mtime_us : int;  (** last data/metadata modification, simulated time *)
  atime_us : int;  (** last read access, simulated time *)
}

module type S = sig
  type t

  val name : string
  (** Short identifier used in benchmark tables, e.g. ["LFS"]. *)

  val io : t -> Lfs_disk.Io.t
  (** The I/O scheduler, for clocks and statistics. *)

  (** {1 Namespace} *)

  val create : t -> string -> (unit, Errors.t) result
  (** Create an empty regular file; fails with [Eexist] if present. *)

  val mkdir : t -> string -> (unit, Errors.t) result
  val delete : t -> string -> (unit, Errors.t) result
  (** Remove a file, or an empty directory. *)

  val rename : t -> string -> string -> (unit, Errors.t) result
  (** [rename t src dst]: [dst] must not exist. *)

  val link : t -> string -> string -> (unit, Errors.t) result
  (** [link t src dst] makes [dst] a second name (hard link) for the
      regular file [src]; directories cannot be linked.  The file's data
      is freed only when its last name is deleted. *)

  val readdir : t -> string -> (string list, Errors.t) result
  (** Entry names, sorted. *)

  val stat : t -> string -> (stat, Errors.t) result
  val exists : t -> string -> bool

  (** {1 Data} *)

  val write : t -> string -> off:int -> bytes -> (unit, Errors.t) result
  (** Write (extending the file as needed).  Writes go to the cache; they
      reach the disk per each system's write-back policy. *)

  val read : t -> string -> off:int -> len:int -> (bytes, Errors.t) result
  (** Reads at most [len] bytes (short at end of file). *)

  val truncate : t -> string -> size:int -> (unit, Errors.t) result

  (** {1 Durability} *)

  val sync : t -> unit
  (** Push all dirty data and metadata to disk and wait for the device. *)

  val fsync : t -> string -> (unit, Errors.t) result
  (** Push one file's dirty blocks (LFS: a partial segment; FFS: the
      file's blocks in place) and wait. *)

  (** {1 Cache control (benchmark support)} *)

  val flush_caches : t -> unit
  (** Write back everything, then drop clean cached blocks — the paper's
      "the file cache was flushed" between benchmark phases. *)

  (** {1 Integrity (sanitizer support)} *)

  val integrity : t -> string list
  (** Run the system's full structural self-check (fsck-grade: namespace
      vs. allocation maps, block ownership, link counts — and for LFS,
      segment-usage accounting vs. ground truth) and return a
      human-readable description of every violation found.  An empty
      list means the file system is structurally sound.  Tests and
      benchmarks call this at the end of every run, so any operation
      that corrupts an invariant fails the run that performed it. *)
end

(** A file system packaged with its instance, so heterogeneous lists of
    systems can be benchmarked side by side. *)
type instance = Instance : (module S with type t = 'a) * 'a -> instance

let instance_name (Instance ((module F), _)) = F.name
let instance_io (Instance ((module F), fs)) = F.io fs
