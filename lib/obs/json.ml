type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Floats must round-trip and stay valid JSON: no "inf"/"nan" literals
   exist there, so clamp them to null. *)
let float_repr f =
  match Float.classify_float f with
  | FP_infinite | FP_nan -> "null"
  | _ ->
      let s = Printf.sprintf "%.17g" f in
      let short = Printf.sprintf "%.12g" f in
      if float_of_string short = f then short else s

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          write buf (String k);
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  write buf t;
  Buffer.contents buf

let rec write_indent buf ~level = function
  | List ((_ :: _) as items) ->
      let pad = String.make (2 * (level + 1)) ' ' in
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          write_indent buf ~level:(level + 1) item)
        items;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * level) ' ');
      Buffer.add_char buf ']'
  | Obj ((_ :: _) as fields) ->
      let pad = String.make (2 * (level + 1)) ' ' in
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          write buf (String k);
          Buffer.add_string buf ": ";
          write_indent buf ~level:(level + 1) v)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * level) ' ');
      Buffer.add_char buf '}'
  | other -> write buf other

let to_string_pretty t =
  let buf = Buffer.create 1024 in
  write_indent buf ~level:0 t;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* Parsing — just enough to validate and introspect our own output. *)

exception Parse_error of string

type parser_state = { s : string; mutable pos : int }

let peek p = if p.pos < String.length p.s then Some p.s.[p.pos] else None

let fail p msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg p.pos))

let skip_ws p =
  while
    p.pos < String.length p.s
    && (match p.s.[p.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    p.pos <- p.pos + 1
  done

let expect p c =
  match peek p with
  | Some x when x = c -> p.pos <- p.pos + 1
  | _ -> fail p (Printf.sprintf "expected %C" c)

let literal p word value =
  let n = String.length word in
  if p.pos + n <= String.length p.s && String.sub p.s p.pos n = word then begin
    p.pos <- p.pos + n;
    value
  end
  else fail p (Printf.sprintf "expected %s" word)

let parse_string_raw p =
  expect p '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek p with
    | None -> fail p "unterminated string"
    | Some '"' -> p.pos <- p.pos + 1
    | Some '\\' -> (
        p.pos <- p.pos + 1;
        match peek p with
        | Some '"' -> Buffer.add_char buf '"'; p.pos <- p.pos + 1; loop ()
        | Some '\\' -> Buffer.add_char buf '\\'; p.pos <- p.pos + 1; loop ()
        | Some '/' -> Buffer.add_char buf '/'; p.pos <- p.pos + 1; loop ()
        | Some 'n' -> Buffer.add_char buf '\n'; p.pos <- p.pos + 1; loop ()
        | Some 'r' -> Buffer.add_char buf '\r'; p.pos <- p.pos + 1; loop ()
        | Some 't' -> Buffer.add_char buf '\t'; p.pos <- p.pos + 1; loop ()
        | Some 'b' -> Buffer.add_char buf '\b'; p.pos <- p.pos + 1; loop ()
        | Some 'f' -> Buffer.add_char buf '\012'; p.pos <- p.pos + 1; loop ()
        | Some 'u' ->
            if p.pos + 5 > String.length p.s then fail p "bad \\u escape";
            let hex = String.sub p.s (p.pos + 1) 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with Failure _ -> fail p "bad \\u escape"
            in
            (* ASCII range only: that is all this library ever emits. *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else Buffer.add_string buf (Printf.sprintf "\\u%s" hex);
            p.pos <- p.pos + 5;
            loop ()
        | _ -> fail p "bad escape")
    | Some c ->
        Buffer.add_char buf c;
        p.pos <- p.pos + 1;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number p =
  let start = p.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while p.pos < String.length p.s && is_num_char p.s.[p.pos] do
    p.pos <- p.pos + 1
  done;
  let tok = String.sub p.s start (p.pos - start) in
  match int_of_string_opt tok with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail p "bad number")

let rec parse_value p =
  skip_ws p;
  match peek p with
  | None -> fail p "unexpected end of input"
  | Some '{' ->
      p.pos <- p.pos + 1;
      skip_ws p;
      if peek p = Some '}' then begin
        p.pos <- p.pos + 1;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws p;
          let k = parse_string_raw p in
          skip_ws p;
          expect p ':';
          let v = parse_value p in
          skip_ws p;
          match peek p with
          | Some ',' ->
              p.pos <- p.pos + 1;
              fields ((k, v) :: acc)
          | Some '}' ->
              p.pos <- p.pos + 1;
              List.rev ((k, v) :: acc)
          | _ -> fail p "expected ',' or '}'"
        in
        Obj (fields [])
      end
  | Some '[' ->
      p.pos <- p.pos + 1;
      skip_ws p;
      if peek p = Some ']' then begin
        p.pos <- p.pos + 1;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value p in
          skip_ws p;
          match peek p with
          | Some ',' ->
              p.pos <- p.pos + 1;
              items (v :: acc)
          | Some ']' ->
              p.pos <- p.pos + 1;
              List.rev (v :: acc)
          | _ -> fail p "expected ',' or ']'"
        in
        List (items [])
      end
  | Some '"' -> String (parse_string_raw p)
  | Some 't' -> literal p "true" (Bool true)
  | Some 'f' -> literal p "false" (Bool false)
  | Some 'n' -> literal p "null" Null
  | Some _ -> parse_number p

let of_string s =
  let p = { s; pos = 0 } in
  let v = parse_value p in
  skip_ws p;
  if p.pos <> String.length s then fail p "trailing garbage";
  v

let of_string_opt s = try Some (of_string s) with Parse_error _ -> None

(* Accessors *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let rec path keys json =
  match keys with
  | [] -> Some json
  | k :: rest -> ( match member k json with None -> None | Some v -> path rest v)

let to_float_opt = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let to_list_opt = function List l -> Some l | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
