(** The structured trace bus.

    One bus lives with each simulated I/O stack (see
    {!Lfs_disk.Io.bus}); instrumented layers {!emit} typed {!Event.t}
    values stamped with the simulated clock.  With nothing attached the
    bus is quiet and costs one list test per instrumentation point — so
    emission sites guard with {!enabled} before allocating an event.

    Consumers either {!attach} a buffering sink (ring or unbounded) and
    read {!records} later, or {!subscribe} a callback for streaming. *)

type t
type sink
type subscription

val create : now:(unit -> int) -> unit -> t
(** [now] supplies the simulated-time stamp (microseconds). *)

val enabled : t -> bool
(** True iff at least one sink or subscriber is attached. *)

val emit : t -> Event.t -> unit
(** No-op when not {!enabled}. *)

(** {1 Buffering sinks} *)

val attach : ?capacity:int -> ?filter:(Event.t -> bool) -> t -> sink
(** Unbounded unless [capacity] is given, in which case the sink is a
    ring keeping the newest [capacity] records ({!dropped} counts the
    rest).  [filter] selects which events the sink keeps. *)

val detach : t -> sink -> unit

val records : sink -> Event.record list
(** Buffered records, oldest first. *)

val dropped : sink -> int
val clear : sink -> unit

(** {1 Streaming subscribers} *)

val subscribe : t -> (Event.record -> unit) -> subscription
val unsubscribe : t -> subscription -> unit

(** {1 Spans}

    Nestable intervals on simulated time.  The span stack is maintained
    even while the bus is quiet, so attaching a sink mid-run still
    observes correct depths. *)

val span_depth : t -> int

val span_begin : t -> string -> unit

val span_end : t -> string -> unit
(** @raise Invalid_argument if [name] is not the innermost open span. *)

val with_span : t -> string -> (unit -> 'a) -> 'a
(** [span_begin]/[span_end] around [f].  If [f] raises, this span — and
    any inner span [f] leaked by raising between a {!span_begin} and its
    {!span_end} — is closed (emitting its [Span_end]) before the
    exception propagates, so a crash mid-operation never corrupts the
    span stack. *)
