module Table = Lfs_util.Table

(* ---------------- operation spans ---------------- *)

type op =
  [ `Create
  | `Mkdir
  | `Delete
  | `Rename
  | `Link
  | `Read
  | `Write
  | `Truncate
  | `Stat
  | `Readdir
  | `Sync
  | `Fsync ]

(* The op-span names live here and only here: file systems call
   [with_op], so each span name has exactly one registration site (the
   lint's span-dup rule) no matter how many layers instrument their
   operations with it. *)
let op_name = function
  | `Create -> "op_create"
  | `Mkdir -> "op_mkdir"
  | `Delete -> "op_delete"
  | `Rename -> "op_rename"
  | `Link -> "op_link"
  | `Read -> "op_read"
  | `Write -> "op_write"
  | `Truncate -> "op_truncate"
  | `Stat -> "op_stat"
  | `Readdir -> "op_readdir"
  | `Sync -> "op_sync"
  | `Fsync -> "op_fsync"

let all_ops : op list =
  [
    `Create; `Mkdir; `Delete; `Rename; `Link; `Read; `Write; `Truncate;
    `Stat; `Readdir; `Sync; `Fsync;
  ]

let with_op bus op f =
  if Bus.enabled bus then Bus.with_span bus (op_name op) f else f ()

(* ---------------- span-tree aggregation ---------------- *)

(* One node per distinct span-name path from a top-level span.  The
   histogram records the inclusive elapsed time of each completion, so
   quantiles come for free from the metrics machinery. *)
type node = {
  name : string;
  mutable count : int;
  mutable incl_us : int;
  mutable excl_us : int;
  hist : Metrics.histogram;
  children : (string, node) Hashtbl.t;
}

let new_node name =
  {
    name;
    count = 0;
    incl_us = 0;
    excl_us = 0;
    hist = Metrics.standalone_histogram ();
    children = Hashtbl.create 8;
  }

(* The frame mirrors the bus's span stack; [child_us] accumulates the
   inclusive time of completed children so the parent's exclusive time
   is elapsed - child_us. *)
type frame = { node : node; mutable child_us : int }

type t = {
  bus : Bus.t;
  root : node;  (* synthetic; its children are the top-level spans *)
  mutable stack : frame list;  (* innermost first *)
  mutable sub : Bus.subscription option;
}

let child_of node name =
  match Hashtbl.find_opt node.children name with
  | Some c -> c
  | None ->
      let c = new_node name in
      Hashtbl.add node.children name c;
      c

let on_record t r =
  match r.Event.event with
  | Event.Span_begin { name; _ } ->
      let parent =
        match t.stack with [] -> t.root | f :: _ -> f.node
      in
      t.stack <- { node = child_of parent name; child_us = 0 } :: t.stack
  | Event.Span_end { name; elapsed_us; _ } -> (
      match t.stack with
      | [] -> ()  (* attached mid-span: this span's begin predates us *)
      | f :: rest ->
          if f.node.name <> name then ()
          else begin
            t.stack <- rest;
            f.node.count <- f.node.count + 1;
            f.node.incl_us <- f.node.incl_us + elapsed_us;
            f.node.excl_us <- f.node.excl_us + (elapsed_us - f.child_us);
            Metrics.observe f.node.hist elapsed_us;
            match rest with
            | parent :: _ -> parent.child_us <- parent.child_us + elapsed_us
            | [] -> ()
          end)
  | _ -> ()

let attach bus =
  let t = { bus; root = new_node "root"; stack = []; sub = None } in
  t.sub <- Some (Bus.subscribe bus (fun r -> on_record t r));
  t

let detach t =
  match t.sub with
  | None -> ()
  | Some sub ->
      Bus.unsubscribe t.bus sub;
      t.sub <- None

(* ---------------- attribution ---------------- *)

(* Exclusive times partition inclusive time, so assigning every node's
   exclusive time to one category makes the four columns sum exactly to
   the op's total.  Categories are sticky below cleaner and checkpoint
   spans: the cleaner's own disk I/O is cleaner interference from the
   operation's point of view, not ordinary disk service. *)

type category = Cache | Disk | Cleaner | Ckpt

let category_of_name = function
  | "io_read" | "io_write" | "io_write_async" | "io_drain" -> Some Disk
  | "cleaner_pass" -> Some Cleaner
  | "checkpoint" | "roll_forward" -> Some Ckpt
  | _ -> None

type attribution = {
  mutable cache_us : int;
  mutable disk_us : int;
  mutable cleaner_us : int;
  mutable checkpoint_us : int;
}

let rec attribute acc inherited node =
  let cat =
    match inherited with
    | Cleaner | Ckpt -> inherited
    | Cache | Disk -> (
        match category_of_name node.name with
        | Some c -> c
        | None -> inherited)
  in
  (match cat with
  | Cache -> acc.cache_us <- acc.cache_us + node.excl_us
  | Disk -> acc.disk_us <- acc.disk_us + node.excl_us
  | Cleaner -> acc.cleaner_us <- acc.cleaner_us + node.excl_us
  | Ckpt -> acc.checkpoint_us <- acc.checkpoint_us + node.excl_us);
  Hashtbl.iter (fun _ c -> attribute acc cat c) node.children

(* ---------------- reports ---------------- *)

type op_stat = {
  op : string;
  count : int;
  total_us : int;
  mean_us : float;
  p50_us : int;
  p95_us : int;
  p99_us : int;
  cache_us : int;
  disk_us : int;
  cleaner_us : int;
  checkpoint_us : int;
}

type tree = {
  t_name : string;
  t_count : int;
  t_incl_us : int;
  t_excl_us : int;
  t_children : tree list;
}

type report = { ops : op_stat list; spans : tree list }

let rec tree_of_node node =
  let children =
    Hashtbl.fold (fun _ c acc -> tree_of_node c :: acc) node.children []
    |> List.sort (fun a b -> compare b.t_incl_us a.t_incl_us)
  in
  {
    t_name = node.name;
    t_count = node.count;
    t_incl_us = node.incl_us;
    t_excl_us = node.excl_us;
    t_children = children;
  }

let op_stat_of_node ~pretty node =
  let hs = Metrics.snapshot_histogram node.hist in
  let q p = Option.value ~default:0 (Metrics.quantile hs p) in
  let acc = { cache_us = 0; disk_us = 0; cleaner_us = 0; checkpoint_us = 0 } in
  attribute acc Cache node;
  {
    op = pretty;
    count = node.count;
    total_us = node.incl_us;
    mean_us = Metrics.mean hs;
    p50_us = q 0.5;
    p95_us = q 0.95;
    p99_us = q 0.99;
    cache_us = acc.cache_us;
    disk_us = acc.disk_us;
    cleaner_us = acc.cleaner_us;
    checkpoint_us = acc.checkpoint_us;
  }

let report t =
  let ops =
    List.filter_map
      (fun op ->
        match Hashtbl.find_opt t.root.children (op_name op) with
        | Some node when node.count > 0 ->
            let pretty =
              let n = op_name op in
              String.sub n 3 (String.length n - 3)
            in
            Some (op_stat_of_node ~pretty node)
        | _ -> None)
      all_ops
  in
  let spans =
    Hashtbl.fold (fun _ c acc -> tree_of_node c :: acc) t.root.children []
    |> List.sort (fun a b -> compare b.t_incl_us a.t_incl_us)
  in
  { ops; spans }

(* ---------------- rendering ---------------- *)

let render_ops rep =
  let rows =
    List.map
      (fun s ->
        [
          s.op;
          string_of_int s.count;
          string_of_int s.total_us;
          Table.fmt_float ~decimals:1 s.mean_us;
          string_of_int s.p50_us;
          string_of_int s.p95_us;
          string_of_int s.p99_us;
          string_of_int s.cache_us;
          string_of_int s.disk_us;
          string_of_int s.cleaner_us;
          string_of_int s.checkpoint_us;
        ])
      rep.ops
  in
  Table.render
    ~headers:
      [
        "op"; "count"; "total_us"; "mean_us"; "p50_us"; "p95_us"; "p99_us";
        "cache_us"; "disk_us"; "cleaner_us"; "ckpt_us";
      ]
    rows

let render_tree rep =
  let buf = Buffer.create 256 in
  let rec go indent tr =
    Buffer.add_string buf
      (Printf.sprintf "%s%s  count=%d incl_us=%d excl_us=%d\n" indent
         tr.t_name tr.t_count tr.t_incl_us tr.t_excl_us);
    List.iter (go (indent ^ "  ")) tr.t_children
  in
  List.iter (go "") rep.spans;
  Buffer.contents buf

(* ---------------- JSON ---------------- *)

let json_of_op s =
  Json.Obj
    [
      ("op", Json.String s.op);
      ("count", Json.Int s.count);
      ("total_us", Json.Int s.total_us);
      ("mean_us", Json.Float s.mean_us);
      ("p50_us", Json.Int s.p50_us);
      ("p95_us", Json.Int s.p95_us);
      ("p99_us", Json.Int s.p99_us);
      ("cache_us", Json.Int s.cache_us);
      ("disk_us", Json.Int s.disk_us);
      ("cleaner_us", Json.Int s.cleaner_us);
      ("checkpoint_us", Json.Int s.checkpoint_us);
    ]

let rec json_of_tree tr =
  Json.Obj
    [
      ("name", Json.String tr.t_name);
      ("count", Json.Int tr.t_count);
      ("incl_us", Json.Int tr.t_incl_us);
      ("excl_us", Json.Int tr.t_excl_us);
      ("children", Json.List (List.map json_of_tree tr.t_children));
    ]

let to_json rep =
  Json.Obj
    [
      ("ops", Json.List (List.map json_of_op rep.ops));
      ("spans", Json.List (List.map json_of_tree rep.spans));
    ]
