(** A/B comparator for [lfs-bench/1] result files.

    Every figure entry's shallow numeric fields in the baseline are
    matched (by figure name and entry index) against the current file
    and classified by a per-metric direction heuristic: throughputs,
    ratios and hit counts should not fall; times, costs and I/O volumes
    should not rise; metrics with no known direction gate on any
    out-of-tolerance change, since the simulation is deterministic.
    Nested objects (per-phase breakdowns) are not compared.  Figures,
    entries or metrics present in the baseline but missing from the
    current file also gate. *)

type status = Same | Improved | Regressed | Changed

type delta = {
  figure : string;
  entry : string;  (** entry label, or ["#i"] when unlabeled *)
  metric : string;
  base : float;
  cur : float;
  pct : float;  (** percent change, current vs base *)
  status : status;
}

type report = {
  tolerance_pct : float;
  deltas : delta list;
  missing : string list;
      (** figures/entries/metrics in base but not in current *)
}

val compare :
  ?tolerance_pct:float -> base:Json.t -> cur:Json.t -> unit -> report
(** Default tolerance 5%.
    @raise Invalid_argument if either document is not an [lfs-bench/1]
    file. *)

val regressions : report -> delta list
(** The deltas that should fail a gate: [Regressed] plus [Changed]. *)

val gates : report -> bool
(** True iff there are {!regressions} or [missing] items. *)

val render : report -> string
(** Out-of-tolerance rows as a table plus a one-line summary. *)

val to_json : report -> Json.t
