type sink = {
  capacity : int option;  (* None = unbounded *)
  filter : Event.t -> bool;
  mutable buf : Event.record list;  (* newest first *)
  mutable buffered : int;
  mutable dropped : int;
}

type subscription = { callback : Event.record -> unit }

type t = {
  now : unit -> int;
  mutable sinks : sink list;
  mutable subs : subscription list;
  mutable spans : (string * int) list;  (* name, start_us; innermost first *)
}

let create ~now () = { now; sinks = []; subs = []; spans = [] }

(* The hot-path guard: instrumented code checks this before building an
   event value, so a quiet bus costs one list test. *)
let enabled t = t.sinks <> [] || t.subs <> []

let push sink r =
  if sink.filter r.Event.event then begin
    sink.buf <- r :: sink.buf;
    sink.buffered <- sink.buffered + 1;
    match sink.capacity with
    | Some cap when sink.buffered > cap ->
        (* Ring behaviour: drop the oldest.  The list is newest-first, so
           trimming the tail is O(n); do it in amortized batches. *)
        if sink.buffered >= 2 * cap then begin
          let rec take n = function
            | x :: rest when n > 0 -> x :: take (n - 1) rest
            | _ -> []
          in
          sink.dropped <- sink.dropped + (sink.buffered - cap);
          sink.buf <- take cap sink.buf;
          sink.buffered <- cap
        end
    | Some _ | None -> ()
  end

let emit t event =
  if enabled t then begin
    let r = { Event.at_us = t.now (); event } in
    List.iter (fun s -> push s r) t.sinks;
    List.iter (fun s -> s.callback r) t.subs
  end

let attach ?capacity ?(filter = fun _ -> true) t =
  (match capacity with
  | Some c when c <= 0 -> invalid_arg "Bus.attach: capacity must be positive"
  | Some _ | None -> ());
  let sink = { capacity; filter; buf = []; buffered = 0; dropped = 0 } in
  t.sinks <- sink :: t.sinks;
  sink

let detach t sink = t.sinks <- List.filter (fun s -> s != sink) t.sinks

let records sink =
  let rs = List.rev sink.buf in
  match sink.capacity with
  | None -> rs
  | Some cap ->
      (* Amortized trimming may leave up to 2*cap buffered; expose exactly
         the newest [cap]. *)
      let excess = sink.buffered - cap in
      if excess <= 0 then rs
      else begin
        let rec drop n l = if n = 0 then l else drop (n - 1) (List.tl l) in
        drop excess rs
      end

let dropped sink =
  let over =
    match sink.capacity with
    | None -> 0
    | Some cap -> max 0 (sink.buffered - cap)
  in
  sink.dropped + over

let clear sink =
  sink.buf <- [];
  sink.buffered <- 0;
  sink.dropped <- 0

let subscribe t callback =
  let sub = { callback } in
  t.subs <- sub :: t.subs;
  sub

let unsubscribe t sub = t.subs <- List.filter (fun s -> s != sub) t.subs

(* Spans.  The stack is maintained even when the bus is quiet so that a
   sink attached mid-span still sees correctly-nested depths. *)

let span_depth t = List.length t.spans

let span_begin t name =
  emit t (Event.Span_begin { name; depth = span_depth t });
  t.spans <- (name, t.now ()) :: t.spans

let span_end t name =
  match t.spans with
  | [] -> invalid_arg (Printf.sprintf "Bus.span_end %S: no open span" name)
  | (open_name, started) :: rest ->
      if open_name <> name then
        invalid_arg
          (Printf.sprintf "Bus.span_end %S: innermost open span is %S" name
             open_name);
      t.spans <- rest;
      emit t
        (Event.Span_end
           { name; depth = span_depth t; elapsed_us = t.now () - started })

let with_span t name f =
  let depth0 = span_depth t in
  span_begin t name;
  match f () with
  | v ->
      span_end t name;
      v
  | exception e ->
      (* Unwind every span opened at or below this frame — including any
         that [f] leaked by raising between a [span_begin] and its
         [span_end] — so a crash mid-operation cannot corrupt the stack.
         Each unwound span still emits its [Span_end], marking where the
         exception cut the interval short. *)
      while span_depth t > depth0 do
        match t.spans with
        | (n, _) :: _ -> span_end t n
        | [] -> assert false
      done;
      raise e
