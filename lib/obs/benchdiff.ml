module Table = Lfs_util.Table

let schema = "lfs-bench/1"

type status = Same | Improved | Regressed | Changed

type delta = {
  figure : string;
  entry : string;  (* entry label, or "#i" when unlabeled *)
  metric : string;
  base : float;
  cur : float;
  pct : float;  (* percent change, cur vs base *)
  status : status;
}

type report = {
  tolerance_pct : float;
  deltas : delta list;
  missing : string list;  (* figure/entry/metric in base but not in cur *)
}

(* Direction heuristics by metric name.  Throughputs, ratios and hit
   counts want to go up; times, costs and I/O volumes want to go down.
   Unknown metrics gate on any out-of-tolerance change in either
   direction — the simulation is deterministic, so unexplained drift in
   e.g. an axis parameter is a real behavioural change. *)
type direction = Higher | Lower | Unknown

let contains s sub =
  let n = String.length sub and m = String.length s in
  let rec go i =
    if i + n > m then false
    else if String.sub s i n = sub then true
    else go (i + 1)
  in
  go 0

let direction_of metric =
  let has sub = contains metric sub in
  if has "_per_sec" || has "_kbs" || has "ratio" || has "hit" then Higher
  else if
    has "_us" || has "cost" || has "reads" || has "writes" || has "sectors"
    || has "wasted" || has "dropped"
  then Lower
  else Unknown

let pct_change ~base ~cur =
  if base = cur then 0.0
  else if base = 0.0 then infinity *. (if cur > 0.0 then 1.0 else -1.0)
  else (cur -. base) /. Float.abs base *. 100.0

let status_of ~tolerance_pct ~metric ~base ~cur =
  let pct = pct_change ~base ~cur in
  if Float.abs pct <= tolerance_pct then (pct, Same)
  else
    let worse =
      match direction_of metric with
      | Higher -> cur < base
      | Lower -> cur > base
      | Unknown -> true  (* either way: unexplained drift *)
    in
    match (direction_of metric, worse) with
    | Unknown, _ -> (pct, Changed)
    | _, true -> (pct, Regressed)
    | _, false -> (pct, Improved)

let check_schema which doc =
  match Json.member "schema" doc with
  | Some (Json.String s) when s = schema -> ()
  | Some (Json.String s) ->
      invalid_arg
        (Printf.sprintf "benchdiff: %s has schema %S, expected %S" which s
           schema)
  | _ -> invalid_arg (Printf.sprintf "benchdiff: %s is not a %s file" which schema)

let figures doc =
  match Json.member "figures" doc with
  | Some (Json.Obj kvs) -> kvs
  | _ -> invalid_arg "benchdiff: missing \"figures\" object"

let entry_label i entry =
  match Json.member "label" entry with
  | Some (Json.String s) -> s
  | _ -> (
      (* fall back to the first string field (e.g. "fs"), else the index *)
      match entry with
      | Json.Obj kvs -> (
          match
            List.find_opt (function _, Json.String _ -> true | _ -> false) kvs
          with
          | Some (_, Json.String s) -> s
          | _ -> Printf.sprintf "#%d" i)
      | _ -> Printf.sprintf "#%d" i)

(* Only shallow numeric fields are compared: nested objects (per-phase
   breakdowns) are informative detail, and comparing them would make the
   gate hyper-brittle. *)
let numeric_fields entry =
  match entry with
  | Json.Obj kvs ->
      List.filter_map
        (fun (k, v) ->
          match v with
          | Json.Int n -> Some (k, float_of_int n)
          | Json.Float f -> Some (k, f)
          | _ -> None)
        kvs
  | _ -> []

let compare ?(tolerance_pct = 5.0) ~base ~cur () =
  check_schema "base" base;
  check_schema "current" cur;
  let base_figs = figures base and cur_figs = figures cur in
  let deltas = ref [] and missing = ref [] in
  List.iter
    (fun (fig, base_entries) ->
      let base_entries =
        match base_entries with Json.List l -> l | _ -> []
      in
      match List.assoc_opt fig cur_figs with
      | None -> missing := Printf.sprintf "figure %s" fig :: !missing
      | Some cur_v ->
          let cur_entries = match cur_v with Json.List l -> l | _ -> [] in
          List.iteri
            (fun i base_entry ->
              let label = entry_label i base_entry in
              match List.nth_opt cur_entries i with
              | None ->
                  missing :=
                    Printf.sprintf "%s entry %s" fig label :: !missing
              | Some cur_entry ->
                  let cur_nums = numeric_fields cur_entry in
                  List.iter
                    (fun (metric, bval) ->
                      match List.assoc_opt metric cur_nums with
                      | None ->
                          missing :=
                            Printf.sprintf "%s/%s metric %s" fig label metric
                            :: !missing
                      | Some cval ->
                          let pct, status =
                            status_of ~tolerance_pct ~metric ~base:bval
                              ~cur:cval
                          in
                          deltas :=
                            {
                              figure = fig;
                              entry = label;
                              metric;
                              base = bval;
                              cur = cval;
                              pct;
                              status;
                            }
                            :: !deltas)
                    (numeric_fields base_entry))
            base_entries)
    base_figs;
  {
    tolerance_pct;
    deltas = List.rev !deltas;
    missing = List.rev !missing;
  }

(* Anything in the baseline that got worse — or vanished — gates. *)
let regressions rep =
  List.filter (fun d -> d.status = Regressed || d.status = Changed) rep.deltas

let gates rep = regressions rep <> [] || rep.missing <> []

let status_name = function
  | Same -> "same"
  | Improved -> "improved"
  | Regressed -> "REGRESSED"
  | Changed -> "CHANGED"

let fmt_num f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%d" (int_of_float f)
  else Table.fmt_float ~decimals:2 f

let render rep =
  let interesting = List.filter (fun d -> d.status <> Same) rep.deltas in
  let buf = Buffer.create 256 in
  if interesting = [] && rep.missing = [] then
    Buffer.add_string buf
      (Printf.sprintf "benchdiff: %d metrics compared, all within %.1f%%\n"
         (List.length rep.deltas) rep.tolerance_pct)
  else begin
    let rows =
      List.map
        (fun d ->
          [
            d.figure;
            d.entry;
            d.metric;
            fmt_num d.base;
            fmt_num d.cur;
            Printf.sprintf "%+.1f%%" d.pct;
            status_name d.status;
          ])
        interesting
    in
    Buffer.add_string buf
      (Table.render
         ~headers:
           [ "figure"; "entry"; "metric"; "base"; "current"; "delta"; "status" ]
         rows);
    List.iter
      (fun m -> Buffer.add_string buf (Printf.sprintf "missing in current: %s\n" m))
      rep.missing;
    let n_reg = List.length (regressions rep) in
    Buffer.add_string buf
      (Printf.sprintf
         "benchdiff: %d metrics compared, %d changed, %d regressed, %d \
          missing (tolerance %.1f%%)\n"
         (List.length rep.deltas)
         (List.length interesting)
         n_reg
         (List.length rep.missing)
         rep.tolerance_pct)
  end;
  Buffer.contents buf

let json_of_delta d =
  Json.Obj
    [
      ("figure", Json.String d.figure);
      ("entry", Json.String d.entry);
      ("metric", Json.String d.metric);
      ("base", Json.Float d.base);
      ("current", Json.Float d.cur);
      ("pct", Json.Float d.pct);
      ("status", Json.String (status_name d.status));
    ]

let to_json rep =
  Json.Obj
    [
      ("tolerance_pct", Json.Float rep.tolerance_pct);
      ("compared", Json.Int (List.length rep.deltas));
      ( "deltas",
        Json.List
          (List.filter_map
             (fun d -> if d.status = Same then None else Some (json_of_delta d))
             rep.deltas) );
      ("missing", Json.List (List.map (fun m -> Json.String m) rep.missing));
      ("gate", Json.Bool (gates rep));
    ]
