(** Latency-attribution profiler: a span-tree aggregator over {!Bus}.

    {!attach} subscribes to a bus and folds the [Span_begin]/[Span_end]
    stream into an aggregate tree keyed by span-name path: per node a
    completion count, inclusive and exclusive simulated time, and a
    log-scale histogram of inclusive elapsed times.  {!report} turns the
    tree into per-operation latency statistics (p50/p95/p99 in simulated
    µs) and an exclusive-time attribution that splits each operation's
    total across cache/CPU, disk service, cleaner interference and
    checkpoint work.  Because exclusive times partition inclusive time,
    the four attribution columns sum exactly to the operation's total.

    File systems mark their top-level operations with {!with_op}; the
    op-span names are defined here (and only here) so every span name
    has a single registration site. *)

type op =
  [ `Create
  | `Mkdir
  | `Delete
  | `Rename
  | `Link
  | `Read
  | `Write
  | `Truncate
  | `Stat
  | `Readdir
  | `Sync
  | `Fsync ]

val op_name : op -> string
(** The span name for an operation, e.g. [`Read] -> ["op_read"]. *)

val with_op : Bus.t -> op -> (unit -> 'a) -> 'a
(** Run [f] inside the operation's span.  Free (no span) when the bus is
    quiet. *)

(** {1 Aggregation} *)

type t

val attach : Bus.t -> t
(** Subscribe an aggregator to the bus.  Span ends whose begins predate
    the attach are ignored, so attaching mid-run is safe. *)

val detach : t -> unit

(** {1 Reports} *)

type op_stat = {
  op : string;  (** operation name without the [op_] prefix *)
  count : int;
  total_us : int;  (** summed inclusive time *)
  mean_us : float;
  p50_us : int;
  p95_us : int;
  p99_us : int;
  cache_us : int;  (** exclusive time not otherwise attributed: cache + CPU *)
  disk_us : int;  (** time inside [io_*] spans *)
  cleaner_us : int;  (** time inside [cleaner_pass] spans (sticky) *)
  checkpoint_us : int;  (** time inside [checkpoint]/[roll_forward] (sticky) *)
}

type tree = {
  t_name : string;
  t_count : int;
  t_incl_us : int;
  t_excl_us : int;
  t_children : tree list;  (** sorted by inclusive time, descending *)
}

type report = { ops : op_stat list; spans : tree list }

val report : t -> report
(** [ops] covers the [op_*] top-level spans in a fixed operation order;
    [spans] is the full aggregate tree (including non-op roots such as
    mount-time roll-forward). *)

val render_ops : report -> string
(** The attribution table: one row per operation; [cache_us] + [disk_us]
    + [cleaner_us] + [checkpoint_us] = [total_us]. *)

val render_tree : report -> string

val to_json : report -> Json.t
