type disk_kind = Read | Write

type t =
  | Disk_request of {
      kind : disk_kind;
      sync : bool;
      sector : int;
      sectors : int;
      service_us : int;
      sequential : bool;
    }
  | Cache_hit of { owner : int; blkno : int }
  | Cache_miss of { owner : int; blkno : int }
  | Cache_evict of { owner : int; blkno : int }
  | Cache_writeback of { owner : int; blkno : int }
  | Readahead of { owner : int; start : int; blocks : int }
  | Segment_write of { seg : int; seq : int; blocks : int; partial : bool }
  | Cleaner_pass of {
      victims : int;
      freed : int;
      bytes_read : int;
      bytes_moved : int;
    }
  | Checkpoint of { seq : int; region : int (* 0 = A, 1 = B *) }
  | Rollforward of { seg : int; seq : int; entries : int }
  | Ffs_sync_write of { what : string; sector : int; sectors : int }
  | Fault_injected of { kind : string; sector : int; sectors : int }
  | Disk_queue of {
      action : [ `Enqueue | `Dispatch ];
      kind : disk_kind;
      sector : int;
      sectors : int;
      depth : int;
      wait_us : int;
    }
  | Client_op of { client : int; op : string; latency_us : int }
  | Volume_op of { op : string; sector : int; sectors : int; runs : int }
  | Span_begin of { name : string; depth : int }
  | Span_end of { name : string; depth : int; elapsed_us : int }
  | Note of { name : string; fields : (string * Json.t) list }

type record = { at_us : int; event : t }

let name = function
  | Disk_request _ -> "disk_request"
  | Cache_hit _ -> "cache_hit"
  | Cache_miss _ -> "cache_miss"
  | Cache_evict _ -> "cache_evict"
  | Cache_writeback _ -> "cache_writeback"
  | Readahead _ -> "readahead"
  | Segment_write _ -> "segment_write"
  | Cleaner_pass _ -> "cleaner_pass"
  | Checkpoint _ -> "checkpoint"
  | Rollforward _ -> "rollforward"
  | Ffs_sync_write _ -> "ffs_sync_write"
  | Fault_injected _ -> "fault_injected"
  | Disk_queue _ -> "disk_queue"
  | Client_op _ -> "client_op"
  | Volume_op _ -> "volume_op"
  | Span_begin _ -> "span_begin"
  | Span_end _ -> "span_end"
  | Note _ -> "note"

let fields = function
  | Disk_request { kind; sync; sector; sectors; service_us; sequential } ->
      [
        ("kind", Json.String (match kind with Read -> "read" | Write -> "write"));
        ("sync", Json.Bool sync);
        ("sector", Json.Int sector);
        ("sectors", Json.Int sectors);
        ("service_us", Json.Int service_us);
        ("sequential", Json.Bool sequential);
      ]
  | Cache_hit { owner; blkno }
  | Cache_miss { owner; blkno }
  | Cache_evict { owner; blkno }
  | Cache_writeback { owner; blkno } ->
      [ ("owner", Json.Int owner); ("blkno", Json.Int blkno) ]
  | Readahead { owner; start; blocks } ->
      [
        ("owner", Json.Int owner);
        ("start", Json.Int start);
        ("blocks", Json.Int blocks);
      ]
  | Segment_write { seg; seq; blocks; partial } ->
      [
        ("seg", Json.Int seg);
        ("seq", Json.Int seq);
        ("blocks", Json.Int blocks);
        ("partial", Json.Bool partial);
      ]
  | Cleaner_pass { victims; freed; bytes_read; bytes_moved } ->
      [
        ("victims", Json.Int victims);
        ("freed", Json.Int freed);
        ("bytes_read", Json.Int bytes_read);
        ("bytes_moved", Json.Int bytes_moved);
      ]
  | Checkpoint { seq; region } ->
      [
        ("seq", Json.Int seq);
        ("region", Json.String (if region = 0 then "A" else "B"));
      ]
  | Rollforward { seg; seq; entries } ->
      [ ("seg", Json.Int seg); ("seq", Json.Int seq); ("entries", Json.Int entries) ]
  | Ffs_sync_write { what; sector; sectors } ->
      [
        ("what", Json.String what);
        ("sector", Json.Int sector);
        ("sectors", Json.Int sectors);
      ]
  | Fault_injected { kind; sector; sectors } ->
      [
        ("kind", Json.String kind);
        ("sector", Json.Int sector);
        ("sectors", Json.Int sectors);
      ]
  | Disk_queue { action; kind; sector; sectors; depth; wait_us } ->
      [
        ( "action",
          Json.String
            (match action with `Enqueue -> "enqueue" | `Dispatch -> "dispatch")
        );
        ("kind", Json.String (match kind with Read -> "read" | Write -> "write"));
        ("sector", Json.Int sector);
        ("sectors", Json.Int sectors);
        ("depth", Json.Int depth);
        ("wait_us", Json.Int wait_us);
      ]
  | Client_op { client; op; latency_us } ->
      [
        ("client", Json.Int client);
        ("op", Json.String op);
        ("latency_us", Json.Int latency_us);
      ]
  | Volume_op { op; sector; sectors; runs } ->
      [
        ("op", Json.String op);
        ("sector", Json.Int sector);
        ("sectors", Json.Int sectors);
        ("runs", Json.Int runs);
      ]
  | Span_begin { name; depth } ->
      [ ("name", Json.String name); ("depth", Json.Int depth) ]
  | Span_end { name; depth; elapsed_us } ->
      [
        ("name", Json.String name);
        ("depth", Json.Int depth);
        ("elapsed_us", Json.Int elapsed_us);
      ]
  | Note { name; fields } -> ("name", Json.String name) :: fields

let to_json { at_us; event } =
  Json.Obj
    (("at_us", Json.Int at_us) :: ("event", Json.String (name event))
    :: fields event)

let to_jsonl ?(dropped = 0) records =
  let body =
    String.concat ""
      (List.map (fun r -> Json.to_string (to_json r) ^ "\n") records)
  in
  if dropped <= 0 then body
  else
    (* Trailer marking a truncated export: a ring sink overflowed, so the
       stream is the newest [kept] records of [kept + dropped] emitted. *)
    body
    ^ Json.to_string
        (Json.Obj
           [
             ("event", Json.String "trace_truncated");
             ("dropped", Json.Int dropped);
             ("kept", Json.Int (List.length records));
           ])
    ^ "\n"

let csv_header = "at_us,event,attrs"

let to_csv_row r =
  (* The attrs column is the event's JSON fields, compact; double quotes
     are doubled per RFC 4180. *)
  let attrs = Json.to_string (Json.Obj (fields r.event)) in
  let quoted =
    String.concat "\"\"" (String.split_on_char '"' attrs)
  in
  Printf.sprintf "%d,%s,\"%s\"" r.at_us (name r.event) quoted

let to_csv records =
  String.concat "\n" (csv_header :: List.map to_csv_row records) ^ "\n"
