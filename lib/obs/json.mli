(** A minimal JSON tree: enough to render metrics, trace events and
    benchmark results, and to parse them back for validation.  The repo
    deliberately avoids external JSON dependencies; everything emitted by
    {!Lfs_obs} is plain ASCII and round-trips through this module. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact, single-line rendering (what JSONL wants). Non-finite floats
    become [null] — JSON has no literal for them. *)

val to_string_pretty : t -> string
(** Indented rendering, trailing newline included. *)

exception Parse_error of string

val of_string : string -> t
(** @raise Parse_error on malformed input. *)

val of_string_opt : string -> t option

(** {1 Accessors} *)

val member : string -> t -> t option
val path : string list -> t -> t option
val to_float_opt : t -> float option
val to_list_opt : t -> t list option
val to_string_opt : t -> string option
