(** Typed trace events, one constructor per interesting thing the storage
    stack does.  Events are raw facts; the simulated-time stamp is added
    by {!Bus.emit} to form a {!record}. *)

type disk_kind = Read | Write

type t =
  | Disk_request of {
      kind : disk_kind;
      sync : bool;
      sector : int;
      sectors : int;
      service_us : int;
      sequential : bool;
    }
  | Cache_hit of { owner : int; blkno : int }
  | Cache_miss of { owner : int; blkno : int }
  | Cache_evict of { owner : int; blkno : int }
  | Cache_writeback of { owner : int; blkno : int }
  | Readahead of { owner : int; start : int; blocks : int }
      (** A read-ahead prefetch of [blocks] blocks starting at block
          [start] of file [owner]. *)
  | Segment_write of { seg : int; seq : int; blocks : int; partial : bool }
  | Cleaner_pass of {
      victims : int;
      freed : int;
      bytes_read : int;
      bytes_moved : int;
    }
  | Checkpoint of { seq : int; region : int  (** 0 = A, 1 = B *) }
  | Rollforward of { seg : int; seq : int; entries : int }
  | Ffs_sync_write of { what : string; sector : int; sectors : int }
  | Fault_injected of { kind : string; sector : int; sectors : int }
      (** An injected fault from a {!Lfs_disk.Faulty} scenario: [kind] is
          one of ["crash"], ["torn_write"], ["read_error"] or
          ["bad_sector"]; [sector]/[sectors] locate the affected
          request. *)
  | Disk_queue of {
      action : [ `Enqueue | `Dispatch ];
      kind : disk_kind;
      sector : int;
      sectors : int;
      depth : int;  (** queue depth just after the action *)
      wait_us : int;
          (** dispatch only: simulated time the request waited between
              arrival and reaching the device *)
    }
      (** Request-queue activity when a scheduling discipline is
          installed on {!Lfs_disk.Io} ([`Enqueue]: a request entered the
          queue; [`Dispatch]: the discipline handed it to the device). *)
  | Client_op of { client : int; op : string; latency_us : int }
      (** One completed operation of a concurrent-engine client: [op] is
          the operation name (["create"], ["read"], ["overwrite"],
          ["delete"]), [latency_us] the end-to-end simulated latency
          including queueing behind other clients. *)
  | Volume_op of { op : string; sector : int; sectors : int; runs : int }
      (** One logical request on a multi-member {!Lfs_disk.Volume} device:
          [op] is ["read"], ["write"] or ["write_async"],
          [sector]/[sectors] give the logical (volume-level) range and
          [runs] the number of per-member device requests it split into.
          The member-level requests themselves still appear as ordinary
          [Disk_request] events. *)
  | Span_begin of { name : string; depth : int }
  | Span_end of { name : string; depth : int; elapsed_us : int }
  | Note of { name : string; fields : (string * Json.t) list }
      (** Escape hatch for ad-hoc instrumentation. *)

type record = { at_us : int; event : t }

val name : t -> string
(** Snake-case tag, also the JSON "event" field. *)

val fields : t -> (string * Json.t) list

val to_json : record -> Json.t

val to_jsonl : ?dropped:int -> record list -> string
(** One compact JSON object per line.  When [dropped > 0] (a ring sink
    overflowed), a final [{"event":"trace_truncated","dropped":N,
    "kept":K}] trailer line marks the export as the newest [K] of
    [K + N] records. *)

val csv_header : string

val to_csv : record list -> string
(** [at_us,event,attrs] rows; attrs is the event's JSON fields as one
    RFC-4180-quoted column. *)
