module Table = Lfs_util.Table

(* Log-scale histogram: bucket [k] counts values v with
   2^(k-1) <= v < 2^k (bucket 0 collects v <= 0).  63 buckets cover the
   whole non-negative int range. *)
let nbuckets = 63

type histogram = {
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
  h_buckets : int array;
}

type counter = { mutable c : int }

type metric =
  | Mcounter of counter
  | Mgauge of (unit -> float)
  | Mhist of histogram

type t = { tbl : (string, metric) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

let kind_name = function
  | Mcounter _ -> "counter"
  | Mgauge _ -> "gauge"
  | Mhist _ -> "histogram"

let register t name metric =
  match Hashtbl.find_opt t.tbl name with
  | None ->
      Hashtbl.replace t.tbl name metric;
      metric
  | Some existing ->
      (* Get-or-create: a remount re-registers the same names against the
         registry that lives with the I/O stack. *)
      if kind_name existing <> kind_name metric then
        invalid_arg
          (Printf.sprintf "Metrics: %s already registered as a %s" name
             (kind_name existing));
      existing

let counter t name =
  match register t name (Mcounter { c = 0 }) with
  | Mcounter c -> c
  | _ -> assert false

(* Per-member device instruments ("disk.<i>.reads", ...): the member
   index is a label dimension, not part of the metric identity, so the
   catalog records these as "disk.<i>.<name>". *)
let member_counter t ~member name =
  if member < 0 then invalid_arg "Metrics.member_counter: negative member";
  counter t (Printf.sprintf "disk.%d.%s" member name)

let incr c = c.c <- c.c + 1
let add c n = c.c <- c.c + n
let value c = c.c
let reset_counter c = c.c <- 0

let gauge t name f =
  (* Gauges are callbacks evaluated at snapshot time; re-registration
     replaces the closure (a fresh component now owns the name). *)
  Hashtbl.replace t.tbl name (Mgauge f)

let fresh_histogram () =
  { h_count = 0; h_sum = 0; h_min = max_int; h_max = min_int; h_buckets = Array.make nbuckets 0 }

let histogram t name =
  match register t name (Mhist (fresh_histogram ())) with
  | Mhist h -> h
  | _ -> assert false

(* Aggregators (Profile) keep their own keyed tables of histogram cells
   and only need the bucketing machinery, not a registry slot. *)
let standalone_histogram = fresh_histogram

let bucket_of v =
  if v <= 0 then 0
  else begin
    let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
    min (nbuckets - 1) (bits 0 v)
  end

let bucket_upper k = if k = 0 then 0 else (1 lsl k) - 1

let observe h v =
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  let k = bucket_of v in
  h.h_buckets.(k) <- h.h_buckets.(k) + 1

let reset_histogram h =
  h.h_count <- 0;
  h.h_sum <- 0;
  h.h_min <- max_int;
  h.h_max <- min_int;
  Array.fill h.h_buckets 0 nbuckets 0

(* Snapshots *)

type hist_snapshot = {
  count : int;
  sum : int;
  min_v : int;  (** meaningless when [count = 0] *)
  max_v : int;
  buckets : (int * int) list;  (** (inclusive upper bound, count), non-empty buckets only *)
}

type value_snapshot =
  | Counter of int
  | Gauge of float
  | Histogram of hist_snapshot

type snapshot = (string * value_snapshot) list

let snapshot_histogram h =
  {
    count = h.h_count;
    sum = h.h_sum;
    min_v = h.h_min;
    max_v = h.h_max;
    buckets =
      List.filter_map
        (fun k ->
          if h.h_buckets.(k) > 0 then Some (bucket_upper k, h.h_buckets.(k))
          else None)
        (List.init nbuckets Fun.id);
  }

let snapshot t =
  Hashtbl.fold
    (fun name metric acc ->
      let v =
        match metric with
        | Mcounter c -> Counter c.c
        | Mgauge f -> Gauge (f ())
        | Mhist h -> Histogram (snapshot_histogram h)
      in
      (name, v) :: acc)
    t.tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset t =
  Hashtbl.iter
    (fun _ metric ->
      match metric with
      | Mcounter c -> reset_counter c
      | Mgauge _ -> ()
      | Mhist h -> reset_histogram h)
    t.tbl

let reset_prefix t prefix =
  Hashtbl.iter
    (fun name metric ->
      if String.starts_with ~prefix name then
        match metric with
        | Mcounter c -> reset_counter c
        | Mgauge _ -> ()
        | Mhist h -> reset_histogram h)
    t.tbl

(* [diff ~before ~after]: counters and histograms subtract; gauges are
   point-in-time so the later reading wins.  Metrics absent from [before]
   pass through unchanged. *)
let diff ~before ~after =
  List.map
    (fun (name, v) ->
      match (v, List.assoc_opt name before) with
      | Counter a, Some (Counter b) -> (name, Counter (a - b))
      | Histogram a, Some (Histogram b) ->
          let buckets =
            List.filter_map
              (fun (ub, n) ->
                let n' =
                  n - Option.value ~default:0 (List.assoc_opt ub b.buckets)
                in
                if n' > 0 then Some (ub, n') else None)
              a.buckets
          in
          ( name,
            Histogram
              {
                count = a.count - b.count;
                sum = a.sum - b.sum;
                min_v = a.min_v;
                max_v = a.max_v;
                buckets;
              } )
      | v, _ -> (name, v))
    after

let find snap name = List.assoc_opt name snap

let counter_value snap name =
  match find snap name with Some (Counter n) -> Some n | _ -> None

(* Approximate quantile from the log buckets: linear interpolation within
   the bucket where the cumulative count crosses q, assuming samples are
   spread uniformly across the bucket's range.  Clamped to the observed
   min/max, which makes single-bucket populations exact. *)
let quantile hs q =
  if hs.count = 0 then None
  else begin
    let target = int_of_float (ceil (q *. float_of_int hs.count)) in
    let target = max 1 (min hs.count target) in
    let rec walk seen = function
      | [] -> Some hs.max_v
      | (ub, n) :: rest ->
          if seen + n >= target then begin
            (* [(ub / 2) + 1], not [(ub + 1) / 2]: every bucket bound is
               odd (2^k - 1) so they agree, but the latter overflows on
               the [max_int] bucket. *)
            let lb = if ub = 0 then 0 else (ub / 2) + 1 in
            let frac =
              float_of_int (target - seen) /. float_of_int n
            in
            let est =
              float_of_int lb
              +. (frac *. (float_of_int ub -. float_of_int lb))
            in
            let est = int_of_float est in
            (* Keep float-conversion artifacts inside the bucket. *)
            let est = if est < lb then lb else if est > ub then ub else est in
            Some (max hs.min_v (min est hs.max_v))
          end
          else walk (seen + n) rest
    in
    walk 0 hs.buckets
  end

let mean hs =
  if hs.count = 0 then 0.0 else float_of_int hs.sum /. float_of_int hs.count

(* Rendering *)

let pp_value = function
  | Counter n -> string_of_int n
  | Gauge g -> Table.fmt_float ~decimals:2 g
  | Histogram hs ->
      if hs.count = 0 then "count=0"
      else
        Printf.sprintf "count=%d mean=%.1f min=%d p50~%d p99~%d max=%d"
          hs.count (mean hs) hs.min_v
          (Option.value ~default:0 (quantile hs 0.5))
          (Option.value ~default:0 (quantile hs 0.99))
          hs.max_v

let render ?prefix snap =
  let rows =
    List.filter_map
      (fun (name, v) ->
        let keep =
          match prefix with
          | None -> true
          | Some p -> String.starts_with ~prefix:p name
        in
        if keep then Some [ name; pp_value v ] else None)
      snap
  in
  Table.render ~headers:[ "metric"; "value" ] rows

let json_of_value = function
  | Counter n -> Json.Int n
  | Gauge g -> Json.Float g
  | Histogram hs ->
      Json.Obj
        [
          ("count", Json.Int hs.count);
          ("sum", Json.Int hs.sum);
          ("min", if hs.count = 0 then Json.Null else Json.Int hs.min_v);
          ("max", if hs.count = 0 then Json.Null else Json.Int hs.max_v);
          ( "buckets",
            Json.List
              (List.map
                 (fun (ub, n) ->
                   Json.Obj [ ("le", Json.Int ub); ("count", Json.Int n) ])
                 hs.buckets) );
        ]

let to_json snap =
  Json.Obj (List.map (fun (name, v) -> (name, json_of_value v)) snap)
