(** The metrics registry: named counters, gauges and log-scale histograms
    shared by every layer of the storage stack.

    One registry lives with each simulated I/O stack (created by the disk,
    reachable through {!Lfs_disk.Io.metrics}); components register their
    instruments under dotted names ([disk.*], [io.*], [cache.*], [lfs.*],
    [ffs.*]).  Registration is get-or-create so remounting a file system
    on the same stack reuses (and may {!reset_prefix}) its instruments.

    Counters and histograms are plain mutable cells — updating them costs
    an increment, so they are always on.  Gauges are callbacks evaluated
    at {!snapshot} time. *)

type t

type counter
type histogram

val create : unit -> t

val counter : t -> string -> counter
(** Get or create.  @raise Invalid_argument if the name is registered as
    a different kind. *)

val member_counter : t -> member:int -> string -> counter
(** Get or create a per-member device counter: [member_counter t ~member:2
    "seeks"] is the counter named ["disk.2.seeks"].  The member index is a
    label dimension on the [disk.*] family — the catalog lists the family
    once as [disk.<i>.<name>].  Aggregate (unlabelled) [disk.*] counters
    are registered separately by the device layer so name-based consumers
    keep working on multi-member stacks. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int
val reset_counter : counter -> unit

val gauge : t -> string -> (unit -> float) -> unit
(** Register (or replace) a gauge callback. *)

val histogram : t -> string -> histogram
(** Get or create a log-scale histogram: bucket boundaries are the powers
    of two, so values spanning nine decades fit in 63 buckets. *)

val standalone_histogram : unit -> histogram
(** A histogram cell not registered anywhere — for aggregators (like
    {!Profile}) that keep their own keyed tables and only need the
    bucketing/quantile machinery. *)

val observe : histogram -> int -> unit
(** Record one (non-negative; negatives land in the zero bucket) value. *)

(** {1 Snapshots} *)

type hist_snapshot = {
  count : int;
  sum : int;
  min_v : int;  (** meaningless when [count = 0] *)
  max_v : int;
  buckets : (int * int) list;
      (** (inclusive upper bound, count), non-empty buckets only *)
}

type value_snapshot =
  | Counter of int
  | Gauge of float
  | Histogram of hist_snapshot

type snapshot = (string * value_snapshot) list
(** Sorted by name. *)

val snapshot : t -> snapshot

val snapshot_histogram : histogram -> hist_snapshot
(** Snapshot one histogram cell (e.g. a {!standalone_histogram}). *)

val reset : t -> unit
(** Zero every counter and histogram (gauges are callbacks and have no
    state to clear). *)

val reset_prefix : t -> string -> unit
(** Zero only the instruments whose name starts with [prefix] — e.g. a
    fresh mount resetting [lfs.] while the disk's lifetime counters keep
    running. *)

val diff : before:snapshot -> after:snapshot -> snapshot
(** Per-phase deltas: counters and histogram populations subtract, gauges
    keep the [after] reading.  Histogram [min_v]/[max_v] are taken from
    [after] (minima are not subtractable). *)

val find : snapshot -> string -> value_snapshot option
val counter_value : snapshot -> string -> int option

val quantile : hist_snapshot -> float -> int option
(** Estimated [q]-quantile: linear interpolation within the log bucket
    where the cumulative count crosses [q], clamped to the observed
    min/max.  Exact when all samples share one bucket; otherwise the
    quantization error is bounded by the bucket width. *)

val mean : hist_snapshot -> float

(** {1 Rendering} *)

val pp_value : value_snapshot -> string

val render : ?prefix:string -> snapshot -> string
(** Two-column table, optionally restricted to a name prefix. *)

val to_json : snapshot -> Json.t
