(** Consistency checking for the FFS baseline — the counterpart of
    {!Lfs_core.Check}, so both systems in every figure run under the
    same audit.

    Invariants checked (all update-in-place hazards the paper's §3
    baseline lives with):

    - every block reachable from an allocated inode (direct, indirect,
      double-indirect) is owned by exactly one structure and lies in a
      data region, not the superblock or a bitmap/inode-table area;
    - the cylinder-group block bitmaps agree with reachability: group
      metadata is permanently allocated, and a data block is marked
      used iff something references it (no leaks, no lost blocks);
    - the namespace is sound: every directory entry resolves to an
      allocated inode, link counts match entry counts, and every
      allocated inode is reachable from the root. *)

type issue = Fs.issue =
  | Double_reference of { addr : int; owners : string list }
      (** one disk block claimed by two different structures *)
  | Leaked_block of { addr : int }
      (** marked used in its cylinder-group bitmap, referenced by
          nothing *)
  | Lost_block of { owner : string; addr : int }
      (** referenced by a live structure, marked free in the bitmap *)
  | Bad_dir_entry of { dir : int; name : string; inum : int }
      (** directory entry pointing at an unallocated inode *)
  | Bad_nlink of { inum : int; nlink : int; entries : int }
      (** an inode whose link count disagrees with its directory
          entries *)
  | Orphan_inode of { inum : int }
      (** allocated inode with no directory entry *)
  | Unreadable of { inum : int; reason : string }
  | Address_out_of_range of { owner : string; addr : int }
      (** pointer outside the disk, or into a bitmap/inode-table
          region *)

val pp_issue : Format.formatter -> issue -> unit

val fsck : Fs.t -> issue list
(** Full structural verification of the live (cache-coherent) state.
    An empty list means the file system is structurally sound. *)
