module Bitset = Lfs_util.Bitset

type t = {
  layout : Layout.t;
  block_maps : Bitset.t array;  (* per group, group-relative block bits *)
  inode_maps : Bitset.t array;  (* per group, group-relative inode bits *)
  dirty : bool array;
}

let layout t = t.layout

let meta_blocks (l : Layout.t) = l.bb_blocks + l.ib_blocks + l.it_blocks

let create (l : Layout.t) =
  let t =
    {
      layout = l;
      block_maps = Array.init l.ngroups (fun _ -> Bitset.create l.group_blocks);
      inode_maps =
        Array.init l.ngroups (fun _ -> Bitset.create l.inodes_per_group);
      dirty = Array.make l.ngroups true;
    }
  in
  (* Bitmap, inode-bitmap and inode-table blocks are never data blocks. *)
  Array.iter
    (fun m ->
      for i = 0 to meta_blocks l - 1 do
        Bitset.set m i
      done)
    t.block_maps;
  (* inum 0 is the null inum. *)
  Bitset.set t.inode_maps.(0) 0;
  t

(* Crash repair: fsck rebuilds both bitmaps from scratch, re-marking what
   the inode table and the reachable block pointers prove allocated. *)

let reset t =
  let l = t.layout in
  for g = 0 to l.Layout.ngroups - 1 do
    t.block_maps.(g) <- Bitset.create l.Layout.group_blocks;
    t.inode_maps.(g) <- Bitset.create l.Layout.inodes_per_group;
    for i = 0 to meta_blocks l - 1 do
      Bitset.set t.block_maps.(g) i
    done;
    t.dirty.(g) <- true
  done;
  Bitset.set t.inode_maps.(0) 0

let mark_inode t inum =
  let g = Layout.group_of_inum t.layout inum in
  Bitset.set t.inode_maps.(g) (inum mod t.layout.Layout.inodes_per_group);
  t.dirty.(g) <- true

let mark_block t addr =
  let g = Layout.group_of_block t.layout addr in
  Bitset.set t.block_maps.(g) (addr - Layout.group_first_block t.layout g);
  t.dirty.(g) <- true

(* Inodes *)

let inode_allocated t inum =
  let g = Layout.group_of_inum t.layout inum in
  Bitset.mem t.inode_maps.(g) (inum mod t.layout.Layout.inodes_per_group)

let free_in_group t g =
  Bitset.length t.inode_maps.(g) - Bitset.cardinal t.inode_maps.(g)

let alloc_inode t ~group ~spread =
  let l = t.layout in
  let order =
    if spread then
      List.sort
        (fun a b -> compare (free_in_group t b) (free_in_group t a))
        (List.init l.Layout.ngroups Fun.id)
    else List.init l.Layout.ngroups (fun i -> (group + i) mod l.Layout.ngroups)
  in
  let rec go = function
    | [] -> None
    | g :: rest -> (
        match Bitset.find_first_clear t.inode_maps.(g) with
        | Some idx ->
            Bitset.set t.inode_maps.(g) idx;
            t.dirty.(g) <- true;
            Some ((g * l.Layout.inodes_per_group) + idx)
        | None -> go rest)
  in
  go order

let free_inode t inum =
  let g = Layout.group_of_inum t.layout inum in
  Bitset.clear t.inode_maps.(g) (inum mod t.layout.Layout.inodes_per_group);
  t.dirty.(g) <- true

let free_inode_count t =
  Array.fold_left (fun acc m -> acc + Bitset.length m - Bitset.cardinal m) 0
    t.inode_maps
  |> fun n -> n - 0

(* Blocks *)

let block_allocated t addr =
  let g = Layout.group_of_block t.layout addr in
  Bitset.mem t.block_maps.(g) (addr - Layout.group_first_block t.layout g)

let alloc_in_group t g ~start =
  match Bitset.find_first_clear ~start t.block_maps.(g) with
  | Some idx ->
      Bitset.set t.block_maps.(g) idx;
      t.dirty.(g) <- true;
      Some (Layout.group_first_block t.layout g + idx)
  | None -> None

let alloc_block t ~near =
  let l = t.layout in
  let g0, start =
    if near >= 1 && near < 1 + (l.Layout.ngroups * l.Layout.group_blocks) then begin
      let g = Layout.group_of_block l near in
      (g, near - Layout.group_first_block l g + 1)
    end
    else (0, meta_blocks l)
  in
  let rec go i =
    if i >= l.Layout.ngroups then None
    else begin
      let g = (g0 + i) mod l.Layout.ngroups in
      let start = if i = 0 then start mod l.Layout.group_blocks else meta_blocks l in
      match alloc_in_group t g ~start with
      | Some addr -> Some addr
      | None -> go (i + 1)
    end
  in
  go 0

let free_block t addr =
  let g = Layout.group_of_block t.layout addr in
  let idx = addr - Layout.group_first_block t.layout g in
  if idx < meta_blocks t.layout then
    invalid_arg "Alloc.free_block: metadata block";
  Bitset.clear t.block_maps.(g) idx;
  t.dirty.(g) <- true

let free_block_count t =
  Array.fold_left (fun acc m -> acc + Bitset.length m - Bitset.cardinal m) 0
    t.block_maps

(* Persistence: block bitmap blocks then inode bitmap blocks, packed. *)

let dirty_groups t =
  List.filter (fun g -> t.dirty.(g)) (List.init t.layout.Layout.ngroups Fun.id)

let clear_dirty t = Array.fill t.dirty 0 (Array.length t.dirty) false

let slice_blocks (l : Layout.t) packed nblocks =
  List.init nblocks (fun i ->
      let b = Bytes.make l.Layout.block_size '\000' in
      let off = i * l.Layout.block_size in
      let len = min l.Layout.block_size (Bytes.length packed - off) in
      if len > 0 then Bytes.blit packed off b 0 len;
      b)

let encode_group t g =
  let l = t.layout in
  let bb = slice_blocks l (Bitset.to_bytes t.block_maps.(g)) l.Layout.bb_blocks in
  let ib = slice_blocks l (Bitset.to_bytes t.inode_maps.(g)) l.Layout.ib_blocks in
  List.mapi (fun i b -> (Layout.block_bitmap_block l ~group:g ~idx:i, b)) bb
  @ List.mapi (fun i b -> (Layout.inode_bitmap_block l ~group:g ~idx:i, b)) ib

let load_group t g ~read =
  let l = t.layout in
  let gather n addr_of =
    let buf = Bytes.create (n * l.Layout.block_size) in
    List.iteri
      (fun i addr ->
        Bytes.blit (read addr) 0 buf (i * l.Layout.block_size)
          l.Layout.block_size)
      (List.init n addr_of);
    buf
  in
  let bb = gather l.Layout.bb_blocks (fun i -> Layout.block_bitmap_block l ~group:g ~idx:i) in
  let ib = gather l.Layout.ib_blocks (fun i -> Layout.inode_bitmap_block l ~group:g ~idx:i) in
  t.block_maps.(g) <- Bitset.of_bytes ~length:l.Layout.group_blocks bb;
  t.inode_maps.(g) <- Bitset.of_bytes ~length:l.Layout.inodes_per_group ib;
  t.dirty.(g) <- false
