(* Conventional home of the FFS structural checker.  The implementation
   lives at the bottom of fs.ml because it walks the block map and
   directory internals; this module gives it the same `Check.fsck`
   surface as the LFS checker so callers treat the two systems alike. *)

type issue = Fs.issue =
  | Double_reference of { addr : int; owners : string list }
  | Leaked_block of { addr : int }
  | Lost_block of { owner : string; addr : int }
  | Bad_dir_entry of { dir : int; name : string; inum : int }
  | Bad_nlink of { inum : int; nlink : int; entries : int }
  | Orphan_inode of { inum : int }
  | Unreadable of { inum : int; reason : string }
  | Address_out_of_range of { owner : string; addr : int }

let pp_issue = Fs.pp_issue
let fsck = Fs.fsck
