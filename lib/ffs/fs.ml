module Cache = Lfs_cache.Block_cache
module Readahead = Lfs_cache.Readahead
module Dir_block = Lfs_vfs.Dir_block
module Errors = Lfs_vfs.Errors
module Fs_intf = Lfs_vfs.Fs_intf
module Io = Lfs_disk.Io
module Path = Lfs_vfs.Path
module Bus = Lfs_obs.Bus
module Event = Lfs_obs.Event
module Profile = Lfs_obs.Profile

(* Announce a synchronous metadata write on the trace bus — the pattern
   the paper blames for FFS's small-file performance (§2). *)
let trace_sync_write io ~what ~sector ~sectors =
  let bus = Io.bus io in
  if Bus.enabled bus then
    Bus.emit bus (Event.Ffs_sync_write { what; sector; sectors })

let owner_raw = -3

type entry = { ino : Inode.t; mutable dirty : bool }

type t = {
  io : Io.t;
  config : Config.t;
  layout : Layout.t;
  cache : Cache.t;
  readahead : Readahead.t;
  alloc : Alloc.t;
  itable : (int, entry) Hashtbl.t;
  root : int;
}

let name = "FFS"
let io t = t.io
let config t = t.config
let layout t = t.layout
let free_blocks t = Alloc.free_block_count t.alloc

let key_data ~inum ~blkno = { Cache.owner = inum; blkno }
let key_raw addr = { Cache.owner = owner_raw; blkno = addr }
let sector_of_block t addr = Layout.sector_of_block t.layout addr

(* Raw (by-address) block read through the cache: inode-table blocks and
   indirect blocks. *)
let read_raw t addr =
  if addr = Layout.null_addr then invalid_arg "Ffs.read_raw: null address";
  match Cache.find t.cache (key_raw addr) with
  | Some data -> data
  | None ->
      let data =
        Io.sync_read t.io ~sector:(sector_of_block t addr)
          ~count:t.layout.Layout.block_sectors
      in
      Cache.insert t.cache (key_raw addr) ~dirty:false data;
      data

(* Update one inode slot in its fixed table block.  [`Sync] models BSD's
   synchronous metadata write on create/delete; [`Async] leaves the block
   dirty for delayed write-back. *)
let store_inode t (ino : Inode.t option) ~inum ~mode =
  let addr, slot = Layout.inode_location t.layout inum in
  let block = Bytes.copy (read_raw t addr) in
  (match ino with
  | Some ino -> Inode.encode_into ino block ~off:(slot * Layout.inode_bytes)
  | None -> Inode.clear_slot block ~off:(slot * Layout.inode_bytes));
  match mode with
  | `Sync ->
      trace_sync_write t.io ~what:"inode" ~sector:(sector_of_block t addr)
        ~sectors:t.layout.Layout.block_sectors;
      Io.sync_write t.io ~sector:(sector_of_block t addr) block;
      Cache.insert t.cache (key_raw addr) ~dirty:false block
  | `Async -> Cache.insert t.cache (key_raw addr) ~dirty:true block

let get_entry t inum =
  match Hashtbl.find_opt t.itable inum with
  | Some e -> e
  | None ->
      if not (Alloc.inode_allocated t.alloc inum) then
        Errors.raise_ (Errors.Enoent (Printf.sprintf "inum %d" inum));
      let addr, slot = Layout.inode_location t.layout inum in
      let block = read_raw t addr in
      (match Inode.decode_at block ~off:(slot * Layout.inode_bytes) with
      | Some ino when ino.Inode.inum = inum ->
          let e = { ino; dirty = false } in
          Hashtbl.replace t.itable inum e;
          e
      | Some _ | None ->
          failwith
            (Printf.sprintf "FFS: inode bitmap says %d allocated but slot empty"
               inum))

(* Pointer access.  Indirect blocks are ordinary disk blocks updated in
   place through the cache. *)

let read_ptr t addr idx =
  Int32.to_int (Bytes.get_int32_le (read_raw t addr) (idx * 4)) land 0xFFFFFFFF

let write_ptr t addr idx v =
  let block = Bytes.copy (read_raw t addr) in
  Bytes.set_int32_le block (idx * 4) (Int32.of_int v);
  Cache.insert t.cache (key_raw addr) ~dirty:true block

let bmap_read t (e : entry) blkno =
  if blkno < 0 then invalid_arg "bmap_read";
  let p = Layout.ptrs_per_block t.layout in
  if blkno < Inode.ndirect then e.ino.Inode.direct.(blkno)
  else if blkno < Inode.ndirect + p then begin
    if e.ino.Inode.indirect = Layout.null_addr then Layout.null_addr
    else read_ptr t e.ino.Inode.indirect (blkno - Inode.ndirect)
  end
  else begin
    let d = blkno - Inode.ndirect - p in
    let child = d / p and off = d mod p in
    if child >= p then Errors.raise_ Errors.Efbig;
    if e.ino.Inode.dindirect = Layout.null_addr then Layout.null_addr
    else begin
      let child_addr = read_ptr t e.ino.Inode.dindirect child in
      if child_addr = Layout.null_addr then Layout.null_addr
      else read_ptr t child_addr off
    end
  end

(* BSD's maxbpg: one file may claim only so many blocks of a cylinder
   group before allocation moves on, so large files spread across the
   disk rather than monopolizing a group. *)
let maxbpg = 256

let alloc_near t (e : entry) blkno =
  let near =
    if blkno > 0 && blkno mod maxbpg = 0 then begin
      (* Chunk boundary: rotate to the next group. *)
      let g =
        (Layout.group_of_inum t.layout e.ino.Inode.inum + (blkno / maxbpg))
        mod t.layout.Layout.ngroups
      in
      Layout.group_data_first t.layout g
    end
    else begin
      (* Prefer right after the file's previous block; fall back to the
         inode's group. *)
      let rec back i =
        if i < 0 then
          Layout.group_data_first t.layout
            (Layout.group_of_inum t.layout e.ino.Inode.inum)
        else begin
          let a = bmap_read t e i in
          if a <> Layout.null_addr then a else back (i - 1)
        end
      in
      back (min (blkno - 1) (Inode.ndirect - 1 + Layout.ptrs_per_block t.layout))
    end
  in
  match Alloc.alloc_block t.alloc ~near with
  | Some addr -> addr
  | None -> Errors.raise_ Errors.Enospc

(* Allocate a zeroed metadata (pointer) block. *)
let alloc_meta_block t (e : entry) blkno =
  let addr = alloc_near t e blkno in
  Cache.insert t.cache (key_raw addr) ~dirty:true
    (Bytes.make t.layout.Layout.block_size '\000');
  addr

let bmap_alloc t (e : entry) blkno =
  let p = Layout.ptrs_per_block t.layout in
  if blkno < Inode.ndirect then begin
    if e.ino.Inode.direct.(blkno) = Layout.null_addr then begin
      e.ino.Inode.direct.(blkno) <- alloc_near t e blkno;
      e.dirty <- true
    end;
    e.ino.Inode.direct.(blkno)
  end
  else if blkno < Inode.ndirect + p then begin
    if e.ino.Inode.indirect = Layout.null_addr then begin
      e.ino.Inode.indirect <- alloc_meta_block t e blkno;
      e.dirty <- true
    end;
    let idx = blkno - Inode.ndirect in
    let addr = read_ptr t e.ino.Inode.indirect idx in
    if addr <> Layout.null_addr then addr
    else begin
      let addr = alloc_near t e blkno in
      write_ptr t e.ino.Inode.indirect idx addr;
      addr
    end
  end
  else begin
    let d = blkno - Inode.ndirect - p in
    let child = d / p and off = d mod p in
    if child >= p then Errors.raise_ Errors.Efbig;
    if e.ino.Inode.dindirect = Layout.null_addr then begin
      e.ino.Inode.dindirect <- alloc_meta_block t e blkno;
      e.dirty <- true
    end;
    let child_addr =
      let a = read_ptr t e.ino.Inode.dindirect child in
      if a <> Layout.null_addr then a
      else begin
        let a = alloc_meta_block t e blkno in
        write_ptr t e.ino.Inode.dindirect child a;
        a
      end
    in
    let addr = read_ptr t child_addr off in
    if addr <> Layout.null_addr then addr
    else begin
      let addr = alloc_near t e blkno in
      write_ptr t child_addr off addr;
      addr
    end
  end

(* Write one elevator window, already address-sorted.  With
   [write_clustering] on, physically adjacent blocks coalesce into a
   single multi-block transfer (the 4.4BSD clustering pass). *)
let write_window t window =
  let items =
    List.filter_map
      (fun (addr, key) ->
        if addr = Layout.null_addr then None
        else
          match Cache.find t.cache key with
          | Some data -> Some (addr, key, data)
          | None -> None)
      window
  in
  if not t.config.Config.write_clustering then
    List.iter
      (fun (addr, key, data) ->
        Io.async_write t.io ~sector:(sector_of_block t addr) data;
        Cache.mark_clean t.cache key)
      items
  else begin
    (* [group] holds a run of adjacent blocks, newest first. *)
    let flush_group group =
      match List.rev group with
      | [] -> ()
      | (addr0, _, _) :: _ as run ->
          let data = Bytes.concat Bytes.empty (List.map (fun (_, _, d) -> d) run) in
          Io.async_write t.io ~sector:(sector_of_block t addr0) data;
          let n = List.length run in
          if n > 1 then Io.note_clustered_write t.io ~blocks:n;
          List.iter (fun (_, key, _) -> Cache.mark_clean t.cache key) run
    in
    let last =
      List.fold_left
        (fun group ((addr, _, _) as item) ->
          match group with
          | (prev, _, _) :: _ when addr = prev + 1 -> item :: group
          | [] -> [ item ]
          | _ ->
              flush_group group;
              [ item ])
        [] items
    in
    flush_group last
  end

(* Delayed write-back: dirty inodes are folded into their table blocks,
   then every dirty block goes to its fixed address, sorted so the
   elevator gets its best shot — FFS's problem is where the blocks are,
   not the order they are issued in. *)
let flush t =
  Hashtbl.iter
    (fun inum (e : entry) ->
      if e.dirty then begin
        store_inode t (Some e.ino) ~inum ~mode:`Async;
        e.dirty <- false
      end)
    t.itable;
  let writes =
    Cache.fold_dirty
      (fun key _ acc ->
        let addr =
          if key.Cache.owner = owner_raw then key.Cache.blkno
          else
            bmap_read t (get_entry t key.Cache.owner) key.Cache.blkno
        in
        (addr, key) :: acc)
      t.cache []
    |> List.rev
  in
  (* The disk driver's elevator reorders a bounded queue, not the whole
     backlog: sort within windows of the era's tagged-queue depth. *)
  let queue_depth = 16 in
  let rec windows = function
    | [] -> ()
    | l ->
        let rec take n acc rest =
          match (n, rest) with
          | 0, _ | _, [] -> (List.rev acc, rest)
          | n, x :: rest -> take (n - 1) (x :: acc) rest
        in
        let window, rest = take queue_depth [] l in
        write_window t (List.sort compare window);
        windows rest
  in
  windows writes

let persist_bitmaps t =
  let blocks =
    List.concat_map
      (fun g -> Alloc.encode_group t.alloc g)
      (Alloc.dirty_groups t.alloc)
  in
  if not t.config.Config.write_clustering then
    List.iter
      (fun (addr, block) ->
        Io.async_write t.io ~sector:(sector_of_block t addr) block)
      blocks
  else begin
    let flush_group group =
      match List.rev group with
      | [] -> ()
      | (addr0, _) :: _ as run ->
          Io.async_write t.io ~sector:(sector_of_block t addr0)
            (Bytes.concat Bytes.empty (List.map snd run));
          let n = List.length run in
          if n > 1 then Io.note_clustered_write t.io ~blocks:n
    in
    let last =
      List.fold_left
        (fun group ((addr, _) as item) ->
          match group with
          | (prev, _) :: _ when addr = prev + 1 -> item :: group
          | [] -> [ item ]
          | _ ->
              flush_group group;
              [ item ])
        []
        (List.sort compare blocks)
    in
    flush_group last
  end;
  Alloc.clear_dirty t.alloc

let do_sync t =
  flush t;
  persist_bitmaps t;
  Io.drain t.io

let housekeep t =
  if Cache.over_capacity t.cache then flush t;
  match Cache.oldest_dirty_age_us t.cache with
  | Some age when age >= t.config.Config.writeback_age_us -> flush t
  | Some _ | None -> ()

(* Directories *)

let dir_entry_of t inum =
  let e = get_entry t inum in
  if e.ino.Inode.kind <> Fs_intf.Directory then
    Errors.raise_ (Errors.Enotdir (Printf.sprintf "inum %d" inum));
  e

let dir_nblocks t (e : entry) =
  Inode.nblocks ~block_size:t.layout.Layout.block_size e.ino

let read_dir_block t (e : entry) blk =
  let inum = e.ino.Inode.inum in
  match Cache.find t.cache (key_data ~inum ~blkno:blk) with
  | Some block -> Dir_block.parse block
  | None ->
      let addr = bmap_read t e blk in
      if addr = Layout.null_addr then []
      else begin
        let block =
          Io.sync_read t.io ~sector:(sector_of_block t addr)
            ~count:t.layout.Layout.block_sectors
        in
        Cache.insert t.cache (key_data ~inum ~blkno:blk) ~dirty:false block;
        Dir_block.parse block
      end

(* Writing a directory block on the create/delete path is synchronous —
   the behaviour the paper blames for coupling FFS to disk latency. *)
let write_dir_block t (e : entry) blk entries ~sync_write =
  let inum = e.ino.Inode.inum in
  let block = Dir_block.encode ~block_size:t.layout.Layout.block_size entries in
  let addr = bmap_alloc t e blk in
  if sync_write then begin
    trace_sync_write t.io ~what:"directory" ~sector:(sector_of_block t addr)
      ~sectors:t.layout.Layout.block_sectors;
    Io.sync_write t.io ~sector:(sector_of_block t addr) block;
    Cache.insert t.cache (key_data ~inum ~blkno:blk) ~dirty:false block
  end
  else Cache.insert t.cache (key_data ~inum ~blkno:blk) ~dirty:true block;
  if (blk + 1) * t.layout.Layout.block_size > e.ino.Inode.size then begin
    e.ino.Inode.size <- (blk + 1) * t.layout.Layout.block_size;
    e.dirty <- true
  end;
  e.ino.Inode.mtime_us <- Io.now_us t.io;
  e.dirty <- true

let dir_lookup t ~dir fname =
  let e = dir_entry_of t dir in
  let n = dir_nblocks t e in
  let rec scan blk =
    if blk >= n then None
    else begin
      Io.charge_lookup t.io;
      match List.assoc_opt fname (read_dir_block t e blk) with
      | Some inum -> Some inum
      | None -> scan (blk + 1)
    end
  in
  scan 0

let dir_add t ~dir fname inum ~sync_write =
  if not (Path.valid_name fname) then
    Errors.raise_ (Errors.Einval (Printf.sprintf "bad name %S" fname));
  let e = dir_entry_of t dir in
  let n = dir_nblocks t e in
  let bs = t.layout.Layout.block_size in
  let rec place blk =
    if blk >= n then write_dir_block t e n [ (fname, inum) ] ~sync_write
    else begin
      Io.charge_lookup t.io;
      let entries = read_dir_block t e blk in
      if Dir_block.fits ~block_size:bs entries fname then
        write_dir_block t e blk ((fname, inum) :: entries) ~sync_write
      else place (blk + 1)
    end
  in
  place 0

let dir_remove t ~dir fname ~sync_write =
  let e = dir_entry_of t dir in
  let n = dir_nblocks t e in
  let rec hunt blk =
    if blk >= n then Errors.raise_ (Errors.Enoent fname)
    else begin
      Io.charge_lookup t.io;
      let entries = read_dir_block t e blk in
      if List.mem_assoc fname entries then
        write_dir_block t e blk (List.remove_assoc fname entries) ~sync_write
      else hunt (blk + 1)
    end
  in
  hunt 0

let dir_entries t ~dir =
  let e = dir_entry_of t dir in
  List.concat
    (List.init (dir_nblocks t e) (fun blk ->
         Io.charge_lookup t.io;
         read_dir_block t e blk))

let resolve t components =
  List.fold_left
    (fun cur fname ->
      match dir_lookup t ~dir:cur fname with
      | Some inum -> inum
      | None -> Errors.raise_ (Errors.Enoent fname))
    t.root components

let resolve_path t path =
  match Path.split path with
  | Ok components -> resolve t components
  | Error e -> Errors.raise_ e

let split_parent path =
  match Path.parent_and_name path with
  | Ok v -> v
  | Error e -> Errors.raise_ e

(* Namespace operations *)

let make_node t path kind op =
  Errors.wrap (fun () ->
      Profile.with_op (Io.bus t.io) op @@ fun () ->
      Io.charge_syscall t.io;
      let parent, fname = split_parent path in
      let dir = resolve t parent in
      ignore (dir_entry_of t dir);
      (match dir_lookup t ~dir fname with
      | Some _ -> Errors.raise_ (Errors.Eexist path)
      | None -> ());
      let group = Layout.group_of_inum t.layout dir in
      let inum =
        match
          Alloc.alloc_inode t.alloc ~group ~spread:(kind = Fs_intf.Directory)
        with
        | Some i -> i
        | None -> Errors.raise_ Errors.Enospc
      in
      let ino = Inode.create ~inum ~kind ~now_us:(Io.now_us t.io) in
      Hashtbl.replace t.itable inum { ino; dirty = false };
      (* The two synchronous writes of Figure 1: the new inode's table
         block, then the directory data block. *)
      store_inode t (Some ino) ~inum ~mode:`Sync;
      dir_add t ~dir fname inum ~sync_write:true;
      housekeep t)

let create t path = make_node t path Fs_intf.Regular `Create
let mkdir t path = make_node t path Fs_intf.Directory `Mkdir

let release_file_blocks t (e : entry) =
  let bs = t.layout.Layout.block_size in
  let inum = e.ino.Inode.inum in
  let nblocks = Inode.nblocks ~block_size:bs e.ino in
  for blkno = 0 to nblocks - 1 do
    let addr = bmap_read t e blkno in
    if addr <> Layout.null_addr then begin
      Alloc.free_block t.alloc addr;
      Cache.remove t.cache (key_data ~inum ~blkno)
    end
  done;
  let release_raw addr =
    if addr <> Layout.null_addr then begin
      Alloc.free_block t.alloc addr;
      Cache.remove t.cache (key_raw addr)
    end
  in
  (match e.ino.Inode.dindirect with
  | a when a = Layout.null_addr -> ()
  | dind ->
      for child = 0 to Layout.ptrs_per_block t.layout - 1 do
        release_raw (read_ptr t dind child)
      done);
  release_raw e.ino.Inode.indirect;
  release_raw e.ino.Inode.dindirect

let delete t path =
  Errors.wrap (fun () ->
      Profile.with_op (Io.bus t.io) `Delete @@ fun () ->
      Io.charge_syscall t.io;
      let parent, fname = split_parent path in
      let dir = resolve t parent in
      let inum =
        match dir_lookup t ~dir fname with
        | Some i -> i
        | None -> Errors.raise_ (Errors.Enoent path)
      in
      let e = get_entry t inum in
      if e.ino.Inode.kind = Fs_intf.Directory && dir_entries t ~dir:inum <> []
      then Errors.raise_ (Errors.Enotempty path);
      dir_remove t ~dir fname ~sync_write:true;
      if e.ino.Inode.nlink > 1 then begin
        e.ino.Inode.nlink <- e.ino.Inode.nlink - 1;
        e.ino.Inode.mtime_us <- Io.now_us t.io;
        store_inode t (Some e.ino) ~inum ~mode:`Sync;
        e.dirty <- false
      end
      else begin
        release_file_blocks t e;
        Readahead.forget t.readahead ~owner:inum;
        store_inode t None ~inum ~mode:`Sync;
        Hashtbl.remove t.itable inum;
        Alloc.free_inode t.alloc inum
      end;
      housekeep t)

let rename t src dst =
  Errors.wrap (fun () ->
      Profile.with_op (Io.bus t.io) `Rename @@ fun () ->
      Io.charge_syscall t.io;
      let src_parent, src_name = split_parent src in
      let dst_parent, dst_name = split_parent dst in
      let rec is_prefix a b =
        match (a, b) with
        | [], _ -> true
        | x :: a', y :: b' -> x = y && is_prefix a' b'
        | _ :: _, [] -> false
      in
      if is_prefix (src_parent @ [ src_name ]) (dst_parent @ [ dst_name ]) then
        Errors.raise_ (Errors.Einval "cannot move a directory beneath itself");
      let src_dir = resolve t src_parent in
      let inum =
        match dir_lookup t ~dir:src_dir src_name with
        | Some i -> i
        | None -> Errors.raise_ (Errors.Enoent src)
      in
      let dst_dir = resolve t dst_parent in
      (match dir_lookup t ~dir:dst_dir dst_name with
      | Some _ -> Errors.raise_ (Errors.Eexist dst)
      | None -> ());
      dir_remove t ~dir:src_dir src_name ~sync_write:true;
      dir_add t ~dir:dst_dir dst_name inum ~sync_write:true;
      housekeep t)

let link t src dst =
  Errors.wrap (fun () ->
      Profile.with_op (Io.bus t.io) `Link @@ fun () ->
      Io.charge_syscall t.io;
      let src_inum = resolve_path t src in
      let e = get_entry t src_inum in
      if e.ino.Inode.kind = Fs_intf.Directory then
        Errors.raise_ (Errors.Eisdir src);
      let dst_parent, dst_name = split_parent dst in
      let dst_dir = resolve t dst_parent in
      ignore (dir_entry_of t dst_dir);
      (match dir_lookup t ~dir:dst_dir dst_name with
      | Some _ -> Errors.raise_ (Errors.Eexist dst)
      | None -> ());
      (* As with creat, the metadata updates are synchronous. *)
      e.ino.Inode.nlink <- e.ino.Inode.nlink + 1;
      e.ino.Inode.mtime_us <- Io.now_us t.io;
      store_inode t (Some e.ino) ~inum:src_inum ~mode:`Sync;
      e.dirty <- false;
      dir_add t ~dir:dst_dir dst_name src_inum ~sync_write:true;
      housekeep t)

(* Data operations *)

let regular_inum t path =
  let inum = resolve_path t path in
  let e = get_entry t inum in
  if e.ino.Inode.kind = Fs_intf.Directory then Errors.raise_ (Errors.Eisdir path);
  inum

let read_file_block t ~inum ~blkno ~addr =
  match Cache.find t.cache (key_data ~inum ~blkno) with
  | Some block -> block
  | None ->
      let block =
        Io.sync_read t.io ~sector:(sector_of_block t addr)
          ~count:t.layout.Layout.block_sectors
      in
      Cache.insert t.cache (key_data ~inum ~blkno) ~dirty:false block;
      block

(* Clustered read: [n] physically contiguous blocks in one disk request,
   each cached clean. *)
let read_run t ~inum ~first_blkno ~addr ~n =
  let bs = t.layout.Layout.block_size in
  let data =
    Io.sync_read t.io ~sector:(sector_of_block t addr)
      ~count:(n * t.layout.Layout.block_sectors)
  in
  if n > 1 then Io.note_clustered_read t.io ~blocks:n;
  for i = 0 to n - 1 do
    Cache.insert t.cache
      (key_data ~inum ~blkno:(first_blkno + i))
      ~dirty:false
      (Bytes.sub data (i * bs) bs)
  done;
  data

(* How many blocks starting at [blkno]/[addr] can go in one request:
   consecutive logical blocks up to [max_blkno] at consecutive addresses,
   none already cached (a dirty cached block must never be clobbered with
   stale disk data). *)
let probe_run t (e : entry) ~inum ~blkno ~addr ~max_blkno =
  let n = ref 1 in
  let continue = ref true in
  while !continue && blkno + !n <= max_blkno do
    let next = blkno + !n in
    if
      bmap_read t e next = addr + !n
      && not (Cache.mem t.cache (key_data ~inum ~blkno:next))
    then incr n
    else continue := false
  done;
  !n

(* Issue a planned read-ahead window: clamp to the file, skip holes and
   cached blocks, fetch the rest as contiguous runs inserted clean. *)
let prefetch t (e : entry) ~inum ~start ~count =
  let bs = t.layout.Layout.block_size in
  let size = e.ino.Inode.size in
  let max_blkno = if size = 0 then -1 else (size - 1) / bs in
  let last = min (start + count - 1) max_blkno in
  let issue ~first_blkno ~addr ~n =
    let bus = Io.bus t.io in
    let go () =
      ignore (read_run t ~inum ~first_blkno ~addr ~n);
      for i = 0 to n - 1 do
        Readahead.mark_issued t.readahead ~owner:inum ~blkno:(first_blkno + i)
      done;
      if Bus.enabled bus then
        Bus.emit bus
          (Event.Readahead { owner = inum; start = first_blkno; blocks = n })
    in
    if Bus.enabled bus then Bus.with_span bus "ffs_prefetch" go else go ()
  in
  let run_first = ref (-1) in
  let run_addr = ref Layout.null_addr in
  let run_n = ref 0 in
  let flush_run () =
    if !run_n > 0 then issue ~first_blkno:!run_first ~addr:!run_addr ~n:!run_n;
    run_n := 0
  in
  for blkno = start to last do
    let addr =
      if Cache.mem t.cache (key_data ~inum ~blkno) then Layout.null_addr
      else bmap_read t e blkno
    in
    if addr <> Layout.null_addr then begin
      if !run_n > 0 && addr = !run_addr + !run_n then incr run_n
      else begin
        flush_run ();
        run_first := blkno;
        run_addr := addr;
        run_n := 1
      end
    end
    else flush_run ()
  done;
  flush_run ()

let read t path ~off ~len =
  Errors.wrap (fun () ->
      Profile.with_op (Io.bus t.io) `Read @@ fun () ->
      Io.charge_syscall t.io;
      if off < 0 || len < 0 then Errors.raise_ (Errors.Einval "read bounds");
      let inum = regular_inum t path in
      let e = get_entry t inum in
      let size = e.ino.Inode.size in
      let len = max 0 (min len (size - off)) in
      let bs = t.layout.Layout.block_size in
      let result = Bytes.make len '\000' in
      let clustering = t.config.Config.read_clustering in
      let max_blkno = if len = 0 then -1 else (off + len - 1) / bs in
      (* Blocks fetched by the most recent clustered run are sliced from
         its buffer rather than looked up again. *)
      let run_first = ref 0 in
      let run_n = ref 0 in
      let run_bytes = ref Bytes.empty in
      let pos = ref 0 in
      while !pos < len do
        let abs = off + !pos in
        let blkno = abs / bs in
        let in_block = abs mod bs in
        let chunk = min (len - !pos) (bs - in_block) in
        if !run_n > 0 && blkno >= !run_first && blkno < !run_first + !run_n
        then
          Bytes.blit !run_bytes
            (((blkno - !run_first) * bs) + in_block)
            result !pos chunk
        else begin
          match Cache.find t.cache (key_data ~inum ~blkno) with
          | Some block ->
              Readahead.served t.readahead ~owner:inum ~blkno ~hit:true;
              Bytes.blit block in_block result !pos chunk
          | None -> (
              Readahead.served t.readahead ~owner:inum ~blkno ~hit:false;
              let addr = bmap_read t e blkno in
              if addr <> Layout.null_addr then begin
                let fill () =
                  if clustering then begin
                    let n = probe_run t e ~inum ~blkno ~addr ~max_blkno in
                    run_first := blkno;
                    run_n := n;
                    run_bytes := read_run t ~inum ~first_blkno:blkno ~addr ~n;
                    Bytes.blit !run_bytes in_block result !pos chunk
                  end
                  else
                    Bytes.blit
                      (read_file_block t ~inum ~blkno ~addr)
                      in_block result !pos chunk
                in
                let bus = Io.bus t.io in
                if Bus.enabled bus then Bus.with_span bus "ffs_read_fill" fill
                else fill ()
              end)
        end;
        pos := !pos + chunk
      done;
      (if len > 0 then
         match
           Readahead.observe t.readahead ~owner:inum ~first:(off / bs)
             ~last:max_blkno
         with
         | None -> ()
         | Some (start, count) -> prefetch t e ~inum ~start ~count);
      Io.charge_copy t.io ~bytes:len;
      e.ino.Inode.atime_us <- Io.now_us t.io;
      e.dirty <- true;
      housekeep t;
      result)

let write t path ~off data =
  Errors.wrap (fun () ->
      Profile.with_op (Io.bus t.io) `Write @@ fun () ->
      Io.charge_syscall t.io;
      if off < 0 then Errors.raise_ (Errors.Einval "negative offset");
      let inum = regular_inum t path in
      let e = get_entry t inum in
      let bs = t.layout.Layout.block_size in
      let len = Bytes.length data in
      if off + len > Inode.max_size t.layout then Errors.raise_ Errors.Efbig;
      let pos = ref 0 in
      while !pos < len do
        let abs = off + !pos in
        let blkno = abs / bs in
        let in_block = abs mod bs in
        let chunk = min (len - !pos) (bs - in_block) in
        let key = key_data ~inum ~blkno in
        (* A former hole gets a freshly allocated block whose on-disk
           content belonged to someone else: treat it as zeros, never
           read it back. *)
        let existed = bmap_read t e blkno <> Layout.null_addr in
        let addr = bmap_alloc t e blkno in
        if chunk = bs then
          Cache.insert t.cache key ~dirty:true (Bytes.sub data !pos bs)
        else begin
          match Cache.find t.cache key with
          | Some block ->
              Bytes.blit data !pos block in_block chunk;
              Cache.mark_dirty t.cache key
          | None ->
              let block =
                (* Read-modify-write whenever the pre-existing block holds
                   bytes inside the current file size — even when this
                   write's own offset lies past them. *)
                if existed && blkno * bs < e.ino.Inode.size then
                  Bytes.copy (read_file_block t ~inum ~blkno ~addr)
                else Bytes.make bs '\000'
              in
              Bytes.blit data !pos block in_block chunk;
              Cache.insert t.cache key ~dirty:true block
        end;
        pos := !pos + chunk
      done;
      if off + len > e.ino.Inode.size then e.ino.Inode.size <- off + len;
      e.ino.Inode.mtime_us <- Io.now_us t.io;
      e.dirty <- true;
      Io.charge_copy t.io ~bytes:len;
      housekeep t)

let truncate t path ~size =
  Errors.wrap (fun () ->
      Profile.with_op (Io.bus t.io) `Truncate @@ fun () ->
      Io.charge_syscall t.io;
      if size < 0 then Errors.raise_ (Errors.Einval "negative size");
      if size > Inode.max_size t.layout then Errors.raise_ Errors.Efbig;
      let inum = regular_inum t path in
      let e = get_entry t inum in
      let bs = t.layout.Layout.block_size in
      let old_size = e.ino.Inode.size in
      if size < old_size then begin
        let keep = (size + bs - 1) / bs in
        let old_blocks = (old_size + bs - 1) / bs in
        for blkno = keep to old_blocks - 1 do
          let addr = bmap_read t e blkno in
          if addr <> Layout.null_addr then begin
            Alloc.free_block t.alloc addr;
            (* In-place FS: clear the pointer so the block is not seen on
               re-extension. *)
            let p = Layout.ptrs_per_block t.layout in
            if blkno < Inode.ndirect then
              e.ino.Inode.direct.(blkno) <- Layout.null_addr
            else if blkno < Inode.ndirect + p then
              write_ptr t e.ino.Inode.indirect (blkno - Inode.ndirect)
                Layout.null_addr
            else begin
              let d = blkno - Inode.ndirect - p in
              let child = read_ptr t e.ino.Inode.dindirect (d / p) in
              if child <> Layout.null_addr then
                write_ptr t child (d mod p) Layout.null_addr
            end;
            Cache.remove t.cache (key_data ~inum ~blkno)
          end
        done;
        if size mod bs <> 0 && keep > 0 then begin
          let blkno = keep - 1 in
          let key = key_data ~inum ~blkno in
          match Cache.find t.cache key with
          | Some b ->
              Bytes.fill b (size mod bs) (bs - (size mod bs)) '\000';
              Cache.mark_dirty t.cache key
          | None ->
              let addr = bmap_read t e blkno in
              if addr <> Layout.null_addr then begin
                let b = Bytes.copy (read_file_block t ~inum ~blkno ~addr) in
                Bytes.fill b (size mod bs) (bs - (size mod bs)) '\000';
                Cache.insert t.cache key ~dirty:true b
              end
        end
      end;
      e.ino.Inode.size <- size;
      e.ino.Inode.mtime_us <- Io.now_us t.io;
      e.dirty <- true;
      housekeep t)

let stat t path =
  Errors.wrap (fun () ->
      Profile.with_op (Io.bus t.io) `Stat @@ fun () ->
      Io.charge_syscall t.io;
      let inum = resolve_path t path in
      let e = get_entry t inum in
      {
        Fs_intf.inum;
        kind = e.ino.Inode.kind;
        size = e.ino.Inode.size;
        nlink = e.ino.Inode.nlink;
        mtime_us = e.ino.Inode.mtime_us;
        atime_us = e.ino.Inode.atime_us;
      })

let readdir t path =
  Errors.wrap (fun () ->
      Profile.with_op (Io.bus t.io) `Readdir @@ fun () ->
      Io.charge_syscall t.io;
      let inum = resolve_path t path in
      dir_entries t ~dir:inum |> List.map fst |> List.sort String.compare)

let exists t path =
  match Errors.wrap (fun () -> resolve_path t path) with
  | Ok _ -> true
  | Error _ -> false

let sync t =
  Profile.with_op (Io.bus t.io) `Sync @@ fun () ->
  Io.charge_syscall t.io;
  do_sync t

let fsync t path =
  Errors.wrap (fun () ->
      Profile.with_op (Io.bus t.io) `Fsync @@ fun () ->
      Io.charge_syscall t.io;
      ignore (resolve_path t path);
      do_sync t)

let flush_caches t =
  do_sync t;
  Cache.drop_clean t.cache;
  Readahead.reset t.readahead;
  let clean =
    Hashtbl.fold
      (fun inum (e : entry) acc -> if e.dirty then acc else inum :: acc)
      t.itable []
  in
  List.iter (Hashtbl.remove t.itable) clean

let unmount t = do_sync t

(* Lifecycle *)

let root_inum = 1

let format io config =
  let geometry = Io.geometry io in
  match Layout.compute config geometry with
  | Error _ as e -> e
  | Ok layout ->
      Io.sync_write io ~sector:0 (Layout.encode_superblock layout);
      let t =
        {
          io;
          config;
          layout;
          cache =
            Cache.create ~capacity_blocks:config.Config.cache_blocks
              ~metrics:(Io.metrics io) ~bus:(Io.bus io) (Io.clock io);
          readahead =
            Readahead.create ~max_window:config.Config.readahead_blocks
              (Io.metrics io);
          alloc = Alloc.create layout;
          itable = Hashtbl.create 256;
          root = root_inum;
        }
      in
      (* Zero the inode-table blocks so stale data never decodes as
         inodes. *)
      let zero = Bytes.make layout.Layout.block_size '\000' in
      for g = 0 to layout.Layout.ngroups - 1 do
        let first =
          Layout.group_first_block layout g
          + layout.Layout.bb_blocks + layout.Layout.ib_blocks
        in
        for i = 0 to layout.Layout.it_blocks - 1 do
          Io.async_write io ~sector:(sector_of_block t (first + i)) zero
        done
      done;
      (match Alloc.alloc_inode t.alloc ~group:0 ~spread:false with
      | Some i when i = root_inum -> ()
      | Some _ | None -> failwith "FFS format: could not allocate root inode");
      let root =
        Inode.create ~inum:root_inum ~kind:Fs_intf.Directory
          ~now_us:(Io.now_us io)
      in
      store_inode t (Some root) ~inum:root_inum ~mode:`Sync;
      persist_bitmaps t;
      Io.drain io;
      Ok ()

let mount ?(config = Config.default) io =
  let geometry = Io.geometry io in
  let sector_size = geometry.Lfs_disk.Geometry.sector_size in
  let count = min geometry.Lfs_disk.Geometry.sectors (65536 / sector_size) in
  let sb = Io.sync_read io ~sector:0 ~count in
  match Layout.decode_superblock sb geometry with
  | Error _ as e -> e
  | Ok layout ->
      let config =
        {
          config with
          Config.block_size = layout.Layout.block_size;
          ngroups = layout.Layout.ngroups;
        }
      in
      let t =
        {
          io;
          config;
          layout;
          cache =
            Cache.create ~capacity_blocks:config.Config.cache_blocks
              ~metrics:(Io.metrics io) ~bus:(Io.bus io) (Io.clock io);
          readahead =
            Readahead.create ~max_window:config.Config.readahead_blocks
              (Io.metrics io);
          alloc = Alloc.create layout;
          itable = Hashtbl.create 256;
          root = root_inum;
        }
      in
      for g = 0 to layout.Layout.ngroups - 1 do
        Alloc.load_group t.alloc g ~read:(fun addr ->
            Io.sync_read io ~sector:(sector_of_block t addr)
              ~count:layout.Layout.block_sectors)
      done;
      Ok t

(* --- Structural verification (re-exported as Lfs_ffs.Check) ---------- *)

(* The FFS counterpart of Lfs_core.Check: cylinder-group bitmaps vs the
   blocks actually reachable from allocated inodes, plus the same
   namespace/nlink/orphan audit LFS gets.  Runs on the live (cache-
   coherent) state, so it sees unwritten changes too. *)

type issue =
  | Double_reference of { addr : int; owners : string list }
  | Leaked_block of { addr : int }
  | Lost_block of { owner : string; addr : int }
  | Bad_dir_entry of { dir : int; name : string; inum : int }
  | Bad_nlink of { inum : int; nlink : int; entries : int }
  | Orphan_inode of { inum : int }
  | Unreadable of { inum : int; reason : string }
  | Address_out_of_range of { owner : string; addr : int }

let pp_issue ppf = function
  | Double_reference { addr; owners } ->
      Format.fprintf ppf "block %d referenced by: %s" addr
        (String.concat ", " owners)
  | Leaked_block { addr } ->
      Format.fprintf ppf
        "block %d marked used in its group bitmap but referenced by nothing"
        addr
  | Lost_block { owner; addr } ->
      Format.fprintf ppf "%s claims block %d, which the group bitmap says is free"
        owner addr
  | Bad_dir_entry { dir; name; inum } ->
      Format.fprintf ppf "directory %d entry %S points at unallocated inum %d"
        dir name inum
  | Bad_nlink { inum; nlink; entries } ->
      Format.fprintf ppf "inum %d: nlink %d but %d directory entries" inum
        nlink entries
  | Orphan_inode { inum } ->
      Format.fprintf ppf "inum %d allocated but unreachable" inum
  | Unreadable { inum; reason } ->
      Format.fprintf ppf "inum %d unreadable: %s" inum reason
  | Address_out_of_range { owner; addr } ->
      Format.fprintf ppf "%s references out-of-range address %d" owner addr

let meta_blocks_per_group (l : Layout.t) =
  l.Layout.bb_blocks + l.Layout.ib_blocks + l.Layout.it_blocks

let fsck t =
  let l = t.layout in
  let bs = l.Layout.block_size in
  let issues = ref [] in
  let report i = issues := i :: !issues in
  let data_first g = Layout.group_first_block l g + meta_blocks_per_group l in
  (* Block-reference map: every reachable data/pointer block must have
     exactly one owner, and must not alias the superblock or a group's
     bitmap/inode-table region. *)
  let owners : (int, string list) Hashtbl.t = Hashtbl.create 1024 in
  let reference ~owner addr =
    if addr <> Layout.null_addr then begin
      if
        addr < 1
        || addr >= l.Layout.total_blocks
        || addr < data_first (Layout.group_of_block l addr)
      then report (Address_out_of_range { owner; addr })
      else begin
        let prev = Option.value ~default:[] (Hashtbl.find_opt owners addr) in
        Hashtbl.replace owners addr (owner :: prev)
      end
    end
  in
  for inum = 1 to l.Layout.max_files - 1 do
    if Alloc.inode_allocated t.alloc inum then begin
      match get_entry t inum with
      | exception Errors.Error e ->
          report (Unreadable { inum; reason = Errors.to_string e })
      | exception Failure reason -> report (Unreadable { inum; reason })
      | e ->
          let tag kind = Printf.sprintf "inum %d %s" inum kind in
          let nblocks = Inode.nblocks ~block_size:bs e.ino in
          for blkno = 0 to nblocks - 1 do
            reference
              ~owner:(tag (Printf.sprintf "block %d" blkno))
              (bmap_read t e blkno)
          done;
          reference ~owner:(tag "indirect") e.ino.Inode.indirect;
          if e.ino.Inode.dindirect <> Layout.null_addr then begin
            reference ~owner:(tag "dindirect") e.ino.Inode.dindirect;
            for child = 0 to Layout.ptrs_per_block l - 1 do
              reference
                ~owner:(tag (Printf.sprintf "dind child %d" child))
                (read_ptr t e.ino.Inode.dindirect child)
            done
          end
    end
  done;
  Hashtbl.iter
    (fun addr os ->
      if List.length os > 1 then report (Double_reference { addr; owners = os }))
    owners;
  (* Cylinder-group bitmap cross-check: metadata blocks are permanently
     allocated; a data block is allocated iff something references it. *)
  for g = 0 to l.Layout.ngroups - 1 do
    let first = Layout.group_first_block l g in
    let dfirst = data_first g in
    let last = min (first + l.Layout.group_blocks) l.Layout.total_blocks - 1 in
    for addr = first to last do
      let in_bitmap = Alloc.block_allocated t.alloc addr in
      if addr < dfirst then begin
        if not in_bitmap then
          report
            (Lost_block { owner = Printf.sprintf "group %d metadata" g; addr })
      end
      else
        match Hashtbl.find_opt owners addr with
        | Some os ->
            if not in_bitmap then
              report (Lost_block { owner = List.hd os; addr })
        | None -> if in_bitmap then report (Leaked_block { addr })
    done
  done;
  (* Namespace walk: every entry resolves to an allocated inode; link
     counts match; every allocated inode is reachable.  The visited
     guard keeps the walk finite even on a corrupted (cyclic) tree. *)
  let links = Hashtbl.create 256 in
  let rec walk dir =
    List.iter
      (fun (name, inum) ->
        if
          inum <= 0
          || inum >= l.Layout.max_files
          || not (Alloc.inode_allocated t.alloc inum)
        then report (Bad_dir_entry { dir; name; inum })
        else begin
          let first_visit = not (Hashtbl.mem links inum) in
          Hashtbl.replace links inum
            (1 + Option.value ~default:0 (Hashtbl.find_opt links inum));
          match get_entry t inum with
          | exception Errors.Error e ->
              report (Unreadable { inum; reason = Errors.to_string e })
          | e ->
              if e.ino.Inode.kind = Fs_intf.Directory && first_visit then
                walk inum
        end)
      (dir_entries t ~dir)
  in
  Hashtbl.replace links t.root 1;
  walk t.root;
  Hashtbl.iter
    (fun inum count ->
      match get_entry t inum with
      | e ->
          if e.ino.Inode.nlink <> count then
            report (Bad_nlink { inum; nlink = e.ino.Inode.nlink; entries = count })
      | exception _ -> ())
    links;
  for inum = 1 to l.Layout.max_files - 1 do
    if Alloc.inode_allocated t.alloc inum && not (Hashtbl.mem links inum) then
      report (Orphan_inode { inum })
  done;
  List.rev !issues

let integrity t = List.map (Format.asprintf "%a" pp_issue) (fsck t)

(* --- Crash repair ---------------------------------------------------- *)

(* fsck-style repair after an unclean shutdown.  Update-in-place leaves
   no log to replay: the bitmaps on disk are whatever the last sync wrote
   (stale), directory blocks may be torn mid-sector, and inode slots may
   disagree with both.  The only ground truth is the inode table plus the
   reachable directory tree, so — exactly as the paper says of FFS — the
   whole disk must be scanned:

   1. every inode-table slot is decoded (garbage slots cleared), and the
      inode bitmaps rebuilt from the survivors;
   2. the namespace is walked from the root, salvaging unparseable
      (torn) directory blocks as empty, pruning entries whose inode did
      not survive, fixing link counts and releasing orphan inodes;
   3. the block bitmaps are rebuilt from the survivors' pointers,
      clearing bogus (out-of-range, doubly-claimed or beyond-size)
      pointers along the way.

   Returns a human-readable line per repair made.  Contrast
   [Lfs_core.Recovery]: LFS reads two checkpoint regions and the log
   tail; this reads every inode table and directory block on disk. *)
let repair t =
  let l = t.layout in
  let repairs = ref [] in
  let note fmt = Printf.ksprintf (fun s -> repairs := s :: !repairs) fmt in
  Hashtbl.reset t.itable;
  (* Pass 1: the inode table decides which inodes exist. *)
  let valid = Array.make l.Layout.max_files false in
  for inum = 1 to l.Layout.max_files - 1 do
    let addr, slot = Layout.inode_location l inum in
    let block = read_raw t addr in
    match Inode.decode_at block ~off:(slot * Layout.inode_bytes) with
    | Some ino when ino.Inode.inum = inum -> valid.(inum) <- true
    | None -> ()
    | Some _ | (exception Lfs_util.Codec.Error _) ->
        note "inum %d: cleared garbage inode slot" inum;
        store_inode t None ~inum ~mode:`Async
  done;
  if not valid.(t.root) then failwith "FFS repair: root inode lost";
  Alloc.reset t.alloc;
  for inum = 1 to l.Layout.max_files - 1 do
    if valid.(inum) then Alloc.mark_inode t.alloc inum
  done;
  (* Pass 2: walk the namespace; salvage torn directory blocks, prune
     entries to dead inodes, then fix nlink and release orphans. *)
  let links = Hashtbl.create 256 in
  let visited = Hashtbl.create 256 in
  let rec walk dir =
    if not (Hashtbl.mem visited dir) then begin
      Hashtbl.replace visited dir ();
      let e = get_entry t dir in
      for blk = 0 to dir_nblocks t e - 1 do
        let entries =
          try read_dir_block t e blk
          with Lfs_util.Codec.Error _ | Io.Read_failed _ ->
            note "inum %d: salvaged torn directory block %d" dir blk;
            write_dir_block t e blk [] ~sync_write:false;
            []
        in
        let keep, drop =
          List.partition
            (fun (_, inum) ->
              inum > 0 && inum < l.Layout.max_files && valid.(inum))
            entries
        in
        if drop <> [] then begin
          List.iter
            (fun (name, inum) ->
              note "inum %d: pruned dangling entry %S -> inum %d" dir name inum)
            drop;
          write_dir_block t e blk keep ~sync_write:false
        end;
        List.iter
          (fun (_, inum) ->
            Hashtbl.replace links inum
              (1 + Option.value ~default:0 (Hashtbl.find_opt links inum));
            if (get_entry t inum).ino.Inode.kind = Fs_intf.Directory then
              walk inum)
          keep
      done
    end
  in
  Hashtbl.replace links t.root 1;
  walk t.root;
  for inum = 1 to l.Layout.max_files - 1 do
    if valid.(inum) && not (Hashtbl.mem links inum) then begin
      note "inum %d: released orphan inode" inum;
      valid.(inum) <- false;
      Alloc.free_inode t.alloc inum;
      Hashtbl.remove t.itable inum;
      store_inode t None ~inum ~mode:`Async
    end
  done;
  Hashtbl.iter
    (fun inum count ->
      if valid.(inum) then begin
        let e = get_entry t inum in
        if e.ino.Inode.nlink <> count then begin
          note "inum %d: nlink %d -> %d" inum e.ino.Inode.nlink count;
          e.ino.Inode.nlink <- count;
          e.dirty <- true
        end
      end)
    links;
  (* Pass 3: rebuild the block bitmaps from the survivors, mirroring
     exactly what [fsck] counts as referenced so the result audits
     clean.  A pointer that is out of range, already claimed, or beyond
     the inode's size is bogus — clear it. *)
  let data_first g = Layout.group_first_block l g + meta_blocks_per_group l in
  let in_data_range addr =
    addr >= 1
    && addr < l.Layout.total_blocks
    && addr >= data_first (Layout.group_of_block l addr)
  in
  let owned = Hashtbl.create 1024 in
  let claim addr =
    if addr = Layout.null_addr then `Null
    else if (not (in_data_range addr)) || Hashtbl.mem owned addr then `Bogus
    else begin
      Hashtbl.replace owned addr ();
      Alloc.mark_block t.alloc addr;
      `Ok
    end
  in
  let p = Layout.ptrs_per_block l in
  for inum = 1 to l.Layout.max_files - 1 do
    if valid.(inum) then begin
      let e = get_entry t inum in
      let ino = e.ino in
      let nblocks = Inode.nblocks ~block_size:l.Layout.block_size ino in
      let claim_slot ~blkno ~what addr clear =
        if blkno >= nblocks then begin
          if addr <> Layout.null_addr then begin
            note "inum %d: cleared %s beyond size" inum what;
            clear ();
            e.dirty <- true
          end
        end
        else
          match claim addr with
          | `Bogus ->
              note "inum %d: cleared bogus %s" inum what;
              clear ();
              e.dirty <- true
          | `Ok | `Null -> ()
      in
      for i = 0 to Inode.ndirect - 1 do
        claim_slot ~blkno:i
          ~what:(Printf.sprintf "direct pointer %d" i)
          ino.Inode.direct.(i)
          (fun () -> ino.Inode.direct.(i) <- Layout.null_addr)
      done;
      (match claim ino.Inode.indirect with
      | `Bogus ->
          note "inum %d: cleared bogus indirect pointer" inum;
          ino.Inode.indirect <- Layout.null_addr;
          e.dirty <- true
      | `Null -> ()
      | `Ok ->
          for idx = 0 to p - 1 do
            claim_slot ~blkno:(Inode.ndirect + idx)
              ~what:(Printf.sprintf "indirect slot %d" idx)
              (read_ptr t ino.Inode.indirect idx)
              (fun () -> write_ptr t ino.Inode.indirect idx Layout.null_addr)
          done);
      match claim ino.Inode.dindirect with
      | `Bogus ->
          note "inum %d: cleared bogus dindirect pointer" inum;
          ino.Inode.dindirect <- Layout.null_addr;
          e.dirty <- true
      | `Null -> ()
      | `Ok ->
          for child = 0 to p - 1 do
            match claim (read_ptr t ino.Inode.dindirect child) with
            | `Bogus ->
                note "inum %d: cleared bogus dindirect child %d" inum child;
                write_ptr t ino.Inode.dindirect child Layout.null_addr
            | `Null -> ()
            | `Ok ->
                let ca = read_ptr t ino.Inode.dindirect child in
                for idx = 0 to p - 1 do
                  claim_slot
                    ~blkno:(Inode.ndirect + p + (child * p) + idx)
                    ~what:
                      (Printf.sprintf "dindirect slot %d of child %d" idx child)
                    (read_ptr t ca idx)
                    (fun () -> write_ptr t ca idx Layout.null_addr)
                done
          done
    end
  done;
  do_sync t;
  List.rev !repairs

(* Checker/test support *)

let alloc t = t.alloc
let inode_of t inum = (get_entry t inum).ino
