(** Block and inode allocation for the FFS baseline.

    Approximates BSD's cylinder-group policy: a file's inode is placed in
    its directory's group, a directory's inode in the least-loaded group,
    and data blocks as close as possible to the previous block of the same
    file — which is why sequentially written FFS files read fast, and why
    small scattered allocations cause seeks. *)

type t

val create : Layout.t -> t
(** Fresh bitmaps with every group's metadata blocks marked used. *)

val layout : t -> Layout.t

(** {1 Crash repair}

    After an unclean shutdown the on-disk bitmaps are whatever the last
    sync left behind; fsck-style repair rebuilds them from ground truth:
    [reset] back to the freshly-created state (metadata blocks + the null
    inum), then [mark_inode]/[mark_block] for everything the full-disk
    scan proves live. *)

val reset : t -> unit
val mark_inode : t -> int -> unit
val mark_block : t -> int -> unit

(** {1 Inodes} *)

val alloc_inode : t -> group:int -> spread:bool -> int option
(** [spread:true] (directories) picks the group with the most free
    inodes; otherwise allocation starts at [group]. *)

val free_inode : t -> int -> unit
val inode_allocated : t -> int -> bool
val free_inode_count : t -> int

(** {1 Blocks} *)

val alloc_block : t -> near:int -> int option
(** Allocate a data block as close after [near] as possible ([near] may
    be any block address; pass the file's previous block, or the group's
    first data block).  Spills to other groups when full. *)

val free_block : t -> int -> unit
val block_allocated : t -> int -> bool
val free_block_count : t -> int

(** {1 Persistence} *)

val dirty_groups : t -> int list
val clear_dirty : t -> unit
val encode_group : t -> int -> (int * bytes) list
(** [(block address, contents)] of every bitmap block of one group. *)

val load_group : t -> int -> read:(int -> bytes) -> unit
(** Rebuild a group's bitmaps by reading its bitmap blocks. *)
