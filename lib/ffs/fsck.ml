module Bitset = Lfs_util.Bitset
module Dir_block = Lfs_vfs.Dir_block
module Geometry = Lfs_disk.Geometry
module Io = Lfs_disk.Io

type report = {
  inodes_scanned : int;
  blocks_referenced : int;
  directories_walked : int;
  orphan_inodes : int;
  bitmap_errors : int;
  elapsed_us : int;
}

let pp_report ppf r =
  Format.fprintf ppf
    "fsck: %d inodes, %d blocks referenced, %d directories, %d orphans, %d \
     bitmap errors, %a of scanning"
    r.inodes_scanned r.blocks_referenced r.directories_walked r.orphan_inodes
    r.bitmap_errors Lfs_disk.Clock.pp_duration_us r.elapsed_us

let run io =
  let geometry = Io.geometry io in
  let sector_size = geometry.Geometry.sector_size in
  let count = min geometry.Geometry.sectors (65536 / sector_size) in
  let sb = Io.sync_read io ~sector:0 ~count in
  match Layout.decode_superblock sb geometry with
  | Error _ as e -> e
  | Ok layout ->
      let t0 = Io.now_us io in
      let bs = layout.Layout.block_size in
      let read_block addr =
        Io.sync_read io
          ~sector:(Layout.sector_of_block layout addr)
          ~count:layout.Layout.block_sectors
      in
      (* Pass 1: scan every inode-table block, walking all pointers and
         rebuilding reference bitmaps. *)
      let want_blocks =
        Array.init layout.Layout.ngroups (fun _ ->
            Bitset.create layout.Layout.group_blocks)
      in
      let want_inodes =
        Array.init layout.Layout.ngroups (fun _ ->
            Bitset.create layout.Layout.inodes_per_group)
      in
      Bitset.set want_inodes.(0) 0 (* null inum *);
      let meta = layout.Layout.bb_blocks + layout.Layout.ib_blocks + layout.Layout.it_blocks in
      Array.iter
        (fun m ->
          for i = 0 to meta - 1 do
            Bitset.set m i
          done)
        want_blocks;
      let inodes_scanned = ref 0 in
      let blocks_referenced = ref 0 in
      let reference addr =
        if addr <> Layout.null_addr then begin
          incr blocks_referenced;
          let g = Layout.group_of_block layout addr in
          Bitset.set want_blocks.(g) (addr - Layout.group_first_block layout g)
        end
      in
      let ptrs block = Array.init (Layout.ptrs_per_block layout) (fun i ->
          Int32.to_int (Bytes.get_int32_le block (i * 4)) land 0xFFFFFFFF)
      in
      for g = 0 to layout.Layout.ngroups - 1 do
        let it_first =
          Layout.group_first_block layout g + layout.Layout.bb_blocks
          + layout.Layout.ib_blocks
        in
        for blk = 0 to layout.Layout.it_blocks - 1 do
          let block = read_block (it_first + blk) in
          for slot = 0 to Layout.inodes_per_block layout - 1 do
            match Inode.decode_at block ~off:(slot * Layout.inode_bytes) with
            | None -> ()
            | Some ino ->
                incr inodes_scanned;
                let inum = ino.Inode.inum in
                let ig = Layout.group_of_inum layout inum in
                Bitset.set want_inodes.(ig)
                  (inum mod layout.Layout.inodes_per_group);
                Array.iter reference ino.Inode.direct;
                if ino.Inode.indirect <> Layout.null_addr then begin
                  reference ino.Inode.indirect;
                  Array.iter reference (ptrs (read_block ino.Inode.indirect))
                end;
                if ino.Inode.dindirect <> Layout.null_addr then begin
                  reference ino.Inode.dindirect;
                  Array.iter
                    (fun child ->
                      if child <> Layout.null_addr then begin
                        reference child;
                        Array.iter reference (ptrs (read_block child))
                      end)
                    (ptrs (read_block ino.Inode.dindirect))
                end
          done
        done
      done;
      (* Pass 2: directory connectivity from the root. *)
      let reachable = Hashtbl.create 256 in
      let dirs_walked = ref 0 in
      let read_inode inum =
        let addr, slot = Layout.inode_location layout inum in
        Inode.decode_at (read_block addr) ~off:(slot * Layout.inode_bytes)
      in
      let rec walk inum =
        if not (Hashtbl.mem reachable inum) then begin
          Hashtbl.replace reachable inum ();
          match read_inode inum with
          | Some ino when ino.Inode.kind = Lfs_vfs.Fs_intf.Directory ->
              incr dirs_walked;
              let nblocks = Inode.nblocks ~block_size:bs ino in
              for blk = 0 to nblocks - 1 do
                let addr =
                  if blk < Inode.ndirect then ino.Inode.direct.(blk)
                  else Layout.null_addr
                  (* directories beyond the direct range are unusual;
                     walk what the direct pointers reach *)
                in
                if addr <> Layout.null_addr then
                  match Dir_block.parse (read_block addr) with
                  | entries -> List.iter (fun (_, child) -> walk child) entries
                  | exception Lfs_util.Codec.Error _ -> ()
              done
          | Some _ | None -> ()
        end
      in
      walk 1;
      let orphan_inodes = !inodes_scanned - Hashtbl.length reachable in
      (* Pass 3: compare rebuilt bitmaps with the on-disk ones. *)
      let bitmap_errors = ref 0 in
      for g = 0 to layout.Layout.ngroups - 1 do
        let on_disk_blocks =
          let buf = Bytes.create (layout.Layout.bb_blocks * bs) in
          for i = 0 to layout.Layout.bb_blocks - 1 do
            Bytes.blit
              (read_block (Layout.block_bitmap_block layout ~group:g ~idx:i))
              0 buf (i * bs) bs
          done;
          Bitset.of_bytes ~length:layout.Layout.group_blocks buf
        in
        for i = 0 to layout.Layout.group_blocks - 1 do
          if Bitset.mem on_disk_blocks i <> Bitset.mem want_blocks.(g) i then
            incr bitmap_errors
        done
      done;
      Ok
        {
          inodes_scanned = !inodes_scanned;
          blocks_referenced = !blocks_referenced;
          directories_walked = !dirs_walked;
          orphan_inodes = max 0 orphan_inodes;
          bitmap_errors = !bitmap_errors;
          elapsed_us = Io.now_us io - t0;
        }
