(** Configuration for the FFS-style baseline (SunOS 4.0.3's file system in
    the paper's tests: the BSD fast file system with 8 KB blocks). *)

type t = {
  block_size : int;  (** default 8 KB, as SunOS used in §5 *)
  ngroups : int;  (** cylinder groups *)
  inode_bytes_per_inode : int;
      (** bytes of data capacity per allocated inode (BSD newfs's -i);
          determines inodes per group *)
  cache_blocks : int;  (** file-cache capacity in blocks *)
  read_clustering : bool;
      (** coalesce physically contiguous blocks of a read request into
          one multi-block disk transfer *)
  readahead_blocks : int;
      (** sequential read-ahead window ceiling in blocks; 0 disables
          prefetching *)
  write_clustering : bool;
      (** coalesce physically adjacent dirty blocks inside each elevator
          window into one multi-block write.  Off by default: 4.4BSD
          behaviour, newer than the paper's baseline, so enabling it
          changes the Figure 1/2 write audit. *)
  writeback_age_us : int;  (** delayed-write threshold (30 s) *)
}

val default : t
val small : t
(** Scaled down for unit tests (1 KB blocks, 4 groups). *)

val validate : t -> (unit, string) result
