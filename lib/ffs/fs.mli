(** The FFS-style baseline file system (SunOS's BSD fast file system as
    characterized in §3 of the paper).

    Same interface as {!Lfs_core.Fs} (both satisfy
    {!Lfs_vfs.Fs_intf.S}), but with update-in-place semantics:

    - inodes live at fixed addresses; creating or deleting a file writes
      the inode-table block and the directory block {e synchronously}
      (Figure 1's four synchronous writes for two files);
    - data blocks are allocated near their file at write time and written
      back in place (delayed, asynchronous) — small files land wherever
      their cylinder group has room, so write-back is random I/O;
    - no log, no cleaner, no checkpoints.  Crash recovery would be fsck's
      full-disk scan; it is not modelled. *)

type t

val name : string
val io : t -> Lfs_disk.Io.t

val format : Lfs_disk.Io.t -> Config.t -> (unit, string) result
val mount : ?config:Config.t -> Lfs_disk.Io.t -> (t, string) result
val unmount : t -> unit

val create : t -> string -> (unit, Lfs_vfs.Errors.t) result
val mkdir : t -> string -> (unit, Lfs_vfs.Errors.t) result
val delete : t -> string -> (unit, Lfs_vfs.Errors.t) result
val rename : t -> string -> string -> (unit, Lfs_vfs.Errors.t) result
val link : t -> string -> string -> (unit, Lfs_vfs.Errors.t) result
val readdir : t -> string -> (string list, Lfs_vfs.Errors.t) result
val stat : t -> string -> (Lfs_vfs.Fs_intf.stat, Lfs_vfs.Errors.t) result
val exists : t -> string -> bool
val write : t -> string -> off:int -> bytes -> (unit, Lfs_vfs.Errors.t) result
val read : t -> string -> off:int -> len:int -> (bytes, Lfs_vfs.Errors.t) result
val truncate : t -> string -> size:int -> (unit, Lfs_vfs.Errors.t) result
val sync : t -> unit
val fsync : t -> string -> (unit, Lfs_vfs.Errors.t) result
val flush_caches : t -> unit

(** {1 Introspection} *)

val config : t -> Config.t
val layout : t -> Layout.t
val free_blocks : t -> int

(** {1 Structural verification}

    Prefer {!Check}, which re-exports these under their conventional
    name; they live here because the checker needs the block-map and
    directory internals. *)

type issue =
  | Double_reference of { addr : int; owners : string list }
      (** one disk block claimed by two different structures *)
  | Leaked_block of { addr : int }
      (** marked used in its cylinder-group bitmap, referenced by
          nothing *)
  | Lost_block of { owner : string; addr : int }
      (** referenced by a live structure, marked free in the bitmap *)
  | Bad_dir_entry of { dir : int; name : string; inum : int }
      (** directory entry pointing at an unallocated inode *)
  | Bad_nlink of { inum : int; nlink : int; entries : int }
      (** an inode whose link count disagrees with its directory
          entries *)
  | Orphan_inode of { inum : int }
      (** allocated inode with no directory entry *)
  | Unreadable of { inum : int; reason : string }
  | Address_out_of_range of { owner : string; addr : int }
      (** pointer outside the disk, or into a bitmap/inode-table
          region *)

val pp_issue : Format.formatter -> issue -> unit

val fsck : t -> issue list
(** Full structural verification of the live state: walk every
    allocated inode's block pointers checking ownership, cross-check
    the cylinder-group bitmaps against the reachable-block truth, and
    walk the namespace from the root validating entries, link counts
    and reachability.  Empty means sound. *)

val integrity : t -> string list
(** {!fsck} rendered with {!pp_issue} — the {!Lfs_vfs.Fs_intf.S}
    sanitizer hook. *)

val repair : t -> string list
(** fsck-style crash repair, to run right after {!mount}ing a disk that
    was not cleanly unmounted: decode every inode-table slot, rebuild
    both cylinder-group bitmaps from the survivors, walk the namespace
    salvaging torn directory blocks and pruning dangling entries, fix
    link counts, release orphans, clear bogus block pointers, then sync.
    Returns one line per repair made; after it, {!fsck} is clean.

    This is the full-disk scan the paper contrasts with LFS's bounded
    roll-forward — its cost grows with the disk, not with the log tail.
    @raise Failure if the root inode itself did not survive. *)

(** {1 Checker/test support} *)

val root_inum : int

val alloc : t -> Alloc.t
(** The live allocator, exposed so corruption-injection tests can
    fabricate bitmap inconsistencies.  Not for normal use. *)

val inode_of : t -> int -> Inode.t
(** The in-memory inode for [inum] (loading it if needed); raises
    [Lfs_vfs.Errors.Error Enoent] if unallocated.  Test support. *)
