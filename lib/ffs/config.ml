type t = {
  block_size : int;
  ngroups : int;
  inode_bytes_per_inode : int;
  cache_blocks : int;
  read_clustering : bool;
  readahead_blocks : int;
  write_clustering : bool;
  writeback_age_us : int;
}

let default =
  {
    block_size = 8192;
    ngroups = 10;
    inode_bytes_per_inode = 4096;
    cache_blocks = 2048;
    read_clustering = true;
    readahead_blocks = 32;
    (* The write side of BSD clustering arrived with 4.4BSD, after the
       paper's measurements: off by default so the FFS baseline keeps the
       per-block write-back pattern of Figures 1/2. *)
    write_clustering = false;
    writeback_age_us = 30_000_000;
  }

let small =
  {
    block_size = 1024;
    ngroups = 4;
    inode_bytes_per_inode = 2048;
    cache_blocks = 64;
    read_clustering = true;
    readahead_blocks = 8;
    write_clustering = false;
    writeback_age_us = 30_000_000;
  }

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if t.block_size <= 0 || t.block_size land (t.block_size - 1) <> 0 then
    err "block_size must be a positive power of two: %d" t.block_size
  else if t.ngroups < 1 then err "ngroups must be at least 1"
  else if t.inode_bytes_per_inode < 512 then
    err "inode_bytes_per_inode too small"
  else if t.cache_blocks <= 0 then err "cache_blocks must be positive"
  else if t.readahead_blocks < 0 then
    err "readahead_blocks must be non-negative (0 disables read-ahead)"
  else Ok ()
