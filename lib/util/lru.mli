(** Polymorphic LRU map with O(1) lookup, insert and eviction.

    The block caches of both file systems are built on this.  Capacity is a
    count of entries; insertion beyond capacity evicts the least recently
    used entry and reports it to the caller. *)

type ('k, 'v) t

val create : ?capacity:int -> unit -> ('k, 'v) t
(** [create ~capacity ()] is an empty LRU holding at most [capacity]
    entries (default: unbounded). *)

val length : ('k, 'v) t -> int
val capacity : ('k, 'v) t -> int option
val set_capacity : ('k, 'v) t -> int option -> unit

val find : ('k, 'v) t -> 'k -> 'v option
(** [find t k] returns the binding and promotes it to most recently used. *)

val peek : ('k, 'v) t -> 'k -> 'v option
(** Like {!find} but without promoting. *)

val mem : ('k, 'v) t -> 'k -> bool

val add : ('k, 'v) t -> 'k -> 'v -> ('k * 'v) option
(** [add t k v] binds [k] to [v] (replacing any existing binding and
    promoting it).  Returns the evicted LRU entry if capacity was
    exceeded. *)

val remove : ('k, 'v) t -> 'k -> 'v option
(** Removes and returns the binding for [k], if any. *)

val lru : ('k, 'v) t -> ('k * 'v) option
(** The least-recently-used binding, without removing it. *)

val pop_lru : ('k, 'v) t -> ('k * 'v) option
(** Removes and returns the least-recently-used binding. *)

val iter : ('k -> 'v -> unit) -> ('k, 'v) t -> unit
(** Iterates from most recently used to least recently used.  The table
    must not be mutated during iteration. *)

val fold : ('k -> 'v -> 'acc -> 'acc) -> ('k, 'v) t -> 'acc -> 'acc

val to_list : ('k, 'v) t -> ('k * 'v) list
(** Most recently used first.  Test/debug only: it materializes the whole
    table as a list, so production code must use {!iter}, {!fold},
    {!iter_lru}, {!fold_lru} or {!sweep_lru} instead — the project lint
    (rule [lru-to-list]) rejects calls from [lib/]. *)

val iter_lru : ('k -> 'v -> unit) -> ('k, 'v) t -> unit
(** Iterates from least recently used to most recently used, without
    materializing a list.  The table must not be mutated during
    iteration. *)

val fold_lru : ('k -> 'v -> 'acc -> 'acc) -> ('k, 'v) t -> 'acc -> 'acc
(** Fold in least-recently-used-first order. *)

type action = Keep | Remove | Stop

val sweep_lru : ('k -> 'v -> action) -> ('k, 'v) t -> unit
(** Walk from the cold (LRU) end towards the hot end, applying the
    directive returned for each entry: [Keep] moves on, [Remove] deletes
    the entry and moves on, [Stop] ends the walk.  The only mutation
    allowed during the walk is the [Remove] it performs itself — O(visited)
    with no allocation, which is what the cache eviction hot path needs. *)

val clear : ('k, 'v) t -> unit
