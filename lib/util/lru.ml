(* Doubly-linked list threaded through a hash table.  [head] is the most
   recently used node, [tail] the least. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;
  mutable next : ('k, 'v) node option;
}

type ('k, 'v) t = {
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;
  mutable tail : ('k, 'v) node option;
  mutable capacity : int option;
}

let create ?capacity () =
  (match capacity with
  | Some c when c <= 0 -> invalid_arg "Lru.create: capacity must be positive"
  | _ -> ());
  { table = Hashtbl.create 64; head = None; tail = None; capacity }

let length t = Hashtbl.length t.table
let capacity t = t.capacity

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let promote t node =
  if t.head != Some node then begin
    unlink t node;
    push_front t node
  end

let find t k =
  match Hashtbl.find_opt t.table k with
  | None -> None
  | Some node ->
      promote t node;
      Some node.value

let peek t k =
  match Hashtbl.find_opt t.table k with
  | None -> None
  | Some node -> Some node.value

let mem t k = Hashtbl.mem t.table k

let pop_lru t =
  match t.tail with
  | None -> None
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table node.key;
      Some (node.key, node.value)

let add t k v =
  match Hashtbl.find_opt t.table k with
  | Some node ->
      node.value <- v;
      promote t node;
      None
  | None ->
      let node = { key = k; value = v; prev = None; next = None } in
      Hashtbl.replace t.table k node;
      push_front t node;
      (match t.capacity with
      | Some c when Hashtbl.length t.table > c -> pop_lru t
      | Some _ | None -> None)

let set_capacity t capacity =
  (match capacity with
  | Some c when c <= 0 -> invalid_arg "Lru.set_capacity"
  | _ -> ());
  t.capacity <- capacity

let remove t k =
  match Hashtbl.find_opt t.table k with
  | None -> None
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table k;
      Some node.value

let lru t = match t.tail with None -> None | Some n -> Some (n.key, n.value)

let iter f t =
  let rec go = function
    | None -> ()
    | Some node ->
        f node.key node.value;
        go node.next
  in
  go t.head

let fold f t init =
  let acc = ref init in
  iter (fun k v -> acc := f k v !acc) t;
  !acc

let to_list t = List.rev (fold (fun k v acc -> (k, v) :: acc) t [])

let iter_lru f t =
  let rec go = function
    | None -> ()
    | Some node ->
        f node.key node.value;
        go node.prev
  in
  go t.tail

let fold_lru f t init =
  let acc = ref init in
  iter_lru (fun k v -> acc := f k v !acc) t;
  !acc

type action = Keep | Remove | Stop

let sweep_lru f t =
  let rec go = function
    | None -> ()
    | Some node -> (
        (* Capture the next node before calling [f]: a [Remove] unlinks
           [node] and clears its pointers. *)
        let up = node.prev in
        match f node.key node.value with
        | Keep -> go up
        | Remove ->
            unlink t node;
            Hashtbl.remove t.table node.key;
            go up
        | Stop -> ())
  in
  go t.tail

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None
