(** Declarative scenario builder: one entry point for every kind of
    correctness run in the repo.

    A spec is assembled left to right and compiled onto the existing
    machinery by {!run}:

    {[
      Scenario.(
        make
        |> ops [ Create 2; Read 4; Overwrite 3; Delete 1 ]
        |> clients 4
        |> think (Uniform (1_000, 10_000))
        |> invariant ~name:"fsck" fsck
        |> seed 42 |> run)
    ]}

    Four compilation targets, chosen by the spec:

    - {b stream} (the default): a single-threaded op stream generated
      from the seed, executed in lockstep against the pure {!Model_fs}
      reference — every outcome, the final tree, and a post-flush
      re-read must agree.
    - {b engine} ([clients n]): a multi-client closed-loop run through
      {!Lfs_workload.Engine} with the op mix mapped onto its fractions.
    - {b sweep} ([crash_sweep]): a write-boundary crash-recovery sweep
      through {!Lfs_workload.Crashpoint}, optionally with [Torn] writes.
    - {b read-back} ([read_back] + a [Transient] fault): write, drop
      caches, and read everything back while reads transiently fail —
      the {!Lfs_disk.Io} retry/backoff path must absorb every fault.

    Every mode finishes with the always-on sanitizer
    ({!Lfs_workload.Driver.sanitize}) plus any user {!invariant} hooks,
    and every run is seed-managed: a failing scenario is minimized by
    delta-debugging shrinking ({!shrink}) and reported with a one-line
    [lfstool scenario … --replay SEED] invocation that reproduces the
    shrunk counterexample byte-for-byte.

    Scoped fault injection for hand-written tests goes through
    {!with_faults}; the [scenario-entry] lint rule keeps test code off
    the raw [Crashpoint]/[Faulty] entry points. *)

type system = [ `Lfs | `Ffs ]

(** One operation kind with its relative weight in the mix. *)
type weighted =
  | Create of int
  | Mkdir of int
  | Read of int
  | Overwrite of int
  | Append of int
  | Truncate of int
  | Rename of int
  | Delete of int
  | Sync of int

type think = Lfs_workload.Engine.think = Constant of int | Uniform of int * int

(** Fault kinds.  [Torn] composes with [crash_sweep]; [Transient]
    composes with stream, engine and [read_back] runs;
    [Checkpoint_bad_sector] is a whole-run mode (sticky bad sector over
    LFS checkpoint region A).  [Bad_sectors] and [Crash_after] are
    scoped faults for {!with_faults} only — a whole-run spec cannot
    recover from them. *)
type fault =
  | Torn
  | Transient of { rate : float; burst : int }
  | Bad_sectors of int list
  | Crash_after of int
  | Checkpoint_bad_sector

type t
(** A scenario spec under construction. *)

(** {1 Builder} *)

val make : t
(** LFS, the default mix ({!default_mix}), 48 ops, no clients, no
    faults, seed 1. *)

val system : system -> t -> t
val ops : weighted list -> t -> t
val count : int -> t -> t
(** Total operations generated (split across clients in engine mode). *)

val payload : int -> t -> t
(** Payload scale in bytes: stream writes draw lengths up to twice
    this, appends up to it. *)

val clients : int -> t -> t
(** Compile to a multi-client {!Lfs_workload.Engine} run. *)

val think : think -> t -> t
(** Client think-time model (engine mode only). *)

val faults : fault list -> t -> t
val crash_sweep : t -> t
(** Compile to an exhaustive {!Lfs_workload.Crashpoint} sweep. *)

val boundaries : int -> t -> t
(** Cap on write boundaries tested by a sweep (default 48). *)

val read_back : t -> t
(** Compile to a {!Lfs_workload.Crashpoint.read_fault_run}: requires a
    [Transient] fault. *)

val volume : Lfs_disk.Volume.policy -> int -> t -> t
(** Run the scenario on a multi-disk volume of that many members instead
    of a single disk (every mode except [Checkpoint_bad_sector], which
    targets a specific physical sector; mirror volumes additionally
    reject [crash_sweep] — a mid-fan-out crash leaves replicas
    divergent, so the durable model cannot assert anything). *)

val fault_member : int -> t -> t
(** Confine injected faults to one volume member (stream/engine modes;
    requires {!volume}).  A mirror with a [Transient] fault on one
    member exercises the degraded-read path: the other replica serves
    the data and [io.degraded_reads] counts the failovers. *)

val invariant : ?name:string -> (Lfs_vfs.Fs_intf.instance -> string list) -> t -> t
(** Register a user invariant: given the surviving instance (for sweep
    modes, a fault-free replay of the same ops), return violation
    messages.  Runs after the op stream, before the sanitizer. *)

val seed : int -> t -> t
val cli_flags : string list -> t -> t
(** Extra flags to reproduce CLI-only behaviour (e.g. [--plant]) in the
    printed replay line. *)

val fsck : Lfs_vfs.Fs_intf.instance -> string list
(** The system's own structural self-check as an invariant hook
    (= {!Lfs_workload.Driver.integrity}). *)

val default_mix : weighted list
val mix_to_string : weighted list -> string
(** ["create=2,read=4,…"] — the [--mix] flag syntax. *)

val mix_of_string : string -> weighted list
(** Inverse of {!mix_to_string}.
    @raise Lfs_workload.Driver.Benchmark_failure on malformed input. *)

(** {1 Compiled form} *)

(** One concrete stream-mode operation (content seeds baked in at
    generation time, so a shrunk subsequence replays identically). *)
type step =
  | S_create of string list
  | S_mkdir of string list
  | S_read of string list * int * int  (** path, off, len *)
  | S_write of string list * int * int  (** path, content seed, len *)
  | S_append of string list * int * int  (** path, content seed, len *)
  | S_truncate of string list * int
  | S_rename of string list * string list
  | S_delete of string list
  | S_sync

val pp_step : step -> string

val steps_of : t -> step list
(** The deterministic stream compilation of a spec: same spec ⇒ same
    steps. *)

(** {1 Running} *)

type stats = {
  ops_run : int;
  faults_injected : int;
  retries : int;  (** [io.retries] *)
  backoff_us : int;  (** [io.backoff_us] *)
  read_errors : int;  (** [disk.faults.read_errors] *)
  bad_sector_reads : int;  (** [disk.faults.bad_sector_reads] *)
}

type failure = {
  message : string;  (** first violation, re-derived on the shrunk run *)
  steps : string list;  (** rendered minimal counterexample *)
  original_steps : int;
  shrunk_steps : int;
  replay : string;  (** one-line reproduction command *)
}

type report = {
  label : string;  (** e.g. ["lfs/stream"] *)
  mode : string;
  seed_used : int;
  stats : stats;
  sweep : Lfs_workload.Crashpoint.outcome option;
  engine : Lfs_workload.Engine.result option;
  failure : failure option;
}

val replay_command : t -> string
(** [lfstool scenario <flags> --replay SEED] for this spec. *)

val run : t -> report
(** Compile and execute the spec.  Never raises on a scenario
    {e failure} (that is the [failure] field); raises
    {!Lfs_workload.Driver.Benchmark_failure} on an invalid spec. *)

val render : report -> string
(** Human-readable report (pure — callers print). *)

val to_json : report -> Lfs_obs.Json.t
(** [lfs-scenario/1] encoding for [lfstool scenario --json]. *)

(** {1 Scoped fault injection} *)

type injection = {
  inj_writes : int;  (** write boundaries observed while attached *)
  inj_faults : int;  (** faults injected while attached *)
  inj_crashed : bool;  (** whether the simulated machine went down *)
}

val with_faults :
  ?member:int ->
  ?seed:int ->
  Lfs_disk.Io.t ->
  fault list ->
  (unit -> 'a) ->
  'a * injection
(** Attach the faults to [io], run the thunk, and always detach
    (clearing any crash) on the way out — the sanctioned way for tests
    to use {!Lfs_disk.Faulty} directly.  Accepts the scoped fault kinds
    ([Bad_sectors], [Crash_after]) that whole-run specs reject.
    [member] confines the faults to one volume member. *)

(** {1 Shrinking} *)

val shrink : fails:('a list -> string option) -> 'a list -> 'a list
(** Delta-debugging minimization: given a failing list ([fails] returns
    [Some _] on it), return a 1-minimal failing subsequence (order
    preserved; removing any single remaining element makes it pass).
    Deterministic for a deterministic oracle.  Returns the input
    unchanged if it does not fail. *)
