(* A pure reference file system: the specification both LFS and FFS are
   tested against.  Paths are component lists.  Regular files are ids into
   a content table so hard links alias naturally. *)

module M = Map.Make (struct
  type t = string list

  let compare = compare
end)

type node = File of int | Dir

type t = {
  mutable nodes : node M.t;
  contents : (int, bytes) Hashtbl.t;
  mutable next_id : int;
}

let create () =
  { nodes = M.add [] Dir M.empty; contents = Hashtbl.create 64; next_id = 0 }

type outcome = Done | Data of bytes | Names of string list | Failed

let parent path = List.filteri (fun i _ -> i < List.length path - 1) path

let parent_is_dir t path =
  match M.find_opt (parent path) t.nodes with Some Dir -> true | _ -> false

let exists t path = M.mem path t.nodes

let children t path =
  M.fold
    (fun p _ acc ->
      if List.length p = List.length path + 1 && parent p = path then
        List.nth p (List.length p - 1) :: acc
      else acc)
    t.nodes []

let nlink t id =
  M.fold
    (fun _ node acc -> match node with File i when i = id -> acc + 1 | _ -> acc)
    t.nodes 0

let mk_node t path node =
  if path = [] || exists t path || not (parent_is_dir t path) then Failed
  else begin
    t.nodes <- M.add path node t.nodes;
    Done
  end

let create_file t path =
  let id = t.next_id in
  match mk_node t path (File id) with
  | Done ->
      t.next_id <- id + 1;
      Hashtbl.replace t.contents id Bytes.empty;
      Done
  | other -> other

let mkdir t path = mk_node t path Dir

let delete t path =
  match M.find_opt path t.nodes with
  | None -> Failed
  | Some Dir when path = [] || children t path <> [] -> Failed
  | Some Dir ->
      t.nodes <- M.remove path t.nodes;
      Done
  | Some (File id) ->
      t.nodes <- M.remove path t.nodes;
      if nlink t id = 0 then Hashtbl.remove t.contents id;
      Done

let file_id t path =
  match M.find_opt path t.nodes with Some (File id) -> Some id | _ -> None

let write t path ~off data =
  match file_id t path with
  | None -> Failed
  | Some id ->
      let old = Hashtbl.find t.contents id in
      let len = max (Bytes.length old) (off + Bytes.length data) in
      let b = Bytes.make len '\000' in
      Bytes.blit old 0 b 0 (Bytes.length old);
      Bytes.blit data 0 b off (Bytes.length data);
      Hashtbl.replace t.contents id b;
      Done

let read t path ~off ~len =
  match file_id t path with
  | None -> Failed
  | Some id ->
      let b = Hashtbl.find t.contents id in
      if off >= Bytes.length b then Data Bytes.empty
      else Data (Bytes.sub b off (min len (Bytes.length b - off)))

let truncate t path ~size =
  match file_id t path with
  | None -> Failed
  | Some id ->
      let b = Hashtbl.find t.contents id in
      let b' = Bytes.make size '\000' in
      Bytes.blit b 0 b' 0 (min size (Bytes.length b));
      Hashtbl.replace t.contents id b';
      Done

let is_prefix a b =
  let rec go a b =
    match (a, b) with
    | [], _ -> true
    | x :: a', y :: b' -> x = y && go a' b'
    | _ :: _, [] -> false
  in
  go a b

let rename t src dst =
  if
    src = [] || dst = []
    || (not (exists t src))
    || exists t dst
    || (not (parent_is_dir t dst))
    || is_prefix src dst
  then Failed
  else begin
    (* Move the node and, for directories, the whole subtree. *)
    let moved =
      M.fold
        (fun p node acc ->
          if is_prefix src p then
            (dst @ List.filteri (fun i _ -> i >= List.length src) p, node) :: acc
          else acc)
        t.nodes []
    in
    t.nodes <- M.filter (fun p _ -> not (is_prefix src p)) t.nodes;
    List.iter (fun (p, node) -> t.nodes <- M.add p node t.nodes) moved;
    Done
  end

let link t src dst =
  match file_id t src with
  | None -> Failed (* absent, or a directory *)
  | Some id ->
      if dst = [] || exists t dst || not (parent_is_dir t dst) then Failed
      else begin
        t.nodes <- M.add dst (File id) t.nodes;
        Done
      end

let readdir t path =
  match M.find_opt path t.nodes with
  | Some Dir -> Names (List.sort String.compare (children t path))
  | Some (File _) | None -> Failed

let all_files t =
  M.fold
    (fun p node acc ->
      match node with
      | File id -> (p, Hashtbl.find t.contents id) :: acc
      | Dir -> acc)
    t.nodes []

let all_dirs t =
  M.fold
    (fun p node acc -> match node with Dir -> p :: acc | File _ -> acc)
    t.nodes []

let nlink_of_path t path =
  match file_id t path with Some id -> nlink t id | None -> 0
