(* The scenario compiler: one declarative spec type, four compilation
   targets (stream-vs-model, multi-client engine, crash-point sweep,
   read-back under transient faults), shared seed management, shrinking
   and replay.  This module is the single sanctioned caller of the raw
   fault machinery (Crashpoint sweeps, Faulty.attach) outside
   lib/workload — the scenario-entry lint rule points everyone else
   here. *)

module Engine = Lfs_workload.Engine
module Crashpoint = Lfs_workload.Crashpoint
module Driver = Lfs_workload.Driver
module Setup = Lfs_workload.Setup
module Faulty = Lfs_disk.Faulty
module Io = Lfs_disk.Io
module Volume = Lfs_disk.Volume
module Metrics = Lfs_obs.Metrics
module Json = Lfs_obs.Json
module Fs_intf = Lfs_vfs.Fs_intf
module Rng = Lfs_util.Rng

type system = [ `Lfs | `Ffs ]

type weighted =
  | Create of int
  | Mkdir of int
  | Read of int
  | Overwrite of int
  | Append of int
  | Truncate of int
  | Rename of int
  | Delete of int
  | Sync of int

type think = Engine.think = Constant of int | Uniform of int * int

type fault =
  | Torn
  | Transient of { rate : float; burst : int }
  | Bad_sectors of int list
  | Crash_after of int
  | Checkpoint_bad_sector

type t = {
  sc_system : system;
  sc_mix : weighted list;
  sc_count : int;
  sc_payload : int;
  sc_clients : int option;
  sc_think : think option;
  sc_faults : fault list;
  sc_sweep : bool;
  sc_boundaries : int;
  sc_read_back : bool;
  sc_invariants : (string * (Fs_intf.instance -> string list)) list;
  sc_volume : (Volume.policy * int) option;
  sc_fault_member : int option;
  sc_seed : int;
  sc_cli : string list;
}

let default_mix =
  [
    Create 3;
    Mkdir 2;
    Read 3;
    Overwrite 4;
    Append 2;
    Truncate 1;
    Rename 2;
    Delete 2;
    Sync 1;
  ]

let default_count = 48
let default_payload = 2500
let default_boundaries = 48

let make =
  {
    sc_system = `Lfs;
    sc_mix = default_mix;
    sc_count = default_count;
    sc_payload = default_payload;
    sc_clients = None;
    sc_think = None;
    sc_faults = [];
    sc_sweep = false;
    sc_boundaries = default_boundaries;
    sc_read_back = false;
    sc_invariants = [];
    sc_volume = None;
    sc_fault_member = None;
    sc_seed = 1;
    sc_cli = [];
  }

let system s spec = { spec with sc_system = s }
let ops mix spec = { spec with sc_mix = mix }
let count n spec = { spec with sc_count = n }
let payload n spec = { spec with sc_payload = n }
let clients n spec = { spec with sc_clients = Some n }
let think th spec = { spec with sc_think = Some th }
let faults fl spec = { spec with sc_faults = fl }
let crash_sweep spec = { spec with sc_sweep = true }
let boundaries n spec = { spec with sc_boundaries = n }
let read_back spec = { spec with sc_read_back = true }

let invariant ?(name = "user") f spec =
  { spec with sc_invariants = (name, f) :: spec.sc_invariants }

let volume policy members spec = { spec with sc_volume = Some (policy, members) }
let fault_member m spec = { spec with sc_fault_member = Some m }
let seed s spec = { spec with sc_seed = s }
let cli_flags fl spec = { spec with sc_cli = spec.sc_cli @ fl }
let fsck = Driver.integrity

(* ---------- op mix ---------- *)

type kind =
  | KCreate
  | KMkdir
  | KRead
  | KOverwrite
  | KAppend
  | KTruncate
  | KRename
  | KDelete
  | KSync

let kind_of = function
  | Create _ -> KCreate
  | Mkdir _ -> KMkdir
  | Read _ -> KRead
  | Overwrite _ -> KOverwrite
  | Append _ -> KAppend
  | Truncate _ -> KTruncate
  | Rename _ -> KRename
  | Delete _ -> KDelete
  | Sync _ -> KSync

let weight_of = function
  | Create w | Mkdir w | Read w | Overwrite w | Append w | Truncate w
  | Rename w | Delete w | Sync w ->
      w

let kind_name = function
  | KCreate -> "create"
  | KMkdir -> "mkdir"
  | KRead -> "read"
  | KOverwrite -> "overwrite"
  | KAppend -> "append"
  | KTruncate -> "truncate"
  | KRename -> "rename"
  | KDelete -> "delete"
  | KSync -> "sync"

let weighted_of_name name w =
  match name with
  | "create" -> Create w
  | "mkdir" -> Mkdir w
  | "read" -> Read w
  | "overwrite" -> Overwrite w
  | "append" -> Append w
  | "truncate" -> Truncate w
  | "rename" -> Rename w
  | "delete" -> Delete w
  | "sync" -> Sync w
  | other -> Driver.fail "scenario: unknown op kind %S in mix" other

let mix_to_string mix =
  String.concat ","
    (List.map
       (fun w -> Printf.sprintf "%s=%d" (kind_name (kind_of w)) (weight_of w))
       mix)

let mix_of_string s =
  String.split_on_char ',' s
  |> List.map (fun item ->
         match String.split_on_char '=' (String.trim item) with
         | [ name; w ] -> (
             match int_of_string_opt (String.trim w) with
             | Some w -> weighted_of_name (String.trim name) w
             | None -> Driver.fail "scenario: bad weight in mix item %S" item)
         | _ -> Driver.fail "scenario: bad mix item %S (want name=weight)" item)

let total_weight mix = List.fold_left (fun acc w -> acc + weight_of w) 0 mix

let kind_weight mix kinds =
  List.fold_left
    (fun acc w -> if List.mem (kind_of w) kinds then acc + weight_of w else acc)
    0 mix

(* Draw one kind, proportional to the weights. *)
let pick rng mix total =
  let r = Rng.int rng total in
  let rec go acc = function
    | [] -> KSync (* unreachable: total = sum of weights *)
    | w :: rest ->
        let acc = acc + weight_of w in
        if r < acc then kind_of w else go acc rest
  in
  go 0 mix

(* ---------- validation ---------- *)

let is_transient = function Transient _ -> true | _ -> false

let validate spec =
  if spec.sc_mix = [] then Driver.fail "scenario: empty op mix";
  List.iter
    (fun w ->
      if weight_of w < 0 then
        Driver.fail "scenario: negative weight for %s" (kind_name (kind_of w)))
    spec.sc_mix;
  if total_weight spec.sc_mix <= 0 then
    Driver.fail "scenario: op mix has zero total weight";
  if spec.sc_count < 1 then Driver.fail "scenario: count must be >= 1";
  if spec.sc_payload < 1 then Driver.fail "scenario: payload must be >= 1";
  if spec.sc_boundaries < 1 then Driver.fail "scenario: boundaries must be >= 1";
  (match spec.sc_clients with
  | Some n when n < 1 -> Driver.fail "scenario: clients must be >= 1"
  | Some n when spec.sc_count < n ->
      Driver.fail "scenario: count (%d) smaller than client count (%d)"
        spec.sc_count n
  | _ -> ());
  if spec.sc_think <> None && spec.sc_clients = None then
    Driver.fail "scenario: think time applies to engine mode (set clients)";
  let bad_sector = List.mem Checkpoint_bad_sector spec.sc_faults in
  let exclusive =
    (if spec.sc_sweep then 1 else 0)
    + (if spec.sc_read_back then 1 else 0)
    + (if bad_sector then 1 else 0)
    + if spec.sc_clients <> None then 1 else 0
  in
  if exclusive > 1 then
    Driver.fail
      "scenario: crash_sweep, read_back, Checkpoint_bad_sector and clients \
       are mutually exclusive run modes";
  if bad_sector && List.length spec.sc_faults > 1 then
    Driver.fail "scenario: Checkpoint_bad_sector composes with no other fault";
  if bad_sector && spec.sc_system = `Ffs then
    Driver.fail
      "scenario: Checkpoint_bad_sector exercises LFS checkpoint regions";
  List.iter
    (fun f ->
      match f with
      | Torn ->
          if not spec.sc_sweep then
            Driver.fail
              "scenario: Torn applies to crash sweeps (or use with_faults)"
      | Transient { rate; burst } ->
          if rate < 0.0 || rate > 1.0 then
            Driver.fail "scenario: transient rate %g outside [0,1]" rate;
          if burst < 1 then Driver.fail "scenario: transient burst must be >= 1";
          if spec.sc_sweep then
            Driver.fail "scenario: Transient does not compose with crash_sweep"
      | Bad_sectors _ ->
          Driver.fail
            "scenario: Bad_sectors is a scoped fault for with_faults, not a \
             whole-run fault"
      | Crash_after _ ->
          Driver.fail
            "scenario: Crash_after is a scoped fault for with_faults, not a \
             whole-run fault"
      | Checkpoint_bad_sector -> ())
    spec.sc_faults;
  if spec.sc_read_back && not (List.exists is_transient spec.sc_faults) then
    Driver.fail "scenario: read_back needs a Transient fault";
  (match spec.sc_volume with
  | Some (_, n) when n < 1 -> Driver.fail "scenario: volume members must be >= 1"
  | Some (Volume.Mirror, _) when spec.sc_sweep ->
      (* A mid-fan-out crash leaves mirror replicas divergent; which copy
         a later load-balanced read sees is unspecified, so the durable
         model cannot assert anything. *)
      Driver.fail "scenario: crash sweeps on mirror volumes are unsound"
  | Some _ when bad_sector ->
      Driver.fail "scenario: Checkpoint_bad_sector runs on a single disk"
  | _ -> ());
  match spec.sc_fault_member with
  | None -> ()
  | Some m -> (
      match spec.sc_volume with
      | None -> Driver.fail "scenario: fault_member needs a volume"
      | Some (_, n) ->
          if m < 0 || m >= n then
            Driver.fail "scenario: fault_member %d out of range (%d members)" m n;
          if spec.sc_sweep || spec.sc_read_back then
            Driver.fail
              "scenario: fault_member applies to stream/engine faults \
               (sweep and read_back drive whole-device scenarios)")

(* ---------- stream compilation ---------- *)

type step =
  | S_create of string list
  | S_mkdir of string list
  | S_read of string list * int * int
  | S_write of string list * int * int
  | S_append of string list * int * int
  | S_truncate of string list * int
  | S_rename of string list * string list
  | S_delete of string list
  | S_sync

let names = [| "a"; "b"; "c"; "d" |]
let gen_name rng = names.(Rng.int rng (Array.length names))

let gen_path rng =
  match Rng.int rng 4 with
  | 0 | 1 -> [ gen_name rng ]
  | 2 -> [ gen_name rng; gen_name rng ]
  | _ -> [ gen_name rng; gen_name rng; gen_name rng ]

let path_string p = "/" ^ String.concat "/" p

let pp_step = function
  | S_create p -> "create " ^ path_string p
  | S_mkdir p -> "mkdir " ^ path_string p
  | S_read (p, off, len) ->
      Printf.sprintf "read %s off=%d len=%d" (path_string p) off len
  | S_write (p, seed, len) ->
      Printf.sprintf "write %s seed=%d len=%d" (path_string p) seed len
  | S_append (p, seed, len) ->
      Printf.sprintf "append %s seed=%d len=%d" (path_string p) seed len
  | S_truncate (p, size) ->
      Printf.sprintf "truncate %s size=%d" (path_string p) size
  | S_rename (a, b) ->
      Printf.sprintf "rename %s %s" (path_string a) (path_string b)
  | S_delete p -> "delete " ^ path_string p
  | S_sync -> "sync"

let steps_of spec =
  validate spec;
  let rng = Rng.create spec.sc_seed in
  let total = total_weight spec.sc_mix in
  List.init spec.sc_count (fun i ->
      match pick rng spec.sc_mix total with
      | KCreate -> S_create (gen_path rng)
      | KMkdir -> S_mkdir (gen_path rng)
      | KRead ->
          let p = gen_path rng in
          let off = Rng.int rng (2 * spec.sc_payload) in
          S_read (p, off, 1 + Rng.int rng (2 * spec.sc_payload))
      | KOverwrite ->
          let p = gen_path rng in
          S_write (p, (spec.sc_seed * 97) + i, Rng.int rng ((2 * spec.sc_payload) + 1))
      | KAppend ->
          let p = gen_path rng in
          S_append (p, (spec.sc_seed * 89) + i, Rng.int rng (spec.sc_payload + 1))
      | KTruncate ->
          let p = gen_path rng in
          S_truncate (p, Rng.int rng (2 * spec.sc_payload))
      | KRename ->
          let a = gen_path rng in
          S_rename (a, gen_path rng)
      | KDelete -> S_delete (gen_path rng)
      | KSync -> S_sync)

(* ---------- faults ---------- *)

type injection = { inj_writes : int; inj_faults : int; inj_crashed : bool }

let scenario_of_faults ?member ~seed fl =
  List.fold_left
    (fun scn f ->
      match f with
      | Torn -> { scn with Faulty.torn_write = true }
      | Transient { rate; burst } ->
          { scn with Faulty.read_error_rate = rate; read_error_burst = burst }
      | Bad_sectors l -> { scn with Faulty.bad_sectors = l }
      | Crash_after n -> { scn with Faulty.crash_after_writes = Some n }
      | Checkpoint_bad_sector ->
          Driver.fail
            "scenario: Checkpoint_bad_sector is a whole-run mode, not an \
             attachable fault")
    { Faulty.quiet with Faulty.seed; member }
    fl

let with_faults ?member ?(seed = 1) io fl f =
  let h = Faulty.attach io (scenario_of_faults ?member ~seed fl) in
  let snap () =
    {
      inj_writes = Faulty.writes_seen h;
      inj_faults = Faulty.faults_injected h;
      inj_crashed = Faulty.crashed h;
    }
  in
  let inj = ref (snap ()) in
  let finally () =
    inj := snap ();
    if Faulty.crashed h then Faulty.clear_crash h;
    Faulty.detach h
  in
  let r = Fun.protect ~finally f in
  (r, !inj)

(* ---------- shrinking ---------- *)

let shrink ~fails items =
  let fails_some l = fails l <> None in
  if not (fails_some items) then items
  else begin
    (* Zeller-Hildebrandt ddmin over subsequence complements. *)
    let rec ddmin items n =
      let len = List.length items in
      if len <= 1 then items
      else begin
        let chunk = max 1 (len / n) in
        let rec try_complements i =
          if i * chunk >= len then None
          else
            let complement =
              List.filteri
                (fun j _ -> j < i * chunk || j >= min len ((i + 1) * chunk))
                items
            in
            if
              complement <> []
              && List.length complement < len
              && fails_some complement
            then Some complement
            else try_complements (i + 1)
        in
        match try_complements 0 with
        | Some smaller -> ddmin smaller (max 2 (n - 1))
        | None -> if n >= len then items else ddmin items (min len (2 * n))
      end
    in
    let reduced = ddmin items 2 in
    (* Greedy single-removal pass: guarantees 1-minimality. *)
    let rec greedy i cur =
      if i >= List.length cur then cur
      else
        let without = List.filteri (fun j _ -> j <> i) cur in
        if without <> [] && fails_some without then greedy i without
        else greedy (i + 1) cur
    in
    greedy 0 reduced
  end

(* ---------- shared run plumbing ---------- *)

type stats = {
  ops_run : int;
  faults_injected : int;
  retries : int;
  backoff_us : int;
  read_errors : int;
  bad_sector_reads : int;
}

type failure = {
  message : string;
  steps : string list;
  original_steps : int;
  shrunk_steps : int;
  replay : string;
}

type report = {
  label : string;
  mode : string;
  seed_used : int;
  stats : stats;
  sweep : Crashpoint.outcome option;
  engine : Engine.result option;
  failure : failure option;
}

let zero_stats =
  {
    ops_run = 0;
    faults_injected = 0;
    retries = 0;
    backoff_us = 0;
    read_errors = 0;
    bad_sector_reads = 0;
  }

let stats_of_instance ?(ops_run = 0) ?(faults = 0) inst =
  let snap = Metrics.snapshot (Driver.metrics inst) in
  let c name = Option.value ~default:0 (Metrics.counter_value snap name) in
  {
    ops_run;
    faults_injected = faults;
    retries = c "io.retries";
    backoff_us = c "io.backoff_us";
    read_errors = c "disk.faults.read_errors";
    bad_sector_reads = c "disk.faults.bad_sector_reads";
  }

let small_instance spec =
  match spec.sc_volume with
  | None -> (
      match spec.sc_system with
      | `Lfs ->
          Setup.lfs ~disk_mb:16 ~cpu:Lfs_disk.Cpu_model.free
            ~config:Lfs_core.Config.small ()
      | `Ffs ->
          Setup.ffs ~disk_mb:16 ~cpu:Lfs_disk.Cpu_model.free
            ~config:Lfs_ffs.Config.small ())
  | Some (policy, members) -> (
      let io =
        Setup.make_volume_io ~disk_mb:16 ~cpu:Lfs_disk.Cpu_model.free ~policy
          ~members ()
      in
      match spec.sc_system with
      | `Lfs -> Setup.lfs_on io ~config:Lfs_core.Config.small ()
      | `Ffs -> Setup.ffs_on io ~config:Lfs_ffs.Config.small ())

let engine_instance spec =
  match spec.sc_volume with
  | None -> (
      match spec.sc_system with
      | `Lfs -> Setup.lfs ~disk_mb:64 ()
      | `Ffs -> Setup.ffs ~disk_mb:64 ())
  | Some (policy, members) -> (
      let io = Setup.make_volume_io ~disk_mb:64 ~policy ~members () in
      match spec.sc_system with
      | `Lfs -> Setup.lfs_on io ()
      | `Ffs -> Setup.ffs_on io ())

(* First violated user invariant, in declaration order. *)
let run_invariants spec inst =
  List.fold_left
    (fun acc (name, f) ->
      match acc with
      | Some _ -> acc
      | None -> (
          match f inst with
          | [] -> None
          | v :: _ -> Some (Printf.sprintf "invariant %s: %s" name v)))
    None
    (List.rev spec.sc_invariants)

let replay_command spec =
  let b = Buffer.create 96 in
  Buffer.add_string b "lfstool scenario";
  if spec.sc_system = `Ffs then Buffer.add_string b " --system ffs";
  if spec.sc_mix <> default_mix then
    Buffer.add_string b (" --mix " ^ mix_to_string spec.sc_mix);
  if spec.sc_count <> default_count then
    Buffer.add_string b (Printf.sprintf " --count %d" spec.sc_count);
  if spec.sc_payload <> default_payload then
    Buffer.add_string b (Printf.sprintf " --payload %d" spec.sc_payload);
  (match spec.sc_clients with
  | Some n -> Buffer.add_string b (Printf.sprintf " --clients %d" n)
  | None -> ());
  (match spec.sc_think with
  | Some (Constant c) -> Buffer.add_string b (Printf.sprintf " --think %d:%d" c c)
  | Some (Uniform (lo, hi)) ->
      Buffer.add_string b (Printf.sprintf " --think %d:%d" lo hi)
  | None -> ());
  if spec.sc_sweep then Buffer.add_string b " --sweep";
  (match spec.sc_volume with
  | Some (Volume.Mirror, n) ->
      Buffer.add_string b (Printf.sprintf " --volume mirror:%d" n)
  | Some (Volume.Stripe { chunk_sectors }, n) ->
      Buffer.add_string b (Printf.sprintf " --volume stripe:%d:%d" n chunk_sectors)
  | Some (Volume.Log_stripe { stripe_sectors }, n) ->
      Buffer.add_string b
        (Printf.sprintf " --volume log_stripe:%d:%d" n stripe_sectors)
  | None -> ());
  (match spec.sc_fault_member with
  | Some m -> Buffer.add_string b (Printf.sprintf " --fault-member %d" m)
  | None -> ());
  if spec.sc_boundaries <> default_boundaries then
    Buffer.add_string b (Printf.sprintf " --boundaries %d" spec.sc_boundaries);
  List.iter
    (fun f ->
      match f with
      | Torn -> Buffer.add_string b " --torn"
      | Transient { rate; burst } ->
          Buffer.add_string b (Printf.sprintf " --transient %g" rate);
          if burst <> 1 then
            Buffer.add_string b (Printf.sprintf " --burst %d" burst)
      | Checkpoint_bad_sector -> Buffer.add_string b " --bad-sector"
      | Bad_sectors _ | Crash_after _ ->
          (* Scoped faults have no whole-run CLI form. *)
          ())
    spec.sc_faults;
  if spec.sc_read_back then Buffer.add_string b " --read-back";
  List.iter (fun f -> Buffer.add_string b (" " ^ f)) spec.sc_cli;
  Buffer.add_string b (Printf.sprintf " --replay %d" spec.sc_seed);
  Buffer.contents b

let make_failure spec ~message ~steps ~original =
  {
    message;
    steps;
    original_steps = original;
    shrunk_steps = List.length steps;
    replay = replay_command spec;
  }

(* ---------- stream mode ---------- *)

let describe_outcome = function
  | Model_fs.Done -> "ok"
  | Model_fs.Failed -> "error"
  | Model_fs.Data b -> Printf.sprintf "%d bytes" (Bytes.length b)
  | Model_fs.Names l -> Printf.sprintf "[%s]" (String.concat ";" l)

(* Execute [steps] on a fresh instance in lockstep with the model.
   Returns the first failure message, if any, plus run stats. *)
let exec_stream spec steps =
  let exception Stop of string in
  match small_instance spec with
  | Fs_intf.Instance ((module F), fs) as inst -> (
      let model = Model_fs.create () in
      let stop fmt = Printf.ksprintf (fun m -> raise (Stop m)) fmt in
      let of_result = function
        | Ok () -> Model_fs.Done
        | Error _ -> Model_fs.Failed
      in
      let of_read = function
        | Ok b -> Model_fs.Data b
        | Error _ -> Model_fs.Failed
      in
      let size_of p =
        match Model_fs.read model p ~off:0 ~len:max_int with
        | Model_fs.Data b -> Bytes.length b
        | _ -> 0
      in
      let cmp i st expect got =
        if expect <> got then
          stop "step %d (%s): model says %s, %s says %s" i (pp_step st)
            (describe_outcome expect) F.name (describe_outcome got)
      in
      let do_step i st =
        match st with
        | S_create p ->
            cmp i st (Model_fs.create_file model p)
              (of_result (F.create fs (path_string p)))
        | S_mkdir p ->
            cmp i st (Model_fs.mkdir model p)
              (of_result (F.mkdir fs (path_string p)))
        | S_delete p ->
            cmp i st (Model_fs.delete model p)
              (of_result (F.delete fs (path_string p)))
        | S_write (p, cseed, len) ->
            let data = Driver.content ~seed:cseed len in
            cmp i st
              (Model_fs.write model p ~off:0 data)
              (of_result (F.write fs (path_string p) ~off:0 data))
        | S_append (p, cseed, len) ->
            let off = size_of p in
            let data = Driver.content ~seed:cseed len in
            cmp i st
              (Model_fs.write model p ~off data)
              (of_result (F.write fs (path_string p) ~off data))
        | S_read (p, off, len) ->
            cmp i st
              (Model_fs.read model p ~off ~len)
              (of_read (F.read fs (path_string p) ~off ~len))
        | S_truncate (p, size) ->
            cmp i st
              (Model_fs.truncate model p ~size)
              (of_result (F.truncate fs (path_string p) ~size))
        | S_rename (a, b) ->
            cmp i st (Model_fs.rename model a b)
              (of_result (F.rename fs (path_string a) (path_string b)))
        | S_sync -> F.sync fs
      in
      let final_check tag =
        List.iter
          (fun (p, data) ->
            match
              F.read fs (path_string p) ~off:0 ~len:(Bytes.length data + 1)
            with
            | Ok b when Bytes.equal b data -> ()
            | Ok b ->
                stop "%s: %s content mismatch: model %d bytes, %s read %d" tag
                  (path_string p) (Bytes.length data) F.name (Bytes.length b)
            | Error _ -> stop "%s: %s unreadable on %s" tag (path_string p) F.name)
          (List.sort compare (Model_fs.all_files model));
        List.iter
          (fun p ->
            if p <> [] && not (F.exists fs (path_string p)) then
              stop "%s: directory %s missing on %s" tag (path_string p) F.name)
          (Model_fs.all_dirs model)
      in
      let run_all () =
        List.iteri do_step steps;
        final_check "final tree";
        F.flush_caches fs;
        final_check "after flush_caches";
        (match run_invariants spec inst with
        | Some m -> raise (Stop m)
        | None -> ());
        Driver.sanitize inst
      in
      let transient = List.filter is_transient spec.sc_faults in
      let faults = ref 0 in
      let msg =
        try
          (if transient = [] then run_all ()
           else
             let (), inj =
               with_faults ?member:spec.sc_fault_member ~seed:spec.sc_seed
                 (Driver.io inst) transient run_all
             in
             faults := inj.inj_faults);
          None
        with
        | Stop m -> Some m
        | Driver.Benchmark_failure m -> Some m
        | Io.Read_failed { sector; attempts } ->
            Some
              (Printf.sprintf "read of sector %d failed after %d attempts"
                 sector attempts)
        | Faulty.Crash -> Some "unexpected crash fault"
      in
      (msg, stats_of_instance ~ops_run:(List.length steps) ~faults:!faults inst))

let run_stream spec =
  let steps = steps_of spec in
  let msg, stats = exec_stream spec steps in
  let failure =
    match msg with
    | None -> None
    | Some _ ->
        let oracle st = fst (exec_stream spec st) in
        let shrunk = shrink ~fails:oracle steps in
        let message =
          match oracle shrunk with
          | Some m -> m
          | None -> "shrunk counterexample no longer reproduces"
        in
        Some
          (make_failure spec ~message
             ~steps:(List.map pp_step shrunk)
             ~original:(List.length steps))
  in
  (stats, failure)

(* ---------- crash-op compilation (sweep / read-back modes) ---------- *)

let pp_crash_op = function
  | Crashpoint.Mkdir p -> "mkdir " ^ p
  | Crashpoint.Create p -> "create " ^ p
  | Crashpoint.Write { path; seed; len } ->
      Printf.sprintf "write %s seed=%d len=%d" path seed len
  | Crashpoint.Delete p -> "delete " ^ p
  | Crashpoint.Sync -> "sync"

(* Compile the mix to a Crashpoint op list respecting its contract:
   every path written at most once, never reused after delete, syncs
   anchoring the durable model.  File-shaped ops (create/write/etc.)
   collapse into a create+write pair on a fresh path. *)
let crash_ops spec =
  validate spec;
  let rng = Rng.create spec.sc_seed in
  let wf =
    max 1
      (kind_weight spec.sc_mix
         [ KCreate; KMkdir; KRead; KOverwrite; KAppend; KTruncate; KRename ])
  in
  let wd = kind_weight spec.sc_mix [ KDelete ] in
  let wsy = max 1 (kind_weight spec.sc_mix [ KSync ]) in
  let total = wf + wd + wsy in
  let next = ref 0 in
  let live = ref [] in
  let acc = ref [ Crashpoint.Mkdir "/d1"; Crashpoint.Mkdir "/d0" ] in
  for i = 0 to spec.sc_count - 1 do
    let r = Rng.int rng total in
    if r < wf then begin
      let p = Printf.sprintf "/d%d/f%d" (!next mod 2) !next in
      incr next;
      acc :=
        Crashpoint.Write
          { path = p; seed = (spec.sc_seed * 131) + i; len = spec.sc_payload + (67 * i) }
        :: Crashpoint.Create p :: !acc;
      live := p :: !live
    end
    else if r < wf + wd then
      match !live with
      | [] -> acc := Crashpoint.Sync :: !acc
      | p :: rest ->
          live := rest;
          acc := Crashpoint.Delete p :: !acc
    else acc := Crashpoint.Sync :: !acc
  done;
  acc := Crashpoint.Sync :: !acc;
  List.rev !acc

(* Fault-free replay of a crash-op list so user invariant hooks get a
   surviving instance to inspect even in sweep modes. *)
let clean_replay spec ops =
  if spec.sc_invariants = [] then None
  else
    let inst = small_instance spec in
    try
      List.iter
        (function
          | Crashpoint.Mkdir p -> Driver.mkdir inst p
          | Crashpoint.Create p -> Driver.create inst p
          | Crashpoint.Write { path; seed; len } ->
              Driver.write inst path ~off:0 (Driver.content ~seed len)
          | Crashpoint.Delete p -> Driver.delete inst p
          | Crashpoint.Sync -> Driver.sync inst)
        ops;
      match run_invariants spec inst with
      | Some m -> Some m
      | None ->
          Driver.sanitize inst;
          None
    with Driver.Benchmark_failure m -> Some m

let run_sweep spec =
  let torn = List.mem Torn spec.sc_faults in
  let ops = crash_ops spec in
  let oracle ops' =
    let o =
      Crashpoint.sweep ?volume:spec.sc_volume ~torn
        ~max_boundaries:spec.sc_boundaries ~seed:spec.sc_seed spec.sc_system
        ops'
    in
    match o.Crashpoint.violations with
    | v :: _ -> Some v
    | [] -> clean_replay spec ops'
  in
  let outcome =
    Crashpoint.sweep ?volume:spec.sc_volume ~torn
      ~max_boundaries:spec.sc_boundaries ~seed:spec.sc_seed spec.sc_system ops
  in
  let msg =
    match outcome.Crashpoint.violations with
    | v :: _ -> Some v
    | [] -> clean_replay spec ops
  in
  let failure =
    match msg with
    | None -> None
    | Some _ ->
        let shrunk = shrink ~fails:oracle ops in
        let message =
          match oracle shrunk with
          | Some m -> m
          | None -> "shrunk counterexample no longer reproduces"
        in
        Some
          (make_failure spec ~message
             ~steps:(List.map pp_crash_op shrunk)
             ~original:(List.length ops))
  in
  let stats =
    {
      zero_stats with
      ops_run = List.length ops;
      faults_injected = outcome.Crashpoint.faults;
    }
  in
  (stats, Some outcome, failure)

let run_read_fault spec =
  let rate, burst =
    match List.find_opt is_transient spec.sc_faults with
    | Some (Transient { rate; burst }) -> (rate, burst)
    | _ -> Driver.fail "scenario: read_back needs a Transient fault"
  in
  let ops = crash_ops spec in
  let oracle ops' =
    let o =
      Crashpoint.read_fault_run ?volume:spec.sc_volume ~rate ~burst
        ~seed:spec.sc_seed spec.sc_system ops'
    in
    match o.Crashpoint.rf_violations with
    | v :: _ -> Some v
    | [] -> clean_replay spec ops'
  in
  let o =
    Crashpoint.read_fault_run ?volume:spec.sc_volume ~rate ~burst
      ~seed:spec.sc_seed spec.sc_system ops
  in
  let msg =
    match o.Crashpoint.rf_violations with
    | v :: _ -> Some v
    | [] -> clean_replay spec ops
  in
  let failure =
    match msg with
    | None -> None
    | Some _ ->
        let shrunk = shrink ~fails:oracle ops in
        let message =
          match oracle shrunk with
          | Some m -> m
          | None -> "shrunk counterexample no longer reproduces"
        in
        Some
          (make_failure spec ~message
             ~steps:(List.map pp_crash_op shrunk)
             ~original:(List.length ops))
  in
  let stats =
    {
      zero_stats with
      ops_run = List.length ops;
      faults_injected = o.Crashpoint.read_errors;
      retries = o.Crashpoint.retries;
      backoff_us = o.Crashpoint.backoff_us;
      read_errors = o.Crashpoint.read_errors;
    }
  in
  (stats, failure)

let run_bad_sector spec =
  let o = Crashpoint.bad_sector_run ~seed:spec.sc_seed () in
  let msg =
    match o.Crashpoint.bs_violations with
    | v :: _ -> Some v
    | [] -> clean_replay spec (Crashpoint.smallfile ())
  in
  let failure =
    match msg with
    | None -> None
    | Some message -> Some (make_failure spec ~message ~steps:[] ~original:0)
  in
  let stats =
    {
      zero_stats with
      faults_injected = o.Crashpoint.bad_sector_reads;
      bad_sector_reads = o.Crashpoint.bad_sector_reads;
    }
  in
  (stats, failure)

(* ---------- engine mode ---------- *)

let engine_config spec n =
  let totalf = float_of_int (total_weight spec.sc_mix) in
  let frac kinds = float_of_int (kind_weight spec.sc_mix kinds) /. totalf in
  {
    Engine.default with
    Engine.clients = n;
    ops_per_client = max 1 (spec.sc_count / n);
    think =
      (match spec.sc_think with
      | Some t -> t
      | None -> Engine.default.Engine.think);
    seed = spec.sc_seed;
    read_fraction = frac [ KRead ];
    overwrite_fraction = frac [ KOverwrite; KAppend; KTruncate ];
    delete_fraction = frac [ KDelete ];
  }

let run_engine spec n =
  let inst = engine_instance spec in
  let config = engine_config spec n in
  let transient = List.filter is_transient spec.sc_faults in
  let faults = ref 0 in
  let result =
    if transient = [] then Engine.run ~config inst
    else begin
      let r, inj =
        with_faults ?member:spec.sc_fault_member ~seed:spec.sc_seed
          (Driver.io inst) transient (fun () -> Engine.run ~config inst)
      in
      faults := inj.inj_faults;
      r
    end
  in
  let failure =
    match run_invariants spec inst with
    | None -> None
    | Some message -> Some (make_failure spec ~message ~steps:[] ~original:0)
  in
  let stats =
    stats_of_instance ~ops_run:result.Engine.total_ops ~faults:!faults inst
  in
  (stats, result, failure)

(* ---------- run ---------- *)

let mode_of spec =
  if spec.sc_sweep then `Sweep
  else if List.mem Checkpoint_bad_sector spec.sc_faults then `Bad_sector
  else if spec.sc_read_back then `Read_fault
  else match spec.sc_clients with Some n -> `Engine n | None -> `Stream

let mode_name = function
  | `Sweep -> "sweep"
  | `Bad_sector -> "bad-sector"
  | `Read_fault -> "read-fault"
  | `Engine _ -> "engine"
  | `Stream -> "stream"

let run spec =
  validate spec;
  let mode = mode_of spec in
  let stats, sweep, engine, failure =
    match mode with
    | `Stream ->
        let stats, failure = run_stream spec in
        (stats, None, None, failure)
    | `Engine n ->
        let stats, result, failure = run_engine spec n in
        (stats, None, Some result, failure)
    | `Sweep ->
        let stats, outcome, failure = run_sweep spec in
        (stats, outcome, None, failure)
    | `Read_fault ->
        let stats, failure = run_read_fault spec in
        (stats, None, None, failure)
    | `Bad_sector ->
        let stats, failure = run_bad_sector spec in
        (stats, None, None, failure)
  in
  {
    label = Crashpoint.system_name spec.sc_system ^ "/" ^ mode_name mode;
    mode = mode_name mode;
    seed_used = spec.sc_seed;
    stats;
    sweep;
    engine;
    failure;
  }

(* ---------- reporting ---------- *)

let render r =
  let b = Buffer.create 256 in
  Printf.bprintf b "scenario %s seed=%d\n" r.label r.seed_used;
  Printf.bprintf b
    "  ops=%d faults=%d retries=%d backoff_us=%d read_errors=%d \
     bad_sector_reads=%d\n"
    r.stats.ops_run r.stats.faults_injected r.stats.retries r.stats.backoff_us
    r.stats.read_errors r.stats.bad_sector_reads;
  (match r.sweep with
  | Some o ->
      Printf.bprintf b "  sweep: writes=%d boundaries=%d faults=%d\n"
        o.Crashpoint.total_writes o.Crashpoint.boundaries_tested
        o.Crashpoint.faults
  | None -> ());
  (match r.engine with
  | Some e ->
      Printf.bprintf b "  engine: clients=%d ops=%d p50_us=%d p99_us=%d\n"
        e.Engine.clients e.Engine.total_ops e.Engine.p50_us e.Engine.p99_us
  | None -> ());
  (match r.failure with
  | None -> Buffer.add_string b "  result: OK\n"
  | Some f ->
      Printf.bprintf b "  result: FAILED: %s\n" f.message;
      Printf.bprintf b "  minimal counterexample (%d of %d ops):\n"
        f.shrunk_steps f.original_steps;
      List.iter (fun s -> Printf.bprintf b "    %s\n" s) f.steps;
      Printf.bprintf b "  replay: %s\n" f.replay);
  Buffer.contents b

let to_json r =
  let stats =
    Json.Obj
      [
        ("ops_run", Json.Int r.stats.ops_run);
        ("faults_injected", Json.Int r.stats.faults_injected);
        ("retries", Json.Int r.stats.retries);
        ("backoff_us", Json.Int r.stats.backoff_us);
        ("read_errors", Json.Int r.stats.read_errors);
        ("bad_sector_reads", Json.Int r.stats.bad_sector_reads);
      ]
  in
  let sweep =
    match r.sweep with
    | None -> Json.Null
    | Some o ->
        Json.Obj
          [
            ("total_writes", Json.Int o.Crashpoint.total_writes);
            ("boundaries_tested", Json.Int o.Crashpoint.boundaries_tested);
            ("faults", Json.Int o.Crashpoint.faults);
            ("violations", Json.Int (List.length o.Crashpoint.violations));
          ]
  in
  let engine =
    match r.engine with None -> Json.Null | Some e -> Engine.to_json e
  in
  let failure =
    match r.failure with
    | None -> Json.Null
    | Some f ->
        Json.Obj
          [
            ("message", Json.String f.message);
            ("original_steps", Json.Int f.original_steps);
            ("shrunk_steps", Json.Int f.shrunk_steps);
            ("steps", Json.List (List.map (fun s -> Json.String s) f.steps));
            ("replay", Json.String f.replay);
          ]
  in
  Json.Obj
    [
      ("schema", Json.String "lfs-scenario/1");
      ("label", Json.String r.label);
      ("mode", Json.String r.mode);
      ("seed", Json.Int r.seed_used);
      ("stats", stats);
      ("sweep", sweep);
      ("engine", engine);
      ("failure", failure);
    ]
