(* A pure reference file system: the specification both LFS and FFS are
   tested against.  Paths are component lists (["a"; "b"] is /a/b; [] is
   the root).  Regular files are ids into a content table, so hard links
   alias naturally.  No I/O, no clock — every operation is a total
   function over the in-memory tree, which is what lets scenario runs
   compare a real file system against it step by step. *)

type t

type outcome = Done | Data of bytes | Names of string list | Failed

val create : unit -> t
val exists : t -> string list -> bool
val create_file : t -> string list -> outcome
val mkdir : t -> string list -> outcome
val delete : t -> string list -> outcome
val write : t -> string list -> off:int -> bytes -> outcome
val read : t -> string list -> off:int -> len:int -> outcome
val truncate : t -> string list -> size:int -> outcome
val rename : t -> string list -> string list -> outcome
val link : t -> string list -> string list -> outcome
val readdir : t -> string list -> outcome

(* Oracle views for whole-tree checks. *)
val file_id : t -> string list -> int option
val all_files : t -> (string list * bytes) list
val all_dirs : t -> string list list
val nlink_of_path : t -> string list -> int
