module Cache = Lfs_cache.Block_cache
module Errors = Lfs_vfs.Errors
module Io = Lfs_disk.Io
module Readahead = Lfs_cache.Readahead

let check_range ~off ~len =
  if off < 0 || len < 0 then
    Errors.raise_ (Errors.Einval "negative offset or length")

(* How many blocks starting at [blkno]/[addr] can be fetched in one disk
   request: logical blocks up to [max_blkno] whose addresses are
   physically consecutive, skipping nothing — a cached block must not be
   clobbered with stale disk data, and active-segment blocks are not on
   disk yet. *)
let probe_run (st : State.t) e ~inum ~blkno ~addr ~max_blkno =
  let n = ref 1 in
  let continue = ref true in
  while !continue && blkno + !n <= max_blkno do
    let next = blkno + !n in
    let next_addr = Inode_store.bmap_read st e next in
    if
      next_addr = addr + !n
      && (not (Cache.mem st.cache (Block_io.key_data ~inum ~blkno:next)))
      && not (Block_io.in_active_segment st next_addr)
    then incr n
    else continue := false
  done;
  !n

(* Issue the planned read-ahead window [start, start + count): clamp to
   the file, skip holes, cached blocks and active-segment blocks, and
   fetch what remains as contiguous multi-block runs, inserted clean. *)
let prefetch (st : State.t) e ~inum ~start ~count =
  let size = e.State.ino.Inode.size in
  let bs = st.layout.Layout.block_size in
  let max_blkno = if size = 0 then -1 else (size - 1) / bs in
  let last = min (start + count - 1) max_blkno in
  let issue ~first_blkno ~addr ~n =
    let go () =
      ignore (Block_io.read_run st ~inum ~first_blkno ~addr ~n);
      for i = 0 to n - 1 do
        Readahead.mark_issued st.readahead ~owner:inum ~blkno:(first_blkno + i)
      done;
      if Lfs_obs.Bus.enabled st.bus then
        Lfs_obs.Bus.emit st.bus
          (Lfs_obs.Event.Readahead
             { owner = inum; start = first_blkno; blocks = n })
    in
    if Lfs_obs.Bus.enabled st.bus then
      Lfs_obs.Bus.with_span st.bus "lfs_prefetch" go
    else go ()
  in
  let run_first = ref (-1) in
  let run_addr = ref Layout.null_addr in
  let run_n = ref 0 in
  let flush_run () =
    if !run_n > 0 then issue ~first_blkno:!run_first ~addr:!run_addr ~n:!run_n;
    run_n := 0
  in
  for blkno = start to last do
    let key = Block_io.key_data ~inum ~blkno in
    let addr =
      if Cache.mem st.cache key then Layout.null_addr
      else Inode_store.bmap_read st e blkno
    in
    if
      addr <> Layout.null_addr && not (Block_io.in_active_segment st addr)
    then begin
      if !run_n > 0 && addr = !run_addr + !run_n then incr run_n
      else begin
        flush_run ();
        run_first := blkno;
        run_addr := addr;
        run_n := 1
      end
    end
    else flush_run ()
  done;
  flush_run ()

let read (st : State.t) ~inum ~off ~len =
  check_range ~off ~len;
  let e = Inode_store.find st inum in
  let size = e.ino.Inode.size in
  let len = max 0 (min len (size - off)) in
  let bs = st.layout.Layout.block_size in
  let result = Bytes.make len '\000' in
  let clustering = st.config.Config.read_clustering in
  let max_blkno = if len = 0 then -1 else (off + len - 1) / bs in
  (* Blocks fetched by the most recent clustered run are sliced from its
     buffer rather than looked up again. *)
  let run_first = ref 0 in
  let run_n = ref 0 in
  let run_bytes = ref Bytes.empty in
  let pos = ref 0 in
  while !pos < len do
    let abs = off + !pos in
    let blkno = abs / bs in
    let in_block = abs mod bs in
    let chunk = min (len - !pos) (bs - in_block) in
    if !run_n > 0 && blkno >= !run_first && blkno < !run_first + !run_n then
      Bytes.blit !run_bytes
        (((blkno - !run_first) * bs) + in_block)
        result !pos chunk
    else begin
      match Cache.find st.cache (Block_io.key_data ~inum ~blkno) with
      | Some block ->
          Readahead.served st.readahead ~owner:inum ~blkno ~hit:true;
          Bytes.blit block in_block result !pos chunk
      | None -> (
          Readahead.served st.readahead ~owner:inum ~blkno ~hit:false;
          let addr = Inode_store.bmap_read st e blkno in
          if addr <> Layout.null_addr then begin
            let fill () =
              if clustering && not (Block_io.in_active_segment st addr)
              then begin
                let n = probe_run st e ~inum ~blkno ~addr ~max_blkno in
                run_first := blkno;
                run_n := n;
                run_bytes :=
                  Block_io.read_run st ~inum ~first_blkno:blkno ~addr ~n;
                Bytes.blit !run_bytes in_block result !pos chunk
              end
              else begin
                let block = Block_io.fetch_file_block st ~inum ~blkno ~addr in
                Bytes.blit block in_block result !pos chunk
              end
            in
            if Lfs_obs.Bus.enabled st.bus then
              Lfs_obs.Bus.with_span st.bus "lfs_read_fill" fill
            else fill ()
          end
          (* A hole on disk reads as zeros (a dirty overlay for the hole
             would have been found in the cache above). *))
    end;
    pos := !pos + chunk
  done;
  if len > 0 then begin
    let first = off / bs in
    match Readahead.observe st.readahead ~owner:inum ~first ~last:max_blkno with
    | None -> ()
    | Some (start, count) -> prefetch st e ~inum ~start ~count
  end;
  Io.charge_copy st.io ~bytes:len;
  Imap.set_atime_us st.imap inum (Io.now_us st.io);
  result

let write (st : State.t) ~inum ~off data =
  check_range ~off ~len:(Bytes.length data);
  let e = Inode_store.find st inum in
  let bs = st.layout.Layout.block_size in
  let len = Bytes.length data in
  if off + len > Inode.max_size st.layout then Errors.raise_ Errors.Efbig;
  let pos = ref 0 in
  while !pos < len do
    let abs = off + !pos in
    let blkno = abs / bs in
    let in_block = abs mod bs in
    let chunk = min (len - !pos) (bs - in_block) in
    let key = Block_io.key_data ~inum ~blkno in
    if chunk = bs then begin
      (* Whole-block overwrite: no read needed. *)
      let block = Bytes.sub data !pos bs in
      Cache.insert st.cache key ~dirty:true block
    end
    else begin
      match Cache.find st.cache key with
      | Some block ->
          Bytes.blit data !pos block in_block chunk;
          Cache.mark_dirty st.cache key
      | None ->
          (* Read-modify-write; re-insert dirty rather than mutating the
             cache's buffer, since a full cache may evict a clean block
             the moment it is inserted. *)
          let addr = Inode_store.bmap_read st e blkno in
          let block =
            if addr <> Layout.null_addr then
              Bytes.copy (Block_io.read_file_block st ~inum ~blkno ~addr)
            else Bytes.make bs '\000'
          in
          Bytes.blit data !pos block in_block chunk;
          Cache.insert st.cache key ~dirty:true block
    end;
    pos := !pos + chunk
  done;
  if off + len > e.ino.Inode.size then e.ino.Inode.size <- off + len;
  e.ino.Inode.mtime_us <- Io.now_us st.io;
  Inode_store.mark_dirty e;
  Io.charge_copy st.io ~bytes:len

let release (st : State.t) addr ~bytes =
  if addr <> Layout.null_addr then
    Seg_usage.sub_live st.usage (Layout.segment_of_block st.layout addr) ~bytes

let truncate (st : State.t) ~inum ~size =
  if size < 0 then Errors.raise_ (Errors.Einval "negative size");
  if size > Inode.max_size st.layout then Errors.raise_ Errors.Efbig;
  let e = Inode_store.find st inum in
  let bs = st.layout.Layout.block_size in
  let old_size = e.ino.Inode.size in
  if size < old_size then begin
    let keep_blocks = (size + bs - 1) / bs in
    let old_blocks = (old_size + bs - 1) / bs in
    for blkno = keep_blocks to old_blocks - 1 do
      let old = Inode_store.bmap_write st e blkno Layout.null_addr in
      release st old ~bytes:bs;
      Cache.remove st.cache (Block_io.key_data ~inum ~blkno)
    done;
    (* Zero the tail of a now-partial final block so reads past [size]
       after a later extension see zeros. *)
    if size mod bs <> 0 && keep_blocks > 0 then begin
      let blkno = keep_blocks - 1 in
      let key = Block_io.key_data ~inum ~blkno in
      match Cache.find st.cache key with
      | Some b ->
          Bytes.fill b (size mod bs) (bs - (size mod bs)) '\000';
          Cache.mark_dirty st.cache key
      | None ->
          let addr = Inode_store.bmap_read st e blkno in
          if addr <> Layout.null_addr then begin
            let b = Bytes.copy (Block_io.read_file_block st ~inum ~blkno ~addr) in
            Bytes.fill b (size mod bs) (bs - (size mod bs)) '\000';
            Cache.insert st.cache key ~dirty:true b
          end
    end;
    if size = 0 then begin
      (* §4.2.1: truncation to zero bumps the version, so the cleaner can
         dismiss this file's old blocks from the summary alone. *)
      Imap.bump_version st.imap inum;
      release st e.ino.Inode.indirect ~bytes:bs;
      Cache.remove st.cache (Block_io.key_raw e.ino.Inode.indirect);
      e.ino.Inode.indirect <- Layout.null_addr;
      e.ind_map <- None;
      e.ind_dirty <- false;
      (match e.dind_top with
      | Some top ->
          Array.iter
            (fun child ->
              release st child ~bytes:bs;
              Cache.remove st.cache (Block_io.key_raw child))
            top
      | None ->
          if e.ino.Inode.dindirect <> Layout.null_addr then begin
            (* Top map never loaded: fetch it to release the children. *)
            let block = Block_io.read_raw st e.ino.Inode.dindirect in
            for i = 0 to Layout.ptrs_per_block st.layout - 1 do
              let child =
                Int32.to_int (Bytes.get_int32_le block (i * 4)) land 0xFFFFFFFF
              in
              release st child ~bytes:bs;
              Cache.remove st.cache (Block_io.key_raw child)
            done
          end);
      release st e.ino.Inode.dindirect ~bytes:bs;
      Cache.remove st.cache (Block_io.key_raw e.ino.Inode.dindirect);
      e.ino.Inode.dindirect <- Layout.null_addr;
      e.dind_top <- None;
      e.dind_top_dirty <- false;
      e.dind_children <- [||];
      e.dind_child_dirty <- Lfs_util.Bitset.create 0
    end
  end;
  e.ino.Inode.size <- size;
  e.ino.Inode.mtime_us <- Io.now_us st.io;
  Inode_store.mark_dirty e
