(** The segment usage array (§4.3.4).

    Per segment: an estimate of live bytes, the time of the segment's last
    write (data age, used by the cost-benefit cleaning policy), and its
    state.  Small enough to stay memory-resident; persisted in blocks at
    checkpoints.  The paper notes the live counts are only a cleaning hint,
    so recovery tolerates slightly stale values. *)

type seg_state =
  | Clean  (** available for the log to claim *)
  | Dirty  (** contains (possibly zero) live data *)
  | Active  (** the segment currently being filled in memory *)

type t

val create : Layout.t -> t
(** All segments clean and empty. *)

val nsegments : t -> int
val state : t -> int -> seg_state
val set_state : t -> int -> seg_state -> unit
val nclean : t -> int

val ndirty : t -> int
(** How many segments are currently {!Dirty}. *)

val iter_dirty : (int -> unit) -> t -> unit
(** Iterate the segments currently in state {!Dirty}, in no particular
    order.  The set is maintained incrementally by {!set_state}, so a
    victim scan costs time proportional to the number of dirty segments
    rather than the size of the disk. *)

val live_bytes : t -> int -> int
val utilization : t -> int -> float
(** live bytes / payload capacity, in [0, 1] (can exceed 1 transiently if
    estimates drift; clamped). *)

val mtime_us : t -> int -> int

val add_live : t -> int -> bytes:int -> now_us:int -> unit
(** Data written into a segment. *)

val sub_live : t -> int -> bytes:int -> unit
(** Data in a segment died (overwritten or deleted); clamps at zero. *)

val set_live : t -> int -> bytes:int -> unit
(** Overwrite a segment's live-byte count with an exact value, leaving
    its age timestamp alone.  Used by recovery to reconcile the array
    against recomputed ground truth after roll-forward (the incremental
    deltas died with the crash). *)

val reset_segment : t -> int -> unit
(** Zero a segment's accounting (when it is cleaned or newly claimed). *)

val find_clean : ?start:int -> t -> int option
(** A clean segment at or after [start], wrapping. *)

val total_live_bytes : t -> int

(** {1 Persistence} *)

val n_blocks : t -> int

val mark_block_dirty : t -> int -> unit
(** Force usage block [idx] to be rewritten at the next checkpoint. *)

val dirty_blocks : t -> int list
val clear_dirty : t -> unit
val mark_all_dirty : t -> unit
val encode_block : t -> idx:int -> bytes
val load_block : t -> idx:int -> bytes -> unit
