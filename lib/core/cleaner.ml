module Cache = Lfs_cache.Block_cache
module Errors = Lfs_vfs.Errors
module Io = Lfs_disk.Io
module Metrics = Lfs_obs.Metrics
module Bus = Lfs_obs.Bus
module Event = Lfs_obs.Event

let select_victims ?live_budget (st : State.t) ~batch =
  let usage = st.usage in
  let now = Io.now_us st.io in
  let candidates = ref [] in
  (* The dirty set is maintained by [Seg_usage.set_state]: no full
     segment-table sweep per cleaning pass.  Iteration order is
     arbitrary; the (score, seg) sort below makes selection
     deterministic. *)
  Seg_usage.iter_dirty
    (fun seg ->
      if Seg_usage.utilization usage seg < st.config.Config.max_live_fraction
      then candidates := seg :: !candidates)
    usage;
  let score seg =
    match st.policy with
    | Config.Greedy -> float_of_int (Seg_usage.live_bytes usage seg)
    | Config.Oldest -> float_of_int (Seg_usage.mtime_us usage seg)
    | Config.Cost_benefit ->
        (* Higher benefit/cost is better; negate so that sorting ascending
           picks the best first. *)
        let u = Seg_usage.utilization usage seg in
        let age = float_of_int (max 1 (now - Seg_usage.mtime_us usage seg)) in
        -.((1.0 -. u) *. age /. (1.0 +. u))
  in
  let scored = List.map (fun s -> (score s, s)) !candidates in
  let sorted = List.map snd (List.sort compare scored) in
  (* Bound the pass by what the evacuation itself will consume: take
     victims while their combined live data stays within one segment's
     payload.  Dead segments cost nothing to clean, so a long run of them
     can be freed in a single pass. *)
  let payload_budget =
    match live_budget with
    | Some b -> b
    | None -> st.layout.Layout.payload_blocks * st.layout.Layout.block_size
  in
  let rec take taken live_sum n = function
    | [] -> List.rev taken
    | _ when n >= batch -> List.rev taken
    | seg :: rest ->
        let live = Seg_usage.live_bytes usage seg in
        if taken <> [] && live_sum + live > payload_budget then List.rev taken
        else take (seg :: taken) (live_sum + live) (n + 1) rest
  in
  take [] 0 0 sorted

let release (st : State.t) addr ~bytes =
  if addr <> Layout.null_addr then
    Seg_usage.sub_live st.usage (Layout.segment_of_block st.layout addr) ~bytes

(* A missing or unreadable inode (possible after recovery from a heavily
   damaged log) means nothing it owned is live. *)
let find_entry (st : State.t) inum =
  match Inode_store.find st inum with
  | e -> Some e
  | exception Errors.Error _ -> None

(* Is the block at [addr] still referenced?  Step 1 is the version check
   from the summary entry alone; step 2 walks the inode map and inode
   (§4.3.3). *)
let data_block_live (st : State.t) ~inum ~blkno ~version ~addr =
  Imap.is_allocated st.imap inum
  && version = Imap.version st.imap inum
  &&
  match find_entry st inum with
  | None -> false
  | Some e -> Inode_store.bmap_read st e blkno = addr

(* Relocate one live data block: append it to the log immediately and
   re-point the file at the copy.  A dirty cache copy is newer than the
   on-disk one, so it is what gets written (and becomes clean). *)
let move_data_block (st : State.t) ~inum ~blkno ~version slice =
  let bs = st.layout.Layout.block_size in
  let key = Block_io.key_data ~inum ~blkno in
  let content =
    match Cache.find st.cache key with Some b -> b | None -> slice
  in
  let addr' =
    Segwriter.append st ~privilege:`System
      ~entry:(Summary.Data { inum; blkno; version })
      ~live_bytes:bs content
  in
  let e = Inode_store.find st inum in
  let old = Inode_store.bmap_write st e blkno addr' in
  release st old ~bytes:bs;
  Cache.mark_clean st.cache key

(* [moved] accumulates the *bytes* of live data being relocated. *)
let process_entry (st : State.t) ~addr ~slice entry ~moved =
  let bs = st.layout.Layout.block_size in
  match (entry : Summary.entry) with
  | Summary.Data { inum; blkno; version } ->
      if data_block_live st ~inum ~blkno ~version ~addr then begin
        move_data_block st ~inum ~blkno ~version slice;
        moved := !moved + bs
      end
  | Summary.Indirect { inum; idx } ->
      if Imap.is_allocated st.imap inum then begin
        match find_entry st inum with
        | None -> ()
        | Some e ->
            (* Hand the copy we already read to the cache so loading the
               map does not re-read the disk. *)
            Cache.insert st.cache (Block_io.key_raw addr) ~dirty:false slice;
            if idx = 0 then begin
              if e.ino.Inode.indirect = addr then begin
                Inode_store.cleaner_touch_ind st e;
                moved := !moved + bs
              end
            end
            else begin
              let child = idx - 1 in
              if Inode_store.dind_child_addr st e child = addr then begin
                Inode_store.cleaner_touch_dind_child st e child;
                moved := !moved + bs
              end
            end
      end
  | Summary.Dindirect { inum } ->
      if Imap.is_allocated st.imap inum then begin
        match find_entry st inum with
        | None -> ()
        | Some e ->
            if e.ino.Inode.dindirect = addr then begin
              Cache.insert st.cache (Block_io.key_raw addr) ~dirty:false slice;
              Inode_store.cleaner_touch_dind_top st e;
              moved := !moved + bs
            end
      end
  | Summary.Inode_block ->
      let per_block = Layout.inodes_per_block st.layout in
      for slot = 0 to per_block - 1 do
        match Inode.decode_at slice ~off:(slot * Layout.inode_bytes) with
        | None -> ()
        | Some ino -> (
            let inum = ino.Inode.inum in
            if
              inum > 0
              && inum < Imap.max_files st.imap
              && Imap.is_allocated st.imap inum
            then
              match Imap.location st.imap inum with
              | Some (a, s) when a = addr && s = slot ->
                  (* Live inode: pull it into the table (preferring any
                     newer in-memory copy) and force a rewrite. *)
                  let e = Inode_store.materialize st ino in
                  Inode_store.mark_dirty e;
                  moved := !moved + Layout.inode_bytes
              | Some _ | None -> ())
      done
  | Summary.Imap_block { idx } ->
      if st.imap_block_addr.(idx) = addr then begin
        Imap.mark_block_dirty st.imap idx;
        moved := !moved + bs
      end
  | Summary.Usage_block { idx } ->
      if st.usage_block_addr.(idx) = addr then begin
        Seg_usage.mark_block_dirty st.usage idx;
        moved := !moved + bs
      end

let clean_segment (st : State.t) seg ~moved ~max_seq =
  let layout = st.layout in
  let bs = layout.Layout.block_size in
  let first = Layout.segment_first_block layout seg in
  let summary_region =
    Io.sync_read st.io
      ~sector:(Layout.sector_of_block layout first)
      ~count:(layout.Layout.summary_blocks * layout.Layout.block_sectors)
  in
  Metrics.add st.counters.State.c_cleaner_bytes_read
    (layout.Layout.summary_blocks * bs);
  match Summary.decode summary_region with
  | None ->
      (* No valid summary: nothing live can be in this segment (it was
         torn by a crash before any checkpoint referenced it). *)
      ()
  | Some (header, entries) ->
      max_seq := max !max_seq header.Summary.seq;
      let payload =
        Io.sync_read st.io
          ~sector:
            (Layout.sector_of_block layout
               (first + layout.Layout.summary_blocks))
          ~count:(header.Summary.nblocks * layout.Layout.block_sectors)
      in
      Metrics.add st.counters.State.c_cleaner_bytes_read
        (header.Summary.nblocks * bs);
      List.iteri
        (fun idx entry ->
          let addr = Layout.segment_payload_block layout ~seg ~idx in
          let slice = Bytes.sub payload (idx * bs) bs in
          process_entry st ~addr ~slice entry ~moved)
        entries

(* Evacuate [victims] and mark them clean; the shared machinery behind
   both policy-driven and exact cleaning. *)
let clean_victims (st : State.t) victims =
  if victims = [] then 0
  else begin
    st.cleaning <- true;
    Fun.protect
      ~finally:(fun () -> st.cleaning <- false)
      (fun () ->
        Bus.with_span st.bus "cleaner_pass" @@ fun () ->
        let read_before =
          Metrics.value st.counters.State.c_cleaner_bytes_read
        in
        let moved = ref 0 in
        let max_seq = ref 0 in
        List.iter (fun seg -> clean_segment st seg ~moved ~max_seq) victims;
        Metrics.add st.counters.State.c_cleaner_bytes_moved !moved;
        (* Persist the evacuations (pointer blocks, inodes, imap/usage
           blocks) and wait for the device before the victims become
           reusable.  Crash recovery reaches the moved copies by rolling
           the log forward; when roll-forward is disabled a full
           checkpoint takes that role (the 1990 paper's configuration).
           Freeing dead segments moved nothing, so nothing needs
           persisting. *)
        match
          if !moved > 0 then begin
            Write_path.flush_metadata st ~privilege:`System;
            Write_path.flush_meta_blocks st ~privilege:`System;
            Segwriter.flush_active st;
            Io.drain st.io;
            (* Reusing a victim that carried post-checkpoint log would
               punch a hole in the roll-forward sequence chain, so commit
               a checkpoint first.  (With roll-forward disabled every
               pass checkpoints, as in the 1990 implementation.) *)
            if (not st.config.Config.roll_forward) || !max_seq > st.last_cp_seq
            then Write_path.checkpoint st
          end
        with
        | () ->
            List.iter
              (fun seg ->
                Seg_usage.reset_segment st.usage seg;
                Seg_usage.set_state st.usage seg Seg_usage.Clean)
              victims;
            let n = List.length victims in
            Metrics.add st.counters.State.c_segments_cleaned n;
            Metrics.incr st.counters.State.c_cleaner_passes;
            if Bus.enabled st.bus then
              Bus.emit st.bus
                (Event.Cleaner_pass
                   {
                     victims = n;
                     freed = n;
                     bytes_read =
                       Metrics.value st.counters.State.c_cleaner_bytes_read
                       - read_before;
                     bytes_moved = !moved;
                   });
            n
        | exception Errors.Error Errors.Enospc ->
            (* Could not persist the evacuations: the victims must stay
               dirty (the moved copies remain merely redundant). *)
            0)
  end

(* Reusing a segment that carries the only copy of post-checkpoint log
   would punch a hole in the roll-forward chain.  Checkpointing before a
   cleaning round makes every existing segment reusable; the exact
   [max_seq] guard in [clean_victims] backstops the rare case where a
   round cleans its own output. *)
let checkpoint_if_log_uncovered (st : State.t) =
  if st.next_seq - 1 > st.last_cp_seq then Write_path.checkpoint st

let clean_once (st : State.t) ~batch =
  if batch <= 0 then invalid_arg "Cleaner.clean_once: batch must be positive";
  (* Budget the evacuation by the headroom actually available: moving
     more live data per pass amortizes the fixed metadata flush, but the
     moves must fit in the clean segments at hand. *)
  let seg_payload =
    st.layout.Layout.payload_blocks * st.layout.Layout.block_size
  in
  let live_budget = max 1 (Seg_usage.nclean st.usage - 2) * seg_payload in
  clean_victims st (select_victims ~live_budget st ~batch)

let clean_exact (st : State.t) ~victims =
  (try checkpoint_if_log_uncovered st
   with Errors.Error Errors.Enospc -> ());
  let victims =
    List.filter (fun seg -> Seg_usage.state st.usage seg = Seg_usage.Dirty)
      victims
  in
  (* Chunk by live budget so each pass's evacuation stays bounded. *)
  let payload_budget =
    st.layout.Layout.payload_blocks * st.layout.Layout.block_size
  in
  let rec chunks acc cur cur_live = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | seg :: rest ->
        let live = Seg_usage.live_bytes st.usage seg in
        if cur <> [] && cur_live + live > payload_budget then
          chunks (List.rev cur :: acc) [ seg ] live rest
        else chunks acc (seg :: cur) (cur_live + live) rest
  in
  List.fold_left
    (fun freed chunk -> freed + clean_victims st chunk)
    0
    (chunks [] [] 0 victims)

let default_batch = 16

let clean_to_target ?target (st : State.t) =
  if st.cleaning then 0
  else begin
    (try checkpoint_if_log_uncovered st
     with Errors.Error Errors.Enospc -> ());
    let target =
      match target with
      | Some t -> t
      | None -> st.config.Config.clean_target_segments
    in
    let target = min target (Seg_usage.nsegments st.usage) in
    let freed = ref 0 in
    let continue = ref true in
    while !continue && Seg_usage.nclean st.usage < target do
      let before = Seg_usage.nclean st.usage in
      let n = clean_once st ~batch:default_batch in
      freed := !freed + n;
      (* Cleaning writes a partial segment of its own, so "every segment
         clean" is unreachable; stop when a pass no longer nets clean
         segments. *)
      if n = 0 || Seg_usage.nclean st.usage <= before then continue := false
    done;
    !freed
  end

let write_cost (st : State.t) =
  let bs = st.layout.Layout.block_size in
  let v c = Metrics.value c in
  let logged = v st.counters.State.c_blocks_logged * bs in
  let bytes_read = v st.counters.State.c_cleaner_bytes_read in
  let bytes_moved = v st.counters.State.c_cleaner_bytes_moved in
  let overhead = bytes_read + bytes_moved in
  let new_data = logged - bytes_moved in
  if new_data <= 0 then 1.0
  else float_of_int (logged + overhead - bytes_moved) /. float_of_int new_data
