(** Shared mutable state of a mounted LFS instance.

    This module only declares the record types threaded through the
    operational modules ({!Block_io}, {!Inode_store}, {!Segwriter},
    {!Write_path}, {!File_io}, {!Namespace}, {!Cleaner}, {!Recovery});
    behaviour lives there.  The public face of the library is {!Fs}
    (whose [t] is this [t]). *)

val owner_raw : int
(** Cache owner for by-address blocks (inode blocks, indirect blocks);
    real files use their positive inum. *)

(** In-memory view of one file: the inode plus lazily loaded pointer
    maps mirroring the on-disk indirect blocks.  Dirty flags mark what
    the next flush must rewrite. *)
type itable_entry = {
  ino : Inode.t;
  mutable ino_dirty : bool;
  mutable ind_map : int array option;
  mutable ind_dirty : bool;
  mutable dind_top : int array option;
  mutable dind_top_dirty : bool;
  mutable dind_children : int array option array;
  mutable dind_child_dirty : Lfs_util.Bitset.t;
}

(** The segment being assembled in memory (§4.1); [seg = -1] when none. *)
type segbuf = {
  mutable seg : int;
  mutable buf : bytes;
  mutable nblocks : int;
  mutable entries_rev : Summary.entry list;
}

(** Compatibility view of the [lfs.*] registry counters: a fresh record
    built by {!stats_view}; mutating it does not affect the registry. *)
type lfs_stats = {
  mutable segments_written : int;
  mutable partial_segments : int;
  mutable blocks_logged : int;
  mutable segments_cleaned : int;
  mutable cleaner_bytes_read : int;
  mutable cleaner_bytes_moved : int;
  mutable cleaner_passes : int;
  mutable checkpoints : int;
  mutable rollforward_segments : int;
}

(** Registry counter handles behind {!lfs_stats} ([lfs.*] instruments in
    the I/O stack's registry).  Operational modules bump these via
    {!Lfs_obs.Metrics.incr}/[add]. *)
type lfs_counters = {
  c_segments_written : Lfs_obs.Metrics.counter;
  c_partial_segments : Lfs_obs.Metrics.counter;
  c_blocks_logged : Lfs_obs.Metrics.counter;
  c_segments_cleaned : Lfs_obs.Metrics.counter;
  c_cleaner_bytes_read : Lfs_obs.Metrics.counter;
  c_cleaner_bytes_moved : Lfs_obs.Metrics.counter;
  c_cleaner_passes : Lfs_obs.Metrics.counter;
  c_checkpoints : Lfs_obs.Metrics.counter;
  c_rollforward_segments : Lfs_obs.Metrics.counter;
}

(** [`User] writes may not consume the reserve segments; [`System]
    (cleaner, checkpoint) may. *)
type privilege = [ `System | `User ]

type t = {
  io : Lfs_disk.Io.t;
  config : Config.t;
  layout : Layout.t;
  cache : Lfs_cache.Block_cache.t;
  readahead : Lfs_cache.Readahead.t;
  imap : Imap.t;
  usage : Seg_usage.t;
  itable : (int, itable_entry) Hashtbl.t;
  seg : segbuf;
  mutable next_seq : int;
  mutable tail_segment : int;
  mutable imap_block_addr : int array;
  mutable usage_block_addr : int array;
  mutable last_checkpoint_us : int;
  mutable last_cp_seq : int;
  mutable cp_flip : bool;
  mutable cleaning : bool;
  mutable flushing : bool;
  mutable policy : Config.policy;
  mutable auto_clean : bool;
  metrics : Lfs_obs.Metrics.t;
  bus : Lfs_obs.Bus.t;
  counters : lfs_counters;
}

val root_inum : int

val create : Lfs_disk.Io.t -> Config.t -> Layout.t -> t
(** Adopts the io's registry and bus; resets the [lfs.*] instruments so a
    remount starts counting from zero (the registry itself is shared). *)

val stats_view : t -> lfs_stats
(** A fresh snapshot record of the [lfs.*] counters. *)

val fresh_itable_entry : Inode.t -> itable_entry
