(** Consistency checking (fsck-grade invariants), used by tests and
    `lfstool fsck`.

    The segment-usage array is maintained incrementally; these functions
    recompute it from ground truth — the inode map, every live inode's
    block pointers, and the metadata block addresses — so tests can catch
    any accounting drift at its source. *)

val recompute_usage : State.t -> int array
(** Live bytes per segment implied by the reachable state.  Counts, per
    segment: data and pointer blocks referenced by allocated inodes'
    block maps ({!Layout.block_size} each), inode slices
    ({!Layout.inode_bytes} per allocated inode), and the current
    inode-map and usage-array blocks. *)

val usage_drift : State.t -> (int * int * int) list
(** [(segment, recorded, recomputed)] for every segment where the
    incremental estimate differs from ground truth. *)

type issue =
  | Double_reference of { addr : int; owners : string list }
      (** one disk block claimed live by two different structures *)
  | Bad_dir_entry of { dir : int; name : string; inum : int }
      (** directory entry pointing at an unallocated inode *)
  | Bad_nlink of { inum : int; nlink : int; entries : int }
      (** an inode whose link count disagrees with its directory
          entries *)
  | Orphan_inode of { inum : int }
      (** allocated inode with no directory entry *)
  | Unreadable of { inum : int; reason : string }
  | Address_out_of_range of { owner : string; addr : int }

val pp_issue : Format.formatter -> issue -> unit

val fsck : State.t -> issue list
(** Full structural verification: walk the namespace from the root,
    cross-check it against the inode map, and walk every live block
    pointer checking for double references and wild addresses.  An empty
    list means the file system is structurally sound. *)

val recovery_divergence :
  expected:State.t -> recovered:State.t -> string list
(** Checkpoint/recovery cross-validation: walk both trees in lockstep
    and report every path where the recovered state's names, kinds,
    link counts, sizes or bytes differ from the expected state.  Used
    by recovery tests and bench ablations to prove that a post-crash
    mount reconstructed exactly the durable image (an empty list), not
    merely something that fscks clean. *)
