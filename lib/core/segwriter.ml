module Errors = Lfs_vfs.Errors
module Io = Lfs_disk.Io
module Metrics = Lfs_obs.Metrics
module Bus = Lfs_obs.Bus
module Event = Lfs_obs.Event

let active_blocks (st : State.t) = if st.seg.seg < 0 then 0 else st.seg.nblocks

let room (st : State.t) =
  if st.seg.seg < 0 then 0 else st.layout.Layout.payload_blocks - st.seg.nblocks

let flush_active (st : State.t) =
  let seg = st.seg in
  if seg.seg >= 0 && seg.nblocks > 0 then begin
    let layout = st.layout in
    let bs = layout.Layout.block_size in
    let payload_len = seg.nblocks * bs in
    let summary_bytes = layout.Layout.summary_blocks * bs in
    let header =
      {
        Summary.seq = st.next_seq;
        timestamp_us = Io.now_us st.io;
        nblocks = seg.nblocks;
        payload_crc =
          Summary.payload_crc seg.buf ~off:summary_bytes ~len:payload_len;
      }
    in
    let summary =
      Summary.encode ~size_bytes:summary_bytes header (List.rev seg.entries_rev)
    in
    Bytes.blit summary 0 seg.buf 0 summary_bytes;
    let first_block = Layout.segment_first_block layout seg.seg in
    Io.async_write st.io
      ~sector:(Layout.sector_of_block layout first_block)
      (Bytes.sub seg.buf 0 (summary_bytes + payload_len));
    Seg_usage.set_state st.usage seg.seg Seg_usage.Dirty;
    st.tail_segment <- seg.seg;
    st.next_seq <- st.next_seq + 1;
    let partial = seg.nblocks < layout.Layout.payload_blocks in
    Metrics.incr st.counters.State.c_segments_written;
    if partial then Metrics.incr st.counters.State.c_partial_segments;
    if Bus.enabled st.bus then
      Bus.emit st.bus
        (Event.Segment_write
           { seg = seg.seg; seq = header.Summary.seq; blocks = seg.nblocks;
             partial });
    seg.seg <- -1;
    seg.nblocks <- 0;
    seg.entries_rev <- []
  end
  else if seg.seg >= 0 then begin
    (* Empty active segment: just release it. *)
    Seg_usage.set_state st.usage seg.seg Seg_usage.Clean;
    seg.seg <- -1
  end

let claim (st : State.t) ~privilege =
  let usage = st.usage in
  let available = Seg_usage.nclean usage in
  let enough =
    match privilege with
    | `System -> available >= 1
    | `User -> available > st.config.Config.reserve_segments
  in
  if not enough then Errors.raise_ Errors.Enospc;
  match Seg_usage.find_clean ~start:(st.tail_segment + 1) usage with
  | None -> Errors.raise_ Errors.Enospc
  | Some seg_index ->
      Seg_usage.reset_segment usage seg_index;
      Seg_usage.set_state usage seg_index Seg_usage.Active;
      st.seg.seg <- seg_index;
      st.seg.nblocks <- 0;
      st.seg.entries_rev <- []

let append (st : State.t) ~privilege ~entry ~live_bytes data =
  let layout = st.layout in
  let bs = layout.Layout.block_size in
  if Bytes.length data <> bs then
    invalid_arg "Segwriter.append: data must be exactly one block";
  if st.seg.seg < 0 then claim st ~privilege
  else if st.seg.nblocks >= layout.Layout.payload_blocks then begin
    flush_active st;
    claim st ~privilege
  end;
  let seg = st.seg in
  let idx = seg.nblocks in
  Bytes.blit data 0 seg.buf ((layout.Layout.summary_blocks + idx) * bs) bs;
  seg.entries_rev <- entry :: seg.entries_rev;
  seg.nblocks <- idx + 1;
  let addr = Layout.segment_payload_block layout ~seg:seg.seg ~idx in
  Seg_usage.add_live st.usage seg.seg ~bytes:live_bytes
    ~now_us:(Io.now_us st.io);
  Metrics.incr st.counters.State.c_blocks_logged;
  addr
