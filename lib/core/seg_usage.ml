module Codec = Lfs_util.Codec
module Bitset = Lfs_util.Bitset

type seg_state = Clean | Dirty | Active

type t = {
  layout : Layout.t;
  live : int array;
  mtime : int array;
  states : seg_state array;
  dirty : Bitset.t;  (* per usage block *)
  dirty_set : (int, unit) Hashtbl.t;  (* segments currently in state Dirty *)
  entries_per_block : int;
  mutable nclean : int;
}

let create layout =
  let n = layout.Layout.nsegments in
  {
    layout;
    live = Array.make n 0;
    mtime = Array.make n 0;
    states = Array.make n Clean;
    dirty = Bitset.create layout.Layout.n_usage_blocks;
    dirty_set = Hashtbl.create 64;
    entries_per_block = Layout.usage_entries_per_block layout;
    nclean = n;
  }

let nsegments t = Array.length t.live

let check t seg =
  if seg < 0 || seg >= nsegments t then
    invalid_arg (Printf.sprintf "Seg_usage: segment %d out of range" seg)

let touch t seg = Bitset.set t.dirty (seg / t.entries_per_block)

let state t seg =
  check t seg;
  t.states.(seg)

let set_state t seg s =
  check t seg;
  let was = t.states.(seg) in
  if was <> s then begin
    if was = Clean then t.nclean <- t.nclean - 1;
    if s = Clean then t.nclean <- t.nclean + 1;
    if was = Dirty then Hashtbl.remove t.dirty_set seg;
    if s = Dirty then Hashtbl.replace t.dirty_set seg ();
    t.states.(seg) <- s;
    touch t seg
  end

let nclean t = t.nclean
let ndirty t = Hashtbl.length t.dirty_set
let iter_dirty f t = Hashtbl.iter (fun seg () -> f seg) t.dirty_set

let live_bytes t seg =
  check t seg;
  t.live.(seg)

let payload_bytes t =
  t.layout.Layout.payload_blocks * t.layout.Layout.block_size

let utilization t seg =
  check t seg;
  min 1.0 (float_of_int t.live.(seg) /. float_of_int (payload_bytes t))

let mtime_us t seg =
  check t seg;
  t.mtime.(seg)

let add_live t seg ~bytes ~now_us =
  check t seg;
  t.live.(seg) <- t.live.(seg) + bytes;
  t.mtime.(seg) <- max t.mtime.(seg) now_us;
  touch t seg

let sub_live t seg ~bytes =
  check t seg;
  t.live.(seg) <- max 0 (t.live.(seg) - bytes);
  touch t seg

let set_live t seg ~bytes =
  check t seg;
  if t.live.(seg) <> bytes then begin
    t.live.(seg) <- bytes;
    touch t seg
  end

let reset_segment t seg =
  check t seg;
  t.live.(seg) <- 0;
  t.mtime.(seg) <- 0;
  touch t seg

let find_clean ?(start = 0) t =
  let n = nsegments t in
  let rec scan i remaining =
    if remaining = 0 then None
    else if t.states.(i) = Clean then Some i
    else scan (if i + 1 = n then 0 else i + 1) (remaining - 1)
  in
  if n = 0 then None else scan (((start mod n) + n) mod n) n

let total_live_bytes t = Array.fold_left ( + ) 0 t.live

let n_blocks t = t.layout.Layout.n_usage_blocks

let mark_block_dirty t idx =
  if idx < 0 || idx >= n_blocks t then invalid_arg "Seg_usage.mark_block_dirty";
  Bitset.set t.dirty idx

let dirty_blocks t =
  let acc = ref [] in
  Bitset.iter_set (fun i -> acc := i :: !acc) t.dirty;
  List.rev !acc

let clear_dirty t = Bitset.clear_all t.dirty
let mark_all_dirty t = Bitset.fill_all t.dirty

let state_tag = function Clean -> 0 | Dirty -> 1 | Active -> 2

let state_of_tag = function
  | 0 -> Clean
  | 1 -> Dirty
  | 2 -> Active
  | n -> raise (Codec.Error (Printf.sprintf "seg_usage: bad state tag %d" n))

let encode_block t ~idx =
  if idx < 0 || idx >= n_blocks t then invalid_arg "Seg_usage.encode_block";
  let bs = t.layout.Layout.block_size in
  let e = Codec.encoder ~capacity:bs () in
  let base = idx * t.entries_per_block in
  for i = base to base + t.entries_per_block - 1 do
    if i < nsegments t then begin
      Codec.u32 e t.live.(i);
      Codec.int_as_i64 e t.mtime.(i);
      (* An in-memory Active segment is persisted as Dirty: after a crash
         the partially-filled segment is just a fragmented segment. *)
      Codec.u8 e (state_tag (if t.states.(i) = Active then Dirty else t.states.(i)));
      Codec.pad_to e ((i - base + 1) * Layout.usage_entry_bytes)
    end
  done;
  Codec.pad_to e bs;
  Codec.to_bytes e

let load_block t ~idx block =
  if idx < 0 || idx >= n_blocks t then invalid_arg "Seg_usage.load_block";
  let base = idx * t.entries_per_block in
  for i = base to min (base + t.entries_per_block) (nsegments t) - 1 do
    let d =
      Codec.decoder ~off:((i - base) * Layout.usage_entry_bytes)
        ~len:Layout.usage_entry_bytes block
    in
    t.live.(i) <- Codec.read_u32 d;
    t.mtime.(i) <- Codec.read_int_as_i64 d;
    let s = state_of_tag (Codec.read_u8 d) in
    set_state t i s
  done
