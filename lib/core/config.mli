(** LFS configuration.

    Structural parameters (block and segment size, maximum file count) are
    fixed at [format] time and recorded in the superblock; runtime
    parameters (cleaning thresholds and policy, write-back ages) may differ
    on every mount. *)

type policy =
  | Greedy  (** clean the segments with the least live data (the paper) *)
  | Cost_benefit  (** weigh free space by data age (Sprite-LFS extension) *)
  | Oldest  (** clean the coldest segments first (ablation baseline) *)

val pp_policy : Format.formatter -> policy -> unit
val policy_name : policy -> string

type t = {
  (* structural *)
  block_size : int;  (** bytes; must divide the segment size; default 4 KB *)
  segment_size : int;  (** bytes; default 1 MB as in the paper's tests *)
  max_files : int;  (** inode-map capacity *)
  segment_align_sectors : int;
      (** align the first segment so every segment starts on a multiple
          of this many device sectors (0 = pack segments right after the
          checkpoint regions, the historical layout).  Structural — it
          moves the whole segment area and is recorded in the
          superblock.  Set to a {!Lfs_disk.Volume} [Log_stripe] stripe
          size so each whole-segment write splits into exactly one
          contiguous run per member. *)
  (* runtime *)
  cache_blocks : int;  (** file-cache capacity in blocks *)
  read_clustering : bool;
      (** coalesce physically contiguous blocks of a read request into
          one multi-block disk transfer *)
  readahead_blocks : int;
      (** sequential read-ahead window ceiling in blocks; 0 disables
          prefetching *)
  writeback_age_us : int;  (** dirty-block age write-back trigger (30 s) *)
  checkpoint_interval_us : int;  (** periodic checkpoint spacing (30 s) *)
  clean_threshold_segments : int;
      (** start cleaning when clean segments drop below this *)
  clean_target_segments : int;  (** clean until this many are clean *)
  reserve_segments : int;
      (** segments the allocator refuses to hand to user data so the
          cleaner can always make progress *)
  max_live_fraction : float;
      (** stop cleaning a candidate pool once every remaining segment is
          at least this utilized (§4.3.4) *)
  policy : policy;
  auto_clean : bool;  (** clean automatically when below threshold *)
  roll_forward : bool;  (** replay post-checkpoint log segments at mount *)
}

val default : t
(** The paper's setup: 4 KB blocks, 1 MB segments, 30 s thresholds,
    greedy cleaning, roll-forward enabled. *)

val small : t
(** A scaled-down configuration for unit tests: 1 KB blocks, 16 KB
    segments, small cache. *)

val validate : t -> (unit, string) result
(** Check internal consistency (divisibility, positive sizes, thresholds
    ordered). *)
