module Io = Lfs_disk.Io

let read_block (st : State.t) addr =
  Io.sync_read st.io
    ~sector:(Layout.sector_of_block st.layout addr)
    ~count:st.layout.Layout.block_sectors

let read_summary_region (st : State.t) first =
  Io.sync_read st.io
    ~sector:(Layout.sector_of_block st.layout first)
    ~count:(st.layout.Layout.summary_blocks * st.layout.Layout.block_sectors)

let read_region (st : State.t) which =
  let layout = st.layout in
  let addr =
    if which = `A then fst layout.Layout.cp_region
    else snd layout.Layout.cp_region
  in
  (* An unreadable region is no worse than a torn one: fall back to the
     other checkpoint copy. *)
  match
    Io.sync_read st.io
      ~sector:(Layout.sector_of_block layout addr)
      ~count:(layout.Layout.cp_blocks * layout.Layout.block_sectors)
  with
  | region -> Checkpoint.decode layout region
  | exception Io.Read_failed _ -> None

let load_checkpoint (st : State.t) (cp : Checkpoint.t) =
  (* A metadata block the checkpoint points at may have been clobbered:
     the cleaner relocates imap/usage blocks and reuses their segments
     without rewriting the checkpoint region (roll-forward replays the
     moved copies, which are always durable before the old segment is
     reused).  Tolerate garbage here; the replay below repairs it. *)
  let tolerant f =
    try f () with Lfs_util.Codec.Error _ | Io.Read_failed _ -> ()
  in
  Array.iteri
    (fun idx addr ->
      if addr <> Layout.null_addr then
        tolerant (fun () -> Imap.load_block st.imap ~idx (read_block st addr)))
    cp.Checkpoint.imap_addrs;
  Array.iteri
    (fun idx addr ->
      if addr <> Layout.null_addr then
        tolerant (fun () ->
            Seg_usage.load_block st.usage ~idx (read_block st addr)))
    cp.Checkpoint.usage_addrs;
  st.imap_block_addr <- Array.copy cp.Checkpoint.imap_addrs;
  st.usage_block_addr <- Array.copy cp.Checkpoint.usage_addrs;
  st.next_seq <- cp.Checkpoint.seq + 1;
  st.tail_segment <- cp.Checkpoint.tail_segment;
  st.last_cp_seq <- cp.Checkpoint.seq;
  if cp.Checkpoint.next_inum_hint > 0
     && cp.Checkpoint.next_inum_hint < st.layout.Layout.max_files
  then Imap.set_next_hint st.imap cp.Checkpoint.next_inum_hint;
  Imap.clear_dirty st.imap;
  Seg_usage.clear_dirty st.usage

(* Replay one post-checkpoint segment.  Inode blocks re-point the inode
   map at the newest inode copies (which carry all block pointers); other
   entries only refresh accounting hints. *)
let replay_segment (st : State.t) seg (header : Summary.header) entries payload =
  let layout = st.layout in
  let bs = layout.Layout.block_size in
  let now = header.Summary.timestamp_us in
  Seg_usage.reset_segment st.usage seg;
  Seg_usage.set_state st.usage seg Seg_usage.Dirty;
  List.iteri
    (fun idx entry ->
      let addr = Layout.segment_payload_block layout ~seg ~idx in
      let slice () = Bytes.sub payload (idx * bs) bs in
      match (entry : Summary.entry) with
      | Summary.Inode_block ->
          let block = slice () in
          let live = ref 0 in
          for slot = 0 to Layout.inodes_per_block layout - 1 do
            match Inode.decode_at block ~off:(slot * Layout.inode_bytes) with
            | None -> ()
            | Some ino ->
                let inum = ino.Inode.inum in
                if inum > 0 && inum < layout.Layout.max_files then begin
                  if not (Imap.is_allocated st.imap inum) then
                    Imap.alloc_specific st.imap inum ~now_us:now;
                  Imap.set_location st.imap inum ~addr ~slot;
                  incr live
                end
          done;
          Seg_usage.add_live st.usage seg ~bytes:(!live * Layout.inode_bytes)
            ~now_us:now
      | Summary.Data { inum; blkno = _; version } ->
          (* Accounting hint only; the block's pointer arrives with the
             file's replayed inode. *)
          if
            inum > 0
            && inum < layout.Layout.max_files
            && Imap.is_allocated st.imap inum
            && version = Imap.version st.imap inum
          then Seg_usage.add_live st.usage seg ~bytes:bs ~now_us:now
      | Summary.Indirect _ | Summary.Dindirect _ ->
          Seg_usage.add_live st.usage seg ~bytes:bs ~now_us:now
      | Summary.Imap_block { idx } ->
          Imap.load_block st.imap ~idx (slice ());
          st.imap_block_addr.(idx) <- addr;
          Seg_usage.add_live st.usage seg ~bytes:bs ~now_us:now
      | Summary.Usage_block { idx } ->
          Seg_usage.load_block st.usage ~idx (slice ());
          st.usage_block_addr.(idx) <- addr;
          Seg_usage.add_live st.usage seg ~bytes:bs ~now_us:now)
    entries;
  st.tail_segment <- seg;
  st.next_seq <- header.Summary.seq + 1;
  Lfs_obs.Metrics.incr st.counters.State.c_rollforward_segments;
  if Lfs_obs.Bus.enabled st.bus then
    Lfs_obs.Bus.emit st.bus
      (Lfs_obs.Event.Rollforward
         { seg; seq = header.Summary.seq; entries = List.length entries })

let roll_forward (st : State.t) ~from_seq =
  let layout = st.layout in
  (* Find every segment whose summary claims a post-checkpoint sequence
     number, then walk them in order, stopping at the first gap or torn
     payload. *)
  let candidates = ref [] in
  for seg = 0 to layout.Layout.nsegments - 1 do
    let first = Layout.segment_first_block layout seg in
    (* A summary region that cannot be read (or decoded: a torn tail
       write leaves a bad CRC) simply offers no candidate — the log is
       truncated at the last valid summary. *)
    match
      try Summary.decode (read_summary_region st first)
      with Io.Read_failed _ -> None
    with
    | Some (header, entries) when header.Summary.seq > from_seq ->
        candidates := (header.Summary.seq, seg, header, entries) :: !candidates
    | Some _ | None -> ()
  done;
  let ordered = List.sort compare !candidates in
  let expected = ref (from_seq + 1) in
  let stop = ref false in
  let replayed = ref [] in
  List.iter
    (fun (seq, seg, header, entries) ->
      if (not !stop) && seq = !expected then begin
        let first = Layout.segment_first_block layout seg in
        let payload =
          if header.Summary.nblocks = 0 then Some (Bytes.create 0)
          else
            try
              Some
                (Io.sync_read st.io
                   ~sector:
                     (Layout.sector_of_block layout
                        (first + layout.Layout.summary_blocks))
                   ~count:(header.Summary.nblocks * layout.Layout.block_sectors))
            with Io.Read_failed _ -> None
        in
        match payload with
        | Some payload
          when Summary.payload_crc payload ~off:0 ~len:(Bytes.length payload)
               = header.Summary.payload_crc ->
            replay_segment st seg header entries payload;
            replayed := seg :: !replayed;
            incr expected
        | Some _ | None ->
            stop := true (* torn or unreadable: end of recoverable log *)
      end
      else stop := true)
    ordered;
  (* A usage-array snapshot replayed mid-log predates later replayed
     segments and could wrongly record them clean; force them dirty so
     the allocator can never hand out a segment holding replayed data. *)
  List.iter
    (fun seg ->
      if Seg_usage.state st.usage seg = Seg_usage.Clean then
        Seg_usage.set_state st.usage seg Seg_usage.Dirty)
    !replayed

(* After roll-forward the namespace is current (directory blocks arrive
   via replayed inodes) but the inode map may still hold post-checkpoint
   casualties: inodes whose last name was deleted (the unlink reached the
   log, the imap free did not — it is only logged at checkpoints), and
   link counts out of step with the replayed directories.  Sweep once,
   fsck-style: free nameless inodes, repair nlink. *)
let repair_namespace (st : State.t) =
  match
    let counts = Hashtbl.create 256 in
    let dangling = ref [] in
    let rec walk dir =
      List.iter
        (fun (name, inum) ->
          let resolvable =
            inum > 0
            && inum < Imap.max_files st.imap
            && Imap.is_allocated st.imap inum
            && (match Inode_store.find st inum with
               | _ -> true
               | exception Lfs_vfs.Errors.Error _ -> false)
          in
          if not resolvable then
            (* The directory block outlived its file's inode (e.g. an
               fsync persisted the entry but the crash beat the inode to
               the log): prune it. *)
            dangling := (dir, name) :: !dangling
          else begin
            let seen = Hashtbl.mem counts inum in
            Hashtbl.replace counts inum
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts inum));
            if not seen then begin
              match Inode_store.find st inum with
              | e when e.State.ino.Inode.kind = Lfs_vfs.Fs_intf.Directory ->
                  walk inum
              | _ | (exception Lfs_vfs.Errors.Error _) -> ()
            end
          end)
        (Namespace.entries st ~dir)
    in
    Hashtbl.replace counts State.root_inum 1;
    walk State.root_inum;
    List.iter
      (fun (dir, name) ->
        try Namespace.remove st ~dir name
        with Lfs_vfs.Errors.Error _ -> ())
      !dangling;
    for inum = 1 to Imap.max_files st.imap - 1 do
      if Imap.is_allocated st.imap inum then begin
        match Hashtbl.find_opt counts inum with
        | None -> (
            (* Nameless: its unlink survived the crash, its inode-map
               free did not. *)
            try Inode_store.delete st inum
            with Lfs_vfs.Errors.Error _ | Failure _ -> Imap.free st.imap inum)
        | Some entries -> (
            match Inode_store.find st inum with
            | e ->
                if e.State.ino.Inode.nlink <> entries then begin
                  e.State.ino.Inode.nlink <- entries;
                  Inode_store.mark_dirty e
                end
            | exception Lfs_vfs.Errors.Error _ -> ())
      end
    done
  with
  | () -> ()
  | exception _ ->
      (* A repair pass must never prevent mounting. *)
      ()

let recover io config layout =
  let st = State.create io config layout in
  let cp = Checkpoint.choose (read_region st `A) (read_region st `B) in
  match cp with
  | None -> Error "no valid checkpoint region: disk is not a (complete) LFS"
  | Some cp ->
      load_checkpoint st cp;
      if config.Config.roll_forward then begin
        Lfs_obs.Bus.with_span st.bus "roll_forward" (fun () ->
            roll_forward st ~from_seq:cp.Checkpoint.seq);
        if Lfs_obs.Metrics.value st.counters.State.c_rollforward_segments > 0
        then begin
          repair_namespace st;
          (* The per-entry estimates accumulated during replay cannot be
             exact: a segment's data blocks precede the inode block that
             allocates their file, and blocks superseded post-checkpoint
             are still counted in their old segments (the incremental
             deltas died with the crash, and sync never logs usage
             blocks).  The imap and namespace are now authoritative, so
             reconcile the whole array against recomputed ground truth —
             the cleaner picks victims by these counts (§4.3.4). *)
          let truth = Check.recompute_usage st in
          Array.iteri
            (fun seg bytes -> Seg_usage.set_live st.usage seg ~bytes)
            truth;
          (* Make the next crash recover instantly from what we just
             replayed.  On a log with no clean segments the checkpoint
             cannot be written — recovery still succeeds; the next mount
             will simply replay again. *)
          try Write_path.checkpoint st
          with Lfs_vfs.Errors.Error Lfs_vfs.Errors.Enospc -> ()
        end
      end;
      st.last_checkpoint_us <- Io.now_us st.io;
      Ok st
