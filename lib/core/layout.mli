(** On-disk layout.

    {v
    block 0      : superblock
    blocks 1..   : checkpoint region A
    blocks ..    : checkpoint region B
    blocks ..    : segment 0, segment 1, ...  (each: summary block + payload)
    v}

    All addresses are in file-system blocks from the start of the disk;
    address [0] doubles as the null pointer (the superblock can never be a
    data block). *)

type t = {
  block_size : int;
  block_sectors : int;  (** sectors per block *)
  total_blocks : int;
  seg_blocks : int;  (** blocks per segment including the summary region *)
  summary_blocks : int;  (** blocks of summary at the segment's head *)
  payload_blocks : int;  (** [seg_blocks - summary_blocks] *)
  nsegments : int;
  first_segment_block : int;
      (** first block of segment 0 — right after checkpoint region B, or
          pushed up to the next [align_sectors] boundary *)
  cp_blocks : int;  (** blocks per checkpoint region *)
  cp_region : int * int;  (** block addresses of regions A and B *)
  max_files : int;
  n_imap_blocks : int;
  n_usage_blocks : int;
  align_sectors : int;
      (** the {!Config.t.segment_align_sectors} the layout was computed
          with; recorded in the superblock (a mount must re-derive the
          same segment area) *)
}

val imap_entry_bytes : int
val usage_entry_bytes : int
val inode_bytes : int

val imap_entries_per_block : t -> int
val usage_entries_per_block : t -> int
val inodes_per_block : t -> int
val ptrs_per_block : t -> int

val compute : Config.t -> Lfs_disk.Geometry.t -> (t, string) result
(** Derive the layout for a disk; fails if the disk is too small, the
    segment payload cannot be described by one summary block, or the
    configuration is invalid. *)

val null_addr : int

val sector_of_block : t -> int -> int
val segment_of_block : t -> int -> int
(** Segment index containing a block.  @raise Invalid_argument for blocks
    outside the segment area. *)

val segment_first_block : t -> int -> int
(** Address of segment [i]'s summary region. *)

val segment_payload_block : t -> seg:int -> idx:int -> int
(** Address of payload block [idx] of segment [seg]. *)

val payload_index_of_block : t -> int -> int
(** Inverse of {!segment_payload_block} within the block's segment.
    @raise Invalid_argument if the block is a summary block. *)

(** {1 Superblock} *)

val encode_superblock : t -> bytes
(** One block. *)

val decode_superblock : bytes -> Lfs_disk.Geometry.t -> (t, string) result
(** Validate magic and CRC, recompute and cross-check the layout against
    the geometry the disk actually has. *)

val pp : Format.formatter -> t -> unit
