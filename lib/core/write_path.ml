module Bitset = Lfs_util.Bitset
module Cache = Lfs_cache.Block_cache
module Io = Lfs_disk.Io

let release (st : State.t) addr ~bytes =
  if addr <> Layout.null_addr then
    Seg_usage.sub_live st.usage (Layout.segment_of_block st.layout addr) ~bytes

let ptr_block_bytes (st : State.t) ptrs =
  let b = Bytes.make st.layout.Layout.block_size '\000' in
  Array.iteri (fun i p -> Bytes.set_int32_le b (i * 4) (Int32.of_int p)) ptrs;
  b

(* Write one file's dirty pointer blocks: double-indirect children feed
   the top block, which feeds the inode. *)
let flush_pointer_blocks (st : State.t) ~privilege (e : State.itable_entry) =
  let bs = st.layout.Layout.block_size in
  let inum = e.ino.Inode.inum in
  if Bitset.cardinal e.dind_child_dirty > 0 then begin
    let top =
      match e.dind_top with
      | Some t -> t
      | None -> assert false (* children imply a top map *)
    in
    Bitset.iter_set
      (fun child ->
        match e.dind_children.(child) with
        | None -> assert false
        | Some m ->
            let addr =
              Segwriter.append st ~privilege
                ~entry:(Summary.Indirect { inum; idx = 1 + child })
                ~live_bytes:bs (ptr_block_bytes st m)
            in
            let old = top.(child) in
            top.(child) <- addr;
            release st old ~bytes:bs;
            Cache.remove st.cache (Block_io.key_raw old);
            e.dind_top_dirty <- true)
      e.dind_child_dirty;
    Bitset.clear_all e.dind_child_dirty
  end;
  if e.dind_top_dirty then begin
    (match e.dind_top with
    | None -> assert false
    | Some top ->
        let addr =
          Segwriter.append st ~privilege
            ~entry:(Summary.Dindirect { inum })
            ~live_bytes:bs (ptr_block_bytes st top)
        in
        let old = e.ino.Inode.dindirect in
        e.ino.Inode.dindirect <- addr;
        release st old ~bytes:bs;
        Cache.remove st.cache (Block_io.key_raw old);
        e.ino_dirty <- true);
    e.dind_top_dirty <- false
  end;
  if e.ind_dirty then begin
    (match e.ind_map with
    | None -> assert false
    | Some m ->
        let addr =
          Segwriter.append st ~privilege
            ~entry:(Summary.Indirect { inum; idx = 0 })
            ~live_bytes:bs (ptr_block_bytes st m)
        in
        let old = e.ino.Inode.indirect in
        e.ino.Inode.indirect <- addr;
        release st old ~bytes:bs;
        Cache.remove st.cache (Block_io.key_raw old);
        e.ino_dirty <- true);
    e.ind_dirty <- false
  end

let flush_file_data (st : State.t) ~privilege inum blknos =
  let bs = st.layout.Layout.block_size in
  match Inode_store.find_loaded st inum with
  | None ->
      (* A dirty data block always has its file in the inode table (it got
         there when the block was written, and deletion removes the cache
         entries), so this cannot happen. *)
      assert false
  | Some e ->
      let version = Imap.version st.imap inum in
      List.iter
        (fun blkno ->
          let key = Block_io.key_data ~inum ~blkno in
          match Cache.find st.cache key with
          | None -> assert false
          | Some data ->
              let addr =
                Segwriter.append st ~privilege
                  ~entry:(Summary.Data { inum; blkno; version })
                  ~live_bytes:bs (Bytes.copy data)
              in
              let old = Inode_store.bmap_write st e blkno addr in
              release st old ~bytes:bs;
              Cache.mark_clean st.cache key)
        (List.sort compare blknos);
      flush_pointer_blocks st ~privilege e

(* Pack all dirty inodes into shared inode blocks and point the inode map
   at them. *)
let flush_inodes (st : State.t) ~privilege =
  let layout = st.layout in
  let bs = layout.Layout.block_size in
  let per_block = Layout.inodes_per_block layout in
  let rec chunks = function
    | [] -> []
    | l ->
        let rec take n acc = function
          | rest when n = 0 -> (List.rev acc, rest)
          | [] -> (List.rev acc, [])
          | x :: rest -> take (n - 1) (x :: acc) rest
        in
        let group, rest = take per_block [] l in
        group :: chunks rest
  in
  let flush_group group =
    let block = Bytes.make bs '\000' in
    List.iteri
      (fun slot (e : State.itable_entry) ->
        Inode.encode_into e.ino block ~off:(slot * Layout.inode_bytes))
      group;
    let live = List.length group * Layout.inode_bytes in
    let addr =
      Segwriter.append st ~privilege ~entry:Summary.Inode_block
        ~live_bytes:live block
    in
    (* Cache the fresh inode block so immediate re-reads are hits. *)
    Cache.insert st.cache (Block_io.key_raw addr) ~dirty:false
      (Bytes.copy block);
    List.iteri
      (fun slot (e : State.itable_entry) ->
        let inum = e.ino.Inode.inum in
        (match Imap.location st.imap inum with
        | Some (old_addr, _) -> release st old_addr ~bytes:Layout.inode_bytes
        | None -> ());
        Imap.set_location st.imap inum ~addr ~slot;
        e.ino_dirty <- false)
      group
  in
  List.iter flush_group (chunks (Inode_store.dirty_inodes st))

let flush_data (st : State.t) ~privilege =
  if not st.flushing then begin
    st.flushing <- true;
    Fun.protect
      ~finally:(fun () -> st.flushing <- false)
      (fun () ->
        (if Lfs_obs.Bus.enabled st.bus then
           Lfs_obs.Bus.with_span st.bus "lfs_log_flush"
         else fun f -> f ())
        @@ fun () ->
        (* Group dirty cache blocks by owner, oldest file first. *)
        let order = ref [] in
        let by_owner = Hashtbl.create 64 in
        List.iter
          (fun { Cache.owner; blkno } ->
            match Hashtbl.find_opt by_owner owner with
            | None ->
                Hashtbl.replace by_owner owner [ blkno ];
                order := owner :: !order
            | Some blknos -> Hashtbl.replace by_owner owner (blkno :: blknos))
          (Cache.dirty_keys st.cache);
        List.iter
          (fun owner ->
            flush_file_data st ~privilege owner (Hashtbl.find by_owner owner))
          (List.rev !order);
        (* Files whose metadata is dirty without dirty data (deletes that
           touched the directory inode, cleaner-marked pointer blocks...) *)
        List.iter
          (fun (e : State.itable_entry) -> flush_pointer_blocks st ~privilege e)
          (Inode_store.dirty_inodes st);
        flush_inodes st ~privilege)
  end

(* fsync: push exactly one file — its dirty data blocks, pointer blocks
   and inode — to the log, leaving the rest of the write buffer alone
   (§4.3.5's sync trigger; the caller forces the partial segment out and
   drains). *)
let flush_file (st : State.t) ~privilege inum =
  let blknos =
    Cache.fold_dirty
      (fun key _ acc ->
        if key.Cache.owner = inum then key.Cache.blkno :: acc else acc)
      st.cache []
  in
  (match (blknos, Inode_store.find_loaded st inum) with
  | [], None -> ()
  | [], Some e -> flush_pointer_blocks st ~privilege e
  | _ :: _, _ -> flush_file_data st ~privilege inum blknos);
  match Inode_store.find_loaded st inum with
  | Some e when e.State.ino_dirty ->
      let bs = st.layout.Layout.block_size in
      let block = Bytes.make bs '\000' in
      Inode.encode_into e.ino block ~off:0;
      let addr =
        Segwriter.append st ~privilege ~entry:Summary.Inode_block
          ~live_bytes:Layout.inode_bytes block
      in
      Cache.insert st.cache (Block_io.key_raw addr) ~dirty:false
        (Bytes.copy block);
      (match Imap.location st.imap inum with
      | Some (old_addr, _) -> release st old_addr ~bytes:Layout.inode_bytes
      | None -> ());
      Imap.set_location st.imap inum ~addr ~slot:0;
      e.State.ino_dirty <- false
  | Some _ | None -> ()

(* Pointer blocks and inodes only — the part of the backlog that is
   small and bounded (no file data).  Used by the cleaner to persist its
   evacuations. *)
let flush_metadata (st : State.t) ~privilege =
  List.iter
    (fun (e : State.itable_entry) -> flush_pointer_blocks st ~privilege e)
    (Inode_store.dirty_inodes st);
  flush_inodes st ~privilege

let sync (st : State.t) ~privilege =
  flush_data st ~privilege;
  Segwriter.flush_active st;
  Io.drain st.io

let flush_meta_blocks (st : State.t) ~privilege =
  let bs = st.layout.Layout.block_size in
  List.iter
    (fun idx ->
      let block = Imap.encode_block st.imap ~idx in
      let addr =
        Segwriter.append st ~privilege
          ~entry:(Summary.Imap_block { idx })
          ~live_bytes:bs block
      in
      release st st.imap_block_addr.(idx) ~bytes:bs;
      st.imap_block_addr.(idx) <- addr)
    (Imap.dirty_blocks st.imap);
  Imap.clear_dirty st.imap;
  (* Usage blocks are written from a snapshot of the dirty set: writing
     them dirties the array again (self-reference), which the paper
     explicitly tolerates — live counts are only a cleaning hint. *)
  let dirty_usage = Seg_usage.dirty_blocks st.usage in
  List.iter
    (fun idx ->
      let block = Seg_usage.encode_block st.usage ~idx in
      let addr =
        Segwriter.append st ~privilege
          ~entry:(Summary.Usage_block { idx })
          ~live_bytes:bs block
      in
      release st st.usage_block_addr.(idx) ~bytes:bs;
      st.usage_block_addr.(idx) <- addr)
    dirty_usage;
  Seg_usage.clear_dirty st.usage

let checkpoint ?(privilege = `System) (st : State.t) =
  (if Lfs_obs.Bus.enabled st.bus then Lfs_obs.Bus.with_span st.bus "checkpoint"
   else fun f -> f ())
  @@ fun () ->
  flush_data st ~privilege;
  flush_meta_blocks st ~privilege:`System;
  Segwriter.flush_active st;
  Io.drain st.io;
  let cp =
    {
      Checkpoint.timestamp_us = Io.now_us st.io;
      seq = st.next_seq - 1;
      tail_segment = st.tail_segment;
      next_inum_hint = Imap.next_hint st.imap;
      imap_addrs = Array.copy st.imap_block_addr;
      usage_addrs = Array.copy st.usage_block_addr;
    }
  in
  let region = Checkpoint.encode st.layout cp in
  let region_block =
    if st.cp_flip then snd st.layout.Layout.cp_region
    else fst st.layout.Layout.cp_region
  in
  Io.sync_write st.io
    ~sector:(Layout.sector_of_block st.layout region_block)
    region;
  let region_idx = if st.cp_flip then 1 else 0 in
  st.cp_flip <- not st.cp_flip;
  st.last_checkpoint_us <- Io.now_us st.io;
  st.last_cp_seq <- cp.Checkpoint.seq;
  Lfs_obs.Metrics.incr st.counters.State.c_checkpoints;
  if Lfs_obs.Bus.enabled st.bus then
    Lfs_obs.Bus.emit st.bus
      (Lfs_obs.Event.Checkpoint { seq = cp.Checkpoint.seq; region = region_idx })
