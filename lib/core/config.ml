type policy = Greedy | Cost_benefit | Oldest

let policy_name = function
  | Greedy -> "greedy"
  | Cost_benefit -> "cost-benefit"
  | Oldest -> "oldest"

let pp_policy ppf p = Format.pp_print_string ppf (policy_name p)

type t = {
  block_size : int;
  segment_size : int;
  max_files : int;
  segment_align_sectors : int;
  cache_blocks : int;
  read_clustering : bool;
  readahead_blocks : int;
  writeback_age_us : int;
  checkpoint_interval_us : int;
  clean_threshold_segments : int;
  clean_target_segments : int;
  reserve_segments : int;
  max_live_fraction : float;
  policy : policy;
  auto_clean : bool;
  roll_forward : bool;
}

let default =
  {
    block_size = 4096;
    segment_size = 1 lsl 20;
    max_files = 65536;
    segment_align_sectors = 0;
    cache_blocks = 4096;
    read_clustering = true;
    readahead_blocks = 32;
    writeback_age_us = 30_000_000;
    checkpoint_interval_us = 30_000_000;
    clean_threshold_segments = 8;
    clean_target_segments = 16;
    reserve_segments = 4;
    max_live_fraction = 0.95;
    policy = Greedy;
    auto_clean = true;
    roll_forward = true;
  }

let small =
  {
    default with
    block_size = 1024;
    segment_size = 16 * 1024;
    max_files = 1024;
    cache_blocks = 64;
    readahead_blocks = 8;
    clean_threshold_segments = 8;
    clean_target_segments = 12;
    reserve_segments = 4;
  }

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if t.block_size <= 0 || t.block_size land (t.block_size - 1) <> 0 then
    err "block_size must be a positive power of two: %d" t.block_size
  else if t.segment_size mod t.block_size <> 0 then
    err "segment_size %d not a multiple of block_size %d" t.segment_size
      t.block_size
  else if t.segment_size / t.block_size < 2 then
    err "a segment must hold at least a summary block and one data block"
  else if t.max_files < 2 then err "max_files must be at least 2"
  else if t.segment_align_sectors < 0 then
    err "segment_align_sectors must be non-negative (0 disables alignment)"
  else if t.cache_blocks <= 0 then err "cache_blocks must be positive"
  else if t.readahead_blocks < 0 then
    err "readahead_blocks must be non-negative (0 disables read-ahead)"
  else if t.clean_target_segments < t.clean_threshold_segments then
    err "clean_target_segments below clean_threshold_segments"
  else if t.reserve_segments < 1 then err "reserve_segments must be >= 1"
  else if t.max_live_fraction <= 0.0 || t.max_live_fraction > 1.0 then
    err "max_live_fraction must be in (0, 1]"
  else Ok ()
