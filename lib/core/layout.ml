module Codec = Lfs_util.Codec
module Crc32 = Lfs_util.Crc32
module Geometry = Lfs_disk.Geometry

type t = {
  block_size : int;
  block_sectors : int;
  total_blocks : int;
  seg_blocks : int;
  summary_blocks : int;
  payload_blocks : int;
  nsegments : int;
  first_segment_block : int;
  cp_blocks : int;
  cp_region : int * int;
  max_files : int;
  n_imap_blocks : int;
  n_usage_blocks : int;
  align_sectors : int;
}

let imap_entry_bytes = 24
let usage_entry_bytes = 16
let inode_bytes = 128
let cp_header_bytes = 64

let imap_entries_per_block t = t.block_size / imap_entry_bytes
let usage_entries_per_block t = t.block_size / usage_entry_bytes
let inodes_per_block t = t.block_size / inode_bytes
let ptrs_per_block t = t.block_size / 4

let null_addr = 0

let compute (config : Config.t) geometry =
  match Config.validate config with
  | Error _ as e -> e
  | Ok () ->
      let sector_size = geometry.Geometry.sector_size in
      if config.block_size mod sector_size <> 0 then
        Error
          (Printf.sprintf "block size %d not a multiple of sector size %d"
             config.block_size sector_size)
      else begin
        let block_size = config.block_size in
        let block_sectors = block_size / sector_size in
        let total_blocks = Geometry.size_bytes geometry / block_size in
        let seg_blocks = config.segment_size / block_size in
        let summary_blocks = Summary.blocks_needed ~block_size ~seg_blocks in
        let payload_blocks = seg_blocks - summary_blocks in
        let n_imap_blocks =
          (config.max_files + (block_size / imap_entry_bytes) - 1)
          / (block_size / imap_entry_bytes)
        in
        (* The usage-array size depends on nsegments which depends on the
           checkpoint-region size; bound nsegments from above first, then
           settle. *)
        let upper_nsegments = total_blocks / seg_blocks in
        let usage_blocks_for nsegs =
          (nsegs + (block_size / usage_entry_bytes) - 1)
          / (block_size / usage_entry_bytes)
        in
        let cp_blocks_for nsegs =
          let bytes =
            cp_header_bytes + (4 * n_imap_blocks) + (4 * usage_blocks_for nsegs)
          in
          (bytes + block_size - 1) / block_size
        in
        let cp_blocks = cp_blocks_for upper_nsegments in
        let base_first = 1 + (2 * cp_blocks) in
        (* Segment alignment: push the segment area up so every segment
           starts on a multiple of [segment_align_sectors] — on a
           Log_stripe volume with the stripe as the alignment, a
           whole-segment write then splits into exactly one contiguous
           run per member.  The alignment must be whole blocks, or no
           block boundary ever lands on it. *)
        let align = config.segment_align_sectors in
        if align > 0 && align mod block_sectors <> 0 then
          Error
            (Printf.sprintf
               "segment_align_sectors %d not a multiple of the %d-sector \
                block"
               align block_sectors)
        else begin
        let first_segment_block =
          if align = 0 then base_first
          else
            let ab = align / block_sectors in
            (base_first + ab - 1) / ab * ab
        in
        let nsegments = (total_blocks - first_segment_block) / seg_blocks in
        if nsegments < 2 then
          Error "disk too small: fewer than two segments would fit"
        else
          Ok
            {
              block_size;
              block_sectors;
              total_blocks;
              seg_blocks;
              summary_blocks;
              payload_blocks;
              nsegments;
              first_segment_block;
              cp_blocks;
              cp_region = (1, 1 + cp_blocks);
              max_files = config.max_files;
              n_imap_blocks;
              n_usage_blocks = usage_blocks_for nsegments;
              align_sectors = align;
            }
        end
      end

let sector_of_block t addr = addr * t.block_sectors

let segment_of_block t addr =
  if addr < t.first_segment_block then
    invalid_arg "Layout.segment_of_block: block before segment area";
  let seg = (addr - t.first_segment_block) / t.seg_blocks in
  if seg >= t.nsegments then
    invalid_arg "Layout.segment_of_block: block past segment area";
  seg

let segment_first_block t seg = t.first_segment_block + (seg * t.seg_blocks)

let segment_payload_block t ~seg ~idx =
  if idx < 0 || idx >= t.payload_blocks then
    invalid_arg "Layout.segment_payload_block: bad payload index";
  segment_first_block t seg + t.summary_blocks + idx

let payload_index_of_block t addr =
  let seg = segment_of_block t addr in
  let idx = addr - segment_first_block t seg - t.summary_blocks in
  if idx < 0 then invalid_arg "Layout.payload_index_of_block: summary block";
  idx

(* Superblock *)

let sb_magic = 0x4C465331 (* "LFS1" *)
let sb_crc_off = 32

let encode_superblock t =
  let e = Codec.encoder ~capacity:t.block_size () in
  Codec.u32 e sb_magic;
  Codec.u32 e t.block_size;
  Codec.u32 e (t.seg_blocks * t.block_size);
  Codec.u32 e t.max_files;
  Codec.u32 e t.total_blocks;
  Codec.u32 e t.nsegments;
  Codec.u32 e t.cp_blocks;
  Codec.u32 e t.align_sectors;
  Codec.u32 e 0 (* crc placeholder at sb_crc_off *);
  Codec.pad_to e t.block_size;
  let block = Codec.to_bytes e in
  Bytes.set_int32_le block sb_crc_off (Crc32.digest_bytes block);
  block

let decode_superblock block geometry =
  let check () =
    let d = Codec.decoder block in
    if Codec.read_u32 d <> sb_magic then Error "superblock: bad magic"
    else begin
      let block_size = Codec.read_u32 d in
      (* The CRC covers exactly one on-disk block; the caller may have
         read more than that. *)
      if block_size <= 0 || block_size > Bytes.length block then
        Error "superblock: implausible block size"
      else begin
        let scratch = Bytes.sub block 0 block_size in
        let stored = Bytes.get_int32_le scratch sb_crc_off in
        Bytes.set_int32_le scratch sb_crc_off 0l;
        if Crc32.digest_bytes scratch <> stored then Error "superblock: bad CRC"
        else begin
          let segment_size = Codec.read_u32 d in
          let max_files = Codec.read_u32 d in
          let total_blocks = Codec.read_u32 d in
          let nsegments = Codec.read_u32 d in
          let cp_blocks = Codec.read_u32 d in
          let align_sectors = Codec.read_u32 d in
          let config =
            {
              Config.default with
              block_size;
              segment_size;
              max_files;
              segment_align_sectors = align_sectors;
            }
          in
          match compute config geometry with
          | Error _ as e -> e
          | Ok layout ->
              if
                layout.total_blocks <> total_blocks
                || layout.nsegments <> nsegments
                || layout.cp_blocks <> cp_blocks
              then Error "superblock does not match disk geometry"
              else Ok layout
        end
      end
    end
  in
  match check () with
  | v -> v
  | exception Codec.Error m -> Error ("superblock: " ^ m)
  | exception Invalid_argument m -> Error ("superblock: " ^ m)

let pp ppf t =
  Format.fprintf ppf
    "layout: %d blocks of %d B, %d segments of %d blocks, cp regions at \
     (%d, %d) x%d blocks, imap %d blocks (%d files), usage %d blocks"
    t.total_blocks t.block_size t.nsegments t.seg_blocks (fst t.cp_region)
    (snd t.cp_region) t.cp_blocks t.n_imap_blocks t.max_files t.n_usage_blocks
