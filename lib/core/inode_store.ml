module Bitset = Lfs_util.Bitset
module Cache = Lfs_cache.Block_cache
module Errors = Lfs_vfs.Errors

let ptrs_of_bytes block n = Array.init n (fun i -> Bytes.get_int32_le block (i * 4) |> Int32.to_int |> ( land ) 0xFFFFFFFF)

let add_new (st : State.t) ino =
  let e = State.fresh_itable_entry ino in
  e.ino_dirty <- true;
  Hashtbl.replace st.itable ino.Inode.inum e;
  e

let find_loaded (st : State.t) inum = Hashtbl.find_opt st.itable inum

let materialize (st : State.t) ino =
  match find_loaded st ino.Inode.inum with
  | Some e -> e
  | None ->
      let e = State.fresh_itable_entry ino in
      Hashtbl.replace st.itable ino.Inode.inum e;
      e

let find (st : State.t) inum =
  match find_loaded st inum with
  | Some e -> e
  | None ->
      if not (Imap.is_allocated st.imap inum) then
        Errors.raise_ (Errors.Enoent (Printf.sprintf "inum %d" inum));
      (match Imap.location st.imap inum with
      | None ->
          (* Allocated but locationless: normally impossible, but a
             recovered inode map that lost entries to a clobbered block
             can surface it — report the file missing rather than die. *)
          Errors.raise_ (Errors.Enoent (Printf.sprintf "inum %d (no inode)" inum))
      | Some (addr, slot) ->
          let block = Block_io.read_raw st addr in
          (match Inode.decode_at block ~off:(slot * Layout.inode_bytes) with
          | Some ino when ino.Inode.inum = inum -> materialize st ino
          | Some _ | None ->
              Errors.raise_
                (Errors.Enoent
                   (Printf.sprintf "inum %d (stale inode map entry)" inum))))

let mark_dirty (e : State.itable_entry) = e.ino_dirty <- true

let ppb (st : State.t) = Layout.ptrs_per_block st.layout

(* Loads for reading return [None] when the structure does not exist (the
   whole range is a hole). *)

let load_ind_for_read st (e : State.itable_entry) =
  match e.ind_map with
  | Some m -> Some m
  | None ->
      if e.ino.Inode.indirect = Layout.null_addr then None
      else begin
        let m = ptrs_of_bytes (Block_io.read_raw st e.ino.Inode.indirect) (ppb st) in
        e.ind_map <- Some m;
        Some m
      end

let ensure_dind_arrays st (e : State.itable_entry) =
  if Array.length e.dind_children = 0 then begin
    e.dind_children <- Array.make (ppb st) None;
    e.dind_child_dirty <- Bitset.create (ppb st)
  end

let load_dind_top_for_read st (e : State.itable_entry) =
  match e.dind_top with
  | Some m -> Some m
  | None ->
      if e.ino.Inode.dindirect = Layout.null_addr then None
      else begin
        let m =
          ptrs_of_bytes (Block_io.read_raw st e.ino.Inode.dindirect) (ppb st)
        in
        ensure_dind_arrays st e;
        e.dind_top <- Some m;
        Some m
      end

let load_dind_child_for_read st (e : State.itable_entry) child =
  ensure_dind_arrays st e;
  match e.dind_children.(child) with
  | Some m -> Some m
  | None -> (
      match load_dind_top_for_read st e with
      | None -> None
      | Some top ->
          if top.(child) = Layout.null_addr then None
          else begin
            let m = ptrs_of_bytes (Block_io.read_raw st top.(child)) (ppb st) in
            e.dind_children.(child) <- Some m;
            Some m
          end)

let bmap_read st (e : State.itable_entry) blkno =
  if blkno < 0 then invalid_arg "bmap_read: negative block";
  let p = ppb st in
  if blkno < Inode.ndirect then e.ino.Inode.direct.(blkno)
  else if blkno < Inode.ndirect + p then begin
    match load_ind_for_read st e with
    | None -> Layout.null_addr
    | Some m -> m.(blkno - Inode.ndirect)
  end
  else begin
    let d = blkno - Inode.ndirect - p in
    let child = d / p and off = d mod p in
    if child >= p then Errors.raise_ Errors.Efbig;
    match load_dind_child_for_read st e child with
    | None -> Layout.null_addr
    | Some m -> m.(off)
  end

(* Loads for writing materialize missing structures as all-holes maps. *)

let ensure_ind_for_write st (e : State.itable_entry) =
  match load_ind_for_read st e with
  | Some m -> m
  | None ->
      let m = Array.make (ppb st) Layout.null_addr in
      e.ind_map <- Some m;
      e.ind_dirty <- true;
      m

let ensure_dind_top_for_write st (e : State.itable_entry) =
  match load_dind_top_for_read st e with
  | Some m -> m
  | None ->
      ensure_dind_arrays st e;
      let m = Array.make (ppb st) Layout.null_addr in
      e.dind_top <- Some m;
      e.dind_top_dirty <- true;
      m

let ensure_dind_child_for_write st (e : State.itable_entry) child =
  let _top = ensure_dind_top_for_write st e in
  match load_dind_child_for_read st e child with
  | Some m -> m
  | None ->
      let m = Array.make (ppb st) Layout.null_addr in
      e.dind_children.(child) <- Some m;
      Bitset.set e.dind_child_dirty child;
      m

let bmap_write st (e : State.itable_entry) blkno addr =
  if blkno < 0 then invalid_arg "bmap_write: negative block";
  let p = ppb st in
  if blkno < Inode.ndirect then begin
    let old = e.ino.Inode.direct.(blkno) in
    e.ino.Inode.direct.(blkno) <- addr;
    e.ino_dirty <- true;
    old
  end
  else if blkno < Inode.ndirect + p then begin
    let m = ensure_ind_for_write st e in
    let old = m.(blkno - Inode.ndirect) in
    m.(blkno - Inode.ndirect) <- addr;
    e.ind_dirty <- true;
    old
  end
  else begin
    let d = blkno - Inode.ndirect - p in
    let child = d / p and off = d mod p in
    if child >= p then Errors.raise_ Errors.Efbig;
    let m = ensure_dind_child_for_write st e child in
    let old = m.(off) in
    m.(off) <- addr;
    Bitset.set e.dind_child_dirty child;
    old
  end

let dind_child_addr st (e : State.itable_entry) child =
  if child < 0 || child >= ppb st then invalid_arg "dind_child_addr";
  match load_dind_top_for_read st e with
  | None -> Layout.null_addr
  | Some top -> top.(child)

let cleaner_touch_ind st (e : State.itable_entry) =
  match load_ind_for_read st e with
  | None -> ()
  | Some _ -> e.ind_dirty <- true

let cleaner_touch_dind_top st (e : State.itable_entry) =
  match load_dind_top_for_read st e with
  | None -> ()
  | Some _ -> e.dind_top_dirty <- true

let cleaner_touch_dind_child st (e : State.itable_entry) child =
  match load_dind_child_for_read st e child with
  | None -> ()
  | Some _ -> Bitset.set e.dind_child_dirty child

let entry_dirty (e : State.itable_entry) =
  e.ino_dirty || e.ind_dirty || e.dind_top_dirty
  || Bitset.cardinal e.dind_child_dirty > 0

let dirty_inodes (st : State.t) =
  Hashtbl.fold (fun _ e acc -> if entry_dirty e then e :: acc else acc) st.itable []
  |> List.sort (fun a b ->
         compare a.State.ino.Inode.inum b.State.ino.Inode.inum)

let clear_clean (st : State.t) =
  Hashtbl.iter
    (fun _ e ->
      if entry_dirty e then
        invalid_arg "Inode_store.clear_clean: dirty inodes remain")
    st.itable;
  Hashtbl.reset st.itable

let loaded_count (st : State.t) = Hashtbl.length st.itable

let release_block (st : State.t) addr ~bytes =
  if addr <> Layout.null_addr && addr >= st.layout.Layout.first_segment_block
  then
    Seg_usage.sub_live st.usage (Layout.segment_of_block st.layout addr) ~bytes

let delete (st : State.t) inum =
  let e = find st inum in
  let bs = st.layout.Layout.block_size in
  let nblocks = Inode.nblocks ~block_size:bs e.ino in
  for blkno = 0 to nblocks - 1 do
    let addr = bmap_read st e blkno in
    if addr <> Layout.null_addr then release_block st addr ~bytes:bs;
    (* Unconditionally: a block written but never flushed has no disk
       address yet, but its dirty cache entry must die with the file, or
       it would haunt the next file to reuse this inum. *)
    Cache.remove st.cache (Block_io.key_data ~inum ~blkno)
  done;
  (* Pointer blocks die with the file. *)
  let release_raw addr =
    if addr <> Layout.null_addr then begin
      release_block st addr ~bytes:bs;
      Cache.remove st.cache (Block_io.key_raw addr)
    end
  in
  release_raw e.ino.Inode.indirect;
  (match load_dind_top_for_read st e with
  | None -> ()
  | Some top -> Array.iter release_raw top);
  release_raw e.ino.Inode.dindirect;
  (* The inode's slice of its inode block dies too. *)
  (match Imap.location st.imap inum with
  | Some (addr, _slot) -> release_block st addr ~bytes:Layout.inode_bytes
  | None -> ());
  Lfs_cache.Readahead.forget st.readahead ~owner:inum;
  Hashtbl.remove st.itable inum;
  Imap.free st.imap inum
