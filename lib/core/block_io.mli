(** Block reads through the file cache.

    A read first consults the cache, then the active in-memory segment
    (blocks recently appended to the log may not have reached the disk
    yet), and finally the disk.  Disk reads are synchronous — the reader
    waits — and the block is inserted into the cache clean. *)

val key_data : inum:int -> blkno:int -> Lfs_cache.Block_cache.key
(** Cache key for a logical file block. *)

val key_raw : int -> Lfs_cache.Block_cache.key
(** Cache key for a by-address block (inode block, indirect block). *)

val in_active_segment : State.t -> int -> bool
(** Whether a block address falls inside the segment currently being
    assembled in memory. *)

val read_raw : State.t -> int -> bytes
(** Read the block at a disk address.  @raise Invalid_argument on the
    null address. *)

val read_file_block : State.t -> inum:int -> blkno:int -> addr:int -> bytes
(** Read a file's logical block stored at [addr], caching it under the
    file key. *)

val fetch_file_block : State.t -> inum:int -> blkno:int -> addr:int -> bytes
(** Like {!read_file_block} but without the cache lookup: for callers
    that already missed and would otherwise double-count the miss. *)

val read_run : State.t -> inum:int -> first_blkno:int -> addr:int -> n:int -> bytes
(** Clustered read: fetch [n] physically contiguous blocks (logical
    blocks [first_blkno..first_blkno + n - 1] stored at
    [addr..addr + n - 1]) in a single disk request, caching each block
    clean.  Returns the run's raw bytes.  The caller guarantees none of
    the blocks is already cached (a dirty cached block must never be
    clobbered with stale disk data) and none lives in the active
    segment. *)

val sector_of_block : State.t -> int -> int
