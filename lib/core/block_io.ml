module Cache = Lfs_cache.Block_cache
module Io = Lfs_disk.Io

let key_data ~inum ~blkno = { Cache.owner = inum; blkno }
let key_raw addr = { Cache.owner = State.owner_raw; blkno = addr }

let sector_of_block (st : State.t) addr = Layout.sector_of_block st.layout addr

let in_active_segment (st : State.t) addr =
  let seg = st.seg in
  seg.seg >= 0
  &&
  let payload_first =
    Layout.segment_first_block st.layout seg.seg
    + st.layout.Layout.summary_blocks
  in
  addr >= payload_first && addr < payload_first + seg.nblocks

let copy_from_active (st : State.t) addr =
  let first = Layout.segment_first_block st.layout st.seg.seg in
  let bs = st.layout.Layout.block_size in
  Bytes.sub st.seg.buf ((addr - first) * bs) bs

(* Fetch one block from the active segment or the disk and cache it
   clean.  The caller has already missed in the cache. *)
let fetch_at (st : State.t) key addr =
  let data =
    if in_active_segment st addr then copy_from_active st addr
    else
      Io.sync_read st.io
        ~sector:(sector_of_block st addr)
        ~count:st.layout.Layout.block_sectors
  in
  Cache.insert st.cache key ~dirty:false data;
  data

let read_at (st : State.t) key addr =
  if addr = Layout.null_addr then
    invalid_arg "Block_io.read: null block address";
  match Cache.find st.cache key with
  | Some data -> data
  | None -> fetch_at st key addr

let read_raw st addr = read_at st (key_raw addr) addr

let read_file_block st ~inum ~blkno ~addr = read_at st (key_data ~inum ~blkno) addr

let fetch_file_block st ~inum ~blkno ~addr =
  fetch_at st (key_data ~inum ~blkno) addr

let read_run (st : State.t) ~inum ~first_blkno ~addr ~n =
  let bs = st.layout.Layout.block_size in
  let data =
    Io.sync_read st.io
      ~sector:(sector_of_block st addr)
      ~count:(n * st.layout.Layout.block_sectors)
  in
  if n > 1 then Io.note_clustered_read st.io ~blocks:n;
  for i = 0 to n - 1 do
    Cache.insert st.cache
      (key_data ~inum ~blkno:(first_blkno + i))
      ~dirty:false
      (Bytes.sub data (i * bs) bs)
  done;
  data
