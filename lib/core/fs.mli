(** The LFS storage manager — public interface.

    The module satisfies {!Lfs_vfs.Fs_intf.S}, so workloads and
    benchmarks can drive LFS and the FFS baseline through the same code.

    {[
      let geometry = Lfs_disk.Geometry.wren_iv ~size_bytes:(300 * 1024 * 1024) in
      let disk = Lfs_disk.Disk.create geometry in
      let clock = Lfs_disk.Clock.create () in
      let io = Lfs_disk.Io.create disk clock Lfs_disk.Cpu_model.sun4_260 in
      match Lfs_core.Fs.format io Lfs_core.Config.default with
      | Error e -> failwith e
      | Ok () ->
      match Lfs_core.Fs.mount io with
      | Error e -> failwith e
      | Ok fs ->
          Result.get_ok (Lfs_core.Fs.create fs "/hello");
          Result.get_ok
            (Lfs_core.Fs.write fs "/hello" ~off:0 (Bytes.of_string "world"))
    ]} *)

type t = State.t

val name : string

val io : t -> Lfs_disk.Io.t

(** {1 Lifecycle} *)

val format : Lfs_disk.Io.t -> Config.t -> (unit, string) result
(** Write a fresh file system: superblock, both checkpoint regions, and a
    root directory. *)

val mount : ?config:Config.t -> Lfs_disk.Io.t -> (t, string) result
(** Mount (and recover) the file system on a formatted disk.  Structural
    parameters come from the superblock; runtime parameters (cleaning
    policy and thresholds, write-back ages, cache size, roll-forward)
    from [config] (default {!Config.default}). *)

val unmount : t -> unit
(** Checkpoint and quiesce.  The state must not be used afterwards. *)

(** {1 Namespace and data (see {!Lfs_vfs.Fs_intf.S})} *)

val create : t -> string -> (unit, Lfs_vfs.Errors.t) result
val mkdir : t -> string -> (unit, Lfs_vfs.Errors.t) result
val delete : t -> string -> (unit, Lfs_vfs.Errors.t) result
val rename : t -> string -> string -> (unit, Lfs_vfs.Errors.t) result
val link : t -> string -> string -> (unit, Lfs_vfs.Errors.t) result
val readdir : t -> string -> (string list, Lfs_vfs.Errors.t) result
val stat : t -> string -> (Lfs_vfs.Fs_intf.stat, Lfs_vfs.Errors.t) result
val exists : t -> string -> bool
val write : t -> string -> off:int -> bytes -> (unit, Lfs_vfs.Errors.t) result
val read : t -> string -> off:int -> len:int -> (bytes, Lfs_vfs.Errors.t) result
val truncate : t -> string -> size:int -> (unit, Lfs_vfs.Errors.t) result
val sync : t -> unit
val fsync : t -> string -> (unit, Lfs_vfs.Errors.t) result
val flush_caches : t -> unit

val integrity : t -> string list
(** The always-on sanitizer hook (see {!Lfs_vfs.Fs_intf.S}): runs
    {!Check.fsck} plus {!Check.usage_drift} (filtered by the usage
    array's self-reference slack of two blocks per segment) and renders
    every violation as a string.  Empty means structurally sound. *)

(** {1 LFS-specific control} *)

val checkpoint_now : t -> unit
val clean_now : ?target:int -> t -> int
(** Run the cleaner (the paper's user-initiated cleaning, §4.3.4);
    returns segments freed. *)

val set_policy : t -> Config.policy -> unit
val set_auto_clean : t -> bool -> unit

(** {1 Introspection} *)

val config : t -> Config.t
val layout : t -> Layout.t
val stats : t -> State.lfs_stats
val write_cost : t -> float
val clean_segment_count : t -> int
val segment_report : t -> (int * Seg_usage.seg_state * float) list
(** Per segment: index, state, utilization. *)

val live_bytes : t -> int
(** Total live bytes across all segments (approximate, the cleaning
    hint). *)

type space = {
  capacity_bytes : int;  (** total log payload capacity *)
  live_bytes : int;  (** referenced data and metadata *)
  clean_bytes : int;  (** immediately writable (clean segments) *)
  cleanable_bytes : int;  (** dead bytes the cleaner can reclaim *)
}

val space : t -> space
