let recompute_usage (st : State.t) =
  let layout = st.layout in
  let bs = layout.Layout.block_size in
  let live = Array.make layout.Layout.nsegments 0 in
  let add addr bytes =
    if addr <> Layout.null_addr then begin
      let seg = Layout.segment_of_block layout addr in
      live.(seg) <- live.(seg) + bytes
    end
  in
  for inum = 1 to Imap.max_files st.imap - 1 do
    if Imap.is_allocated st.imap inum then begin
      (match Imap.location st.imap inum with
      | Some (addr, _slot) -> add addr Layout.inode_bytes
      | None -> ());
      let e = Inode_store.find st inum in
      let nblocks = Inode.nblocks ~block_size:bs e.State.ino in
      for blkno = 0 to nblocks - 1 do
        add (Inode_store.bmap_read st e blkno) bs
      done;
      add e.State.ino.Inode.indirect bs;
      if e.State.ino.Inode.dindirect <> Layout.null_addr then begin
        add e.State.ino.Inode.dindirect bs;
        for child = 0 to Layout.ptrs_per_block layout - 1 do
          add (Inode_store.dind_child_addr st e child) bs
        done
      end
    end
  done;
  Array.iter (fun addr -> add addr bs) st.imap_block_addr;
  Array.iter (fun addr -> add addr bs) st.usage_block_addr;
  live

let usage_drift (st : State.t) =
  let truth = recompute_usage st in
  let drift = ref [] in
  for seg = Seg_usage.nsegments st.usage - 1 downto 0 do
    let recorded = Seg_usage.live_bytes st.usage seg in
    if recorded <> truth.(seg) then drift := (seg, recorded, truth.(seg)) :: !drift
  done;
  !drift

type issue =
  | Double_reference of { addr : int; owners : string list }
  | Bad_dir_entry of { dir : int; name : string; inum : int }
  | Bad_nlink of { inum : int; nlink : int; entries : int }
  | Orphan_inode of { inum : int }
  | Unreadable of { inum : int; reason : string }
  | Address_out_of_range of { owner : string; addr : int }

let pp_issue ppf = function
  | Double_reference { addr; owners } ->
      Format.fprintf ppf "block %d referenced by: %s" addr
        (String.concat ", " owners)
  | Bad_dir_entry { dir; name; inum } ->
      Format.fprintf ppf "directory %d entry %S points at unallocated inum %d"
        dir name inum
  | Bad_nlink { inum; nlink; entries } ->
      Format.fprintf ppf "inum %d: nlink %d but %d directory entries" inum
        nlink entries
  | Orphan_inode { inum } ->
      Format.fprintf ppf "inum %d allocated but unreachable" inum
  | Unreadable { inum; reason } ->
      Format.fprintf ppf "inum %d unreadable: %s" inum reason
  | Address_out_of_range { owner; addr } ->
      Format.fprintf ppf "%s references out-of-range address %d" owner addr

let fsck (st : State.t) =
  let layout = st.layout in
  let bs = layout.Layout.block_size in
  let issues = ref [] in
  let report i = issues := i :: !issues in
  (* Block-reference map: every live block must have exactly one owner.
     The active in-memory segment is excluded: its blocks are not yet on
     disk. *)
  let owners : (int, string list) Hashtbl.t = Hashtbl.create 1024 in
  let reference ~owner addr =
    if addr <> Layout.null_addr then begin
      if
        addr < layout.Layout.first_segment_block
        || addr >= layout.Layout.total_blocks
      then report (Address_out_of_range { owner; addr })
      else begin
        let prev = Option.value ~default:[] (Hashtbl.find_opt owners addr) in
        Hashtbl.replace owners addr (owner :: prev)
      end
    end
  in
  (* Walk every allocated inode's pointers. *)
  for inum = 1 to Imap.max_files st.imap - 1 do
    if Imap.is_allocated st.imap inum then begin
      match Inode_store.find st inum with
      | exception Lfs_vfs.Errors.Error e ->
          report (Unreadable { inum; reason = Lfs_vfs.Errors.to_string e })
      | e ->
          let tag kind = Printf.sprintf "inum %d %s" inum kind in
          let nblocks = Inode.nblocks ~block_size:bs e.State.ino in
          for blkno = 0 to nblocks - 1 do
            reference ~owner:(tag (Printf.sprintf "block %d" blkno))
              (Inode_store.bmap_read st e blkno)
          done;
          reference ~owner:(tag "indirect") e.State.ino.Inode.indirect;
          if e.State.ino.Inode.dindirect <> Layout.null_addr then begin
            reference ~owner:(tag "dindirect") e.State.ino.Inode.dindirect;
            for child = 0 to Layout.ptrs_per_block layout - 1 do
              reference
                ~owner:(tag (Printf.sprintf "dind child %d" child))
                (Inode_store.dind_child_addr st e child)
            done
          end
    end
  done;
  (* Inode blocks may be shared by many inodes (one reference per block is
     enough); metadata blocks are single-owner. *)
  let inode_blocks = Hashtbl.create 64 in
  for inum = 1 to Imap.max_files st.imap - 1 do
    if Imap.is_allocated st.imap inum then
      match Imap.location st.imap inum with
      | Some (addr, _) ->
          if not (Hashtbl.mem inode_blocks addr) then begin
            Hashtbl.replace inode_blocks addr ();
            reference ~owner:"inode block" addr
          end
      | None -> ()
  done;
  Array.iteri
    (fun idx addr -> reference ~owner:(Printf.sprintf "imap block %d" idx) addr)
    st.imap_block_addr;
  Array.iteri
    (fun idx addr -> reference ~owner:(Printf.sprintf "usage block %d" idx) addr)
    st.usage_block_addr;
  Hashtbl.iter
    (fun addr os ->
      if List.length os > 1 then report (Double_reference { addr; owners = os }))
    owners;
  (* Namespace walk: every entry must resolve, every allocated inode must
     be referenced exactly once. *)
  let links = Hashtbl.create 256 in
  let rec walk dir =
    List.iter
      (fun (name, inum) ->
        if
          inum <= 0
          || inum >= Imap.max_files st.imap
          || not (Imap.is_allocated st.imap inum)
        then report (Bad_dir_entry { dir; name; inum })
        else begin
          Hashtbl.replace links inum
            (1 + Option.value ~default:0 (Hashtbl.find_opt links inum));
          match Inode_store.find st inum with
          | exception Lfs_vfs.Errors.Error e ->
              report (Unreadable { inum; reason = Lfs_vfs.Errors.to_string e })
          | e ->
              if e.State.ino.Inode.kind = Lfs_vfs.Fs_intf.Directory then
                walk inum
        end)
      (Namespace.entries st ~dir)
  in
  Hashtbl.replace links State.root_inum 1;
  walk State.root_inum;
  Hashtbl.iter
    (fun inum count ->
      match Inode_store.find st inum with
      | e ->
          if e.State.ino.Inode.nlink <> count then
            report
              (Bad_nlink { inum; nlink = e.State.ino.Inode.nlink; entries = count })
      | exception Lfs_vfs.Errors.Error _ -> ())
    links;
  for inum = 1 to Imap.max_files st.imap - 1 do
    if Imap.is_allocated st.imap inum && not (Hashtbl.mem links inum) then
      report (Orphan_inode { inum })
  done;
  List.rev !issues

(* --- Checkpoint/recovery cross-validation ---------------------------- *)

(* Compare two mounted states by their user-visible trees: same names,
   kinds, link counts, sizes and bytes at every path.  [expected] is the
   surviving pre-crash state (or a freshly checkpointed twin); [recovered]
   is what mount-time recovery reconstructed.  Divergence strings name
   the path so a failing recovery test points at the lost update. *)
let recovery_divergence ~(expected : State.t) ~(recovered : State.t) =
  let diffs = ref [] in
  let diff fmt = Printf.ksprintf (fun s -> diffs := s :: !diffs) fmt in
  let ino_of st inum = (Inode_store.find st inum).State.ino in
  let rec walk path a_inum b_inum =
    let a = ino_of expected a_inum and b = ino_of recovered b_inum in
    if a.Inode.kind <> b.Inode.kind then
      diff "%s: kind differs" path
    else begin
      if a.Inode.nlink <> b.Inode.nlink then
        diff "%s: nlink %d, recovered %d" path a.Inode.nlink b.Inode.nlink;
      match a.Inode.kind with
      | Lfs_vfs.Fs_intf.Regular ->
          if a.Inode.size <> b.Inode.size then
            diff "%s: size %d, recovered %d" path a.Inode.size b.Inode.size
          else begin
            let data st inum =
              File_io.read st ~inum ~off:0 ~len:a.Inode.size
            in
            if not (Bytes.equal (data expected a_inum) (data recovered b_inum))
            then diff "%s: content differs" path
          end
      | Lfs_vfs.Fs_intf.Directory ->
          let sorted st dir =
            List.sort compare (Namespace.entries st ~dir)
          in
          let ea = sorted expected a_inum and eb = sorted recovered b_inum in
          let names l = List.map fst l in
          List.iter
            (fun n ->
              if not (List.mem n (names eb)) then
                diff "%s/%s: missing after recovery" path n)
            (names ea);
          List.iter
            (fun n ->
              if not (List.mem n (names ea)) then
                diff "%s/%s: extra entry after recovery" path n)
            (names eb);
          List.iter
            (fun (n, a_child) ->
              match List.assoc_opt n eb with
              | Some b_child -> walk (path ^ "/" ^ n) a_child b_child
              | None -> ())
            ea
    end
  in
  walk "" State.root_inum State.root_inum;
  List.rev !diffs
