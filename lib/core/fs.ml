module Cache = Lfs_cache.Block_cache
module Errors = Lfs_vfs.Errors
module Fs_intf = Lfs_vfs.Fs_intf
module Io = Lfs_disk.Io
module Path = Lfs_vfs.Path
module Profile = Lfs_obs.Profile

type t = State.t

let name = "LFS"
let io (st : t) = st.io
let config (st : t) = st.config
let layout (st : t) = st.layout
let stats (st : t) = State.stats_view st

(* Flush user data, alternating with cleaning passes whenever the log
   runs out of clean segments.  Raises [Enospc] only when the cleaner can
   no longer free anything (the disk is genuinely full of live data). *)
let rec flush_user (st : t) =
  try Write_path.flush_data st ~privilege:`User
  with Errors.Error Errors.Enospc ->
    (* Retry only if cleaning netted segments above the reserve —
       otherwise flushing would fail identically and loop forever. *)
    if
      Cleaner.clean_to_target st > 0
      && Seg_usage.nclean st.usage > st.config.Config.reserve_segments
    then flush_user st
    else Errors.raise_ Errors.Enospc

(* Checkpoints outside the cleaner run at user privilege so they can
   never starve the cleaner of reserve segments; they too alternate with
   cleaning passes when space is tight. *)
let rec checkpoint_user (st : t) =
  try Write_path.checkpoint ~privilege:`User st
  with Errors.Error Errors.Enospc ->
    if
      Cleaner.clean_to_target st > 0
      && Seg_usage.nclean st.usage > st.config.Config.reserve_segments
    then checkpoint_user st
    else Errors.raise_ Errors.Enospc

(* The triggers of §4.3.5 plus periodic checkpointing, checked on the way
   out of every operation.  With [can_fail:false] (read-only operations
   and deletes) an out-of-space flush leaves the data buffered in the
   cache instead of failing the operation. *)
let housekeep ?(can_fail = true) (st : t) =
  let attempt f = if can_fail then f () else try f () with Errors.Error Errors.Enospc -> () in
  if
    st.auto_clean && (not st.cleaning)
    && Seg_usage.nclean st.usage < st.config.Config.clean_threshold_segments
  then attempt (fun () -> ignore (Cleaner.clean_to_target st));
  if Cache.over_capacity st.cache && not st.flushing then
    attempt (fun () -> flush_user st);
  (match Cache.oldest_dirty_age_us st.cache with
  | Some age when age >= st.config.Config.writeback_age_us && not st.flushing ->
      attempt (fun () ->
          flush_user st;
          Segwriter.flush_active st)
  | Some _ | None -> ());
  if
    Io.now_us st.io - st.last_checkpoint_us
    >= st.config.Config.checkpoint_interval_us
    && not st.cleaning
  then attempt (fun () -> checkpoint_user st)

let split_parent path =
  match Path.parent_and_name path with
  | Ok v -> v
  | Error e -> Errors.raise_ e

let resolve_path (st : t) path =
  match Path.split path with
  | Ok components -> Namespace.resolve st components
  | Error e -> Errors.raise_ e

let make_node (st : t) path kind op =
  Errors.wrap (fun () ->
      Profile.with_op st.bus op @@ fun () ->
      Io.charge_syscall st.io;
      let parent, fname = split_parent path in
      let dir = Namespace.resolve_dir st parent in
      (match Namespace.lookup st ~dir fname with
      | Some _ -> Errors.raise_ (Errors.Eexist path)
      | None -> ());
      let now = Io.now_us st.io in
      let inum =
        match Imap.alloc st.imap ~now_us:now with
        | Some i -> i
        | None -> Errors.raise_ Errors.Enospc
      in
      let ino = Inode.create ~inum ~kind ~now_us:now in
      ignore (Inode_store.add_new st ino);
      Namespace.add st ~dir fname inum;
      housekeep st)

let create st path = make_node st path Fs_intf.Regular `Create
let mkdir st path = make_node st path Fs_intf.Directory `Mkdir

let delete (st : t) path =
  Errors.wrap (fun () ->
      Profile.with_op st.bus `Delete @@ fun () ->
      Io.charge_syscall st.io;
      let parent, fname = split_parent path in
      let dir = Namespace.resolve_dir st parent in
      let inum =
        match Namespace.lookup st ~dir fname with
        | Some i -> i
        | None -> Errors.raise_ (Errors.Enoent path)
      in
      let e = Inode_store.find st inum in
      if
        e.ino.Inode.kind = Fs_intf.Directory
        && not (Namespace.is_empty st ~dir:inum)
      then Errors.raise_ (Errors.Enotempty path);
      Namespace.remove st ~dir fname;
      (* Hard links: the inode and its data live until the last name is
         gone. *)
      if e.ino.Inode.nlink > 1 then begin
        e.ino.Inode.nlink <- e.ino.Inode.nlink - 1;
        e.ino.Inode.mtime_us <- Io.now_us st.io;
        Inode_store.mark_dirty e
      end
      else Inode_store.delete st inum;
      (* A delete must succeed even on a full disk — it is how space is
         freed. *)
      housekeep ~can_fail:false st)

let rename (st : t) src dst =
  Errors.wrap (fun () ->
      Profile.with_op st.bus `Rename @@ fun () ->
      Io.charge_syscall st.io;
      let src_parent, src_name = split_parent src in
      let dst_parent, dst_name = split_parent dst in
      if not (Path.valid_name dst_name) then
        Errors.raise_ (Errors.Einval dst);
      (* Moving a directory under itself would orphan the subtree. *)
      let src_components = src_parent @ [ src_name ] in
      let rec is_prefix a b =
        match (a, b) with
        | [], _ -> true
        | x :: a', y :: b' -> x = y && is_prefix a' b'
        | _ :: _, [] -> false
      in
      if is_prefix src_components (dst_parent @ [ dst_name ]) then
        Errors.raise_ (Errors.Einval "cannot move a directory beneath itself");
      let src_dir = Namespace.resolve_dir st src_parent in
      let inum =
        match Namespace.lookup st ~dir:src_dir src_name with
        | Some i -> i
        | None -> Errors.raise_ (Errors.Enoent src)
      in
      let dst_dir = Namespace.resolve_dir st dst_parent in
      (match Namespace.lookup st ~dir:dst_dir dst_name with
      | Some _ -> Errors.raise_ (Errors.Eexist dst)
      | None -> ());
      Namespace.remove st ~dir:src_dir src_name;
      Namespace.add st ~dir:dst_dir dst_name inum;
      housekeep st)

let link (st : t) src dst =
  Errors.wrap (fun () ->
      Profile.with_op st.bus `Link @@ fun () ->
      Io.charge_syscall st.io;
      let src_inum = resolve_path st src in
      let e = Inode_store.find st src_inum in
      if e.ino.Inode.kind = Fs_intf.Directory then
        Errors.raise_ (Errors.Eisdir src);
      let dst_parent, dst_name = split_parent dst in
      let dst_dir = Namespace.resolve_dir st dst_parent in
      (match Namespace.lookup st ~dir:dst_dir dst_name with
      | Some _ -> Errors.raise_ (Errors.Eexist dst)
      | None -> ());
      Namespace.add st ~dir:dst_dir dst_name src_inum;
      e.ino.Inode.nlink <- e.ino.Inode.nlink + 1;
      e.ino.Inode.mtime_us <- Io.now_us st.io;
      Inode_store.mark_dirty e;
      housekeep st)

let regular_inum (st : t) path =
  let inum = resolve_path st path in
  let e = Inode_store.find st inum in
  if e.ino.Inode.kind = Fs_intf.Directory then
    Errors.raise_ (Errors.Eisdir path);
  inum

let write (st : t) path ~off data =
  Errors.wrap (fun () ->
      Profile.with_op st.bus `Write @@ fun () ->
      Io.charge_syscall st.io;
      let inum = regular_inum st path in
      File_io.write st ~inum ~off data;
      housekeep st)

let read (st : t) path ~off ~len =
  Errors.wrap (fun () ->
      Profile.with_op st.bus `Read @@ fun () ->
      Io.charge_syscall st.io;
      let inum = regular_inum st path in
      let data = File_io.read st ~inum ~off ~len in
      housekeep ~can_fail:false st;
      data)

let truncate (st : t) path ~size =
  Errors.wrap (fun () ->
      Profile.with_op st.bus `Truncate @@ fun () ->
      Io.charge_syscall st.io;
      let inum = regular_inum st path in
      File_io.truncate st ~inum ~size;
      housekeep ~can_fail:false st)

let stat (st : t) path =
  Errors.wrap (fun () ->
      Profile.with_op st.bus `Stat @@ fun () ->
      Io.charge_syscall st.io;
      let inum = resolve_path st path in
      let e = Inode_store.find st inum in
      {
        Fs_intf.inum;
        kind = e.ino.Inode.kind;
        size = e.ino.Inode.size;
        nlink = e.ino.Inode.nlink;
        mtime_us = e.ino.Inode.mtime_us;
        atime_us = Imap.atime_us st.imap inum;
      })

let readdir (st : t) path =
  Errors.wrap (fun () ->
      Profile.with_op st.bus `Readdir @@ fun () ->
      Io.charge_syscall st.io;
      let inum = resolve_path st path in
      Namespace.entries st ~dir:inum
      |> List.map fst
      |> List.sort String.compare)

let exists (st : t) path =
  match Errors.wrap (fun () -> resolve_path st path) with
  | Ok _ -> true
  | Error _ -> false

let sync (st : t) =
  Profile.with_op st.bus `Sync @@ fun () ->
  Io.charge_syscall st.io;
  let rec attempt () =
    try Write_path.sync st ~privilege:`User
    with Errors.Error Errors.Enospc ->
      (* Try to make room; if the disk is genuinely full the dirty data
         stays buffered — there is nowhere to put it. *)
      if
        Cleaner.clean_to_target st > 0
        && Seg_usage.nclean st.usage > st.config.Config.reserve_segments
      then attempt ()
  in
  attempt ()

let fsync (st : t) path =
  Errors.wrap (fun () ->
      Profile.with_op st.bus `Fsync @@ fun () ->
      Io.charge_syscall st.io;
      let inum = resolve_path st path in
      let rec attempt () =
        try
          Write_path.flush_file st ~privilege:`User inum;
          (* The whole chain of directory entries leading to the name
             must be durable, or the file would be unreachable after a
             crash. *)
          (match Path.parent_and_name path with
          | Ok (parent, _) ->
              let rec flush_chain dir = function
                | [] -> Write_path.flush_file st ~privilege:`User dir
                | name :: rest ->
                    Write_path.flush_file st ~privilege:`User dir;
                    (match Namespace.lookup st ~dir name with
                    | Some child -> flush_chain child rest
                    | None -> ())
              in
              flush_chain State.root_inum parent
          | Error _ -> ());
          Segwriter.flush_active st;
          Io.drain st.io
        with Errors.Error Errors.Enospc ->
          if
            Cleaner.clean_to_target st > 0
            && Seg_usage.nclean st.usage > st.config.Config.reserve_segments
          then attempt ()
          else Errors.raise_ Errors.Enospc
      in
      attempt ())

let flush_caches (st : t) =
  sync st;
  Cache.drop_clean st.cache;
  Lfs_cache.Readahead.reset st.readahead;
  if Cache.dirty_count st.cache = 0 then Inode_store.clear_clean st

let checkpoint_now (st : t) = checkpoint_user st
let clean_now ?target (st : t) = Cleaner.clean_to_target ?target st
let set_policy (st : t) policy = st.policy <- policy
let set_auto_clean (st : t) on = st.auto_clean <- on
let write_cost (st : t) = Cleaner.write_cost st
let clean_segment_count (st : t) = Seg_usage.nclean st.usage

let segment_report (st : t) =
  List.init (Seg_usage.nsegments st.usage) (fun seg ->
      (seg, Seg_usage.state st.usage seg, Seg_usage.utilization st.usage seg))

let live_bytes (st : t) = Seg_usage.total_live_bytes st.usage

type space = {
  capacity_bytes : int;
  live_bytes : int;
  clean_bytes : int;
  cleanable_bytes : int;
}

let space (st : t) =
  let seg_payload =
    st.layout.Layout.payload_blocks * st.layout.Layout.block_size
  in
  let capacity_bytes = st.layout.Layout.nsegments * seg_payload in
  let live = Seg_usage.total_live_bytes st.usage in
  let clean_bytes = Seg_usage.nclean st.usage * seg_payload in
  {
    capacity_bytes;
    live_bytes = live;
    clean_bytes;
    cleanable_bytes = max 0 (capacity_bytes - live - clean_bytes);
  }

(* Usage-drift tolerance: the usage array accounts for its own blocks,
   so recording it moves up to two blocks' worth of live bytes per
   segment relative to the recomputed ground truth. *)
let drift_tolerance (st : t) = 2 * st.layout.Layout.block_size

let integrity (st : t) =
  let structural =
    List.map (Format.asprintf "%a" Check.pp_issue) (Check.fsck st)
  in
  let tolerance = drift_tolerance st in
  let drift =
    List.filter_map
      (fun (seg, recorded, truth) ->
        if abs (recorded - truth) > tolerance then
          Some
            (Printf.sprintf
               "segment %d usage drift: recorded %d live bytes, recomputed %d"
               seg recorded truth)
        else None)
      (Check.usage_drift st)
  in
  structural @ drift

let unmount (st : t) =
  (try checkpoint_user st
   with Errors.Error Errors.Enospc ->
     (* Leave the data for roll-forward; there is no room to checkpoint. *)
     Write_path.sync st ~privilege:`System);
  Io.drain st.io

(* Lifecycle *)

let format io config =
  let geometry = Io.geometry io in
  match Layout.compute config geometry with
  | Error _ as e -> e
  | Ok layout ->
      Io.sync_write io ~sector:0 (Layout.encode_superblock layout);
      let st = State.create io config layout in
      let now = Io.now_us io in
      Imap.alloc_specific st.imap State.root_inum ~now_us:now;
      let root =
        Inode.create ~inum:State.root_inum ~kind:Fs_intf.Directory ~now_us:now
      in
      ignore (Inode_store.add_new st root);
      (* Two checkpoints so both regions hold a valid image from day
         one — a torn region write can then always fall back. *)
      Write_path.checkpoint st;
      Write_path.checkpoint st;
      Io.drain io;
      Ok ()

let mount ?(config = Config.default) io =
  let geometry = Io.geometry io in
  (* The on-disk block size is not known before the superblock is read,
     so read generously (the CRC in the superblock covers exactly one
     block; decoding tolerates trailing data). *)
  let sector_size = geometry.Lfs_disk.Geometry.sector_size in
  let count = min geometry.Lfs_disk.Geometry.sectors (65536 / sector_size) in
  let sb =
    try Io.sync_read io ~sector:0 ~count
    with Io.Read_failed _ ->
      (* A bad sector elsewhere in the generous window must not take the
         mount down.  Reassemble it sector by sector, zero-filling what
         the device cannot deliver: the CRC covers only the superblock
         block itself, so an unreadable sector there surfaces as a
         decode error below, and garbage anywhere else is ignored. *)
      let buf = Bytes.make (count * sector_size) '\000' in
      for s = 0 to count - 1 do
        match Io.sync_read io ~sector:s ~count:1 with
        | data -> Bytes.blit data 0 buf (s * sector_size) sector_size
        | exception Io.Read_failed _ -> ()
      done;
      buf
  in
  match Layout.decode_superblock sb geometry with
  | Error _ as e -> e
  | Ok layout ->
      let config =
        {
          config with
          Config.block_size = layout.Layout.block_size;
          segment_size = layout.Layout.seg_blocks * layout.Layout.block_size;
          max_files = layout.Layout.max_files;
        }
      in
      Recovery.recover io config layout
