(** Shared mutable state of a mounted LFS instance.

    This module only declares the record types threaded through the
    operational modules ({!Block_io}, {!Inode_store}, {!Segwriter},
    {!Write_path}, {!File_io}, {!Namespace}, {!Cleaner}, {!Recovery});
    behaviour lives there.  The public face of the library is {!Fs}. *)

module Bitset = Lfs_util.Bitset
module Metrics = Lfs_obs.Metrics
module Bus = Lfs_obs.Bus

(** Cache-owner conventions.  Real files use their (positive) inum;
    by-address blocks (inode blocks, indirect blocks read from disk) use
    {!owner_raw} with the disk address as the block number. *)
let owner_raw = -3

(** In-memory view of one file: the inode plus lazily-loaded pointer
    maps.  The maps mirror the on-disk indirect blocks; dirty flags say
    which of them must be rewritten to the log at the next flush. *)
type itable_entry = {
  ino : Inode.t;
  mutable ino_dirty : bool;
  mutable ind_map : int array option;  (** single-indirect pointers *)
  mutable ind_dirty : bool;
  mutable dind_top : int array option;  (** double-indirect child addresses *)
  mutable dind_top_dirty : bool;
  mutable dind_children : int array option array;
      (** parsed double-indirect children (lazy; empty array until the
          file grows past the single-indirect range) *)
  mutable dind_child_dirty : Bitset.t;
}

(** The segment being assembled in memory (§4.1).  [seg = -1] means no
    segment is currently active. *)
type segbuf = {
  mutable seg : int;
  mutable buf : bytes;  (** [segment_size] bytes; payload starts at block 1 *)
  mutable nblocks : int;  (** payload blocks filled *)
  mutable entries_rev : Summary.entry list;
}

type lfs_stats = {
  mutable segments_written : int;
  mutable partial_segments : int;
  mutable blocks_logged : int;  (** payload blocks appended to the log *)
  mutable segments_cleaned : int;
  mutable cleaner_bytes_read : int;
  mutable cleaner_bytes_moved : int;
  mutable cleaner_passes : int;
  mutable checkpoints : int;
  mutable rollforward_segments : int;
}

(* The registry counters behind {!lfs_stats}.  Operational modules bump
   these; the record above is only a compatibility view. *)
type lfs_counters = {
  c_segments_written : Metrics.counter;
  c_partial_segments : Metrics.counter;
  c_blocks_logged : Metrics.counter;
  c_segments_cleaned : Metrics.counter;
  c_cleaner_bytes_read : Metrics.counter;
  c_cleaner_bytes_moved : Metrics.counter;
  c_cleaner_passes : Metrics.counter;
  c_checkpoints : Metrics.counter;
  c_rollforward_segments : Metrics.counter;
}

(** Write privilege: [`User] writes may not consume the reserve segments
    (so the cleaner always has room to work); [`System] writes (cleaner,
    checkpoint) may. *)
type privilege = [ `User | `System ]

type t = {
  io : Lfs_disk.Io.t;
  config : Config.t;
  layout : Layout.t;
  cache : Lfs_cache.Block_cache.t;
  readahead : Lfs_cache.Readahead.t;
  imap : Imap.t;
  usage : Seg_usage.t;
  itable : (int, itable_entry) Hashtbl.t;
  seg : segbuf;
  mutable next_seq : int;  (** sequence number for the next segment write *)
  mutable tail_segment : int;  (** last segment written; -1 if none *)
  mutable imap_block_addr : int array;
  mutable usage_block_addr : int array;
  mutable last_checkpoint_us : int;
  mutable last_cp_seq : int;
      (** highest segment sequence number covered by an on-disk
          checkpoint region; roll-forward starts after it *)
  mutable cp_flip : bool;  (** next checkpoint goes to region B *)
  mutable cleaning : bool;  (** re-entrancy guard for the cleaner *)
  mutable flushing : bool;  (** re-entrancy guard for the write path *)
  mutable policy : Config.policy;  (** runtime-adjustable cleaning policy *)
  mutable auto_clean : bool;  (** runtime-adjustable *)
  metrics : Metrics.t;  (** the I/O stack's shared registry *)
  bus : Bus.t;  (** the I/O stack's trace bus *)
  counters : lfs_counters;
}

let root_inum = 1

let create io config layout =
  let metrics = Lfs_disk.Io.metrics io in
  (* A mount starts its operation counters from zero even when the
     underlying io is reused (remount), matching the old per-mount
     [lfs_stats] record.  Registration is get-or-create, so the registry
     keeps one set of [lfs.*] instruments across remounts. *)
  Metrics.reset_prefix metrics "lfs.";
  let counters =
    {
      c_segments_written = Metrics.counter metrics "lfs.segments_written";
      c_partial_segments = Metrics.counter metrics "lfs.partial_segments";
      c_blocks_logged = Metrics.counter metrics "lfs.blocks_logged";
      c_segments_cleaned = Metrics.counter metrics "lfs.segments_cleaned";
      c_cleaner_bytes_read = Metrics.counter metrics "lfs.cleaner_bytes_read";
      c_cleaner_bytes_moved = Metrics.counter metrics "lfs.cleaner_bytes_moved";
      c_cleaner_passes = Metrics.counter metrics "lfs.cleaner_passes";
      c_checkpoints = Metrics.counter metrics "lfs.checkpoints";
      c_rollforward_segments =
        Metrics.counter metrics "lfs.rollforward_segments";
    }
  in
  let usage = Seg_usage.create layout in
  Metrics.gauge metrics "lfs.clean_segments" (fun () ->
      float_of_int (Seg_usage.nclean usage));
  Metrics.gauge metrics "lfs.live_bytes" (fun () ->
      float_of_int (Seg_usage.total_live_bytes usage));
  {
    io;
    config;
    layout;
    cache =
      Lfs_cache.Block_cache.create ~capacity_blocks:config.Config.cache_blocks
        ~metrics ~bus:(Lfs_disk.Io.bus io)
        (Lfs_disk.Io.clock io);
    readahead =
      Lfs_cache.Readahead.create ~max_window:config.Config.readahead_blocks
        metrics;
    imap = Imap.create layout;
    usage;
    itable = Hashtbl.create 256;
    seg =
      {
        seg = -1;
        buf = Bytes.create (layout.Layout.seg_blocks * layout.Layout.block_size);
        nblocks = 0;
        entries_rev = [];
      };
    next_seq = 1;
    tail_segment = -1;
    imap_block_addr = Array.make layout.Layout.n_imap_blocks Layout.null_addr;
    usage_block_addr = Array.make layout.Layout.n_usage_blocks Layout.null_addr;
    last_checkpoint_us = 0;
    last_cp_seq = 0;
    cp_flip = false;
    cleaning = false;
    flushing = false;
    policy = config.Config.policy;
    auto_clean = config.Config.auto_clean;
    metrics;
    bus = Lfs_disk.Io.bus io;
    counters;
  }

(** Build the compatibility [lfs_stats] view from the registry counters. *)
let stats_view t =
  let v c = Metrics.value c in
  {
    segments_written = v t.counters.c_segments_written;
    partial_segments = v t.counters.c_partial_segments;
    blocks_logged = v t.counters.c_blocks_logged;
    segments_cleaned = v t.counters.c_segments_cleaned;
    cleaner_bytes_read = v t.counters.c_cleaner_bytes_read;
    cleaner_bytes_moved = v t.counters.c_cleaner_bytes_moved;
    cleaner_passes = v t.counters.c_cleaner_passes;
    checkpoints = v t.counters.c_checkpoints;
    rollforward_segments = v t.counters.c_rollforward_segments;
  }

let fresh_itable_entry ino =
  {
    ino;
    ino_dirty = false;
    ind_map = None;
    ind_dirty = false;
    dind_top = None;
    dind_top_dirty = false;
    dind_children = [||];
    dind_child_dirty = Bitset.create 0;
  }
