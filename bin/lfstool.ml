(* lfstool: manipulate LFS disk images kept in host files.

   The simulated disk's media is a flat byte array, so an LFS file system
   can live in an ordinary file:

     lfstool format img.lfs --size-mb 64
     lfstool put img.lfs /notes.txt README.md
     lfstool ls img.lfs /
     lfstool cat img.lfs /notes.txt
     lfstool segments img.lfs
     lfstool fsck img.lfs
*)

module Clock = Lfs_disk.Clock
module Config = Lfs_core.Config
module Cpu_model = Lfs_disk.Cpu_model
module Disk = Lfs_disk.Disk
module Fs = Lfs_core.Fs
module Geometry = Lfs_disk.Geometry
module Io = Lfs_disk.Io

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let make_io ~size_bytes =
  let geometry = Geometry.wren_iv ~size_bytes in
  Io.create (Disk.create geometry) (Clock.create ()) Cpu_model.free

let load_image path =
  let media = read_file path in
  let io = make_io ~size_bytes:(String.length media) in
  Disk.restore (Io.disk io) (Bytes.of_string media);
  io

let save_image io path =
  write_file path (Bytes.to_string (Disk.snapshot (Io.disk io)))

let mount_image path =
  let io = load_image path in
  match Fs.mount io with
  | Ok fs -> fs
  | Error e ->
      Printf.eprintf "lfstool: %s: %s\n" path e;
      exit 1

let or_die = function
  | Ok v -> v
  | Error e ->
      Printf.eprintf "lfstool: %s\n" (Lfs_vfs.Errors.to_string e);
      exit 1

(* Commands *)

let cmd_format image size_mb block_size segment_size =
  let io = make_io ~size_bytes:(size_mb * 1024 * 1024) in
  let config = { Config.default with Config.block_size; segment_size } in
  (match Fs.format io config with
  | Ok () -> ()
  | Error e ->
      Printf.eprintf "lfstool: format: %s\n" e;
      exit 1);
  save_image io image;
  Printf.printf "formatted %s (%d MB, %d B blocks, %d KB segments)\n" image
    size_mb block_size (segment_size / 1024)

let cmd_ls image path =
  let fs = mount_image image in
  List.iter
    (fun name ->
      let full = if path = "/" then "/" ^ name else path ^ "/" ^ name in
      let stat = or_die (Fs.stat fs full) in
      Printf.printf "%s %8d  %s\n"
        (match stat.Lfs_vfs.Fs_intf.kind with
        | Lfs_vfs.Fs_intf.Directory -> "d"
        | Lfs_vfs.Fs_intf.Regular -> "-")
        stat.Lfs_vfs.Fs_intf.size name)
    (or_die (Fs.readdir fs path))

let cmd_cat image path =
  let fs = mount_image image in
  let stat = or_die (Fs.stat fs path) in
  let data = or_die (Fs.read fs path ~off:0 ~len:stat.Lfs_vfs.Fs_intf.size) in
  print_string (Bytes.to_string data)

let cmd_put image path hostfile =
  let fs = mount_image image in
  let data = read_file hostfile in
  if not (Fs.exists fs path) then or_die (Fs.create fs path);
  or_die (Fs.truncate fs path ~size:0);
  or_die (Fs.write fs path ~off:0 (Bytes.of_string data));
  Fs.unmount fs;
  save_image (Fs.io fs) image;
  Printf.printf "wrote %d bytes to %s:%s\n" (String.length data) image path

let cmd_mkdir image path =
  let fs = mount_image image in
  or_die (Fs.mkdir fs path);
  Fs.unmount fs;
  save_image (Fs.io fs) image

let cmd_rm image path =
  let fs = mount_image image in
  or_die (Fs.delete fs path);
  Fs.unmount fs;
  save_image (Fs.io fs) image

let cmd_info image =
  let fs = mount_image image in
  let layout = Fs.layout fs in
  Format.printf "%a@." Lfs_core.Layout.pp layout;
  let stats = Fs.stats fs in
  Printf.printf "clean segments : %d / %d\n" (Fs.clean_segment_count fs)
    layout.Lfs_core.Layout.nsegments;
  Printf.printf "live data      : %s\n"
    (Lfs_util.Table.fmt_bytes (Fs.live_bytes fs));
  Printf.printf "checkpoints    : %d, roll-forward segments: %d\n"
    stats.Lfs_core.State.checkpoints
    stats.Lfs_core.State.rollforward_segments

let cmd_segments image =
  let fs = mount_image image in
  List.iter
    (fun (seg, state, util) ->
      Printf.printf "seg %4d  %-6s  %3.0f%%  %s\n" seg
        (match state with
        | Lfs_core.Seg_usage.Clean -> "clean"
        | Lfs_core.Seg_usage.Dirty -> "dirty"
        | Lfs_core.Seg_usage.Active -> "active")
        (util *. 100.0)
        (String.make (int_of_float (util *. 50.0)) '#'))
    (Fs.segment_report fs)

let cmd_clean image =
  let fs = mount_image image in
  let freed = Fs.clean_now ~target:max_int fs in
  Fs.unmount fs;
  save_image (Fs.io fs) image;
  Printf.printf "freed %d segments; %d now clean\n" freed
    (Fs.clean_segment_count fs)

let cmd_get image path hostfile =
  let fs = mount_image image in
  let stat = or_die (Fs.stat fs path) in
  let data = or_die (Fs.read fs path ~off:0 ~len:stat.Lfs_vfs.Fs_intf.size) in
  write_file hostfile (Bytes.to_string data);
  Printf.printf "copied %d bytes from %s:%s to %s\n" (Bytes.length data) image
    path hostfile

let cmd_tree image =
  let fs = mount_image image in
  let rec walk indent path =
    List.iter
      (fun name ->
        let full = if path = "/" then "/" ^ name else path ^ "/" ^ name in
        let stat = or_die (Fs.stat fs full) in
        match stat.Lfs_vfs.Fs_intf.kind with
        | Lfs_vfs.Fs_intf.Directory ->
            Printf.printf "%s%s/\n" indent name;
            walk (indent ^ "  ") full
        | Lfs_vfs.Fs_intf.Regular ->
            Printf.printf "%s%s (%d bytes)\n" indent name
              stat.Lfs_vfs.Fs_intf.size)
      (or_die (Fs.readdir fs path))
  in
  print_endline "/";
  walk "  " "/"

let cmd_df image =
  let fs = mount_image image in
  let s = Fs.space fs in
  Printf.printf "capacity : %s\n" (Lfs_util.Table.fmt_bytes s.Fs.capacity_bytes);
  Printf.printf "live     : %s (%.0f%%)\n"
    (Lfs_util.Table.fmt_bytes s.Fs.live_bytes)
    (100.0 *. float_of_int s.Fs.live_bytes /. float_of_int s.Fs.capacity_bytes);
  Printf.printf "clean    : %s in %d segments\n"
    (Lfs_util.Table.fmt_bytes s.Fs.clean_bytes)
    (Fs.clean_segment_count fs);
  Printf.printf "cleanable: %s (dead bytes in dirty segments)\n"
    (Lfs_util.Table.fmt_bytes s.Fs.cleanable_bytes)

(* A small fsck: walk the namespace, read every file completely, then run
   the deep structural pass (double references, wild addresses, orphans)
   and the segment-usage drift check. *)
let cmd_fsck image json =
  let fs = mount_image image in
  let files = ref 0 and dirs = ref 0 and bytes = ref 0 in
  let problems = ref [] in
  let problem fmt =
    Printf.ksprintf (fun s -> problems := s :: !problems) fmt
  in
  let rec walk path =
    match Fs.readdir fs path with
    | Error e -> problem "readdir %s: %s" path (Lfs_vfs.Errors.to_string e)
    | Ok names ->
        List.iter
          (fun name ->
            let full = if path = "/" then "/" ^ name else path ^ "/" ^ name in
            match Fs.stat fs full with
            | Error e ->
                problem "stat %s: %s" full (Lfs_vfs.Errors.to_string e)
            | Ok stat -> (
                match stat.Lfs_vfs.Fs_intf.kind with
                | Lfs_vfs.Fs_intf.Directory ->
                    incr dirs;
                    walk full
                | Lfs_vfs.Fs_intf.Regular -> (
                    incr files;
                    match
                      Fs.read fs full ~off:0 ~len:stat.Lfs_vfs.Fs_intf.size
                    with
                    | Ok data -> bytes := !bytes + Bytes.length data
                    | Error e ->
                        problem "read %s: %s" full
                          (Lfs_vfs.Errors.to_string e))))
          names
  in
  walk "/";
  List.iter
    (fun issue ->
      problem "%s" (Format.asprintf "%a" Lfs_core.Check.pp_issue issue))
    (Lfs_core.Check.fsck fs);
  (* Segment-usage accounting vs ground truth.  Small drift is expected
     (the usage array cannot count its own blocks exactly while they are
     being rewritten); the tolerance matches the always-on sanitizer. *)
  let layout = Fs.layout fs in
  let tolerance = 2 * layout.Lfs_core.Layout.block_size in
  let drift = Lfs_core.Check.usage_drift fs in
  List.iter
    (fun (seg, recorded, recomputed) ->
      if abs (recorded - recomputed) > tolerance then
        problem "segment %d usage drift: recorded %d live bytes, recomputed %d"
          seg recorded recomputed)
    drift;
  let problems = List.rev !problems in
  if json then begin
    let module J = Lfs_obs.Json in
    print_string
      (J.to_string_pretty
         (J.Obj
            [
              ("image", J.String image);
              ("directories", J.Int !dirs);
              ("files", J.Int !files);
              ("bytes", J.Int !bytes);
              ("problems", J.List (List.map (fun s -> J.String s) problems));
              ( "usage_drift",
                J.List
                  (List.map
                     (fun (seg, recorded, recomputed) ->
                       J.Obj
                         [
                           ("segment", J.Int seg);
                           ("recorded", J.Int recorded);
                           ("recomputed", J.Int recomputed);
                         ])
                     drift) );
              ("clean", J.Bool (problems = []));
            ]))
  end
  else begin
    List.iter (fun s -> Printf.printf "fsck: %s\n" s) problems;
    Printf.printf "fsck: %d directories, %d files, %s of data, %d problems\n"
      !dirs !files
      (Lfs_util.Table.fmt_bytes !bytes)
      (List.length problems)
  end;
  if problems <> [] then exit 1

let cmd_dump_segment image seg =
  let fs = mount_image image in
  print_string (Lfs_core.Inspect.describe_segment fs (int_of_string seg))

let cmd_checkpoints image =
  let fs = mount_image image in
  print_string (Lfs_core.Inspect.describe_checkpoints fs)

(* Observability surfaces *)

module Bus = Lfs_obs.Bus
module Event = Lfs_obs.Event
module Json = Lfs_obs.Json
module Metrics = Lfs_obs.Metrics
module Profile = Lfs_obs.Profile
module Benchdiff = Lfs_obs.Benchdiff
module Driver = Lfs_workload.Driver
module Setup = Lfs_workload.Setup

let cmd_stats image json =
  let fs = mount_image image in
  let snap = Metrics.snapshot (Io.metrics (Fs.io fs)) in
  if json then print_endline (Json.to_string_pretty (Metrics.to_json snap))
  else print_string (Metrics.render snap)

(* Trace ops are colon-separated tokens so a whole scenario fits on one
   command line: mkdir:/d create:/d/f write:/d/f:8192 read:/d/f
   delete:/d/f sync *)
let parse_op tok =
  match String.split_on_char ':' tok with
  | [ "mkdir"; p ] -> `Mkdir p
  | [ "create"; p ] -> `Create p
  | [ "write"; p; n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 0 -> `Write (p, n)
      | _ ->
          Printf.eprintf "lfstool: trace: bad write size in %S\n" tok;
          exit 2)
  | [ "read"; p ] -> `Read p
  | [ "delete"; p ] -> `Delete p
  | [ "sync" ] -> `Sync
  | _ ->
      Printf.eprintf
        "lfstool: trace: bad op %S (want mkdir:P create:P write:P:N read:P \
         delete:P sync)\n"
        tok;
      exit 2

let apply_op inst = function
  | `Mkdir p -> Driver.mkdir inst p
  | `Create p -> Driver.create inst p
  | `Write (p, n) -> Driver.write inst p ~off:0 (Driver.content ~seed:7 n)
  | `Read p ->
      let stat = Driver.stat inst p in
      ignore (Driver.read inst p ~off:0 ~len:stat.Lfs_vfs.Fs_intf.size)
  | `Delete p -> Driver.delete inst p
  | `Sync -> Driver.sync inst

(* Replay [ops] on [inst] with a sink attached (a ring of [limit]
   records when given, unbounded otherwise), and emit the captured
   events as JSONL (one object per line, on stdout).  A truncated
   capture is never silent: the JSONL stream ends in a
   [trace_truncated] trailer and the stderr footer reports the drop
   count. *)
let trace_instance ?limit inst ops =
  let bus = Driver.bus inst in
  let sink = Bus.attach ?capacity:limit bus in
  Bus.emit bus
    (Event.Note
       { name = "trace_begin"; fields = [ ("system", Json.String (Driver.label inst)) ] });
  List.iter (apply_op inst) ops;
  Bus.emit bus
    (Event.Note
       { name = "trace_end"; fields = [ ("system", Json.String (Driver.label inst)) ] });
  let records = Bus.records sink in
  let dropped = Bus.dropped sink in
  Bus.detach bus sink;
  print_string (Event.to_jsonl ~dropped records);
  if dropped > 0 then
    Printf.eprintf "trace: %s: kept newest %d events, dropped %d oldest\n"
      (Driver.label inst) (List.length records) dropped
  else
    Printf.eprintf "trace: %s: %d events\n" (Driver.label inst)
      (List.length records)

(* The paper's Figure 1 scenario as a default: create two small files
   and sync.  On LFS the trace ends in one sequential segment write; on
   FFS (with --ffs) the same ops show synchronous inode and directory
   writes scattered over the disk. *)
let default_trace_ops =
  [
    `Create "/trace0"; `Write ("/trace0", 1024);
    `Create "/trace1"; `Write ("/trace1", 1024); `Sync;
  ]

let cmd_trace image with_ffs limit ops =
  (match limit with
  | Some n when n <= 0 ->
      Printf.eprintf "lfstool: trace: --limit must be positive\n";
      exit 2
  | Some _ | None -> ());
  let ops =
    match ops with [] -> default_trace_ops | toks -> List.map parse_op toks
  in
  let fs = mount_image image in
  (* Tracing replays the ops in memory only; the image file is left
     untouched. *)
  trace_instance ?limit (Lfs_vfs.Fs_intf.Instance ((module Fs), fs)) ops;
  if with_ffs then begin
    let size_bytes =
      let g = Io.geometry (Fs.io fs) in
      g.Geometry.sectors * g.Geometry.sector_size
    in
    let io = make_io ~size_bytes in
    (match Lfs_ffs.Fs.format io Lfs_ffs.Config.default with
    | Ok () -> ()
    | Error e ->
        Printf.eprintf "lfstool: trace: FFS format: %s\n" e;
        exit 1);
    match Lfs_ffs.Fs.mount io with
    | Error e ->
        Printf.eprintf "lfstool: trace: FFS mount: %s\n" e;
        exit 1
    | Ok ffs ->
        trace_instance ?limit
          (Lfs_vfs.Fs_intf.Instance ((module Lfs_ffs.Fs), ffs))
          ops
  end

(* Latency-attribution profiler: run a scratch workload on both systems
   with a {!Lfs_obs.Profile} aggregator subscribed, and render the
   per-operation attribution table (and span tree).  No image argument —
   everything runs on fresh in-memory stacks.  Exits non-zero if any
   operation's attribution columns fail to sum to its total within 1%
   (they sum exactly by construction; the check guards the
   instrumentation). *)

let check_attribution label (rep : Profile.report) =
  List.concat_map
    (fun (s : Profile.op_stat) ->
      let parts = s.cache_us + s.disk_us + s.cleaner_us + s.checkpoint_us in
      let slack = max 1 (abs s.total_us / 100) in
      if abs (parts - s.total_us) > slack then
        [
          Printf.sprintf
            "%s %s: attribution %d us does not sum to total %d us" label s.op
            parts s.total_us;
        ]
      else [])
    rep.Profile.ops

let cmd_profile workload files file_size file_mb tree json =
  let run inst =
    let prof = Profile.attach (Driver.bus inst) in
    (match workload with
    | "smallfile" ->
        ignore (Lfs_workload.Smallfile.run ~nfiles:files ~file_size inst)
    | "largefile" -> ignore (Lfs_workload.Largefile.run ~file_mb inst)
    | "trace" ->
        ignore
          (Lfs_workload.Trace.replay inst (Lfs_workload.Trace.generate ()))
    | w ->
        Printf.eprintf
          "lfstool: profile: unknown workload %S (want smallfile, largefile \
           or trace)\n"
          w;
        exit 2);
    Driver.sanitize inst;
    Profile.detach prof;
    (Driver.label inst, Profile.report prof)
  in
  let reports = List.map run (Setup.both ()) in
  let violations =
    List.concat_map (fun (label, rep) -> check_attribution label rep) reports
  in
  if json then
    print_endline
      (Json.to_string_pretty
         (Json.Obj
            [
              ("schema", Json.String "lfs-profile/1");
              ("workload", Json.String workload);
              ( "systems",
                Json.List
                  (List.map
                     (fun (label, rep) ->
                       match Profile.to_json rep with
                       | Json.Obj fields ->
                           Json.Obj (("system", Json.String label) :: fields)
                       | j -> j)
                     reports) );
              ("clean", Json.Bool (violations = []));
            ]))
  else
    List.iter
      (fun (label, rep) ->
        Printf.printf "%s %s profile (simulated us)\n" label workload;
        print_string (Profile.render_ops rep);
        if tree then begin
          print_newline ();
          print_string (Profile.render_tree rep)
        end;
        print_newline ())
      reports;
  List.iter (fun v -> Printf.eprintf "profile: %s\n" v) violations;
  if violations <> [] then exit 1

(* Regression gate over lfs-bench/1 files. *)
let cmd_benchdiff base_file cur_file tolerance gate json =
  let load file =
    match Json.of_string_opt (read_file file) with
    | Some j -> j
    | None ->
        Printf.eprintf "lfstool: benchdiff: %s is not valid JSON\n" file;
        exit 2
  in
  let base = load base_file and cur = load cur_file in
  match Benchdiff.compare ~tolerance_pct:tolerance ~base ~cur () with
  | exception Invalid_argument msg ->
      Printf.eprintf "lfstool: %s\n" msg;
      exit 2
  | rep ->
      if json then print_endline (Json.to_string_pretty (Benchdiff.to_json rep))
      else print_string (Benchdiff.render rep);
      if gate && Benchdiff.gates rep then begin
        Printf.eprintf "benchdiff: %s regressed against %s\n" cur_file
          base_file;
        exit 1
      end

(* Fault-injection sweep: crash a scratch workload at every write
   boundary on both systems, tear the crashing write on LFS, inject
   transient read errors into a full read-back, and mark checkpoint
   region A sticky-bad.  No image argument — every replay runs on a
   fresh in-memory stack.  Exits non-zero if any replay recovers to a
   state that violates the durable model. *)

module Crashpoint = Lfs_workload.Crashpoint

let cmd_crashtest json files size seed =
  let ops = Crashpoint.smallfile ~files ~size () in
  let sweeps =
    [
      Crashpoint.sweep ~seed `Lfs ops;
      Crashpoint.sweep ~seed `Ffs ops;
      Crashpoint.sweep ~torn:true ~seed `Lfs ops;
    ]
  in
  let reads =
    List.map
      (fun sys ->
        (sys, Crashpoint.read_fault_run ~rate:0.2 ~seed:(seed + 4) sys ops))
      ([ `Lfs; `Ffs ] : Crashpoint.system list)
  in
  let bad = Crashpoint.bad_sector_run ~seed:(seed + 6) () in
  let sum f l = List.fold_left (fun acc x -> acc + f x) 0 l in
  let crashed_points (o : Crashpoint.outcome) =
    List.filter (fun p -> p.Crashpoint.crashed) o.Crashpoint.points
  in
  let crashed o = List.length (crashed_points o) in
  let mean f o =
    match crashed_points o with
    | [] -> 0
    | pts -> sum f pts / List.length pts
  in
  let kinds =
    [
      ("crash", sum crashed sweeps);
      ( "torn_write",
        sum crashed (List.filter (fun o -> o.Crashpoint.torn) sweeps) );
      ("read_error", sum (fun (_, r) -> r.Crashpoint.read_errors) reads);
      ("bad_sector", bad.Crashpoint.bad_sector_reads);
    ]
  in
  let violations =
    List.concat_map (fun o -> o.Crashpoint.violations) sweeps
    @ List.concat_map (fun (_, r) -> r.Crashpoint.rf_violations) reads
    @ bad.Crashpoint.bs_violations
  in
  let strings l = Json.List (List.map (fun s -> Json.String s) l) in
  if json then
    print_endline
      (Json.to_string_pretty
         (Json.Obj
            [
              ("schema", Json.String "lfs-crashtest/1");
              ("ops", Json.Int (List.length ops));
              ( "fault_kinds",
                Json.List
                  (List.map
                     (fun (kind, faults) ->
                       Json.Obj
                         [
                           ("kind", Json.String kind);
                           ("faults", Json.Int faults);
                         ])
                     kinds) );
              ( "sweeps",
                Json.List
                  (List.map
                     (fun (o : Crashpoint.outcome) ->
                       Json.Obj
                         [
                           ("label", Json.String o.Crashpoint.label);
                           ("torn", Json.Bool o.Crashpoint.torn);
                           ("total_writes", Json.Int o.Crashpoint.total_writes);
                           ( "boundaries_tested",
                             Json.Int o.Crashpoint.boundaries_tested );
                           ("faults", Json.Int o.Crashpoint.faults);
                           ( "mean_recovery_us",
                             Json.Int (mean (fun p -> p.Crashpoint.recovery_us) o)
                           );
                           ( "mean_recovery_reads",
                             Json.Int
                               (mean (fun p -> p.Crashpoint.recovery_reads) o) );
                           ("violations", strings o.Crashpoint.violations);
                         ])
                     sweeps) );
              ( "read_faults",
                Json.List
                  (List.map
                     (fun (sys, r) ->
                       Json.Obj
                         [
                           ( "system",
                             Json.String (Crashpoint.system_name sys) );
                           ("retries", Json.Int r.Crashpoint.retries);
                           ("backoff_us", Json.Int r.Crashpoint.backoff_us);
                           ("read_errors", Json.Int r.Crashpoint.read_errors);
                           ("violations", strings r.Crashpoint.rf_violations);
                         ])
                     reads) );
              ( "bad_sector",
                Json.Obj
                  [
                    ( "bad_sector_reads",
                      Json.Int bad.Crashpoint.bad_sector_reads );
                    ("violations", strings bad.Crashpoint.bs_violations);
                  ] );
              ("violations", Json.Int (List.length violations));
              ("clean", Json.Bool (violations = []));
            ]))
  else begin
    Printf.printf "crashtest: %d-op workload (%d files)\n" (List.length ops)
      files;
    List.iter
      (fun (o : Crashpoint.outcome) ->
        Printf.printf
          "sweep %-3s%s : %d/%d boundaries crashed, %d faults, mean recovery \
           %d us / %d reads\n"
          o.Crashpoint.label
          (if o.Crashpoint.torn then " torn" else "     ")
          (crashed o) o.Crashpoint.boundaries_tested o.Crashpoint.faults
          (mean (fun p -> p.Crashpoint.recovery_us) o)
          (mean (fun p -> p.Crashpoint.recovery_reads) o))
      sweeps;
    List.iter
      (fun (sys, r) ->
        Printf.printf
          "read faults %-3s: %d injected, %d retries, %d us backoff\n"
          (Crashpoint.system_name sys)
          r.Crashpoint.read_errors r.Crashpoint.retries
          r.Crashpoint.backoff_us)
      reads;
    Printf.printf "bad sector     : %d faulted reads\n"
      bad.Crashpoint.bad_sector_reads;
    List.iter (fun v -> Printf.printf "violation: %s\n" v) violations;
    Printf.printf "crashtest: %d fault kinds, %d violations\n"
      (List.length (List.filter (fun (_, n) -> n > 0) kinds))
      (List.length violations)
  end;
  if violations <> [] then exit 1

(* Concurrent multi-client engine: run N closed-loop clients against
   scratch LFS and FFS stacks under a chosen disk-scheduling discipline
   and report aggregate throughput plus latency percentiles.  Exits
   non-zero if the per-client accounting does not add up. *)

module Engine = Lfs_workload.Engine
module Sched = Lfs_disk.Sched

let cmd_concurrency clients ops discipline disk_mb per_client json =
  let disc =
    match discipline with
    | "none" | "immediate" -> None
    | s -> (
        match Sched.discipline_of_string s with
        | Some d -> Some d
        | None ->
            Printf.eprintf
              "lfstool: concurrency: unknown discipline %S (want fcfs, scan, \
               cscan or none)\n"
              s;
            exit 2)
  in
  let config =
    {
      Engine.default with
      Engine.clients;
      ops_per_client = ops;
      discipline = disc;
    }
  in
  let results =
    List.map
      (fun inst -> Engine.run ~config inst)
      (Setup.both ~disk_mb ())
  in
  let violations =
    List.concat_map
      (fun (r : Engine.result) ->
        let ops_sum =
          List.fold_left
            (fun acc (s : Engine.client_stat) -> acc + s.Engine.ops)
            0 r.Engine.per_client
        in
        (if ops_sum <> r.Engine.total_ops then
           [
             Printf.sprintf "%s: per-client ops %d do not sum to total %d"
               r.Engine.label ops_sum r.Engine.total_ops;
           ]
         else [])
        @
        if r.Engine.p50_us > r.Engine.p99_us then
          [ Printf.sprintf "%s: p50 above p99" r.Engine.label ]
        else [])
      results
  in
  if json then
    print_endline
      (Json.to_string_pretty
         (Json.Obj
            [
              ("schema", Json.String "lfs-concurrency/1");
              ("clients", Json.Int clients);
              ("ops_per_client", Json.Int ops);
              ( "discipline",
                Json.String
                  (match disc with
                  | Some d -> Sched.discipline_name d
                  | None -> "immediate") );
              ( "systems",
                Json.List (List.map Engine.to_json results) );
              ("clean", Json.Bool (violations = []));
            ]))
  else
    List.iter
      (fun (r : Engine.result) ->
        Printf.printf
          "%-4s %s  clients=%d ops=%d  %.1f ops/s  mean=%d us p50=%d us \
           p99=%d us  qdepth=%.1f qwait=%d us pos=%d us\n"
          r.Engine.label r.Engine.discipline r.Engine.clients
          r.Engine.total_ops r.Engine.ops_per_sec
          (int_of_float r.Engine.mean_us)
          r.Engine.p50_us r.Engine.p99_us r.Engine.mean_queue_depth
          (int_of_float r.Engine.mean_queue_wait_us)
          (int_of_float r.Engine.mean_positioning_us);
        if per_client then
          List.iter
            (fun (s : Engine.client_stat) ->
              Printf.printf
                "  client %2d: %4d ops  mean=%d us p50=%d us p99=%d us \
                 max=%d us\n"
                s.Engine.client s.Engine.ops
                (int_of_float s.Engine.mean_us)
                s.Engine.p50_us s.Engine.p99_us s.Engine.max_us)
            r.Engine.per_client)
      results;
  List.iter (fun v -> Printf.eprintf "concurrency: %s\n" v) violations;
  if violations <> [] then exit 1


(* Scale-out demo: the bench `scaleout` figure's workload at CLI scale —
   LFS and FFS writing small files over a striped (or mirrored) volume,
   one row per member count, with per-member seek counts.  The always-on
   sanitizer runs after every row. *)

let cmd_scaleout members_arg policy_arg files file_size json =
  let member_counts =
    match
      List.map int_of_string_opt (String.split_on_char ',' members_arg)
    with
    | l when l <> [] && List.for_all (fun o -> o <> None) l ->
        List.map Option.get l
    | _ ->
        Printf.eprintf "lfstool: scaleout: bad --members %S (want e.g. 1,2,4)\n"
          members_arg;
        exit 2
  in
  let segment_sectors = Config.default.Config.segment_size / 512 in
  let policy_of_string = function
    | "log_stripe" ->
        (Lfs_disk.Volume.Log_stripe { stripe_sectors = segment_sectors },
         segment_sectors)
    | "stripe" -> (Lfs_disk.Volume.Stripe { chunk_sectors = 64 }, 0)
    | "mirror" -> (Lfs_disk.Volume.Mirror, 0)
    | other ->
        Printf.eprintf
          "lfstool: scaleout: unknown policy %S (want log_stripe, stripe or \
           mirror)\n"
          other;
        exit 2
  in
  let policy, align = policy_of_string policy_arg in
  let rows =
    List.concat_map
      (fun members ->
        let run label mk =
          let io =
            Setup.make_volume_io ~disk_mb:16 ~cpu:Cpu_model.free ~policy
              ~members ()
          in
          let inst = mk io in
          let seeks0 =
            List.init members (fun i -> (Io.member_stats io i).Disk.seeks)
          in
          let t0 = Io.now_us io in
          for i = 0 to files - 1 do
            let path = Printf.sprintf "/f%05d" i in
            Driver.create inst path;
            Driver.write inst path ~off:0 (Driver.content ~seed:i file_size)
          done;
          Driver.sync inst;
          let elapsed_us = max 1 (Io.now_us io - t0) in
          let member_seeks =
            List.map2 ( - )
              (List.init members (fun i -> (Io.member_stats io i).Disk.seeks))
              seeks0
          in
          Driver.sanitize inst;
          let mbs =
            float_of_int (files * file_size)
            /. 1024.0 /. 1024.0
            /. (float_of_int elapsed_us /. 1e6)
          in
          (label, members, mbs, List.fold_left max 0 member_seeks)
        in
        [
          run "LFS" (fun io ->
              let config =
                { Config.default with Config.segment_align_sectors = align }
              in
              Setup.lfs_on io ~config ());
          run "FFS" (fun io -> Setup.ffs_on io ());
        ])
      member_counts
  in
  if json then
    print_endline
      (Json.to_string_pretty
         (Json.Obj
            [
              ("schema", Json.String "lfs-scaleout/1");
              ("policy", Json.String policy_arg);
              ( "rows",
                Json.List
                  (List.map
                     (fun (label, members, mbs, seeks) ->
                       Json.Obj
                         [
                           ("label", Json.String label);
                           ("members", Json.Int members);
                           ("write_mb_per_sec", Json.Float mbs);
                           ("seeks_per_member_max", Json.Int seeks);
                         ])
                     rows) );
            ]))
  else
    List.iter
      (fun (label, members, mbs, seeks) ->
        Printf.printf "%-4s %-10s %d members: %6.2f MB/s  seeks/member max %d\n"
          label policy_arg members mbs seeks)
      rows

(* Declarative scenario runner: one builder over op streams, engine
   runs, crash sweeps and read-back fault scenarios, with seed-managed
   replay.  `--replay SEED` re-runs a printed replay line; `--plant`
   installs a deliberately failing invariant so the shrink/replay loop
   can be exercised (and smoke-tested) end to end. *)

module Scenario = Lfs_scenario.Scenario

let planted_invariant inst =
  match Lfs_workload.Driver.readdir inst "/" with
  | [] -> []
  | l -> [ Printf.sprintf "planted: root holds %d entries" (List.length l) ]

let cmd_scenario sys mix count payload clients think sweep boundaries torn
    transient burst read_back bad_sector volume fault_member plant json seed
    replay =
  let parse_volume s =
    let bad () =
      Printf.eprintf
        "lfstool: scenario: bad volume %S (want \
         stripe:MEMBERS:CHUNK | log_stripe:MEMBERS:STRIPE | mirror:MEMBERS)\n"
        s;
      exit 2
    in
    match String.split_on_char ':' s with
    | [ "mirror"; n ] -> (
        match int_of_string_opt n with
        | Some n -> (Lfs_disk.Volume.Mirror, n)
        | None -> bad ())
    | [ "stripe"; n; c ] -> (
        match (int_of_string_opt n, int_of_string_opt c) with
        | Some n, Some c -> (Lfs_disk.Volume.Stripe { chunk_sectors = c }, n)
        | _ -> bad ())
    | [ "log_stripe"; n; sc ] -> (
        match (int_of_string_opt n, int_of_string_opt sc) with
        | Some n, Some sc ->
            (Lfs_disk.Volume.Log_stripe { stripe_sectors = sc }, n)
        | _ -> bad ())
    | _ -> bad ()
  in
  let parse_think s =
    match String.split_on_char ':' s with
    | [ lo; hi ] -> (
        match (int_of_string_opt lo, int_of_string_opt hi) with
        | Some lo, Some hi when lo = hi -> Scenario.Constant lo
        | Some lo, Some hi -> Scenario.Uniform (lo, hi)
        | _ ->
            Printf.eprintf "lfstool: scenario: bad think time %S\n" s;
            exit 2)
    | _ ->
        Printf.eprintf "lfstool: scenario: bad think time %S (want LO:HI)\n" s;
        exit 2
  in
  let run () =
    let spec = Scenario.make in
    let spec =
      match sys with
      | "lfs" -> spec
      | "ffs" -> Scenario.system `Ffs spec
      | other ->
          Printf.eprintf "lfstool: scenario: unknown system %S\n" other;
          exit 2
    in
    let spec =
      match mix with
      | None -> spec
      | Some m -> Scenario.ops (Scenario.mix_of_string m) spec
    in
    let spec = Scenario.count count spec in
    let spec = Scenario.payload payload spec in
    let spec =
      match clients with None -> spec | Some n -> Scenario.clients n spec
    in
    let spec =
      match think with
      | None -> spec
      | Some s -> Scenario.think (parse_think s) spec
    in
    let spec = if sweep then Scenario.crash_sweep spec else spec in
    let spec = Scenario.boundaries boundaries spec in
    let faults =
      (if torn then [ Scenario.Torn ] else [])
      @ (match transient with
        | Some rate -> [ Scenario.Transient { rate; burst } ]
        | None -> [])
      @ if bad_sector then [ Scenario.Checkpoint_bad_sector ] else []
    in
    let spec = if faults = [] then spec else Scenario.faults faults spec in
    let spec = if read_back then Scenario.read_back spec else spec in
    let spec =
      match volume with
      | None -> spec
      | Some v ->
          let policy, members = parse_volume v in
          Scenario.volume policy members spec
    in
    let spec =
      match fault_member with
      | None -> spec
      | Some m -> Scenario.fault_member m spec
    in
    let spec =
      if plant then
        Scenario.(
          spec
          |> invariant ~name:"planted-empty-root" planted_invariant
          |> cli_flags [ "--plant" ])
      else spec
    in
    let spec =
      Scenario.seed (match replay with Some s -> s | None -> seed) spec
    in
    Scenario.run spec
  in
  match run () with
  | exception Lfs_workload.Driver.Benchmark_failure m ->
      Printf.eprintf "lfstool: scenario: %s\n" m;
      exit 2
  | r ->
      if json then print_endline (Json.to_string_pretty (Scenario.to_json r))
      else print_string (Scenario.render r);
      if r.Scenario.failure <> None then exit 1

(* Cmdliner plumbing *)

open Cmdliner

let image = Arg.(required & pos 0 (some string) None & info [] ~docv:"IMAGE")

let path n =
  Arg.(required & pos n (some string) None & info [] ~docv:"PATH")

let format_cmd =
  let size_mb =
    Arg.(value & opt int 64 & info [ "size-mb" ] ~doc:"Image size in MB.")
  in
  let block_size =
    Arg.(value & opt int 4096 & info [ "block-size" ] ~doc:"Block size in bytes.")
  in
  let segment_size =
    Arg.(
      value
      & opt int (1 lsl 20)
      & info [ "segment-size" ] ~doc:"Segment size in bytes.")
  in
  Cmd.v
    (Cmd.info "format" ~doc:"Create and format a new LFS image.")
    Term.(const cmd_format $ image $ size_mb $ block_size $ segment_size)

let simple name doc f extra =
  Cmd.v (Cmd.info name ~doc) Term.(const f $ image $ extra)

let noarg name doc f = Cmd.v (Cmd.info name ~doc) Term.(const f $ image)

let () =
  let cmds =
    [
      format_cmd;
      simple "ls" "List a directory." cmd_ls (path 1);
      simple "cat" "Print a file's contents." cmd_cat (path 1);
      Cmd.v
        (Cmd.info "put" ~doc:"Copy a host file into the image.")
        Term.(const cmd_put $ image $ path 1 $ path 2);
      Cmd.v
        (Cmd.info "get" ~doc:"Copy a file out of the image to the host.")
        Term.(const cmd_get $ image $ path 1 $ path 2);
      simple "mkdir" "Create a directory." cmd_mkdir (path 1);
      noarg "tree" "Print the whole namespace." cmd_tree;
      noarg "df" "Show space usage." cmd_df;
      simple "rm" "Remove a file or empty directory." cmd_rm (path 1);
      noarg "info" "Show superblock and log statistics." cmd_info;
      noarg "segments" "Show the segment map." cmd_segments;
      Cmd.v
        (Cmd.info "dump-segment" ~doc:"Decode one segment's summary.")
        Term.(const cmd_dump_segment $ image $ path 1);
      noarg "checkpoints" "Decode both checkpoint regions." cmd_checkpoints;
      noarg "clean" "Run the segment cleaner." cmd_clean;
      (let json =
         Arg.(
           value & flag
           & info [ "json" ]
               ~doc:"Emit the fsck report as JSON instead of text.")
       in
       Cmd.v
         (Cmd.info "fsck"
            ~doc:
              "Walk and verify the whole namespace, run the deep \
               structural checks (double references, wild addresses, \
               orphans, link counts) and report segment-usage drift \
               against recomputed ground truth.  Exits non-zero on any \
               problem.")
         Term.(const cmd_fsck $ image $ json));
      (let json =
         Arg.(
           value & flag
           & info [ "json" ] ~doc:"Emit the registry snapshot as JSON.")
       in
       Cmd.v
         (Cmd.info "stats"
            ~doc:"Mount the image and print its metrics registry.")
         Term.(const cmd_stats $ image $ json));
      (let with_ffs =
         Arg.(
           value & flag
           & info [ "ffs" ]
               ~doc:
                 "Also replay the ops on a scratch FFS of the same size, \
                  for comparison.")
       in
       let ops =
         Arg.(value & pos_right 0 string [] & info [] ~docv:"OP")
       in
       let limit =
         Arg.(
           value
           & opt (some int) None
           & info [ "limit" ]
               ~doc:
                 "Keep only the newest $(docv) events (ring capture).  A \
                  truncated stream ends in a trace_truncated trailer and \
                  the footer reports the drop count."
               ~docv:"N")
       in
       Cmd.v
         (Cmd.info "trace"
            ~doc:
              "Replay ops (mkdir:P create:P write:P:N read:P delete:P \
               sync; default: two small file creations plus sync) against \
               the image in memory and emit the trace-bus events as \
               JSONL.  The image file is not modified.")
         Term.(const cmd_trace $ image $ with_ffs $ limit $ ops));
      (let workload =
         Arg.(
           required
           & pos 0 (some string) None
           & info [] ~docv:"WORKLOAD"
               ~doc:"One of smallfile, largefile or trace.")
       in
       let files =
         Arg.(
           value & opt int 400
           & info [ "files" ] ~doc:"smallfile: number of files.")
       in
       let file_size =
         Arg.(
           value & opt int 1024
           & info [ "file-size" ] ~doc:"smallfile: file size in bytes.")
       in
       let file_mb =
         Arg.(
           value & opt int 4
           & info [ "file-mb" ] ~doc:"largefile: file size in MB.")
       in
       let tree =
         Arg.(
           value & flag
           & info [ "tree" ] ~doc:"Also print the aggregate span tree.")
       in
       let json =
         Arg.(
           value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")
       in
       Cmd.v
         (Cmd.info "profile"
            ~doc:
              "Run a scratch workload on both LFS and FFS with the \
               latency-attribution profiler subscribed, and print \
               per-operation latency percentiles (simulated us) plus the \
               exclusive-time split across cache/CPU, disk, cleaner \
               interference and checkpoints.  The four attribution \
               columns sum to the operation's total; the tool exits \
               non-zero if they do not (within 1%).  No image needed.")
         Term.(
           const cmd_profile $ workload $ files $ file_size $ file_mb $ tree
           $ json));
      (let base =
         Arg.(
           required & pos 0 (some string) None & info [] ~docv:"BASELINE")
       in
       let cur =
         Arg.(
           required & pos 1 (some string) None & info [] ~docv:"CURRENT")
       in
       let tolerance =
         Arg.(
           value & opt float 5.0
           & info [ "tolerance" ]
               ~doc:"Allowed change per metric, in percent." ~docv:"PCT")
       in
       let gate =
         Arg.(
           value & flag
           & info [ "gate" ]
               ~doc:
                 "Exit non-zero if any metric regressed or vanished — the \
                  regression gate for committed baselines.")
       in
       let json =
         Arg.(
           value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")
       in
       Cmd.v
         (Cmd.info "benchdiff"
            ~doc:
              "Compare two lfs-bench/1 result files metric by metric: \
               throughputs and ratios must not fall, times and I/O \
               volumes must not rise, and metrics with no known \
               direction must not drift, each beyond the tolerance.")
         Term.(const cmd_benchdiff $ base $ cur $ tolerance $ gate $ json));
      (let json =
         Arg.(
           value & flag
           & info [ "json" ] ~doc:"Emit the crash-test report as JSON.")
       in
       let files =
         Arg.(
           value & opt int 6
           & info [ "files" ] ~doc:"Files in the scratch workload.")
       in
       let size =
         Arg.(
           value & opt int 2048
           & info [ "file-size" ] ~doc:"Base file size in bytes.")
       in
       let seed =
         Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Fault-injection seed.")
       in
       Cmd.v
         (Cmd.info "crashtest"
            ~doc:
              "Run the fault-injection recovery sweeps on scratch \
               in-memory stacks (no image needed): crash at every write \
               boundary of a small workload on both LFS and FFS, tear \
               the crashing write on LFS, inject transient read errors \
               into a full read-back, and mark LFS checkpoint region A \
               sticky-bad so recovery must fall back to region B.  \
               Exits non-zero if any replay violates the durable model.")
         Term.(const cmd_crashtest $ json $ files $ size $ seed));
      (let clients =
         Arg.(
           value & opt int 4
           & info [ "clients" ] ~doc:"Number of concurrent clients.")
       in
       let ops =
         Arg.(
           value & opt int 150
           & info [ "ops" ] ~doc:"Operations per client.")
       in
       let discipline =
         Arg.(
           value & opt string "fcfs"
           & info [ "discipline" ]
               ~doc:
                 "Disk request scheduling discipline: fcfs, scan, cscan, \
                  or none (immediate issue-order service)."
               ~docv:"DISC")
       in
       let disk_mb =
         Arg.(
           value & opt int 64
           & info [ "disk-mb" ] ~doc:"Scratch disk size in MB.")
       in
       let per_client =
         Arg.(
           value & flag
           & info [ "per-client" ]
               ~doc:"Also print each client's latency percentiles.")
       in
       let json =
         Arg.(
           value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")
       in
       Cmd.v
         (Cmd.info "concurrency"
            ~doc:
              "Run the concurrent multi-client engine on scratch LFS and \
               FFS stacks (no image needed): N closed-loop clients with \
               Zipf-skewed op streams and think times, multiplexed over \
               one instance with a real disk request queue.  Reports \
               aggregate throughput, latency percentiles, queue depth \
               and mean positioning time per system.  Exits non-zero if \
               the per-client accounting does not add up.")
         Term.(
           const cmd_concurrency $ clients $ ops $ discipline $ disk_mb
           $ per_client $ json));
      (let members =
         Arg.(
           value & opt string "1,2,4"
           & info [ "members" ]
               ~doc:"Comma-separated volume member counts to sweep."
               ~docv:"N,N,...")
       in
       let policy =
         Arg.(
           value & opt string "log_stripe"
           & info [ "policy" ]
               ~doc:"Volume policy: log_stripe, stripe or mirror."
               ~docv:"POLICY")
       in
       let files =
         Arg.(
           value & opt int 200
           & info [ "files" ] ~doc:"Files written per run.")
       in
       let file_size =
         Arg.(
           value & opt int 8192 & info [ "file-size" ] ~doc:"File size in bytes.")
       in
       let json =
         Arg.(
           value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")
       in
       Cmd.v
         (Cmd.info "scaleout"
            ~doc:
              "Write small files through LFS and FFS over a multi-disk \
               volume (no image needed), one row per member count: write \
               bandwidth and the busiest member's seek count.  The log's \
               whole-segment writes split into one contiguous run per \
               member, so LFS bandwidth grows with the spindle count \
               while FFS stays pinned to single-disk latency — the bench \
               scaleout figure at CLI scale.")
         Term.(
           const cmd_scaleout $ members $ policy $ files $ file_size $ json));
      (let sys =
         Arg.(
           value & opt string "lfs"
           & info [ "system" ] ~doc:"System under test: lfs or ffs."
               ~docv:"SYS")
       in
       let mix =
         Arg.(
           value
           & opt (some string) None
           & info [ "mix" ]
               ~doc:
                 "Weighted op mix, e.g. create=3,read=4,overwrite=2 \
                  (kinds: create, mkdir, read, overwrite, append, \
                  truncate, rename, delete, sync)."
               ~docv:"MIX")
       in
       let count =
         Arg.(
           value & opt int 48
           & info [ "count" ] ~doc:"Total operations generated.")
       in
       let payload =
         Arg.(
           value & opt int 2500
           & info [ "payload" ] ~doc:"Payload scale in bytes.")
       in
       let clients =
         Arg.(
           value
           & opt (some int) None
           & info [ "clients" ]
               ~doc:"Run through the multi-client engine with N clients.")
       in
       let think =
         Arg.(
           value
           & opt (some string) None
           & info [ "think" ]
               ~doc:"Client think time LO:HI in microseconds (engine mode)."
               ~docv:"LO:HI")
       in
       let sweep =
         Arg.(
           value & flag
           & info [ "sweep" ]
               ~doc:"Crash-point sweep: recovery at every write boundary.")
       in
       let boundaries =
         Arg.(
           value & opt int 48
           & info [ "boundaries" ] ~doc:"Sweep boundary cap.")
       in
       let torn =
         Arg.(
           value & flag
           & info [ "torn" ] ~doc:"Tear the crashing write (sweep mode).")
       in
       let transient =
         Arg.(
           value
           & opt (some float) None
           & info [ "transient" ]
               ~doc:"Transient read-fault probability per request."
               ~docv:"RATE")
       in
       let burst =
         Arg.(
           value & opt int 1
           & info [ "burst" ]
               ~doc:"Consecutive failures per transient fault.")
       in
       let read_back =
         Arg.(
           value & flag
           & info [ "read-back" ]
               ~doc:
                 "Read-back run: write, drop caches and read everything \
                  back under the transient faults.")
       in
       let bad_sector =
         Arg.(
           value & flag
           & info [ "bad-sector" ]
               ~doc:
                 "Sticky bad sector over LFS checkpoint region A; \
                  recovery must fall back to region B.")
       in
       let volume =
         Arg.(
           value
           & opt (some string) None
           & info [ "volume" ]
               ~doc:
                 "Run on a multi-disk volume instead of a single disk: \
                  stripe:MEMBERS:CHUNK, log_stripe:MEMBERS:STRIPE or \
                  mirror:MEMBERS (chunk and stripe in sectors)."
               ~docv:"SPEC")
       in
       let fault_member =
         Arg.(
           value
           & opt (some int) None
           & info [ "fault-member" ]
               ~doc:
                 "Confine injected faults to one volume member \
                  (stream/engine modes; requires --volume)."
               ~docv:"I")
       in
       let plant =
         Arg.(
           value & flag
           & info [ "plant" ]
               ~doc:
                 "Install a deliberately failing invariant to exercise \
                  the shrink and replay loop.")
       in
       let json =
         Arg.(
           value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")
       in
       let seed =
         Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Scenario seed.")
       in
       let replay =
         Arg.(
           value
           & opt (some int) None
           & info [ "replay" ]
               ~doc:
                 "Replay a failing scenario from the seed printed in its \
                  replay line (overrides --seed)."
               ~docv:"SEED")
       in
       Cmd.v
         (Cmd.info "scenario"
            ~doc:
              "Run a declarative scenario on scratch in-memory stacks \
               (no image needed): a seeded op stream checked against the \
               pure reference model by default; --clients for a \
               multi-client engine run, --sweep for a crash-point \
               recovery sweep, --read-back with --transient for a \
               fault-absorption run.  A failing scenario is minimized \
               by delta-debugging and printed with a one-line --replay \
               invocation; exits non-zero on failure.")
         Term.(
           const cmd_scenario $ sys $ mix $ count $ payload $ clients
           $ think $ sweep $ boundaries $ torn $ transient $ burst
           $ read_back $ bad_sector $ volume $ fault_member $ plant $ json
           $ seed $ replay));
    ]
  in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "lfstool" ~version:"1.0"
             ~doc:"Inspect and modify LFS disk images.")
          cmds))
