(* Benchmark harness: regenerates every figure of the paper's evaluation
   (Figures 1-5) plus the ablations listed in DESIGN.md.

   Usage:
     main.exe                 run all paper figures at paper scale
     main.exe fig3 fig5       run selected experiments
     main.exe --quick         reduced sizes (used by the test suite)
     main.exe --bechamel      wall-clock micro-benchmarks (Bechamel), one
                              Test.make per paper figure

   All rates are in *simulated* time on the paper's hardware model
   (WREN IV disk, Sun-4/260 CPU); see EXPERIMENTS.md for paper-vs-measured
   commentary. *)

module Config = Lfs_core.Config
module W = Lfs_workload
module J = Lfs_obs.Json

let quick = ref false
let bechamel = ref false
let selected = ref []

(* Machine-readable output: each experiment contributes its figure's
   numbers here; [--json FILE] writes the collection as
   {"schema":"lfs-bench/1", ...} for plotting and regression tracking. *)
let json_out = ref None
let check_json = ref None
let figures : (string * J.t) list ref = ref []

let add_figure name j =
  figures := (name, j) :: List.remove_assoc name !figures

let say fmt = Printf.printf (fmt ^^ "\n%!")

let header title =
  say "";
  say "==================================================================";
  say "%s" title;
  say "=================================================================="

(* ------------------------------------------------------------------ *)
(* Figures 1 & 2: the two-file creation trace                          *)
(* ------------------------------------------------------------------ *)

let run_fig12 () =
  header "Figures 1 & 2: disk writes for the two-file creation example";
  let results =
    List.map W.Creation_trace.run (W.Setup.both ~disk_mb:(if !quick then 16 else 64) ())
  in
  add_figure "fig12"
    (J.List
       (List.map
          (fun (r : W.Creation_trace.summary) ->
            J.Obj
              [
                ("label", J.String r.W.Creation_trace.label);
                ("writes", J.Int r.W.Creation_trace.writes);
                ("sync_writes", J.Int r.W.Creation_trace.sync_writes);
                ( "sequential_writes",
                  J.Int r.W.Creation_trace.sequential_writes );
                ("sectors_written", J.Int r.W.Creation_trace.sectors_written);
              ])
          results));
  print_string (W.Report.fig12 results)

(* ------------------------------------------------------------------ *)
(* Figure 3: small-file I/O                                            *)
(* ------------------------------------------------------------------ *)

let run_fig3 () =
  header "Figure 3: small-file create/read/delete rates";
  let cases =
    if !quick then [ (1024, 1000); (10 * 1024, 200) ]
    else [ (1024, 10_000); (10 * 1024, 1_000) ]
  in
  let disk_mb = if !quick then 64 else 300 in
  let results =
    List.concat_map
      (fun (file_size, nfiles) ->
        List.map
          (fun inst -> W.Smallfile.run ~nfiles ~file_size inst)
          (W.Setup.both ~disk_mb ()))
      cases
  in
  add_figure "fig3"
    (J.List
       (List.map
          (fun (r : W.Smallfile.result) ->
            J.Obj
              [
                ("label", J.String r.W.Smallfile.label);
                ("nfiles", J.Int r.W.Smallfile.nfiles);
                ("file_size", J.Int r.W.Smallfile.file_size);
                ("create_per_sec", J.Float r.W.Smallfile.create_per_sec);
                ("read_per_sec", J.Float r.W.Smallfile.read_per_sec);
                ("delete_per_sec", J.Float r.W.Smallfile.delete_per_sec);
                ( "phases",
                  J.Obj
                    (List.map
                       (fun (name, snap) ->
                         (name, Lfs_obs.Metrics.to_json snap))
                       r.W.Smallfile.phases) );
              ])
          results));
  print_string (W.Report.fig3 results)

(* ------------------------------------------------------------------ *)
(* Figure 4: large-file I/O                                            *)
(* ------------------------------------------------------------------ *)

let run_fig4 () =
  header "Figure 4: large-file transfer rates (8 KB requests)";
  let file_mb = if !quick then 8 else 100 in
  let disk_mb = if !quick then 64 else 300 in
  let results =
    List.map (fun i -> W.Largefile.run ~file_mb i) (W.Setup.both ~disk_mb ())
  in
  add_figure "fig4"
    (J.List
       (List.map
          (fun (r : W.Largefile.result) ->
            J.Obj
              [
                ("label", J.String r.W.Largefile.label);
                ("file_mb", J.Int r.W.Largefile.file_mb);
                ("seq_write_kbs", J.Float r.W.Largefile.seq_write_kbs);
                ("seq_read_kbs", J.Float r.W.Largefile.seq_read_kbs);
                ("rand_write_kbs", J.Float r.W.Largefile.rand_write_kbs);
                ("rand_read_kbs", J.Float r.W.Largefile.rand_read_kbs);
                ("seq_reread_kbs", J.Float r.W.Largefile.seq_reread_kbs);
                ( "phases",
                  J.Obj
                    (List.map
                       (fun (name, snap) ->
                         (name, Lfs_obs.Metrics.to_json snap))
                       r.W.Largefile.phases) );
              ])
          results));
  print_string (W.Report.fig4 results)

(* ------------------------------------------------------------------ *)
(* Figure 5: cleaning rate vs segment utilization                      *)
(* ------------------------------------------------------------------ *)

let run_fig5 () =
  header "Figure 5: segment cleaning rate vs utilization";
  let disk_mb = if !quick then 24 else 48 in
  let utilizations = [ 0.0; 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9 ] in
  (* A right-sized inode map: the default 65536-file map would put a
     fixed ~1.5 MB of metadata into the log and distort small-disk
     utilization measurements. *)
  let config = { Config.default with Config.max_files = 16384 } in
  let make () =
    let io = W.Setup.make_io ~disk_mb () in
    (match Lfs_core.Fs.format io config with
    | Ok () -> ()
    | Error e -> failwith e);
    match Lfs_core.Fs.mount ~config io with Ok fs -> fs | Error e -> failwith e
  in
  let points = W.Cleaning.sweep ~utilizations make in
  add_figure "fig5"
    (J.List
       (List.map
          (fun (p : W.Cleaning.point) ->
            J.Obj
              [
                ("utilization", J.Float p.W.Cleaning.utilization);
                ("clean_kb_per_sec", J.Float p.W.Cleaning.clean_kb_per_sec);
                ("net_kb_per_sec", J.Float p.W.Cleaning.net_kb_per_sec);
                ("segments_cleaned", J.Int p.W.Cleaning.segments_cleaned);
                ("write_cost", J.Float p.W.Cleaning.write_cost);
              ])
          points));
  print_string (W.Report.fig5 points)

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let run_ablation_segsize () =
  header "Ablation: segment size vs small-write bandwidth (the seek\n\
          amortization argument of section 4.3)";
  let disk_mb = 64 in
  let sizes = [ 64 * 1024; 256 * 1024; 1 lsl 20; 4 lsl 20 ] in
  let rows =
    List.map
      (fun segment_size ->
        (* Cleaning thresholds are segment counts: scale them so every
           configuration reserves about the same bytes. *)
        let reserve = max 2 (4 * (1 lsl 20) / segment_size) in
        let config =
          {
            Config.default with
            Config.segment_size;
            reserve_segments = reserve;
            clean_threshold_segments = 2 * reserve;
            clean_target_segments = 3 * reserve;
          }
        in
        let io = W.Setup.make_io ~disk_mb () in
        (match Lfs_core.Fs.format io config with
        | Ok () -> ()
        | Error e -> failwith e);
        let fs =
          match Lfs_core.Fs.mount ~config io with
          | Ok fs -> fs
          | Error e -> failwith e
        in
        let inst = Lfs_vfs.Fs_intf.Instance ((module Lfs_core.Fs), fs) in
        (* The effect of segment size is on the *disk*, not the (CPU-bound)
           application: measure effective write bandwidth — bytes reaching
           the media per second of device busy time.  Small segments pay a
           seek per few blocks and cannot amortize it. *)
        let nfiles = if !quick then 2_000 else 8_000 in
        W.Driver.mkdir inst "/d";
        for i = 0 to nfiles - 1 do
          let path = Printf.sprintf "/d/f%05d" i in
          W.Driver.create inst path;
          W.Driver.write inst path ~off:0 (W.Driver.content ~seed:i 1024);
          if i mod 200 = 199 then W.Driver.sync inst
        done;
        W.Driver.sync inst;
        let stats = Lfs_disk.Io.disk_stats io in
        W.Driver.sanitize inst;
        let bandwidth =
          float_of_int (stats.Lfs_disk.Disk.sectors_written * 512)
          /. (float_of_int stats.Lfs_disk.Disk.busy_us /. 1e6)
          /. 1024.0
        in
        [
          Lfs_util.Table.fmt_bytes segment_size;
          Lfs_util.Table.fmt_float ~decimals:0 bandwidth;
          string_of_int stats.Lfs_disk.Disk.seeks;
        ])
      sizes
  in
  print_string
    (Lfs_util.Table.render
       ~headers:[ "segment size"; "disk write KB/s"; "seeks" ]
       rows)

let hotcold_config = { Config.default with Config.max_files = 16384 }

let hotcold_fs ~disk_mb () =
  let io = W.Setup.make_io ~disk_mb () in
  (match Lfs_core.Fs.format io hotcold_config with
  | Ok () -> ()
  | Error e -> failwith e);
  match Lfs_core.Fs.mount ~config:hotcold_config io with
  | Ok fs -> fs
  | Error e -> failwith e

let run_ablation_policy () =
  header "Ablation: cleaning policy under uniform vs hot/cold overwrites";
  let disk_mb = if !quick then 24 else 48 in
  let ops = if !quick then 4_000 else 20_000 in
  let rows =
    List.concat_map
      (fun theta ->
        List.map
          (fun policy ->
            (* A policy that cannot regenerate free space fast enough
               collapses with ENOSPC — that is a result, not a crash. *)
            match
              W.Hotcold.run ~theta ~ops ~disk_utilization:0.7 ~policy
                (hotcold_fs ~disk_mb ())
            with
            | r ->
                [
                  Config.policy_name policy;
                  Lfs_util.Table.fmt_float ~decimals:2 theta;
                  Lfs_util.Table.fmt_float ~decimals:2 r.W.Hotcold.write_cost;
                  Lfs_util.Table.fmt_float ~decimals:0 r.W.Hotcold.write_kbs;
                  string_of_int r.W.Hotcold.segments_cleaned;
                ]
            | exception W.Driver.Benchmark_failure _ ->
                [
                  Config.policy_name policy;
                  Lfs_util.Table.fmt_float ~decimals:2 theta;
                  "collapsed";
                  "-";
                  "-";
                ])
          [ Config.Greedy; Config.Cost_benefit; Config.Oldest ])
      [ 0.0; 0.99 ]
  in
  print_string
    (Lfs_util.Table.render
       ~headers:[ "policy"; "theta"; "write cost"; "KB/s"; "cleaned" ]
       rows)

let run_ablation_util () =
  header "Ablation: disk utilization vs cleaning write cost";
  let disk_mb = if !quick then 24 else 48 in
  let ops = if !quick then 4_000 else 15_000 in
  let rows =
    List.map
      (fun u ->
        let r =
          W.Hotcold.run ~theta:0.0 ~ops ~disk_utilization:u
            ~policy:Config.Greedy (hotcold_fs ~disk_mb ())
        in
        [
          Lfs_util.Table.fmt_float ~decimals:2 u;
          Lfs_util.Table.fmt_float ~decimals:2 r.W.Hotcold.write_cost;
          Lfs_util.Table.fmt_float ~decimals:0 r.W.Hotcold.write_kbs;
        ])
      [ 0.2; 0.35; 0.5; 0.65; 0.8 ]
  in
  print_string
    (Lfs_util.Table.render
       ~headers:[ "disk utilization"; "write cost"; "write KB/s" ]
       rows)

let run_ablation_checkpoint () =
  header "Ablation: checkpoint interval vs recovery cost and data loss";
  let disk_mb = if !quick then 16 else 32 in
  let rows =
    List.map
      (fun (interval_s, roll_forward) ->
        let config =
          {
            Config.default with
            Config.checkpoint_interval_us = interval_s * 1_000_000;
            roll_forward;
          }
        in
        let io = W.Setup.make_io ~disk_mb () in
        (match Lfs_core.Fs.format io config with
        | Ok () -> ()
        | Error e -> failwith e);
        let fs =
          match Lfs_core.Fs.mount ~config io with
          | Ok fs -> fs
          | Error e -> failwith e
        in
        let inst = Lfs_vfs.Fs_intf.Instance ((module Lfs_core.Fs), fs) in
        (* Write files for ~90 simulated seconds (capped at ~60% of the
           disk), syncing every few files but never checkpointing
           explicitly — periodic checkpoints happen only at the
           configured interval.  Then crash (no unmount) and measure
           recovery. *)
        let layout = Lfs_core.Fs.layout fs in
        let max_files =
          layout.Lfs_core.Layout.nsegments
          * layout.Lfs_core.Layout.payload_blocks
          * layout.Lfs_core.Layout.block_size * 6 / 10
          / (4096 + Lfs_core.Layout.inode_bytes)
        in
        let i = ref 0 in
        while Lfs_disk.Io.now_us io < 90_000_000 && !i < max_files do
          let path = Printf.sprintf "/f%06d" !i in
          W.Driver.create inst path;
          W.Driver.write inst path ~off:0 (W.Driver.content ~seed:!i 4096);
          if !i mod 10 = 9 then W.Driver.sync inst;
          incr i
        done;
        (* Everything synced so far is in the log; whether recovery sees
           it depends on roll-forward vs the last periodic checkpoint. *)
        let written = !i in
        let t0 = Lfs_disk.Io.now_us io in
        let fs2 =
          match Lfs_core.Fs.mount ~config io with
          | Ok fs -> fs
          | Error e -> failwith e
        in
        let recovery_us = Lfs_disk.Io.now_us io - t0 in
        let survived =
          match Lfs_core.Fs.readdir fs2 "/" with
          | Ok names -> List.length names
          | Error _ -> 0
        in
        (match Lfs_core.Fs.integrity fs2 with
        | [] -> ()
        | issues ->
            failwith
              (Printf.sprintf
                 "post-recovery integrity (interval %ds, roll-forward %b): %s"
                 interval_s roll_forward
                 (String.concat "; " issues)));
        [
          string_of_int interval_s;
          (if roll_forward then "yes" else "no");
          Format.asprintf "%a" Lfs_disk.Clock.pp_duration_us recovery_us;
          Printf.sprintf "%d/%d" survived written;
          string_of_int
            (Lfs_core.Fs.stats fs2).Lfs_core.State.rollforward_segments;
        ])
      [ (5, true); (30, true); (120, true); (5, false); (30, false); (120, false) ]
  in
  print_string
    (Lfs_util.Table.render
       ~headers:
         [ "interval (s)"; "roll-forward"; "recovery time"; "files survived"; "segs replayed" ]
       rows)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks (wall clock, one Test.make per figure)    *)
(* ------------------------------------------------------------------ *)

let bechamel_tests () =
  let open Bechamel in
  let fig12 =
    Test.make ~name:"fig1+2:creation-trace" (Staged.stage (fun () ->
        ignore (List.map W.Creation_trace.run (W.Setup.both ~disk_mb:16 ()))))
  in
  let fig3 =
    Test.make ~name:"fig3:small-file" (Staged.stage (fun () ->
        List.iter
          (fun inst -> ignore (W.Smallfile.run ~nfiles:200 ~file_size:1024 inst))
          (W.Setup.both ~disk_mb:16 ())))
  in
  let fig4 =
    Test.make ~name:"fig4:large-file" (Staged.stage (fun () ->
        List.iter
          (fun inst -> ignore (W.Largefile.run ~file_mb:2 inst))
          (W.Setup.both ~disk_mb:16 ())))
  in
  let fig5 =
    Test.make ~name:"fig5:cleaning" (Staged.stage (fun () ->
        let io = W.Setup.make_io ~disk_mb:8 () in
        (match Lfs_core.Fs.format io Config.default with
        | Ok () -> ()
        | Error e -> failwith e);
        let fs =
          match Lfs_core.Fs.mount io with Ok fs -> fs | Error e -> failwith e
        in
        ignore (W.Cleaning.run ~target_utilization:0.5 fs)))
  in
  let recovery =
    Test.make ~name:"ablation:recovery" (Staged.stage (fun () ->
        let io = W.Setup.make_io ~disk_mb:8 () in
        (match Lfs_core.Fs.format io Config.default with
        | Ok () -> ()
        | Error e -> failwith e);
        let fs =
          match Lfs_core.Fs.mount io with Ok fs -> fs | Error e -> failwith e
        in
        let inst = Lfs_vfs.Fs_intf.Instance ((module Lfs_core.Fs), fs) in
        for i = 0 to 49 do
          W.Driver.create inst (Printf.sprintf "/f%02d" i);
          W.Driver.write inst (Printf.sprintf "/f%02d" i) ~off:0
            (W.Driver.content ~seed:i 2048)
        done;
        W.Driver.sync inst;
        match Lfs_core.Fs.mount io with
        | Ok _ -> ()
        | Error e -> failwith e))
  in
  let trace =
    Test.make ~name:"trace:replay" (Staged.stage (fun () ->
        let events =
          W.Trace.generate
            ~config:{ W.Trace.default_gen with W.Trace.events = 400; target_live = 80; dirs = 4 }
            ()
        in
        List.iter
          (fun inst -> ignore (W.Trace.replay inst events))
          (W.Setup.both ~disk_mb:16 ())))
  in
  Test.make_grouped ~name:"figures" [ fig12; fig3; fig4; fig5; recovery; trace ]

let run_bechamel () =
  let open Bechamel in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:20 ~quota:(Time.second 2.0) () in
  let raw = Benchmark.all cfg instances (bechamel_tests ()) in
  let results = List.map (fun i -> Analyze.all ols i raw) instances in
  let results = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun measure tbl ->
      Hashtbl.iter
        (fun name ols_result ->
          say "%s (%s): %s" name measure
            (match Analyze.OLS.estimates ols_result with
            | Some (est :: _) -> Printf.sprintf "%.3f ms/run" (est /. 1e6)
            | Some [] | None -> "n/a"))
        tbl)
    results

let run_scaling () =
  header "Ablation: CPU scaling (the section 3.1 argument - a 10x faster\n\
          CPU speeds file creation by only ~20% on FFS; LFS scales)";
  let nfiles = if !quick then 500 else 2_000 in
  let disk_mb = 64 in
  let rows =
    List.map
      (fun speedup ->
        let cpu =
          Lfs_disk.Cpu_model.scale Lfs_disk.Cpu_model.sun4_260
            (1.0 /. float_of_int speedup)
        in
        let rates =
          List.map
            (fun inst ->
              (W.Smallfile.run ~nfiles ~file_size:1024 inst).W.Smallfile
              .create_per_sec)
            (W.Setup.both ~disk_mb ~cpu ())
        in
        match rates with
        | [ lfs; ffs ] ->
            [
              Printf.sprintf "%dx" speedup;
              Lfs_util.Table.fmt_float ~decimals:0 lfs;
              Lfs_util.Table.fmt_float ~decimals:0 ffs;
            ]
        | _ -> assert false)
      [ 1; 2; 5; 10 ]
  in
  print_string
    (Lfs_util.Table.render
       ~headers:[ "CPU speed"; "LFS create/s"; "FFS create/s" ]
       rows);
  print_endline
    "\nLFS creation rate scales with the CPU; FFS stays pinned to disk\n\
     latency - the paper's MicroVAX-to-DecStation observation.";
  ()

let run_ablation_cache () =
  header "Ablation: file-cache size (section 2.2 - large caches absorb\n\
          reads, so disk traffic becomes write-dominated)";
  let events =
    W.Trace.generate
      ~config:
        {
          W.Trace.default_gen with
          W.Trace.events = (if !quick then 3_000 else 10_000);
          target_live = 800;
        }
      ()
  in
  let rows =
    List.map
      (fun cache_mb ->
        let lfs_config =
          {
            Config.default with
            Config.cache_blocks = cache_mb * 1024 * 1024 / 4096;
          }
        in
        let ffs_config =
          {
            Lfs_ffs.Config.default with
            Lfs_ffs.Config.cache_blocks = cache_mb * 1024 * 1024 / 8192;
          }
        in
        let measure inst =
          let r = W.Trace.replay inst events in
          let stats = Lfs_disk.Io.disk_stats (W.Driver.io inst) in
          (r.W.Trace.ops_per_sec, stats.Lfs_disk.Disk.sectors_read * 512)
        in
        let lfs_ops, lfs_read =
          measure (W.Setup.lfs ~disk_mb:128 ~config:lfs_config ())
        in
        let ffs_ops, ffs_read =
          measure (W.Setup.ffs ~disk_mb:128 ~config:ffs_config ())
        in
        [
          Printf.sprintf "%d MB" cache_mb;
          Lfs_util.Table.fmt_float ~decimals:0 lfs_ops;
          Lfs_util.Table.fmt_bytes lfs_read;
          Lfs_util.Table.fmt_float ~decimals:0 ffs_ops;
          Lfs_util.Table.fmt_bytes ffs_read;
          Lfs_util.Table.fmt_ratio (lfs_ops /. ffs_ops);
        ])
      [ 1; 4; 16 ]
  in
  print_string
    (Lfs_util.Table.render
       ~headers:
         [ "cache"; "LFS ops/s"; "LFS disk reads"; "FFS ops/s"; "FFS disk reads"; "speedup" ]
       rows);
  print_endline
    "\nBigger caches soak up reads on both systems; what remains is write\n\
     traffic, which is exactly where the log wins - the paper's premise."

let run_trace () =
  header "Trace replay: synthetic office/engineering workload (mixed\n\
          create/read/overwrite/delete, Zipf-skewed, short lifetimes)";
  let events =
    W.Trace.generate
      ~config:
        {
          W.Trace.default_gen with
          W.Trace.events = (if !quick then 4_000 else 20_000);
          target_live = (if !quick then 500 else 2_000);
        }
      ()
  in
  let results =
    List.map (fun inst -> W.Trace.replay inst events) (W.Setup.both ~disk_mb:128 ())
  in
  let rows =
    List.map
      (fun (r : W.Trace.result) ->
        [
          r.W.Trace.label;
          string_of_int r.W.Trace.events;
          Lfs_util.Table.fmt_float ~decimals:0 r.W.Trace.ops_per_sec;
          Lfs_util.Table.fmt_bytes r.W.Trace.bytes_written;
          Lfs_util.Table.fmt_bytes r.W.Trace.bytes_read;
        ])
      results
  in
  print_string
    (Lfs_util.Table.render
       ~headers:[ "system"; "events"; "ops/s"; "written"; "read" ]
       rows);
  match results with
  | [ lfs; ffs ] ->
      Printf.printf "\nLFS end-to-end speedup on the mixed workload: %s\n"
        (Lfs_util.Table.fmt_ratio (lfs.W.Trace.ops_per_sec /. ffs.W.Trace.ops_per_sec))
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Clustered reads + sequential read-ahead                             *)
(* ------------------------------------------------------------------ *)

(* Cold sequential re-read of one large file with 8 KB requests, with
   the read optimizations disabled and enabled.  The interesting numbers
   are disk read *requests* (clustering and read-ahead turn many
   single-block reads into few multi-block ones) and simulated read
   bandwidth (per-request CPU and missed-rotation costs disappear when
   the data arrives in large transfers). *)
let run_readahead () =
  header "Clustered reads + read-ahead: cold sequential re-read";
  let file_mb = if !quick then 4 else 32 in
  let disk_mb = if !quick then 64 else 128 in
  let request = 8192 in
  let size = file_mb * 1024 * 1024 in
  let nreq = size / request in
  let measure inst =
    let path = "/bigfile" in
    W.Driver.create inst path;
    for i = 0 to nreq - 1 do
      W.Driver.write inst path ~off:(i * request)
        (W.Driver.content ~seed:i request)
    done;
    W.Driver.sync inst;
    W.Driver.flush_caches inst;
    let io = W.Driver.io inst in
    let m = Lfs_disk.Io.metrics io in
    let cval name = Lfs_obs.Metrics.value (Lfs_obs.Metrics.counter m name) in
    let snap () =
      let s = Lfs_disk.Io.disk_stats io in
      ( s.Lfs_disk.Disk.reads,
        s.Lfs_disk.Disk.sectors_read,
        cval "io.readahead.issued",
        cval "io.readahead.hit",
        cval "io.readahead.wasted",
        cval "io.clustered_reads",
        cval "io.clustered_read_blocks" )
    in
    let r0, s0, i0, h0, w0, cr0, cb0 = snap () in
    let t0 = Lfs_disk.Io.now_us io in
    for i = 0 to nreq - 1 do
      ignore (W.Driver.read inst path ~off:(i * request) ~len:request)
    done;
    let elapsed_us = Lfs_disk.Io.now_us io - t0 in
    let r1, s1, i1, h1, w1, cr1, cb1 = snap () in
    let result =
      ( r1 - r0,
        s1 - s0,
        float_of_int size /. 1024.0 /. (float_of_int elapsed_us /. 1e6),
        i1 - i0,
        h1 - h0,
        w1 - w0,
        cr1 - cr0,
        cb1 - cb0 )
    in
    W.Driver.sanitize inst;
    result
  in
  let lfs_off =
    {
      Config.default with
      Config.read_clustering = false;
      readahead_blocks = 0;
    }
  in
  let ffs_off =
    {
      Lfs_ffs.Config.default with
      Lfs_ffs.Config.read_clustering = false;
      readahead_blocks = 0;
    }
  in
  let systems =
    [
      ( "LFS",
        measure (W.Setup.lfs ~disk_mb ~config:lfs_off ()),
        measure (W.Setup.lfs ~disk_mb ()) );
      ( "FFS",
        measure (W.Setup.ffs ~disk_mb ~config:ffs_off ()),
        measure (W.Setup.ffs ~disk_mb ()) );
    ]
  in
  let entries =
    List.map
      (fun ( label,
             (b_reads, b_sectors, b_kbs, _, _, _, _, _),
             (c_reads, c_sectors, c_kbs, issued, hit, wasted, creq, cblocks) ) ->
        J.Obj
          [
            ("label", J.String label);
            ("file_mb", J.Int file_mb);
            ("base_reads", J.Int b_reads);
            ("base_sectors", J.Int b_sectors);
            ("base_kbs", J.Float b_kbs);
            ("clustered_reads", J.Int c_reads);
            ("clustered_sectors", J.Int c_sectors);
            ("clustered_kbs", J.Float c_kbs);
            ( "read_ratio",
              J.Float (float_of_int b_reads /. float_of_int (max 1 c_reads)) );
            ("bandwidth_ratio", J.Float (c_kbs /. b_kbs));
            ("readahead_issued", J.Int issued);
            ("readahead_hit", J.Int hit);
            ("readahead_wasted", J.Int wasted);
            ("clustered_read_requests", J.Int creq);
            ("clustered_read_blocks", J.Int cblocks);
          ])
      systems
  in
  add_figure "readahead" (J.List entries);
  let rows =
    List.map
      (fun ( label,
             (b_reads, _, b_kbs, _, _, _, _, _),
             (c_reads, _, c_kbs, issued, hit, wasted, _, _) ) ->
        [
          label;
          string_of_int b_reads;
          string_of_int c_reads;
          Lfs_util.Table.fmt_ratio
            (float_of_int b_reads /. float_of_int (max 1 c_reads));
          Lfs_util.Table.fmt_float ~decimals:0 b_kbs;
          Lfs_util.Table.fmt_float ~decimals:0 c_kbs;
          Lfs_util.Table.fmt_ratio (c_kbs /. b_kbs);
          Printf.sprintf "%d/%d/%d" issued hit wasted;
        ])
      systems
  in
  print_string
    (Lfs_util.Table.render
       ~headers:
         [
           "system"; "reads (off)"; "reads (on)"; "fewer"; "KB/s (off)";
           "KB/s (on)"; "speedup"; "ra issued/hit/wasted";
         ]
       rows)

(* ------------------------------------------------------------------ *)
(* Profile: per-operation latency attribution                          *)
(* ------------------------------------------------------------------ *)

(* The small-file workload (Figure 3's shape) on a deliberately small
   disk, so the log wraps and cleaner/checkpoint interference shows up
   in the attribution columns.  Per op: latency percentiles plus the
   exclusive-time split across cache/CPU, disk, cleaner and checkpoint
   work — the four columns sum to the op's total by construction. *)
let run_profile () =
  header "Profile: per-operation latency attribution (small-file workload)";
  let nfiles = if !quick then 1000 else 5000 in
  let disk_mb = if !quick then 16 else 48 in
  let entries =
    List.concat_map
      (fun inst ->
        let prof = Lfs_obs.Profile.attach (W.Driver.bus inst) in
        ignore (W.Smallfile.run ~nfiles ~file_size:1024 inst);
        Lfs_obs.Profile.detach prof;
        let rep = Lfs_obs.Profile.report prof in
        let label = W.Driver.label inst in
        say "%s (%d files of 1 KB, %d MB disk, simulated us):" label nfiles
          disk_mb;
        print_string (Lfs_obs.Profile.render_ops rep);
        say "";
        List.map
          (fun (s : Lfs_obs.Profile.op_stat) ->
            J.Obj
              [
                ("label", J.String label);
                ("op", J.String s.Lfs_obs.Profile.op);
                ("count", J.Int s.Lfs_obs.Profile.count);
                ("total_us", J.Int s.Lfs_obs.Profile.total_us);
                ("mean_us", J.Float s.Lfs_obs.Profile.mean_us);
                ("p50_us", J.Int s.Lfs_obs.Profile.p50_us);
                ("p95_us", J.Int s.Lfs_obs.Profile.p95_us);
                ("p99_us", J.Int s.Lfs_obs.Profile.p99_us);
                ("cache_us", J.Int s.Lfs_obs.Profile.cache_us);
                ("disk_us", J.Int s.Lfs_obs.Profile.disk_us);
                ("cleaner_us", J.Int s.Lfs_obs.Profile.cleaner_us);
                ("checkpoint_us", J.Int s.Lfs_obs.Profile.checkpoint_us);
              ])
          rep.Lfs_obs.Profile.ops)
      (W.Setup.both ~disk_mb ())
  in
  add_figure "profile" (J.List entries)

(* ------------------------------------------------------------------ *)
(* Concurrency: multi-client engine under a real request scheduler     *)
(* ------------------------------------------------------------------ *)

(* The concurrent-engine measurement: aggregate throughput and latency
   percentiles vs client count, LFS vs FFS, under FCFS vs C-SCAN.
   LFS's asynchronous log absorbs added clients — throughput keeps
   scaling with offered load — while FFS's synchronous metadata writes
   convoy every client behind the disk; C-SCAN buys back positioning
   time exactly where the device queue runs deep (FFS's scattered
   write-back), and changes nothing where the log is already
   sequential. *)
let run_concurrency () =
  header "Concurrency: N clients over one instance, FCFS vs C-SCAN";
  let client_counts = [ 1; 2; 4; 8; 16 ] in
  let ops = if !quick then 80 else 250 in
  let disk_mb = if !quick then 48 else 96 in
  let entries =
    List.concat_map
      (fun disc ->
        List.concat_map
          (fun clients ->
            List.map
              (fun inst ->
                let config =
                  {
                    W.Engine.default with
                    W.Engine.clients;
                    ops_per_client = ops;
                    discipline = Some disc;
                  }
                in
                let r = W.Engine.run ~config inst in
                say
                  "%-4s %-5s %2d clients: %7.1f ops/s  p50 %6d us  p99 %7d \
                   us  qdepth %4.1f  pos %5.0f us"
                  r.W.Engine.label r.W.Engine.discipline clients
                  r.W.Engine.ops_per_sec r.W.Engine.p50_us r.W.Engine.p99_us
                  r.W.Engine.mean_queue_depth r.W.Engine.mean_positioning_us;
                W.Engine.to_json r)
              (W.Setup.both ~disk_mb ()))
          client_counts)
      [ Lfs_disk.Sched.Fcfs; Lfs_disk.Sched.Cscan ]
  in
  add_figure "concurrency" (J.List entries)

let run_ablation_recovery () =
  header "Ablation: crash-recovery time - LFS checkpoint+roll-forward vs\n\
          FFS full-disk scan (fsck)";
  let cases = if !quick then [ 500; 2_000 ] else [ 1_000; 5_000; 20_000 ] in
  let rows =
    List.concat_map
      (fun nfiles ->
        let disk_mb = max 32 (nfiles * 12 / 1024) in
        (* Identical populations on both systems.  LFS checkpoints at 90%
           (a periodic checkpoint would have happened anyway), writes the
           final 10%, syncs — then the machine "crashes".  FFS syncs and
           crashes the same way. *)
        let lfs_fs =
          let io = W.Setup.make_io ~disk_mb () in
          (match Lfs_core.Fs.format io Config.default with
          | Ok () -> ()
          | Error e -> failwith e);
          match Lfs_core.Fs.mount io with
          | Ok fs -> fs
          | Error e -> failwith e
        in
        let lfs_inst = Lfs_vfs.Fs_intf.Instance ((module Lfs_core.Fs), lfs_fs) in
        let ffs_inst = W.Setup.ffs ~disk_mb () in
        let populate ?checkpoint_at inst =
          let ndirs = (nfiles + 99) / 100 in
          for d = 0 to ndirs - 1 do
            W.Driver.mkdir inst (Printf.sprintf "/d%04d" d)
          done;
          for i = 0 to nfiles - 1 do
            let path = Printf.sprintf "/d%04d/f%05d" (i / 100) i in
            W.Driver.create inst path;
            W.Driver.write inst path ~off:0 (W.Driver.content ~seed:i 2048);
            if i mod 200 = 199 then W.Driver.sync inst;
            match checkpoint_at with
            | Some n when i = n -> Lfs_core.Fs.checkpoint_now lfs_fs
            | Some _ | None -> ()
          done;
          W.Driver.sync inst
        in
        populate ~checkpoint_at:(nfiles * 9 / 10) lfs_inst;
        populate ffs_inst;
        let lfs_io = W.Driver.io lfs_inst in
        let media = Lfs_disk.Io.snapshot_media lfs_io in
        (* Recovery with roll-forward: replays the synced 10% tail. *)
        let audit what fs =
          (* After the timer stops — the scan must not count as recovery
             time. *)
          match Lfs_core.Fs.integrity fs with
          | [] -> ()
          | issues ->
              failwith (what ^ " integrity: " ^ String.concat "; " issues)
        in
        let cval name =
          Lfs_obs.Metrics.value
            (Lfs_obs.Metrics.counter (Lfs_disk.Io.metrics lfs_io) name)
        in
        let seg0 = cval "lfs.rollforward_segments" in
        let t0 = Lfs_disk.Io.now_us lfs_io in
        let rf_fs =
          match Lfs_core.Fs.mount lfs_io with
          | Ok fs -> fs
          | Error e -> failwith ("LFS recovery: " ^ e)
        in
        let rf_us = Lfs_disk.Io.now_us lfs_io - t0 in
        let segments_replayed = cval "lfs.rollforward_segments" - seg0 in
        audit "post-roll-forward" rf_fs;
        (* The paper's 1990 configuration: checkpoint only, no
           roll-forward — recovery is just the mount code. *)
        Lfs_disk.Io.restore_media lfs_io media;
        let config = { Config.default with Config.roll_forward = false } in
        let t0 = Lfs_disk.Io.now_us lfs_io in
        let cp_fs =
          match Lfs_core.Fs.mount ~config lfs_io with
          | Ok fs -> fs
          | Error e -> failwith ("LFS cp-only recovery: " ^ e)
        in
        let cp_us = Lfs_disk.Io.now_us lfs_io - t0 in
        audit "post-checkpoint-only" cp_fs;
        let ffs_io = W.Driver.io ffs_inst in
        let report =
          match Lfs_ffs.Fsck.run ffs_io with
          | Ok r -> r
          | Error e -> failwith ("fsck: " ^ e)
        in
        W.Driver.sanitize ffs_inst;
        let dur us = Format.asprintf "%a" Lfs_disk.Clock.pp_duration_us us in
        let entry =
          J.Obj
            [
              ("files", J.Int nfiles);
              ("lfs_checkpoint_us", J.Int cp_us);
              ("lfs_rollforward_us", J.Int rf_us);
              ("segments_replayed", J.Int segments_replayed);
              ("ffs_fsck_us", J.Int report.Lfs_ffs.Fsck.elapsed_us);
              ( "fsck_over_rollforward",
                J.Float
                  (float_of_int report.Lfs_ffs.Fsck.elapsed_us
                  /. float_of_int (max 1 rf_us)) );
            ]
        in
        [
          ( entry,
            [
              string_of_int nfiles;
              dur cp_us;
              dur rf_us;
              string_of_int segments_replayed;
              dur report.Lfs_ffs.Fsck.elapsed_us;
              Lfs_util.Table.fmt_ratio
                (float_of_int report.Lfs_ffs.Fsck.elapsed_us
                /. float_of_int (max 1 rf_us));
            ] );
        ])
      cases
  in
  add_figure "recovery" (J.List (List.map fst rows));
  print_string
    (Lfs_util.Table.render
       ~headers:
         [
           "files"; "LFS (checkpoint only)"; "LFS (roll-forward)";
           "segments replayed"; "FFS fsck"; "fsck / LFS-rf";
         ]
       (List.map snd rows))


(* ------------------------------------------------------------------ *)
(* Scale-out: multi-disk volumes - log bandwidth vs spindle count      *)
(* ------------------------------------------------------------------ *)

(* The paper's closing argument (section 6): because LFS turns all
   writes into large sequential log transfers, its write bandwidth
   should scale with the number of spindles when the log is striped -
   each whole-segment write splits into one contiguous run per member
   and completes in roughly segment/N media time.  FFS issues small
   update-in-place writes that land on one member each and serialize on
   completion, so extra spindles buy it little.  [Log_stripe] aligns the
   stripe with the segment (via [Config.segment_align_sectors]) so every
   member stream stays sequential; plain [Stripe] with a small chunk
   gets the same parallelism but chops each member's stream into
   scattered chunks - the per-member seek counts tell the two apart. *)
let run_scaleout () =
  header "Scale-out: write bandwidth vs volume members (striped log)";
  let member_mb = if !quick then 16 else 48 in
  let nfiles = if !quick then 256 else 1024 in
  let file_size = 8 * 1024 in
  let member_counts = [ 1; 2; 4; 8 ] in
  let config = Config.default in
  let stripe = config.Config.segment_size / 512 in
  let entries =
    List.concat_map
      (fun (policy_name, policy_of, align) ->
        List.concat_map
          (fun members ->
            let run label mk =
              let io =
                W.Setup.make_volume_io ~disk_mb:member_mb
                  ~cpu:Lfs_disk.Cpu_model.free ~policy:(policy_of members)
                  ~members ()
              in
              let inst = mk io in
              (* Seeks are measured as a delta over the timed window:
                 format and mount scan per-segment metadata (all of
                 which lands on member 0 under a stripe) and would
                 otherwise swamp the steady-state log behaviour this
                 figure is about. *)
              let seeks_at_start =
                List.init members (fun i ->
                    (Lfs_disk.Io.member_stats io i).Lfs_disk.Disk.seeks)
              in
              let t0 = Lfs_disk.Io.now_us io in
              for i = 0 to nfiles - 1 do
                let path = Printf.sprintf "/f%05d" i in
                W.Driver.create inst path;
                W.Driver.write inst path ~off:0
                  (W.Driver.content ~seed:i file_size);
                (* Sync once per segment's worth of data: frequent enough
                   that FFS cannot hide in its cache, rare enough that
                   the log still ships (mostly) whole segments. *)
                if (i + 1) * file_size mod config.Config.segment_size = 0 then
                  W.Driver.sync inst
              done;
              W.Driver.sync inst;
              let elapsed_us = max 1 (Lfs_disk.Io.now_us io - t0) in
              let member_seeks =
                List.map2 (fun s0 s -> s - s0) seeks_at_start
                  (List.init members (fun i ->
                       (Lfs_disk.Io.member_stats io i).Lfs_disk.Disk.seeks))
              in
              let stats = Lfs_disk.Io.disk_stats io in
              W.Driver.sanitize inst;
              let mbs =
                float_of_int (nfiles * file_size)
                /. 1024.0 /. 1024.0
                /. (float_of_int elapsed_us /. 1e6)
              in
              say "%-4s %-10s %d member%s: %6.2f MB/s  seeks/member max %5d"
                label policy_name members
                (if members = 1 then " " else "s")
                mbs
                (List.fold_left max 0 member_seeks);
              J.Obj
                [
                  ("label", J.String label);
                  ("policy", J.String policy_name);
                  ("members", J.Int members);
                  ("files", J.Int nfiles);
                  ("file_size", J.Int file_size);
                  ("elapsed_us", J.Int elapsed_us);
                  ("write_mb_per_sec", J.Float mbs);
                  ("sectors_written", J.Int stats.Lfs_disk.Disk.sectors_written);
                  ( "seeks_per_member_max",
                    J.Int (List.fold_left max 0 member_seeks) );
                  ( "seeks_per_member_min",
                    J.Int (List.fold_left min max_int member_seeks) );
                ]
            in
            let lfs_config = { config with Config.segment_align_sectors = align } in
            [
              run "LFS" (fun io -> W.Setup.lfs_on io ~config:lfs_config ());
              run "FFS" (fun io -> W.Setup.ffs_on io ());
            ])
          member_counts)
      [
        ( "log_stripe",
          (fun _ -> Lfs_disk.Volume.Log_stripe { stripe_sectors = stripe }),
          stripe );
        ("stripe", (fun _ -> Lfs_disk.Volume.Stripe { chunk_sectors = 64 }), 0);
      ]
  in
  add_figure "scaleout" (J.List entries);
  print_endline
    "\nLFS write bandwidth grows with the member count because every\n\
     segment write splits into one contiguous run per spindle; FFS\n\
     serializes small writes and stays pinned to one-disk latency."

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("fig1", run_fig12);
    ("fig2", run_fig12);
    ("fig12", run_fig12);
    ("fig3", run_fig3);
    ("fig4", run_fig4);
    ("fig5", run_fig5);
    ("segsize", run_ablation_segsize);
    ("policy", run_ablation_policy);
    ("util", run_ablation_util);
    ("checkpoint", run_ablation_checkpoint);
    ("recovery", run_ablation_recovery);
    ("scaling", run_scaling);
    ("cache", run_ablation_cache);
    ("trace", run_trace);
    ("readahead", run_readahead);
    ("profile", run_profile);
    ("concurrency", run_concurrency);
    ("scaleout", run_scaleout);
  ]

let default_order =
  [
    "fig12"; "fig3"; "fig4"; "fig5"; "readahead"; "profile"; "concurrency";
    "scaleout"; "segsize"; "policy"; "util"; "checkpoint"; "recovery";
    "scaling"; "cache"; "trace";
  ]

(* ------------------------------------------------------------------ *)
(* Machine-readable output                                             *)
(* ------------------------------------------------------------------ *)

let bench_schema = "lfs-bench/1"

let write_json file =
  let doc =
    J.Obj
      [
        ("schema", J.String bench_schema);
        ("quick", J.Bool !quick);
        ("figures", J.Obj (List.rev !figures));
      ]
  in
  let oc = open_out file in
  output_string oc (J.to_string_pretty doc);
  output_char oc '\n';
  close_out oc;
  say "wrote %s" file

(* Validate a [--json] file: the schema marker plus, for each figure
   present, the fields a plotting script would reach for.  Exits
   non-zero on the first problem. *)
let run_check_json file =
  let fail fmt =
    Printf.ksprintf
      (fun s ->
        Printf.eprintf "%s: %s\n" file s;
        exit 1)
      fmt
  in
  let doc =
    let ic = open_in_bin file in
    let len = in_channel_length ic in
    let raw = really_input_string ic len in
    close_in ic;
    match J.of_string_opt raw with
    | Some j -> j
    | None -> fail "not valid JSON"
  in
  (match J.member "schema" doc with
  | Some (J.String s) when s = bench_schema -> ()
  | Some (J.String s) -> fail "schema %S, expected %S" s bench_schema
  | _ -> fail "missing \"schema\"");
  let figs =
    match J.member "figures" doc with
    | Some (J.Obj kvs) -> kvs
    | _ -> fail "missing \"figures\" object"
  in
  if figs = [] then fail "\"figures\" is empty";
  let num entry field =
    match J.member field entry with
    | Some v -> (
        match J.to_float_opt v with
        | Some f -> f
        | None -> fail "field %S is not a number" field)
    | None -> fail "missing field %S" field
  in
  let check_entries name fields =
    match List.assoc_opt name figs with
    | None -> ()
    | Some (J.List entries) ->
        if entries = [] then fail "figure %S has no entries" name;
        List.iter
          (fun entry -> List.iter (fun f -> ignore (num entry f)) fields)
          entries;
        say "%s: %s ok (%d entries)" file name (List.length entries)
    | Some _ -> fail "figure %S is not a list" name
  in
  check_entries "fig12" [ "writes"; "sync_writes"; "sectors_written" ];
  check_entries "fig3" [ "create_per_sec"; "read_per_sec"; "delete_per_sec" ];
  check_entries "fig4"
    [
      "seq_write_kbs"; "seq_read_kbs"; "rand_write_kbs"; "rand_read_kbs";
      "seq_reread_kbs";
    ];
  check_entries "fig5" [ "utilization"; "clean_kb_per_sec"; "write_cost" ];
  check_entries "recovery"
    [
      "files"; "lfs_checkpoint_us"; "lfs_rollforward_us"; "segments_replayed";
      "ffs_fsck_us"; "fsck_over_rollforward";
    ];
  check_entries "readahead"
    [
      "base_reads"; "base_kbs"; "clustered_reads"; "clustered_kbs";
      "read_ratio"; "bandwidth_ratio"; "readahead_issued"; "readahead_hit";
      "readahead_wasted";
    ];
  check_entries "profile"
    [
      "count"; "total_us"; "mean_us"; "p50_us"; "p95_us"; "p99_us";
      "cache_us"; "disk_us"; "cleaner_us"; "checkpoint_us";
    ];
  check_entries "concurrency"
    [
      "clients"; "total_ops"; "elapsed_us"; "ops_per_sec"; "mean_us";
      "p50_us"; "p99_us"; "mean_queue_depth"; "mean_queue_wait_us";
      "mean_positioning_us";
    ];
  check_entries "scaleout"
    [
      "members"; "files"; "file_size"; "elapsed_us"; "write_mb_per_sec";
      "sectors_written"; "seeks_per_member_max"; "seeks_per_member_min";
    ];
  (* The scale-out invariants.  (a) Striping the log works: LFS write
     bandwidth under [log_stripe] grows at least 3x from 1 to 4 members
     while FFS gains under 1.5x from the same spindles.  (b) The
     segment-aligned stripe keeps every member's stream sequential: the
     busiest member of a 4-way log stripe seeks at most twice as often
     as the single-disk log does. *)
  (match List.assoc_opt "scaleout" figs with
  | Some (J.List entries) ->
      let str entry field =
        match J.member field entry with
        | Some (J.String s) -> s
        | _ -> fail "scaleout: missing string field %S" field
      in
      let find label policy members field =
        match
          List.find_opt
            (fun e ->
              str e "label" = label
              && str e "policy" = policy
              && int_of_float (num e "members") = members)
            entries
        with
        | Some e -> num e field
        | None ->
            fail "scaleout: missing entry %s/%s/%d" label policy members
      in
      let scaling label =
        find label "log_stripe" 4 "write_mb_per_sec"
        /. find label "log_stripe" 1 "write_mb_per_sec"
      in
      if scaling "LFS" < 3.0 then
        fail "scaleout: LFS log_stripe 1->4 members scales %gx, want >= 3x"
          (scaling "LFS");
      if scaling "FFS" >= 1.5 then
        fail "scaleout: FFS 1->4 members scales %gx, expected < 1.5x"
          (scaling "FFS");
      let single = find "LFS" "log_stripe" 1 "seeks_per_member_max" in
      let striped = find "LFS" "log_stripe" 4 "seeks_per_member_max" in
      if striped > 2.0 *. single then
        fail
          "scaleout: per-member seeks under log_stripe (%g) exceed 2x the \
           single-disk log (%g)"
          striped single
  | Some _ -> fail "figure \"scaleout\" is not a list"
  | None -> ());
  (* The concurrency invariants.  (a) LFS aggregate throughput degrades
     more gracefully than FFS as clients grow: the ratio of throughput
     at the highest client count to the lowest must be strictly better
     for LFS under every discipline.  (b) Reordering is a real
     optimisation, not an accounting fiction: wherever the FCFS run
     reaches mean queue depth >= 4, the matching C-SCAN run must show
     strictly lower mean positioning time — and at least one such deep
     pair must exist, or the figure measured nothing. *)
  (match List.assoc_opt "concurrency" figs with
  | Some (J.List entries) ->
      let str entry field =
        match J.member field entry with
        | Some (J.String s) -> s
        | _ -> fail "concurrency: missing string field %S" field
      in
      let find label disc clients field =
        match
          List.find_opt
            (fun e ->
              str e "label" = label
              && str e "discipline" = disc
              && int_of_float (num e "clients") = clients)
            entries
        with
        | Some e -> num e field
        | None -> fail "concurrency: missing entry %s/%s/%d" label disc clients
      in
      let clients_of label disc =
        List.filter_map
          (fun e ->
            if str e "label" = label && str e "discipline" = disc then
              Some (int_of_float (num e "clients"))
            else None)
          entries
      in
      List.iter
        (fun disc ->
          let cs = clients_of "LFS" disc in
          if cs = [] then fail "concurrency: no LFS entries for %s" disc;
          let lo = List.fold_left min (List.hd cs) cs in
          let hi = List.fold_left max (List.hd cs) cs in
          if hi <= lo then
            fail "concurrency: need more than one client count for %s" disc;
          let ratio label =
            find label disc hi "ops_per_sec" /. find label disc lo "ops_per_sec"
          in
          if ratio "LFS" <= ratio "FFS" then
            fail
              "concurrency: LFS throughput ratio %dx->%dx clients (%g) does \
               not beat FFS (%g) under %s"
              lo hi (ratio "LFS") (ratio "FFS") disc)
        [ "fcfs"; "cscan" ];
      let deep_pairs = ref 0 in
      List.iter
        (fun e ->
          if str e "discipline" = "fcfs" && num e "mean_queue_depth" >= 4.0
          then begin
            incr deep_pairs;
            let label = str e "label" in
            let clients = int_of_float (num e "clients") in
            let fcfs_pos = num e "mean_positioning_us" in
            let cscan_pos = find label "cscan" clients "mean_positioning_us" in
            if cscan_pos >= fcfs_pos then
              fail
                "concurrency: C-SCAN positioning (%g us) not below FCFS (%g \
                 us) for %s at %d clients (queue depth %g)"
                cscan_pos fcfs_pos label clients
                (num e "mean_queue_depth")
          end)
        entries;
      if !deep_pairs = 0 then
        fail "concurrency: no FCFS run reached mean queue depth >= 4"
  | Some _ -> fail "figure \"concurrency\" is not a list"
  | None -> ());
  (* The read-ahead accounting invariant: every prefetched block is
     eventually either consumed (hit) or written off (wasted), never
     both, so the served total cannot exceed what was issued. *)
  (match List.assoc_opt "readahead" figs with
  | Some (J.List entries) ->
      List.iter
        (fun entry ->
          let issued = num entry "readahead_issued" in
          let hit = num entry "readahead_hit" in
          let wasted = num entry "readahead_wasted" in
          if hit +. wasted > issued then
            fail "readahead: hit (%g) + wasted (%g) > issued (%g)" hit wasted
              issued)
        entries
  | Some _ | None -> ());
  (* The attribution invariant: the four exclusive-time columns must sum
     to the op's total (within 1% — they sum exactly by construction, so
     any drift is an instrumentation bug), and quantiles must be
     ordered. *)
  match List.assoc_opt "profile" figs with
  | Some (J.List entries) ->
      List.iter
        (fun entry ->
          let total = num entry "total_us" in
          let parts =
            num entry "cache_us" +. num entry "disk_us"
            +. num entry "cleaner_us"
            +. num entry "checkpoint_us"
          in
          if Float.abs (parts -. total) > Float.max 1.0 (total /. 100.0) then
            fail "profile: attribution %g does not sum to total %g" parts
              total;
          let p50 = num entry "p50_us" and p99 = num entry "p99_us" in
          if p50 > p99 then fail "profile: p50 (%g) > p99 (%g)" p50 p99)
        entries
  | Some _ | None -> ()

let usage () =
  Printf.eprintf
    "usage: main.exe [--quick] [--bechamel] [--json FILE] [--check-json \
     FILE] [experiment...]\nknown experiments: %s\n"
    (String.concat ", " (List.map fst experiments));
  exit 2

let () =
  let argc = Array.length Sys.argv in
  let i = ref 1 in
  while !i < argc do
    (match Sys.argv.(!i) with
    | "--quick" -> quick := true
    | "--bechamel" -> bechamel := true
    | "--json" when !i + 1 < argc ->
        incr i;
        json_out := Some Sys.argv.(!i)
    | "--check-json" when !i + 1 < argc ->
        incr i;
        check_json := Some Sys.argv.(!i)
    | name when List.mem_assoc name experiments ->
        selected := name :: !selected
    | other ->
        Printf.eprintf "unknown argument %S\n" other;
        usage ());
    incr i
  done;
  match !check_json with
  | Some file -> run_check_json file
  | None ->
      if !bechamel then run_bechamel ()
      else begin
        let todo =
          match List.rev !selected with
          | [] -> default_order
          | l -> List.sort_uniq compare l
        in
        List.iter (fun name -> (List.assoc name experiments) ()) todo;
        Option.iter write_json !json_out
      end
