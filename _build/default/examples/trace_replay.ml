(* Trace record/replay: generate a synthetic office/engineering workload
   trace, save it to a file, and replay it on both file systems on
   identical simulated hardware.

   Run with:  dune exec examples/trace_replay.exe [events] *)

module Trace = Lfs_workload.Trace
module W = Lfs_workload

let () =
  let nevents =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 5_000
  in
  let events =
    Trace.generate
      ~config:{ Trace.default_gen with Trace.events = nevents; target_live = 800 }
      ()
  in
  (* Traces serialize to plain text: save, reload, and replay the reloaded
     copy (so this example also demonstrates the format round trip). *)
  let path = Filename.temp_file "lfs_trace" ".txt" in
  let oc = open_out path in
  output_string oc (Trace.to_lines events);
  close_out oc;
  let ic = open_in path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let events = Trace.of_lines text in
  Printf.printf "trace: %d events saved to %s and reloaded\n\n"
    (List.length events) path;
  let creates, reads, overwrites, deletes =
    List.fold_left
      (fun (c, r, o, d) ev ->
        match ev with
        | Trace.Create _ -> (c + 1, r, o, d)
        | Trace.Read _ -> (c, r + 1, o, d)
        | Trace.Overwrite _ -> (c, r, o + 1, d)
        | Trace.Delete _ -> (c, r, o, d + 1)
        | Trace.Mkdir _ -> (c, r, o, d))
      (0, 0, 0, 0) events
  in
  Printf.printf "mix: %d creates, %d reads, %d overwrites, %d deletes\n\n"
    creates reads overwrites deletes;
  let results =
    List.map (fun inst -> Trace.replay inst events) (W.Setup.both ~disk_mb:64 ())
  in
  List.iter
    (fun (r : Trace.result) ->
      Printf.printf "%-4s: %7.0f ops/s  (%s written, %s read, %.1f s simulated)\n"
        r.Trace.label r.Trace.ops_per_sec
        (Lfs_util.Table.fmt_bytes r.Trace.bytes_written)
        (Lfs_util.Table.fmt_bytes r.Trace.bytes_read)
        (float_of_int r.Trace.elapsed_us /. 1e6))
    results;
  match results with
  | [ lfs; ffs ] ->
      Printf.printf "\nLFS speedup on the mixed workload: %.1fx\n"
        (lfs.Trace.ops_per_sec /. ffs.Trace.ops_per_sec)
  | _ -> ()
