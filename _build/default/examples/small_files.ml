(* The office/engineering workload of §5.1: thousands of small files
   created, read and deleted — run side by side on LFS and the FFS
   baseline, on identical simulated hardware.

   Run with:  dune exec examples/small_files.exe [nfiles] *)

module W = Lfs_workload

let () =
  let nfiles =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 2_000
  in
  Printf.printf
    "Creating, reading and deleting %d one-kilobyte files on both file\n\
     systems (WREN IV disk, Sun-4/260 CPU; all rates in simulated time).\n\n"
    nfiles;
  let results =
    List.map
      (fun inst ->
        let r = W.Smallfile.run ~nfiles ~file_size:1024 inst in
        (* Show what the disk actually did. *)
        let io = W.Driver.io inst in
        let stats = Lfs_disk.Disk.stats (Lfs_disk.Io.disk io) in
        Printf.printf
          "%s: %d disk writes, %d disk reads, %d seeks, disk busy %.1f s\n"
          (W.Driver.label inst) stats.Lfs_disk.Disk.writes
          stats.Lfs_disk.Disk.reads stats.Lfs_disk.Disk.seeks
          (float_of_int stats.Lfs_disk.Disk.busy_us /. 1e6);
        r)
      (W.Setup.both ~disk_mb:128 ())
  in
  print_newline ();
  print_string (W.Report.fig3 results);
  match results with
  | [ lfs; ffs ] ->
      Printf.printf
        "\nLFS speedup: create %.1fx, read %.1fx, delete %.1fx\n"
        (lfs.W.Smallfile.create_per_sec /. ffs.W.Smallfile.create_per_sec)
        (lfs.W.Smallfile.read_per_sec /. ffs.W.Smallfile.read_per_sec)
        (lfs.W.Smallfile.delete_per_sec /. ffs.W.Smallfile.delete_per_sec)
  | _ -> ()
