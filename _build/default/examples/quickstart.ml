(* Quickstart: create an LFS on a simulated disk, write and read files,
   and look at the storage manager's state.

   Run with:  dune exec examples/quickstart.exe *)

module Clock = Lfs_disk.Clock
module Cpu_model = Lfs_disk.Cpu_model
module Disk = Lfs_disk.Disk
module Fs = Lfs_core.Fs
module Geometry = Lfs_disk.Geometry
module Io = Lfs_disk.Io

let ok = function
  | Ok v -> v
  | Error e -> failwith (Lfs_vfs.Errors.to_string e)

let () =
  (* 1. A simulated 64 MB disk with the paper's WREN IV timing, a clock,
     and a CPU cost model: the "hardware". *)
  let geometry = Geometry.wren_iv ~size_bytes:(64 * 1024 * 1024) in
  let disk = Disk.create geometry in
  let io = Io.create disk (Clock.create ()) Cpu_model.sun4_260 in
  Format.printf "%a@." Geometry.pp geometry;

  (* 2. Format and mount an LFS with default (paper) parameters:
     4 KB blocks, 1 MB segments, greedy cleaning. *)
  (match Fs.format io Lfs_core.Config.default with
  | Ok () -> ()
  | Error e -> failwith e);
  let fs =
    match Fs.mount io with Ok fs -> fs | Error e -> failwith e
  in
  Format.printf "%a@." Lfs_core.Layout.pp (Fs.layout fs);

  (* 3. Ordinary file-system calls. *)
  ok (Fs.mkdir fs "/projects");
  ok (Fs.create fs "/projects/notes.txt");
  ok (Fs.write fs "/projects/notes.txt" ~off:0
        (Bytes.of_string "The log is the storage."));
  let data = ok (Fs.read fs "/projects/notes.txt" ~off:0 ~len:1024) in
  Printf.printf "read back: %S\n" (Bytes.to_string data);

  (* 4. Everything so far lives in the file cache: no disk write has
     happened yet.  sync pushes a segment out. *)
  let stats = Lfs_disk.Disk.stats disk in
  Printf.printf "disk writes before sync: %d\n" stats.Lfs_disk.Disk.writes;
  Fs.sync fs;
  Printf.printf "disk writes after sync:  %d (one segment write)\n"
    stats.Lfs_disk.Disk.writes;

  (* 5. Simulated time has been charged for every operation. *)
  Printf.printf "simulated time elapsed: %.3f ms\n"
    (float_of_int (Io.now_us io) /. 1000.0);

  (* 6. A checkpoint makes the state instantly recoverable; unmount does
     one automatically. *)
  Fs.unmount fs;
  let fs2 = match Fs.mount io with Ok fs -> fs | Error e -> failwith e in
  Printf.printf "after remount: /projects contains %s\n"
    (String.concat ", " (ok (Fs.readdir fs2 "/projects")));
  Printf.printf "segments clean: %d of %d\n"
    (Fs.clean_segment_count fs2)
    (Fs.layout fs2).Lfs_core.Layout.nsegments
