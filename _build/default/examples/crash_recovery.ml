(* Crash recovery (§4.4): checkpoints, roll-forward, and torn writes.

   Simulates a power cut at three different moments and shows what the
   recovered file system contains each time.

   Run with:  dune exec examples/crash_recovery.exe *)

module Clock = Lfs_disk.Clock
module Config = Lfs_core.Config
module Cpu_model = Lfs_disk.Cpu_model
module Disk = Lfs_disk.Disk
module Fs = Lfs_core.Fs
module Geometry = Lfs_disk.Geometry
module Io = Lfs_disk.Io

let ok = function
  | Ok v -> v
  | Error e -> failwith (Lfs_vfs.Errors.to_string e)

let fresh_fs () =
  let geometry = Geometry.wren_iv ~size_bytes:(32 * 1024 * 1024) in
  let disk = Disk.create geometry in
  let io = Io.create disk (Clock.create ()) Cpu_model.sun4_260 in
  (match Fs.format io Config.default with
  | Ok () -> ()
  | Error e -> failwith e);
  match Fs.mount io with Ok fs -> fs | Error e -> failwith e

let show_root banner fs =
  let names = ok (Fs.readdir fs "/") in
  Printf.printf "%-42s root: [%s]\n" banner (String.concat "; " names)

let recover fs =
  Disk.clear_crash (Io.disk (Fs.io fs));
  let t0 = Io.now_us (Fs.io fs) in
  let fs' = match Fs.mount (Fs.io fs) with Ok f -> f | Error e -> failwith e in
  let us = Io.now_us (Fs.io fs) - t0 in
  Printf.printf "  (recovery took %.2f ms of simulated time, %d segments replayed)\n"
    (float_of_int us /. 1000.0)
    (Fs.stats fs').Lfs_core.State.rollforward_segments;
  fs'

let () =
  print_endline "Scenario 1: crash with dirty data only in the cache";
  print_endline "----------------------------------------------------";
  let fs = fresh_fs () in
  ok (Fs.create fs "/checkpointed");
  ok (Fs.write fs "/checkpointed" ~off:0 (Bytes.of_string "safe"));
  Fs.checkpoint_now fs;
  ok (Fs.create fs "/in-cache-only");
  show_root "before crash:" fs;
  (* No sync: the second file exists only in memory.  Crash = remount. *)
  let fs = recover fs in
  show_root "after recovery:" fs;
  print_endline "  -> the un-synced file is gone; the checkpointed one survives.\n";

  print_endline "Scenario 2: crash after sync, before any checkpoint";
  print_endline "----------------------------------------------------";
  let fs = fresh_fs () in
  ok (Fs.create fs "/checkpointed");
  Fs.checkpoint_now fs;
  ok (Fs.create fs "/synced");
  ok (Fs.write fs "/synced" ~off:0 (Bytes.of_string "on disk, in the log"));
  Fs.sync fs;
  show_root "before crash:" fs;
  let fs = recover fs in
  show_root "after recovery:" fs;
  Printf.printf "  -> roll-forward replayed the log: %S\n\n"
    (Bytes.to_string (ok (Fs.read fs "/synced" ~off:0 ~len:64)));

  print_endline "Scenario 3: power cut tears a segment write in half";
  print_endline "----------------------------------------------------";
  let fs = fresh_fs () in
  ok (Fs.create fs "/checkpointed");
  ok (Fs.write fs "/checkpointed" ~off:0 (Bytes.of_string "intact"));
  Fs.checkpoint_now fs;
  ok (Fs.create fs "/torn");
  ok (Fs.write fs "/torn" ~off:0 (Bytes.make 100_000 'x'));
  Disk.set_crash_after (Io.disk (Fs.io fs)) ~sectors:37;
  (try Fs.sync fs with Disk.Crash -> print_endline "  ** power cut mid-write **");
  let fs = recover fs in
  show_root "after recovery:" fs;
  Printf.printf "  -> checkpointed file still reads %S; the torn segment was\n"
    (Bytes.to_string (ok (Fs.read fs "/checkpointed" ~off:0 ~len:64)));
  print_endline "     rejected by its CRC and never replayed."
