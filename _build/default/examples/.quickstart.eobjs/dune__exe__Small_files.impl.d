examples/small_files.ml: Array Lfs_disk Lfs_workload List Printf Sys
