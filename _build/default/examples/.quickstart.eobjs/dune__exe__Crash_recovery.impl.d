examples/crash_recovery.ml: Bytes Lfs_core Lfs_disk Lfs_vfs Printf String
