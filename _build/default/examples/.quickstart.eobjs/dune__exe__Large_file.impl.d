examples/large_file.ml: Array Lfs_workload List Printf Sys
