examples/segment_anatomy.ml: Bytes Lfs_core Lfs_vfs Lfs_workload List
