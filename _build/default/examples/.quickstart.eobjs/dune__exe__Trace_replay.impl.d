examples/trace_replay.ml: Array Filename Lfs_util Lfs_workload List Printf Sys
