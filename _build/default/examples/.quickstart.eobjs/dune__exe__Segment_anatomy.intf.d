examples/segment_anatomy.mli:
