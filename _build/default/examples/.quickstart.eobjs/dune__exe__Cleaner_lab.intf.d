examples/cleaner_lab.mli:
