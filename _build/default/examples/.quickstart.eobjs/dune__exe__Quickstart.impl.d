examples/quickstart.ml: Bytes Format Lfs_core Lfs_disk Lfs_vfs Printf String
