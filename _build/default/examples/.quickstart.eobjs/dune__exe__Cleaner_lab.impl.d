examples/cleaner_lab.ml: Array Lfs_core Lfs_vfs Lfs_workload List Printf String
