examples/quickstart.mli:
