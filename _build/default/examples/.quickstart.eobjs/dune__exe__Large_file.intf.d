examples/large_file.mli:
