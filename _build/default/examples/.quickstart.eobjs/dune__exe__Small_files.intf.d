examples/small_files.mli:
