(* Segment cleaning laboratory (§4.3): watch the cleaner regenerate free
   segments, and compare victim-selection policies under skewed
   overwrite traffic.

   Run with:  dune exec examples/cleaner_lab.exe *)

module Config = Lfs_core.Config
module Fs = Lfs_core.Fs
module W = Lfs_workload

let make_fs () =
  let io = W.Setup.make_io ~disk_mb:24 () in
  (match Fs.format io Config.default with
  | Ok () -> ()
  | Error e -> failwith e);
  match Fs.mount io with Ok fs -> fs | Error e -> failwith e

let segment_histogram fs =
  let report = Fs.segment_report fs in
  let buckets = Array.make 11 0 in
  let clean = ref 0 in
  List.iter
    (fun (_, state, u) ->
      match state with
      | Lfs_core.Seg_usage.Clean -> incr clean
      | Lfs_core.Seg_usage.Dirty | Lfs_core.Seg_usage.Active ->
          let b = min 10 (int_of_float (u *. 10.0)) in
          buckets.(b) <- buckets.(b) + 1)
    report;
  Printf.printf "  clean segments: %d\n" !clean;
  Array.iteri
    (fun i n ->
      if n > 0 then
        Printf.printf "  util %3d%%-%3d%%: %s (%d)\n" (i * 10)
          (min 100 ((i + 1) * 10))
          (String.make (min 60 n) '#')
          n)
    buckets

let () =
  print_endline "Part 1: fragmentation and cleaning";
  print_endline "-----------------------------------";
  let fs = make_fs () in
  Fs.set_auto_clean fs false;
  let inst = Lfs_vfs.Fs_intf.Instance ((module Fs), fs) in
  (* Fill with files, then delete two thirds: segments fragment. *)
  W.Driver.mkdir inst "/d";
  for i = 0 to 2999 do
    W.Driver.create inst (Printf.sprintf "/d/f%04d" i);
    W.Driver.write inst (Printf.sprintf "/d/f%04d" i) ~off:0
      (W.Driver.content ~seed:i 4096)
  done;
  W.Driver.sync inst;
  for i = 0 to 2999 do
    if i mod 3 <> 0 then W.Driver.delete inst (Printf.sprintf "/d/f%04d" i)
  done;
  W.Driver.sync inst;
  print_endline "after filling and deleting 2/3 of the files:";
  segment_histogram fs;
  let t0 = W.Driver.now_us inst in
  let freed = Fs.clean_now ~target:max_int fs in
  Printf.printf "\ncleaner freed %d segments in %.1f ms (write cost %.2f):\n"
    freed
    (float_of_int (W.Driver.now_us inst - t0) /. 1000.0)
    (Fs.write_cost fs);
  segment_histogram fs;

  print_endline "\nPart 2: cleaning policies under hot/cold traffic";
  print_endline "-------------------------------------------------";
  print_endline
    "90% of overwrites hit 10% of files (Zipf); disk at 70% utilization.";
  let results =
    List.map
      (fun policy ->
        W.Hotcold.run ~theta:0.99 ~ops:8_000 ~disk_utilization:0.7 ~policy
          (make_fs ()))
      [ Config.Greedy; Config.Cost_benefit; Config.Oldest ]
  in
  print_string (W.Report.policy_ablation results)
