(* Anatomy of the log: write a few files, then decode what actually
   landed on disk — segment summaries, block ownership records, and the
   checkpoint regions recovery would read.

   Run with:  dune exec examples/segment_anatomy.exe *)

module Fs = Lfs_core.Fs
module W = Lfs_workload

let ok = function Ok v -> v | Error e -> failwith (Lfs_vfs.Errors.to_string e)

let () =
  let io = W.Setup.make_io ~disk_mb:16 () in
  (match Fs.format io Lfs_core.Config.default with
  | Ok () -> ()
  | Error e -> failwith e);
  let fs = match Fs.mount io with Ok f -> f | Error e -> failwith e in
  ok (Fs.mkdir fs "/src");
  ok (Fs.create fs "/src/main.ml");
  ok (Fs.write fs "/src/main.ml" ~off:0 (Bytes.make 10_000 'm'));
  ok (Fs.create fs "/src/util.ml");
  ok (Fs.write fs "/src/util.ml" ~off:0 (Bytes.make 3_000 'u'));
  Fs.checkpoint_now fs;
  (* Overwrite one file so the log gains dead blocks, then checkpoint
     again: two generations visible on disk. *)
  ok (Fs.write fs "/src/util.ml" ~off:0 (Bytes.make 3_000 'U'));
  Fs.checkpoint_now fs;
  print_endline "The log, segment by segment:";
  print_endline "=============================";
  List.iter
    (fun (seg, state, _) ->
      if state <> Lfs_core.Seg_usage.Clean then
        print_string (Lfs_core.Inspect.describe_segment fs seg))
    (Fs.segment_report fs);
  print_endline "\nCheckpoint regions:";
  print_endline "===================";
  print_string (Lfs_core.Inspect.describe_checkpoints fs);
  print_endline "\nNote the data(ino=...) records the cleaner uses for its";
  print_endline "version check, the inode blocks written after their files'";
  print_endline "data, and the imap/usage blocks logged by the checkpoints."
