(** Absolute slash-separated paths.

    Both file systems resolve paths component by component through their
    directory files, exactly as the UNIX namei loop the paper's CPU cost
    model charges for. *)

val split : string -> (string list, Errors.t) result
(** [split "/a/b/c"] is [Ok ["a"; "b"; "c"]]; [split "/"] is [Ok []].
    Rejects relative paths, empty components, ["."]/[".."] components and
    components longer than {!max_name_len}. *)

val split_exn : string -> string list
(** @raise Errors.Error on invalid paths. *)

val parent_and_name : string -> (string list * string, Errors.t) result
(** [parent_and_name "/a/b/c"] is [Ok (["a"; "b"], "c")].  Fails on
    ["/"]. *)

val max_name_len : int
(** 255, as in BSD. *)

val valid_name : string -> bool
