(** Errors shared by every file system in the repository. *)

type t =
  | Enoent of string  (** no such file or directory *)
  | Eexist of string  (** name already exists *)
  | Enotdir of string  (** path component is not a directory *)
  | Eisdir of string  (** operation needs a file, got a directory *)
  | Enotempty of string  (** directory not empty *)
  | Enospc  (** device full *)
  | Efbig  (** file exceeds maximum representable size *)
  | Einval of string  (** malformed argument (bad name, bad offset...) *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val equal : t -> t -> bool

exception Error of t
(** Internal modules raise this; public APIs catch it and return
    [(_, t) result]. *)

val raise_ : t -> 'a
val wrap : (unit -> 'a) -> ('a, t) result
(** Run a thunk, converting {!Error} into [Error _]. *)
