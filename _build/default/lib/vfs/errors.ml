type t =
  | Enoent of string
  | Eexist of string
  | Enotdir of string
  | Eisdir of string
  | Enotempty of string
  | Enospc
  | Efbig
  | Einval of string

let pp ppf = function
  | Enoent p -> Format.fprintf ppf "no such file or directory: %s" p
  | Eexist p -> Format.fprintf ppf "already exists: %s" p
  | Enotdir p -> Format.fprintf ppf "not a directory: %s" p
  | Eisdir p -> Format.fprintf ppf "is a directory: %s" p
  | Enotempty p -> Format.fprintf ppf "directory not empty: %s" p
  | Enospc -> Format.fprintf ppf "no space left on device"
  | Efbig -> Format.fprintf ppf "file too large"
  | Einval m -> Format.fprintf ppf "invalid argument: %s" m

let to_string e = Format.asprintf "%a" pp e

let equal a b = a = b

exception Error of t

let raise_ e = raise (Error e)

let wrap f = match f () with v -> Ok v | exception Error e -> Error e
