(** Directory block format shared by both file systems.

    A directory file is a sequence of self-contained blocks (an entry
    never spans blocks, as in BSD): each block holds a u16 entry count
    followed by packed [(u32 inum, u16 len, name)] entries. *)

val parse : bytes -> (string * int) list
(** Entries of one block.  @raise Lfs_util.Codec.Error on corruption. *)

val encode : block_size:int -> (string * int) list -> bytes
(** One full block.  @raise Lfs_util.Codec.Error if the entries overflow
    the block. *)

val entry_bytes : string -> int
(** On-disk size of one entry with the given name. *)

val used_bytes : (string * int) list -> int
(** Bytes a block with these entries occupies (including the header). *)

val fits : block_size:int -> (string * int) list -> string -> bool
(** Whether one more entry named [name] fits. *)
