lib/vfs/errors.mli: Format
