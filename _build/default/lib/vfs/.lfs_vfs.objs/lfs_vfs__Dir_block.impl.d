lib/vfs/dir_block.ml: Lfs_util List String
