lib/vfs/fs_intf.ml: Errors Lfs_disk
