lib/vfs/errors.ml: Format
