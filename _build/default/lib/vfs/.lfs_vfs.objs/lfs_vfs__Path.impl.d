lib/vfs/path.ml: Errors List Printf String
