lib/vfs/path.mli: Errors
