lib/vfs/dir_block.mli:
