module Codec = Lfs_util.Codec

let entry_bytes name = 4 + 2 + String.length name

let used_bytes entries =
  List.fold_left (fun acc (name, _) -> acc + entry_bytes name) 2 entries

let fits ~block_size entries name =
  used_bytes entries + entry_bytes name <= block_size

let parse block =
  let d = Codec.decoder block in
  let n = Codec.read_u16 d in
  List.init n (fun _ ->
      let inum = Codec.read_u32 d in
      let name = Codec.read_string_u16 d in
      (name, inum))

let encode ~block_size entries =
  let e = Codec.encoder ~capacity:block_size () in
  Codec.u16 e (List.length entries);
  List.iter
    (fun (name, inum) ->
      Codec.u32 e inum;
      Codec.string_u16 e name)
    entries;
  Codec.pad_to e block_size;
  Codec.to_bytes e
