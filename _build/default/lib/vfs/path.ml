let max_name_len = 255

let valid_name name =
  String.length name > 0
  && String.length name <= max_name_len
  && name <> "."
  && name <> ".."
  && not (String.contains name '/')
  && not (String.contains name '\000')

let split path =
  if String.length path = 0 || path.[0] <> '/' then
    Error (Errors.Einval (Printf.sprintf "path must be absolute: %S" path))
  else begin
    let components =
      String.split_on_char '/' path |> List.filter (fun c -> c <> "")
    in
    (* Reject genuinely empty interior components ("//" is tolerated as in
       POSIX, but "a//b" collapses the same way, so only name validity
       remains to check). *)
    if List.for_all valid_name components then Ok components
    else Error (Errors.Einval (Printf.sprintf "invalid path component in %S" path))
  end

let split_exn path =
  match split path with Ok c -> c | Error e -> Errors.raise_ e

let parent_and_name path =
  match split path with
  | Error _ as e -> e
  | Ok [] -> Error (Errors.Einval "operation not valid on the root directory")
  | Ok components ->
      let rec last_split acc = function
        | [ name ] -> (List.rev acc, name)
        | c :: rest -> last_split (c :: acc) rest
        | [] -> assert false
      in
      Ok (last_split [] components)
