type t = {
  bits : Bytes.t;
  length : int;
  mutable cardinal : int;
}

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative size";
  { bits = Bytes.make ((n + 7) / 8) '\000'; length = n; cardinal = 0 }

let length t = t.length

let check t i =
  if i < 0 || i >= t.length then invalid_arg "Bitset: index out of range"

let mem t i =
  check t i;
  Char.code (Bytes.get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set t i =
  check t i;
  let byte = Char.code (Bytes.get t.bits (i lsr 3)) in
  let mask = 1 lsl (i land 7) in
  if byte land mask = 0 then begin
    Bytes.set t.bits (i lsr 3) (Char.chr (byte lor mask));
    t.cardinal <- t.cardinal + 1
  end

let clear t i =
  check t i;
  let byte = Char.code (Bytes.get t.bits (i lsr 3)) in
  let mask = 1 lsl (i land 7) in
  if byte land mask <> 0 then begin
    Bytes.set t.bits (i lsr 3) (Char.chr (byte land lnot mask));
    t.cardinal <- t.cardinal - 1
  end

let cardinal t = t.cardinal

let find_generic ~want t start =
  if t.length = 0 then None
  else begin
    let start = ((start mod t.length) + t.length) mod t.length in
    let rec scan i remaining =
      if remaining = 0 then None
      else if mem t i = want then Some i
      else scan (if i + 1 = t.length then 0 else i + 1) (remaining - 1)
    in
    scan start t.length
  end

let find_first_clear ?(start = 0) t = find_generic ~want:false t start
let find_first_set ?(start = 0) t = find_generic ~want:true t start

let iter_set f t =
  for i = 0 to t.length - 1 do
    if mem t i then f i
  done

let fill_all t =
  Bytes.fill t.bits 0 (Bytes.length t.bits) '\255';
  (* Clear any padding bits past [length] so cardinal stays exact. *)
  for i = t.length to (Bytes.length t.bits * 8) - 1 do
    let byte = Char.code (Bytes.get t.bits (i lsr 3)) in
    Bytes.set t.bits (i lsr 3) (Char.chr (byte land lnot (1 lsl (i land 7))))
  done;
  t.cardinal <- t.length

let clear_all t =
  Bytes.fill t.bits 0 (Bytes.length t.bits) '\000';
  t.cardinal <- 0

let copy t = { t with bits = Bytes.copy t.bits }

let to_bytes t = Bytes.copy t.bits

let of_bytes ~length b =
  let needed = (length + 7) / 8 in
  if Bytes.length b < needed then invalid_arg "Bitset.of_bytes: short buffer";
  let t = create length in
  Bytes.blit b 0 t.bits 0 needed;
  let card = ref 0 in
  for i = 0 to length - 1 do
    if mem t i then incr card
  done;
  (* Padding bits in the final byte must not count. *)
  for i = length to (needed * 8) - 1 do
    let byte = Char.code (Bytes.get t.bits (i lsr 3)) in
    Bytes.set t.bits (i lsr 3) (Char.chr (byte land lnot (1 lsl (i land 7))))
  done;
  t.cardinal <- !card;
  t
