(** CRC-32 (IEEE 802.3 polynomial), used to validate on-disk structures:
    checkpoint regions, segment summary blocks, and superblocks. *)

val digest_bytes : ?off:int -> ?len:int -> bytes -> int32
(** [digest_bytes ?off ?len b] is the CRC-32 of [len] bytes of [b]
    starting at [off] (defaults: the whole buffer). *)

val digest_string : string -> int32
