lib/util/table.mli:
