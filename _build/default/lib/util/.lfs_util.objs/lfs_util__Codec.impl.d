lib/util/codec.ml: Bytes Format Int32 Int64 String
