lib/util/bitset.mli:
