lib/util/lru.mli:
