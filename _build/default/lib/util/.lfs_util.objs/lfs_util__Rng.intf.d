lib/util/rng.mli:
