lib/util/codec.mli:
