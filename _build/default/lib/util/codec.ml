exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type encoder = { mutable buf : Bytes.t; mutable pos : int }

let encoder ?(capacity = 256) () = { buf = Bytes.create capacity; pos = 0 }

let ensure e n =
  let needed = e.pos + n in
  if needed > Bytes.length e.buf then begin
    let cap = max needed (2 * Bytes.length e.buf) in
    let buf = Bytes.create cap in
    Bytes.blit e.buf 0 buf 0 e.pos;
    e.buf <- buf
  end

let u8 e v =
  if v < 0 || v > 0xFF then error "Codec.u8: %d out of range" v;
  ensure e 1;
  Bytes.set_uint8 e.buf e.pos v;
  e.pos <- e.pos + 1

let u16 e v =
  if v < 0 || v > 0xFFFF then error "Codec.u16: %d out of range" v;
  ensure e 2;
  Bytes.set_uint16_le e.buf e.pos v;
  e.pos <- e.pos + 2

let u32 e v =
  if v < 0 || v > 0xFFFFFFFF then error "Codec.u32: %d out of range" v;
  ensure e 4;
  Bytes.set_int32_le e.buf e.pos (Int32.of_int v);
  e.pos <- e.pos + 4

let i64 e v =
  ensure e 8;
  Bytes.set_int64_le e.buf e.pos v;
  e.pos <- e.pos + 8

let int_as_i64 e v = i64 e (Int64.of_int v)
let bool e b = u8 e (if b then 1 else 0)

let bytes e b =
  ensure e (Bytes.length b);
  Bytes.blit b 0 e.buf e.pos (Bytes.length b);
  e.pos <- e.pos + Bytes.length b

let string_u16 e s =
  if String.length s > 0xFFFF then error "Codec.string_u16: too long";
  u16 e (String.length s);
  bytes e (Bytes.unsafe_of_string s)

let pos e = e.pos

let pad_to e n =
  if e.pos > n then error "Codec.pad_to: already past %d (at %d)" n e.pos;
  ensure e (n - e.pos);
  Bytes.fill e.buf e.pos (n - e.pos) '\000';
  e.pos <- n

let to_bytes e = Bytes.sub e.buf 0 e.pos

type decoder = { data : Bytes.t; limit : int; mutable dpos : int }

let decoder ?(off = 0) ?len data =
  let len = match len with Some l -> l | None -> Bytes.length data - off in
  if off < 0 || len < 0 || off + len > Bytes.length data then
    error "Codec.decoder: bad bounds";
  { data; limit = off + len; dpos = off }

let need d n = if d.dpos + n > d.limit then error "Codec: truncated input"

let read_u8 d =
  need d 1;
  let v = Bytes.get_uint8 d.data d.dpos in
  d.dpos <- d.dpos + 1;
  v

let read_u16 d =
  need d 2;
  let v = Bytes.get_uint16_le d.data d.dpos in
  d.dpos <- d.dpos + 2;
  v

let read_u32 d =
  need d 4;
  let v = Int32.to_int (Bytes.get_int32_le d.data d.dpos) land 0xFFFFFFFF in
  d.dpos <- d.dpos + 4;
  v

let read_i64 d =
  need d 8;
  let v = Bytes.get_int64_le d.data d.dpos in
  d.dpos <- d.dpos + 8;
  v

let read_int_as_i64 d = Int64.to_int (read_i64 d)
let read_bool d = read_u8 d <> 0

let read_bytes d n =
  need d n;
  let b = Bytes.sub d.data d.dpos n in
  d.dpos <- d.dpos + n;
  b

let read_string_u16 d =
  let n = read_u16 d in
  Bytes.unsafe_to_string (read_bytes d n)

let remaining d = d.limit - d.dpos

let skip d n =
  need d n;
  d.dpos <- d.dpos + n
