type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render ?align ~headers rows =
  let ncols = List.length headers in
  List.iteri
    (fun i row ->
      if List.length row <> ncols then
        invalid_arg
          (Printf.sprintf "Table.render: row %d has %d cells, expected %d" i
             (List.length row) ncols))
    rows;
  let aligns =
    match align with
    | Some a when List.length a = ncols -> a
    | Some _ -> invalid_arg "Table.render: align length mismatch"
    | None -> List.mapi (fun i _ -> if i = 0 then Left else Right) headers
  in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun w row -> max w (String.length (List.nth row i)))
          (String.length h) rows)
      headers
  in
  let render_row cells =
    String.concat "  "
      (List.map2 (fun (a, w) c -> pad a w c) (List.combine aligns widths) cells)
  in
  let sep = List.map (fun w -> String.make w '-') widths in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (render_row headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (render_row sep);
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let fmt_float ?(decimals = 1) f = Printf.sprintf "%.*f" decimals f

let fmt_bytes n =
  let f = float_of_int n in
  if n >= 1 lsl 30 then Printf.sprintf "%.1f GB" (f /. 1073741824.0)
  else if n >= 1 lsl 20 then Printf.sprintf "%.1f MB" (f /. 1048576.0)
  else if n >= 1 lsl 10 then Printf.sprintf "%.1f KB" (f /. 1024.0)
  else Printf.sprintf "%d B" n

let fmt_ratio r = Printf.sprintf "%.1fx" r
