(** Plain-text table rendering for benchmark reports.

    Produces the aligned rows the bench harness prints for each paper
    figure, e.g.:

    {v
    phase         LFS   SunFS-sim
    ------------  ----  ---------
    create 1k     182     18
    v} *)

type align = Left | Right

val render :
  ?align:align list ->
  headers:string list ->
  string list list ->
  string
(** [render ~headers rows] lays out [rows] under [headers] with columns
    padded to their widest cell.  [align] gives per-column alignment
    (default: first column [Left], the rest [Right]). *)

val fmt_float : ?decimals:int -> float -> string
(** Fixed-point rendering with a sensible default of one decimal. *)

val fmt_bytes : int -> string
(** Humanized byte count, e.g. ["1.0 MB"]. *)

val fmt_ratio : float -> string
(** e.g. ["10.3x"]. *)
