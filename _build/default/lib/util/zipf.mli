(** Zipf-distributed sampling over [0 .. n-1].

    Used by the hot/cold workload generators: office/engineering file
    access is highly skewed, and cleaning policies behave very differently
    under skewed vs uniform overwrite traffic. *)

type t

val create : n:int -> theta:float -> t
(** [create ~n ~theta] prepares a sampler over ranks [0..n-1] with
    exponent [theta] ([theta = 0] is uniform; [~0.99] is classic Zipf).
    @raise Invalid_argument if [n <= 0] or [theta < 0]. *)

val n : t -> int

val sample : t -> Rng.t -> int
(** Draw a rank; rank 0 is the hottest. *)
