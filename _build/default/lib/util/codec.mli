(** Little-endian byte codecs for on-disk structures.

    Every persistent LFS/FFS structure (superblocks, inodes, inode-map
    blocks, segment summaries, checkpoint regions, directory blocks) is
    serialized through these cursors, so layout is defined in exactly one
    place per structure and round-trip property tests cover them all. *)

exception Error of string
(** Raised on malformed input (short buffer, bad tag, bad magic). *)

(** {1 Encoding} *)

type encoder

val encoder : ?capacity:int -> unit -> encoder
val u8 : encoder -> int -> unit
val u16 : encoder -> int -> unit
val u32 : encoder -> int -> unit
(** [u32] accepts [0 .. 2^32-1] stored in an OCaml [int]. *)

val i64 : encoder -> int64 -> unit
val int_as_i64 : encoder -> int -> unit
val bool : encoder -> bool -> unit
val bytes : encoder -> bytes -> unit
(** Raw bytes, no length prefix. *)

val string_u16 : encoder -> string -> unit
(** Length-prefixed (u16) string.  @raise Error if longer than 65535. *)

val pos : encoder -> int
val pad_to : encoder -> int -> unit
(** [pad_to e n] appends zero bytes until the encoder holds [n] bytes.
    @raise Error if already longer than [n]. *)

val to_bytes : encoder -> bytes

(** {1 Decoding} *)

type decoder

val decoder : ?off:int -> ?len:int -> bytes -> decoder
val read_u8 : decoder -> int
val read_u16 : decoder -> int
val read_u32 : decoder -> int
val read_i64 : decoder -> int64
val read_int_as_i64 : decoder -> int
val read_bool : decoder -> bool
val read_bytes : decoder -> int -> bytes
val read_string_u16 : decoder -> string
val remaining : decoder -> int
val skip : decoder -> int -> unit
