(** Fixed-size mutable bit sets.

    Used for FFS block/inode allocation bitmaps and for tracking live
    blocks during segment cleaning.  Bits are indexed from [0] to
    [length - 1]. *)

type t

val create : int -> t
(** [create n] is a bit set of [n] bits, all clear.
    @raise Invalid_argument if [n < 0]. *)

val length : t -> int
(** Number of bits in the set. *)

val set : t -> int -> unit
(** [set t i] sets bit [i].  @raise Invalid_argument if out of range. *)

val clear : t -> int -> unit
(** [clear t i] clears bit [i]. *)

val mem : t -> int -> bool
(** [mem t i] is [true] iff bit [i] is set. *)

val cardinal : t -> int
(** Number of set bits. *)

val find_first_clear : ?start:int -> t -> int option
(** [find_first_clear ?start t] is the index of the first clear bit at or
    after [start] (default [0]), wrapping around to the beginning, or
    [None] if every bit is set. *)

val find_first_set : ?start:int -> t -> int option
(** Like {!find_first_clear} but searches for a set bit. *)

val iter_set : (int -> unit) -> t -> unit
(** [iter_set f t] applies [f] to the index of every set bit, ascending. *)

val fill_all : t -> unit
(** Set every bit. *)

val clear_all : t -> unit
(** Clear every bit. *)

val copy : t -> t

val to_bytes : t -> bytes
(** Serialize: packed little-endian bit order within each byte. *)

val of_bytes : length:int -> bytes -> t
(** [of_bytes ~length b] rebuilds a bit set of [length] bits from packed
    bytes produced by {!to_bytes}.
    @raise Invalid_argument if [b] is too short. *)
