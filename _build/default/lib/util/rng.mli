(** Deterministic pseudo-random numbers (splitmix64).

    All randomness in workloads and tests flows through an explicit [t] so
    every experiment is reproducible from its seed. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. *)

val copy : t -> t

val next_int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val split : t -> t
(** A new generator deterministically derived from (and advancing) [t]. *)
