(** Hot/cold overwrite traffic for the cleaning-policy ablations.

    Fills the disk to a target utilization with fixed-size files, then
    overwrites files drawn from a Zipf distribution ([theta = 0] is the
    uniform traffic of Figure 5's worst case; [theta ~ 1] is
    office/engineering locality).  Reports the cleaner's write-cost
    multiplier and sustained write bandwidth. *)

type result = {
  policy : Lfs_core.Config.policy;
  theta : float;
  disk_utilization : float;
  write_cost : float;
  write_kbs : float;
  segments_cleaned : int;
}

val run :
  ?file_size:int ->
  ?theta:float ->
  ?ops:int ->
  ?seed:int ->
  disk_utilization:float ->
  policy:Lfs_core.Config.policy ->
  Lfs_core.Fs.t ->
  result
(** @raise Driver.Benchmark_failure if the system collapses (the cleaner
    cannot keep up at this utilization) — itself a result worth
    reporting. *)
