(** Synthetic office/engineering traces.

    The paper characterizes its target workload via the Berkeley
    trace-driven analysis (reference [5]): many small files (mostly under
    8 KB), read sequentially and in their entirety, lifetimes often under
    a day, highly skewed access.  {!generate} produces an event stream
    with those properties; {!replay} runs it against any file system.
    Traces serialize to plain text, one event per line. *)

type event =
  | Create of { path : string; size : int }  (** create + whole-file write *)
  | Read of { path : string }  (** whole-file sequential read *)
  | Overwrite of { path : string; size : int }  (** rewrite in full *)
  | Delete of { path : string }
  | Mkdir of { path : string }

val pp_event : Format.formatter -> event -> unit

(** {1 Serialization} *)

val to_line : event -> string
val of_line : string -> event option
(** [None] on a blank line.  @raise Invalid_argument on garbage. *)

val to_lines : event list -> string
val of_lines : string -> event list

(** {1 Generation} *)

type gen_config = {
  events : int;
  dirs : int;  (** directory fan-out *)
  target_live : int;  (** steady-state live-file population *)
  read_fraction : float;
  overwrite_fraction : float;
  zipf_theta : float;  (** skew of read/overwrite targets *)
}

val default_gen : gen_config

val generate : ?seed:int -> ?config:gen_config -> unit -> event list
(** A well-formed trace: every event succeeds when replayed in order on
    an empty file system. *)

(** {1 Replay} *)

type result = {
  label : string;
  events : int;
  elapsed_us : int;
  ops_per_sec : float;
  bytes_written : int;
  bytes_read : int;
}

val replay : Lfs_vfs.Fs_intf.instance -> event list -> result
