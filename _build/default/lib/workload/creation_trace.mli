(** The §3.1 two-file creation example (Figures 1 and 2).

    Runs the paper's creat/write/close pair against a file system with
    request recording enabled, flushes the delayed writes, and reports
    every disk write that resulted — enough to show FFS's small random
    writes (half synchronous) versus LFS's single large sequential
    transfer. *)

type summary = {
  label : string;
  writes : int;
  sync_writes : int;
  sequential_writes : int;
  sectors_written : int;
  requests : Lfs_disk.Io.request list;  (** write requests, in order *)
}

val run : Lfs_vfs.Fs_intf.instance -> summary
