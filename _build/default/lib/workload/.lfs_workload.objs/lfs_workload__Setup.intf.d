lib/workload/setup.mli: Lfs_core Lfs_disk Lfs_ffs Lfs_vfs
