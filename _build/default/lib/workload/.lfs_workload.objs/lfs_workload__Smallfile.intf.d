lib/workload/smallfile.mli: Lfs_vfs
