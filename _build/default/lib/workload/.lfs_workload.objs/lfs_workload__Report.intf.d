lib/workload/report.mli: Cleaning Creation_trace Hotcold Largefile Smallfile
