lib/workload/creation_trace.ml: Driver Lfs_disk List
