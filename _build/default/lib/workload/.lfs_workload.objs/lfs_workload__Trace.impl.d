lib/workload/trace.ml: Array Bytes Driver Format Lfs_disk Lfs_util Lfs_vfs List Printf String
