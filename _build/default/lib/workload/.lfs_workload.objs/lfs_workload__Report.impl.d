lib/workload/report.ml: Buffer Cleaning Creation_trace Hotcold Largefile Lfs_core Lfs_disk Lfs_util List Printf Smallfile Stdlib String
