lib/workload/driver.mli: Lfs_disk Lfs_vfs
