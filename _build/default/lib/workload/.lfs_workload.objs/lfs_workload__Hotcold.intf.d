lib/workload/hotcold.mli: Lfs_core
