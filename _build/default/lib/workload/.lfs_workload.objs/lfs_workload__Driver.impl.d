lib/workload/driver.ml: Bytes Char Lfs_disk Lfs_util Lfs_vfs Printf
