lib/workload/creation_trace.mli: Lfs_disk Lfs_vfs
