lib/workload/cleaning.ml: Driver Lfs_core Lfs_util Lfs_vfs List Printf
