lib/workload/hotcold.ml: Driver Lfs_core Lfs_util Lfs_vfs Printf
