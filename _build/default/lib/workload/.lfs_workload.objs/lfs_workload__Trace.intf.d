lib/workload/trace.mli: Format Lfs_vfs
