lib/workload/largefile.ml: Driver Lfs_util
