lib/workload/setup.ml: Driver Lfs_core Lfs_disk Lfs_ffs Lfs_vfs
