lib/workload/cleaning.mli: Lfs_core
