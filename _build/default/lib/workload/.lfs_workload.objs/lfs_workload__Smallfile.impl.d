lib/workload/smallfile.ml: Driver Printf
