lib/workload/largefile.mli: Lfs_vfs
