(** Benchmark environments: a simulated WREN IV disk, a Sun-4/260 CPU
    model, and a freshly formatted file system — the §5 test setup. *)

val default_disk_mb : int

val make_io :
  ?disk_mb:int -> ?cpu:Lfs_disk.Cpu_model.t -> unit -> Lfs_disk.Io.t

val lfs :
  ?disk_mb:int ->
  ?cpu:Lfs_disk.Cpu_model.t ->
  ?config:Lfs_core.Config.t ->
  unit ->
  Lfs_vfs.Fs_intf.instance
(** A formatted, mounted LFS on fresh simulated hardware. *)

val ffs :
  ?disk_mb:int ->
  ?cpu:Lfs_disk.Cpu_model.t ->
  ?config:Lfs_ffs.Config.t ->
  unit ->
  Lfs_vfs.Fs_intf.instance

val both :
  ?disk_mb:int ->
  ?cpu:Lfs_disk.Cpu_model.t ->
  unit ->
  Lfs_vfs.Fs_intf.instance list
(** Both systems on identical hardware, LFS first — the comparison pair
    of every figure in §5. *)
