(** Checkpoint regions (§4.4.1).

    A checkpoint records where the inode-map and segment-usage blocks
    landed in the log, plus the log position, at an instant when the
    on-disk file system is self-consistent.  Two regions at fixed disk
    addresses are written alternately; recovery picks the one with the
    newest timestamp that passes its CRC, so a crash *during* a checkpoint
    write at worst falls back to the previous checkpoint. *)

type t = {
  timestamp_us : int;
  seq : int;  (** sequence number of the last segment written to the log *)
  tail_segment : int;  (** segment holding [seq]; [-1] if the log is empty *)
  next_inum_hint : int;
  imap_addrs : int array;  (** block address of every imap block *)
  usage_addrs : int array;  (** block address of every usage block *)
}

val encode : Layout.t -> t -> bytes
(** Exactly [cp_blocks * block_size] bytes.
    @raise Invalid_argument if the address arrays do not match the
    layout. *)

val decode : Layout.t -> bytes -> t option
(** [None] if magic or CRC fail (torn or never-written region). *)

val choose : t option -> t option -> t option
(** The newer of two candidate checkpoints. *)
