(** Segment cleaning (§4.3.2–§4.3.4).

    Cleaning proceeds in the paper's two phases: victims' live blocks are
    identified (version check first, then inode walk) and relocated to
    the log tail; dirty cache copies take precedence over the on-disk
    ones.  The evacuations (pointer blocks, inodes, inode-map and usage
    blocks) are flushed and the device drained before any victim is
    marked clean, so a moved block's only durable copy is never in a
    reusable segment.  When a victim carried post-checkpoint log (its
    sequence number would disappear from the roll-forward chain on
    reuse), a full checkpoint runs first — and [clean_to_target] starts
    by checkpointing whenever un-checkpointed log exists, which makes
    that case rare.

    Victim selection policies: [Greedy] (least-utilized first — the
    paper's choice), [Cost_benefit] (free-space gain weighted by data
    age), and [Oldest] (an ablation baseline). *)

val select_victims : ?live_budget:int -> State.t -> batch:int -> int list
(** Up to [batch] cleanable segments under the current policy, stopping
    once their combined live bytes would exceed [live_budget] (default:
    one segment's payload).  Segments whose utilization is at least
    [max_live_fraction] are not candidates (§4.3.4). *)

val clean_exact : State.t -> victims:int list -> int
(** Clean exactly the given segments (in live-budget-bounded batches),
    regardless of policy or thresholds.  Segments that are not Dirty are
    skipped.  Returns segments freed.  Used by the Figure 5 measurement,
    which must clean a chosen population once rather than clean to a
    target. *)

val clean_once : State.t -> batch:int -> int
(** Clean one batch of victims; returns how many segments were freed
    (0 when nothing is cleanable). *)

val clean_to_target : ?target:int -> State.t -> int
(** Clean until at least [target] segments are clean (default: the
    configuration's [clean_target_segments]) or nothing more can be
    cleaned.  Returns segments freed.  No-op if a cleaning pass is
    already running. *)

val write_cost : State.t -> float
(** Cumulative write-cost multiplier: (bytes logged + cleaner bytes
    read + live bytes moved) / bytes of new data logged.  1.0 means no
    cleaning overhead. *)
