(** The gather/write path (§4.1) and checkpointing (§4.4.1).

    [flush_data] drains the write buffer: every dirty data block, pointer
    block and inode is appended to the log in large sequential segment
    writes.  [checkpoint] additionally writes the dirty inode-map and
    segment-usage blocks, forces the partial segment out, waits for the
    device, and commits an alternating checkpoint region.

    Per-file ordering within a flush is data blocks, then double-indirect
    children, then the double-indirect top, then the single-indirect
    block — each write feeding the next structure's pointers — and
    finally the file's inode, packed with other dirty inodes into shared
    inode blocks whose addresses go to the inode map.

    Space discipline: a [`User] flush refuses to consume the reserve
    segments (raising [Enospc] so the caller can run the cleaner and
    retry); the cleaner's own bounded writes use [`System]. *)

val flush_data : State.t -> privilege:State.privilege -> unit
(** Drain dirty data and inodes into the log.  Leaves the active segment
    open (a partial segment is not forced).
    @raise Errors.Error [Enospc] if the log runs out of clean segments at
    this privilege. *)

val flush_file : State.t -> privilege:State.privilege -> int -> unit
(** Push one file's dirty data, pointer blocks and inode to the log
    (fsync's narrow flush); other files' dirty data stays buffered. *)

val flush_metadata : State.t -> privilege:State.privilege -> unit
(** Write only dirty pointer blocks, inodes, and inode-map/usage blocks —
    the bounded flush the cleaner uses to make its evacuations durable
    without dragging the whole data backlog along. *)

val flush_meta_blocks : State.t -> privilege:State.privilege -> unit
(** Write dirty inode-map and segment-usage blocks to the log, recording
    their new addresses for the next checkpoint. *)

val sync : State.t -> privilege:State.privilege -> unit
(** [flush_data], force the partial segment out, and wait for the
    device. *)

val checkpoint : ?privilege:State.privilege -> State.t -> unit
(** Full checkpoint (§4.4.1): flush everything including inode-map and
    usage blocks, then write the next checkpoint region synchronously.
    [privilege] (default [`System]) governs the data flush; the small
    metadata writes always run at [`System]. *)
