module Cache = Lfs_cache.Block_cache
module Errors = Lfs_vfs.Errors
module Io = Lfs_disk.Io

let check_range ~off ~len =
  if off < 0 || len < 0 then
    Errors.raise_ (Errors.Einval "negative offset or length")

let read (st : State.t) ~inum ~off ~len =
  check_range ~off ~len;
  let e = Inode_store.find st inum in
  let size = e.ino.Inode.size in
  let len = max 0 (min len (size - off)) in
  let bs = st.layout.Layout.block_size in
  let result = Bytes.make len '\000' in
  let pos = ref 0 in
  while !pos < len do
    let abs = off + !pos in
    let blkno = abs / bs in
    let in_block = abs mod bs in
    let chunk = min (len - !pos) (bs - in_block) in
    let addr = Inode_store.bmap_read st e blkno in
    if addr <> Layout.null_addr then begin
      let block = Block_io.read_file_block st ~inum ~blkno ~addr in
      Bytes.blit block in_block result !pos chunk
    end
    else begin
      (* A hole on disk may still have a dirty block in the cache. *)
      match Cache.find st.cache (Block_io.key_data ~inum ~blkno) with
      | Some block -> Bytes.blit block in_block result !pos chunk
      | None -> ()
    end;
    pos := !pos + chunk
  done;
  Io.charge_copy st.io ~bytes:len;
  Imap.set_atime_us st.imap inum (Io.now_us st.io);
  result

let write (st : State.t) ~inum ~off data =
  check_range ~off ~len:(Bytes.length data);
  let e = Inode_store.find st inum in
  let bs = st.layout.Layout.block_size in
  let len = Bytes.length data in
  if off + len > Inode.max_size st.layout then Errors.raise_ Errors.Efbig;
  let pos = ref 0 in
  while !pos < len do
    let abs = off + !pos in
    let blkno = abs / bs in
    let in_block = abs mod bs in
    let chunk = min (len - !pos) (bs - in_block) in
    let key = Block_io.key_data ~inum ~blkno in
    if chunk = bs then begin
      (* Whole-block overwrite: no read needed. *)
      let block = Bytes.sub data !pos bs in
      Cache.insert st.cache key ~dirty:true block
    end
    else begin
      match Cache.find st.cache key with
      | Some block ->
          Bytes.blit data !pos block in_block chunk;
          Cache.mark_dirty st.cache key
      | None ->
          (* Read-modify-write; re-insert dirty rather than mutating the
             cache's buffer, since a full cache may evict a clean block
             the moment it is inserted. *)
          let addr = Inode_store.bmap_read st e blkno in
          let block =
            if addr <> Layout.null_addr then
              Bytes.copy (Block_io.read_file_block st ~inum ~blkno ~addr)
            else Bytes.make bs '\000'
          in
          Bytes.blit data !pos block in_block chunk;
          Cache.insert st.cache key ~dirty:true block
    end;
    pos := !pos + chunk
  done;
  if off + len > e.ino.Inode.size then e.ino.Inode.size <- off + len;
  e.ino.Inode.mtime_us <- Io.now_us st.io;
  Inode_store.mark_dirty e;
  Io.charge_copy st.io ~bytes:len

let release (st : State.t) addr ~bytes =
  if addr <> Layout.null_addr then
    Seg_usage.sub_live st.usage (Layout.segment_of_block st.layout addr) ~bytes

let truncate (st : State.t) ~inum ~size =
  if size < 0 then Errors.raise_ (Errors.Einval "negative size");
  if size > Inode.max_size st.layout then Errors.raise_ Errors.Efbig;
  let e = Inode_store.find st inum in
  let bs = st.layout.Layout.block_size in
  let old_size = e.ino.Inode.size in
  if size < old_size then begin
    let keep_blocks = (size + bs - 1) / bs in
    let old_blocks = (old_size + bs - 1) / bs in
    for blkno = keep_blocks to old_blocks - 1 do
      let old = Inode_store.bmap_write st e blkno Layout.null_addr in
      release st old ~bytes:bs;
      Cache.remove st.cache (Block_io.key_data ~inum ~blkno)
    done;
    (* Zero the tail of a now-partial final block so reads past [size]
       after a later extension see zeros. *)
    if size mod bs <> 0 && keep_blocks > 0 then begin
      let blkno = keep_blocks - 1 in
      let key = Block_io.key_data ~inum ~blkno in
      match Cache.find st.cache key with
      | Some b ->
          Bytes.fill b (size mod bs) (bs - (size mod bs)) '\000';
          Cache.mark_dirty st.cache key
      | None ->
          let addr = Inode_store.bmap_read st e blkno in
          if addr <> Layout.null_addr then begin
            let b = Bytes.copy (Block_io.read_file_block st ~inum ~blkno ~addr) in
            Bytes.fill b (size mod bs) (bs - (size mod bs)) '\000';
            Cache.insert st.cache key ~dirty:true b
          end
    end;
    if size = 0 then begin
      (* §4.2.1: truncation to zero bumps the version, so the cleaner can
         dismiss this file's old blocks from the summary alone. *)
      Imap.bump_version st.imap inum;
      release st e.ino.Inode.indirect ~bytes:bs;
      Cache.remove st.cache (Block_io.key_raw e.ino.Inode.indirect);
      e.ino.Inode.indirect <- Layout.null_addr;
      e.ind_map <- None;
      e.ind_dirty <- false;
      (match e.dind_top with
      | Some top ->
          Array.iter
            (fun child ->
              release st child ~bytes:bs;
              Cache.remove st.cache (Block_io.key_raw child))
            top
      | None ->
          if e.ino.Inode.dindirect <> Layout.null_addr then begin
            (* Top map never loaded: fetch it to release the children. *)
            let block = Block_io.read_raw st e.ino.Inode.dindirect in
            for i = 0 to Layout.ptrs_per_block st.layout - 1 do
              let child =
                Int32.to_int (Bytes.get_int32_le block (i * 4)) land 0xFFFFFFFF
              in
              release st child ~bytes:bs;
              Cache.remove st.cache (Block_io.key_raw child)
            done
          end);
      release st e.ino.Inode.dindirect ~bytes:bs;
      Cache.remove st.cache (Block_io.key_raw e.ino.Inode.dindirect);
      e.ino.Inode.dindirect <- Layout.null_addr;
      e.dind_top <- None;
      e.dind_top_dirty <- false;
      e.dind_children <- [||];
      e.dind_child_dirty <- Lfs_util.Bitset.create 0
    end
  end;
  e.ino.Inode.size <- size;
  e.ino.Inode.mtime_us <- Io.now_us st.io;
  Inode_store.mark_dirty e
