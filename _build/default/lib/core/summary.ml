module Codec = Lfs_util.Codec
module Crc32 = Lfs_util.Crc32

type entry =
  | Data of { inum : int; blkno : int; version : int }
  | Indirect of { inum : int; idx : int }
  | Dindirect of { inum : int }
  | Inode_block
  | Imap_block of { idx : int }
  | Usage_block of { idx : int }

let pp_entry ppf = function
  | Data { inum; blkno; version } ->
      Format.fprintf ppf "data(ino=%d blk=%d v=%d)" inum blkno version
  | Indirect { inum; idx } -> Format.fprintf ppf "ind(ino=%d idx=%d)" inum idx
  | Dindirect { inum } -> Format.fprintf ppf "dind(ino=%d)" inum
  | Inode_block -> Format.fprintf ppf "inodes"
  | Imap_block { idx } -> Format.fprintf ppf "imap(%d)" idx
  | Usage_block { idx } -> Format.fprintf ppf "usage(%d)" idx

let equal_entry (a : entry) (b : entry) = a = b

type header = {
  seq : int;
  timestamp_us : int;
  nblocks : int;
  payload_crc : int32;
}

let magic = 0x4C53554D (* "LSUM" *)
let header_bytes = 30
let entry_bytes = 13

let max_entries ~size_bytes = (size_bytes - header_bytes) / entry_bytes

(* Smallest number of [block_size] blocks whose summary region can
   describe the rest of a [seg_blocks] segment. *)
let blocks_needed ~block_size ~seg_blocks =
  let rec go s =
    if s >= seg_blocks then
      invalid_arg "Summary.blocks_needed: segment too small"
    else if seg_blocks - s <= max_entries ~size_bytes:(s * block_size) then s
    else go (s + 1)
  in
  go 1

let encode_entry e entry =
  let tag, a, b, c =
    match entry with
    | Data { inum; blkno; version } -> (1, inum, blkno, version)
    | Indirect { inum; idx } -> (2, inum, idx, 0)
    | Dindirect { inum } -> (3, inum, 0, 0)
    | Inode_block -> (4, 0, 0, 0)
    | Imap_block { idx } -> (5, idx, 0, 0)
    | Usage_block { idx } -> (6, idx, 0, 0)
  in
  Codec.u8 e tag;
  Codec.u32 e a;
  Codec.u32 e b;
  Codec.u32 e c

let decode_entry d =
  let tag = Codec.read_u8 d in
  let a = Codec.read_u32 d in
  let b = Codec.read_u32 d in
  let c = Codec.read_u32 d in
  match tag with
  | 1 -> Data { inum = a; blkno = b; version = c }
  | 2 -> Indirect { inum = a; idx = b }
  | 3 -> Dindirect { inum = a }
  | 4 -> Inode_block
  | 5 -> Imap_block { idx = a }
  | 6 -> Usage_block { idx = a }
  | n -> raise (Codec.Error (Printf.sprintf "summary: bad entry tag %d" n))

(* The block CRC lives in the last 4 bytes of the header region and is
   computed with that field zeroed. *)
let crc_off = header_bytes - 4

let encode ~size_bytes header entries =
  if List.length entries <> header.nblocks then
    invalid_arg "Summary.encode: entry count differs from header.nblocks";
  if header.nblocks > max_entries ~size_bytes then
    invalid_arg "Summary.encode: too many entries for the summary region";
  let e = Codec.encoder ~capacity:size_bytes () in
  Codec.u32 e magic;
  Codec.int_as_i64 e header.seq;
  Codec.int_as_i64 e header.timestamp_us;
  Codec.u16 e header.nblocks;
  Codec.u32 e (Int32.to_int header.payload_crc land 0xFFFFFFFF);
  Codec.u32 e 0 (* header crc placeholder *);
  List.iter (encode_entry e) entries;
  Codec.pad_to e size_bytes;
  let block = Codec.to_bytes e in
  let crc = Crc32.digest_bytes block in
  Bytes.set_int32_le block crc_off crc;
  block

let decode block =
  match
    let stored = Bytes.get_int32_le block crc_off in
    let scratch = Bytes.copy block in
    Bytes.set_int32_le scratch crc_off 0l;
    if Crc32.digest_bytes scratch <> stored then None
    else begin
      let d = Codec.decoder block in
      if Codec.read_u32 d <> magic then None
      else begin
        let seq = Codec.read_int_as_i64 d in
        let timestamp_us = Codec.read_int_as_i64 d in
        let nblocks = Codec.read_u16 d in
        let payload_crc = Int32.of_int (Codec.read_u32 d) in
        Codec.skip d 4 (* header crc *);
        let entries = List.init nblocks (fun _ -> decode_entry d) in
        Some ({ seq; timestamp_us; nblocks; payload_crc }, entries)
      end
    end
  with
  | v -> v
  | exception Codec.Error _ -> None
  | exception Invalid_argument _ -> None

let payload_crc bytes ~off ~len = Crc32.digest_bytes ~off ~len bytes
