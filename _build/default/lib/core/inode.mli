(** Inodes.

    LFS keeps the classic UNIX inode format — attributes plus 12 direct
    block pointers and single/double indirect pointers (§4.2) — so reads
    work exactly as in FFS once the inode is found.  The only departure
    from BSD is that the access time lives in the inode map (paper,
    footnote 2), so reading a file never rewrites its inode.

    Inodes are packed into inode blocks ({!Layout.inodes_per_block} per
    block) that are written to the log like any other block; a zeroed slot
    (inum 0) is empty. *)

type kind = Lfs_vfs.Fs_intf.file_kind

type t = {
  inum : int;
  mutable kind : kind;
  mutable size : int;  (** bytes *)
  mutable nlink : int;
  mutable mtime_us : int;
  direct : int array;  (** [ndirect] block addresses; {!Layout.null_addr} = hole *)
  mutable indirect : int;  (** address of the single-indirect pointer block *)
  mutable dindirect : int;  (** address of the double-indirect top block *)
}

val ndirect : int

val create : inum:int -> kind:kind -> now_us:int -> t
(** A fresh empty inode with [nlink = 1].
    @raise Invalid_argument if [inum <= 0]. *)

val nblocks : block_size:int -> t -> int
(** Number of data blocks implied by [size]. *)

val max_size : Layout.t -> int
(** Largest representable file (direct + single + double indirect). *)

val encode_into : t -> bytes -> off:int -> unit
(** Write the fixed {!Layout.inode_bytes}-byte representation at [off]. *)

val decode_at : bytes -> off:int -> t option
(** [None] for an empty slot. *)

val copy : t -> t
