module Dir_block = Lfs_vfs.Dir_block
module Errors = Lfs_vfs.Errors
module Io = Lfs_disk.Io
module Path = Lfs_vfs.Path

let dir_entry (st : State.t) inum =
  let e = Inode_store.find st inum in
  if e.ino.Inode.kind <> Lfs_vfs.Fs_intf.Directory then
    Errors.raise_ (Errors.Enotdir (Printf.sprintf "inum %d" inum));
  e

let nblocks (st : State.t) (e : State.itable_entry) =
  Inode.nblocks ~block_size:st.layout.Layout.block_size e.ino

let parse_block block = Dir_block.parse block

let encode_block (st : State.t) entries =
  Dir_block.encode ~block_size:st.layout.Layout.block_size entries

let read_block (st : State.t) (e : State.itable_entry) blkidx =
  let inum = e.ino.Inode.inum in
  match Lfs_cache.Block_cache.find st.cache (Block_io.key_data ~inum ~blkno:blkidx) with
  | Some block -> parse_block block
  | None ->
      let addr = Inode_store.bmap_read st e blkidx in
      if addr = Layout.null_addr then []
      else parse_block (Block_io.read_file_block st ~inum ~blkno:blkidx ~addr)

let write_block (st : State.t) (e : State.itable_entry) blkidx entries =
  let inum = e.ino.Inode.inum in
  let bs = st.layout.Layout.block_size in
  Lfs_cache.Block_cache.insert st.cache
    (Block_io.key_data ~inum ~blkno:blkidx)
    ~dirty:true (encode_block st entries);
  if (blkidx + 1) * bs > e.ino.Inode.size then
    e.ino.Inode.size <- (blkidx + 1) * bs;
  e.ino.Inode.mtime_us <- Io.now_us st.io;
  Inode_store.mark_dirty e

let lookup (st : State.t) ~dir name =
  let e = dir_entry st dir in
  let n = nblocks st e in
  let rec scan blk =
    if blk >= n then None
    else begin
      Io.charge_lookup st.io;
      match List.assoc_opt name (read_block st e blk) with
      | Some inum -> Some inum
      | None -> scan (blk + 1)
    end
  in
  scan 0

let add (st : State.t) ~dir name inum =
  if not (Path.valid_name name) then
    Errors.raise_ (Errors.Einval (Printf.sprintf "bad name %S" name));
  let e = dir_entry st dir in
  let n = nblocks st e in
  let bs = st.layout.Layout.block_size in
  let rec place blk =
    if blk >= n then write_block st e n [ (name, inum) ]
    else begin
      Io.charge_lookup st.io;
      let entries = read_block st e blk in
      if Dir_block.fits ~block_size:bs entries name then
        write_block st e blk ((name, inum) :: entries)
      else place (blk + 1)
    end
  in
  place 0

let remove (st : State.t) ~dir name =
  let e = dir_entry st dir in
  let n = nblocks st e in
  let rec hunt blk =
    if blk >= n then Errors.raise_ (Errors.Enoent name)
    else begin
      Io.charge_lookup st.io;
      let entries = read_block st e blk in
      if List.mem_assoc name entries then
        write_block st e blk (List.remove_assoc name entries)
      else hunt (blk + 1)
    end
  in
  hunt 0

let entries (st : State.t) ~dir =
  let e = dir_entry st dir in
  let n = nblocks st e in
  List.concat (List.init n (fun blk ->
      Io.charge_lookup st.io;
      read_block st e blk))

let is_empty st ~dir = entries st ~dir = []

let resolve (st : State.t) components =
  List.fold_left
    (fun cur name ->
      match lookup st ~dir:cur name with
      | Some inum -> inum
      | None -> Errors.raise_ (Errors.Enoent name))
    State.root_inum components

let resolve_dir st components =
  let inum = resolve st components in
  ignore (dir_entry st inum);
  inum
