(** Byte-granularity file data operations over the cache and block maps.

    Writes only touch the cache (dirty blocks); they reach the log when
    the write path flushes.  Reads prefer the cache, then the in-memory
    active segment, then the disk.  Access times are maintained in the
    inode map, not the inode (paper, footnote 2). *)

val read : State.t -> inum:int -> off:int -> len:int -> bytes
(** Read up to [len] bytes at [off] (short at end of file; holes read as
    zeros).  Updates the file's atime.
    @raise Errors.Error [Einval] on negative offset or length. *)

val write : State.t -> inum:int -> off:int -> bytes -> unit
(** Write, extending the file as needed.
    @raise Errors.Error [Efbig] past the maximum file size,
    [Einval] on a negative offset. *)

val truncate : State.t -> inum:int -> size:int -> unit
(** Shrink or (sparsely) extend to [size].  Truncating to zero bumps the
    file's inode-map version, instantly invalidating its old log blocks
    for the cleaner (§4.2.1). *)
