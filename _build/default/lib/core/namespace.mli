(** Directories and path resolution.

    Directory files hold [(inum, name)] entries packed into self-contained
    blocks (an entry never spans blocks, as in BSD).  Directory updates
    are ordinary cached file writes — in LFS they reach the disk inside
    segment writes, never synchronously (§4.1).

    Each block examined during lookup charges one CPU lookup cost,
    modelling the namei scan. *)

val lookup : State.t -> dir:int -> string -> int option
(** Find [name] in directory [dir].
    @raise Errors.Error [Enotdir] if [dir] is not a directory. *)

val add : State.t -> dir:int -> string -> int -> unit
(** Add an entry; the caller has checked for duplicates.
    @raise Errors.Error [Einval] on an invalid name. *)

val remove : State.t -> dir:int -> string -> unit
(** @raise Errors.Error [Enoent] if absent. *)

val entries : State.t -> dir:int -> (string * int) list
(** All entries, unsorted. *)

val is_empty : State.t -> dir:int -> bool

val resolve : State.t -> string list -> int
(** Walk components from the root.
    @raise Errors.Error [Enoent]/[Enotdir] as appropriate. *)

val resolve_dir : State.t -> string list -> int
(** Like {!resolve} but additionally requires the result to be a
    directory. *)
