lib/core/namespace.ml: Block_io Inode Inode_store Layout Lfs_cache Lfs_disk Lfs_vfs List Printf State
