lib/core/inspect.ml: Buffer Checkpoint Format Layout Lfs_disk List Printf Seg_usage State Summary
