lib/core/write_path.mli: State
