lib/core/block_io.ml: Bytes Layout Lfs_cache Lfs_disk State
