lib/core/state.ml: Array Bytes Config Hashtbl Imap Inode Layout Lfs_cache Lfs_disk Lfs_util Seg_usage Summary
