lib/core/segwriter.ml: Bytes Config Layout Lfs_disk Lfs_vfs List Seg_usage State Summary
