lib/core/imap.mli: Layout
