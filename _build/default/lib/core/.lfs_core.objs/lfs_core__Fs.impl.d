lib/core/fs.ml: Cleaner Config File_io Imap Inode Inode_store Layout Lfs_cache Lfs_disk Lfs_vfs List Namespace Recovery Seg_usage Segwriter State String Write_path
