lib/core/seg_usage.mli: Layout
