lib/core/inspect.mli: State Summary
