lib/core/recovery.ml: Array Bytes Checkpoint Config Hashtbl Imap Inode Inode_store Layout Lfs_disk Lfs_util Lfs_vfs List Namespace Option Seg_usage State Summary Write_path
