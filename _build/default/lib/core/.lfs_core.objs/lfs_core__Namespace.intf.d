lib/core/namespace.mli: State
