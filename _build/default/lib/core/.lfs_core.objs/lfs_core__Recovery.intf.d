lib/core/recovery.mli: Config Layout Lfs_disk State
