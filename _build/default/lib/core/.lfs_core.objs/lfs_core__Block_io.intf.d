lib/core/block_io.mli: Lfs_cache State
