lib/core/imap.ml: Array Layout Lfs_util List Printf
