lib/core/file_io.mli: State
