lib/core/seg_usage.ml: Array Layout Lfs_util List Printf
