lib/core/layout.mli: Config Format Lfs_disk
