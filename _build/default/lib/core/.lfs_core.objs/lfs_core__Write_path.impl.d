lib/core/write_path.ml: Array Block_io Bytes Checkpoint Fun Hashtbl Imap Inode Inode_store Int32 Layout Lfs_cache Lfs_disk Lfs_util List Seg_usage Segwriter State Summary
