lib/core/cleaner.mli: State
