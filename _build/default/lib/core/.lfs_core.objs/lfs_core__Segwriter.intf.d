lib/core/segwriter.mli: State Summary
