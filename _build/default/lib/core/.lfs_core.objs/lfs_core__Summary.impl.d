lib/core/summary.ml: Bytes Format Int32 Lfs_util List Printf
