lib/core/inode_store.mli: Inode State
