lib/core/inode_store.ml: Array Block_io Bytes Hashtbl Imap Inode Int32 Layout Lfs_cache Lfs_util Lfs_vfs List Printf Seg_usage State
