lib/core/check.mli: Format State
