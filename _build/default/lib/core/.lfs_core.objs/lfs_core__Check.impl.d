lib/core/check.ml: Array Format Hashtbl Imap Inode Inode_store Layout Lfs_vfs List Namespace Option Printf Seg_usage State String
