lib/core/checkpoint.ml: Array Bytes Layout Lfs_util
