lib/core/inode.mli: Layout Lfs_vfs
