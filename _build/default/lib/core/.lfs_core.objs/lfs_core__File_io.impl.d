lib/core/file_io.ml: Array Block_io Bytes Imap Inode Inode_store Int32 Layout Lfs_cache Lfs_disk Lfs_util Lfs_vfs Seg_usage State
