lib/core/checkpoint.mli: Layout
