lib/core/cleaner.ml: Array Block_io Bytes Config Fun Imap Inode Inode_store Layout Lfs_cache Lfs_disk Lfs_vfs List Seg_usage Segwriter State Summary Write_path
