lib/core/fs.mli: Config Layout Lfs_disk Lfs_vfs Seg_usage State
