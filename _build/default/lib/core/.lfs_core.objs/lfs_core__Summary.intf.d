lib/core/summary.mli: Format
