lib/core/layout.ml: Bytes Config Format Lfs_disk Lfs_util Printf Summary
