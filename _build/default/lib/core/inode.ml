module Codec = Lfs_util.Codec

type kind = Lfs_vfs.Fs_intf.file_kind

type t = {
  inum : int;
  mutable kind : kind;
  mutable size : int;
  mutable nlink : int;
  mutable mtime_us : int;
  direct : int array;
  mutable indirect : int;
  mutable dindirect : int;
}

let ndirect = 12

let create ~inum ~kind ~now_us =
  if inum <= 0 then invalid_arg "Inode.create: inum must be positive";
  {
    inum;
    kind;
    size = 0;
    nlink = 1;
    mtime_us = now_us;
    direct = Array.make ndirect Layout.null_addr;
    indirect = Layout.null_addr;
    dindirect = Layout.null_addr;
  }

let nblocks ~block_size t = (t.size + block_size - 1) / block_size

let max_size layout =
  let ppb = Layout.ptrs_per_block layout in
  (ndirect + ppb + (ppb * ppb)) * layout.Layout.block_size

let kind_tag = function
  | Lfs_vfs.Fs_intf.Regular -> 1
  | Lfs_vfs.Fs_intf.Directory -> 2

let kind_of_tag = function
  | 1 -> Lfs_vfs.Fs_intf.Regular
  | 2 -> Lfs_vfs.Fs_intf.Directory
  | n -> raise (Codec.Error (Printf.sprintf "inode: bad kind tag %d" n))

let encode_into t buf ~off =
  let e = Codec.encoder ~capacity:Layout.inode_bytes () in
  Codec.u32 e t.inum;
  Codec.u8 e (kind_tag t.kind);
  Codec.u16 e t.nlink;
  Codec.int_as_i64 e t.size;
  Codec.int_as_i64 e t.mtime_us;
  Array.iter (fun a -> Codec.u32 e a) t.direct;
  Codec.u32 e t.indirect;
  Codec.u32 e t.dindirect;
  Codec.pad_to e Layout.inode_bytes;
  Bytes.blit (Codec.to_bytes e) 0 buf off Layout.inode_bytes

let decode_at buf ~off =
  let d = Codec.decoder ~off ~len:Layout.inode_bytes buf in
  let inum = Codec.read_u32 d in
  if inum = 0 then None
  else begin
    let kind = kind_of_tag (Codec.read_u8 d) in
    let nlink = Codec.read_u16 d in
    let size = Codec.read_int_as_i64 d in
    let mtime_us = Codec.read_int_as_i64 d in
    let direct = Array.init ndirect (fun _ -> Codec.read_u32 d) in
    let indirect = Codec.read_u32 d in
    let dindirect = Codec.read_u32 d in
    Some { inum; kind; size; nlink; mtime_us; direct; indirect; dindirect }
  end

let copy t = { t with direct = Array.copy t.direct }
