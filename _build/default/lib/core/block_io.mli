(** Block reads through the file cache.

    A read first consults the cache, then the active in-memory segment
    (blocks recently appended to the log may not have reached the disk
    yet), and finally the disk.  Disk reads are synchronous — the reader
    waits — and the block is inserted into the cache clean. *)

val key_data : inum:int -> blkno:int -> Lfs_cache.Block_cache.key
(** Cache key for a logical file block. *)

val key_raw : int -> Lfs_cache.Block_cache.key
(** Cache key for a by-address block (inode block, indirect block). *)

val in_active_segment : State.t -> int -> bool
(** Whether a block address falls inside the segment currently being
    assembled in memory. *)

val read_raw : State.t -> int -> bytes
(** Read the block at a disk address.  @raise Invalid_argument on the
    null address. *)

val read_file_block : State.t -> inum:int -> blkno:int -> addr:int -> bytes
(** Read a file's logical block stored at [addr], caching it under the
    file key. *)

val sector_of_block : State.t -> int -> int
