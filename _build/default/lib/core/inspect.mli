(** On-disk format inspection: decode what the log actually contains.

    Used by `lfstool dump-segment` and the segment-anatomy example; handy
    when debugging the cleaner or recovery, since it shows the same
    summaries those subsystems parse. *)

val segment_summary :
  State.t -> int -> (Summary.header * Summary.entry list) option
(** Read and decode segment [i]'s summary region from the disk ([None]
    if the segment holds no valid summary — never written or torn). *)

val describe_segment : State.t -> int -> string
(** Human-readable anatomy of one segment: state, utilization, sequence
    number, and a per-block ownership listing. *)

val describe_checkpoints : State.t -> string
(** Decode both checkpoint regions and show their timestamps, sequence
    numbers, and which one recovery would choose. *)
