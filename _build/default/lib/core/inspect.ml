module Io = Lfs_disk.Io

let segment_summary (st : State.t) seg =
  let layout = st.layout in
  if seg < 0 || seg >= layout.Layout.nsegments then
    invalid_arg "Inspect.segment_summary";
  let first = Layout.segment_first_block layout seg in
  let region =
    Io.sync_read st.io
      ~sector:(Layout.sector_of_block layout first)
      ~count:(layout.Layout.summary_blocks * layout.Layout.block_sectors)
  in
  Summary.decode region

let describe_segment (st : State.t) seg =
  let buf = Buffer.create 256 in
  let state =
    match Seg_usage.state st.usage seg with
    | Seg_usage.Clean -> "clean"
    | Seg_usage.Dirty -> "dirty"
    | Seg_usage.Active -> "active"
  in
  Buffer.add_string buf
    (Printf.sprintf "segment %d: %s, %.0f%% utilized (%d live bytes)\n" seg
       state
       (Seg_usage.utilization st.usage seg *. 100.0)
       (Seg_usage.live_bytes st.usage seg));
  (match segment_summary st seg with
  | None -> Buffer.add_string buf "  no valid summary (never written or torn)\n"
  | Some (header, entries) ->
      Buffer.add_string buf
        (Printf.sprintf "  log sequence %d, written at t=%.3fs, %d blocks\n"
           header.Summary.seq
           (float_of_int header.Summary.timestamp_us /. 1e6)
           header.Summary.nblocks);
      List.iteri
        (fun idx entry ->
          Buffer.add_string buf
            (Format.asprintf "  block %3d (@%d): %a\n" idx
               (Layout.segment_payload_block st.layout ~seg ~idx)
               Summary.pp_entry entry))
        entries);
  Buffer.contents buf

let describe_checkpoints (st : State.t) =
  let layout = st.layout in
  let read which =
    let addr =
      if which = `A then fst layout.Layout.cp_region
      else snd layout.Layout.cp_region
    in
    Checkpoint.decode layout
      (Io.sync_read st.io
         ~sector:(Layout.sector_of_block layout addr)
         ~count:(layout.Layout.cp_blocks * layout.Layout.block_sectors))
  in
  let a = read `A and b = read `B in
  let describe tag = function
    | None -> Printf.sprintf "region %s: invalid (torn or never written)\n" tag
    | Some cp ->
        Printf.sprintf
          "region %s: t=%.3fs, log seq %d, tail segment %d, next inum hint %d\n"
          tag
          (float_of_int cp.Checkpoint.timestamp_us /. 1e6)
          cp.Checkpoint.seq cp.Checkpoint.tail_segment
          cp.Checkpoint.next_inum_hint
  in
  let choice =
    match Checkpoint.choose a b with
    | None -> "recovery would fail: no valid checkpoint\n"
    | Some cp ->
        Printf.sprintf "recovery would use the checkpoint at seq %d\n"
          cp.Checkpoint.seq
  in
  describe "A" a ^ describe "B" b ^ choice
