module Codec = Lfs_util.Codec
module Bitset = Lfs_util.Bitset

type t = {
  layout : Layout.t;
  addr : int array;  (* inode-block address; null_addr if never written *)
  slot : int array;
  version : int array;
  atime : int array;
  allocated : Bitset.t;
  dirty : Bitset.t;  (* per imap block *)
  entries_per_block : int;
  mutable nallocated : int;
  mutable next_hint : int;
}

let create layout =
  let n = layout.Layout.max_files in
  {
    layout;
    addr = Array.make n Layout.null_addr;
    slot = Array.make n 0;
    version = Array.make n 0;
    atime = Array.make n 0;
    allocated = Bitset.create n;
    dirty = Bitset.create layout.Layout.n_imap_blocks;
    entries_per_block = Layout.imap_entries_per_block layout;
    nallocated = 0;
    next_hint = 1;
  }

let max_files t = Array.length t.addr
let count_allocated t = t.nallocated

let check t inum =
  if inum <= 0 || inum >= max_files t then
    invalid_arg (Printf.sprintf "Imap: inum %d out of range" inum)

let block_of_inum t inum =
  check t inum;
  inum / t.entries_per_block

let touch t inum = Bitset.set t.dirty (block_of_inum t inum)

let alloc_specific t inum ~now_us =
  check t inum;
  if Bitset.mem t.allocated inum then
    invalid_arg (Printf.sprintf "Imap.alloc_specific: inum %d already in use" inum);
  Bitset.set t.allocated inum;
  t.nallocated <- t.nallocated + 1;
  t.addr.(inum) <- Layout.null_addr;
  t.slot.(inum) <- 0;
  t.atime.(inum) <- now_us;
  touch t inum

let alloc t ~now_us =
  (* inum 0 is the null inum; never hand it out. *)
  let n = max_files t in
  let rec scan candidate remaining =
    if remaining = 0 then None
    else if candidate <> 0 && not (Bitset.mem t.allocated candidate) then begin
      alloc_specific t candidate ~now_us;
      t.next_hint <- (if candidate + 1 = n then 1 else candidate + 1);
      Some candidate
    end
    else scan (if candidate + 1 = n then 0 else candidate + 1) (remaining - 1)
  in
  scan t.next_hint n

let is_allocated t inum =
  check t inum;
  Bitset.mem t.allocated inum

let bump_version t inum =
  check t inum;
  t.version.(inum) <- t.version.(inum) + 1;
  touch t inum

let free t inum =
  check t inum;
  if not (Bitset.mem t.allocated inum) then
    invalid_arg (Printf.sprintf "Imap.free: inum %d not allocated" inum);
  Bitset.clear t.allocated inum;
  t.nallocated <- t.nallocated - 1;
  t.addr.(inum) <- Layout.null_addr;
  bump_version t inum

let version t inum =
  check t inum;
  t.version.(inum)

let location t inum =
  check t inum;
  if t.addr.(inum) = Layout.null_addr then None
  else Some (t.addr.(inum), t.slot.(inum))

let set_location t inum ~addr ~slot =
  check t inum;
  t.addr.(inum) <- addr;
  t.slot.(inum) <- slot;
  touch t inum

let atime_us t inum =
  check t inum;
  t.atime.(inum)

let set_atime_us t inum v =
  check t inum;
  t.atime.(inum) <- v;
  touch t inum

let n_blocks t = t.layout.Layout.n_imap_blocks

let mark_block_dirty t idx =
  if idx < 0 || idx >= n_blocks t then invalid_arg "Imap.mark_block_dirty";
  Bitset.set t.dirty idx

let next_hint t = t.next_hint

let set_next_hint t hint =
  if hint < 0 || hint >= max_files t then invalid_arg "Imap.set_next_hint";
  t.next_hint <- max 1 hint

let dirty_blocks t =
  let acc = ref [] in
  Bitset.iter_set (fun i -> acc := i :: !acc) t.dirty;
  List.rev !acc

let clear_dirty t = Bitset.clear_all t.dirty

let encode_block t ~idx =
  if idx < 0 || idx >= n_blocks t then invalid_arg "Imap.encode_block";
  let bs = t.layout.Layout.block_size in
  let e = Codec.encoder ~capacity:bs () in
  let base = idx * t.entries_per_block in
  for i = base to base + t.entries_per_block - 1 do
    if i < max_files t then begin
      Codec.u32 e t.addr.(i);
      Codec.u16 e t.slot.(i);
      Codec.u32 e t.version.(i);
      Codec.int_as_i64 e t.atime.(i);
      Codec.u8 e (if Bitset.mem t.allocated i then 1 else 0);
      Codec.pad_to e ((i - base + 1) * Layout.imap_entry_bytes)
    end
  done;
  Codec.pad_to e bs;
  Codec.to_bytes e

let load_block t ~idx block =
  if idx < 0 || idx >= n_blocks t then invalid_arg "Imap.load_block";
  let valid_addr a =
    a = Layout.null_addr
    || (a >= t.layout.Layout.first_segment_block
       && a < t.layout.Layout.total_blocks)
  in
  let base = idx * t.entries_per_block in
  for i = base to min (base + t.entries_per_block) (max_files t) - 1 do
    let d =
      Codec.decoder ~off:((i - base) * Layout.imap_entry_bytes)
        ~len:Layout.imap_entry_bytes block
    in
    (* Defensive: a clobbered (reused-segment) image must never inject a
       wild inode address; roll-forward rewrites these entries anyway. *)
    let a = Codec.read_u32 d in
    t.addr.(i) <- (if valid_addr a then a else Layout.null_addr);
    t.slot.(i) <- Codec.read_u16 d mod max 1 (Layout.inodes_per_block t.layout);
    t.version.(i) <- Codec.read_u32 d;
    t.atime.(i) <- Codec.read_int_as_i64 d;
    let was = Bitset.mem t.allocated i in
    let now = Codec.read_bool d in
    if was && not now then begin
      Bitset.clear t.allocated i;
      t.nallocated <- t.nallocated - 1
    end
    else if now && not was then begin
      Bitset.set t.allocated i;
      t.nallocated <- t.nallocated + 1
    end
  done
