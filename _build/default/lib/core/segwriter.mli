(** Segment assembly and log append (§4.1, §4.3.5).

    Blocks are appended to an in-memory segment buffer; when the segment
    fills (or a sync/checkpoint forces a partial segment) the summary
    block and payload go to disk in a single large asynchronous write.
    Reads of not-yet-flushed blocks are served from the buffer by
    {!Block_io}.

    [`User] appends refuse to consume the reserve segments so the cleaner
    can always regenerate free space; the cleaner and checkpoint use
    [`System]. *)

val append :
  State.t ->
  privilege:State.privilege ->
  entry:Summary.entry ->
  live_bytes:int ->
  bytes ->
  int
(** Append one block (exactly [block_size] bytes) to the log; returns its
    disk block address.  Accounts [live_bytes] of live data to the
    segment.  Flushes the active segment and claims a clean one as
    needed.
    @raise Errors.Error [Enospc] when no segment is available at this
    privilege. *)

val flush_active : State.t -> unit
(** Write out the active segment (possibly partial) and close it; no-op
    when the buffer is empty.  The write is asynchronous. *)

val active_blocks : State.t -> int
(** Payload blocks currently buffered. *)

val room : State.t -> int
(** Payload blocks still free in the active segment (0 when none is
    active). *)
