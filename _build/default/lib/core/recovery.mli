(** Crash recovery (§4.4).

    Mounting is the paper's "nothing more than the normal mount code":
    read the newest valid checkpoint region, load the inode-map and
    segment-usage blocks it points at, and the file system is ready.

    With roll-forward enabled (the paper's "ultimately LFS will..."
    design, implemented here), mount then scans segment summaries for
    sequence numbers past the checkpoint, validates each segment's payload
    CRC, and replays them in order: inode blocks re-point the inode map,
    imap/usage blocks refresh metadata, and usage accounting is
    re-estimated.  A torn segment or a sequence gap ends the log.

    Known limitation (fixed only by the directory-operation log of the
    later SOSP'91 system): a delete performed after the last checkpoint
    may be resurrected as a directory-less inode by roll-forward. *)

val recover :
  Lfs_disk.Io.t -> Config.t -> Layout.t -> (State.t, string) result
(** Build a mounted state from the disk.  Fails if no valid checkpoint
    region exists (unformatted or doubly-torn disk). *)
