module Codec = Lfs_util.Codec
module Crc32 = Lfs_util.Crc32

type t = {
  timestamp_us : int;
  seq : int;
  tail_segment : int;
  next_inum_hint : int;
  imap_addrs : int array;
  usage_addrs : int array;
}

let magic = 0x4C434B50 (* "LCKP" *)
let crc_off = 4

let encode layout t =
  if Array.length t.imap_addrs <> layout.Layout.n_imap_blocks then
    invalid_arg "Checkpoint.encode: imap_addrs length mismatch";
  if Array.length t.usage_addrs <> layout.Layout.n_usage_blocks then
    invalid_arg "Checkpoint.encode: usage_addrs length mismatch";
  let size = layout.Layout.cp_blocks * layout.Layout.block_size in
  let e = Codec.encoder ~capacity:size () in
  Codec.u32 e magic;
  Codec.u32 e 0 (* crc placeholder *);
  Codec.int_as_i64 e t.timestamp_us;
  Codec.int_as_i64 e t.seq;
  Codec.int_as_i64 e t.tail_segment;
  Codec.u32 e t.next_inum_hint;
  Codec.u32 e (Array.length t.imap_addrs);
  Codec.u32 e (Array.length t.usage_addrs);
  Array.iter (fun a -> Codec.u32 e a) t.imap_addrs;
  Array.iter (fun a -> Codec.u32 e a) t.usage_addrs;
  Codec.pad_to e size;
  let region = Codec.to_bytes e in
  Bytes.set_int32_le region crc_off (Crc32.digest_bytes region);
  region

let decode layout region =
  match
    let stored = Bytes.get_int32_le region crc_off in
    let scratch = Bytes.copy region in
    Bytes.set_int32_le scratch crc_off 0l;
    if Crc32.digest_bytes scratch <> stored then None
    else begin
      let d = Codec.decoder region in
      if Codec.read_u32 d <> magic then None
      else begin
        Codec.skip d 4;
        let timestamp_us = Codec.read_int_as_i64 d in
        let seq = Codec.read_int_as_i64 d in
        let tail_segment = Codec.read_int_as_i64 d in
        let next_inum_hint = Codec.read_u32 d in
        let n_imap = Codec.read_u32 d in
        let n_usage = Codec.read_u32 d in
        if
          n_imap <> layout.Layout.n_imap_blocks
          || n_usage <> layout.Layout.n_usage_blocks
        then None
        else begin
          let imap_addrs = Array.init n_imap (fun _ -> Codec.read_u32 d) in
          let usage_addrs = Array.init n_usage (fun _ -> Codec.read_u32 d) in
          Some
            { timestamp_us; seq; tail_segment; next_inum_hint; imap_addrs; usage_addrs }
        end
      end
    end
  with
  | v -> v
  | exception Codec.Error _ -> None
  | exception Invalid_argument _ -> None

let choose a b =
  match (a, b) with
  | None, None -> None
  | (Some _ as v), None | None, (Some _ as v) -> v
  | Some x, Some y ->
      (* Timestamps tie only if the clock did not advance between two
         checkpoints; prefer the higher sequence number then. *)
      if
        x.timestamp_us > y.timestamp_us
        || (x.timestamp_us = y.timestamp_us && x.seq >= y.seq)
      then Some x
      else Some y
