(** The inode map (§4.2.1).

    Maps every inode number to the current disk location of its inode
    (inode-block address plus slot), its allocation status, a version
    number bumped whenever the file is deleted or truncated to zero
    (§4.3), and the file's access time (paper, footnote 2).

    The map is partitioned into fixed-size blocks; modified blocks are
    written to the log during a checkpoint and their addresses recorded in
    the checkpoint region.  In memory the whole map is an array — the
    paper notes the blocks of active files stay resident anyway. *)

type t

val create : Layout.t -> t
(** All entries free, versions zero. *)

val max_files : t -> int
val count_allocated : t -> int

val alloc : t -> now_us:int -> int option
(** Allocate a free inode number ([None] when the map is full).  The
    entry's version survives from its previous life, so stale log blocks
    of a deleted predecessor never match. *)

val alloc_specific : t -> int -> now_us:int -> unit
(** Claim a specific inum (used for the root inode at format time and by
    roll-forward).  @raise Invalid_argument if out of range. *)

val free : t -> int -> unit
(** Release an inum, bumping its version. *)

val bump_version : t -> int -> unit
(** Truncate-to-zero also invalidates old log blocks (§4.2.1). *)

val is_allocated : t -> int -> bool
val version : t -> int -> int

val location : t -> int -> (int * int) option
(** [(inode-block address, slot)] of the inode's latest copy, or [None]
    if it has never been written to disk. *)

val set_location : t -> int -> addr:int -> slot:int -> unit

val atime_us : t -> int -> int
val set_atime_us : t -> int -> int -> unit

(** {1 Persistence} *)

val block_of_inum : t -> int -> int
(** Which imap block holds an inum's entry. *)

val n_blocks : t -> int

val mark_block_dirty : t -> int -> unit
(** Force imap block [idx] to be rewritten at the next checkpoint (used by
    the cleaner when it evacuates a segment holding that block). *)

val next_hint : t -> int
val set_next_hint : t -> int -> unit
(** Allocation scan position, persisted in checkpoints. *)

val dirty_blocks : t -> int list
(** Indices of imap blocks modified since the last {!clear_dirty}. *)

val clear_dirty : t -> unit
val encode_block : t -> idx:int -> bytes
val load_block : t -> idx:int -> bytes -> unit
(** Replace entries of block [idx] from an on-disk image. *)
