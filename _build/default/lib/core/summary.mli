(** Segment summary blocks (§4.3.1).

    The first block of every segment describes the segment's payload: one
    entry per payload block identifying its owner, so the cleaner can
    decide liveness (§4.3.3) and crash recovery can roll the log forward
    (§4.4).  The header carries a monotonic sequence number and timestamp
    (they order segments into the logical log) and a CRC over the payload
    so roll-forward never replays a torn segment write. *)

type entry =
  | Data of { inum : int; blkno : int; version : int }
      (** a data block of file [inum]; [version] is the file's inode-map
          version at write time, letting the cleaner skip deleted files
          cheaply *)
  | Indirect of { inum : int; idx : int }
      (** a pointer block: [idx = 0] is the single-indirect block,
          [idx >= 1] is child [idx - 1] of the double-indirect tree *)
  | Dindirect of { inum : int }  (** the double-indirect top block *)
  | Inode_block
      (** a block of packed inodes; the block contents name their inums *)
  | Imap_block of { idx : int }  (** inode-map block [idx] *)
  | Usage_block of { idx : int }  (** segment-usage-array block [idx] *)

val pp_entry : Format.formatter -> entry -> unit
val equal_entry : entry -> entry -> bool

type header = {
  seq : int;  (** position of this segment in the logical log *)
  timestamp_us : int;
  nblocks : int;  (** valid payload blocks (partial segments write fewer) *)
  payload_crc : int32;
}

val max_entries : size_bytes:int -> int
(** How many payload blocks a summary region of [size_bytes] can
    describe. *)

val blocks_needed : block_size:int -> seg_blocks:int -> int
(** Smallest summary region (in blocks) able to describe the remaining
    payload of a [seg_blocks]-block segment. *)

val encode : size_bytes:int -> header -> entry list -> bytes
(** A full summary region: header, entries, CRC.  The entry list length
    must equal [header.nblocks] and fit in {!max_entries}.
    @raise Invalid_argument otherwise. *)

val decode : bytes -> (header * entry list) option
(** [None] if the region is not a valid summary (bad magic or CRC) —
    e.g. a never-written or torn segment. *)

val payload_crc : bytes -> off:int -> len:int -> int32
(** CRC used for [header.payload_crc]. *)
