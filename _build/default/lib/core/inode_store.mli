(** The in-memory inode table and block maps.

    Inodes enter the table when created or first read from the log (via
    the inode map); their direct and indirect pointer structures are
    loaded lazily.  The table is a write-back cache: dirty inodes and
    dirty pointer maps are serialized into log blocks by {!Write_path}.

    Block addresses use {!Layout.null_addr} for holes. *)

val add_new : State.t -> Inode.t -> State.itable_entry
(** Register a freshly created inode (dirty, never yet on disk). *)

val find : State.t -> int -> State.itable_entry
(** Get a file's entry, reading its inode block from the log if needed.
    @raise Errors.Error [Enoent] if the inum is not allocated. *)

val find_loaded : State.t -> int -> State.itable_entry option
(** Only consult the in-memory table. *)

val materialize : State.t -> Inode.t -> State.itable_entry
(** Insert a decoded inode into the table if absent (used by the cleaner
    when it proves liveness from an inode block it is moving). *)

val mark_dirty : State.itable_entry -> unit

val bmap_read : State.t -> State.itable_entry -> int -> int
(** Address of logical block [blkno] ({!Layout.null_addr} for a hole).
    May read indirect blocks from the log. *)

val bmap_write : State.t -> State.itable_entry -> int -> int -> int
(** [bmap_write st e blkno addr] points logical block [blkno] at [addr],
    dirtying whichever pointer structures changed; returns the previous
    address ({!Layout.null_addr} if none).
    @raise Errors.Error [Efbig] past the double-indirect range. *)

val dind_child_addr : State.t -> State.itable_entry -> int -> int
(** Current address of double-indirect child [child]
    ({!Layout.null_addr} if absent).  May read the top block. *)

val cleaner_touch_ind : State.t -> State.itable_entry -> unit
(** Mark the single-indirect pointer block for rewrite (segment cleaning
    is evacuating its current copy). *)

val cleaner_touch_dind_top : State.t -> State.itable_entry -> unit
val cleaner_touch_dind_child : State.t -> State.itable_entry -> int -> unit

val dirty_inodes : State.t -> State.itable_entry list
(** Entries whose inode or pointer maps need writing, sorted by inum. *)

val clear_clean : State.t -> unit
(** Drop every entry with no dirty state (benchmark cache flush).
    @raise Invalid_argument if dirty entries remain. *)

val delete : State.t -> int -> unit
(** Free a file: releases all its blocks' live-byte accounting, drops its
    cache entries and inum.  The file must be in the table or on disk. *)

val loaded_count : State.t -> int
