(** Simulated time.

    All performance numbers in the reproduction are ratios of work to
    *simulated* time: CPU costs and disk service times advance this clock,
    never the wall clock, so every run is deterministic. *)

type t

val create : unit -> t
(** A clock at time zero. *)

val now_us : t -> int
(** Current simulated time in microseconds. *)

val advance_us : t -> int -> unit
(** [advance_us t us] moves time forward.  @raise Invalid_argument on a
    negative step. *)

val advance_to_us : t -> int -> unit
(** Move forward to an absolute time; no-op if already past it. *)

val seconds : t -> float

val pp_duration_us : Format.formatter -> int -> unit
(** Render a duration, e.g. ["1.25 s"] or ["320 us"]. *)
