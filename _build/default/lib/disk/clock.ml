type t = { mutable now : int }

let create () = { now = 0 }
let now_us t = t.now

let advance_us t us =
  if us < 0 then invalid_arg "Clock.advance_us: negative step";
  t.now <- t.now + us

let advance_to_us t target = if target > t.now then t.now <- target

let seconds t = float_of_int t.now /. 1_000_000.0

let pp_duration_us ppf us =
  if us >= 1_000_000 then
    Format.fprintf ppf "%.2f s" (float_of_int us /. 1_000_000.0)
  else if us >= 1_000 then
    Format.fprintf ppf "%.2f ms" (float_of_int us /. 1_000.0)
  else Format.fprintf ppf "%d us" us
