type t = {
  sector_size : int;
  sectors : int;
  sectors_per_track : int;
  tracks_per_cylinder : int;
  rpm : int;
  track_to_track_us : int;
  max_seek_us : int;
}

(* WREN IV defaults: 42 sectors/track at 3600 RPM gives
   42 * 512 * 60 = 1.29 MB/s, and the seek curve below averages ~17.5 ms,
   matching the paper's disk. *)
let v ?(sector_size = 512) ?(sectors_per_track = 42) ?(tracks_per_cylinder = 9)
    ?(rpm = 3600) ?(track_to_track_us = 4_000) ?(max_seek_us = 44_000)
    ~size_bytes () =
  if size_bytes <= 0 then invalid_arg "Geometry.v: size_bytes must be positive";
  if sector_size <= 0 || sectors_per_track <= 0 || tracks_per_cylinder <= 0 then
    invalid_arg "Geometry.v: nonpositive geometry parameter";
  if rpm <= 0 then invalid_arg "Geometry.v: rpm must be positive";
  let sectors_per_cyl = sectors_per_track * tracks_per_cylinder in
  let sectors =
    (* Round up to whole cylinders so every sector has a well-defined
       cylinder. *)
    let raw = (size_bytes + sector_size - 1) / sector_size in
    (raw + sectors_per_cyl - 1) / sectors_per_cyl * sectors_per_cyl
  in
  {
    sector_size;
    sectors;
    sectors_per_track;
    tracks_per_cylinder;
    rpm;
    track_to_track_us;
    max_seek_us;
  }

let wren_iv ~size_bytes = v ~size_bytes ()

let size_bytes t = t.sectors * t.sector_size

let cylinders t =
  t.sectors / (t.sectors_per_track * t.tracks_per_cylinder)

let cylinder_of_sector t sector =
  sector / (t.sectors_per_track * t.tracks_per_cylinder)

let rotation_us t = 60_000_000 / t.rpm
let avg_rotational_latency_us t = rotation_us t / 2

let bandwidth_bytes_per_sec t =
  float_of_int (t.sectors_per_track * t.sector_size)
  /. (float_of_int (rotation_us t) /. 1_000_000.0)

let seek_us t ~from_cyl ~to_cyl =
  let d = abs (to_cyl - from_cyl) in
  if d = 0 then 0
  else
    let span = max 1 (cylinders t - 1) in
    t.track_to_track_us
    + (t.max_seek_us - t.track_to_track_us) * d / span

let transfer_us t ~sectors =
  (* Per-sector media time, rounded up so a transfer is never free. *)
  let per_sector = (rotation_us t + t.sectors_per_track - 1) / t.sectors_per_track in
  sectors * per_sector

let avg_seek_us t =
  seek_us t ~from_cyl:0 ~to_cyl:(cylinders t / 3)

let pp ppf t =
  Format.fprintf ppf
    "disk: %s, %d cyl, %d B/sector, %.2f MB/s, avg seek %.1f ms, rot %.1f ms"
    (Lfs_util.Table.fmt_bytes (size_bytes t))
    (cylinders t) t.sector_size
    (bandwidth_bytes_per_sec t /. 1_048_576.0)
    (float_of_int (avg_seek_us t) /. 1000.0)
    (float_of_int (rotation_us t) /. 1000.0)
