lib/disk/disk.ml: Bytes Geometry Printf
