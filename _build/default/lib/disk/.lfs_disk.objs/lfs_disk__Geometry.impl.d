lib/disk/geometry.ml: Format Lfs_util
