lib/disk/io.ml: Bytes Clock Cpu_model Disk Geometry List
