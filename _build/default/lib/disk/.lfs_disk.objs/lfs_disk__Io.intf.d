lib/disk/io.mli: Clock Cpu_model Disk
