lib/disk/clock.mli: Format
