lib/disk/clock.ml: Format
