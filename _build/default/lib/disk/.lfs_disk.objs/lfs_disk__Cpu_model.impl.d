lib/disk/cpu_model.ml:
