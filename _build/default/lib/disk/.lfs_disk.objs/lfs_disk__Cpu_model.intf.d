lib/disk/cpu_model.mli:
