lib/disk/disk.mli: Geometry
