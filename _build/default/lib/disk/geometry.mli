(** Disk geometry and service-time model.

    The simulator charges each request
    [seek(cylinder distance) + rotational latency + transfer time],
    with no seek or rotational delay for a transfer that continues
    sequentially from the previous one.  This captures the two disk
    properties the paper's argument rests on: random access costs tens of
    milliseconds regardless of size, while sequential access streams at
    full bandwidth. *)

type t = {
  sector_size : int;  (** bytes per sector *)
  sectors : int;  (** total sectors on the device *)
  sectors_per_track : int;
  tracks_per_cylinder : int;
  rpm : int;
  track_to_track_us : int;  (** single-cylinder seek time *)
  max_seek_us : int;  (** full-stroke seek time *)
}

val v :
  ?sector_size:int ->
  ?sectors_per_track:int ->
  ?tracks_per_cylinder:int ->
  ?rpm:int ->
  ?track_to_track_us:int ->
  ?max_seek_us:int ->
  size_bytes:int ->
  unit ->
  t
(** [v ~size_bytes ()] is a WREN-IV-like disk (the paper's test disk:
    1.3 MB/s max transfer, ~17.5 ms average seek, 3600 RPM) scaled to hold
    at least [size_bytes].  @raise Invalid_argument on nonpositive sizes. *)

val wren_iv : size_bytes:int -> t
(** The default paper-calibrated geometry; same as [v ~size_bytes ()]. *)

val size_bytes : t -> int
val cylinders : t -> int
val cylinder_of_sector : t -> int -> int

val bandwidth_bytes_per_sec : t -> float
(** Peak media transfer rate implied by the geometry. *)

val rotation_us : t -> int
(** Time for one full revolution. *)

val avg_rotational_latency_us : t -> int
(** Half a revolution. *)

val seek_us : t -> from_cyl:int -> to_cyl:int -> int
(** Seek time between cylinders; [0] when equal. *)

val transfer_us : t -> sectors:int -> int
(** Media transfer time for [sectors] consecutive sectors. *)

val avg_seek_us : t -> int
(** Mean seek time over uniformly random cylinder pairs (approximated as
    the seek covering one third of the stroke). *)

val pp : Format.formatter -> t -> unit
