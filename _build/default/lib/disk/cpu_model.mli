(** CPU cost model.

    The paper's machines are decades old; instead of wall-clock timing we
    charge simulated CPU time per operation, calibrated to the Sun-4/260
    (16.6 MHz SPARC, ~10 MIPS) used in Section 5.  The LFS small-file
    results depend on this: with synchronous writes eliminated, LFS is
    CPU-bound, so its absolute files/sec figure is set by these costs. *)

type t = {
  syscall_us : int;  (** fixed cost of entering a file-system operation *)
  per_kb_us : int;  (** cost of moving 1 KB between user and cache *)
  lookup_us : int;  (** cost of one directory-entry lookup/update *)
}

val sun4_260 : t
(** Calibrated to land the paper's absolute ranges (about 5–6 ms of CPU
    for a small-file create; see EXPERIMENTS.md). *)

val free : t
(** All costs zero — used by unit tests that check pure disk timing. *)

val scale : t -> float -> t
(** [scale t f] multiplies every cost by [f] (e.g. [scale sun4_260 0.1]
    models a 10x faster CPU, the paper's scaling argument). *)

val copy_us : t -> bytes:int -> int
(** CPU time to copy [bytes] through the cache, at [per_kb_us]. *)
