type t = { syscall_us : int; per_kb_us : int; lookup_us : int }

let sun4_260 = { syscall_us = 1_400; per_kb_us = 350; lookup_us = 250 }
let free = { syscall_us = 0; per_kb_us = 0; lookup_us = 0 }

let scale t f =
  let s x = int_of_float (float_of_int x *. f) in
  { syscall_us = s t.syscall_us; per_kb_us = s t.per_kb_us; lookup_us = s t.lookup_us }

let copy_us t ~bytes = (bytes * t.per_kb_us + 1023) / 1024
