type request = {
  issued_at_us : int;
  kind : [ `Read | `Write ];
  sync : bool;
  sector : int;
  sectors : int;
  service_us : int;
  sequential : bool;
}

type t = {
  disk : Disk.t;
  clock : Clock.t;
  cpu : Cpu_model.t;
  max_backlog_us : int;
  mutable busy_until_us : int;
  mutable recording : bool;
  mutable log : request list;  (* newest first *)
}

let create ?(max_backlog_us = 2_000_000) disk clock cpu =
  if max_backlog_us < 0 then invalid_arg "Io.create: negative backlog";
  { disk; clock; cpu; max_backlog_us; busy_until_us = 0; recording = false; log = [] }

let disk t = t.disk
let clock t = t.clock
let cpu t = t.cpu
let now_us t = Clock.now_us t.clock

let charge_cpu t us = Clock.advance_us t.clock us
let charge_syscall t = charge_cpu t t.cpu.Cpu_model.syscall_us
let charge_copy t ~bytes = charge_cpu t (Cpu_model.copy_us t.cpu ~bytes)
let charge_lookup t = charge_cpu t t.cpu.Cpu_model.lookup_us

let record t ~kind ~sync ~sector ~sectors ~service_us ~sequential =
  if t.recording then
    t.log <-
      { issued_at_us = now_us t; kind; sync; sector; sectors; service_us; sequential }
      :: t.log

let sector_size t = (Disk.geometry t.disk).Geometry.sector_size

(* The device serves requests in issue order; a request begins when both
   the caller and the device are ready. *)
let start_time t = max (now_us t) t.busy_until_us

let sync_read t ~sector ~count =
  let start = start_time t in
  let before_seeks = (Disk.stats t.disk).Disk.seeks in
  let data, service_us = Disk.read t.disk ~sector ~count in
  let sequential = (Disk.stats t.disk).Disk.seeks = before_seeks in
  record t ~kind:`Read ~sync:true ~sector ~sectors:count ~service_us ~sequential;
  Clock.advance_to_us t.clock (start + service_us);
  t.busy_until_us <- Clock.now_us t.clock;
  data

let sync_write t ~sector data =
  let start = start_time t in
  let before_seeks = (Disk.stats t.disk).Disk.seeks in
  let service_us = Disk.write t.disk ~sector data in
  let sectors = Bytes.length data / sector_size t in
  let sequential = (Disk.stats t.disk).Disk.seeks = before_seeks in
  record t ~kind:`Write ~sync:true ~sector ~sectors ~service_us ~sequential;
  Clock.advance_to_us t.clock (start + service_us);
  t.busy_until_us <- Clock.now_us t.clock

let async_write t ~sector data =
  let start = start_time t in
  let before_seeks = (Disk.stats t.disk).Disk.seeks in
  let service_us = Disk.write t.disk ~sector data in
  let sectors = Bytes.length data / sector_size t in
  let sequential = (Disk.stats t.disk).Disk.seeks = before_seeks in
  record t ~kind:`Write ~sync:false ~sector ~sectors ~service_us ~sequential;
  t.busy_until_us <- start + service_us;
  (* Writer throttling: the application may run ahead of the disk only by
     the write-buffer depth. *)
  if t.busy_until_us - Clock.now_us t.clock > t.max_backlog_us then
    Clock.advance_to_us t.clock (t.busy_until_us - t.max_backlog_us)

let drain t = Clock.advance_to_us t.clock t.busy_until_us

let backlog_us t = max 0 (t.busy_until_us - Clock.now_us t.clock)

let set_recording t on =
  t.recording <- on;
  t.log <- []

let requests t = List.rev t.log
