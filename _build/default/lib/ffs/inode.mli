(** FFS inodes.

    Same structure as the LFS inode (12 direct pointers plus single and
    double indirect), but living at a fixed disk location and carrying the
    access time inline — which is why reading a file eventually rewrites
    its inode block in FFS. *)

type kind = Lfs_vfs.Fs_intf.file_kind

type t = {
  inum : int;
  mutable kind : kind;
  mutable size : int;
  mutable nlink : int;
  mutable mtime_us : int;
  mutable atime_us : int;
  direct : int array;
  mutable indirect : int;
  mutable dindirect : int;
}

val ndirect : int
val create : inum:int -> kind:kind -> now_us:int -> t
val nblocks : block_size:int -> t -> int
val max_size : Layout.t -> int

val encode_into : t -> bytes -> off:int -> unit
val decode_at : bytes -> off:int -> t option
(** [None] for a free slot. *)

val clear_slot : bytes -> off:int -> unit
(** Zero an inode slot (deletion). *)
