(** File system check for the FFS baseline — the crash-recovery story the
    paper contrasts LFS against ("the UNIX file system must scan the
    entire disk after a crash to repair damage").

    [run] operates on the raw device, exactly like fsck after a crash:
    read the superblock, scan every inode-table block, walk every block
    pointer (including indirect blocks), rebuild the block and inode
    bitmaps from scratch, walk the directory tree for connectivity, and
    compare with the on-disk allocation bitmaps.  Every step goes through
    the simulated disk, so [elapsed_us] is the honest simulated cost of
    an FFS recovery — compared against LFS's checkpoint read in the
    recovery benchmark. *)

type report = {
  inodes_scanned : int;
  blocks_referenced : int;
  directories_walked : int;
  orphan_inodes : int;  (** allocated inodes unreachable from the root *)
  bitmap_errors : int;  (** on-disk bitmap bits that disagree with reality *)
  elapsed_us : int;  (** simulated time the scan cost *)
}

val run : Lfs_disk.Io.t -> (report, string) result
(** @return [Error _] if the superblock is unreadable. *)

val pp_report : Format.formatter -> report -> unit
