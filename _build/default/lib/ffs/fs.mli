(** The FFS-style baseline file system (SunOS's BSD fast file system as
    characterized in §3 of the paper).

    Same interface as {!Lfs_core.Fs} (both satisfy
    {!Lfs_vfs.Fs_intf.S}), but with update-in-place semantics:

    - inodes live at fixed addresses; creating or deleting a file writes
      the inode-table block and the directory block {e synchronously}
      (Figure 1's four synchronous writes for two files);
    - data blocks are allocated near their file at write time and written
      back in place (delayed, asynchronous) — small files land wherever
      their cylinder group has room, so write-back is random I/O;
    - no log, no cleaner, no checkpoints.  Crash recovery would be fsck's
      full-disk scan; it is not modelled. *)

type t

val name : string
val io : t -> Lfs_disk.Io.t

val format : Lfs_disk.Io.t -> Config.t -> (unit, string) result
val mount : ?config:Config.t -> Lfs_disk.Io.t -> (t, string) result
val unmount : t -> unit

val create : t -> string -> (unit, Lfs_vfs.Errors.t) result
val mkdir : t -> string -> (unit, Lfs_vfs.Errors.t) result
val delete : t -> string -> (unit, Lfs_vfs.Errors.t) result
val rename : t -> string -> string -> (unit, Lfs_vfs.Errors.t) result
val link : t -> string -> string -> (unit, Lfs_vfs.Errors.t) result
val readdir : t -> string -> (string list, Lfs_vfs.Errors.t) result
val stat : t -> string -> (Lfs_vfs.Fs_intf.stat, Lfs_vfs.Errors.t) result
val exists : t -> string -> bool
val write : t -> string -> off:int -> bytes -> (unit, Lfs_vfs.Errors.t) result
val read : t -> string -> off:int -> len:int -> (bytes, Lfs_vfs.Errors.t) result
val truncate : t -> string -> size:int -> (unit, Lfs_vfs.Errors.t) result
val sync : t -> unit
val fsync : t -> string -> (unit, Lfs_vfs.Errors.t) result
val flush_caches : t -> unit

(** {1 Introspection} *)

val config : t -> Config.t
val layout : t -> Layout.t
val free_blocks : t -> int
