(** Configuration for the FFS-style baseline (SunOS 4.0.3's file system in
    the paper's tests: the BSD fast file system with 8 KB blocks). *)

type t = {
  block_size : int;  (** default 8 KB, as SunOS used in §5 *)
  ngroups : int;  (** cylinder groups *)
  inode_bytes_per_inode : int;
      (** bytes of data capacity per allocated inode (BSD newfs's -i);
          determines inodes per group *)
  cache_blocks : int;  (** file-cache capacity in blocks *)
  writeback_age_us : int;  (** delayed-write threshold (30 s) *)
}

val default : t
val small : t
(** Scaled down for unit tests (1 KB blocks, 4 groups). *)

val validate : t -> (unit, string) result
