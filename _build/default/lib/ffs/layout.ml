module Codec = Lfs_util.Codec
module Crc32 = Lfs_util.Crc32
module Geometry = Lfs_disk.Geometry

type t = {
  block_size : int;
  block_sectors : int;
  total_blocks : int;
  ngroups : int;
  group_blocks : int;
  inodes_per_group : int;
  bb_blocks : int;
  ib_blocks : int;
  it_blocks : int;
  max_files : int;
}

let inode_bytes = 128
let inodes_per_block t = t.block_size / inode_bytes
let ptrs_per_block t = t.block_size / 4
let null_addr = 0

let compute (config : Config.t) geometry =
  match Config.validate config with
  | Error _ as e -> e
  | Ok () ->
      let sector_size = geometry.Geometry.sector_size in
      if config.Config.block_size mod sector_size <> 0 then
        Error "block size not a multiple of sector size"
      else begin
        let block_size = config.Config.block_size in
        let total_blocks = Geometry.size_bytes geometry / block_size in
        let ngroups = config.Config.ngroups in
        let group_blocks = (total_blocks - 1) / ngroups in
        if group_blocks < 8 then Error "disk too small for this many groups"
        else begin
          let inodes_per_group =
            max 16
              (group_blocks * block_size / config.Config.inode_bytes_per_inode)
          in
          let bits_per_block = block_size * 8 in
          let bb_blocks = (group_blocks + bits_per_block - 1) / bits_per_block in
          let ib_blocks =
            (inodes_per_group + bits_per_block - 1) / bits_per_block
          in
          let per_block = block_size / inode_bytes in
          let it_blocks = (inodes_per_group + per_block - 1) / per_block in
          let meta = bb_blocks + ib_blocks + it_blocks in
          if meta >= group_blocks then
            Error "group metadata exceeds group size"
          else
            Ok
              {
                block_size;
                block_sectors = block_size / sector_size;
                total_blocks;
                ngroups;
                group_blocks;
                inodes_per_group;
                bb_blocks;
                ib_blocks;
                it_blocks;
                max_files = ngroups * inodes_per_group;
              }
        end
      end

let sector_of_block t addr = addr * t.block_sectors
let group_first_block t g = 1 + (g * t.group_blocks)

let group_data_first t g =
  group_first_block t g + t.bb_blocks + t.ib_blocks + t.it_blocks

let group_of_block t addr =
  if addr < 1 || addr >= 1 + (t.ngroups * t.group_blocks) then
    invalid_arg "Layout.group_of_block";
  (addr - 1) / t.group_blocks

let block_bitmap_block t ~group ~idx =
  if idx < 0 || idx >= t.bb_blocks then invalid_arg "block_bitmap_block";
  group_first_block t group + idx

let inode_bitmap_block t ~group ~idx =
  if idx < 0 || idx >= t.ib_blocks then invalid_arg "inode_bitmap_block";
  group_first_block t group + t.bb_blocks + idx

let group_of_inum t inum =
  if inum <= 0 || inum >= t.max_files then
    invalid_arg (Printf.sprintf "Layout.group_of_inum: %d" inum);
  inum / t.inodes_per_group

let inode_location t inum =
  let g = group_of_inum t inum in
  let index = inum mod t.inodes_per_group in
  let per_block = inodes_per_block t in
  let block =
    group_first_block t g + t.bb_blocks + t.ib_blocks + (index / per_block)
  in
  (block, index mod per_block)

let sb_magic = 0x46465331 (* "FFS1" *)
let sb_crc_off = 24

let encode_superblock t =
  let e = Codec.encoder ~capacity:t.block_size () in
  Codec.u32 e sb_magic;
  Codec.u32 e t.block_size;
  Codec.u32 e t.ngroups;
  Codec.u32 e t.inodes_per_group;
  Codec.u32 e t.total_blocks;
  Codec.u32 e t.group_blocks;
  Codec.u32 e 0 (* crc *);
  Codec.pad_to e t.block_size;
  let block = Codec.to_bytes e in
  Bytes.set_int32_le block sb_crc_off (Crc32.digest_bytes block);
  block

let decode_superblock block geometry =
  let check () =
    let d = Codec.decoder block in
    if Codec.read_u32 d <> sb_magic then Error "ffs superblock: bad magic"
    else begin
      let block_size = Codec.read_u32 d in
      if block_size <= 0 || block_size > Bytes.length block then
        Error "ffs superblock: implausible block size"
      else begin
        let scratch = Bytes.sub block 0 block_size in
        let stored = Bytes.get_int32_le scratch sb_crc_off in
        Bytes.set_int32_le scratch sb_crc_off 0l;
        if Crc32.digest_bytes scratch <> stored then
          Error "ffs superblock: bad CRC"
        else begin
          let ngroups = Codec.read_u32 d in
          let inodes_per_group = Codec.read_u32 d in
          let total_blocks = Codec.read_u32 d in
          let group_blocks = Codec.read_u32 d in
          (* Recompute meta sizes from stored primaries. *)
          let bits_per_block = block_size * 8 in
          let bb_blocks = (group_blocks + bits_per_block - 1) / bits_per_block in
          let ib_blocks =
            (inodes_per_group + bits_per_block - 1) / bits_per_block
          in
          let per_block = block_size / inode_bytes in
          let it_blocks = (inodes_per_group + per_block - 1) / per_block in
          let expected_blocks =
            Geometry.size_bytes geometry / block_size
          in
          if total_blocks <> expected_blocks then
            Error "ffs superblock does not match disk geometry"
          else
            Ok
              {
                block_size;
                block_sectors = block_size / geometry.Geometry.sector_size;
                total_blocks;
                ngroups;
                group_blocks;
                inodes_per_group;
                bb_blocks;
                ib_blocks;
                it_blocks;
                max_files = ngroups * inodes_per_group;
              }
        end
      end
    end
  in
  match check () with
  | v -> v
  | exception Codec.Error m -> Error ("ffs superblock: " ^ m)
  | exception Invalid_argument m -> Error ("ffs superblock: " ^ m)

let pp ppf t =
  Format.fprintf ppf
    "ffs layout: %d blocks of %d B, %d groups x %d blocks, %d inodes/group"
    t.total_blocks t.block_size t.ngroups t.group_blocks t.inodes_per_group
