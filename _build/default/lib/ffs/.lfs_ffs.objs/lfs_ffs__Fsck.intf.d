lib/ffs/fsck.mli: Format Lfs_disk
