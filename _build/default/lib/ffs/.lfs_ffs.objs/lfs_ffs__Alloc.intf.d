lib/ffs/alloc.mli: Layout
