lib/ffs/fs.ml: Alloc Array Bytes Config Hashtbl Inode Int32 Layout Lfs_cache Lfs_disk Lfs_vfs List Printf String
