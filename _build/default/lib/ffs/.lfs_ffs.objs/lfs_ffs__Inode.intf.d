lib/ffs/inode.mli: Layout Lfs_vfs
