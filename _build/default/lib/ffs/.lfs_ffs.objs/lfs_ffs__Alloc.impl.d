lib/ffs/alloc.ml: Array Bytes Fun Layout Lfs_util List
