lib/ffs/fsck.ml: Array Bytes Format Hashtbl Inode Int32 Layout Lfs_disk Lfs_util Lfs_vfs List
