lib/ffs/fs.mli: Config Layout Lfs_disk Lfs_vfs
