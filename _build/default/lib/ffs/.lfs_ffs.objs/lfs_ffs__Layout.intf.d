lib/ffs/layout.mli: Config Format Lfs_disk
