lib/ffs/config.ml: Printf
