lib/ffs/inode.ml: Array Bytes Layout Lfs_util Lfs_vfs Printf
