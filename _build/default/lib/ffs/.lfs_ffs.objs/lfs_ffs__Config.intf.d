lib/ffs/config.mli:
