(** On-disk layout of the FFS baseline.

    {v
    block 0   : superblock
    group 0   : [block bitmap][inode bitmap][inode table][data ...]
    group 1   : ...
    v}

    Inodes live at *fixed* disk locations — the defining difference from
    LFS.  Creating a file therefore writes the inode's table block (and
    the directory block) in place, synchronously and far from the data. *)

type t = {
  block_size : int;
  block_sectors : int;
  total_blocks : int;
  ngroups : int;
  group_blocks : int;  (** blocks per group *)
  inodes_per_group : int;
  bb_blocks : int;  (** block-bitmap blocks per group *)
  ib_blocks : int;  (** inode-bitmap blocks per group *)
  it_blocks : int;  (** inode-table blocks per group *)
  max_files : int;
}

val inode_bytes : int
val inodes_per_block : t -> int
val ptrs_per_block : t -> int
val null_addr : int

val compute : Config.t -> Lfs_disk.Geometry.t -> (t, string) result

val sector_of_block : t -> int -> int
val group_first_block : t -> int -> int
val group_data_first : t -> int -> int
(** First data block of a group. *)

val group_of_block : t -> int -> int
val block_bitmap_block : t -> group:int -> idx:int -> int
val inode_bitmap_block : t -> group:int -> idx:int -> int

val inode_location : t -> int -> int * int
(** [inode_location t inum] is the (table-block address, slot) where the
    inode lives — fixed for all time.
    @raise Invalid_argument if out of range. *)

val group_of_inum : t -> int -> int

val encode_superblock : t -> bytes
val decode_superblock : bytes -> Lfs_disk.Geometry.t -> (t, string) result
val pp : Format.formatter -> t -> unit
