lib/cache/block_cache.mli: Lfs_disk
