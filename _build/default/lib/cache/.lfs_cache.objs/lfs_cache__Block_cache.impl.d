lib/cache/block_cache.ml: Lfs_disk Lfs_util List
