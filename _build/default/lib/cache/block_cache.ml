module Lru = Lfs_util.Lru
module Clock = Lfs_disk.Clock

type key = { owner : int; blkno : int }

type entry = {
  data : bytes;
  mutable is_dirty : bool;
  mutable dirty_since_us : int;
}

type t = {
  clock : Clock.t;
  entries : (key, entry) Lru.t;
  capacity : int;
  mutable ndirty : int;
  mutable hits : int;
  mutable misses : int;
}

let create ?(capacity_blocks = 4096) clock =
  if capacity_blocks <= 0 then invalid_arg "Block_cache.create: capacity";
  {
    clock;
    entries = Lru.create ();
    capacity = capacity_blocks;
    ndirty = 0;
    hits = 0;
    misses = 0;
  }

let capacity_blocks t = t.capacity
let length t = Lru.length t.entries
let dirty_count t = t.ndirty

let find t key =
  match Lru.find t.entries key with
  | Some e ->
      t.hits <- t.hits + 1;
      Some e.data
  | None ->
      t.misses <- t.misses + 1;
      None

let mem t key = Lru.mem t.entries key

let dirty t key =
  match Lru.peek t.entries key with Some e -> e.is_dirty | None -> false

(* Reclaim clean entries from the LRU side while over capacity.  Dirty
   entries are skipped: they are the write buffer and only write-back may
   release them. *)
let evict_clean t =
  if Lru.length t.entries > t.capacity then begin
    let excess = ref (Lru.length t.entries - t.capacity) in
    let victims =
      List.filter_map
        (fun (k, e) ->
          if !excess > 0 && not e.is_dirty then begin
            decr excess;
            Some k
          end
          else None)
        (List.rev (Lru.to_list t.entries))
    in
    List.iter (fun k -> ignore (Lru.remove t.entries k)) victims
  end

let insert t key ~dirty data =
  (match Lru.peek t.entries key with
  | Some old -> if old.is_dirty then t.ndirty <- t.ndirty - 1
  | None -> ());
  let e = { data; is_dirty = dirty; dirty_since_us = Clock.now_us t.clock } in
  if dirty then t.ndirty <- t.ndirty + 1;
  ignore (Lru.add t.entries key e);
  evict_clean t

let mark_dirty t key =
  match Lru.peek t.entries key with
  | None -> raise Not_found
  | Some e ->
      if not e.is_dirty then begin
        e.is_dirty <- true;
        e.dirty_since_us <- Clock.now_us t.clock;
        t.ndirty <- t.ndirty + 1
      end

let mark_clean t key =
  match Lru.peek t.entries key with
  | None -> ()
  | Some e ->
      if e.is_dirty then begin
        e.is_dirty <- false;
        t.ndirty <- t.ndirty - 1
      end

let remove t key =
  match Lru.remove t.entries key with
  | None -> ()
  | Some e -> if e.is_dirty then t.ndirty <- t.ndirty - 1

let fold_dirty f t init =
  List.fold_left
    (fun acc (k, e) -> if e.is_dirty then f k e.data acc else acc)
    init
    (List.rev (Lru.to_list t.entries))

let dirty_keys t = List.rev (fold_dirty (fun k _ acc -> k :: acc) t [])

let oldest_dirty_age_us t =
  let now = Clock.now_us t.clock in
  Lru.fold
    (fun _ e acc ->
      if e.is_dirty then
        let age = now - e.dirty_since_us in
        match acc with Some a when a >= age -> acc | _ -> Some age
      else acc)
    t.entries None

let over_capacity t = t.ndirty > t.capacity

let drop_clean t =
  let clean =
    Lru.fold
      (fun k e acc -> if e.is_dirty then acc else k :: acc)
      t.entries []
  in
  List.iter (fun k -> ignore (Lru.remove t.entries k)) clean

let clear t =
  Lru.clear t.entries;
  t.ndirty <- 0

let stats_hits t = t.hits
let stats_misses t = t.misses
