(* Segment cleaning (§4.3): liveness, space reclamation, policies. *)

open Common
module Fs = Lfs_core.Fs
module Config = Lfs_core.Config
module Seg_usage = Lfs_core.Seg_usage

let no_autoclean = { small_config with Config.auto_clean = false }

let fill_and_delete fs ~files ~keep_every =
  for i = 0 to files - 1 do
    write_file fs (Printf.sprintf "/f%03d" i) (pattern ~seed:i 1500)
  done;
  Fs.sync fs;
  for i = 0 to files - 1 do
    if i mod keep_every <> 0 then
      check_ok "delete" (Fs.delete fs (Printf.sprintf "/f%03d" i))
  done;
  Fs.sync fs

let test_cleaning_reclaims_space () =
  let fs = make_lfs ~config:no_autoclean () in
  fill_and_delete fs ~files:100 ~keep_every:4;
  let before = Fs.clean_segment_count fs in
  let freed = Fs.clean_now ~target:max_int fs in
  let after = Fs.clean_segment_count fs in
  Alcotest.(check bool) "freed segments" true (freed > 0);
  Alcotest.(check bool)
    (Printf.sprintf "clean count grew (%d -> %d)" before after)
    true (after > before)

let test_cleaning_preserves_data () =
  let fs = make_lfs ~config:no_autoclean () in
  fill_and_delete fs ~files:100 ~keep_every:3;
  ignore (Fs.clean_now ~target:max_int fs);
  Fs.flush_caches fs;
  for i = 0 to 99 do
    if i mod 3 = 0 then
      check_bytes
        (Printf.sprintf "f%03d" i)
        (pattern ~seed:i 1500)
        (read_all fs (Printf.sprintf "/f%03d" i))
  done

let test_cleaning_preserves_large_file () =
  (* Indirect blocks must survive evacuation. *)
  let fs = make_lfs ~size_bytes:(24 * 1024 * 1024) ~config:no_autoclean () in
  let size = 400 * 1024 in
  let data = pattern ~seed:77 size in
  check_ok "create" (Fs.create fs "/big");
  check_ok "write" (Fs.write fs "/big" ~off:0 data);
  (* Interleave small files, sync, delete them to fragment segments. *)
  for i = 0 to 99 do
    write_file fs (Printf.sprintf "/s%03d" i) (pattern ~seed:i 1024)
  done;
  Fs.sync fs;
  for i = 0 to 99 do
    check_ok "delete" (Fs.delete fs (Printf.sprintf "/s%03d" i))
  done;
  ignore (Fs.clean_now ~target:max_int fs);
  Fs.flush_caches fs;
  check_bytes "big file intact" data (read_all fs "/big")

let test_log_wraps () =
  (* Total bytes written far exceed the disk: the log must wrap through
     cleaned segments indefinitely. *)
  let fs = make_lfs ~size_bytes:(4 * 1024 * 1024) () in
  for round = 0 to 30 do
    let path = Printf.sprintf "/wrap%d" (round mod 3) in
    if Fs.exists fs path then check_ok "delete" (Fs.delete fs path);
    check_ok "create" (Fs.create fs path);
    check_ok "write" (Fs.write fs path ~off:0 (pattern ~seed:round (256 * 1024)));
    Fs.sync fs
  done;
  (* ~8 MB written through a 4 MB disk. *)
  Alcotest.(check bool) "cleaner ran" true ((Fs.stats fs).Lfs_core.State.segments_cleaned > 0)

let test_greedy_picks_emptiest () =
  let fs = make_lfs ~config:no_autoclean () in
  fill_and_delete fs ~files:60 ~keep_every:2;
  let report = Fs.segment_report fs in
  let dirty =
    List.filter (fun (_, s, _) -> s = Seg_usage.Dirty) report
    |> List.map (fun (seg, _, u) -> (u, seg))
    |> List.sort compare
  in
  match dirty with
  | [] -> Alcotest.fail "no dirty segments"
  | (_, emptiest) :: _ ->
      let victims = Lfs_core.Cleaner.select_victims fs ~batch:1 in
      Alcotest.(check (list int)) "greedy victim" [ emptiest ] victims

let test_policies_all_run () =
  List.iter
    (fun policy ->
      let fs = make_lfs ~config:{ no_autoclean with Config.policy } () in
      fill_and_delete fs ~files:80 ~keep_every:4;
      ignore (Fs.clean_now ~target:max_int fs);
      for i = 0 to 79 do
        if i mod 4 = 0 then
          check_bytes
            (Printf.sprintf "%s f%03d" (Config.policy_name policy) i)
            (pattern ~seed:i 1500)
            (read_all fs (Printf.sprintf "/f%03d" i))
      done)
    [ Config.Greedy; Config.Cost_benefit; Config.Oldest ]

let test_full_segments_not_selected () =
  let fs = make_lfs ~config:no_autoclean () in
  (* Create files but delete nothing: all dirty segments are ~full. *)
  for i = 0 to 59 do
    write_file fs (Printf.sprintf "/f%03d" i) (pattern ~seed:i 1500)
  done;
  Fs.sync fs;
  let victims = Lfs_core.Cleaner.select_victims fs ~batch:10 in
  (* Only partial segments (tail of log) may be eligible. *)
  List.iter
    (fun seg ->
      let u = Lfs_core.Seg_usage.utilization
                (let st : Lfs_core.State.t = fs in st.usage) seg in
      Alcotest.(check bool) "victim below threshold" true
        (u < small_config.Config.max_live_fraction))
    victims

let test_write_cost_reported () =
  let fs = make_lfs ~config:no_autoclean () in
  fill_and_delete fs ~files:100 ~keep_every:3;
  Alcotest.(check bool) "cost starts at ~1" true (Fs.write_cost fs >= 1.0);
  ignore (Fs.clean_now ~target:max_int fs);
  Alcotest.(check bool) "cleaning raises write cost" true (Fs.write_cost fs > 1.0)

let test_enospc_when_truly_full () =
  let fs = make_lfs ~size_bytes:(2 * 1024 * 1024) () in
  let wrote = ref 0 in
  let full = ref false in
  (try
     for i = 0 to 10_000 do
       (match Fs.create fs (Printf.sprintf "/fill%05d" i) with
       | Ok () -> ()
       | Error Lfs_vfs.Errors.Enospc -> raise Exit
       | Error e -> Alcotest.failf "create: %s" (Lfs_vfs.Errors.to_string e));
       (match
          Fs.write fs (Printf.sprintf "/fill%05d" i) ~off:0 (pattern ~seed:i 4096)
        with
       | Ok () -> incr wrote
       | Error Lfs_vfs.Errors.Enospc -> raise Exit
       | Error e -> Alcotest.failf "write: %s" (Lfs_vfs.Errors.to_string e))
     done
   with Exit -> full := true);
  Alcotest.(check bool) "eventually reports Enospc" true !full;
  (* Must have stored a sensible fraction of the disk before failing. *)
  Alcotest.(check bool)
    (Printf.sprintf "stored enough before Enospc (%d files)" !wrote)
    true
    (!wrote * 4096 > 1024 * 1024 / 2);
  (* Still consistent and readable. *)
  let names = check_ok "readdir" (Fs.readdir fs "/") in
  ignore (read_all fs ("/" ^ List.hd names))

let test_structurally_sound_after_cleaning () =
  let fs = make_lfs ~config:no_autoclean () in
  fill_and_delete fs ~files:100 ~keep_every:3;
  ignore (Fs.clean_now ~target:max_int fs);
  match Lfs_core.Check.fsck fs with
  | [] -> ()
  | issues ->
      Alcotest.failf "structural issues after cleaning: %s"
        (String.concat "; "
           (List.map (Format.asprintf "%a" Lfs_core.Check.pp_issue) issues))

let test_usage_accounting_exact () =
  (* The incremental live-byte estimates must track ground truth through
     create/overwrite/delete/clean cycles (modulo the usage-array
     self-reference, which the paper tolerates: the array's own blocks
     move during the checkpoint that records them). *)
  let fs = make_lfs ~config:no_autoclean () in
  fill_and_delete fs ~files:120 ~keep_every:3;
  for i = 0 to 119 do
    if i mod 6 = 0 then
      check_ok "overwrite" (Fs.write fs (Printf.sprintf "/f%03d" i) ~off:0 (pattern ~seed:(i + 7) 1500))
  done;
  Fs.sync fs;
  ignore (Fs.clean_now ~target:max_int fs);
  let layout = Fs.layout fs in
  let tolerance = 2 * layout.Lfs_core.Layout.block_size in
  List.iter
    (fun (seg, recorded, truth) ->
      if abs (recorded - truth) > tolerance then
        Alcotest.failf "segment %d accounting drift: recorded %d vs truth %d"
          seg recorded truth)
    (Lfs_core.Check.usage_drift fs)

let suite =
  [
    Alcotest.test_case "usage accounting matches ground truth" `Quick
      test_usage_accounting_exact;
    Alcotest.test_case "structurally sound after cleaning" `Quick
      test_structurally_sound_after_cleaning;
    Alcotest.test_case "reclaims space" `Quick test_cleaning_reclaims_space;
    Alcotest.test_case "preserves data" `Quick test_cleaning_preserves_data;
    Alcotest.test_case "preserves large file" `Quick
      test_cleaning_preserves_large_file;
    Alcotest.test_case "log wraps" `Quick test_log_wraps;
    Alcotest.test_case "greedy picks emptiest" `Quick test_greedy_picks_emptiest;
    Alcotest.test_case "all policies preserve data" `Quick test_policies_all_run;
    Alcotest.test_case "full segments not selected" `Quick
      test_full_segments_not_selected;
    Alcotest.test_case "write cost reported" `Quick test_write_cost_reported;
    Alcotest.test_case "Enospc when truly full" `Quick
      test_enospc_when_truly_full;
  ]
