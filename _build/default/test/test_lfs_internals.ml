(* Internal LFS modules: layout computation, segment writer, namespace
   block management, imap allocation, usage bookkeeping. *)

open Common
module Config = Lfs_core.Config
module Geometry = Lfs_disk.Geometry
module Imap = Lfs_core.Imap
module Layout = Lfs_core.Layout
module Namespace = Lfs_core.Namespace
module Seg_usage = Lfs_core.Seg_usage
module Segwriter = Lfs_core.Segwriter
module Summary = Lfs_core.Summary

let qcheck = QCheck_alcotest.to_alcotest

(* Layout *)

let prop_layout_invariants =
  QCheck.Test.make ~name:"layout invariants over configurations" ~count:100
    QCheck.(
      triple (int_range 0 3) (* block size: 1K << n *)
        (int_range 2 8) (* segment = block << n *)
        (int_range 4 128) (* disk MB *))
    (fun (bshift, sshift, disk_mb) ->
      let block_size = 1024 lsl bshift in
      let segment_size = block_size lsl sshift in
      let config =
        { Config.default with Config.block_size; segment_size; max_files = 2048 }
      in
      let geometry = Geometry.wren_iv ~size_bytes:(disk_mb * 1024 * 1024) in
      match Layout.compute config geometry with
      | Error _ -> QCheck.assume_fail () (* too small: rejected cleanly *)
      | Ok l ->
          l.Layout.summary_blocks >= 1
          && l.Layout.payload_blocks
             = l.Layout.seg_blocks - l.Layout.summary_blocks
          && l.Layout.payload_blocks
             <= Summary.max_entries
                  ~size_bytes:(l.Layout.summary_blocks * block_size)
          && l.Layout.first_segment_block
             + (l.Layout.nsegments * l.Layout.seg_blocks)
             <= l.Layout.total_blocks
          && fst l.Layout.cp_region < snd l.Layout.cp_region
          && snd l.Layout.cp_region + l.Layout.cp_blocks
             <= l.Layout.first_segment_block)

let test_layout_addr_roundtrip () =
  let geometry = Geometry.wren_iv ~size_bytes:(8 * 1024 * 1024) in
  let l =
    match Layout.compute Config.small geometry with
    | Ok l -> l
    | Error e -> failwith e
  in
  for seg = 0 to l.Layout.nsegments - 1 do
    for idx = 0 to l.Layout.payload_blocks - 1 do
      let addr = Layout.segment_payload_block l ~seg ~idx in
      Alcotest.(check int) "segment" seg (Layout.segment_of_block l addr);
      Alcotest.(check int) "index" idx (Layout.payload_index_of_block l addr)
    done
  done

(* Segwriter (through a mounted fs) *)

let test_segwriter_fills_and_rolls () =
  let fs = make_lfs () in
  let layout = Lfs_core.Fs.layout fs in
  let bs = layout.Lfs_core.Layout.block_size in
  Alcotest.(check int) "no active blocks" 0 (Segwriter.active_blocks fs);
  (* Write more than one segment's payload and flush. *)
  let nblocks = layout.Lfs_core.Layout.payload_blocks + 3 in
  write_file fs "/big" (pattern ~seed:1 (nblocks * bs));
  Lfs_core.Fs.sync fs;
  let stats = Lfs_core.Fs.stats fs in
  Alcotest.(check bool) "multiple segments written" true
    (stats.Lfs_core.State.segments_written >= 2);
  Alcotest.(check bool) "partials counted" true
    (stats.Lfs_core.State.partial_segments >= 1);
  Alcotest.(check int) "buffer drained" 0 (Segwriter.active_blocks fs)

(* Namespace: directory growth across blocks *)

let test_directory_spills_blocks () =
  let fs = make_lfs () in
  (* 1 KB blocks hold ~45 entries of ~22 bytes; create enough to force
     several directory blocks, with names long enough to straddle. *)
  let n = 150 in
  for i = 0 to n - 1 do
    check_ok "create"
      (Lfs_core.Fs.create fs (Printf.sprintf "/a-rather-long-file-name-%04d" i))
  done;
  let st = check_ok "stat" (Lfs_core.Fs.stat fs "/") in
  Alcotest.(check bool) "root spans multiple blocks" true
    (st.Lfs_vfs.Fs_intf.size > 1024);
  Alcotest.(check int) "all listed" n
    (List.length (check_ok "readdir" (Lfs_core.Fs.readdir fs "/")));
  (* Delete from the middle; the namespace must stay consistent. *)
  for i = 0 to n - 1 do
    if i mod 3 = 1 then
      check_ok "delete"
        (Lfs_core.Fs.delete fs (Printf.sprintf "/a-rather-long-file-name-%04d" i))
  done;
  Alcotest.(check int) "two thirds remain" (n - (n / 3))
    (List.length (check_ok "readdir" (Lfs_core.Fs.readdir fs "/")));
  Alcotest.(check int) "fsck clean" 0 (List.length (Lfs_core.Check.fsck fs))

let test_max_name_length () =
  let fs = make_lfs () in
  let name255 = String.make 255 'x' in
  check_ok "255-char name" (Lfs_core.Fs.create fs ("/" ^ name255));
  Alcotest.(check bool) "listed" true
    (List.mem name255 (check_ok "readdir" (Lfs_core.Fs.readdir fs "/")));
  match Lfs_core.Fs.create fs ("/" ^ String.make 256 'y') with
  | Error (Lfs_vfs.Errors.Einval _) -> ()
  | _ -> Alcotest.fail "256-char name accepted"

(* Imap allocation behaviour through the public API *)

let test_inum_exhaustion_and_reuse () =
  let config = { small_config with Config.max_files = 64 } in
  let fs = make_lfs ~config () in
  (* Fill the inode map (root takes one slot). *)
  let created = ref 0 in
  (try
     for i = 0 to 200 do
       match Lfs_core.Fs.create fs (Printf.sprintf "/f%03d" i) with
       | Ok () -> incr created
       | Error Lfs_vfs.Errors.Enospc -> raise Exit
       | Error e -> Alcotest.failf "create: %s" (Lfs_vfs.Errors.to_string e)
     done
   with Exit -> ());
  Alcotest.(check int) "map filled" 62 !created;
  (* Deleting one frees exactly one slot. *)
  check_ok "delete" (Lfs_core.Fs.delete fs "/f000");
  check_ok "create again" (Lfs_core.Fs.create fs "/reborn");
  match Lfs_core.Fs.create fs "/one-too-many" with
  | Error Lfs_vfs.Errors.Enospc -> ()
  | _ -> Alcotest.fail "expected Enospc"

(* Segment usage bookkeeping visible through the report *)

let test_usage_report_consistency () =
  let fs = make_lfs () in
  for i = 0 to 29 do
    write_file fs (Printf.sprintf "/f%02d" i) (pattern ~seed:i 2000)
  done;
  Lfs_core.Fs.sync fs;
  let report = Lfs_core.Fs.segment_report fs in
  let total =
    List.fold_left
      (fun acc (_, state, u) ->
        (match state with
        | Seg_usage.Clean -> Alcotest.(check (float 0.001)) "clean is empty" 0.0 u
        | Seg_usage.Dirty | Seg_usage.Active -> ());
        acc + 1)
      0 report
  in
  Alcotest.(check int) "all segments reported"
    (Lfs_core.Fs.layout fs).Lfs_core.Layout.nsegments total;
  (* Live bytes roughly match what we wrote (30 files x 2 KB data plus
     metadata; generous upper bound). *)
  let live = Lfs_core.Fs.live_bytes fs in
  Alcotest.(check bool)
    (Printf.sprintf "live bytes sane (%d)" live)
    true
    (live > 30 * 2000 && live < 30 * 2000 * 4)

let suite =
  [
    qcheck prop_layout_invariants;
    Alcotest.test_case "layout address roundtrip" `Quick
      test_layout_addr_roundtrip;
    Alcotest.test_case "segment writer fills and rolls" `Quick
      test_segwriter_fills_and_rolls;
    Alcotest.test_case "directory spills blocks" `Quick
      test_directory_spills_blocks;
    Alcotest.test_case "max name length" `Quick test_max_name_length;
    Alcotest.test_case "inum exhaustion and reuse" `Quick
      test_inum_exhaustion_and_reuse;
    Alcotest.test_case "usage report consistency" `Quick
      test_usage_report_consistency;
  ]
