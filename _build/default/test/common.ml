(* Shared helpers for the test suites. *)

module Clock = Lfs_disk.Clock
module Cpu_model = Lfs_disk.Cpu_model
module Disk = Lfs_disk.Disk
module Geometry = Lfs_disk.Geometry
module Io = Lfs_disk.Io

let small_geometry ?(size_bytes = 8 * 1024 * 1024) () =
  Geometry.wren_iv ~size_bytes

let make_io ?(size_bytes = 8 * 1024 * 1024) ?(cpu = Cpu_model.free) () =
  let disk = Disk.create (small_geometry ~size_bytes ()) in
  let clock = Clock.create () in
  Io.create disk clock cpu

let small_config = Lfs_core.Config.small

(* A formatted, mounted small LFS. *)
let make_lfs ?(size_bytes = 8 * 1024 * 1024) ?(config = small_config) () =
  let io = make_io ~size_bytes () in
  (match Lfs_core.Fs.format io config with
  | Ok () -> ()
  | Error e -> failwith ("format: " ^ e));
  match Lfs_core.Fs.mount ~config io with
  | Ok fs -> fs
  | Error e -> failwith ("mount: " ^ e)

let check_ok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what (Lfs_vfs.Errors.to_string e)

let check_err what expected = function
  | Ok _ -> Alcotest.failf "%s: expected error, got Ok" what
  | Error e ->
      if not (Lfs_vfs.Errors.equal e expected) then
        Alcotest.failf "%s: expected %s, got %s" what
          (Lfs_vfs.Errors.to_string expected)
          (Lfs_vfs.Errors.to_string e)

let bytes_of_string = Bytes.of_string

(* Deterministic pseudo-random file content. *)
let pattern ~seed len =
  let rng = Lfs_util.Rng.create seed in
  Bytes.init len (fun _ -> Char.chr (Lfs_util.Rng.int rng 256))

let read_all fs path =
  let stat = check_ok "stat" (Lfs_core.Fs.stat fs path) in
  check_ok "read" (Lfs_core.Fs.read fs path ~off:0 ~len:stat.Lfs_vfs.Fs_intf.size)

let write_file fs path data =
  check_ok "create" (Lfs_core.Fs.create fs path);
  check_ok "write" (Lfs_core.Fs.write fs path ~off:0 data)

let check_bytes what expected actual =
  if not (Bytes.equal expected actual) then
    Alcotest.failf "%s: content mismatch (%d vs %d bytes)" what
      (Bytes.length expected) (Bytes.length actual)
