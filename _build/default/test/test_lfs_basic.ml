(* Basic LFS functionality: namespace operations, data paths, sync and
   remount round trips. *)

open Common
module Fs = Lfs_core.Fs
module E = Lfs_vfs.Errors

let test_format_mount () =
  let fs = make_lfs () in
  Alcotest.(check (list string)) "empty root" [] (check_ok "readdir" (Fs.readdir fs "/"))

let test_create_stat () =
  let fs = make_lfs () in
  check_ok "create" (Fs.create fs "/a");
  let st = check_ok "stat" (Fs.stat fs "/a") in
  Alcotest.(check int) "size" 0 st.Lfs_vfs.Fs_intf.size;
  Alcotest.(check bool) "kind" true (st.Lfs_vfs.Fs_intf.kind = Lfs_vfs.Fs_intf.Regular);
  check_err "create twice" (E.Eexist "/a") (Fs.create fs "/a")

let test_write_read_roundtrip () =
  let fs = make_lfs () in
  let data = pattern ~seed:42 5000 in
  write_file fs "/f" data;
  check_bytes "immediate read" data (read_all fs "/f");
  Fs.sync fs;
  check_bytes "after sync" data (read_all fs "/f");
  Fs.flush_caches fs;
  check_bytes "after cache flush" data (read_all fs "/f")

let test_overwrite () =
  let fs = make_lfs () in
  write_file fs "/f" (pattern ~seed:1 3000);
  let v2 = pattern ~seed:2 3000 in
  check_ok "overwrite" (Fs.write fs "/f" ~off:0 v2);
  check_bytes "overwrite wins" v2 (read_all fs "/f");
  (* Partial overwrite in the middle. *)
  let patch = bytes_of_string "HELLO" in
  check_ok "patch" (Fs.write fs "/f" ~off:1000 patch);
  let expect = Bytes.copy v2 in
  Bytes.blit patch 0 expect 1000 5;
  check_bytes "patched" expect (read_all fs "/f")

let test_sparse_and_holes () =
  let fs = make_lfs () in
  check_ok "create" (Fs.create fs "/sparse");
  let tail = bytes_of_string "end" in
  check_ok "write far" (Fs.write fs "/sparse" ~off:5000 tail);
  let st = check_ok "stat" (Fs.stat fs "/sparse") in
  Alcotest.(check int) "size" 5003 st.Lfs_vfs.Fs_intf.size;
  let all = read_all fs "/sparse" in
  Alcotest.(check int) "read len" 5003 (Bytes.length all);
  for i = 0 to 4999 do
    if Bytes.get all i <> '\000' then Alcotest.failf "hole not zero at %d" i
  done;
  Alcotest.(check string) "tail" "end" (Bytes.to_string (Bytes.sub all 5000 3));
  Fs.flush_caches fs;
  let all = read_all fs "/sparse" in
  Alcotest.(check string) "tail after flush" "end"
    (Bytes.to_string (Bytes.sub all 5000 3))

let test_delete () =
  let fs = make_lfs () in
  write_file fs "/f" (pattern ~seed:3 2000);
  check_ok "delete" (Fs.delete fs "/f");
  Alcotest.(check bool) "gone" false (Fs.exists fs "/f");
  check_err "re-delete" (E.Enoent "/f") (Fs.delete fs "/f");
  (* Name reusable. *)
  write_file fs "/f" (bytes_of_string "new");
  Alcotest.(check string) "new content" "new" (Bytes.to_string (read_all fs "/f"))

let test_directories () =
  let fs = make_lfs () in
  check_ok "mkdir" (Fs.mkdir fs "/d");
  check_ok "mkdir nested" (Fs.mkdir fs "/d/e");
  write_file fs "/d/e/f" (bytes_of_string "deep");
  Alcotest.(check (list string)) "ls /" [ "d" ] (check_ok "readdir" (Fs.readdir fs "/"));
  Alcotest.(check (list string)) "ls /d" [ "e" ] (check_ok "readdir" (Fs.readdir fs "/d"));
  Alcotest.(check (list string)) "ls /d/e" [ "f" ] (check_ok "readdir" (Fs.readdir fs "/d/e"));
  check_err "rmdir nonempty" (E.Enotempty "/d") (Fs.delete fs "/d");
  check_ok "rm file" (Fs.delete fs "/d/e/f");
  check_ok "rmdir e" (Fs.delete fs "/d/e");
  check_ok "rmdir d" (Fs.delete fs "/d")

let test_many_files_in_dir () =
  let fs = make_lfs () in
  let n = 200 in
  for i = 0 to n - 1 do
    write_file fs (Printf.sprintf "/file%04d" i) (pattern ~seed:i 100)
  done;
  let names = check_ok "readdir" (Fs.readdir fs "/") in
  Alcotest.(check int) "count" n (List.length names);
  Fs.flush_caches fs;
  for i = 0 to n - 1 do
    check_bytes
      (Printf.sprintf "file %d" i)
      (pattern ~seed:i 100)
      (read_all fs (Printf.sprintf "/file%04d" i))
  done

let test_rename () =
  let fs = make_lfs () in
  write_file fs "/a" (bytes_of_string "content");
  check_ok "mkdir" (Fs.mkdir fs "/d");
  check_ok "rename" (Fs.rename fs "/a" "/d/b");
  Alcotest.(check bool) "src gone" false (Fs.exists fs "/a");
  Alcotest.(check string) "dst content" "content" (Bytes.to_string (read_all fs "/d/b"));
  check_err "rename missing" (E.Enoent "/a") (Fs.rename fs "/a" "/c");
  (* Cannot move a directory beneath itself. *)
  check_ok "mkdir2" (Fs.mkdir fs "/d/sub");
  (match Fs.rename fs "/d" "/d/sub/x" with
  | Error (E.Einval _) -> ()
  | Ok () -> Alcotest.fail "rename into own subtree succeeded"
  | Error e -> Alcotest.failf "unexpected error %s" (E.to_string e))

let test_truncate () =
  let fs = make_lfs () in
  let data = pattern ~seed:9 4000 in
  write_file fs "/t" data;
  check_ok "shrink" (Fs.truncate fs "/t" ~size:1500);
  let got = read_all fs "/t" in
  Alcotest.(check int) "len" 1500 (Bytes.length got);
  check_bytes "prefix" (Bytes.sub data 0 1500) got;
  (* Extend back: the tail must read as zeros. *)
  check_ok "extend" (Fs.truncate fs "/t" ~size:3000);
  let got = read_all fs "/t" in
  Alcotest.(check int) "len2" 3000 (Bytes.length got);
  for i = 1500 to 2999 do
    if Bytes.get got i <> '\000' then Alcotest.failf "tail not zero at %d" i
  done;
  (* Truncate to zero bumps the version. *)
  check_ok "zero" (Fs.truncate fs "/t" ~size:0);
  Alcotest.(check int) "empty" 0 (Bytes.length (read_all fs "/t"))

let test_remount_preserves () =
  let fs = make_lfs () in
  write_file fs "/keep" (pattern ~seed:7 2500);
  check_ok "mkdir" (Fs.mkdir fs "/dir");
  write_file fs "/dir/sub" (bytes_of_string "subfile");
  Fs.unmount fs;
  let fs2 =
    match Fs.mount ~config:small_config (Fs.io fs) with
    | Ok f -> f
    | Error e -> Alcotest.failf "remount: %s" e
  in
  check_bytes "file survives" (pattern ~seed:7 2500) (read_all fs2 "/keep");
  Alcotest.(check string) "subfile" "subfile" (Bytes.to_string (read_all fs2 "/dir/sub"));
  Alcotest.(check (list string)) "root" [ "dir"; "keep" ]
    (check_ok "readdir" (Fs.readdir fs2 "/"))

let test_errors () =
  let fs = make_lfs () in
  check_err "read missing" (E.Enoent "x") (Fs.read fs "/x" ~off:0 ~len:10);
  check_ok "mkdir" (Fs.mkdir fs "/d");
  check_err "write dir" (E.Eisdir "/d") (Fs.write fs "/d" ~off:0 (bytes_of_string "no"));
  check_err "read dir" (E.Eisdir "/d") (Fs.read fs "/d" ~off:0 ~len:1);
  (match Fs.create fs "relative" with
  | Error (E.Einval _) -> ()
  | _ -> Alcotest.fail "relative path accepted");
  (match Fs.create fs "/d/x/y" with
  | Error (E.Enoent _) -> ()
  | _ -> Alcotest.fail "missing intermediate accepted");
  (match
     let _ = Fs.create fs "/f" in
     Fs.create fs "/f/child"
   with
  | Error (E.Enotdir _) -> ()
  | _ -> Alcotest.fail "file used as directory accepted")

let test_large_file_indirect () =
  (* Exercise single- and double-indirect block paths: with 1 KB blocks
     and 12 direct pointers the single-indirect range covers 12+256
     blocks; go past it. *)
  let fs = make_lfs ~size_bytes:(24 * 1024 * 1024) () in
  let size = 600 * 1024 in
  let data = pattern ~seed:11 size in
  check_ok "create" (Fs.create fs "/big");
  (* Write in 8 KB chunks as the paper's large-file test does. *)
  let chunk = 8192 in
  let rec go off =
    if off < size then begin
      let n = min chunk (size - off) in
      check_ok "write chunk" (Fs.write fs "/big" ~off (Bytes.sub data off n));
      go (off + n)
    end
  in
  go 0;
  Fs.flush_caches fs;
  check_bytes "big roundtrip" data (read_all fs "/big");
  (* Random rewrites. *)
  let rng = Lfs_util.Rng.create 99 in
  for _ = 1 to 50 do
    let off = Lfs_util.Rng.int rng (size - chunk) in
    let patch = pattern ~seed:off chunk in
    check_ok "rewrite" (Fs.write fs "/big" ~off patch);
    Bytes.blit patch 0 data off chunk
  done;
  Fs.flush_caches fs;
  check_bytes "after rewrites" data (read_all fs "/big");
  check_ok "delete big" (Fs.delete fs "/big")

let test_atime_mtime () =
  let fs = make_lfs () in
  let io = Fs.io fs in
  write_file fs "/t" (bytes_of_string "x");
  let st1 = check_ok "stat" (Fs.stat fs "/t") in
  Lfs_disk.Io.charge_cpu io 1_000_000;
  ignore (check_ok "read" (Fs.read fs "/t" ~off:0 ~len:1));
  let st2 = check_ok "stat" (Fs.stat fs "/t") in
  Alcotest.(check bool) "atime advanced" true
    (st2.Lfs_vfs.Fs_intf.atime_us > st1.Lfs_vfs.Fs_intf.atime_us);
  Alcotest.(check int) "mtime unchanged" st1.Lfs_vfs.Fs_intf.mtime_us
    st2.Lfs_vfs.Fs_intf.mtime_us

let test_writeback_age_trigger () =
  (* §4.3.5 cache write-back: dirty data older than the threshold is
     pushed to disk by ordinary activity, without any sync call. *)
  let fs = make_lfs () in
  let io = Fs.io fs in
  let disk = Lfs_disk.Io.disk io in
  write_file fs "/aged" (pattern ~seed:21 3000);
  let writes_before = (Lfs_disk.Disk.stats disk).Lfs_disk.Disk.writes in
  (* 31 simulated seconds pass; a read then triggers housekeeping. *)
  Lfs_disk.Io.charge_cpu io 31_000_000;
  ignore (check_ok "read" (Fs.read fs "/aged" ~off:0 ~len:10));
  Alcotest.(check bool) "aged data flushed" true
    ((Lfs_disk.Disk.stats disk).Lfs_disk.Disk.writes > writes_before)

let test_checkpoint_interval_trigger () =
  let fs = make_lfs () in
  let io = Fs.io fs in
  let before = (Fs.stats fs).Lfs_core.State.checkpoints in
  write_file fs "/tick" (pattern ~seed:22 500);
  Lfs_disk.Io.charge_cpu io 31_000_000;
  ignore (check_ok "read" (Fs.read fs "/tick" ~off:0 ~len:10));
  Alcotest.(check bool) "periodic checkpoint ran" true
    ((Fs.stats fs).Lfs_core.State.checkpoints > before)

let test_atime_survives_checkpointed_remount () =
  (* The access time lives in the inode map (paper, footnote 2), which is
     persisted at checkpoints. *)
  let fs = make_lfs () in
  write_file fs "/a" (pattern ~seed:23 100);
  Lfs_disk.Io.charge_cpu (Fs.io fs) 1_000_000;
  ignore (check_ok "read" (Fs.read fs "/a" ~off:0 ~len:10));
  let atime = (check_ok "stat" (Fs.stat fs "/a")).Lfs_vfs.Fs_intf.atime_us in
  Fs.unmount fs;
  let fs2 =
    match Fs.mount ~config:small_config (Fs.io fs) with
    | Ok f -> f
    | Error e -> Alcotest.failf "remount: %s" e
  in
  Alcotest.(check int) "atime persisted" atime
    (check_ok "stat" (Fs.stat fs2 "/a")).Lfs_vfs.Fs_intf.atime_us

let test_fresh_fs_is_sound () =
  let fs = make_lfs () in
  write_file fs "/x" (pattern ~seed:24 100);
  Alcotest.(check int) "no structural issues" 0
    (List.length (Lfs_core.Check.fsck fs))

let suite =
  [
    Alcotest.test_case "write-back age trigger" `Quick
      test_writeback_age_trigger;
    Alcotest.test_case "checkpoint interval trigger" `Quick
      test_checkpoint_interval_trigger;
    Alcotest.test_case "atime survives remount" `Quick
      test_atime_survives_checkpointed_remount;
    Alcotest.test_case "structural check on fresh fs" `Quick
      test_fresh_fs_is_sound;
    Alcotest.test_case "format+mount" `Quick test_format_mount;
    Alcotest.test_case "create+stat" `Quick test_create_stat;
    Alcotest.test_case "write/read roundtrip" `Quick test_write_read_roundtrip;
    Alcotest.test_case "overwrite" `Quick test_overwrite;
    Alcotest.test_case "sparse files" `Quick test_sparse_and_holes;
    Alcotest.test_case "delete" `Quick test_delete;
    Alcotest.test_case "directories" `Quick test_directories;
    Alcotest.test_case "many files" `Quick test_many_files_in_dir;
    Alcotest.test_case "rename" `Quick test_rename;
    Alcotest.test_case "truncate" `Quick test_truncate;
    Alcotest.test_case "remount" `Quick test_remount_preserves;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "large file (indirect)" `Quick test_large_file_indirect;
    Alcotest.test_case "atime/mtime" `Quick test_atime_mtime;
  ]
