test/test_lfs_cleaner.ml: Alcotest Common Format Lfs_core Lfs_vfs List Printf String
