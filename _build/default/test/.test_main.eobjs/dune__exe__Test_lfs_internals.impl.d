test/test_lfs_internals.ml: Alcotest Common Lfs_core Lfs_disk Lfs_vfs List Printf QCheck QCheck_alcotest String
