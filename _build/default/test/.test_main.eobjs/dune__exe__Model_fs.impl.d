test/model_fs.ml: Bytes Hashtbl List Map String
