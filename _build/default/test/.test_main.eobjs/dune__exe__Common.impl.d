test/common.ml: Alcotest Bytes Char Lfs_core Lfs_disk Lfs_util Lfs_vfs
