test/test_ffs.ml: Alcotest Array Bytes Char Common Lfs_core Lfs_disk Lfs_ffs Lfs_vfs List Printf
