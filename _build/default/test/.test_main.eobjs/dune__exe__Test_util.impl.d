test/test_util.ml: Alcotest Array Bytes Char Fun Gen Lfs_util List QCheck QCheck_alcotest String
