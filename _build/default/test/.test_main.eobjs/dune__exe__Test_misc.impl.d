test/test_misc.ml: Alcotest Common Lfs_core Lfs_ffs Lfs_vfs List Result String
