test/test_lfs_recovery.ml: Alcotest Common Format Lfs_core Lfs_disk Lfs_vfs List Printf String
