test/test_trace.ml: Alcotest Bytes Format Lfs_workload List Model_fs QCheck QCheck_alcotest String
