test/test_vfs.ml: Alcotest Bytes Gen Lfs_vfs List QCheck QCheck_alcotest String
