test/test_cache.ml: Alcotest Bytes Lfs_cache Lfs_disk List
