test/test_disk.ml: Alcotest Bytes Char Lfs_disk List
