test/test_workload.ml: Alcotest Lfs_core Lfs_workload List
