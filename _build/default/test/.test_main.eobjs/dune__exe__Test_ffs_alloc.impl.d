test/test_ffs_alloc.ml: Alcotest Hashtbl Lfs_disk Lfs_ffs List Option QCheck QCheck_alcotest
