test/test_model.ml: Bytes Char Common Format Generic_suite Hashtbl Lfs_core Lfs_disk Lfs_ffs Lfs_util Lfs_vfs List Model_fs Option Printf QCheck QCheck_alcotest String Sys
