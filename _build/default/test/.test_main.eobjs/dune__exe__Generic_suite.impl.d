test/generic_suite.ml: Alcotest Bytes Common Lfs_core Lfs_ffs Lfs_vfs List Printf
