test/test_lfs_basic.ml: Alcotest Bytes Common Lfs_core Lfs_disk Lfs_util Lfs_vfs List Printf
