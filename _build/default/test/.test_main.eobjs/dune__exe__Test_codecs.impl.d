test/test_codecs.ml: Alcotest Array Bytes Lfs_core Lfs_disk Lfs_vfs List Printf QCheck QCheck_alcotest
