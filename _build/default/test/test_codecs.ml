(* Round-trip properties for every LFS on-disk structure: inodes, summary
   regions, checkpoint regions, superblocks, imap and usage blocks. *)

module Checkpoint = Lfs_core.Checkpoint
module Config = Lfs_core.Config
module Geometry = Lfs_disk.Geometry
module Imap = Lfs_core.Imap
module Inode = Lfs_core.Inode
module Layout = Lfs_core.Layout
module Seg_usage = Lfs_core.Seg_usage
module Summary = Lfs_core.Summary

let qcheck = QCheck_alcotest.to_alcotest

let layout () =
  let geometry = Geometry.wren_iv ~size_bytes:(8 * 1024 * 1024) in
  match Layout.compute Config.small geometry with
  | Ok l -> l
  | Error e -> failwith e

(* Inode *)

let inode_gen =
  QCheck.Gen.(
    let addr = int_bound 100_000 in
    map
      (fun ((inum, kind, size), (nlink, mtime, direct, ind, dind)) ->
        let ino =
          Inode.create
            ~inum:(1 + inum)
            ~kind:(if kind then Lfs_vfs.Fs_intf.Regular else Lfs_vfs.Fs_intf.Directory)
            ~now_us:mtime
        in
        ino.Inode.size <- size;
        ino.Inode.nlink <- nlink;
        List.iteri (fun i a -> if i < Inode.ndirect then ino.Inode.direct.(i) <- a) direct;
        ino.Inode.indirect <- ind;
        ino.Inode.dindirect <- dind;
        ino)
      (pair
         (triple (int_bound 60000) bool (int_bound 10_000_000))
         (tup5 (int_range 1 100) (int_bound 1_000_000) (list_size (pure 12) addr)
            addr addr)))

let prop_inode_roundtrip =
  QCheck.Test.make ~name:"inode codec roundtrip" ~count:300
    (QCheck.make inode_gen)
    (fun ino ->
      let buf = Bytes.make Layout.inode_bytes '\000' in
      Inode.encode_into ino buf ~off:0;
      match Inode.decode_at buf ~off:0 with
      | None -> false
      | Some ino' ->
          ino'.Inode.inum = ino.Inode.inum
          && ino'.Inode.kind = ino.Inode.kind
          && ino'.Inode.size = ino.Inode.size
          && ino'.Inode.nlink = ino.Inode.nlink
          && ino'.Inode.mtime_us = ino.Inode.mtime_us
          && ino'.Inode.direct = ino.Inode.direct
          && ino'.Inode.indirect = ino.Inode.indirect
          && ino'.Inode.dindirect = ino.Inode.dindirect)

let test_inode_empty_slot () =
  let buf = Bytes.make Layout.inode_bytes '\000' in
  Alcotest.(check bool) "zeroed slot is free" true (Inode.decode_at buf ~off:0 = None)

(* Summary *)

let entry_gen =
  QCheck.Gen.(
    oneof
      [
        map3
          (fun inum blkno version -> Summary.Data { inum = 1 + inum; blkno; version })
          (int_bound 60000) (int_bound 100000) (int_bound 1000);
        map2 (fun inum idx -> Summary.Indirect { inum = 1 + inum; idx }) (int_bound 60000) (int_bound 300);
        map (fun inum -> Summary.Dindirect { inum = 1 + inum }) (int_bound 60000);
        pure Summary.Inode_block;
        map (fun idx -> Summary.Imap_block { idx }) (int_bound 300);
        map (fun idx -> Summary.Usage_block { idx }) (int_bound 300);
      ])

let prop_summary_roundtrip =
  QCheck.Test.make ~name:"summary codec roundtrip" ~count:200
    (QCheck.make QCheck.Gen.(pair (list_size (int_bound 14) entry_gen) (pair small_nat small_nat)))
    (fun (entries, (seq, ts)) ->
      let size_bytes = 1024 in
      QCheck.assume (List.length entries <= Summary.max_entries ~size_bytes);
      let header =
        {
          Summary.seq;
          timestamp_us = ts;
          nblocks = List.length entries;
          payload_crc = 0xDEADBEEFl;
        }
      in
      let region = Summary.encode ~size_bytes header entries in
      match Summary.decode region with
      | None -> false
      | Some (h, es) ->
          h = header && List.for_all2 Summary.equal_entry es entries)

let test_summary_rejects_corruption () =
  let header =
    { Summary.seq = 3; timestamp_us = 99; nblocks = 1; payload_crc = 0l }
  in
  let region =
    Summary.encode ~size_bytes:1024 header [ Summary.Inode_block ]
  in
  Alcotest.(check bool) "valid decodes" true (Summary.decode region <> None);
  Bytes.set region 40 'X';
  Alcotest.(check bool) "bit flip rejected" true (Summary.decode region = None);
  Alcotest.(check bool) "zeros rejected" true
    (Summary.decode (Bytes.make 1024 '\000') = None)

let test_summary_blocks_needed () =
  (* 1 KB blocks: one block describes (1024-30)/13 = 76 payload blocks. *)
  Alcotest.(check int) "small segment" 1
    (Summary.blocks_needed ~block_size:1024 ~seg_blocks:16);
  (* 4 MB segments of 4 KB blocks need a multi-block summary. *)
  let s = Summary.blocks_needed ~block_size:4096 ~seg_blocks:1024 in
  Alcotest.(check bool) "multi-block" true (s > 1);
  Alcotest.(check bool) "fits" true
    (1024 - s <= Summary.max_entries ~size_bytes:(s * 4096))

(* Checkpoint *)

let test_checkpoint_roundtrip () =
  let l = layout () in
  let cp =
    {
      Checkpoint.timestamp_us = 123456;
      seq = 42;
      tail_segment = 7;
      next_inum_hint = 19;
      imap_addrs = Array.init l.Layout.n_imap_blocks (fun i -> i * 3);
      usage_addrs = Array.init l.Layout.n_usage_blocks (fun i -> 1000 + i);
    }
  in
  let region = Checkpoint.encode l cp in
  Alcotest.(check int) "region size" (l.Layout.cp_blocks * l.Layout.block_size)
    (Bytes.length region);
  (match Checkpoint.decode l region with
  | Some cp' -> Alcotest.(check bool) "roundtrip" true (cp = cp')
  | None -> Alcotest.fail "decode failed");
  Bytes.set region 100 '\255';
  Alcotest.(check bool) "corruption rejected" true (Checkpoint.decode l region = None)

let test_checkpoint_choose () =
  let l = layout () in
  let mk ts seq =
    {
      Checkpoint.timestamp_us = ts;
      seq;
      tail_segment = 0;
      next_inum_hint = 1;
      imap_addrs = Array.make l.Layout.n_imap_blocks 0;
      usage_addrs = Array.make l.Layout.n_usage_blocks 0;
    }
  in
  let a = mk 100 1 and b = mk 200 2 in
  Alcotest.(check bool) "newer wins" true (Checkpoint.choose (Some a) (Some b) = Some b);
  Alcotest.(check bool) "either order" true (Checkpoint.choose (Some b) (Some a) = Some b);
  Alcotest.(check bool) "single" true (Checkpoint.choose None (Some a) = Some a);
  Alcotest.(check bool) "none" true (Checkpoint.choose None None = None);
  let tie1 = mk 100 5 and tie2 = mk 100 6 in
  Alcotest.(check bool) "tie on seq" true
    (Checkpoint.choose (Some tie1) (Some tie2) = Some tie2)

(* Superblock *)

let test_superblock_roundtrip () =
  let geometry = Geometry.wren_iv ~size_bytes:(8 * 1024 * 1024) in
  let l = layout () in
  let sb = Layout.encode_superblock l in
  (match Layout.decode_superblock sb geometry with
  | Ok l' -> Alcotest.(check bool) "roundtrip" true (l = l')
  | Error e -> Alcotest.failf "decode: %s" e);
  (* Reading more than one block (as mount does) still decodes. *)
  let padded = Bytes.make (Bytes.length sb * 2) '\000' in
  Bytes.blit sb 0 padded 0 (Bytes.length sb);
  (match Layout.decode_superblock padded geometry with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "padded decode: %s" e);
  (* Wrong geometry rejected. *)
  let other = Geometry.wren_iv ~size_bytes:(16 * 1024 * 1024) in
  match Layout.decode_superblock sb other with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted mismatched geometry"

(* Imap / usage block codecs *)

let test_imap_block_roundtrip () =
  let l = layout () in
  let m = Imap.create l in
  let now = 777 in
  for i = 1 to 30 do
    Imap.alloc_specific m i ~now_us:now;
    Imap.set_location m i ~addr:(100 + i) ~slot:(i mod 8);
    if i mod 3 = 0 then Imap.bump_version m i
  done;
  Imap.free m 5;
  let block0 = Imap.encode_block m ~idx:0 in
  let m' = Imap.create l in
  Imap.load_block m' ~idx:0 block0;
  for i = 1 to min 30 (Layout.imap_entries_per_block l - 1) do
    Alcotest.(check bool)
      (Printf.sprintf "alloc %d" i)
      (Imap.is_allocated m i) (Imap.is_allocated m' i);
    Alcotest.(check int) (Printf.sprintf "version %d" i) (Imap.version m i)
      (Imap.version m' i);
    if Imap.is_allocated m i then
      Alcotest.(check (option (pair int int)))
        (Printf.sprintf "loc %d" i)
        (Imap.location m i) (Imap.location m' i)
  done

let test_usage_block_roundtrip () =
  let l = layout () in
  let u = Seg_usage.create l in
  Seg_usage.set_state u 0 Seg_usage.Dirty;
  Seg_usage.add_live u 0 ~bytes:5000 ~now_us:100;
  Seg_usage.set_state u 1 Seg_usage.Active;
  Seg_usage.add_live u 1 ~bytes:123 ~now_us:200;
  let block0 = Seg_usage.encode_block u ~idx:0 in
  let u' = Seg_usage.create l in
  Seg_usage.load_block u' ~idx:0 block0;
  Alcotest.(check int) "live" 5000 (Seg_usage.live_bytes u' 0);
  Alcotest.(check int) "mtime" 100 (Seg_usage.mtime_us u' 0);
  Alcotest.(check bool) "dirty state" true (Seg_usage.state u' 0 = Seg_usage.Dirty);
  (* Active persists as Dirty: after a crash the half-filled segment is
     just fragmented. *)
  Alcotest.(check bool) "active persisted as dirty" true
    (Seg_usage.state u' 1 = Seg_usage.Dirty)

let suite =
  [
    qcheck prop_inode_roundtrip;
    Alcotest.test_case "inode empty slot" `Quick test_inode_empty_slot;
    qcheck prop_summary_roundtrip;
    Alcotest.test_case "summary rejects corruption" `Quick
      test_summary_rejects_corruption;
    Alcotest.test_case "summary region sizing" `Quick test_summary_blocks_needed;
    Alcotest.test_case "checkpoint roundtrip" `Quick test_checkpoint_roundtrip;
    Alcotest.test_case "checkpoint choose" `Quick test_checkpoint_choose;
    Alcotest.test_case "superblock roundtrip" `Quick test_superblock_roundtrip;
    Alcotest.test_case "imap block roundtrip" `Quick test_imap_block_roundtrip;
    Alcotest.test_case "usage block roundtrip" `Quick test_usage_block_roundtrip;
  ]
