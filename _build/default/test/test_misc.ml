(* Odds and ends: configuration validation, space accounting, the
   inspection API, error plumbing. *)

open Common
module Config = Lfs_core.Config
module Fs = Lfs_core.Fs

let test_config_validation () =
  let bad c = Alcotest.(check bool) "rejected" true (Result.is_error (Config.validate c)) in
  Alcotest.(check bool) "default ok" true (Result.is_ok (Config.validate Config.default));
  Alcotest.(check bool) "small ok" true (Result.is_ok (Config.validate Config.small));
  bad { Config.default with Config.block_size = 3000 };
  bad { Config.default with Config.segment_size = 5000 };
  bad { Config.default with Config.segment_size = Config.default.Config.block_size };
  bad { Config.default with Config.max_files = 1 };
  bad { Config.default with Config.cache_blocks = 0 };
  bad { Config.default with Config.reserve_segments = 0 };
  bad { Config.default with Config.max_live_fraction = 1.5 };
  bad
    {
      Config.default with
      Config.clean_target_segments = 2;
      clean_threshold_segments = 8;
    }

let test_ffs_config_validation () =
  let module C = Lfs_ffs.Config in
  Alcotest.(check bool) "default ok" true (Result.is_ok (C.validate C.default));
  Alcotest.(check bool) "bad block size" true
    (Result.is_error (C.validate { C.default with C.block_size = 3000 }));
  Alcotest.(check bool) "bad groups" true
    (Result.is_error (C.validate { C.default with C.ngroups = 0 }))

let test_space_accounting () =
  let fs = make_lfs () in
  let s0 = Fs.space fs in
  Alcotest.(check int) "conserved" s0.Fs.capacity_bytes
    (s0.Fs.live_bytes + s0.Fs.clean_bytes + s0.Fs.cleanable_bytes);
  write_file fs "/f" (pattern ~seed:1 (64 * 1024));
  Fs.sync fs;
  let s1 = Fs.space fs in
  Alcotest.(check bool) "live grew" true (s1.Fs.live_bytes > s0.Fs.live_bytes);
  Alcotest.(check bool) "clean shrank" true (s1.Fs.clean_bytes < s0.Fs.clean_bytes);
  check_ok "delete" (Fs.delete fs "/f");
  let s2 = Fs.space fs in
  Alcotest.(check bool) "deletion frees (cleanable grows)" true
    (s2.Fs.cleanable_bytes > s1.Fs.cleanable_bytes)

let test_inspect_segment () =
  let fs = make_lfs () in
  write_file fs "/f" (pattern ~seed:2 4000);
  Fs.sync fs;
  (* The tail segment must decode and describe the file's blocks. *)
  let described = ref false in
  List.iter
    (fun (seg, state, _) ->
      if state = Lfs_core.Seg_usage.Dirty then begin
        let text = Lfs_core.Inspect.describe_segment fs seg in
        Alcotest.(check bool) "mentions state" true
          (String.length text > 0);
        match Lfs_core.Inspect.segment_summary fs seg with
        | Some (header, entries) ->
            Alcotest.(check int) "entry count matches header"
              header.Lfs_core.Summary.nblocks (List.length entries);
            described := true
        | None -> ()
      end)
    (Fs.segment_report fs);
  Alcotest.(check bool) "at least one segment decoded" true !described;
  (* A never-written segment decodes to no summary; find one past the
     log tail of this young file system. *)
  let layout = Fs.layout fs in
  let virgin = layout.Lfs_core.Layout.nsegments - 1 in
  if Lfs_core.Seg_usage.Clean = (let _, s, _ = List.nth (Fs.segment_report fs) virgin in s)
  then
    Alcotest.(check bool) "virgin segment has no summary" true
      (Lfs_core.Inspect.segment_summary fs virgin = None)

let test_inspect_checkpoints () =
  let fs = make_lfs () in
  write_file fs "/f" (pattern ~seed:3 100);
  Fs.checkpoint_now fs;
  let text = Lfs_core.Inspect.describe_checkpoints fs in
  Alcotest.(check bool) "describes both regions" true
    (String.length text > 40);
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "recovery chooses one" true
    (contains text "recovery would use")

let test_errors_wrap () =
  Alcotest.(check bool) "ok passes" true
    (Lfs_vfs.Errors.wrap (fun () -> 42) = Ok 42);
  Alcotest.(check bool) "error caught" true
    (Lfs_vfs.Errors.wrap (fun () -> Lfs_vfs.Errors.raise_ Lfs_vfs.Errors.Enospc)
    = Error Lfs_vfs.Errors.Enospc)

let suite =
  [
    Alcotest.test_case "LFS config validation" `Quick test_config_validation;
    Alcotest.test_case "FFS config validation" `Quick test_ffs_config_validation;
    Alcotest.test_case "space accounting" `Quick test_space_accounting;
    Alcotest.test_case "inspect segments" `Quick test_inspect_segment;
    Alcotest.test_case "inspect checkpoints" `Quick test_inspect_checkpoints;
    Alcotest.test_case "errors wrap" `Quick test_errors_wrap;
  ]
