(* Path handling, shared error type, and the directory-block codec. *)

module Dir_block = Lfs_vfs.Dir_block
module E = Lfs_vfs.Errors
module Path = Lfs_vfs.Path

let qcheck = QCheck_alcotest.to_alcotest

let test_path_split () =
  Alcotest.(check (list string)) "root" [] (Path.split_exn "/");
  Alcotest.(check (list string)) "simple" [ "a"; "b" ] (Path.split_exn "/a/b");
  Alcotest.(check (list string)) "double slash" [ "a"; "b" ] (Path.split_exn "/a//b");
  Alcotest.(check (list string)) "trailing" [ "a" ] (Path.split_exn "/a/");
  let bad p =
    match Path.split p with
    | Error (E.Einval _) -> ()
    | Ok _ -> Alcotest.failf "accepted %S" p
    | Error e -> Alcotest.failf "wrong error for %S: %s" p (E.to_string e)
  in
  bad "relative";
  bad "";
  bad "/a/../b";
  bad "/a/./b";
  bad ("/" ^ String.make 300 'x')

let test_parent_and_name () =
  (match Path.parent_and_name "/a/b/c" with
  | Ok (parent, name) ->
      Alcotest.(check (list string)) "parent" [ "a"; "b" ] parent;
      Alcotest.(check string) "name" "c" name
  | Error e -> Alcotest.failf "unexpected: %s" (E.to_string e));
  match Path.parent_and_name "/" with
  | Error (E.Einval _) -> ()
  | _ -> Alcotest.fail "root has no parent"

let test_valid_name () =
  Alcotest.(check bool) "ok" true (Path.valid_name "file.txt");
  Alcotest.(check bool) "empty" false (Path.valid_name "");
  Alcotest.(check bool) "dot" false (Path.valid_name ".");
  Alcotest.(check bool) "dotdot" false (Path.valid_name "..");
  Alcotest.(check bool) "slash" false (Path.valid_name "a/b");
  Alcotest.(check bool) "nul" false (Path.valid_name "a\000b");
  Alcotest.(check bool) "max length" true (Path.valid_name (String.make 255 'x'));
  Alcotest.(check bool) "too long" false (Path.valid_name (String.make 256 'x'))

let test_errors_printable () =
  List.iter
    (fun e -> Alcotest.(check bool) "nonempty" true (String.length (E.to_string e) > 0))
    [
      E.Enoent "x"; E.Eexist "x"; E.Enotdir "x"; E.Eisdir "x";
      E.Enotempty "x"; E.Enospc; E.Efbig; E.Einval "x";
    ]

let test_dir_block_roundtrip () =
  let entries = [ ("zebra", 42); ("a", 1); ("file.txt", 65535) ] in
  let block = Dir_block.encode ~block_size:512 entries in
  Alcotest.(check int) "block size" 512 (Bytes.length block);
  Alcotest.(check (list (pair string int))) "roundtrip" entries
    (Dir_block.parse block)

let test_dir_block_fits () =
  let bs = 64 in
  let entries = [ ("aaaaaaaaaa", 1) ] in
  Alcotest.(check bool) "fits" true (Dir_block.fits ~block_size:bs entries "bb");
  Alcotest.(check bool) "overflow" false
    (Dir_block.fits ~block_size:bs entries (String.make 50 'b'))

let prop_dir_block =
  let name_gen = QCheck.Gen.(map (fun s -> "n" ^ s) (string_size ~gen:(char_range 'a' 'z') (int_bound 20))) in
  QCheck.Test.make ~name:"dir block roundtrip" ~count:200
    QCheck.(make Gen.(small_list (pair name_gen (int_bound 100000))))
    (fun entries ->
      (* Dedup names as a directory would. *)
      let entries =
        List.fold_left
          (fun acc (n, i) -> if List.mem_assoc n acc then acc else (n, i) :: acc)
          [] entries
      in
      QCheck.assume (Dir_block.used_bytes entries <= 4096);
      Dir_block.parse (Dir_block.encode ~block_size:4096 entries) = entries)

let suite =
  [
    Alcotest.test_case "path split" `Quick test_path_split;
    Alcotest.test_case "parent and name" `Quick test_parent_and_name;
    Alcotest.test_case "valid names" `Quick test_valid_name;
    Alcotest.test_case "errors printable" `Quick test_errors_printable;
    Alcotest.test_case "dir block roundtrip" `Quick test_dir_block_roundtrip;
    Alcotest.test_case "dir block fits" `Quick test_dir_block_fits;
    qcheck prop_dir_block;
  ]
