(* The FFS allocator: cylinder-group placement, spill, free counting,
   and bitmap persistence. *)

module Alloc = Lfs_ffs.Alloc
module Config = Lfs_ffs.Config
module Geometry = Lfs_disk.Geometry
module Layout = Lfs_ffs.Layout

let qcheck = QCheck_alcotest.to_alcotest

let layout () =
  match
    Layout.compute Config.small (Geometry.wren_iv ~size_bytes:(8 * 1024 * 1024))
  with
  | Ok l -> l
  | Error e -> failwith e

let test_inode_alloc_basics () =
  let l = layout () in
  let a = Alloc.create l in
  let i1 = Option.get (Alloc.alloc_inode a ~group:0 ~spread:false) in
  Alcotest.(check int) "first inum" 1 i1;
  Alcotest.(check bool) "allocated" true (Alloc.inode_allocated a i1);
  let i2 = Option.get (Alloc.alloc_inode a ~group:0 ~spread:false) in
  Alcotest.(check bool) "distinct" true (i1 <> i2);
  Alloc.free_inode a i1;
  Alcotest.(check bool) "freed" false (Alloc.inode_allocated a i1);
  let i3 = Option.get (Alloc.alloc_inode a ~group:0 ~spread:false) in
  Alcotest.(check int) "lowest free reused" i1 i3

let test_inode_spread () =
  let l = layout () in
  let a = Alloc.create l in
  (* Load group 0 heavily; a spread allocation must avoid it. *)
  for _ = 1 to 10 do
    ignore (Alloc.alloc_inode a ~group:0 ~spread:false)
  done;
  let spread = Option.get (Alloc.alloc_inode a ~group:0 ~spread:true) in
  Alcotest.(check bool) "spread avoids the loaded group" true
    (Layout.group_of_inum l spread <> 0)

let test_block_alloc_locality () =
  let l = layout () in
  let a = Alloc.create l in
  let first = Option.get (Alloc.alloc_block a ~near:(Layout.group_data_first l 0)) in
  let next = Option.get (Alloc.alloc_block a ~near:first) in
  Alcotest.(check int) "consecutive" (first + 1) next;
  (* Metadata blocks are never handed out. *)
  Alcotest.(check bool) "data region only" true
    (first >= Layout.group_data_first l 0)

let test_block_spill_across_groups () =
  let l = layout () in
  let a = Alloc.create l in
  (* Exhaust group 0's data blocks. *)
  let group0_data =
    Layout.group_first_block l 1 - Layout.group_data_first l 0
  in
  for _ = 1 to group0_data do
    ignore (Option.get (Alloc.alloc_block a ~near:(Layout.group_data_first l 0)))
  done;
  let spilled =
    Option.get (Alloc.alloc_block a ~near:(Layout.group_data_first l 0))
  in
  Alcotest.(check bool) "spilled to another group" true
    (Layout.group_of_block l spilled <> 0)

let test_free_counts () =
  let l = layout () in
  let a = Alloc.create l in
  let before = Alloc.free_block_count a in
  let b1 = Option.get (Alloc.alloc_block a ~near:(Layout.group_data_first l 0)) in
  Alcotest.(check int) "minus one" (before - 1) (Alloc.free_block_count a);
  Alloc.free_block a b1;
  Alcotest.(check int) "restored" before (Alloc.free_block_count a);
  Alcotest.(check bool) "cannot free metadata" true
    (try
       Alloc.free_block a (Layout.group_first_block l 0);
       false
     with Invalid_argument _ -> true)

let prop_bitmap_persistence =
  QCheck.Test.make ~name:"alloc bitmap persistence roundtrip" ~count:50
    QCheck.(small_list (int_bound 500))
    (fun picks ->
      let l = layout () in
      let a = Alloc.create l in
      let allocated = ref [] in
      List.iter
        (fun _ ->
          match Alloc.alloc_block a ~near:(Layout.group_data_first l 0) with
          | Some b -> allocated := b :: !allocated
          | None -> ())
        picks;
      (* Serialize every group, load into a fresh allocator, compare. *)
      let a' = Alloc.create l in
      let blocks = Hashtbl.create 16 in
      for g = 0 to l.Layout.ngroups - 1 do
        List.iter
          (fun (addr, data) -> Hashtbl.replace blocks addr data)
          (Alloc.encode_group a g)
      done;
      for g = 0 to l.Layout.ngroups - 1 do
        Alloc.load_group a' g ~read:(fun addr -> Hashtbl.find blocks addr)
      done;
      List.for_all (fun b -> Alloc.block_allocated a' b) !allocated
      && Alloc.free_block_count a' = Alloc.free_block_count a)

let suite =
  [
    Alcotest.test_case "inode alloc basics" `Quick test_inode_alloc_basics;
    Alcotest.test_case "inode spread" `Quick test_inode_spread;
    Alcotest.test_case "block locality" `Quick test_block_alloc_locality;
    Alcotest.test_case "block spill across groups" `Quick
      test_block_spill_across_groups;
    Alcotest.test_case "free counts" `Quick test_free_counts;
    qcheck prop_bitmap_persistence;
  ]
