(* FFS-baseline specifics: the synchronous metadata writes of §3.1,
   allocation locality, and mount/unmount persistence. *)

module Alloc = Lfs_ffs.Alloc
module Config = Lfs_ffs.Config
module Fs = Lfs_ffs.Fs
module Io = Lfs_disk.Io
module Layout = Lfs_ffs.Layout

let check_ok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what (Lfs_vfs.Errors.to_string e)

let make ?(size_bytes = 8 * 1024 * 1024) () =
  let io = Common.make_io ~size_bytes () in
  (match Fs.format io Config.small with
  | Ok () -> ()
  | Error e -> failwith e);
  match Fs.mount ~config:Config.small io with
  | Ok fs -> fs
  | Error e -> failwith e

let test_create_is_synchronous () =
  let fs = make () in
  let io = Fs.io fs in
  check_ok "mkdir" (Fs.mkdir fs "/d");
  Fs.sync fs;
  Io.set_recording io true;
  check_ok "create" (Fs.create fs "/d/f");
  let writes =
    List.filter (fun r -> r.Io.kind = `Write) (Io.requests io)
  in
  Io.set_recording io false;
  (* The defining behaviour the paper attacks: creat writes the inode
     table block and the directory block synchronously, before returning. *)
  Alcotest.(check int) "two writes" 2 (List.length writes);
  List.iter
    (fun r -> Alcotest.(check bool) "synchronous" true r.Io.sync)
    writes

let test_lfs_create_is_asynchronous () =
  (* The contrast: the same operation on LFS touches the disk not at
     all. *)
  let fs = Common.make_lfs () in
  let io = Lfs_core.Fs.io fs in
  Common.check_ok "mkdir" (Lfs_core.Fs.mkdir fs "/d");
  Lfs_core.Fs.sync fs;
  Io.set_recording io true;
  Common.check_ok "create" (Lfs_core.Fs.create fs "/d/f");
  Alcotest.(check int) "no disk writes on create" 0
    (List.length (List.filter (fun r -> r.Io.kind = `Write) (Io.requests io)));
  Io.set_recording io false

let test_sequential_allocation () =
  let fs = make () in
  check_ok "create" (Fs.create fs "/f");
  check_ok "write" (Fs.write fs "/f" ~off:0 (Common.pattern ~seed:1 (16 * 1024)));
  Fs.sync fs;
  (* A sequentially-written file must occupy mostly-consecutive blocks:
     read it back after a cache flush and count seeks. *)
  Fs.flush_caches fs;
  let io = Fs.io fs in
  let disk = Io.disk io in
  let before = (Lfs_disk.Disk.stats disk).Lfs_disk.Disk.seeks in
  ignore (check_ok "read" (Fs.read fs "/f" ~off:0 ~len:(16 * 1024)));
  let seeks = (Lfs_disk.Disk.stats disk).Lfs_disk.Disk.seeks - before in
  Alcotest.(check bool)
    (Printf.sprintf "few seeks for sequential file (%d)" seeks)
    true (seeks <= 4)

let test_remount_persistence () =
  let fs = make () in
  check_ok "mkdir" (Fs.mkdir fs "/d");
  check_ok "create" (Fs.create fs "/d/f");
  check_ok "write" (Fs.write fs "/d/f" ~off:0 (Common.pattern ~seed:5 3000));
  Fs.unmount fs;
  let fs2 =
    match Fs.mount ~config:Config.small (Fs.io fs) with
    | Ok f -> f
    | Error e -> Alcotest.failf "remount: %s" e
  in
  let data = check_ok "read" (Fs.read fs2 "/d/f" ~off:0 ~len:3000) in
  Common.check_bytes "content" (Common.pattern ~seed:5 3000) data;
  (* Allocation state survived: a new file must not collide. *)
  check_ok "create new" (Fs.create fs2 "/d/g");
  check_ok "write new" (Fs.write fs2 "/d/g" ~off:0 (Common.pattern ~seed:6 2000));
  Common.check_bytes "old intact"
    (Common.pattern ~seed:5 3000)
    (check_ok "read old" (Fs.read fs2 "/d/f" ~off:0 ~len:3000))

let test_directory_spread () =
  (* Directories go to the least-loaded group, files to their parent's
     group. *)
  let fs = make () in
  let layout = Fs.layout fs in
  check_ok "mkdir" (Fs.mkdir fs "/d1");
  check_ok "mkdir" (Fs.mkdir fs "/d2");
  let g1 =
    Layout.group_of_inum layout
      (check_ok "stat" (Fs.stat fs "/d1")).Lfs_vfs.Fs_intf.inum
  in
  let g2 =
    Layout.group_of_inum layout
      (check_ok "stat" (Fs.stat fs "/d2")).Lfs_vfs.Fs_intf.inum
  in
  Alcotest.(check bool) "dirs spread over groups" true (g1 <> g2);
  check_ok "create" (Fs.create fs "/d1/f");
  let gf =
    Layout.group_of_inum layout
      (check_ok "stat" (Fs.stat fs "/d1/f")).Lfs_vfs.Fs_intf.inum
  in
  Alcotest.(check int) "file in parent's group" g1 gf

let test_free_blocks_accounting () =
  let fs = make () in
  (* Warm the root directory's data block first: it stays allocated after
     the file is deleted. *)
  check_ok "warm create" (Fs.create fs "/warm");
  check_ok "warm delete" (Fs.delete fs "/warm");
  let before = Fs.free_blocks fs in
  check_ok "create" (Fs.create fs "/f");
  check_ok "write" (Fs.write fs "/f" ~off:0 (Common.pattern ~seed:9 (8 * 1024)));
  let after_write = Fs.free_blocks fs in
  Alcotest.(check bool) "blocks consumed" true (after_write < before);
  check_ok "delete" (Fs.delete fs "/f");
  Alcotest.(check int) "blocks returned" before (Fs.free_blocks fs)

let test_enospc () =
  let fs = make ~size_bytes:(2 * 1024 * 1024) () in
  let full = ref false in
  (try
     for i = 0 to 10_000 do
       match Fs.create fs (Printf.sprintf "/f%05d" i) with
       | Error Lfs_vfs.Errors.Enospc -> raise Exit
       | Error e -> Alcotest.failf "create: %s" (Lfs_vfs.Errors.to_string e)
       | Ok () -> (
           match
             Fs.write fs (Printf.sprintf "/f%05d" i) ~off:0
               (Common.pattern ~seed:i 4096)
           with
           | Error Lfs_vfs.Errors.Enospc -> raise Exit
           | Error e -> Alcotest.failf "write: %s" (Lfs_vfs.Errors.to_string e)
           | Ok () -> ())
     done
   with Exit -> full := true);
  Alcotest.(check bool) "reports Enospc when full" true !full;
  (* Deleting something frees space again. *)
  check_ok "delete" (Fs.delete fs "/f00000");
  check_ok "create after delete" (Fs.create fs "/again");
  check_ok "write after delete"
    (Fs.write fs "/again" ~off:0 (Common.pattern ~seed:1 2048))

let test_fsck_healthy () =
  let fs = make () in
  check_ok "mkdir" (Fs.mkdir fs "/d");
  for i = 0 to 19 do
    check_ok "create" (Fs.create fs (Printf.sprintf "/d/f%02d" i));
    check_ok "write"
      (Fs.write fs (Printf.sprintf "/d/f%02d" i) ~off:0 (Common.pattern ~seed:i 3000))
  done;
  check_ok "link" (Fs.link fs "/d/f00" "/alias");
  Fs.unmount fs;
  match Lfs_ffs.Fsck.run (Fs.io fs) with
  | Error e -> Alcotest.failf "fsck: %s" e
  | Ok r ->
      Alcotest.(check int) "no bitmap errors" 0 r.Lfs_ffs.Fsck.bitmap_errors;
      Alcotest.(check int) "no orphans" 0 r.Lfs_ffs.Fsck.orphan_inodes;
      (* 21 files+1 dir+root = 23 inodes; the hard link shares one. *)
      Alcotest.(check int) "inodes" 22 r.Lfs_ffs.Fsck.inodes_scanned;
      Alcotest.(check bool) "walked dirs" true (r.Lfs_ffs.Fsck.directories_walked >= 2);
      Alcotest.(check bool) "scan costs time" true (r.Lfs_ffs.Fsck.elapsed_us > 0)

let test_fsck_detects_bitmap_corruption () =
  let fs = make () in
  check_ok "create" (Fs.create fs "/f");
  check_ok "write" (Fs.write fs "/f" ~off:0 (Common.pattern ~seed:1 4096));
  Fs.unmount fs;
  (* Flip bits in the first block bitmap directly on the media. *)
  let io = Fs.io fs in
  let layout = Fs.layout fs in
  let addr = Layout.block_bitmap_block layout ~group:0 ~idx:0 in
  let sector = Layout.sector_of_block layout addr in
  let block = Io.sync_read io ~sector ~count:layout.Layout.block_sectors in
  Bytes.set block 10 (Char.chr (Char.code (Bytes.get block 10) lxor 0xFF));
  Io.sync_write io ~sector block;
  match Lfs_ffs.Fsck.run io with
  | Error e -> Alcotest.failf "fsck: %s" e
  | Ok r ->
      Alcotest.(check int) "eight flipped bits found" 8
        r.Lfs_ffs.Fsck.bitmap_errors

let test_fsck_detects_orphan () =
  let fs = make () in
  check_ok "create" (Fs.create fs "/victim");
  check_ok "write" (Fs.write fs "/victim" ~off:0 (Common.pattern ~seed:2 1000));
  Fs.unmount fs;
  (* Surgically wipe the root directory's entry block, orphaning the
     file's inode. *)
  let io = Fs.io fs in
  let layout = Fs.layout fs in
  (* Root dir inum 1: read its inode to find its first data block. *)
  let addr, slot = Layout.inode_location layout 1 in
  let block =
    Io.sync_read io
      ~sector:(Layout.sector_of_block layout addr)
      ~count:layout.Layout.block_sectors
  in
  (match Lfs_ffs.Inode.decode_at block ~off:(slot * Layout.inode_bytes) with
  | Some root when root.Lfs_ffs.Inode.direct.(0) <> Layout.null_addr ->
      let dir_block = root.Lfs_ffs.Inode.direct.(0) in
      let empty = Lfs_vfs.Dir_block.encode ~block_size:layout.Layout.block_size [] in
      Io.sync_write io
        ~sector:(Layout.sector_of_block layout dir_block)
        empty
  | _ -> Alcotest.fail "could not locate root directory block");
  match Lfs_ffs.Fsck.run io with
  | Error e -> Alcotest.failf "fsck: %s" e
  | Ok r ->
      Alcotest.(check bool) "orphan reported" true
        (r.Lfs_ffs.Fsck.orphan_inodes >= 1)

let suite =
  [
    Alcotest.test_case "fsck on healthy fs" `Quick test_fsck_healthy;
    Alcotest.test_case "fsck detects bitmap corruption" `Quick
      test_fsck_detects_bitmap_corruption;
    Alcotest.test_case "fsck detects orphans" `Quick test_fsck_detects_orphan;
    Alcotest.test_case "create writes synchronously" `Quick
      test_create_is_synchronous;
    Alcotest.test_case "LFS create touches no disk" `Quick
      test_lfs_create_is_asynchronous;
    Alcotest.test_case "sequential allocation" `Quick test_sequential_allocation;
    Alcotest.test_case "remount persistence" `Quick test_remount_persistence;
    Alcotest.test_case "directory spread" `Quick test_directory_spread;
    Alcotest.test_case "free block accounting" `Quick
      test_free_blocks_accounting;
    Alcotest.test_case "Enospc and recovery of space" `Quick test_enospc;
  ]
