(* expect: scenario-entry *)

(* A test driving the raw fault machinery itself: such a run has no
   managed seed and prints no replay line.  Both entry points must be
   reached through Lfs_scenario (Scenario.run / Scenario.with_faults). *)

let sweep_directly ops = Lfs_workload.Crashpoint.sweep `Lfs ops
let inject io scenario = Lfs_disk.Faulty.attach io scenario
