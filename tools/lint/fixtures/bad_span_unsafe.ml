(* expect: span-unsafe *)
(* A raw span_begin whose span_end is only on the normal return path:
   when crash injection raises between them, the profiler's span stack
   is left holding a frame that will swallow the next span_end and
   corrupt the whole tree.  Use Bus.with_span, which closes the span on
   the raise path too. *)
let timed_fill bus f =
  Bus.span_begin bus "unsafe_fill";
  let v = f () in
  Bus.span_end bus "unsafe_fill";
  v
