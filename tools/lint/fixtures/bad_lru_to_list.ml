(* expect: lru-to-list *)
(* Lru.to_list materializes the whole cache; hot paths must use
   iter_lru/fold_lru/sweep_lru instead. *)
let count_dirty cache =
  List.length (List.filter snd (Lru.to_list cache))

let qualified cache = Lfs_util.Lru.to_list cache
