(* expect: workload-clock *)
(* A think-time callback advancing the clock itself: under the
   concurrent engine this would move time underneath every other
   client's pending op, skewing their latencies.  Time advancement
   belongs to the event loop (engine.ml) and the Io layer. *)

let slow_op io =
  Lfs_disk.Clock.advance_us (Lfs_disk.Io.clock io) 5_000;
  Lfs_disk.Io.sync_read io ~sector:0 ~count:1
