(* The same information through the sanctioned layer. *)

let sectors_written io =
  let stats = Lfs_disk.Io.disk_stats io in
  stats.Lfs_disk.Disk.sectors_written

let with_faults io scenario = Lfs_disk.Faulty.attach io scenario
