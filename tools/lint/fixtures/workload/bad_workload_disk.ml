(* expect: workload-disk *)
(* A harness peeking at the raw device: even a "harmless" stats read
   must go through Io so fault scenarios see every access. *)

let sectors_written io =
  let stats = Lfs_disk.Disk.stats (Lfs_disk.Io.disk io) in
  stats.Lfs_disk.Disk.sectors_written
