(* expect: nondet *)
(* Ambient nondeterminism: wall-clock time and the global Random state
   make runs irreproducible. *)
let now () = Unix.gettimeofday ()

let jitter () = Random.int 100

let seed () = Random.self_init ()

let cpu () = Sys.time ()
