(* expect: span-dup *)
(* The same span name opened at two sites conflates two code paths in
   the profile tree; hoist the literal into a shared helper instead. *)
let fill_a bus f = Lfs_obs.Bus.with_span bus "read_fill" f

let fill_b bus f =
  Bus.span_begin bus "read_fill";
  let r = f () in
  Bus.span_end bus "read_fill";
  r
