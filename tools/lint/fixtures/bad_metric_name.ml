(* expect: metric-name *)
(* Metric names must be dotted, lowercase, and under a known component
   prefix (disk.|io.|cache.|lfs.|ffs.). *)
let bad_prefix = Metrics.counter "cleaner.segments_cleaned"

let bad_case = Lfs_obs.Metrics.gauge "lfs.SegmentsFree"

let no_dot = Metrics.histogram "latency"
