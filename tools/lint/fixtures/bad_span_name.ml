(* expect: span-name *)
(* Span names feed the aggregate span tree and must be snake_case:
   no capitals, no dots, no dashes. *)
let slow bus f = Lfs_obs.Bus.with_span bus "Slow-Path.read" f
