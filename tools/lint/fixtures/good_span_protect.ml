(* A raw span balanced through Fun.protect: ~finally runs span_end on
   both the return and the raise path, so this is exception-safe
   without Bus.with_span (e.g. when the closing site needs state the
   with_span callback cannot carry).  Must produce zero violations. *)
let timed_drain bus f =
  Fun.protect
    ~finally:(fun () -> Bus.span_end bus "protected_drain")
    (fun () ->
      Bus.span_begin bus "protected_drain";
      f ())
