(* expect: transitive-disk-io *)
(* The acceptance fixture: the forbidden effect is TWO calls away
   (warm -> Lfs_core.Helper.relay -> Rawpoke.nudge -> Disk.write).
   Neither Disk nor Rawpoke is named in this file, so every per-file
   syntactic rule stays silent; only the whole-program fixpoint sees
   that warming the cache bypasses Io's request accounting. *)
let warm d = Lfs_core.Helper.relay d
