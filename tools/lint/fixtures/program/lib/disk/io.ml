(* expect: disk-io *)
(* Stand-in for the Io layer: the one sanctioned raw-disk site.  The
   syntactic rule still fires here (allowlisted in the real tree), but
   the absorber table stops the effect from propagating to callers. *)
let sync_read d blkno = Disk.read d blkno

let sync_write d blkno buf = Disk.write d blkno buf
