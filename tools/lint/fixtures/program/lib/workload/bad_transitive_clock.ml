(* expect: transitive-clock *)
(* A workload helper advancing time through an innocent-looking utility:
   Clock never appears here, but the summary shows the call advances
   time underneath every other client's pending op. *)
let run c = Lfs_util.Ticker.tick c
