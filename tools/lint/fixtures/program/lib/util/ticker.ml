(* expect: clean *)
(* Direct clock advancement is legal outside workload/bench context
   (the Io layer does exactly this); the confinement rule is about who
   may *reach* it from the driving side. *)
let tick c = Clock.advance_us c 10_000
