(* expect: nondet *)
(* The raw ambient-nondeterminism site (global Random state). *)
let roll () = Random.int 6
