(* expect: transitive-disk-io *)
(* One call away from the raw site: Disk never appears here, so the
   syntactic rule is blind; the effect summary is not. *)
let relay d = Rawpoke.nudge d
