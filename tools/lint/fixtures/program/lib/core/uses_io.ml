(* expect: clean *)
(* Disk access through the sanctioned layer, via a module alias: the
   alias is expanded, the call resolves into Io, and Io's absorption
   stops the DiskIO effect from propagating here. *)
module Io = Lfs_disk.Io

let load d blkno = Io.sync_read d blkno
