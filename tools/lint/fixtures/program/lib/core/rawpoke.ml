(* expect: disk-io *)
(* The raw site: a core helper touching the device directly.  Caught
   by the old syntactic rule — Disk appears in this file. *)
let nudge d = Disk.write d 0 (Bytes.create 512)
