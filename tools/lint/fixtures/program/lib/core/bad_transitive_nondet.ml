(* expect: transitive-nondet *)
(* Reaches the global Random state through a helper: the run is no
   longer reproducible from the seed, though Random never appears in
   this file. *)
let shuffle_seed () = Lfs_util.Entropy.roll ()
