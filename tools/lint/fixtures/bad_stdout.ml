(* expect: stdout *)
(* lib/ code printing to stdout corrupts machine-readable bench output;
   observability goes through Lfs_obs. *)
let debug segno = Printf.printf "cleaning segment %d\n" segno

let shout () = print_endline "hello from the cleaner"

let fmt () = Format.printf "util=%f@." 0.75
