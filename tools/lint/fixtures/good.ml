(* A clean module: disk access through Io, time through Clock, seeded
   randomness, Lfs_obs output, bounded Lru iteration, conforming and
   unique metric names.  Must produce zero violations. *)
let read_block io addr buf = Io.sync_read io ~sector:addr buf

let now io = Clock.now_us (Io.clock io)

let pick rng n = Rng.int rng n

let state_random st = Random.State.int st 10

let log_cleaned bus segno = Bus.emit bus (Event.Segment_cleaned { segno })

let visit cache f = Lru.iter_lru cache f

let cleaned = Metrics.counter "lfs.cleaner.segments_cleaned"

let hits = Metrics.counter "cache.block.hits"
