(* expect: metric-dup *)
(* The same metric name registered at two sites: two components fighting
   over one instrument. *)
let writes_a = Metrics.counter "lfs.segment.writes"

let writes_b = Lfs_obs.Metrics.counter "lfs.segment.writes"
