(* expect: disk-io *)
(* Raw device access from outside lib/disk/io.ml: the request audit in
   Figure 1/2 only sees traffic that flows through Io. *)
let sneak_read disk buf = Disk.read disk ~sector:0 buf

let sneak_write disk buf = Lfs_disk.Disk.write disk ~sector:7 buf
